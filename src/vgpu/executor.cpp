#include "vgpu/executor.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace barracuda::vgpu {
namespace {

/// An access precompiled against the iteration-variable slot layout:
/// addr = offset + sum(coef * value[slot]).
struct CompiledAccess {
  const std::vector<double>* buffer_read = nullptr;
  std::vector<double>* buffer_write = nullptr;
  std::int64_t offset = 0;
  std::vector<std::pair<std::size_t, std::int64_t>> terms;  // (slot, coef)

  std::int64_t addr(const std::vector<std::int64_t>& value) const {
    std::int64_t a = offset;
    for (const auto& [slot, coef] : terms) a += coef * value[slot];
    return a;
  }
};

}  // namespace

void execute_kernel(const chill::Kernel& kernel, DeviceMemory& memory) {
  // Iteration variables: grid dims then sequential loops, each a slot.
  std::vector<std::string> names;
  std::vector<std::int64_t> extents;
  auto add_dim = [&](const chill::GridDim& d) {
    if (d.used()) {
      names.push_back(d.index);
      extents.push_back(d.extent);
    }
  };
  add_dim(kernel.block_x);
  add_dim(kernel.block_y);
  add_dim(kernel.thread_y);
  add_dim(kernel.thread_x);
  for (const auto& loop : kernel.seq) {
    names.push_back(loop.index);
    extents.push_back(loop.extent);
  }

  auto slot_of = [&](const std::string& ix) {
    auto it = std::find(names.begin(), names.end(), ix);
    BARRACUDA_CHECK_MSG(it != names.end(),
                        "kernel " << kernel.name
                                  << " references unmapped index " << ix);
    return static_cast<std::size_t>(it - names.begin());
  };

  auto compile = [&](const chill::AffineAccess& access,
                     bool writable) -> CompiledAccess {
    auto it = memory.find(access.tensor);
    BARRACUDA_CHECK_MSG(it != memory.end(),
                        "tensor " << access.tensor << " not allocated");
    CompiledAccess c;
    c.buffer_read = &it->second;
    if (writable) c.buffer_write = &it->second;
    c.offset = access.offset;
    // Reachable address interval over the full iteration space: positive
    // coefficients push the maximum up, negative ones pull the minimum
    // down (index values range over [0, extent)).  Both ends must land
    // inside the allocation — a negative coefficient can underrun the
    // buffer even when the maximum address is in bounds.
    std::int64_t min_addr = access.offset;
    std::int64_t max_addr = access.offset;
    for (const auto& term : access.terms) {
      if (term.coef == 0) continue;
      std::size_t slot = slot_of(term.index);
      c.terms.emplace_back(slot, term.coef);
      if (term.coef > 0) {
        max_addr += term.coef * (extents[slot] - 1);
      } else {
        min_addr += term.coef * (extents[slot] - 1);
      }
    }
    BARRACUDA_CHECK_MSG(
        min_addr >= 0,
        "access to " << access.tensor
                     << " underruns its allocation (minimum address "
                     << min_addr << ")");
    BARRACUDA_CHECK_MSG(
        max_addr < static_cast<std::int64_t>(it->second.size()),
        "access to " << access.tensor << " overruns its allocation");
    return c;
  };

  CompiledAccess out = compile(kernel.out, /*writable=*/true);
  std::vector<CompiledAccess> ins;
  ins.reserve(kernel.ins.size());
  for (const auto& in : kernel.ins) ins.push_back(compile(in, false));

  // Full grid sweep; execution order across threads is irrelevant because
  // distinct threads never write the same output element (grid indices are
  // parallel loops) and reductions run sequentially inside a thread.
  tensor::for_each_index(extents, [&](const std::vector<std::int64_t>& iv) {
    double prod = 1.0;
    for (const auto& in : ins) prod *= (*in.buffer_read)[in.addr(iv)];
    (*out.buffer_write)[out.addr(iv)] += prod;
  });
}

void execute_plan(const chill::GpuPlan& plan, tensor::TensorEnv& env) {
  DeviceMemory memory;
  for (const auto& [name, elems] : plan.tensor_sizes) {
    memory[name].assign(static_cast<std::size_t>(elems), 0.0);
  }
  for (const auto& name : plan.h2d) {
    auto it = env.find(name);
    BARRACUDA_CHECK_MSG(it != env.end(),
                        "host tensor missing for h2d copy: " << name);
    const tensor::Tensor& t = it->second;
    BARRACUDA_CHECK_MSG(
        t.size() == plan.tensor_sizes.at(name),
        "host/device size mismatch for " << name);
    std::copy_n(t.data(), t.size(), memory.at(name).begin());
  }
  for (const auto& kernel : plan.kernels) execute_kernel(kernel, memory);
  for (const auto& name : plan.d2h) {
    auto it = env.find(name);
    BARRACUDA_CHECK_MSG(it != env.end(),
                        "host tensor missing for d2h copy: " << name);
    tensor::Tensor& t = it->second;
    BARRACUDA_CHECK_MSG(
        t.size() == plan.tensor_sizes.at(name),
        "host/device size mismatch for " << name);
    std::copy_n(memory.at(name).begin(), t.size(), t.data());
  }
}

}  // namespace barracuda::vgpu
