#include "vgpu/executor.hpp"

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <utility>

#include "support/error.hpp"
#include "support/threadpool.hpp"

namespace barracuda::vgpu {
namespace {

/// An access precompiled against the iteration-variable slot layout and
/// a buffer slot table: addr = offset + sum(coef * value[slot]).  The
/// buffer itself is bound at run time (one table per operand set), so a
/// compiled access is shareable read-only across a whole batch.
struct CompiledAccess {
  std::size_t tensor = 0;  // slot in the bound-buffer table
  std::int64_t offset = 0;
  std::vector<std::pair<std::size_t, std::int64_t>> terms;  // (slot, coef)

  std::int64_t addr(const std::vector<std::int64_t>& value) const {
    std::int64_t a = offset;
    for (const auto& [slot, coef] : terms) a += coef * value[slot];
    return a;
  }
};

/// One kernel fully compiled: iteration extents plus resolved accesses.
/// Bounds are checked at compile time against the declared allocation
/// sizes, so the run loop is check-free.
struct CompiledKernel {
  std::vector<std::int64_t> extents;
  CompiledAccess out;
  std::vector<CompiledAccess> ins;
};

/// Compile `kernel`.  `slot_for` maps a tensor name to its buffer slot
/// (asserting the tensor is allocated); `size_for` gives the element
/// count backing that slot, for the reachable-interval bounds check.
template <typename SlotFor, typename SizeFor>
CompiledKernel compile_kernel(const chill::Kernel& kernel,
                              SlotFor&& slot_for, SizeFor&& size_for) {
  CompiledKernel ck;
  // Iteration variables: grid dims then sequential loops, each a slot.
  std::vector<std::string> names;
  auto add_dim = [&](const chill::GridDim& d) {
    if (d.used()) {
      names.push_back(d.index);
      ck.extents.push_back(d.extent);
    }
  };
  add_dim(kernel.block_x);
  add_dim(kernel.block_y);
  add_dim(kernel.thread_y);
  add_dim(kernel.thread_x);
  for (const auto& loop : kernel.seq) {
    names.push_back(loop.index);
    ck.extents.push_back(loop.extent);
  }

  auto slot_of = [&](const std::string& ix) {
    auto it = std::find(names.begin(), names.end(), ix);
    BARRACUDA_CHECK_MSG(it != names.end(),
                        "kernel " << kernel.name
                                  << " references unmapped index " << ix);
    return static_cast<std::size_t>(it - names.begin());
  };

  auto compile = [&](const chill::AffineAccess& access) -> CompiledAccess {
    CompiledAccess c;
    c.tensor = slot_for(access.tensor);
    c.offset = access.offset;
    // Reachable address interval over the full iteration space: positive
    // coefficients push the maximum up, negative ones pull the minimum
    // down (index values range over [0, extent)).  Both ends must land
    // inside the allocation — a negative coefficient can underrun the
    // buffer even when the maximum address is in bounds.
    std::int64_t min_addr = access.offset;
    std::int64_t max_addr = access.offset;
    for (const auto& term : access.terms) {
      if (term.coef == 0) continue;
      std::size_t slot = slot_of(term.index);
      c.terms.emplace_back(slot, term.coef);
      if (term.coef > 0) {
        max_addr += term.coef * (ck.extents[slot] - 1);
      } else {
        min_addr += term.coef * (ck.extents[slot] - 1);
      }
    }
    BARRACUDA_CHECK_MSG(
        min_addr >= 0,
        "access to " << access.tensor
                     << " underruns its allocation (minimum address "
                     << min_addr << ")");
    BARRACUDA_CHECK_MSG(max_addr < size_for(access.tensor),
                        "access to " << access.tensor
                                     << " overruns its allocation");
    return c;
  };

  ck.out = compile(kernel.out);
  ck.ins.reserve(kernel.ins.size());
  for (const auto& in : kernel.ins) ck.ins.push_back(compile(in));
  return ck;
}

/// Run a compiled kernel against a buffer table (slot -> flat buffer).
/// Full grid sweep; execution order across threads is irrelevant because
/// distinct threads never write the same output element (grid indices
/// are parallel loops) and reductions run sequentially inside a thread.
void run_compiled(const CompiledKernel& ck,
                  const std::vector<std::vector<double>*>& buffers) {
  std::vector<double>& out = *buffers[ck.out.tensor];
  tensor::for_each_index(
      ck.extents, [&](const std::vector<std::int64_t>& iv) {
        double prod = 1.0;
        for (const auto& in : ck.ins) {
          prod *= (*buffers[in.tensor])[in.addr(iv)];
        }
        out[ck.out.addr(iv)] += prod;
      });
}

/// A GpuPlan compiled once for execution over any number of operand
/// sets: the buffer slot table (names + declared sizes), the transfer
/// lists resolved to slots, and every kernel's compiled form.
struct CompiledPlan {
  std::vector<std::string> tensor_names;   // slot -> name
  std::vector<std::int64_t> tensor_sizes;  // slot -> element count
  std::vector<std::pair<std::string, std::size_t>> h2d;  // (name, slot)
  std::vector<std::pair<std::string, std::size_t>> d2h;
  std::vector<CompiledKernel> kernels;
};

CompiledPlan compile_plan(const chill::GpuPlan& plan) {
  CompiledPlan cp;
  std::unordered_map<std::string, std::size_t> slots;
  for (const auto& [name, elems] : plan.tensor_sizes) {
    slots.emplace(name, cp.tensor_names.size());
    cp.tensor_names.push_back(name);
    cp.tensor_sizes.push_back(elems);
  }
  auto slot_for = [&](const std::string& name) {
    auto it = slots.find(name);
    BARRACUDA_CHECK_MSG(it != slots.end(),
                        "tensor " << name << " not allocated");
    return it->second;
  };
  auto size_for = [&](const std::string& name) {
    return cp.tensor_sizes[slot_for(name)];
  };
  for (const auto& name : plan.h2d) cp.h2d.emplace_back(name, slot_for(name));
  for (const auto& name : plan.d2h) cp.d2h.emplace_back(name, slot_for(name));
  cp.kernels.reserve(plan.kernels.size());
  for (const auto& kernel : plan.kernels) {
    cp.kernels.push_back(compile_kernel(kernel, slot_for, size_for));
  }
  return cp;
}

/// Execute a compiled plan against one operand set: allocate + zero the
/// device buffers, h2d, run every kernel, d2h.  Identical observable
/// behavior to the pre-compiled execute_plan — the compilation split
/// only moves WHEN accesses are resolved, not what they compute.
void run_plan(const CompiledPlan& cp, tensor::TensorEnv& env) {
  std::vector<std::vector<double>> memory(cp.tensor_names.size());
  std::vector<std::vector<double>*> buffers(cp.tensor_names.size());
  for (std::size_t s = 0; s < memory.size(); ++s) {
    memory[s].assign(static_cast<std::size_t>(cp.tensor_sizes[s]), 0.0);
    buffers[s] = &memory[s];
  }
  for (const auto& [name, slot] : cp.h2d) {
    auto it = env.find(name);
    BARRACUDA_CHECK_MSG(it != env.end(),
                        "host tensor missing for h2d copy: " << name);
    const tensor::Tensor& t = it->second;
    BARRACUDA_CHECK_MSG(t.size() == cp.tensor_sizes[slot],
                        "host/device size mismatch for " << name);
    std::copy_n(t.data(), t.size(), memory[slot].begin());
  }
  for (const auto& kernel : cp.kernels) run_compiled(kernel, buffers);
  for (const auto& [name, slot] : cp.d2h) {
    auto it = env.find(name);
    BARRACUDA_CHECK_MSG(it != env.end(),
                        "host tensor missing for d2h copy: " << name);
    tensor::Tensor& t = it->second;
    BARRACUDA_CHECK_MSG(t.size() == cp.tensor_sizes[slot],
                        "host/device size mismatch for " << name);
    std::copy_n(memory[slot].begin(), t.size(), t.data());
  }
}

}  // namespace

void execute_kernel(const chill::Kernel& kernel, DeviceMemory& memory) {
  // Standalone entry point: build a slot table over the caller's memory
  // map, compile against it, run once.
  std::vector<std::vector<double>*> buffers;
  std::unordered_map<std::string, std::size_t> slots;
  auto slot_for = [&](const std::string& name) {
    auto it = memory.find(name);
    BARRACUDA_CHECK_MSG(it != memory.end(),
                        "tensor " << name << " not allocated");
    auto [sit, inserted] = slots.emplace(name, buffers.size());
    if (inserted) buffers.push_back(&it->second);
    return sit->second;
  };
  auto size_for = [&](const std::string& name) {
    return static_cast<std::int64_t>(memory.at(name).size());
  };
  CompiledKernel ck = compile_kernel(kernel, slot_for, size_for);
  run_compiled(ck, buffers);
}

void execute_plan(const chill::GpuPlan& plan, tensor::TensorEnv& env) {
  run_plan(compile_plan(plan), env);
}

void execute_plan_batch(const chill::GpuPlan& plan,
                        std::vector<tensor::TensorEnv>& envs,
                        std::size_t n_jobs) {
  // Compile ONCE — slot layouts, bounds checks, transfer lists — then
  // fan the per-operand-set runs across the shared pool.  Each item
  // allocates its own device buffers and writes only its own env, and
  // every item runs the exact single-call evaluation, so results are
  // bit-identical to execute_plan for any n_jobs (nested calls from
  // pool workers run inline via the pool-depth guard).
  const CompiledPlan cp = compile_plan(plan);
  support::parallel_apply(support::resolve_jobs(n_jobs), envs.size(),
                          [&](std::size_t i) { run_plan(cp, envs[i]); });
}

}  // namespace barracuda::vgpu
