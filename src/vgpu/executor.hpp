// Functional execution of GPU plans on the host.
//
// This is the correctness half of the virtual-GPU substrate: it runs a
// GpuPlan with full grid/block/thread semantics (every (block, thread)
// point executes the kernel body) against host-side buffers, so every
// transformed code variant can be validated bit-for-bit against the
// reference einsum evaluator.  Timing is the perfmodel's job, not this
// module's.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "chill/kernel.hpp"
#include "tensor/einsum.hpp"

namespace barracuda::vgpu {

/// Flat device buffers by tensor name.
using DeviceMemory = std::map<std::string, std::vector<double>>;

/// Execute one kernel over its full grid.  All referenced tensors must be
/// allocated in `memory` and large enough for every access: the compiled
/// bounds check rejects both overruns (maximum reachable address past the
/// allocation) and underruns (negative-coefficient subscripts reaching
/// below address 0).
///
/// Thread safety: the kernel is only read, and all mutable state lives in
/// `memory` and call-local compiled accesses, so concurrent calls on
/// *disjoint* DeviceMemory instances are safe — this is what lets
/// Evaluate_Parallel measure independent candidates from pool workers
/// (even sharing one const Kernel/GpuPlan across threads).
void execute_kernel(const chill::Kernel& kernel, DeviceMemory& memory);

/// Execute a full plan: allocate device buffers, zero-initialize
/// temporaries, copy `h2d` tensors from `env`, launch each kernel, then
/// copy `d2h` tensors back into `env` (which must already hold an
/// appropriately-sized tensor for each, e.g. the zero/prior output).
/// Same thread-safety contract as execute_kernel: safe concurrently on
/// disjoint TensorEnv instances, with the plan shared read-only.
void execute_plan(const chill::GpuPlan& plan, tensor::TensorEnv& env);

/// Execute ONE plan over a batch of operand sets: `envs[i]` ends up
/// exactly as execute_plan(plan, envs[i]) would leave it, for every i.
/// The plan is compiled once — per-kernel slot layouts, access bounds
/// checks, transfer lists — and the per-env runs (allocate, h2d,
/// kernels, d2h) fan across the shared thread pool (`n_jobs` as in
/// support::resolve_jobs; 1 = inline).  Each item owns its buffers and
/// env, so results are bit-identical for any n_jobs.
void execute_plan_batch(const chill::GpuPlan& plan,
                        std::vector<tensor::TensorEnv>& envs,
                        std::size_t n_jobs = 0);

}  // namespace barracuda::vgpu
