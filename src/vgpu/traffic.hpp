// Exact memory-traffic measurement: simulate the warp-level access
// streams of a kernel and count the *actual* memory transactions
// (distinct cache-line segments touched per warp access), giving a ground
// truth against which the analytic performance model's coalescing
// estimates are validated.  Exhaustive over the grid — use on small
// kernels (tests) or with sampling (`max_blocks`).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "chill/kernel.hpp"
#include "vgpu/device.hpp"

namespace barracuda::vgpu {

/// Measured traffic of one access stream.
struct MeasuredTraffic {
  /// Total warp-level transactions over the sampled blocks.
  std::int64_t transactions = 0;
  /// Warp access events (one per warp per visit).
  std::int64_t warp_visits = 0;
  /// Distinct addresses touched (elements).
  std::int64_t unique_elements = 0;

  double transactions_per_warp_visit() const {
    return warp_visits > 0
               ? static_cast<double>(transactions) / warp_visits
               : 0.0;
  }
};

/// Per-tensor-access measurement (same order as the model's: inputs in
/// statement order, then the output, keyed by "<tensor>#<position>").
struct TrafficMeasurement {
  std::map<std::string, MeasuredTraffic> accesses;
  /// Blocks actually simulated (min(max_blocks, total blocks)).
  std::int64_t blocks_sampled = 0;
};

/// Walk every warp of up to `max_blocks` blocks through the kernel's
/// iteration space, recording for each access the distinct
/// `transaction_bytes`-sized segments each warp touches at each visit.
/// Registers are modeled exactly as the analytic model assumes: a lane
/// re-reading an unchanged address does not issue a new access.
TrafficMeasurement measure_traffic(const chill::Kernel& kernel,
                                   const DeviceProfile& device,
                                   std::int64_t max_blocks = 64);

}  // namespace barracuda::vgpu
