// Analytic GPU performance model — the timing half of the virtual-GPU
// substrate.
//
// The model captures the first-order effects Barracuda's search space is
// built around (Section IV of the paper):
//   * warp-level global-memory coalescing as a function of the ThreadX
//     stride of every array reference,
//   * per-thread revisit traffic as a function of sequential loop order
//     and scalar replacement (registers),
//   * L2 reuse when a tensor's footprint fits on chip,
//   * occupancy and SM utilization from the block decomposition,
//   * instruction overhead shrinking with the unroll factor,
//   * fixed kernel-launch latency and PCIe transfer cost.
// Absolute numbers are estimates; what matters is that the model *ranks*
// configurations the way the real devices do.
#pragma once

#include "chill/kernel.hpp"
#include "vgpu/device.hpp"

namespace barracuda::vgpu {

/// Per-access traffic estimate (diagnostics for tests and ablations).
struct AccessTraffic {
  std::string tensor;
  /// 32-lane coalescing quality: transactions issued per warp visit
  /// (1 = broadcast, 2 = perfectly coalesced doubles, up to 32 = fully
  /// scattered).
  double transactions_per_warp_visit = 0;
  /// Total DRAM+L2 transactions over the whole launch.
  double total_transactions = 0;
  /// Bytes served from DRAM after L2 reuse is credited.
  double dram_bytes = 0;
  /// Bytes served from L2.
  double l2_bytes = 0;
};

/// Modeled timing of one kernel launch.
struct KernelTiming {
  double compute_us = 0;
  double memory_us = 0;
  double launch_us = 0;
  /// max(compute, memory) + launch.
  double total_us = 0;
  double occupancy = 0;      // resident threads / max threads per SM
  double sm_utilization = 0; // fraction of SMs with at least one block
  std::vector<AccessTraffic> accesses;
};

/// Modeled timing of a full plan (kernels + transfers).
struct PlanTiming {
  std::vector<KernelTiming> kernels;
  double kernel_us = 0;
  double h2d_us = 0;
  double d2h_us = 0;
  double total_us = 0;

  double gflops(std::int64_t flops) const {
    return total_us > 0 ? (static_cast<double>(flops) / 1e3) / total_us : 0;
  }
};

/// Model one kernel on `device`.
KernelTiming model_kernel(const chill::Kernel& kernel,
                          const DeviceProfile& device);

/// Model a full plan, including host<->device transfers.
PlanTiming model_plan(const chill::GpuPlan& plan,
                      const DeviceProfile& device);

}  // namespace barracuda::vgpu
