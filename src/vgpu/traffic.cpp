#include "vgpu/traffic.hpp"

#include <algorithm>
#include <set>
#include <vector>

#include "support/error.hpp"
#include "tensor/shape.hpp"

namespace barracuda::vgpu {
namespace {

/// One access stream being measured.
struct Stream {
  std::string key;
  const chill::AffineAccess* access = nullptr;
  MeasuredTraffic traffic;
  std::set<std::int64_t> unique;
};

}  // namespace

TrafficMeasurement measure_traffic(const chill::Kernel& kernel,
                                   const DeviceProfile& device,
                                   std::int64_t max_blocks) {
  BARRACUDA_CHECK(max_blocks >= 1);
  const std::int64_t seg_elems = device.transaction_bytes / 8;
  BARRACUDA_CHECK(seg_elems >= 1);

  std::vector<Stream> streams;
  for (std::size_t i = 0; i < kernel.ins.size(); ++i) {
    streams.push_back(Stream{
        kernel.ins[i].tensor + "#" + std::to_string(i), &kernel.ins[i], {},
        {}});
  }
  streams.push_back(Stream{kernel.out.tensor + "#out", &kernel.out, {}, {}});

  // Sequential loop extents (odometer space per thread).
  std::vector<std::int64_t> seq_extents;
  for (const auto& loop : kernel.seq) seq_extents.push_back(loop.extent);

  const std::int64_t tpb = kernel.threads_per_block();
  const std::int64_t warps_per_block =
      (tpb + device.warp_size - 1) / device.warp_size;
  const std::int64_t total_blocks = kernel.blocks();
  const std::int64_t blocks_to_run = std::min(total_blocks, max_blocks);

  TrafficMeasurement result;
  result.blocks_sampled = blocks_to_run;

  // Index valuation per lane: grid indices fixed per lane, seq indices
  // from the odometer.
  for (std::int64_t block = 0; block < blocks_to_run; ++block) {
    const std::int64_t bx = block % std::max<std::int64_t>(
                                        kernel.block_x.extent, 1);
    const std::int64_t by = block / std::max<std::int64_t>(
                                        kernel.block_x.extent, 1);
    for (std::int64_t warp = 0; warp < warps_per_block; ++warp) {
      // Lanes of this warp: linear tid = ty*dimX + tx.
      std::vector<std::pair<std::int64_t, std::int64_t>> lanes;  // (tx,ty)
      for (int lane = 0; lane < device.warp_size; ++lane) {
        std::int64_t tid = warp * device.warp_size + lane;
        if (tid >= tpb) break;
        lanes.emplace_back(tid % kernel.thread_x.extent,
                           tid / kernel.thread_x.extent);
      }
      // Previous address per (stream, lane); -1 = none.
      std::vector<std::vector<std::int64_t>> prev(
          streams.size(),
          std::vector<std::int64_t>(lanes.size(), -1));

      tensor::for_each_index(
          seq_extents, [&](const std::vector<std::int64_t>& seq_idx) {
            for (std::size_t s = 0; s < streams.size(); ++s) {
              Stream& stream = streams[s];
              bool moved = false;
              std::set<std::int64_t> segments;
              std::vector<std::int64_t> addrs(lanes.size());
              for (std::size_t l = 0; l < lanes.size(); ++l) {
                auto value = [&](const std::string& ix) -> std::int64_t {
                  if (kernel.thread_x.used() && ix == kernel.thread_x.index)
                    return lanes[l].first;
                  if (kernel.thread_y.used() && ix == kernel.thread_y.index)
                    return lanes[l].second;
                  if (kernel.block_x.used() && ix == kernel.block_x.index)
                    return bx;
                  if (kernel.block_y.used() && ix == kernel.block_y.index)
                    return by;
                  for (std::size_t d = 0; d < kernel.seq.size(); ++d) {
                    if (kernel.seq[d].index == ix) return seq_idx[d];
                  }
                  throw InternalError("unmapped index " + ix);
                };
                addrs[l] = stream.access->eval(value);
                moved |= (addrs[l] != prev[s][l]);
              }
              if (!moved) continue;  // register-cached repeat
              for (std::size_t l = 0; l < lanes.size(); ++l) {
                segments.insert(addrs[l] / seg_elems);
                stream.unique.insert(addrs[l]);
                prev[s][l] = addrs[l];
              }
              stream.traffic.warp_visits += 1;
              stream.traffic.transactions +=
                  static_cast<std::int64_t>(segments.size());
            }
          });
    }
  }

  for (auto& stream : streams) {
    stream.traffic.unique_elements =
        static_cast<std::int64_t>(stream.unique.size());
    result.accesses.emplace(stream.key, stream.traffic);
  }
  return result;
}

}  // namespace barracuda::vgpu
