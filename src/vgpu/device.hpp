// Virtual-GPU device profiles.
//
// The paper evaluates on three generations of NVIDIA hardware; since this
// reproduction runs without a GPU, those devices are modeled analytically.
// Profiles carry the published microarchitectural parameters that drive
// the performance model: double-precision throughput, DRAM bandwidth, L2
// capacity, occupancy limits, kernel-launch latency and PCIe transfer
// characteristics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace barracuda::vgpu {

/// Modeled GPU.  All published numbers; derived helpers below.
struct DeviceProfile {
  std::string name;
  std::string arch;
  int sm_count = 0;
  double core_clock_ghz = 0;
  /// Double-precision flops per clock per SM (FMA counted as 2).
  double dp_flops_per_clock_per_sm = 0;
  double dram_bandwidth_gbs = 0;
  std::int64_t l2_bytes = 0;
  int max_threads_per_sm = 0;
  int max_blocks_per_sm = 0;
  int max_threads_per_block = 1024;
  int warp_size = 32;
  /// 32-bit registers per SM; bounds occupancy under register pressure
  /// (aggressive unrolling costs registers).
  int registers_per_sm = 65536;
  /// Memory transaction (cache line) size in bytes.
  int transaction_bytes = 128;
  /// Fixed cost of one kernel launch, microseconds.
  double kernel_launch_us = 0;
  /// Host-side synchronization/dispatch cost paid once per plan
  /// invocation (cudaDeviceSynchronize and driver overhead).
  double sync_us = 10.0;
  /// Effective host<->device bandwidth (GB/s) and per-transfer latency.
  double pcie_bandwidth_gbs = 0;
  double pcie_latency_us = 10.0;
  /// Device global memory; plans whose allocations exceed it are
  /// infeasible (modeled as infinite time so the search avoids them).
  std::int64_t global_mem_bytes = 0;

  /// Peak double-precision GFlop/s.
  double peak_dp_gflops() const {
    return sm_count * core_clock_ghz * dp_flops_per_clock_per_sm;
  }

  /// TESLA C2050 (Fermi): 14 SMs x 32 cores, 1.15 GHz, 1/2-rate DP
  /// (515 GF), 144 GB/s GDDR5, 768 KB L2.
  static DeviceProfile tesla_c2050();
  /// TESLA K20 (Kepler GK110): 13 SMX, 706 MHz, 64 DP units/SMX
  /// (1170 GF), 208 GB/s, 1.25 MB L2.
  static DeviceProfile tesla_k20();
  /// GTX 980 (Maxwell GM204): 16 SMM, 1.126 GHz, 1/32-rate DP (144 GF),
  /// 224 GB/s, 2 MB L2.
  static DeviceProfile gtx980();

  /// The three devices of the paper's evaluation, newest first.
  static std::vector<DeviceProfile> paper_devices();
};

}  // namespace barracuda::vgpu
