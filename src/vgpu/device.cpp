#include "vgpu/device.hpp"

namespace barracuda::vgpu {

DeviceProfile DeviceProfile::tesla_c2050() {
  DeviceProfile d;
  d.name = "TESLA C2050";
  d.arch = "Fermi";
  d.sm_count = 14;
  d.core_clock_ghz = 1.15;
  d.dp_flops_per_clock_per_sm = 32;  // 16 FMA/clock at 1/2 SP rate
  d.dram_bandwidth_gbs = 110.0;  // ECC enabled (~25% off the 144 peak)
  d.l2_bytes = 768 * 1024;
  d.max_threads_per_sm = 1536;
  d.max_blocks_per_sm = 8;
  d.registers_per_sm = 32768;
  d.kernel_launch_us = 10.0;       // Fermi launch overhead (CUDA 5.5 era)
  d.pcie_bandwidth_gbs = 5.0;      // PCIe 2.0 x16, effective
  d.pcie_latency_us = 12.0;
  d.global_mem_bytes = 3LL * 1024 * 1024 * 1024;
  return d;
}

DeviceProfile DeviceProfile::tesla_k20() {
  DeviceProfile d;
  d.name = "TESLA K20";
  d.arch = "Kepler";
  d.sm_count = 13;
  d.core_clock_ghz = 0.706;
  d.dp_flops_per_clock_per_sm = 128;  // 64 DP units x FMA
  d.dram_bandwidth_gbs = 140.0;  // ECC enabled (~33% off the 208 peak)
  d.l2_bytes = 1280 * 1024;
  d.max_threads_per_sm = 2048;
  d.max_blocks_per_sm = 16;
  d.kernel_launch_us = 9.0;
  d.pcie_bandwidth_gbs = 6.0;  // PCIe 2.0 x16, effective
  d.pcie_latency_us = 10.0;
  d.global_mem_bytes = 5LL * 1024 * 1024 * 1024;
  return d;
}

DeviceProfile DeviceProfile::gtx980() {
  DeviceProfile d;
  d.name = "GTX 980";
  d.arch = "Maxwell";
  d.sm_count = 16;
  d.core_clock_ghz = 1.126;
  d.dp_flops_per_clock_per_sm = 8;  // 4 DP units x FMA (1/32 SP rate)
  d.dram_bandwidth_gbs = 224.0;
  d.l2_bytes = 2 * 1024 * 1024;
  d.max_threads_per_sm = 2048;
  d.max_blocks_per_sm = 32;
  d.kernel_launch_us = 7.0;
  d.pcie_bandwidth_gbs = 11.0;  // PCIe 3.0 x16, effective
  d.pcie_latency_us = 8.0;
  d.global_mem_bytes = 4LL * 1024 * 1024 * 1024;
  return d;
}

std::vector<DeviceProfile> DeviceProfile::paper_devices() {
  return {gtx980(), tesla_k20(), tesla_c2050()};
}

}  // namespace barracuda::vgpu
