#include "vgpu/perfmodel.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace barracuda::vgpu {
namespace {

constexpr double kBytesPerElem = 8.0;  // double precision throughout
/// L2 serves hits at a multiple of DRAM bandwidth.
constexpr double kL2BandwidthFactor = 3.0;
/// Instruction-overhead model: non-flop instructions per statement point
/// shrink with unrolling (loop control amortized, more ILP).
constexpr double kLoopOverhead = 0.6;
/// Full compute throughput needs roughly this occupancy to hide latency.
constexpr double kOccupancyKnee = 0.5;

/// Transactions one warp issues for a single visit of `access`, given the
/// stride along threadIdx.x and the block's x-extent.
double warp_transactions(const chill::Kernel& k,
                         const chill::AffineAccess& access,
                         const DeviceProfile& dev) {
  const std::int64_t lanes_total =
      std::min<std::int64_t>(dev.warp_size, k.threads_per_block());
  if (!k.thread_x.used()) return 1.0;  // all lanes share one address stream
  const std::int64_t sx = std::llabs(access.coef_of(k.thread_x.index));
  const std::int64_t lanes_x =
      std::min<std::int64_t>(k.thread_x.extent, lanes_total);
  // Lanes of one warp fill x first, then wrap to the next y row.  Rows
  // only touch *new* segments when threadIdx.y moves this access; a
  // ty-invariant access re-reads the same addresses row after row.
  const std::int64_t sy =
      k.thread_y.used() ? std::llabs(access.coef_of(k.thread_y.index)) : 0;
  const double rows =
      static_cast<double>(lanes_total) / static_cast<double>(lanes_x);
  const double row_factor = (sy == 0) ? 1.0 : std::max(1.0, rows);
  if (sx == 0) return row_factor;  // broadcast within each row
  const double row_bytes =
      static_cast<double>(lanes_x) * static_cast<double>(sx) * kBytesPerElem;
  double per_row = std::ceil(row_bytes / dev.transaction_bytes);
  per_row = std::clamp<double>(per_row, 1.0, static_cast<double>(lanes_x));
  return per_row * row_factor;
}

/// Distinct-address visits each thread makes to `access`: the product of
/// extents of sequential loops the subscript depends on.  Revisits with an
/// unchanged address are assumed to stay in registers.
double visits_per_thread(const chill::Kernel& k,
                         const chill::AffineAccess& access) {
  double visits = 1.0;
  for (const auto& loop : k.seq) {
    if (access.coef_of(loop.index) != 0) {
      visits *= static_cast<double>(loop.extent);
    }
  }
  return visits;
}

/// When the deepest address-moving sequential loop walks the tensor with
/// unit stride, successive iterations of a lane land in the same cache
/// line (whether or not the warp's lanes are scattered): credit line
/// reuse up to the line capacity.
double line_reuse_factor(const chill::Kernel& k,
                         const chill::AffineAccess& access,
                         const DeviceProfile& dev) {
  for (std::size_t d = k.seq.size(); d-- > 0;) {
    const auto& loop = k.seq[d];
    const std::int64_t coef = std::llabs(access.coef_of(loop.index));
    if (coef == 0) continue;
    if (coef == 1) {
      const std::int64_t sx =
          k.thread_x.used() ? std::llabs(access.coef_of(k.thread_x.index))
                            : 0;
      const double line_elems = dev.transaction_bytes / kBytesPerElem;
      // With a unit-stride ThreadX the warp already consumes whole lines
      // per visit; per-lane reuse then shares lines across fewer
      // iterations.
      const double capacity =
          sx == 1 ? std::max(1.0, line_elems / dev.warp_size * 4) : line_elems;
      return std::min(static_cast<double>(loop.extent), capacity);
    }
    return 1.0;
  }
  return 1.0;
}

/// Elements the launch touches in `access` (distinct addresses), capped by
/// the iteration space.
double unique_elements(const chill::Kernel& k,
                       const chill::AffineAccess& access) {
  auto extents = k.index_extents();
  double uniq = 1.0;
  for (const auto& [ix, extent] : extents) {
    if (access.coef_of(ix) != 0) uniq *= static_cast<double>(extent);
  }
  return uniq;
}

struct AccessCost {
  AccessTraffic traffic;
  double memory_us = 0;
};

AccessCost cost_of_access(const chill::Kernel& k,
                          const chill::AffineAccess& access,
                          double visits, const DeviceProfile& dev) {
  AccessCost cost;
  cost.traffic.tensor = access.tensor;
  const double per_warp = warp_transactions(k, access, dev);
  cost.traffic.transactions_per_warp_visit = per_warp;

  const double warps = std::ceil(
      static_cast<double>(k.threads_per_block()) / dev.warp_size) *
      static_cast<double>(k.blocks());
  const double reuse = line_reuse_factor(k, access, dev);
  const double total_tx = warps * per_warp * std::max(1.0, visits / reuse);
  cost.traffic.total_transactions = total_tx;

  const double raw_bytes = total_tx * dev.transaction_bytes;
  const double uniq_bytes = unique_elements(k, access) * kBytesPerElem;
  // First touch of each unique byte must come from DRAM; revisits hit L2
  // if the tensor footprint fits, else they also pay DRAM bandwidth.
  const double first = std::min(raw_bytes, std::max(uniq_bytes, 0.0));
  const double rest = raw_bytes - first;
  const bool fits_l2 = uniq_bytes <= static_cast<double>(dev.l2_bytes);
  cost.traffic.dram_bytes = first + (fits_l2 ? 0.0 : rest);
  cost.traffic.l2_bytes = fits_l2 ? rest : 0.0;

  const double dram_gbs = dev.dram_bandwidth_gbs;
  const double l2_gbs = dev.dram_bandwidth_gbs * kL2BandwidthFactor;
  cost.memory_us = cost.traffic.dram_bytes / (dram_gbs * 1e3) +
                   cost.traffic.l2_bytes / (l2_gbs * 1e3);
  return cost;
}

}  // namespace

KernelTiming model_kernel(const chill::Kernel& kernel,
                          const DeviceProfile& device) {
  KernelTiming t;

  // --- Occupancy & SM utilization -------------------------------------
  const std::int64_t tpb = std::max<std::int64_t>(kernel.threads_per_block(), 1);
  const std::int64_t blocks = std::max<std::int64_t>(kernel.blocks(), 1);
  const std::int64_t blocks_per_sm = std::min<std::int64_t>(
      device.max_blocks_per_sm,
      std::max<std::int64_t>(device.max_threads_per_sm / tpb, 1));
  // Register pressure: base bookkeeping plus 2 (double) registers per
  // live input value; unrolling keeps `unroll` partial products and
  // addresses live at once.
  const int uf = kernel.seq.empty() ? 1 : std::max(1, kernel.seq.back().unroll);
  const std::int64_t regs_per_thread =
      16 + 2 * static_cast<std::int64_t>(kernel.ins.size()) * (1 + uf);
  const std::int64_t reg_limited_threads =
      device.registers_per_sm / std::max<std::int64_t>(regs_per_thread, 1);
  const std::int64_t resident = std::min<std::int64_t>(
      std::min<std::int64_t>(blocks_per_sm * tpb, device.max_threads_per_sm),
      reg_limited_threads);
  t.occupancy = static_cast<double>(resident) / device.max_threads_per_sm;
  t.sm_utilization = std::min(
      1.0, static_cast<double>(blocks) / device.sm_count);

  // --- Compute time ----------------------------------------------------
  const double flops = static_cast<double>(kernel.flops());
  const double inst_overhead = 1.0 + kLoopOverhead / uf;
  const double latency_factor =
      std::min(1.0, t.occupancy / kOccupancyKnee);
  const double eff_gflops = device.peak_dp_gflops() * latency_factor *
                            std::max(t.sm_utilization, 1.0 / device.sm_count);
  t.compute_us = flops * inst_overhead / (eff_gflops * 1e3);

  // --- Memory time -----------------------------------------------------
  // Inputs: one read stream each.  Tensors staged into shared memory pay
  // one coalesced cooperative load per block (L2-served across blocks
  // when the tensor fits) plus cheap on-chip reads.  Output: read+write;
  // scalar replacement confines traffic to the loops outside the scalar
  // region.
  constexpr double kSharedBandwidthFactor = 8.0;
  for (const auto& in : kernel.ins) {
    auto staged = kernel.shared.find(in.tensor);
    if (staged != kernel.shared.end()) {
      const double bytes = static_cast<double>(staged->second) * 8.0;
      const double load_bytes = bytes * static_cast<double>(kernel.blocks());
      const bool fits_l2 = bytes <= static_cast<double>(device.l2_bytes);
      const double dram_bytes = fits_l2 ? bytes : load_bytes;
      const double l2_bytes = fits_l2 ? load_bytes - bytes : 0.0;
      const double reads =
          static_cast<double>(kernel.threads_per_block()) *
          static_cast<double>(kernel.blocks()) *
          visits_per_thread(kernel, in) * 8.0;
      AccessTraffic traffic;
      traffic.tensor = in.tensor;
      traffic.transactions_per_warp_visit = 0;  // served from shared memory
      traffic.total_transactions = load_bytes / device.transaction_bytes;
      traffic.dram_bytes = dram_bytes;
      traffic.l2_bytes = l2_bytes;
      t.memory_us +=
          dram_bytes / (device.dram_bandwidth_gbs * 1e3) +
          l2_bytes / (device.dram_bandwidth_gbs * kL2BandwidthFactor * 1e3) +
          reads / (device.dram_bandwidth_gbs * kSharedBandwidthFactor * 1e3);
      t.accesses.push_back(traffic);
      continue;
    }
    AccessCost c = cost_of_access(kernel, in, visits_per_thread(kernel, in),
                                  device);
    t.memory_us += c.memory_us;
    t.accesses.push_back(c.traffic);
  }
  double out_visits;
  if (kernel.scalar_replacement) {
    out_visits = 1.0;
    for (std::size_t d = 0; d < kernel.scalar_depth(); ++d) {
      out_visits *= static_cast<double>(kernel.seq[d].extent);
    }
  } else {
    out_visits = 1.0;
    for (const auto& loop : kernel.seq) {
      out_visits *= static_cast<double>(loop.extent);
    }
  }
  AccessCost out_read =
      cost_of_access(kernel, kernel.out, out_visits, device);
  t.memory_us += 2.0 * out_read.memory_us;  // read-modify-write
  out_read.traffic.total_transactions *= 2;
  out_read.traffic.dram_bytes *= 2;
  out_read.traffic.l2_bytes *= 2;
  t.accesses.push_back(out_read.traffic);

  // Achievable DRAM bandwidth scales with the warps actually in flight:
  // a handful of warps cannot cover memory latency, so a single-block
  // launch sees a small fraction of peak bandwidth no matter how friendly
  // its access pattern is.
  const double warps_per_block =
      std::ceil(static_cast<double>(tpb) / device.warp_size);
  const double resident_cap =
      static_cast<double>(device.sm_count) *
      (static_cast<double>(device.max_threads_per_sm) / device.warp_size);
  const double concurrent_warps = std::min(
      static_cast<double>(blocks) * warps_per_block, resident_cap);
  const double saturation_warps = 4.0 * device.sm_count;
  const double bw_utilization =
      std::min(1.0, concurrent_warps / saturation_warps);
  t.memory_us /= std::max(0.02, bw_utilization);

  t.launch_us = device.kernel_launch_us;
  t.total_us = std::max(t.compute_us, t.memory_us) + t.launch_us;
  return t;
}

PlanTiming model_plan(const chill::GpuPlan& plan,
                      const DeviceProfile& device) {
  PlanTiming t;
  // Plans that do not fit in device memory are infeasible; the search
  // must steer away from variants with oversized intermediates.
  if (device.global_mem_bytes > 0) {
    std::int64_t alloc = 0;
    for (const auto& [name, elems] : plan.tensor_sizes) {
      alloc += elems * static_cast<std::int64_t>(sizeof(double));
    }
    if (alloc > device.global_mem_bytes) {
      t.total_us = std::numeric_limits<double>::infinity();
      return t;
    }
  }
  for (const auto& kernel : plan.kernels) {
    KernelTiming kt = model_kernel(kernel, device);
    t.kernel_us += kt.total_us;
    t.kernels.push_back(std::move(kt));
  }
  auto transfer_us = [&](std::int64_t bytes, std::size_t transfers) {
    return static_cast<double>(bytes) / (device.pcie_bandwidth_gbs * 1e3) +
           device.pcie_latency_us * static_cast<double>(transfers);
  };
  t.h2d_us = transfer_us(plan.bytes_h2d(), plan.h2d.size());
  t.d2h_us = transfer_us(plan.bytes_d2h(), plan.d2h.size());
  t.kernel_us += device.sync_us;  // one host-side synchronize per plan
  t.total_us = t.kernel_us + t.h2d_us + t.d2h_us;
  return t;
}

}  // namespace barracuda::vgpu
