// Host-CPU execution of TCR programs: the sequential baseline of
// Section VI, plus execution of the fused form for validation of the
// fusion transformation.
#pragma once

#include "tcr/fusion.hpp"
#include "tcr/program.hpp"
#include "tensor/einsum.hpp"

namespace barracuda::cpuexec {

/// Execute the program's operations in order against `env` (creating
/// zeroed temporaries and outputs as needed).  Returns the final output.
const tensor::Tensor& run_sequential(const tcr::TcrProgram& program,
                                     tensor::TensorEnv& env);

/// Execute the fused form produced by tcr::fuse_program.  Semantically
/// identical to run_sequential; exists to validate fusion legality and to
/// measure the locality effect on the real host.
const tensor::Tensor& run_fused(const tcr::TcrProgram& program,
                                const std::vector<tcr::FusedGroup>& groups,
                                tensor::TensorEnv& env);

/// Wall-clock seconds to run the program sequentially on this host
/// (best of `repeats`); used by examples and the quickstart.
double measure_sequential_seconds(const tcr::TcrProgram& program,
                                  tensor::TensorEnv env, int repeats = 3);

}  // namespace barracuda::cpuexec
