// Host-CPU execution of TCR programs: the sequential baseline of
// Section VI, plus execution of the fused form for validation of the
// fusion transformation.
#pragma once

#include <cstddef>
#include <vector>

#include "tcr/fusion.hpp"
#include "tcr/program.hpp"
#include "tensor/einsum.hpp"

namespace barracuda::cpuexec {

/// Execute the program's operations in order against `env` (creating
/// zeroed temporaries and outputs as needed).  Returns the final output.
const tensor::Tensor& run_sequential(const tcr::TcrProgram& program,
                                     tensor::TensorEnv& env);

/// Execute ONE program over a batch of operand sets: `envs[i]` receives
/// exactly what run_sequential(program, envs[i]) would produce, for
/// every i.  The program is validated once; the per-env work fans
/// across the shared thread pool (`n_jobs` as in support::resolve_jobs;
/// 1 = inline).  Envs are disjoint and each item is the same untouched
/// sequential evaluation, so results are bit-identical for any n_jobs.
void run_sequential_batch(const tcr::TcrProgram& program,
                          std::vector<tensor::TensorEnv>& envs,
                          std::size_t n_jobs = 0);

/// Execute the fused form produced by tcr::fuse_program.  Semantically
/// identical to run_sequential; exists to validate fusion legality and to
/// measure the locality effect on the real host.
const tensor::Tensor& run_fused(const tcr::TcrProgram& program,
                                const std::vector<tcr::FusedGroup>& groups,
                                tensor::TensorEnv& env);

/// Wall-clock seconds to run the program sequentially on this host
/// (best of `repeats`); used by examples and the quickstart.
double measure_sequential_seconds(const tcr::TcrProgram& program,
                                  tensor::TensorEnv env, int repeats = 3);

}  // namespace barracuda::cpuexec
