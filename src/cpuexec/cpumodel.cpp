#include "cpuexec/cpumodel.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"
#include "tensor/einsum.hpp"

namespace barracuda::cpuexec {
namespace {

constexpr double kBytesPerElem = 8.0;

double tensor_bytes(const tcr::TcrProgram& program,
                    const tensor::TensorRef& ref) {
  return static_cast<double>(
             tensor::shape_of(ref, program.extents).size()) *
         kBytesPerElem;
}

/// Times a reference is re-swept from memory: the product of the extents
/// of statement indices the reference does not carry.  Cache-resident
/// tensors are fetched once regardless.
double resweep_factor(const tcr::TcrProgram& program,
                      const tensor::Contraction& op,
                      const tensor::TensorRef& ref) {
  double factor = 1.0;
  for (const auto& ix : op.all_indices()) {
    bool carried = std::find(ref.indices.begin(), ref.indices.end(), ix) !=
                   ref.indices.end();
    if (!carried) factor *= static_cast<double>(program.extents.at(ix));
  }
  return factor;
}

}  // namespace

double traffic_bytes(const tcr::TcrProgram& program,
                     const tensor::Contraction& op, const CpuProfile& cpu) {
  double bytes = 0;
  for (const auto& in : op.inputs) {
    double size = tensor_bytes(program, in);
    double sweeps =
        size <= static_cast<double>(cpu.llc_bytes)
            ? 1.0
            : resweep_factor(program, op, in);
    bytes += size * sweeps;
  }
  // The output is accumulated in registers across the reduction and
  // read-modified-written once per element.
  bytes += 2.0 * tensor_bytes(program, op.output);
  return bytes;
}

CpuTiming model_cpu(const tcr::TcrProgram& program, const CpuProfile& cpu,
                    int threads) {
  BARRACUDA_CHECK(threads >= 1);
  const int t = std::min(threads, cpu.cores);
  const double eff = (t == 1) ? 1.0 : cpu.parallel_efficiency;
  const double gflops = cpu.core_gflops * t * eff;
  const double bw = (t == 1)
                        ? cpu.core_bandwidth_gbs
                        : std::min(cpu.socket_bandwidth_gbs,
                                   cpu.core_bandwidth_gbs * t);
  CpuTiming timing;
  for (const auto& op : program.operations) {
    const double flops =
        static_cast<double>(tensor::flop_count(op, program.extents));
    timing.compute_us += flops / (gflops * 1e3);
    timing.memory_us += traffic_bytes(program, op, cpu) / (bw * 1e3);
  }
  // Per-operation overlap of compute and memory: take the max per program
  // (operations are memory- or compute-bound as a whole here; the split
  // per op barely differs for these kernels).
  timing.total_us = std::max(timing.compute_us, timing.memory_us);
  return timing;
}

}  // namespace barracuda::cpuexec
