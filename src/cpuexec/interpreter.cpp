#include "cpuexec/interpreter.hpp"

#include <algorithm>

#include "support/error.hpp"
#include "support/threadpool.hpp"
#include "support/timer.hpp"
#include "tensor/shape.hpp"

namespace barracuda::cpuexec {
namespace {

/// Ensure every written tensor exists in `env` (zeroed, declared shape).
void materialize_outputs(const tcr::TcrProgram& program,
                         tensor::TensorEnv& env) {
  for (const auto& name : program.written_names()) {
    if (env.contains(name)) continue;
    const auto& var = program.variable(name);
    std::vector<std::int64_t> dims;
    for (const auto& ix : var.indices) dims.push_back(program.extents.at(ix));
    env.emplace(name, tensor::Tensor::zeros(dims));
  }
}

}  // namespace

const tensor::Tensor& run_sequential(const tcr::TcrProgram& program,
                                     tensor::TensorEnv& env) {
  program.validate();
  materialize_outputs(program, env);
  for (const auto& op : program.operations) {
    tensor::evaluate(op, program.extents, env);
  }
  return env.at(program.output_name());
}

void run_sequential_batch(const tcr::TcrProgram& program,
                          std::vector<tensor::TensorEnv>& envs,
                          std::size_t n_jobs) {
  // Validate ONCE for the whole batch — that is the amortization; the
  // per-item body is exactly run_sequential minus the validate, so a
  // batch item and a lone call see identical evaluation order and
  // identical floating-point results.  Envs are disjoint, which makes
  // the fan-out embarrassingly parallel: any n_jobs (including nested
  // calls from pool workers, which parallel_apply runs inline) computes
  // bit-identical outputs.
  program.validate();
  support::parallel_apply(
      support::resolve_jobs(n_jobs), envs.size(), [&](std::size_t i) {
        tensor::TensorEnv& env = envs[i];
        materialize_outputs(program, env);
        for (const auto& op : program.operations) {
          tensor::evaluate(op, program.extents, env);
        }
      });
}

const tensor::Tensor& run_fused(const tcr::TcrProgram& program,
                                const std::vector<tcr::FusedGroup>& groups,
                                tensor::TensorEnv& env) {
  program.validate();
  materialize_outputs(program, env);

  for (const auto& group : groups) {
    std::vector<std::int64_t> shared_extents;
    for (const auto& loop : group.shared) {
      shared_extents.push_back(loop.extent);
    }
    tensor::for_each_index(
        shared_extents, [&](const std::vector<std::int64_t>& shared_idx) {
          for (const auto& body : group.bodies) {
            // Iterate the body's remaining loops under the fixed shared
            // prefix and evaluate the statement pointwise.
            const auto& op = body.stmt;
            std::vector<std::int64_t> inner_extents;
            for (std::size_t d = group.shared.size(); d < body.loops.size();
                 ++d) {
              inner_extents.push_back(body.loops[d].extent);
            }
            auto value_of = [&](const std::string& ix,
                                const std::vector<std::int64_t>& inner_idx)
                -> std::int64_t {
              for (std::size_t d = 0; d < group.shared.size(); ++d) {
                if (group.shared[d].index == ix) return shared_idx[d];
              }
              for (std::size_t d = group.shared.size();
                   d < body.loops.size(); ++d) {
                if (body.loops[d].index == ix) {
                  return inner_idx[d - group.shared.size()];
                }
              }
              throw InternalError("fused body misses index " + ix);
            };
            tensor::Tensor& out = env.at(op.output.name);
            tensor::for_each_index(
                inner_extents,
                [&](const std::vector<std::int64_t>& inner_idx) {
                  double prod = 1.0;
                  std::vector<std::int64_t> sub;
                  for (const auto& in : op.inputs) {
                    sub.clear();
                    for (const auto& ix : in.indices) {
                      sub.push_back(value_of(ix, inner_idx));
                    }
                    prod *= env.at(in.name).at(sub);
                  }
                  sub.clear();
                  for (const auto& ix : op.output.indices) {
                    sub.push_back(value_of(ix, inner_idx));
                  }
                  out.at(sub) += prod;
                });
          }
        });
  }
  return env.at(program.output_name());
}

double measure_sequential_seconds(const tcr::TcrProgram& program,
                                  tensor::TensorEnv env, int repeats) {
  BARRACUDA_CHECK(repeats >= 1);
  double best = INFINITY;
  for (int r = 0; r < repeats; ++r) {
    tensor::TensorEnv copy = env;
    WallTimer timer;
    run_sequential(program, copy);
    best = std::min(best, timer.seconds());
  }
  return best;
}

}  // namespace barracuda::cpuexec
