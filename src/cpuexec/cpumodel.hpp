// Analytic CPU performance model: the Haswell sequential and OpenMP
// baselines of Tables II and IV.
//
// The model is a two-bound roofline per operation: compute time at a
// sustained per-core flop rate, and memory time from a streaming-traffic
// estimate (re-sweep factors for tensors that exceed the last-level
// cache).  This reproduces the paper's qualitative CPU behaviour —
// bandwidth-bound kernels (NWChem S1) gain nothing from 4 OpenMP threads
// while compute-bound contractions scale close to linearly.
#pragma once

#include <cstdint>
#include <string>

#include "tcr/program.hpp"

namespace barracuda::cpuexec {

/// Modeled host CPU.  Defaults approximate the paper's Intel Haswell.
struct CpuProfile {
  std::string name = "Intel Haswell";
  int cores = 4;
  /// Sustained double-precision GFlop/s of one core running a tuned
  /// small-tensor contraction loop nest (scalar + partial SIMD).
  double core_gflops = 8.0;
  /// DRAM bandwidth available to one core / to the full socket.  A single
  /// Haswell core nearly saturates the socket on streaming kernels, which
  /// is why bandwidth-bound kernels barely gain from OpenMP (Table IV S1).
  double core_bandwidth_gbs = 18.0;
  double socket_bandwidth_gbs = 25.6;
  std::int64_t llc_bytes = 8 * 1024 * 1024;
  /// Parallel efficiency of the OpenMP loop on compute-bound kernels.
  double parallel_efficiency = 0.85;

  static CpuProfile haswell() { return {}; }
};

struct CpuTiming {
  double compute_us = 0;
  double memory_us = 0;
  double total_us = 0;

  double gflops(std::int64_t flops) const {
    return total_us > 0 ? (static_cast<double>(flops) / 1e3) / total_us : 0;
  }
};

/// Model `program` on `cpu` with `threads` OpenMP threads (1 = the
/// sequential baseline).
CpuTiming model_cpu(const tcr::TcrProgram& program, const CpuProfile& cpu,
                    int threads);

/// Streaming-traffic estimate in bytes for one operation (diagnostic).
double traffic_bytes(const tcr::TcrProgram& program,
                     const tensor::Contraction& op, const CpuProfile& cpu);

}  // namespace barracuda::cpuexec
