#include "net/server.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "net/socket.hpp"
#include "support/error.hpp"
#include "support/faultinject.hpp"

namespace barracuda::net {

Server::Server(Handler handler, ServerOptions options)
    : handler_(std::move(handler)), options_(options) {
  options_.workers = std::max<std::size_t>(1, options_.workers);
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    throw Error(std::string("cannot create server wake pipe: ") +
                std::strerror(errno));
  }
  wake_read_ = pipe_fds[0];
  wake_write_ = pipe_fds[1];
  ::fcntl(wake_read_, F_SETFL, O_NONBLOCK);
  ::fcntl(wake_write_, F_SETFL, O_NONBLOCK);
}

Server::~Server() { stop(); }

std::uint16_t Server::listen_tcp(const std::string& host,
                                 std::uint16_t port) {
  BARRACUDA_CHECK_MSG(!started_, "add listeners before Server::start()");
  std::uint16_t bound = 0;
  listeners_.push_back(net::listen_tcp(host, port, &bound));
  return bound;
}

void Server::listen_unix(const std::string& path) {
  BARRACUDA_CHECK_MSG(!started_, "add listeners before Server::start()");
  listeners_.push_back(net::listen_unix(path));
  unix_paths_.push_back(path);
}

void Server::start() {
  BARRACUDA_CHECK_MSG(!listeners_.empty(),
                      "Server::start() needs at least one listener");
  BARRACUDA_CHECK_MSG(!started_, "Server::start() called twice");
  started_ = true;
  loop_thread_ = std::thread([this] { loop(); });
  for (std::size_t w = 0; w < options_.workers; ++w) {
    workers_.emplace_back([this] { worker(); });
  }
}

void Server::wake() {
  const char byte = 1;
  // Nonblocking: a full pipe already guarantees a pending wake-up.
  (void)!::write(wake_write_, &byte, 1);
}

void Server::apply_returned(std::vector<std::pair<int, bool>> returned) {
  // Lock-free over the fds themselves: only the loop (and final stop()
  // cleanup) ever closes or re-polls a connection, so an fd handed back
  // here cannot be raced by a worker.
  for (const auto& [fd, close_it] : returned) {
    if (close_it) {
      ::close(fd);
      closed_.fetch_add(1, std::memory_order_relaxed);
    } else {
      std::lock_guard<std::mutex> lock(mutex_);
      idle_conns_.insert(fd);
    }
  }
}

void Server::loop() {
  std::vector<pollfd> fds;
  std::vector<int> poll_conns;
  for (;;) {
    // Absorb workers' hand-backs first so a kept-alive connection is in
    // this round's poll set.
    std::vector<std::pair<int, bool>> returned;
    bool stopping = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      returned.swap(returned_);
      stopping = stopping_;
    }
    apply_returned(std::move(returned));
    if (stopping) return;

    fds.clear();
    poll_conns.clear();
    fds.push_back({wake_read_, POLLIN, 0});
    for (int lfd : listeners_) fds.push_back({lfd, POLLIN, 0});
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (int cfd : idle_conns_) {
        poll_conns.push_back(cfd);
        fds.push_back({cfd, POLLIN, 0});
      }
    }

    const int rc = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), 100);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return;  // a broken poll set is unrecoverable; stop() cleans up
    }
    if (rc == 0) continue;

    if ((fds[0].revents & POLLIN) != 0) {
      char buf[64];
      while (::read(wake_read_, buf, sizeof buf) > 0) {
      }
    }

    for (std::size_t i = 0; i < listeners_.size(); ++i) {
      if ((fds[1 + i].revents & POLLIN) == 0) continue;
      const int cfd = ::accept(listeners_[i], nullptr, nullptr);
      if (cfd < 0) continue;
      // `net.accept` models accept-path failure (fd exhaustion, a
      // refused TLS handshake in richer stacks): the connection is
      // dropped before it ever reaches the poll set.
      if (support::fault::hit("net.accept")) {
        ::close(cfd);
        faulted_accepts_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      set_io_timeout(cfd, options_.io_timeout);
      accepted_.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(mutex_);
      idle_conns_.insert(cfd);
    }

    bool dispatched = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (std::size_t i = 0; i < poll_conns.size(); ++i) {
        const pollfd& p = fds[1 + listeners_.size() + i];
        if (p.revents == 0) continue;
        // Readable, hung up, or errored: hand it to a worker either
        // way — the read will observe EOF/failure and close it.
        if (idle_conns_.erase(poll_conns[i]) > 0) {
          ready_.push_back(poll_conns[i]);
          ++in_flight_;
          dispatched = true;
        }
      }
    }
    if (dispatched) work_cv_.notify_all();
  }
}

void Server::worker() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return !ready_.empty() || stopping_; });
      if (ready_.empty()) return;  // stopping and drained
      fd = ready_.front();
      ready_.pop_front();
    }

    bool close_conn = false;
    try {
      Frame request;
      if (!read_frame(fd, &request, options_.max_payload)) {
        close_conn = true;  // clean close at a frame boundary
      } else {
        frames_.fetch_add(1, std::memory_order_relaxed);
        Frame response;
        try {
          response = handler_(request);
        } catch (const std::exception& e) {
          // The stream is intact — only this request failed.  Reply
          // kError and keep serving the connection.
          handler_errors_.fetch_add(1, std::memory_order_relaxed);
          response = {Op::kError, e.what()};
        }
        write_frame(fd, response);
      }
    } catch (const FrameError& e) {
      // Corrupt frame: tell the peer why (best effort — its reader may
      // be gone) and drop the connection; nothing after a torn frame
      // can be trusted to be frame-aligned.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      try {
        write_frame(fd, {Op::kError, e.what()});
      } catch (...) {
      }
      close_conn = true;
    } catch (const std::exception&) {
      io_errors_.fetch_add(1, std::memory_order_relaxed);
      close_conn = true;
    }

    {
      std::lock_guard<std::mutex> lock(mutex_);
      returned_.push_back({fd, close_conn});
      --in_flight_;
    }
    wake();
  }
}

void Server::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!started_ || stopped_) {
      if (!started_ && !stopped_) {
        // Never started: release the listeners and pipe directly.
        stopped_ = true;
      } else {
        return;
      }
    }
    stopping_ = true;
  }
  wake();
  work_cv_.notify_all();
  if (loop_thread_.joinable()) loop_thread_.join();
  // Workers drain ready_ (their wait predicate passes while work
  // remains), then exit on the empty queue.
  work_cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  // Everything is single-threaded from here: close what the workers
  // handed back, the still-idle connections, the listeners, the pipe.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [fd, close_it] : returned_) {
      ::close(fd);
      closed_.fetch_add(1, std::memory_order_relaxed);
    }
    returned_.clear();
    for (int fd : idle_conns_) {
      ::close(fd);
      closed_.fetch_add(1, std::memory_order_relaxed);
    }
    idle_conns_.clear();
  }
  for (int fd : listeners_) ::close(fd);
  listeners_.clear();
  for (const std::string& path : unix_paths_) ::unlink(path.c_str());
  unix_paths_.clear();
  if (wake_read_ >= 0) ::close(wake_read_);
  if (wake_write_ >= 0) ::close(wake_write_);
  wake_read_ = wake_write_ = -1;
  stopped_ = true;
}

ServerStats Server::stats() const {
  ServerStats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.closed = closed_.load(std::memory_order_relaxed);
  s.frames = frames_.load(std::memory_order_relaxed);
  s.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  s.handler_errors = handler_errors_.load(std::memory_order_relaxed);
  s.io_errors = io_errors_.load(std::memory_order_relaxed);
  s.faulted_accepts = faulted_accepts_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    s.open_connections = idle_conns_.size() + in_flight_;
  }
  return s;
}

}  // namespace barracuda::net
