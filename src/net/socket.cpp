#include "net/socket.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include "support/error.hpp"
#include "support/faultinject.hpp"

namespace barracuda::net {
namespace {

std::string errno_text(const std::string& op) {
  return op + ": " + std::strerror(errno);
}

std::uint16_t parse_port(const std::string& text) {
  char* end = nullptr;
  const unsigned long value = std::strtoul(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || value > 65535) {
    throw Error("bad port '" + text + "' (expected 0..65535)");
  }
  return static_cast<std::uint16_t>(value);
}

/// getaddrinfo for a numeric-or-named IPv4/IPv6 host.
struct AddrList {
  addrinfo* head = nullptr;
  ~AddrList() {
    if (head != nullptr) ::freeaddrinfo(head);
  }
};

void resolve(const std::string& host, std::uint16_t port, bool passive,
             AddrList* out) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  if (passive) hints.ai_flags = AI_PASSIVE;
  const std::string service = std::to_string(port);
  const int rc = ::getaddrinfo(host.empty() ? "127.0.0.1" : host.c_str(),
                               service.c_str(), &hints, &out->head);
  if (rc != 0) {
    throw Error("cannot resolve '" + host + "': " + ::gai_strerror(rc));
  }
}

/// connect(2) bounded by `seconds` (<= 0 = plain blocking connect):
/// flip the fd non-blocking, start the connect, poll for writability,
/// then read SO_ERROR for the kernel's verdict — the only portable way
/// to bound the three-way handshake itself (SO_SNDTIMEO does not apply
/// to connect on Linux).  Returns 0 with the fd restored to blocking
/// mode on success; fills *error_text and returns -1 otherwise (the
/// caller closes the fd).
int timed_connect(int fd, const sockaddr* addr, socklen_t len,
                  double seconds, std::string* error_text) {
  if (seconds <= 0) {
    if (::connect(fd, addr, len) != 0) {
      *error_text = errno_text("connect");
      return -1;
    }
    return 0;
  }
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    *error_text = errno_text("fcntl(O_NONBLOCK)");
    return -1;
  }
  if (::connect(fd, addr, len) != 0) {
    if (errno != EINPROGRESS) {
      *error_text = errno_text("connect");
      return -1;
    }
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLOUT;
    const int timeout_ms = static_cast<int>(seconds * 1000.0) + 1;
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0) {
      *error_text = errno_text("poll(connect)");
      return -1;
    }
    if (ready == 0) {
      *error_text = "connect timed out";
      return -1;
    }
    int so_error = 0;
    socklen_t so_len = sizeof so_error;
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &so_len) != 0) {
      *error_text = errno_text("getsockopt(SO_ERROR)");
      return -1;
    }
    if (so_error != 0) {
      errno = so_error;
      *error_text = errno_text("connect");
      return -1;
    }
  }
  if (::fcntl(fd, F_SETFL, flags) < 0) {
    *error_text = errno_text("fcntl(restore blocking)");
    return -1;
  }
  return 0;
}

sockaddr_un unix_address(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof addr.sun_path) {
    throw Error("unix socket path empty or too long (max " +
                std::to_string(sizeof addr.sun_path - 1) +
                " bytes): " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

Endpoint parse_endpoint(const std::string& text) {
  Endpoint ep;
  if (text.rfind("unix:", 0) == 0) {
    ep.kind = Endpoint::Kind::kUnix;
    ep.path = text.substr(5);
    if (ep.path.empty()) throw Error("empty unix socket path in '" + text + "'");
    return ep;
  }
  std::string rest = text;
  if (rest.rfind("tcp:", 0) == 0) rest = rest.substr(4);
  const std::size_t colon = rest.rfind(':');
  if (colon == std::string::npos) {
    throw Error("bad endpoint '" + text +
                "' (expected unix:PATH, tcp:HOST:PORT, or HOST:PORT)");
  }
  ep.kind = Endpoint::Kind::kTcp;
  ep.host = rest.substr(0, colon);
  ep.port = parse_port(rest.substr(colon + 1));
  return ep;
}

std::string to_string(const Endpoint& endpoint) {
  if (endpoint.kind == Endpoint::Kind::kUnix) return "unix:" + endpoint.path;
  return (endpoint.host.empty() ? std::string("127.0.0.1") : endpoint.host) +
         ":" + std::to_string(endpoint.port);
}

int listen_tcp(const std::string& host, std::uint16_t port,
               std::uint16_t* bound_port) {
  AddrList addrs;
  resolve(host, port, /*passive=*/true, &addrs);
  int fd = -1;
  std::string last_error = "no usable address";
  for (addrinfo* ai = addrs.head; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_error = errno_text("socket");
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
        ::listen(fd, 64) == 0) {
      break;
    }
    last_error = errno_text("bind/listen");
    ::close(fd);
    fd = -1;
  }
  if (fd < 0) {
    throw Error("cannot listen on " + host + ":" + std::to_string(port) +
                " (" + last_error + ")");
  }
  if (bound_port != nullptr) {
    sockaddr_storage bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
      ::close(fd);
      throw Error(errno_text("getsockname"));
    }
    if (bound.ss_family == AF_INET) {
      *bound_port =
          ntohs(reinterpret_cast<sockaddr_in*>(&bound)->sin_port);
    } else {
      *bound_port =
          ntohs(reinterpret_cast<sockaddr_in6*>(&bound)->sin6_port);
    }
  }
  return fd;
}

int listen_unix(const std::string& path) {
  const sockaddr_un addr = unix_address(path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw Error(errno_text("socket(AF_UNIX)"));
  // The path belongs to this server: a stale socket file from a crashed
  // predecessor must not block the bind.
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 64) != 0) {
    const std::string text = errno_text("bind/listen on " + path);
    ::close(fd);
    throw Error(text);
  }
  return fd;
}

int connect_endpoint(const Endpoint& endpoint, double connect_timeout) {
  // `net.connect` models an unreachable or black-holed endpoint.  The
  // probe rides the real failure branch (close + throw, same text
  // shape) so callers exercise the ordinary error path, and it draws
  // once per connect_endpoint call — not per resolved address — so hit
  // counts stay deterministic for multi-homed hosts.
  const bool fault_fired = support::fault::hit("net.connect");
  if (endpoint.kind == Endpoint::Kind::kUnix) {
    const sockaddr_un addr = unix_address(endpoint.path);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw Error(errno_text("socket(AF_UNIX)"));
    std::string text = "injected fault at net.connect";
    if (fault_fired ||
        timed_connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof addr, connect_timeout, &text) != 0) {
      ::close(fd);
      throw Error(text + " (connect to " + endpoint.path + ")");
    }
    return fd;
  }
  AddrList addrs;
  resolve(endpoint.host, endpoint.port, /*passive=*/false, &addrs);
  std::string last_error =
      fault_fired ? "injected fault at net.connect" : "no usable address";
  for (addrinfo* ai = addrs.head; ai != nullptr && !fault_fired;
       ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_error = errno_text("socket");
      continue;
    }
    if (timed_connect(fd, ai->ai_addr, ai->ai_addrlen, connect_timeout,
                      &last_error) == 0) {
      return fd;
    }
    ::close(fd);
  }
  throw Error("cannot connect to " + to_string(endpoint) + " (" +
              last_error + ")");
}

void set_io_timeout(int fd, double seconds) {
  if (seconds <= 0) return;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>(
      (seconds - std::floor(seconds)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

}  // namespace barracuda::net
