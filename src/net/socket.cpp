#include "net/socket.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include "support/error.hpp"

namespace barracuda::net {
namespace {

std::string errno_text(const std::string& op) {
  return op + ": " + std::strerror(errno);
}

std::uint16_t parse_port(const std::string& text) {
  char* end = nullptr;
  const unsigned long value = std::strtoul(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || value > 65535) {
    throw Error("bad port '" + text + "' (expected 0..65535)");
  }
  return static_cast<std::uint16_t>(value);
}

/// getaddrinfo for a numeric-or-named IPv4/IPv6 host.
struct AddrList {
  addrinfo* head = nullptr;
  ~AddrList() {
    if (head != nullptr) ::freeaddrinfo(head);
  }
};

void resolve(const std::string& host, std::uint16_t port, bool passive,
             AddrList* out) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  if (passive) hints.ai_flags = AI_PASSIVE;
  const std::string service = std::to_string(port);
  const int rc = ::getaddrinfo(host.empty() ? "127.0.0.1" : host.c_str(),
                               service.c_str(), &hints, &out->head);
  if (rc != 0) {
    throw Error("cannot resolve '" + host + "': " + ::gai_strerror(rc));
  }
}

sockaddr_un unix_address(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof addr.sun_path) {
    throw Error("unix socket path empty or too long (max " +
                std::to_string(sizeof addr.sun_path - 1) +
                " bytes): " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

Endpoint parse_endpoint(const std::string& text) {
  Endpoint ep;
  if (text.rfind("unix:", 0) == 0) {
    ep.kind = Endpoint::Kind::kUnix;
    ep.path = text.substr(5);
    if (ep.path.empty()) throw Error("empty unix socket path in '" + text + "'");
    return ep;
  }
  std::string rest = text;
  if (rest.rfind("tcp:", 0) == 0) rest = rest.substr(4);
  const std::size_t colon = rest.rfind(':');
  if (colon == std::string::npos) {
    throw Error("bad endpoint '" + text +
                "' (expected unix:PATH, tcp:HOST:PORT, or HOST:PORT)");
  }
  ep.kind = Endpoint::Kind::kTcp;
  ep.host = rest.substr(0, colon);
  ep.port = parse_port(rest.substr(colon + 1));
  return ep;
}

std::string to_string(const Endpoint& endpoint) {
  if (endpoint.kind == Endpoint::Kind::kUnix) return "unix:" + endpoint.path;
  return (endpoint.host.empty() ? std::string("127.0.0.1") : endpoint.host) +
         ":" + std::to_string(endpoint.port);
}

int listen_tcp(const std::string& host, std::uint16_t port,
               std::uint16_t* bound_port) {
  AddrList addrs;
  resolve(host, port, /*passive=*/true, &addrs);
  int fd = -1;
  std::string last_error = "no usable address";
  for (addrinfo* ai = addrs.head; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_error = errno_text("socket");
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
        ::listen(fd, 64) == 0) {
      break;
    }
    last_error = errno_text("bind/listen");
    ::close(fd);
    fd = -1;
  }
  if (fd < 0) {
    throw Error("cannot listen on " + host + ":" + std::to_string(port) +
                " (" + last_error + ")");
  }
  if (bound_port != nullptr) {
    sockaddr_storage bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
      ::close(fd);
      throw Error(errno_text("getsockname"));
    }
    if (bound.ss_family == AF_INET) {
      *bound_port =
          ntohs(reinterpret_cast<sockaddr_in*>(&bound)->sin_port);
    } else {
      *bound_port =
          ntohs(reinterpret_cast<sockaddr_in6*>(&bound)->sin6_port);
    }
  }
  return fd;
}

int listen_unix(const std::string& path) {
  const sockaddr_un addr = unix_address(path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw Error(errno_text("socket(AF_UNIX)"));
  // The path belongs to this server: a stale socket file from a crashed
  // predecessor must not block the bind.
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 64) != 0) {
    const std::string text = errno_text("bind/listen on " + path);
    ::close(fd);
    throw Error(text);
  }
  return fd;
}

int connect_endpoint(const Endpoint& endpoint) {
  if (endpoint.kind == Endpoint::Kind::kUnix) {
    const sockaddr_un addr = unix_address(endpoint.path);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw Error(errno_text("socket(AF_UNIX)"));
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) != 0) {
      const std::string text = errno_text("connect to " + endpoint.path);
      ::close(fd);
      throw Error(text);
    }
    return fd;
  }
  AddrList addrs;
  resolve(endpoint.host, endpoint.port, /*passive=*/false, &addrs);
  std::string last_error = "no usable address";
  for (addrinfo* ai = addrs.head; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_error = errno_text("socket");
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) return fd;
    last_error = errno_text("connect");
    ::close(fd);
  }
  throw Error("cannot connect to " + to_string(endpoint) + " (" +
              last_error + ")");
}

void set_io_timeout(int fd, double seconds) {
  if (seconds <= 0) return;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>(
      (seconds - std::floor(seconds)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

}  // namespace barracuda::net
