// A poll(2)-driven request/response server over the frame protocol.
//
// Architecture (one event loop, W worker threads):
//
//   loop thread    polls the listeners, a self-wake pipe, and every
//                  connection that is NOT currently being serviced.
//                  A readable connection is marked in-flight and pushed
//                  to the worker queue; accepting, closing, and fd
//                  bookkeeping happen ONLY here (plus stop()), so a
//                  worker can never race the loop on an fd's lifetime.
//   worker threads pop a connection, read exactly one frame (blocking,
//                  bounded by the per-fd SO_RCVTIMEO), run the handler,
//                  write the response, then hand the fd back to the
//                  loop (return-to-poll, or close-after-error) through
//                  the returned queue + wake pipe.
//
// One frame per dispatch keeps a chatty client from monopolizing a
// worker: between its requests the connection sits back in the poll
// set like everyone else's.
//
// Failure policy per connection:
//   clean EOF at a frame boundary   normal close (counted in closed)
//   FrameError (corrupt frame)      counted in protocol_errors, a
//                                   best-effort kError response is
//                                   sent, the connection is closed —
//                                   a desynchronized stream is dead
//   handler throws                  counted in handler_errors, kError
//                                   response, connection STAYS OPEN
//                                   (framing is intact; the request
//                                   merely failed)
//   transport error                 counted in io_errors, closed
//
// Fault site: `net.accept` fires in the accept path — an accepted
// connection is immediately closed, modeling accept/setup failure.
//
// stop() is graceful: the loop exits, workers drain every already-
// dispatched connection (responses are still written), then all fds
// close.  Listeners on Unix-domain paths unlink their socket files.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <utility>
#include <vector>

#include "net/frame.hpp"

namespace barracuda::net {

struct ServerOptions {
  /// Worker threads servicing dispatched connections.  Clamped to >= 1.
  std::size_t workers = 4;
  /// Per-frame payload cap handed to read_frame.
  std::size_t max_payload = kMaxPayload;
  /// Per-connection SO_RCVTIMEO/SO_SNDTIMEO in seconds: the bound on
  /// how long a stalled peer can hold a worker.  <= 0 disables.
  double io_timeout = 30.0;
};

/// Point-in-time server counters (all monotone except open_connections).
struct ServerStats {
  std::size_t accepted = 0;
  std::size_t closed = 0;
  std::size_t frames = 0;           ///< well-formed frames dispatched
  std::size_t protocol_errors = 0;  ///< corrupt frames (connection dropped)
  std::size_t handler_errors = 0;   ///< handler exceptions (kError replies)
  std::size_t io_errors = 0;        ///< transport failures mid-service
  std::size_t faulted_accepts = 0;  ///< connections dropped by net.accept
  std::size_t open_connections = 0;
};

/// The frame server.  Handler runs on worker threads — possibly several
/// concurrently — and must be thread-safe; whatever it returns is the
/// response frame.  A throwing handler produces a kError response.
class Server {
 public:
  using Handler = std::function<Frame(const Frame&)>;

  explicit Server(Handler handler, ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Add a TCP listener (port 0 = ephemeral).  Returns the bound port.
  /// Must be called before start().
  std::uint16_t listen_tcp(const std::string& host, std::uint16_t port);

  /// Add a Unix-domain listener at `path` (stale socket files are
  /// replaced; the file is unlinked on stop).  Must precede start().
  void listen_unix(const std::string& path);

  /// Launch the event loop and workers.  Requires >= 1 listener.
  void start();

  /// Graceful shutdown: stop accepting, drain dispatched requests,
  /// close every connection and listener.  Idempotent.
  void stop();

  bool running() const { return started_ && !stopped_; }

  ServerStats stats() const;

 private:
  void loop();
  void worker();
  void wake();
  /// Apply workers' (fd, close?) hand-backs; loop/stop only.
  void apply_returned(std::vector<std::pair<int, bool>> returned);

  Handler handler_;
  ServerOptions options_;

  std::vector<int> listeners_;
  std::vector<std::string> unix_paths_;
  int wake_read_ = -1;
  int wake_write_ = -1;

  std::thread loop_thread_;
  std::vector<std::thread> workers_;

  /// Guards the queues, the connection set, and stopping_.
  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  std::deque<int> ready_;                         ///< dispatched, awaiting a worker
  std::vector<std::pair<int, bool>> returned_;    ///< (fd, close?) from workers
  std::unordered_set<int> idle_conns_;            ///< owned by the poll set
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  bool started_ = false;
  bool stopped_ = false;

  std::atomic<std::size_t> accepted_{0};
  std::atomic<std::size_t> closed_{0};
  std::atomic<std::size_t> frames_{0};
  std::atomic<std::size_t> protocol_errors_{0};
  std::atomic<std::size_t> handler_errors_{0};
  std::atomic<std::size_t> io_errors_{0};
  std::atomic<std::size_t> faulted_accepts_{0};
};

}  // namespace barracuda::net
