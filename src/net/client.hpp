// Blocking request/response client over the frame protocol: connect to
// an endpoint, exchange one frame per request().  Not thread-safe —
// callers that share a Client across threads serialize externally
// (serve::RemoteRegistry does exactly that, and layers its half-open
// reconnect breaker on top).
#pragma once

#include <cstddef>
#include <string>

#include "net/frame.hpp"
#include "net/socket.hpp"

namespace barracuda::net {

struct ClientOptions {
  /// Per-operation SO_RCVTIMEO/SO_SNDTIMEO in seconds (<= 0 = block
  /// forever).  A dead server turns into a bounded Error, never a hang.
  double timeout = 5.0;
  /// Bound on connect(2) itself in seconds (<= 0 = kernel default,
  /// which can be minutes against a black-holed endpoint).  The I/O
  /// timeout above only starts once the connection exists.
  double connect_timeout = 5.0;
  std::size_t max_payload = kMaxPayload;
};

class Client {
 public:
  explicit Client(Endpoint endpoint, ClientOptions options = {});
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// (Re)connect to the endpoint.  Throws Error on failure; the client
  /// is disconnected afterwards either way until a connect succeeds.
  void connect();

  bool connected() const { return fd_ >= 0; }
  void close();

  const Endpoint& endpoint() const { return endpoint_; }

  /// One round trip: write `request`, read the response frame.  Throws
  /// support::Error on transport failure (including timeouts and a
  /// server that closed the stream), FrameError on a corrupt response.
  /// Requires connected().
  Frame request(const Frame& request_frame);

 private:
  Endpoint endpoint_;
  ClientOptions options_;
  int fd_ = -1;
};

}  // namespace barracuda::net
