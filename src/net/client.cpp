#include "net/client.hpp"

#include <unistd.h>

#include <utility>

#include "support/error.hpp"

namespace barracuda::net {

Client::Client(Endpoint endpoint, ClientOptions options)
    : endpoint_(std::move(endpoint)), options_(options) {}

Client::~Client() { close(); }

void Client::connect() {
  close();
  fd_ = connect_endpoint(endpoint_, options_.connect_timeout);
  set_io_timeout(fd_, options_.timeout);
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Frame Client::request(const Frame& request_frame) {
  if (fd_ < 0) throw Error("plan client is not connected");
  write_frame(fd_, request_frame);
  Frame response;
  if (!read_frame(fd_, &response, options_.max_payload)) {
    throw Error("plan server closed the connection");
  }
  return response;
}

}  // namespace barracuda::net
