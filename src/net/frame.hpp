// The plan-serving wire protocol's framing layer: every message on a
// connection — request or response, either direction — is one length-
// prefixed binary frame:
//
//   offset  size  field
//   ------  ----  -----------------------------------------------
//        0     4  magic      0x42435031 ("BCP1"), little-endian
//        4     1  version    protocol version, currently 1
//        5     1  op         operation / status code (see Op)
//        6     2  reserved   must be written as 0, ignored on read
//        8     4  length     payload byte count, little-endian
//       12     4  checksum   FNV-1a-32 of the payload, little-endian
//       16     n  payload    `length` opaque bytes
//
// Versioning rules: the magic never changes; a receiver rejects any
// version it does not speak (there is exactly one, so a mismatch is a
// hard FrameError — no negotiation).  New operations extend the Op
// space without a version bump; removing or redefining a field bumps
// `version`.  Unknown op codes pass framing and are rejected by the
// dispatcher (kError response), so old servers fail new requests
// cleanly instead of desynchronizing the stream.
//
// Failure taxonomy: read_frame returns false ONLY on a clean
// end-of-stream at a frame boundary (the peer hung up between frames —
// a normal close).  Everything else that is wrong with the bytes — bad
// magic, unsupported version, a declared length beyond the receiver's
// limit, a checksum mismatch, or a peer that disappeared mid-frame —
// throws FrameError: the stream can no longer be trusted to be
// frame-aligned and the connection must be dropped.  Transport errors
// (reset, timeout) surface as support::Error from the netio layer.
//
// Fault site: `net.frame.corrupt` flips a checksum byte in write_frame's
// encoded bytes, so chaos runs exercise the receiver's rejection path
// with real corrupt frames on real sockets.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "support/error.hpp"

namespace barracuda::net {

/// A protocol violation on the stream: the connection is no longer
/// frame-aligned and must be closed.
class FrameError : public Error {
 public:
  explicit FrameError(const std::string& what) : Error(what) {}
};

constexpr std::uint32_t kMagic = 0x42435031;  // "BCP1" when dumped LE
constexpr std::uint8_t kVersion = 1;
constexpr std::size_t kFrameHeaderSize = 16;

/// Default cap on one frame's payload.  A full-registry anti-entropy
/// exchange is the largest message (one ~200-byte line per plan), so
/// 64 MiB covers hundreds of thousands of entries with room to spare.
constexpr std::size_t kMaxPayload = 64u << 20;

/// Operation and status codes.  Requests use the low range, responses
/// the 0x40+ range; one byte on the wire.
enum class Op : std::uint8_t {
  kPing = 1,      ///< liveness probe; payload echoed back
  kGetPlan = 2,   ///< payload: signature -> kOk(plan line) | kNotFound
  kPutPlan = 3,   ///< payload: plan line -> kOk("1" accepted | "0" kept)
  kSync = 4,      ///< payload: full registry text -> kOk(server's text)
  kStats = 5,     ///< payload empty -> kOk(key\tvalue lines)
  kOk = 0x40,     ///< success response
  kNotFound = 0x41,  ///< GET_PLAN response: signature unknown
  kError = 0x7f,  ///< failure response; payload is the error text
};

/// One protocol message: an op code plus its opaque payload bytes.
struct Frame {
  Op op = Op::kPing;
  std::string payload;
};

/// FNV-1a-32 over the payload — cheap, endian-free, and plenty to catch
/// the torn/flipped bytes framing exists to detect (this is corruption
/// detection, not cryptography).
std::uint32_t checksum32(std::string_view data);

/// The frame's wire bytes (header + payload).  Throws Error when the
/// payload exceeds the u32 length field.
std::string encode_frame(const Frame& frame);

/// Write one frame to `fd` (with the `net.frame.corrupt` fault probe
/// applied to the encoded bytes).  Throws support::Error on I/O failure.
void write_frame(int fd, const Frame& frame);

/// Read one frame from `fd`.  Returns false on a clean end-of-stream at
/// a frame boundary; throws FrameError on any protocol violation and
/// support::Error on transport failure.  `max_payload` bounds the
/// declared length BEFORE any allocation.
bool read_frame(int fd, Frame* out, std::size_t max_payload = kMaxPayload);

}  // namespace barracuda::net
