#include "net/frame.hpp"

#include <limits>

#include "support/faultinject.hpp"
#include "support/netio.hpp"

namespace barracuda::net {
namespace {

void put32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

std::uint32_t get32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

std::uint32_t checksum32(std::string_view data) {
  std::uint32_t h = 2166136261u;
  for (unsigned char c : data) {
    h ^= c;
    h *= 16777619u;
  }
  return h;
}

std::string encode_frame(const Frame& frame) {
  if (frame.payload.size() >
      std::numeric_limits<std::uint32_t>::max()) {
    throw Error("frame payload too large for the u32 length field: " +
                std::to_string(frame.payload.size()) + " bytes");
  }
  std::string out;
  out.reserve(kFrameHeaderSize + frame.payload.size());
  put32(out, kMagic);
  out.push_back(static_cast<char>(kVersion));
  out.push_back(static_cast<char>(frame.op));
  out.push_back(0);
  out.push_back(0);
  put32(out, static_cast<std::uint32_t>(frame.payload.size()));
  put32(out, checksum32(frame.payload));
  out += frame.payload;
  return out;
}

void write_frame(int fd, const Frame& frame) {
  std::string wire = encode_frame(frame);
  // `net.frame.corrupt` flips a checksum byte AFTER encoding: the bytes
  // still frame correctly (magic/version/length intact, the stream stays
  // aligned) but the receiver must reject the payload as corrupt.
  if (support::fault::hit("net.frame.corrupt")) {
    wire[12] = static_cast<char>(wire[12] ^ 0x5a);
  }
  support::netio::write_all(fd, wire.data(), wire.size());
}

bool read_frame(int fd, Frame* out, std::size_t max_payload) {
  unsigned char header[kFrameHeaderSize];
  try {
    if (!support::netio::read_exact(fd, header, sizeof header)) {
      return false;  // clean close at a frame boundary
    }
  } catch (const support::netio::TruncatedRead& e) {
    throw FrameError(std::string("torn frame header: ") + e.what());
  }
  if (get32(header) != kMagic) {
    throw FrameError("bad frame magic (not a barracuda plan-protocol "
                     "stream, or the stream lost frame alignment)");
  }
  if (header[4] != kVersion) {
    throw FrameError("unsupported protocol version " +
                     std::to_string(header[4]) + " (this side speaks " +
                     std::to_string(kVersion) + ")");
  }
  const std::uint32_t length = get32(header + 8);
  if (!support::netio::frame_length_ok(length, max_payload)) {
    throw FrameError("declared payload length " + std::to_string(length) +
                     " exceeds the " + std::to_string(max_payload) +
                     "-byte limit");
  }
  std::string payload(length, '\0');
  if (length > 0) {
    try {
      if (!support::netio::read_exact(fd, payload.data(), length)) {
        throw FrameError("peer closed between frame header and payload");
      }
    } catch (const support::netio::TruncatedRead& e) {
      throw FrameError(std::string("torn frame payload: ") + e.what());
    }
  }
  if (checksum32(payload) != get32(header + 12)) {
    throw FrameError("frame payload checksum mismatch");
  }
  out->op = static_cast<Op>(header[5]);
  out->payload = std::move(payload);
  return true;
}

}  // namespace barracuda::net
