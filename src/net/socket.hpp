// Socket plumbing shared by the plan server and client: endpoint
// parsing (`unix:PATH`, `tcp:HOST:PORT`, bare `HOST:PORT`), TCP and
// Unix-domain listeners, and blocking connects with per-fd I/O
// timeouts.  Everything returns plain file descriptors — ownership
// stays with the caller (the server's event loop, the client's
// connection object).
#pragma once

#include <cstdint>
#include <string>

namespace barracuda::net {

/// A parsed server address.
struct Endpoint {
  enum class Kind { kTcp, kUnix };
  Kind kind = Kind::kTcp;
  std::string host;  ///< TCP host (name or numeric)
  std::uint16_t port = 0;
  std::string path;  ///< Unix-domain socket path
};

/// Parse `unix:PATH`, `tcp:HOST:PORT`, or `HOST:PORT` (an empty host
/// means 127.0.0.1; TCP port 0 asks the kernel for an ephemeral port).
/// Throws Error on malformed text.
Endpoint parse_endpoint(const std::string& text);

/// Human-readable form for logs and reports.
std::string to_string(const Endpoint& endpoint);

/// Bind + listen a TCP socket on host:port (SO_REUSEADDR set; port 0 =
/// ephemeral).  Stores the actually bound port in *bound_port when
/// non-null.  Returns the listening fd; throws Error on failure.
int listen_tcp(const std::string& host, std::uint16_t port,
               std::uint16_t* bound_port = nullptr);

/// Bind + listen a Unix-domain socket at `path` (an existing socket
/// file is unlinked first — the path belongs to this server).  Returns
/// the listening fd; throws Error on failure (including a path too long
/// for sockaddr_un).
int listen_unix(const std::string& path);

/// Connect to `endpoint`.  connect_timeout > 0 bounds the connect(2)
/// itself (non-blocking connect + poll), so a black-holed endpoint
/// costs at most that many seconds instead of the kernel default;
/// <= 0 keeps the historical fully blocking connect.  Returns the
/// connected fd (restored to blocking mode); throws Error on failure.
/// Fault site: `net.connect` fires inside the real failure branch.
int connect_endpoint(const Endpoint& endpoint, double connect_timeout = 0);

/// Arm SO_RCVTIMEO and SO_SNDTIMEO on `fd` so a stalled peer turns
/// into a bounded I/O error instead of a wedged thread.  seconds <= 0
/// leaves the fd blocking forever.
void set_io_timeout(int fd, double seconds);

}  // namespace barracuda::net
