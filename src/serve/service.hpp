// TuningService: answer every contraction request immediately, tune in
// the background, and never serve a slower plan than before.
//
// The serving protocol (cuTT's plan-cache shape, with Peise-style
// model-first answers):
//
//   get_plan(problem, device)
//     warm signature  -> the registry's current best plan, instantly.
//     cold signature  -> a cheap static fallback (lowest-flops variant
//                        under the decision algorithm's default mapping
//                        — what the compiler would pick without
//                        autotuning), published to the registry and
//                        served instantly, while a full core::tune()
//                        is queued on the shared support::ThreadPool.
//                        When the tune finishes it upgrades the
//                        registry entry (better-wins), so later
//                        requests get the tuned plan.
//
// Single-flight: concurrent requests for the same untuned signature
// schedule exactly one background tune — the first requester enqueues
// it, everyone else is served the fallback and rides the same upgrade.
// The in-flight set is checked together with the registry's tuned flag
// under one mutex, and a finished tune publishes its upgrade BEFORE
// leaving the in-flight set, so the dedup has no completion-race hole.
//
// Backpressure: at most `queue_capacity` background tunes may be
// scheduled-or-running at once.  Beyond that the service REJECTS the
// enqueue, not the request: the caller still gets the fallback plan
// immediately (counted in Stats::rejected), the signature stays
// untuned, and a later request retries the enqueue once the queue has
// drained.  Nothing ever blocks a client on tuning.
//
// Resilience (clients are NEVER failed by a failing tuner):
//
//   Retry    a background tune that throws is retried in place, up to
//            RetryPolicy::max_attempts total attempts, with capped
//            exponential backoff and deterministic jitter (a pure
//            function of jitter_seed, signature and attempt — no
//            wall-clock or global randomness, so failure schedules
//            reproduce exactly).  Each attempt's error text is kept.
//   Breaker  a signature whose run exhausts every attempt trips a
//            per-signature circuit breaker: it keeps being served its
//            fallback plan instantly, but no further tunes are
//            scheduled for it until reset_breakers() — or, with
//            ServeOptions::breaker_cooldown > 0, until the cool-down
//            elapses and the breaker goes HALF-OPEN: the next request
//            admits exactly one probe tune, whose success closes the
//            breaker (self-healing) and whose failure re-opens it with
//            a fresh cool-down.  A poisoned problem cannot eat the
//            tuning queue forever.
//
// Batching (get_plan_batch / get_executable_batch): many requests in
// one call pay the serving overhead — canonicalization, registry
// lookup, cold fallback, tune enqueue, materialization — once per
// DISTINCT signature instead of once per item.  This is the serving
// analog of batched BLAS contractions: one plan amortized across a
// thousand same-shape kernels.
//   Deadline tune_deadline > 0 bounds each tune run's wall time
//            cooperatively: the search checks the budget between
//            evaluation batches (surf::SearchOptions::should_stop) and
//            an expired run publishes the best plan found so far —
//            an answer, not an error.  Counted in Stats::
//            deadline_expired.
//
// Adaptive re-tuning (the traffic -> budget feedback loop): every served
// request records demand on the registry (request counter + served-
// latency histogram, see PlanRegistry::record_demand), and retune_pass()
// ranks the ALREADY-TUNED signatures by requests accumulated since their
// last re-tune, picking the top retune_top_k whose fresh demand clears
// hot_threshold and re-enqueuing them through the SAME single-flight /
// breaker / backpressure machinery as a cold tune — just with a larger
// search budget (retune_budget evaluations).  Publication stays
// better-wins, so a re-tune can only improve or keep the served plan:
// per-signature served latency is monotone non-increasing across
// re-tune publishes.  retune_interval > 0 runs the pass on a background
// scheduler thread; tests and the CLI call retune_pass() directly for
// deterministic behavior.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/barracuda.hpp"
#include "octopi/ast.hpp"
#include "serve/plancache.hpp"
#include "serve/registry.hpp"
#include "serve/remotebackend.hpp"
#include "serve/signature.hpp"

namespace barracuda::serve {

/// Retry schedule for failed background tunes.  Attempt k (2-based)
/// sleeps min(cap_ms, base_delay_ms * 2^(k-2)) scaled by a
/// deterministic jitter factor in [0.5, 1.0] derived from
/// (jitter_seed, signature, k) — retries of the same signature under
/// the same seed always space out identically, and distinct signatures
/// decorrelate instead of thundering together.  The sleep happens on
/// the tuning worker (cheap for the millisecond delays this is meant
/// for; it is backoff, not a scheduler).
struct RetryPolicy {
  /// Total attempts per tune run, first try included.  Must be >= 1;
  /// 1 = no retries.
  std::size_t max_attempts = 3;
  double base_delay_ms = 10.0;
  double cap_ms = 1000.0;
  std::uint64_t jitter_seed = 1;
};

struct ServeOptions {
  /// Configuration for the background core::tune() runs.  To share
  /// measurements across tunes (and with offline runs), point
  /// tune.eval_cache at a core::EvalCache — it is internally
  /// synchronized, so concurrent background tunes may share one.
  core::TuneOptions tune;
  /// Bound on scheduled-plus-running background tunes (the backpressure
  /// knob).  Must be >= 1.
  std::size_t queue_capacity = 16;
  /// Retry/backoff schedule for failing background tunes.
  RetryPolicy retry;
  /// Wall-clock budget in seconds for one background tune run, spanning
  /// all its retry attempts.  0 = unbounded.  Enforced cooperatively
  /// between search batches (never mid-batch), so an expired tune still
  /// publishes the best plan it found — the deadline shapes latency,
  /// it does not discard work.
  double tune_deadline = 0;
  /// Circuit-breaker half-open cool-down in seconds.  0 (the default)
  /// keeps the PR-5 behavior: an open breaker stays open until
  /// reset_breakers().  Positive: once a breaker has been open that
  /// long, the next request for its signature admits exactly ONE probe
  /// tune (single-flight, like any schedule).  A succeeding probe
  /// closes the breaker (the node self-heals a transient poison); a
  /// failing one re-opens it and restarts the cool-down clock.
  double breaker_cooldown = 0;
  /// Capacity of the executable-plan LRU (materialized recipe + lowered
  /// kernels per signature; see serve/plancache.hpp).  Must be >= 1.
  std::size_t plan_cache_capacity = 128;
  /// Search budget (surf::SearchOptions::max_evaluations) for a
  /// re-tune run.  0 = 4x the cold-path tune's budget.  Hot plans
  /// deserve more search than the latency-bound cold tune spent.
  std::size_t retune_budget = 0;
  /// Seconds between background retune_pass() runs.  0 (the default)
  /// starts no scheduler thread — call retune_pass() explicitly.
  double retune_interval = 0;
  /// How many of the hottest signatures one retune_pass() re-enqueues.
  /// 0 disables re-tuning entirely.
  std::size_t retune_top_k = 4;
  /// Minimum requests a signature must have accumulated SINCE ITS LAST
  /// RE-TUNE to qualify as hot (clamped to >= 1) — a signature re-tuned
  /// once must earn fresh traffic before being re-tuned again.
  std::uint64_t hot_threshold = 16;
  /// Remote (L2) plan tier.  When set, a LOCAL registry miss consults
  /// the backend before falling back to the cold path: a remote hit is
  /// published into the local registry (better-wins) and served like a
  /// warm answer — the node inherits the fleet's tuning instead of
  /// redoing it.  Freshly tuned plans are published back through the
  /// backend (best-effort; failures count in ServeStats::remote_errors
  /// or remote_unavailable depending on whether a replica answered).
  /// The warm L1 path never touches the backend.  nullptr (the
  /// default) keeps the service purely local.
  std::shared_ptr<RemoteBackend> remote;
  /// Seconds between background anti-entropy rounds against `remote`
  /// (full-registry sync; see RemoteBackend::sync).  0 (the default)
  /// starts no thread — call anti_entropy_pass() explicitly.  Ignored
  /// without a remote backend.
  double anti_entropy_interval = 0;
};

/// What one get_plan request was answered with.
struct ServedPlan {
  std::string signature;
  /// The plan to lower and run (see materialize()).  Always the
  /// registry's current best for the signature at answer time.
  PlanEntry plan;
  enum class Source {
    kWarm,    ///< local registry hit
    kCold,    ///< fallback computed by this request
    kRemote,  ///< local miss answered by the remote (L2) plan tier
  };
  Source source = Source::kWarm;
  /// True when this request enqueued the background tune (at most one
  /// request per tune run returns true; in a batch, at most one ITEM
  /// per distinct signature).
  bool scheduled_tune = false;
};

/// A served plan together with its ready-to-run materialization from
/// the executable-plan cache: the enumerated variant lowered under the
/// entry's (already parsed) recipe.  The executable is shared and
/// immutable — any number of threads may run it concurrently against
/// disjoint TensorEnvs (see vgpu::execute_plan_batch).
struct ExecutableServedPlan {
  ServedPlan served;
  std::shared_ptr<const ExecutablePlan> executable;
  /// True when the executable came straight from the LRU (no
  /// enumeration, no parse, no lowering on this request).
  bool cache_hit = false;
};

/// Point-in-time service counters.  hits/misses/upgrades come from the
/// shared PlanRegistry and include other services or loads touching it.
///
/// Consistency contract: stats() never blocks the warm serving path.
/// The hot counters (requests, registry hits/misses) are relaxed
/// atomics read without any lock, so a snapshot taken while traffic is
/// flowing is "consistent enough" — each counter is exact, but counters
/// incremented at different points of a request's lifetime may be
/// observed mid-request (e.g. requests may momentarily exceed
/// hits + misses).  The tune-path counters are read under the service
/// mutex, which the warm path no longer touches.
struct ServeStats {
  std::size_t requests = 0;
  std::size_t registry_hits = 0;
  std::size_t registry_misses = 0;
  std::size_t upgrades = 0;
  /// Batched serving (get_plan_batch / get_executable_batch): calls,
  /// items served through them, and registry lookups those calls made —
  /// one per DISTINCT signature per batch, so batch_signature_lookups /
  /// batch_requests is the amortization the batch path bought.  All
  /// three are relaxed atomics: the batched warm path is as mutex-free
  /// as the per-request one.
  std::size_t batches = 0;
  std::size_t batch_requests = 0;
  std::size_t batch_signature_lookups = 0;
  /// Executable-plan LRU: fresh hits (plan reused as-is), stale hits (a
  /// registry upgrade invalidated the cached plan — re-materialized),
  /// misses (materialized for the first time), evictions, and current
  /// size.
  std::size_t plan_cache_hits = 0;
  std::size_t plan_cache_stale = 0;
  std::size_t plan_cache_misses = 0;
  std::size_t plan_cache_evictions = 0;
  std::size_t plan_cache_size = 0;
  /// Half-open circuit breaker: probe tunes admitted after the
  /// cool-down, and breakers closed by a succeeding probe.
  std::size_t breaker_probes = 0;
  std::size_t breaker_healed = 0;
  std::size_t tunes_started = 0;
  std::size_t tunes_completed = 0;
  /// Tune runs that exhausted every retry attempt (each trips the
  /// signature's circuit breaker).
  std::size_t tune_failures = 0;
  /// Tune attempts beyond a run's first — i.e. how often the retry
  /// policy actually fired, across all runs.
  std::size_t retries = 0;
  /// Signatures currently quarantined by the circuit breaker (a gauge;
  /// reset_breakers() drops it to 0).
  std::size_t breaker_open = 0;
  /// Tune runs stopped by the cooperative deadline.  Normally such a
  /// run still publishes its best-so-far plan and counts as completed;
  /// a run whose attempts were all failing when the clock ran out
  /// counts as a failure instead.
  std::size_t deadline_expired = 0;
  /// Error text of the most recent failed tune attempt ("" when none
  /// has failed).
  std::string last_error;
  /// Enqueues refused by the backpressure policy (the request itself
  /// was still answered with the fallback).
  std::size_t rejected = 0;
  /// Background tunes currently executing.
  std::size_t in_flight = 0;
  /// Background tunes submitted but not yet picked up by a worker.
  std::size_t queue_depth = 0;
  /// Total wall seconds inside completed background tunes; divide by
  /// tunes_completed for the mean tune latency.
  double tune_seconds_total = 0;
  /// Adaptive re-tuning: hot signatures re-enqueued by retune_pass(),
  /// re-tune runs that completed, and completions whose bigger-budget
  /// plan actually beat the incumbent (better-wins publish succeeded).
  std::size_t retunes_scheduled = 0;
  std::size_t retunes_completed = 0;
  std::size_t retunes_improved = 0;
  /// Remote (L2) plan tier, all zero without ServeOptions::remote:
  /// local misses answered by the backend (each skipped a cold tune),
  /// local misses the backend also missed, tuned plans published back,
  /// backend operations rejected at the app level (a replica answered
  /// and said no), backend operations with no reachable replica at all
  /// (the node degraded to local-only for that op), and completed
  /// anti-entropy rounds.  The replication counters mirror the
  /// backend's RemoteTelemetry: reads answered by a non-primary
  /// replica after the primary failed, hedged reads launched, and
  /// hedges the second replica won.
  std::size_t remote_hits = 0;
  std::size_t remote_misses = 0;
  std::size_t remote_publishes = 0;
  std::size_t remote_errors = 0;
  std::size_t remote_unavailable = 0;
  std::size_t remote_failovers = 0;
  std::size_t remote_hedges = 0;
  std::size_t remote_hedge_wins = 0;
  std::size_t anti_entropy_rounds = 0;
  /// Demand recorded on the shared registry: total requests (including
  /// baselines loaded from v2 files) and the merged served-latency
  /// histogram across every signature.
  std::uint64_t demand_requests = 0;
  support::HistogramSnapshot served_latency;
};

/// Per-signature failure record, kept from the most recent tune run
/// that had at least one failing attempt.  A run that eventually
/// succeeds after retries still leaves its record (the error history
/// is diagnostic), with breaker_open = false.
struct TuneFailure {
  /// Attempts the recorded run made (== ServeOptions::retry.
  /// max_attempts when the breaker tripped).
  std::size_t attempts = 0;
  /// what() of the run's last failing attempt.
  std::string last_error;
  /// True while the signature is quarantined: no further tunes will be
  /// scheduled for it until reset_breakers().
  bool breaker_open = false;
};

/// Concurrent plan-serving front end over a PlanRegistry.  Thread-safe:
/// any number of client threads may call get_plan concurrently.  The
/// registry must outlive the service.  Destruction drains in-flight
/// tunes (their upgrades still land in the registry).
class TuningService {
 public:
  explicit TuningService(PlanRegistry& registry, ServeOptions options = {});
  ~TuningService();

  TuningService(const TuningService&) = delete;
  TuningService& operator=(const TuningService&) = delete;

  /// Answer a request: never blocks on tuning, never returns a plan
  /// slower than any previously served for the same signature.  The
  /// warm (tuned registry hit) path is lock-free: a shard-snapshot read
  /// plus relaxed counter increments — it never takes the service mutex
  /// and never contends with a publishing tune, a merge_save, or
  /// another reader.  The miss/untuned path alone takes the service
  /// mutex (single-flight scheduling).
  ServedPlan get_plan(const core::TuningProblem& problem,
                      const vgpu::DeviceProfile& device);

  /// Answer N requests in ONE call, amortizing the per-request serving
  /// overhead across every item that shares a signature: items are
  /// grouped by canonical signature (heterogeneous batches are fine —
  /// each distinct problem is canonicalized once), and each distinct
  /// signature pays ONE registry lookup, ONE cold-path fallback, and at
  /// most ONE single-flight tune enqueue, no matter how many items map
  /// to it.  Answers come back in item order and are identical to what
  /// N get_plan calls would return (scheduled_tune is reported on the
  /// first item of its signature group).  Like get_plan, the warm path
  /// takes no lock.
  std::vector<ServedPlan> get_plan_batch(
      const std::vector<core::TuningProblem>& problems,
      const vgpu::DeviceProfile& device);

  /// get_plan plus materialization through the executable-plan LRU: a
  /// repeat request for an unchanged signature reuses the cached lowered
  /// kernels outright — no enumeration, no recipe parse, no lowering.
  /// A registry upgrade (background tune landing) invalidates the
  /// cached plan on its next request (counted in plan_cache_stale).
  ExecutableServedPlan get_executable(const core::TuningProblem& problem,
                                      const vgpu::DeviceProfile& device);

  /// Batched get_executable: one registry lookup AND at most one
  /// materialization per distinct signature; every item of a signature
  /// group shares the same ExecutablePlan pointer.
  std::vector<ExecutableServedPlan> get_executable_batch(
      const std::vector<core::TuningProblem>& problems,
      const vgpu::DeviceProfile& device);

  /// Block until no background tune is scheduled or running.  Must not
  /// be called from a ThreadPool worker (it would wait on the very pool
  /// it occupies).
  void drain();

  /// Point-in-time counters, each read exactly once (atomics relaxed,
  /// tune state under the service mutex) — safe to call while worker
  /// threads mutate every counter.  Never blocks get_plan's warm path —
  /// see the ServeStats consistency contract.
  ServeStats snapshot() const;

  /// Alias for snapshot() (the historical name).
  ServeStats stats() const { return snapshot(); }

  /// Run one adaptive re-tune pass: rank the already-tuned signatures
  /// this service has served by requests accumulated since their last
  /// re-tune, and re-enqueue the top ServeOptions::retune_top_k whose
  /// fresh demand reaches hot_threshold — through the normal
  /// single-flight / breaker / backpressure machinery, with
  /// retune_budget evaluations.  Returns the signatures actually
  /// enqueued (deterministic: demand descending, signature ascending on
  /// ties).  Publication is better-wins, so served plans only ever
  /// improve.  Thread-safe; the background scheduler (retune_interval >
  /// 0) calls exactly this.
  std::vector<std::string> retune_pass();

  /// Run one anti-entropy round against ServeOptions::remote: push the
  /// local registry's full state, absorb the backend's in return (both
  /// converge to the exact union — better-wins entries, max/freshest
  /// demand).  Returns true when the round completed; false without a
  /// backend or when it failed (counted in remote_errors or
  /// remote_unavailable depending on whether a replica answered).
  /// Thread-safe; the background thread (anti_entropy_interval > 0)
  /// calls exactly this.
  bool anti_entropy_pass();

  /// True (and fills *failure) when `signature`'s most recent tune run
  /// had at least one failing attempt.
  bool last_failure(const std::string& signature, TuneFailure* failure) const;

  /// Close every open circuit breaker: quarantined signatures become
  /// schedulable again on their next untuned request.  Failure records
  /// are kept (with breaker_open cleared) — the history is diagnostic.
  void reset_breakers();

 private:
  /// One batch item group: every item index in `items` maps to the same
  /// canonical signature, computed once.
  struct SignatureGroup {
    const core::TuningProblem* problem = nullptr;
    std::string sig;
    std::vector<std::size_t> items;
  };

  /// Group batch items by signature, canonicalizing each DISTINCT
  /// problem once (duplicates are detected with cheap structural
  /// equality, not by re-canonicalizing).
  std::vector<SignatureGroup> group_batch(
      const std::vector<core::TuningProblem>& problems,
      const vgpu::DeviceProfile& device) const;

  /// The single-signature serving core shared by every entry point:
  /// one lookup, cold fallback on miss, single-flight schedule when
  /// untuned.  Records `count` requests of demand (batch groups pass
  /// their item count) and remembers the (problem, device) context so
  /// retune_pass() can rebuild the tune inputs later.
  ServedPlan serve_signature(std::string sig,
                             const core::TuningProblem& problem,
                             const vgpu::DeviceProfile& device,
                             std::size_t count = 1);

  /// The served plan's executable, from the LRU when fresh, otherwise
  /// materialized and cached.  Sets *cache_hit accordingly.
  std::shared_ptr<const ExecutablePlan> executable_for(
      const ServedPlan& served, const core::TuningProblem& problem,
      bool* cache_hit);

  /// Enqueue the background tune for `sig` unless it is already
  /// in flight, already tuned (skipped for re-tunes — re-tuning tuned
  /// entries is the point), quarantined by its circuit breaker (an
  /// open breaker past its cool-down admits exactly one probe), or the
  /// queue is full.  Returns whether this call scheduled it.
  bool maybe_schedule(const std::string& sig,
                      const core::TuningProblem& problem,
                      const vgpu::DeviceProfile& device,
                      bool retune = false);
  void run_tune(const std::string& sig, const core::TuningProblem& problem,
                const vgpu::DeviceProfile& device, bool retune = false);
  /// Remember the serve context retune_pass() needs to rebuild a tune
  /// for `sig`.  Lock-free once known (immutable-snapshot find);
  /// copy-on-write insert under mutex_ on first sight.
  void remember_signature(const std::string& sig,
                          const core::TuningProblem& problem,
                          const vgpu::DeviceProfile& device);
  /// Body of the retune_interval scheduler thread.
  void retune_loop();
  /// Body of the anti_entropy_interval sync thread (shares the retune
  /// stop signal — both are periodic maintenance loops).
  void anti_entropy_loop();

  PlanRegistry& registry_;
  ServeOptions options_;

  /// Executable-plan LRU (mutex-free reads; see serve/plancache.hpp).
  PlanCache plan_cache_;

  /// Hot-path counters the service itself owns: bumped with relaxed
  /// fetch_adds so warm requests — single or batched — touch no lock.
  std::atomic<std::size_t> requests_{0};
  std::atomic<std::size_t> batches_{0};
  std::atomic<std::size_t> batch_requests_{0};
  std::atomic<std::size_t> batch_signature_lookups_{0};
  std::atomic<std::size_t> plan_cache_hits_{0};
  std::atomic<std::size_t> plan_cache_stale_{0};
  std::atomic<std::size_t> plan_cache_misses_{0};
  /// Remote (L2) tier counters — relaxed atomics because the fetch and
  /// publish sites run outside mutex_ (fetch on the miss path before
  /// scheduling, publish on the tune worker after its run).
  std::atomic<std::size_t> remote_hits_{0};
  std::atomic<std::size_t> remote_misses_{0};
  std::atomic<std::size_t> remote_publishes_{0};
  std::atomic<std::size_t> remote_errors_{0};
  std::atomic<std::size_t> remote_unavailable_{0};
  std::atomic<std::size_t> anti_entropy_rounds_{0};

  /// mutex_ protects ONLY the tune-scheduling state below — it is taken
  /// on the miss/untuned path and by tune workers, never by a warm hit.
  mutable std::mutex mutex_;
  std::condition_variable idle_cv_;
  /// Signatures with a scheduled-or-running background tune.
  std::unordered_set<std::string> inflight_;
  /// Open circuit breakers: when each was (re)opened, for the half-open
  /// cool-down.  "Exactly one probe" needs no extra flag — an admitted
  /// probe sits in inflight_, which already blocks a second schedule.
  std::unordered_map<std::string,
                     std::chrono::steady_clock::time_point> breaker_;
  /// Most recent failing run per signature (attempts + error text;
  /// breaker_open is derived from breaker_ at query time).
  std::unordered_map<std::string, TuneFailure> failures_;
  std::size_t scheduled_ = 0;
  std::size_t running_ = 0;
  std::size_t tunes_started_ = 0;
  std::size_t tunes_completed_ = 0;
  std::size_t tune_failures_ = 0;
  std::size_t retries_ = 0;
  std::size_t deadline_expired_ = 0;
  std::size_t breaker_probes_ = 0;
  std::size_t breaker_healed_ = 0;
  std::string last_error_;
  std::size_t rejected_ = 0;
  double tune_seconds_total_ = 0;
  std::size_t retunes_scheduled_ = 0;
  std::size_t retunes_completed_ = 0;
  std::size_t retunes_improved_ = 0;
  /// Request count each signature had when retune_pass() last enqueued
  /// it — the baseline "fresh demand" is measured against.  Guarded by
  /// mutex_.
  std::unordered_map<std::string, std::uint64_t> retuned_hits_;

  /// Serve context per signature for re-tunes: the problem and device a
  /// future retune_pass() rebuilds core::tune inputs from.  Immutable
  /// snapshot map, atomically swapped copy-on-write (insert under
  /// mutex_) so the serve path's existence check is lock-free.
  struct RetuneContext {
    core::TuningProblem problem;
    vgpu::DeviceProfile device;
  };
  using ContextMap =
      std::unordered_map<std::string, std::shared_ptr<const RetuneContext>>;
  std::atomic<std::shared_ptr<const ContextMap>> known_;

  /// The retune_interval scheduler thread and its stop signal (guarded
  /// by retune_mutex_, separate from mutex_ so stopping never contends
  /// with tune workers).
  std::mutex retune_mutex_;
  std::condition_variable retune_cv_;
  bool retune_stop_ = false;
  std::thread retune_thread_;
  std::thread anti_entropy_thread_;
};

/// Re-lower a served plan for execution or code emission: enumerate the
/// problem's joint variants (the same deterministic ascending-flops
/// order the tuner used) and lower under the entry's recipe — the
/// cached PlanEntry::parsed form when present (every registry-served
/// entry), parsing the text only for hand-built entries.  `options`
/// must match the enumeration knobs of the ServeOptions::tune that
/// produced the entry (octopi + max_joint_variants; defaults match
/// defaults).  Prefer TuningService::get_executable, which caches the
/// result.
chill::GpuPlan materialize(const core::TuningProblem& problem,
                           const PlanEntry& entry,
                           const core::TuneOptions& options = {});

/// The cold-path fallback: the lowest-flops variant under the decision
/// algorithm's static default mapping, modeled on `device`.  Cheap (no
/// search) and exposed for tests and benchmarks.
PlanEntry fallback_plan(const core::TuningProblem& problem,
                        const vgpu::DeviceProfile& device,
                        const core::TuneOptions& options = {});

/// Registry pre-warming (the serving analog of tune_specializations):
/// tune a cartesian grid of extent specializations x devices OFFLINE
/// into a registry, so a fleet that load()s the resulting file boots
/// 100% warm — zero cold misses, zero fallback answers, zero background
/// tunes at serve time.
struct PrewarmOptions {
  /// Configuration for the per-point core::tune() runs.
  /// tune.search.n_jobs also sets the outer grid parallelism: points
  /// are independent tunes farmed across the shared ThreadPool, exactly
  /// like core::tune_specializations (the pool-depth guard keeps the
  /// searches inside each pooled tune sequential).
  core::TuneOptions tune;
  /// Cap on the extent grid (OctopiProgram::specializations' cap; the
  /// lowest corners win).  A program without ranged dims has exactly
  /// one point.
  std::size_t max_points = 64;
};

struct PrewarmResult {
  std::size_t points = 0;     ///< grid points visited (extents x devices)
  std::size_t tuned = 0;      ///< full tunes actually run
  std::size_t skipped = 0;    ///< signatures already tuned in the registry
  std::size_t published = 0;  ///< tuned entries that won better-wins
  double seconds = 0;         ///< wall time for the whole grid
};

/// Tune every (specialization, device) pair of `program`'s extent grid
/// into `registry` under the better-wins rule, in parallel on the
/// shared pool.  Signatures the registry already holds a TUNED entry
/// for are skipped (re-running prewarm over a grown grid only pays for
/// the new points).  Throws like core::tune on a broken program; the
/// registry keeps every entry published before the throw.
PrewarmResult prewarm(PlanRegistry& registry,
                      const octopi::OctopiProgram& program,
                      const std::vector<vgpu::DeviceProfile>& devices,
                      const PrewarmOptions& options = {});

}  // namespace barracuda::serve
