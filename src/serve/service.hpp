// TuningService: answer every contraction request immediately, tune in
// the background, and never serve a slower plan than before.
//
// The serving protocol (cuTT's plan-cache shape, with Peise-style
// model-first answers):
//
//   get_plan(problem, device)
//     warm signature  -> the registry's current best plan, instantly.
//     cold signature  -> a cheap static fallback (lowest-flops variant
//                        under the decision algorithm's default mapping
//                        — what the compiler would pick without
//                        autotuning), published to the registry and
//                        served instantly, while a full core::tune()
//                        is queued on the shared support::ThreadPool.
//                        When the tune finishes it upgrades the
//                        registry entry (better-wins), so later
//                        requests get the tuned plan.
//
// Single-flight: concurrent requests for the same untuned signature
// schedule exactly one background tune — the first requester enqueues
// it, everyone else is served the fallback and rides the same upgrade.
// The in-flight set is checked together with the registry's tuned flag
// under one mutex, and a finished tune publishes its upgrade BEFORE
// leaving the in-flight set, so the dedup has no completion-race hole.
//
// Backpressure: at most `queue_capacity` background tunes may be
// scheduled-or-running at once.  Beyond that the service REJECTS the
// enqueue, not the request: the caller still gets the fallback plan
// immediately (counted in Stats::rejected), the signature stays
// untuned, and a later request retries the enqueue once the queue has
// drained.  Nothing ever blocks a client on tuning.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <string>
#include <unordered_set>

#include "core/barracuda.hpp"
#include "serve/registry.hpp"
#include "serve/signature.hpp"

namespace barracuda::serve {

struct ServeOptions {
  /// Configuration for the background core::tune() runs.  To share
  /// measurements across tunes (and with offline runs), point
  /// tune.eval_cache at a core::EvalCache — it is internally
  /// synchronized, so concurrent background tunes may share one.
  core::TuneOptions tune;
  /// Bound on scheduled-plus-running background tunes (the backpressure
  /// knob).  Must be >= 1.
  std::size_t queue_capacity = 16;
};

/// What one get_plan request was answered with.
struct ServedPlan {
  std::string signature;
  /// The plan to lower and run (see materialize()).  Always the
  /// registry's current best for the signature at answer time.
  PlanEntry plan;
  enum class Source {
    kWarm,  ///< registry hit
    kCold,  ///< fallback computed by this request
  };
  Source source = Source::kWarm;
  /// True when this request enqueued the background tune (at most one
  /// request per tune run returns true).
  bool scheduled_tune = false;
};

/// Point-in-time service counters.  hits/misses/upgrades come from the
/// shared PlanRegistry and include other services or loads touching it.
struct ServeStats {
  std::size_t requests = 0;
  std::size_t registry_hits = 0;
  std::size_t registry_misses = 0;
  std::size_t upgrades = 0;
  std::size_t tunes_started = 0;
  std::size_t tunes_completed = 0;
  std::size_t tune_failures = 0;
  /// Enqueues refused by the backpressure policy (the request itself
  /// was still answered with the fallback).
  std::size_t rejected = 0;
  /// Background tunes currently executing.
  std::size_t in_flight = 0;
  /// Background tunes submitted but not yet picked up by a worker.
  std::size_t queue_depth = 0;
  /// Total wall seconds inside completed background tunes; divide by
  /// tunes_completed for the mean tune latency.
  double tune_seconds_total = 0;
};

/// Concurrent plan-serving front end over a PlanRegistry.  Thread-safe:
/// any number of client threads may call get_plan concurrently.  The
/// registry must outlive the service.  Destruction drains in-flight
/// tunes (their upgrades still land in the registry).
class TuningService {
 public:
  explicit TuningService(PlanRegistry& registry, ServeOptions options = {});
  ~TuningService();

  TuningService(const TuningService&) = delete;
  TuningService& operator=(const TuningService&) = delete;

  /// Answer a request: never blocks on tuning, never returns a plan
  /// slower than any previously served for the same signature.
  ServedPlan get_plan(const core::TuningProblem& problem,
                      const vgpu::DeviceProfile& device);

  /// Block until no background tune is scheduled or running.  Must not
  /// be called from a ThreadPool worker (it would wait on the very pool
  /// it occupies).
  void drain();

  ServeStats stats() const;

 private:
  /// Enqueue the background tune for `sig` unless it is already
  /// in flight, already tuned, or the queue is full.  Returns whether
  /// this call scheduled it.
  bool maybe_schedule(const std::string& sig,
                      const core::TuningProblem& problem,
                      const vgpu::DeviceProfile& device);
  void run_tune(const std::string& sig, const core::TuningProblem& problem,
                const vgpu::DeviceProfile& device);

  PlanRegistry& registry_;
  ServeOptions options_;

  mutable std::mutex mutex_;
  std::condition_variable idle_cv_;
  /// Signatures with a scheduled-or-running background tune.
  std::unordered_set<std::string> inflight_;
  std::size_t scheduled_ = 0;
  std::size_t running_ = 0;
  std::size_t requests_ = 0;
  std::size_t tunes_started_ = 0;
  std::size_t tunes_completed_ = 0;
  std::size_t tune_failures_ = 0;
  std::size_t rejected_ = 0;
  double tune_seconds_total_ = 0;
};

/// Re-lower a served plan for execution or code emission: enumerate the
/// problem's joint variants (the same deterministic ascending-flops
/// order the tuner used), parse the recipe and lower.  `options` must
/// match the enumeration knobs of the ServeOptions::tune that produced
/// the entry (octopi + max_joint_variants; defaults match defaults).
chill::GpuPlan materialize(const core::TuningProblem& problem,
                           const PlanEntry& entry,
                           const core::TuneOptions& options = {});

/// The cold-path fallback: the lowest-flops variant under the decision
/// algorithm's static default mapping, modeled on `device`.  Cheap (no
/// search) and exposed for tests and benchmarks.
PlanEntry fallback_plan(const core::TuningProblem& problem,
                        const vgpu::DeviceProfile& device,
                        const core::TuneOptions& options = {});

}  // namespace barracuda::serve
