#include "serve/plancache.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "support/error.hpp"

namespace barracuda::serve {

PlanCache::PlanCache(std::size_t capacity) : capacity_(capacity) {
  BARRACUDA_CHECK_MSG(capacity_ >= 1, "plan cache capacity must be >= 1");
  snapshot_.store(std::make_shared<const Map>(), std::memory_order_relaxed);
}

std::shared_ptr<const ExecutablePlan> PlanCache::find(
    const std::string& signature) const {
  // Acquire pairs with insert()'s release store, exactly like the
  // registry's shard snapshots: the map contents are fully visible, no
  // lock anywhere on this path.
  std::shared_ptr<const Map> snap =
      snapshot_.load(std::memory_order_acquire);
  auto it = snap->find(signature);
  if (it == snap->end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  // Recency bump: a monotone global tick, written relaxed — eviction
  // only needs a faithful-enough ordering, not a happens-before edge.
  it->second.last_used->store(tick_.fetch_add(1, std::memory_order_relaxed),
                              std::memory_order_relaxed);
  return it->second.plan;
}

std::shared_ptr<const ExecutablePlan> PlanCache::insert(
    const std::string& signature, ExecutablePlan plan) {
  auto shared = std::make_shared<const ExecutablePlan>(std::move(plan));
  std::lock_guard<std::mutex> lock(write_mutex_);
  std::shared_ptr<const Map> snap =
      snapshot_.load(std::memory_order_relaxed);
  auto next = std::make_shared<Map>(*snap);
  Slot& slot = (*next)[signature];
  slot.plan = shared;
  slot.last_used = std::make_shared<std::atomic<std::uint64_t>>(
      tick_.fetch_add(1, std::memory_order_relaxed));
  // LRU eviction past capacity: drop the coldest ticks.  Readers that
  // already hold an evicted plan keep it alive via their shared_ptr.
  while (next->size() > capacity_) {
    auto coldest = next->end();
    std::uint64_t coldest_tick = 0;
    for (auto it = next->begin(); it != next->end(); ++it) {
      if (it->first == signature) continue;  // never evict the newcomer
      const std::uint64_t t =
          it->second.last_used->load(std::memory_order_relaxed);
      if (coldest == next->end() || t < coldest_tick) {
        coldest = it;
        coldest_tick = t;
      }
    }
    if (coldest == next->end()) break;  // capacity 1: only the newcomer
    next->erase(coldest);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  snapshot_.store(std::move(next), std::memory_order_release);
  return shared;
}

std::size_t PlanCache::size() const {
  return snapshot_.load(std::memory_order_acquire)->size();
}

std::size_t PlanCache::hits() const {
  return hits_.load(std::memory_order_relaxed);
}

std::size_t PlanCache::misses() const {
  return misses_.load(std::memory_order_relaxed);
}

std::size_t PlanCache::evictions() const {
  return evictions_.load(std::memory_order_relaxed);
}

void PlanCache::clear() {
  std::lock_guard<std::mutex> lock(write_mutex_);
  snapshot_.store(std::make_shared<const Map>(), std::memory_order_release);
}

}  // namespace barracuda::serve
