// Canonical contraction signatures for the serving layer.
//
// A signature names "the same request" across clients, threads and
// processes: two requests that would tune to interchangeable plans must
// produce byte-identical signatures, and two requests that may tune
// differently must not collide.  It is built from the normalized
// statement text (tensor::Contraction::to_string of the parsed
// statements — whitespace, statement order within a line and DSL
// surface syntax are already gone), the index extents (a sorted map, so
// declaration order is irrelevant) and the device identity — never from
// the problem's display name, mirroring core::EvalCache::key.
#pragma once

#include <string>

#include "core/barracuda.hpp"
#include "vgpu/device.hpp"

namespace barracuda::serve {

/// The canonical signature of (problem, device).  Deterministic, free of
/// tabs and newlines (so it can be a field of the registry's
/// line-oriented text format), and independent of problem.name.
std::string signature(const core::TuningProblem& problem,
                      const vgpu::DeviceProfile& device);

/// Convenience: parse DSL text and signature it in one step — the
/// normalization path for clients that hold raw request text.  Throws
/// like core::TuningProblem::from_dsl on malformed text.
std::string signature_of_dsl(std::string_view dsl_text,
                             const vgpu::DeviceProfile& device);

}  // namespace barracuda::serve
