#include "serve/registry.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "core/report.hpp"
#include "support/error.hpp"
#include "support/faultinject.hpp"
#include "support/filelock.hpp"
#include "support/str.hpp"

namespace barracuda::serve {
namespace {

// On-disk format (line-oriented text; one plan per line):
//
//   barracuda-planregistry v2
//   <modeled_us>\t<tuned 0|1>\t<variant>\t<age>\t<hits>\t<recipe>\t<signature>
//   ...
//
// modeled_us prints with %.17g (exact IEEE round-trip).  The recipe
// field is core::serialize_recipe text with its newlines replaced by
// ';' so the whole entry stays one line; recipe lines themselves never
// contain ';' (identifiers, digits, ',', '-', '=').  Signatures are
// '|'/','/';'-separated to_string()s, free of tabs and newlines.
//
// v2 added the two demand columns: `age` counts consecutive saves since
// the signature was last requested (the age-out policy drops entries
// whose age reaches the configured limit at save time) and `hits` is
// the cumulative request count unioned across every process that ever
// merge_saved this file.  Legacy v1 files (no demand columns) still
// load; their entries start with fresh demand.
constexpr const char* kHeader = "barracuda-planregistry v2";
constexpr const char* kHeaderV1 = "barracuda-planregistry v1";

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

bool better_plan(const PlanEntry& a, const PlanEntry& b) {
  if (a.modeled_us != b.modeled_us) return a.modeled_us < b.modeled_us;
  return a.tuned && !b.tuned;
}

std::string flatten_recipe(const std::string& recipe_text) {
  std::string flat = recipe_text;
  std::replace(flat.begin(), flat.end(), '\n', ';');
  while (!flat.empty() && flat.back() == ';') flat.pop_back();
  return flat;
}

std::string unflatten_recipe(const std::string& flat) {
  std::string text = flat;
  std::replace(text.begin(), text.end(), ';', '\n');
  text.push_back('\n');
  return text;
}

std::size_t default_registry_shards() {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::min<std::size_t>(64, round_up_pow2(std::max(1u, hw)));
}

PlanRegistry::PlanRegistry() : PlanRegistry(default_registry_shards()) {}

PlanRegistry::PlanRegistry(std::size_t shards)
    : shard_count_(round_up_pow2(std::max<std::size_t>(1, shards))),
      shards_(std::make_unique<Shard[]>(shard_count_)) {
  for (std::size_t s = 0; s < shard_count_; ++s) {
    shards_[s].snapshot.store(std::make_shared<const ShardMap>(),
                              std::memory_order_relaxed);
    shards_[s].demand.store(std::make_shared<const DemandMap>(),
                            std::memory_order_relaxed);
  }
}

PlanRegistry::Shard& PlanRegistry::shard_of(
    const std::string& signature) const {
  // Power-of-two count: mask the string hash.  Readers and writers for
  // distinct shards share nothing but the counters.
  return shards_[std::hash<std::string>{}(signature) & (shard_count_ - 1)];
}

bool PlanRegistry::lookup(const std::string& signature,
                          PlanEntry* entry) const {
  const Shard& shard = shard_of(signature);
  // Acquire pairs with the publisher's release store: the snapshot's map
  // contents are fully visible.  No lock — this is the warm serving
  // path.
  std::shared_ptr<const ShardMap> snap =
      shard.snapshot.load(std::memory_order_acquire);
  auto it = snap->find(signature);
  if (it == snap->end()) {
    shard.misses.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  shard.hits.fetch_add(1, std::memory_order_relaxed);
  *entry = it->second;
  return true;
}

bool PlanRegistry::contains(const std::string& signature) const {
  const Shard& shard = shard_of(signature);
  std::shared_ptr<const ShardMap> snap =
      shard.snapshot.load(std::memory_order_acquire);
  return snap->find(signature) != snap->end();
}

bool PlanRegistry::peek(const std::string& signature,
                        PlanEntry* entry) const {
  const Shard& shard = shard_of(signature);
  std::shared_ptr<const ShardMap> snap =
      shard.snapshot.load(std::memory_order_acquire);
  auto it = snap->find(signature);
  if (it == snap->end()) return false;
  *entry = it->second;
  return true;
}

bool PlanRegistry::publish(const std::string& signature,
                           const PlanEntry& entry) {
  Shard& shard = shard_of(signature);
  {
    std::lock_guard<std::mutex> lock(shard.write_mutex);
    std::shared_ptr<const ShardMap> snap =
        shard.snapshot.load(std::memory_order_relaxed);
    auto it = snap->find(signature);
    const bool is_new = it == snap->end();
    if (!is_new && !better_plan(entry, it->second)) return false;
    // Copy-on-write: readers keep the old snapshot until the release
    // store below, then see the fully built new one.
    auto next = std::make_shared<ShardMap>(*snap);
    (*next)[signature] = entry;
    shard.snapshot.store(std::move(next), std::memory_order_release);
    if (!is_new) shard.upgrades.fetch_add(1, std::memory_order_relaxed);
  }
  // Every registered entry carries a demand record (the age-out
  // baseline), even before its first request.
  ensure_demand(shard, signature);
  return true;
}

PlanEntry PlanRegistry::publish_and_get(const std::string& signature,
                                        const PlanEntry& entry) {
  Shard& shard = shard_of(signature);
  PlanEntry result;
  {
    std::lock_guard<std::mutex> lock(shard.write_mutex);
    std::shared_ptr<const ShardMap> snap =
        shard.snapshot.load(std::memory_order_relaxed);
    auto it = snap->find(signature);
    if (it != snap->end() && !better_plan(entry, it->second)) {
      result = it->second;
    } else {
      auto next = std::make_shared<ShardMap>(*snap);
      (*next)[signature] = entry;
      if (it != snap->end()) {
        shard.upgrades.fetch_add(1, std::memory_order_relaxed);
      }
      shard.snapshot.store(std::move(next), std::memory_order_release);
      result = entry;
    }
  }
  ensure_demand(shard, signature);
  return result;
}

std::size_t PlanRegistry::size() const {
  std::size_t total = 0;
  for (std::size_t s = 0; s < shard_count_; ++s) {
    total += shards_[s].snapshot.load(std::memory_order_acquire)->size();
  }
  return total;
}

std::size_t PlanRegistry::hits() const {
  std::size_t total = 0;
  for (std::size_t s = 0; s < shard_count_; ++s) {
    total += shards_[s].hits.load(std::memory_order_relaxed);
  }
  return total;
}

std::size_t PlanRegistry::misses() const {
  std::size_t total = 0;
  for (std::size_t s = 0; s < shard_count_; ++s) {
    total += shards_[s].misses.load(std::memory_order_relaxed);
  }
  return total;
}

std::size_t PlanRegistry::upgrades() const {
  std::size_t total = 0;
  for (std::size_t s = 0; s < shard_count_; ++s) {
    total += shards_[s].upgrades.load(std::memory_order_relaxed);
  }
  return total;
}

void PlanRegistry::clear() {
  for (std::size_t s = 0; s < shard_count_; ++s) {
    Shard& shard = shards_[s];
    std::lock_guard<std::mutex> lock(shard.write_mutex);
    shard.snapshot.store(std::make_shared<const ShardMap>(),
                         std::memory_order_release);
    shard.demand.store(std::make_shared<const DemandMap>(),
                       std::memory_order_release);
    shard.hits.store(0, std::memory_order_relaxed);
    shard.misses.store(0, std::memory_order_relaxed);
    shard.upgrades.store(0, std::memory_order_relaxed);
  }
  aged_out_.store(0, std::memory_order_relaxed);
}

std::shared_ptr<PlanRegistry::Demand> PlanRegistry::ensure_demand(
    Shard& shard, const std::string& signature) const {
  // Fast path: the record exists — no lock, no copy.
  std::shared_ptr<const DemandMap> snap =
      shard.demand.load(std::memory_order_acquire);
  auto it = snap->find(signature);
  if (it != snap->end()) return it->second;
  // First touch: copy-on-write the record in under the shard's write
  // lock (re-checking — another thread may have won the race).
  std::lock_guard<std::mutex> lock(shard.write_mutex);
  std::shared_ptr<const DemandMap> current =
      shard.demand.load(std::memory_order_relaxed);
  auto again = current->find(signature);
  if (again != current->end()) return again->second;
  auto record = std::make_shared<Demand>();
  auto next = std::make_shared<DemandMap>(*current);
  (*next)[signature] = record;
  shard.demand.store(std::move(next), std::memory_order_release);
  return record;
}

void PlanRegistry::record_demand(const std::string& signature,
                                 double served_us, std::uint64_t count) {
  if (count == 0) return;
  Shard& shard = shard_of(signature);
  std::shared_ptr<Demand> d = ensure_demand(shard, signature);
  d->local_hits.fetch_add(count, std::memory_order_relaxed);
  // -1 = "requested since the last save"; save() folds it to age 0.
  d->idle.store(-1, std::memory_order_relaxed);
  d->served_us.record(served_us, count);
}

void PlanRegistry::absorb_demand(const std::string& signature,
                                 std::uint64_t file_hits,
                                 std::uint64_t file_age) {
  Shard& shard = shard_of(signature);
  std::shared_ptr<Demand> d;
  {
    std::shared_ptr<const DemandMap> snap =
        shard.demand.load(std::memory_order_acquire);
    auto it = snap->find(signature);
    if (it != snap->end()) d = it->second;
  }
  if (!d) {
    // First sighting of this signature: the record IS the file's state
    // (an ensure_demand() record would start "fresh", wrongly erasing
    // the file's age).
    std::lock_guard<std::mutex> lock(shard.write_mutex);
    std::shared_ptr<const DemandMap> current =
        shard.demand.load(std::memory_order_relaxed);
    auto again = current->find(signature);
    if (again != current->end()) {
      d = again->second;
    } else {
      d = std::make_shared<Demand>();
      d->base_hits.store(file_hits, std::memory_order_relaxed);
      d->idle.store(static_cast<std::int64_t>(file_age),
                    std::memory_order_relaxed);
      auto next = std::make_shared<DemandMap>(*current);
      (*next)[signature] = d;
      shard.demand.store(std::move(next), std::memory_order_release);
      return;
    }
  }
  // Request counts: every v2 file carries the union as of its save, so
  // the baselines reconcile by max, never by addition (addition would
  // double-count the shared history).
  std::uint64_t base = d->base_hits.load(std::memory_order_relaxed);
  while (file_hits > base &&
         !d->base_hits.compare_exchange_weak(base, file_hits,
                                             std::memory_order_relaxed)) {
  }
  // Ages reconcile by freshest-wins: -1 (requested in this process)
  // beats any file age, otherwise the smaller age stands.
  std::int64_t cur = d->idle.load(std::memory_order_relaxed);
  const auto age = static_cast<std::int64_t>(file_age);
  while (cur != -1 && age < cur &&
         !d->idle.compare_exchange_weak(cur, age,
                                        std::memory_order_relaxed)) {
  }
}

bool PlanRegistry::demand(const std::string& signature,
                          DemandStats* stats) const {
  Shard& shard = shard_of(signature);
  std::shared_ptr<const DemandMap> snap =
      shard.demand.load(std::memory_order_acquire);
  auto it = snap->find(signature);
  if (it == snap->end()) return false;
  const Demand& d = *it->second;
  stats->requests = d.base_hits.load(std::memory_order_relaxed) +
                    d.local_hits.load(std::memory_order_relaxed);
  const std::int64_t idle = d.idle.load(std::memory_order_relaxed);
  stats->idle_generations =
      idle < 0 ? 0 : static_cast<std::uint64_t>(idle);
  stats->served_us = d.served_us.snapshot();
  return true;
}

std::vector<HotSignature> PlanRegistry::hottest(
    std::size_t k, std::uint64_t min_requests) const {
  if (min_requests == 0) min_requests = 1;
  std::vector<HotSignature> ranked;
  for (std::size_t s = 0; s < shard_count_; ++s) {
    std::shared_ptr<const DemandMap> demand_snap =
        shards_[s].demand.load(std::memory_order_acquire);
    std::shared_ptr<const ShardMap> entry_snap =
        shards_[s].snapshot.load(std::memory_order_acquire);
    for (const auto& [sig, d] : *demand_snap) {
      const std::uint64_t requests =
          d->base_hits.load(std::memory_order_relaxed) +
          d->local_hits.load(std::memory_order_relaxed);
      if (requests < min_requests) continue;
      auto it = entry_snap->find(sig);
      if (it == entry_snap->end()) continue;
      ranked.push_back({sig, requests, it->second.tuned});
    }
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const HotSignature& a, const HotSignature& b) {
              if (a.requests != b.requests) return a.requests > b.requests;
              return a.signature < b.signature;
            });
  if (k > 0 && ranked.size() > k) ranked.resize(k);
  return ranked;
}

std::uint64_t PlanRegistry::demand_requests() const {
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < shard_count_; ++s) {
    std::shared_ptr<const DemandMap> snap =
        shards_[s].demand.load(std::memory_order_acquire);
    for (const auto& [sig, d] : *snap) {
      total += d->base_hits.load(std::memory_order_relaxed) +
               d->local_hits.load(std::memory_order_relaxed);
    }
  }
  return total;
}

support::HistogramSnapshot PlanRegistry::served_latency() const {
  support::HistogramSnapshot merged = support::Histogram().snapshot();
  for (std::size_t s = 0; s < shard_count_; ++s) {
    std::shared_ptr<const DemandMap> snap =
        shards_[s].demand.load(std::memory_order_acquire);
    for (const auto& [sig, d] : *snap) {
      merged.merge(d->served_us.snapshot());
    }
  }
  return merged;
}

/// The shared serialization core of save() and to_text(): a gathered
/// point-in-time view (rows to persist, rows diverted by age-out) plus
/// the demand readings fold_rows() needs once the bytes have published.
struct PlanRegistry::SaveBatch {
  struct Row {
    std::string signature;
    PlanEntry entry;
    std::shared_ptr<Demand> demand;  // may be null for hand-built maps
    std::int64_t idle_read = 0;      // idle value at gather time
    std::uint64_t local_read = 0;    // local_hits at gather time
    std::uint64_t age = 0;           // persisted age column
    std::uint64_t hits = 0;          // persisted hits column
  };
  std::vector<Row> rows;
  std::vector<Row> aged;
  std::uint64_t dropped = 0;
};

std::unique_ptr<PlanRegistry::SaveBatch> PlanRegistry::gather_rows(
    bool apply_ageout) const {
  // Gather a point-in-time view from the shard snapshots (no locks —
  // each shard's snapshot is immutable) and sort globally by signature,
  // so the serialized text is deterministic and byte-identical for any
  // shard count.
  using Row = SaveBatch::Row;
  auto batch = std::make_unique<SaveBatch>();
  const bool age_out = apply_ageout;
  std::vector<Row>& rows = batch->rows;
  std::vector<Row>& aged = batch->aged;
  std::uint64_t dropped = 0;
  for (std::size_t s = 0; s < shard_count_; ++s) {
    std::shared_ptr<const ShardMap> snap =
        shards_[s].snapshot.load(std::memory_order_acquire);
    std::shared_ptr<const DemandMap> demand_snap =
        shards_[s].demand.load(std::memory_order_acquire);
    for (const auto& [signature, entry] : *snap) {
      Row row;
      row.signature = signature;
      row.entry = entry;
      auto it = demand_snap->find(signature);
      if (it != demand_snap->end()) {
        row.demand = it->second;
        row.idle_read = row.demand->idle.load(std::memory_order_relaxed);
        row.local_read =
            row.demand->local_hits.load(std::memory_order_relaxed);
        row.hits = row.demand->base_hits.load(std::memory_order_relaxed) +
                   row.local_read;
      }
      // A save closes a generation: a signature requested since the
      // last save persists age 0; an idle one ages by one — but only
      // when the age-out policy is armed, so policy-free registries
      // round-trip byte-identically no matter how often they save.
      row.age = row.idle_read < 0
                    ? 0
                    : static_cast<std::uint64_t>(row.idle_read) +
                          (age_out ? 1 : 0);
      if (age_out && row.age >= max_idle_generations_) {
        // `registry.save.ageout` models the age-out branch failing
        // (fires before any filesystem work, so the target file stays
        // intact).
        support::fault::maybe_throw("registry.save.ageout");
        ++dropped;
        // The aged entry stops being persisted but its in-memory
        // demand keeps aging — folded with the kept rows below, only
        // once the new file has actually published.
        aged.push_back(std::move(row));
        continue;
      }
      rows.push_back(std::move(row));
    }
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.signature < b.signature;
  });
  batch->dropped = dropped;

  // Validate at gather time so a serialization error never leaves a
  // partial temp file (or a half-built wire payload) behind.
  for (const Row& row : rows) {
    if (row.signature.find_first_of("\t\n") != std::string::npos) {
      throw Error("plan registry signature contains tab/newline, "
                  "not serializable: " + row.signature);
    }
    if (row.entry.recipe_text.find_first_of("\t;") != std::string::npos) {
      throw Error("plan registry recipe contains tab/';', "
                  "not serializable (signature " + row.signature + ")");
    }
    if (flatten_recipe(row.entry.recipe_text).empty()) {
      throw Error("plan registry entry has an empty recipe (signature " +
                  row.signature + ")");
    }
    if (!std::isfinite(row.entry.modeled_us)) {
      throw Error("plan registry modeled time for '" + row.signature +
                  "' is not finite, not serializable");
    }
  }
  return batch;
}

std::string PlanRegistry::render_rows(const SaveBatch& batch) {
  std::string text = kHeader;
  text.push_back('\n');
  char time_text[64];
  for (const SaveBatch::Row& row : batch.rows) {
    std::snprintf(time_text, sizeof time_text, "%.17g",
                  row.entry.modeled_us);
    text += time_text;
    text.push_back('\t');
    text += row.entry.tuned ? '1' : '0';
    text.push_back('\t');
    text += std::to_string(row.entry.variant);
    text.push_back('\t');
    text += std::to_string(row.age);
    text.push_back('\t');
    text += std::to_string(row.hits);
    text.push_back('\t');
    text += flatten_recipe(row.entry.recipe_text);
    text.push_back('\t');
    text += row.signature;
    text.push_back('\n');
  }
  return text;
}

void PlanRegistry::fold_rows(const SaveBatch& batch) const {
  // The serialized bytes have published; fold what they recorded into
  // the live demand so the NEXT serialization unions instead of
  // double-counting: the persisted hit count becomes the new baseline
  // (local increments recorded since the gather survive the
  // subtraction), and the persisted age becomes the new idle value —
  // unless a request arrived meanwhile (idle went to -1), which must
  // not be overwritten.
  auto fold = [](const SaveBatch::Row& row) {
    if (!row.demand) return;
    std::int64_t expected = row.idle_read;
    row.demand->idle.compare_exchange_strong(
        expected, static_cast<std::int64_t>(row.age),
        std::memory_order_relaxed);
    row.demand->base_hits.store(row.hits, std::memory_order_relaxed);
    if (row.local_read > 0) {
      row.demand->local_hits.fetch_sub(row.local_read,
                                       std::memory_order_relaxed);
    }
  };
  for (const SaveBatch::Row& row : batch.rows) fold(row);
  for (const SaveBatch::Row& row : batch.aged) fold(row);
  if (batch.dropped > 0) {
    aged_out_.fetch_add(batch.dropped, std::memory_order_relaxed);
  }
}

void PlanRegistry::save(const std::string& path) const {
  // Serialize against concurrent save()s on this registry: the
  // post-publish counter folding must see its own reads.
  std::lock_guard<std::mutex> save_lock(save_mutex_);
  std::unique_ptr<SaveBatch> batch =
      gather_rows(/*apply_ageout=*/max_idle_generations_ > 0);
  const std::string text = render_rows(*batch);

  // Atomic publish, exactly like EvalCache::save: complete temp file,
  // then rename(2) over the target — readers see the previous complete
  // registry or the new one, never a torn file.
  const std::string tmp =
      path + ".tmp." + std::to_string(support::process_tag());
  {
    // `registry.save.open` models the temp file failing to open (full
    // disk, unwritable directory) — same path as a real ofstream error.
    std::ofstream out(support::fault::hit("registry.save.open") ? "" : tmp);
    if (!out) throw Error("cannot write plan registry: " + tmp);
    out << text;
    out.flush();
    if (!out) {
      out.close();
      std::remove(tmp.c_str());
      throw Error("failed writing plan registry: " + tmp);
    }
  }
  // `registry.save.rename` models a failed publish: the target is left
  // unchanged, exactly like a cross-device or permission rename failure.
  if (support::fault::hit("registry.save.rename") ||
      std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw Error("cannot publish plan registry: rename " + tmp + " -> " +
                path);
  }
  fold_rows(*batch);
}

std::string PlanRegistry::to_text() const {
  std::lock_guard<std::mutex> save_lock(save_mutex_);
  // No age-out over the wire: ageing is a generation of the FILE, and
  // an anti-entropy exchange must ship everything this node serves.
  std::unique_ptr<SaveBatch> batch = gather_rows(/*apply_ageout=*/false);
  std::string text = render_rows(*batch);
  // Handing the bytes to the caller counts as publishing them — the
  // folded baseline is exactly what the text carries.
  fold_rows(*batch);
  return text;
}

void PlanRegistry::merge_entries(
    std::vector<std::pair<std::string, PlanEntry>> entries,
    bool count_upgrades) {
  // Group by owning shard, then apply each group with ONE copy-on-write
  // pass per shard: a bulk load of N entries costs O(shards) snapshot
  // copies, not O(N).
  std::vector<std::vector<std::pair<std::string, PlanEntry>>> by_shard(
      shard_count_);
  for (auto& [sig, entry] : entries) {
    const std::size_t s = std::hash<std::string>{}(sig) & (shard_count_ - 1);
    by_shard[s].emplace_back(std::move(sig), std::move(entry));
  }
  for (std::size_t s = 0; s < shard_count_; ++s) {
    if (by_shard[s].empty()) continue;
    Shard& shard = shards_[s];
    std::lock_guard<std::mutex> lock(shard.write_mutex);
    std::shared_ptr<const ShardMap> snap =
        shard.snapshot.load(std::memory_order_relaxed);
    auto next = std::make_shared<ShardMap>(*snap);
    std::size_t upgrades = 0;
    for (auto& [sig, entry] : by_shard[s]) {
      auto it = next->find(sig);
      if (it == next->end()) {
        next->emplace(std::move(sig), std::move(entry));
      } else if (better_plan(entry, it->second)) {
        it->second = std::move(entry);
        ++upgrades;
      }
    }
    shard.snapshot.store(std::move(next), std::memory_order_release);
    if (count_upgrades && upgrades > 0) {
      shard.upgrades.fetch_add(upgrades, std::memory_order_relaxed);
    }
  }
}

std::size_t PlanRegistry::merge_stream(std::istream& in,
                                       const std::string& source,
                                       support::RecoveryPolicy policy,
                                       support::SalvageReport* local_report) {
  const bool salvage = policy == support::RecoveryPolicy::kSalvage;
  support::SalvageReport& local = *local_report;

  // Under kSalvage a malformed line is dropped instead of thrown.
  auto reject = [&](const std::string& message) {
    if (!salvage) throw Error(message);
    ++local.dropped;
  };

  std::string line;
  int version = 0;
  if (!std::getline(in, line)) {
    reject("not a barracuda plan registry (bad or missing '" +
           std::string(kHeader) + "' header): " + source);
    in.setstate(std::ios::eofbit);
  } else if (line == kHeader) {
    version = 2;
  } else if (line == kHeaderV1) {
    version = 1;
  } else {
    reject("not a barracuda plan registry (bad or missing '" +
           std::string(kHeader) + "' header): " + source);
    // A wrong header means nothing after it is trustworthy as
    // records: salvage keeps zero entries (load() quarantines).
    in.setstate(std::ios::eofbit);
  }
  // Parse everything first (throwing under kStrict leaves the registry
  // untouched — load stays all-or-nothing), then bulk-merge per shard.
  // v1 lines have 5 fields, v2 lines add the age and hits columns.
  struct FileDemand {
    std::string signature;
    std::uint64_t hits = 0;
    std::uint64_t age = 0;
  };
  const std::size_t field_count = version == 1 ? 5 : 7;
  const char* shape = version == 1
      ? "expected <us>\\t<tuned>\\t<variant>\\t<recipe>\\t<sig>"
      : "expected <us>\\t<tuned>\\t<variant>\\t<age>\\t<hits>\\t<recipe>"
        "\\t<sig>";
  std::vector<std::pair<std::string, PlanEntry>> parsed;
  std::vector<FileDemand> demand_rows;
  std::size_t loaded = 0;
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    auto fail = [&](const std::string& msg) {
      reject("corrupt plan registry at " + source + ":" +
             std::to_string(line_no) + ": " + msg);
    };
    std::vector<std::string> fields = split(line, '\t');
    if (fields.size() != field_count) {
      fail(shape);
      continue;
    }
    PlanEntry entry;
    char* end = nullptr;
    entry.modeled_us = std::strtod(fields[0].c_str(), &end);
    if (end == fields[0].c_str() || *end != '\0' ||
        !std::isfinite(entry.modeled_us)) {
      fail("bad modeled time '" + fields[0] + "'");
      continue;
    }
    if (fields[1] == "0") {
      entry.tuned = false;
    } else if (fields[1] == "1") {
      entry.tuned = true;
    } else {
      fail("bad tuned flag '" + fields[1] + "'");
      continue;
    }
    entry.variant =
        static_cast<std::size_t>(std::strtoull(fields[2].c_str(), &end, 10));
    if (end == fields[2].c_str() || *end != '\0') {
      fail("bad variant index '" + fields[2] + "'");
      continue;
    }
    FileDemand demand_row;
    if (version == 2) {
      demand_row.age = std::strtoull(fields[3].c_str(), &end, 10);
      if (end == fields[3].c_str() || *end != '\0') {
        fail("bad idle age '" + fields[3] + "'");
        continue;
      }
      demand_row.hits = std::strtoull(fields[4].c_str(), &end, 10);
      if (end == fields[4].c_str() || *end != '\0') {
        fail("bad hit count '" + fields[4] + "'");
        continue;
      }
    }
    const std::string& recipe_field = fields[field_count - 2];
    const std::string& signature = fields[field_count - 1];
    entry.recipe_text = unflatten_recipe(recipe_field);
    try {
      // The recipe must at least parse; lowering validates it against
      // the program at serve time.  The validation parse is KEPT in the
      // entry, so every warm hit on a loaded registry serves the parsed
      // recipe without ever calling parse_recipe again.
      entry.parsed = std::make_shared<const chill::Recipe>(
          core::parse_recipe(entry.recipe_text, source));
    } catch (const Error& e) {
      fail("unparseable recipe: " + std::string(e.what()));
      continue;
    }
    demand_row.signature = signature;
    demand_rows.push_back(std::move(demand_row));
    parsed.emplace_back(signature, std::move(entry));
    ++loaded;
  }
  // Better-wins merge: a loaded entry only displaces what this registry
  // already serves when it is actually faster.  Never counts upgrades —
  // load is replication, not tuning progress.
  merge_entries(std::move(parsed), /*count_upgrades=*/false);
  // Demand merges independently of better-wins: even when a loaded
  // entry loses to a faster incumbent, its recorded demand is real
  // traffic and joins the union (v1 rows carry hits 0 / age 0 — the
  // same fresh state a newly published entry gets).
  for (const FileDemand& row : demand_rows) {
    absorb_demand(row.signature, row.hits, row.age);
  }
  local.kept = loaded;
  return loaded;
}

std::size_t PlanRegistry::load(const std::string& path,
                               support::RecoveryPolicy policy,
                               support::SalvageReport* report) {
  const bool salvage = policy == support::RecoveryPolicy::kSalvage;
  support::SalvageReport local;
  // `registry.load` models an unreadable file — failing before any
  // record lands keeps load() all-or-nothing under fault injection too.
  support::fault::maybe_throw("registry.load");
  std::ifstream in(path);
  if (!in) throw Error("cannot read plan registry: " + path);
  const std::size_t loaded = merge_stream(in, path, policy, &local);
  in.close();
  if (salvage && local.dropped > 0) {
    // Quarantine the damaged original; the salvaged state gets
    // re-published by the caller's next save.
    const std::string quarantine = path + ".corrupt";
    if (std::rename(path.c_str(), quarantine.c_str()) != 0) {
      throw Error("cannot quarantine corrupt plan registry: rename " + path +
                  " -> " + quarantine);
    }
    local.quarantine_path = quarantine;
  }
  if (report) *report = local;
  return loaded;
}

std::size_t PlanRegistry::merge_text(const std::string& text,
                                     const std::string& source,
                                     support::RecoveryPolicy policy,
                                     support::SalvageReport* report) {
  // The in-memory twin of load(): same parse, same better-wins entry
  // merge, same max/freshest demand union — but the bytes came off the
  // wire (or a test), so there is no file to quarantine.
  support::SalvageReport local;
  std::istringstream in(text);
  const std::size_t loaded = merge_stream(in, source, policy, &local);
  if (report) *report = local;
  return loaded;
}

std::size_t PlanRegistry::merge_save(const std::string& path,
                                     support::RecoveryPolicy policy) {
  // Serialize the whole read-modify-write against every other
  // merge_save on this path (threads and processes alike), exactly like
  // EvalCache::merge_save — see support::FileLock for the protocol.
  support::FileLock lock(path + ".lock");
  std::size_t absorbed = 0;
  {
    std::ifstream probe(path);
    if (probe.good()) {
      probe.close();
      absorbed = load(path, policy);
    }
  }
  save(path);
  return absorbed;
}

}  // namespace barracuda::serve
