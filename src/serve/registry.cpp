#include "serve/registry.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <utility>
#include <vector>

#include "core/report.hpp"
#include "support/error.hpp"
#include "support/faultinject.hpp"
#include "support/filelock.hpp"
#include "support/str.hpp"

namespace barracuda::serve {
namespace {

// On-disk format (line-oriented text; one plan per line):
//
//   barracuda-planregistry v1
//   <modeled_us>\t<tuned 0|1>\t<variant>\t<recipe>\t<signature>
//   ...
//
// modeled_us prints with %.17g (exact IEEE round-trip).  The recipe
// field is core::serialize_recipe text with its newlines replaced by
// ';' so the whole entry stays one line; recipe lines themselves never
// contain ';' (identifiers, digits, ',', '-', '=').  Signatures are
// '|'/','/';'-separated to_string()s, free of tabs and newlines.
constexpr const char* kHeader = "barracuda-planregistry v1";

std::string encode_recipe(const std::string& recipe_text) {
  std::string flat = recipe_text;
  std::replace(flat.begin(), flat.end(), '\n', ';');
  while (!flat.empty() && flat.back() == ';') flat.pop_back();
  return flat;
}

std::string decode_recipe(const std::string& flat) {
  std::string text = flat;
  std::replace(text.begin(), text.end(), ';', '\n');
  text.push_back('\n');
  return text;
}

}  // namespace

bool better_plan(const PlanEntry& a, const PlanEntry& b) {
  if (a.modeled_us != b.modeled_us) return a.modeled_us < b.modeled_us;
  return a.tuned && !b.tuned;
}

bool PlanRegistry::lookup(const std::string& signature,
                          PlanEntry* entry) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = plans_.find(signature);
  if (it == plans_.end()) {
    ++misses_;
    return false;
  }
  ++hits_;
  *entry = it->second;
  return true;
}

bool PlanRegistry::contains(const std::string& signature) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return plans_.find(signature) != plans_.end();
}

bool PlanRegistry::peek(const std::string& signature,
                        PlanEntry* entry) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = plans_.find(signature);
  if (it == plans_.end()) return false;
  *entry = it->second;
  return true;
}

bool PlanRegistry::publish(const std::string& signature,
                           const PlanEntry& entry) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = plans_.find(signature);
  if (it == plans_.end()) {
    plans_.emplace(signature, entry);
    return true;
  }
  if (!better_plan(entry, it->second)) return false;
  it->second = entry;
  ++upgrades_;
  return true;
}

PlanEntry PlanRegistry::publish_and_get(const std::string& signature,
                                        const PlanEntry& entry) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = plans_.find(signature);
  if (it == plans_.end()) {
    it = plans_.emplace(signature, entry).first;
  } else if (better_plan(entry, it->second)) {
    it->second = entry;
    ++upgrades_;
  }
  return it->second;
}

std::size_t PlanRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return plans_.size();
}

std::size_t PlanRegistry::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::size_t PlanRegistry::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::size_t PlanRegistry::upgrades() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return upgrades_;
}

void PlanRegistry::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  plans_.clear();
  hits_ = 0;
  misses_ = 0;
  upgrades_ = 0;
}

void PlanRegistry::save(const std::string& path) const {
  std::vector<std::pair<std::string, PlanEntry>> entries;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    entries.assign(plans_.begin(), plans_.end());
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  // Validate before touching the filesystem so a serialization error
  // never leaves a partial temp file behind.
  for (const auto& [signature, entry] : entries) {
    if (signature.find_first_of("\t\n") != std::string::npos) {
      throw Error("plan registry signature contains tab/newline, "
                  "not serializable: " + signature);
    }
    if (entry.recipe_text.find_first_of("\t;") != std::string::npos) {
      throw Error("plan registry recipe contains tab/';', "
                  "not serializable (signature " + signature + ")");
    }
    if (encode_recipe(entry.recipe_text).empty()) {
      throw Error("plan registry entry has an empty recipe (signature " +
                  signature + ")");
    }
    if (!std::isfinite(entry.modeled_us)) {
      throw Error("plan registry modeled time for '" + signature +
                  "' is not finite, not serializable");
    }
  }

  // Atomic publish, exactly like EvalCache::save: complete temp file,
  // then rename(2) over the target — readers see the previous complete
  // registry or the new one, never a torn file.
  const std::string tmp =
      path + ".tmp." + std::to_string(support::process_tag());
  {
    // `registry.save.open` models the temp file failing to open (full
    // disk, unwritable directory) — same path as a real ofstream error.
    std::ofstream out(support::fault::hit("registry.save.open") ? "" : tmp);
    if (!out) throw Error("cannot write plan registry: " + tmp);
    out << kHeader << '\n';
    char time_text[64];
    for (const auto& [signature, entry] : entries) {
      std::snprintf(time_text, sizeof time_text, "%.17g", entry.modeled_us);
      out << time_text << '\t' << (entry.tuned ? 1 : 0) << '\t'
          << entry.variant << '\t' << encode_recipe(entry.recipe_text)
          << '\t' << signature << '\n';
    }
    out.flush();
    if (!out) {
      out.close();
      std::remove(tmp.c_str());
      throw Error("failed writing plan registry: " + tmp);
    }
  }
  // `registry.save.rename` models a failed publish: the target is left
  // unchanged, exactly like a cross-device or permission rename failure.
  if (support::fault::hit("registry.save.rename") ||
      std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw Error("cannot publish plan registry: rename " + tmp + " -> " +
                path);
  }
}

std::size_t PlanRegistry::load(const std::string& path,
                               support::RecoveryPolicy policy,
                               support::SalvageReport* report) {
  const bool salvage = policy == support::RecoveryPolicy::kSalvage;
  support::SalvageReport local;
  // `registry.load` models an unreadable file — failing before any
  // record lands keeps load() all-or-nothing under fault injection too.
  support::fault::maybe_throw("registry.load");
  std::ifstream in(path);
  if (!in) throw Error("cannot read plan registry: " + path);

  // Under kSalvage a malformed line is dropped instead of thrown.
  auto reject = [&](const std::string& message) {
    if (!salvage) throw Error(message);
    ++local.dropped;
  };

  std::string line;
  if (!std::getline(in, line) || line != kHeader) {
    reject("not a barracuda plan registry (bad or missing '" +
           std::string(kHeader) + "' header): " + path);
    // A wrong header means nothing after it is trustworthy as v1
    // records: salvage keeps zero entries and quarantines below.
    in.setstate(std::ios::eofbit);
  }
  std::size_t loaded = 0;
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    auto fail = [&](const std::string& msg) {
      reject("corrupt plan registry at " + path + ":" +
             std::to_string(line_no) + ": " + msg);
    };
    std::vector<std::string> fields = split(line, '\t');
    if (fields.size() != 5) {
      fail("expected <us>\\t<tuned>\\t<variant>\\t<recipe>\\t<sig>");
      continue;
    }
    PlanEntry entry;
    char* end = nullptr;
    entry.modeled_us = std::strtod(fields[0].c_str(), &end);
    if (end == fields[0].c_str() || *end != '\0' ||
        !std::isfinite(entry.modeled_us)) {
      fail("bad modeled time '" + fields[0] + "'");
      continue;
    }
    if (fields[1] == "0") {
      entry.tuned = false;
    } else if (fields[1] == "1") {
      entry.tuned = true;
    } else {
      fail("bad tuned flag '" + fields[1] + "'");
      continue;
    }
    entry.variant =
        static_cast<std::size_t>(std::strtoull(fields[2].c_str(), &end, 10));
    if (end == fields[2].c_str() || *end != '\0') {
      fail("bad variant index '" + fields[2] + "'");
      continue;
    }
    entry.recipe_text = decode_recipe(fields[3]);
    try {
      // The recipe must at least parse; lowering validates it against
      // the program at serve time.
      core::parse_recipe(entry.recipe_text, path);
    } catch (const Error& e) {
      fail("unparseable recipe: " + std::string(e.what()));
      continue;
    }
    // Better-wins merge: a loaded entry only displaces what this
    // registry already serves when it is actually faster.
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = plans_.find(fields[4]);
      if (it == plans_.end()) {
        plans_.emplace(std::move(fields[4]), std::move(entry));
      } else if (better_plan(entry, it->second)) {
        it->second = std::move(entry);
      }
    }
    ++loaded;
  }
  in.close();
  local.kept = loaded;
  if (salvage && local.dropped > 0) {
    // Quarantine the damaged original; the salvaged state gets
    // re-published by the caller's next save.
    const std::string quarantine = path + ".corrupt";
    if (std::rename(path.c_str(), quarantine.c_str()) != 0) {
      throw Error("cannot quarantine corrupt plan registry: rename " + path +
                  " -> " + quarantine);
    }
    local.quarantine_path = quarantine;
  }
  if (report) *report = local;
  return loaded;
}

std::size_t PlanRegistry::merge_save(const std::string& path,
                                     support::RecoveryPolicy policy) {
  // Serialize the whole read-modify-write against every other
  // merge_save on this path (threads and processes alike), exactly like
  // EvalCache::merge_save — see support::FileLock for the protocol.
  support::FileLock lock(path + ".lock");
  std::size_t absorbed = 0;
  {
    std::ifstream probe(path);
    if (probe.good()) {
      probe.close();
      absorbed = load(path, policy);
    }
  }
  save(path);
  return absorbed;
}

}  // namespace barracuda::serve
