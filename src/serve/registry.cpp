#include "serve/registry.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

#include "core/report.hpp"
#include "support/error.hpp"
#include "support/faultinject.hpp"
#include "support/filelock.hpp"
#include "support/str.hpp"

namespace barracuda::serve {
namespace {

// On-disk format (line-oriented text; one plan per line):
//
//   barracuda-planregistry v1
//   <modeled_us>\t<tuned 0|1>\t<variant>\t<recipe>\t<signature>
//   ...
//
// modeled_us prints with %.17g (exact IEEE round-trip).  The recipe
// field is core::serialize_recipe text with its newlines replaced by
// ';' so the whole entry stays one line; recipe lines themselves never
// contain ';' (identifiers, digits, ',', '-', '=').  Signatures are
// '|'/','/';'-separated to_string()s, free of tabs and newlines.
constexpr const char* kHeader = "barracuda-planregistry v1";

std::string encode_recipe(const std::string& recipe_text) {
  std::string flat = recipe_text;
  std::replace(flat.begin(), flat.end(), '\n', ';');
  while (!flat.empty() && flat.back() == ';') flat.pop_back();
  return flat;
}

std::string decode_recipe(const std::string& flat) {
  std::string text = flat;
  std::replace(text.begin(), text.end(), ';', '\n');
  text.push_back('\n');
  return text;
}

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

bool better_plan(const PlanEntry& a, const PlanEntry& b) {
  if (a.modeled_us != b.modeled_us) return a.modeled_us < b.modeled_us;
  return a.tuned && !b.tuned;
}

std::size_t default_registry_shards() {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::min<std::size_t>(64, round_up_pow2(std::max(1u, hw)));
}

PlanRegistry::PlanRegistry() : PlanRegistry(default_registry_shards()) {}

PlanRegistry::PlanRegistry(std::size_t shards)
    : shard_count_(round_up_pow2(std::max<std::size_t>(1, shards))),
      shards_(std::make_unique<Shard[]>(shard_count_)) {
  for (std::size_t s = 0; s < shard_count_; ++s) {
    shards_[s].snapshot.store(std::make_shared<const ShardMap>(),
                              std::memory_order_relaxed);
  }
}

PlanRegistry::Shard& PlanRegistry::shard_of(
    const std::string& signature) const {
  // Power-of-two count: mask the string hash.  Readers and writers for
  // distinct shards share nothing but the counters.
  return shards_[std::hash<std::string>{}(signature) & (shard_count_ - 1)];
}

bool PlanRegistry::lookup(const std::string& signature,
                          PlanEntry* entry) const {
  const Shard& shard = shard_of(signature);
  // Acquire pairs with the publisher's release store: the snapshot's map
  // contents are fully visible.  No lock — this is the warm serving
  // path.
  std::shared_ptr<const ShardMap> snap =
      shard.snapshot.load(std::memory_order_acquire);
  auto it = snap->find(signature);
  if (it == snap->end()) {
    shard.misses.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  shard.hits.fetch_add(1, std::memory_order_relaxed);
  *entry = it->second;
  return true;
}

bool PlanRegistry::contains(const std::string& signature) const {
  const Shard& shard = shard_of(signature);
  std::shared_ptr<const ShardMap> snap =
      shard.snapshot.load(std::memory_order_acquire);
  return snap->find(signature) != snap->end();
}

bool PlanRegistry::peek(const std::string& signature,
                        PlanEntry* entry) const {
  const Shard& shard = shard_of(signature);
  std::shared_ptr<const ShardMap> snap =
      shard.snapshot.load(std::memory_order_acquire);
  auto it = snap->find(signature);
  if (it == snap->end()) return false;
  *entry = it->second;
  return true;
}

bool PlanRegistry::publish(const std::string& signature,
                           const PlanEntry& entry) {
  Shard& shard = shard_of(signature);
  std::lock_guard<std::mutex> lock(shard.write_mutex);
  std::shared_ptr<const ShardMap> snap =
      shard.snapshot.load(std::memory_order_relaxed);
  auto it = snap->find(signature);
  const bool is_new = it == snap->end();
  if (!is_new && !better_plan(entry, it->second)) return false;
  // Copy-on-write: readers keep the old snapshot until the release
  // store below, then see the fully built new one.
  auto next = std::make_shared<ShardMap>(*snap);
  (*next)[signature] = entry;
  shard.snapshot.store(std::move(next), std::memory_order_release);
  if (!is_new) shard.upgrades.fetch_add(1, std::memory_order_relaxed);
  return true;
}

PlanEntry PlanRegistry::publish_and_get(const std::string& signature,
                                        const PlanEntry& entry) {
  Shard& shard = shard_of(signature);
  std::lock_guard<std::mutex> lock(shard.write_mutex);
  std::shared_ptr<const ShardMap> snap =
      shard.snapshot.load(std::memory_order_relaxed);
  auto it = snap->find(signature);
  if (it != snap->end() && !better_plan(entry, it->second)) {
    return it->second;
  }
  auto next = std::make_shared<ShardMap>(*snap);
  (*next)[signature] = entry;
  if (it != snap->end()) {
    shard.upgrades.fetch_add(1, std::memory_order_relaxed);
  }
  shard.snapshot.store(std::move(next), std::memory_order_release);
  return entry;
}

std::size_t PlanRegistry::size() const {
  std::size_t total = 0;
  for (std::size_t s = 0; s < shard_count_; ++s) {
    total += shards_[s].snapshot.load(std::memory_order_acquire)->size();
  }
  return total;
}

std::size_t PlanRegistry::hits() const {
  std::size_t total = 0;
  for (std::size_t s = 0; s < shard_count_; ++s) {
    total += shards_[s].hits.load(std::memory_order_relaxed);
  }
  return total;
}

std::size_t PlanRegistry::misses() const {
  std::size_t total = 0;
  for (std::size_t s = 0; s < shard_count_; ++s) {
    total += shards_[s].misses.load(std::memory_order_relaxed);
  }
  return total;
}

std::size_t PlanRegistry::upgrades() const {
  std::size_t total = 0;
  for (std::size_t s = 0; s < shard_count_; ++s) {
    total += shards_[s].upgrades.load(std::memory_order_relaxed);
  }
  return total;
}

void PlanRegistry::clear() {
  for (std::size_t s = 0; s < shard_count_; ++s) {
    Shard& shard = shards_[s];
    std::lock_guard<std::mutex> lock(shard.write_mutex);
    shard.snapshot.store(std::make_shared<const ShardMap>(),
                         std::memory_order_release);
    shard.hits.store(0, std::memory_order_relaxed);
    shard.misses.store(0, std::memory_order_relaxed);
    shard.upgrades.store(0, std::memory_order_relaxed);
  }
}

void PlanRegistry::save(const std::string& path) const {
  // Gather a point-in-time view from the shard snapshots (no locks —
  // each shard's snapshot is immutable) and sort globally by signature,
  // so the file is deterministic and byte-identical for any shard
  // count.
  std::vector<std::pair<std::string, PlanEntry>> entries;
  for (std::size_t s = 0; s < shard_count_; ++s) {
    std::shared_ptr<const ShardMap> snap =
        shards_[s].snapshot.load(std::memory_order_acquire);
    entries.insert(entries.end(), snap->begin(), snap->end());
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  // Validate before touching the filesystem so a serialization error
  // never leaves a partial temp file behind.
  for (const auto& [signature, entry] : entries) {
    if (signature.find_first_of("\t\n") != std::string::npos) {
      throw Error("plan registry signature contains tab/newline, "
                  "not serializable: " + signature);
    }
    if (entry.recipe_text.find_first_of("\t;") != std::string::npos) {
      throw Error("plan registry recipe contains tab/';', "
                  "not serializable (signature " + signature + ")");
    }
    if (encode_recipe(entry.recipe_text).empty()) {
      throw Error("plan registry entry has an empty recipe (signature " +
                  signature + ")");
    }
    if (!std::isfinite(entry.modeled_us)) {
      throw Error("plan registry modeled time for '" + signature +
                  "' is not finite, not serializable");
    }
  }

  // Atomic publish, exactly like EvalCache::save: complete temp file,
  // then rename(2) over the target — readers see the previous complete
  // registry or the new one, never a torn file.
  const std::string tmp =
      path + ".tmp." + std::to_string(support::process_tag());
  {
    // `registry.save.open` models the temp file failing to open (full
    // disk, unwritable directory) — same path as a real ofstream error.
    std::ofstream out(support::fault::hit("registry.save.open") ? "" : tmp);
    if (!out) throw Error("cannot write plan registry: " + tmp);
    out << kHeader << '\n';
    char time_text[64];
    for (const auto& [signature, entry] : entries) {
      std::snprintf(time_text, sizeof time_text, "%.17g", entry.modeled_us);
      out << time_text << '\t' << (entry.tuned ? 1 : 0) << '\t'
          << entry.variant << '\t' << encode_recipe(entry.recipe_text)
          << '\t' << signature << '\n';
    }
    out.flush();
    if (!out) {
      out.close();
      std::remove(tmp.c_str());
      throw Error("failed writing plan registry: " + tmp);
    }
  }
  // `registry.save.rename` models a failed publish: the target is left
  // unchanged, exactly like a cross-device or permission rename failure.
  if (support::fault::hit("registry.save.rename") ||
      std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw Error("cannot publish plan registry: rename " + tmp + " -> " +
                path);
  }
}

void PlanRegistry::merge_entries(
    std::vector<std::pair<std::string, PlanEntry>> entries,
    bool count_upgrades) {
  // Group by owning shard, then apply each group with ONE copy-on-write
  // pass per shard: a bulk load of N entries costs O(shards) snapshot
  // copies, not O(N).
  std::vector<std::vector<std::pair<std::string, PlanEntry>>> by_shard(
      shard_count_);
  for (auto& [sig, entry] : entries) {
    const std::size_t s = std::hash<std::string>{}(sig) & (shard_count_ - 1);
    by_shard[s].emplace_back(std::move(sig), std::move(entry));
  }
  for (std::size_t s = 0; s < shard_count_; ++s) {
    if (by_shard[s].empty()) continue;
    Shard& shard = shards_[s];
    std::lock_guard<std::mutex> lock(shard.write_mutex);
    std::shared_ptr<const ShardMap> snap =
        shard.snapshot.load(std::memory_order_relaxed);
    auto next = std::make_shared<ShardMap>(*snap);
    std::size_t upgrades = 0;
    for (auto& [sig, entry] : by_shard[s]) {
      auto it = next->find(sig);
      if (it == next->end()) {
        next->emplace(std::move(sig), std::move(entry));
      } else if (better_plan(entry, it->second)) {
        it->second = std::move(entry);
        ++upgrades;
      }
    }
    shard.snapshot.store(std::move(next), std::memory_order_release);
    if (count_upgrades && upgrades > 0) {
      shard.upgrades.fetch_add(upgrades, std::memory_order_relaxed);
    }
  }
}

std::size_t PlanRegistry::load(const std::string& path,
                               support::RecoveryPolicy policy,
                               support::SalvageReport* report) {
  const bool salvage = policy == support::RecoveryPolicy::kSalvage;
  support::SalvageReport local;
  // `registry.load` models an unreadable file — failing before any
  // record lands keeps load() all-or-nothing under fault injection too.
  support::fault::maybe_throw("registry.load");
  std::ifstream in(path);
  if (!in) throw Error("cannot read plan registry: " + path);

  // Under kSalvage a malformed line is dropped instead of thrown.
  auto reject = [&](const std::string& message) {
    if (!salvage) throw Error(message);
    ++local.dropped;
  };

  std::string line;
  if (!std::getline(in, line) || line != kHeader) {
    reject("not a barracuda plan registry (bad or missing '" +
           std::string(kHeader) + "' header): " + path);
    // A wrong header means nothing after it is trustworthy as v1
    // records: salvage keeps zero entries and quarantines below.
    in.setstate(std::ios::eofbit);
  }
  // Parse everything first (throwing under kStrict leaves the registry
  // untouched — load stays all-or-nothing), then bulk-merge per shard.
  std::vector<std::pair<std::string, PlanEntry>> parsed;
  std::size_t loaded = 0;
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    auto fail = [&](const std::string& msg) {
      reject("corrupt plan registry at " + path + ":" +
             std::to_string(line_no) + ": " + msg);
    };
    std::vector<std::string> fields = split(line, '\t');
    if (fields.size() != 5) {
      fail("expected <us>\\t<tuned>\\t<variant>\\t<recipe>\\t<sig>");
      continue;
    }
    PlanEntry entry;
    char* end = nullptr;
    entry.modeled_us = std::strtod(fields[0].c_str(), &end);
    if (end == fields[0].c_str() || *end != '\0' ||
        !std::isfinite(entry.modeled_us)) {
      fail("bad modeled time '" + fields[0] + "'");
      continue;
    }
    if (fields[1] == "0") {
      entry.tuned = false;
    } else if (fields[1] == "1") {
      entry.tuned = true;
    } else {
      fail("bad tuned flag '" + fields[1] + "'");
      continue;
    }
    entry.variant =
        static_cast<std::size_t>(std::strtoull(fields[2].c_str(), &end, 10));
    if (end == fields[2].c_str() || *end != '\0') {
      fail("bad variant index '" + fields[2] + "'");
      continue;
    }
    entry.recipe_text = decode_recipe(fields[3]);
    try {
      // The recipe must at least parse; lowering validates it against
      // the program at serve time.  The validation parse is KEPT in the
      // entry, so every warm hit on a loaded registry serves the parsed
      // recipe without ever calling parse_recipe again.
      entry.parsed = std::make_shared<const chill::Recipe>(
          core::parse_recipe(entry.recipe_text, path));
    } catch (const Error& e) {
      fail("unparseable recipe: " + std::string(e.what()));
      continue;
    }
    parsed.emplace_back(std::move(fields[4]), std::move(entry));
    ++loaded;
  }
  in.close();
  // Better-wins merge: a loaded entry only displaces what this registry
  // already serves when it is actually faster.  Never counts upgrades —
  // load is replication, not tuning progress.
  merge_entries(std::move(parsed), /*count_upgrades=*/false);
  local.kept = loaded;
  if (salvage && local.dropped > 0) {
    // Quarantine the damaged original; the salvaged state gets
    // re-published by the caller's next save.
    const std::string quarantine = path + ".corrupt";
    if (std::rename(path.c_str(), quarantine.c_str()) != 0) {
      throw Error("cannot quarantine corrupt plan registry: rename " + path +
                  " -> " + quarantine);
    }
    local.quarantine_path = quarantine;
  }
  if (report) *report = local;
  return loaded;
}

std::size_t PlanRegistry::merge_save(const std::string& path,
                                     support::RecoveryPolicy policy) {
  // Serialize the whole read-modify-write against every other
  // merge_save on this path (threads and processes alike), exactly like
  // EvalCache::merge_save — see support::FileLock for the protocol.
  support::FileLock lock(path + ".lock");
  std::size_t absorbed = 0;
  {
    std::ifstream probe(path);
    if (probe.good()) {
      probe.close();
      absorbed = load(path, policy);
    }
  }
  save(path);
  return absorbed;
}

}  // namespace barracuda::serve
