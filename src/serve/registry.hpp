// PlanRegistry: the serving layer's thread-safe map from canonical
// contraction signatures (serve/signature.hpp) to the best plan known
// for them.
//
// Unlike core::EvalCache (first-write-wins: measurements are
// deterministic, colliding values agree), the registry's merge rule is
// BETTER-WINS: an entry only ever replaces another when it serves a
// strictly faster plan (or breaks a modeled-time tie by being tuned
// rather than a static fallback).  That one rule is what makes the whole
// serving story monotone — a signature's served plan never gets slower,
// not across background upgrades within a process, not across load()
// from a file, not across concurrent processes composing through
// merge_save().
//
// Concurrency (the warm-serving hot path): the map is SHARDED by
// signature hash — a power-of-two shard count derived from hardware
// concurrency — and each shard publishes an immutable snapshot
// (std::shared_ptr<const ShardMap>) through an atomic pointer.  Readers
// (lookup/contains/peek) take NO lock: they atomically load the shard's
// current snapshot and search it, so a warm request never contends with
// a tune publishing, a load() replicating, or a merge_save() composing.
// Writers serialize per shard on a striped mutex and publish
// copy-on-write: copy the shard map, apply the better-wins change, swap
// the snapshot pointer.  Hit/miss/upgrade counters are relaxed per-shard
// atomics, summed on read.
//
// Persistence reuses the EvalCache machinery wholesale: a versioned,
// line-oriented text format (UNCHANGED by the sharding — files written
// by single-map builds load here and vice versa; save() still sorts
// globally by signature so the bytes are deterministic), save()
// publishing via temp file + atomic rename(2) (readers and post-crash
// inspectors never see a torn file), merge_save() holding an exclusive
// flock(2) on `<path>.lock` across load-merge-publish so concurrent
// processes compose losslessly, and load() rejecting corrupt files
// loudly instead of serving garbage.
//
// Demand tracking (the adaptive-serving feedback signal): alongside each
// shard's plan snapshot lives a demand snapshot — an immutable map from
// signature to a shared Demand record (relaxed-atomic request counter +
// wait-free served-latency Histogram + an idle-generation age).  The
// recording path (record_demand) is lock-free after the first request
// for a signature: it loads the demand snapshot, finds the shared
// record, and bumps atomics; only the very first request per signature
// takes the shard write lock to copy-on-write the record in.  Demand
// feeds three consumers: hottest() ranks signatures for the
// TuningService's background re-tuner, served_latency() merges the
// per-signature histograms for ServeStats, and save() persists the
// request counter + age so a long-lived registry file both unions demand
// across processes and (when an age-out policy is set) drops entries
// nobody has requested for N consecutive generations (a generation =
// one save).  The v2 file format carries the two demand columns; v1
// files still load, with demand starting fresh.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "chill/lower.hpp"
#include "support/histogram.hpp"
#include "support/recovery.hpp"

namespace barracuda::serve {

/// The best known plan for one signature: which joint variant to lower
/// (an index into core::enumerate_programs' deterministic ascending-flops
/// order for the problem) under which recipe, what the model predicts
/// for it, and whether it came from a full tune() or the static fallback
/// mapping.
struct PlanEntry {
  std::size_t variant = 0;
  /// core::serialize_recipe form (one "kernel N: ..." line per kernel);
  /// the PERSISTED form — the file format carries only this text.
  std::string recipe_text;
  double modeled_us = 0;
  bool tuned = false;
  /// The parsed form of recipe_text, cached at load/publish time so a
  /// warm hit never calls core::parse_recipe (the registry's lock-free
  /// lookup copies the shared_ptr, not the recipe).  Never persisted;
  /// may be null for hand-built entries — materialize() then parses
  /// once and the executable-plan cache keeps the result.
  std::shared_ptr<const chill::Recipe> parsed;

  /// Equality is over the persisted fields only: the parsed cache is a
  /// derived view of recipe_text, not part of the entry's identity.
  bool operator==(const PlanEntry& other) const {
    return variant == other.variant && recipe_text == other.recipe_text &&
           modeled_us == other.modeled_us && tuned == other.tuned;
  }
};

/// True when `a` should replace `b` as the served plan: strictly faster,
/// or equally fast but tuned where `b` is a fallback.  Ties (equal time,
/// equal tuned-ness) keep the incumbent, so merges are idempotent.
bool better_plan(const PlanEntry& a, const PlanEntry& b);

/// The registry file format's one-line recipe encoding: newlines become
/// ';' (recipe lines themselves never contain ';'), trailing separators
/// trimmed.  Shared with the wire protocol's plan records.
std::string flatten_recipe(const std::string& recipe_text);
/// Inverse of flatten_recipe (restores the trailing newline).
std::string unflatten_recipe(const std::string& flat);

/// The power-of-two shard count a default-constructed PlanRegistry uses:
/// hardware concurrency rounded up to a power of two, clamped to
/// [1, 64].
std::size_t default_registry_shards();

/// Point-in-time demand view for one signature (see
/// PlanRegistry::demand).
struct DemandStats {
  /// Total requests recorded for the signature, including the baseline
  /// absorbed from loaded v2 files (the cross-process union).
  std::uint64_t requests = 0;
  /// Consecutive saves since the signature was last requested (0 when
  /// requested since the last save — or never saved).
  std::uint64_t idle_generations = 0;
  support::HistogramSnapshot served_us;
};

/// One row of PlanRegistry::hottest(): a signature ranked by demand.
struct HotSignature {
  std::string signature;
  std::uint64_t requests = 0;
  bool tuned = false;
};

/// Thread-safe signature -> PlanEntry map with better-wins publication.
/// Safe to share across concurrent get_plan requests and background
/// tuning workers alike; reads are lock-free snapshot loads (see the
/// file comment).
class PlanRegistry {
 public:
  /// Shard count from default_registry_shards().
  PlanRegistry();
  /// Explicit shard count (rounded up to a power of two, >= 1) — for
  /// tests that pin cross-shard behavior; the on-disk format is
  /// identical for every shard count.
  explicit PlanRegistry(std::size_t shards);

  std::size_t shard_count() const { return shard_count_; }

  /// True (and sets *entry) when a plan is registered for `signature`.
  /// Counts as a hit or miss.  Lock-free.
  bool lookup(const std::string& signature, PlanEntry* entry) const;

  /// True when `signature` has a plan, WITHOUT touching the hit/miss
  /// counters (scheduling probes must not distort the serve hit rate).
  /// Lock-free.
  bool contains(const std::string& signature) const;

  /// lookup() without the hit/miss counters — the TuningService's
  /// scheduling probe ("is this entry already tuned?"), which must not
  /// distort the serve hit rate.  Lock-free.
  bool peek(const std::string& signature, PlanEntry* entry) const;

  /// Better-wins publication: installs `entry` when the signature is new
  /// or `entry` beats the incumbent (see better_plan), otherwise keeps
  /// the incumbent.  Returns true when `entry` was installed.  Replacing
  /// an existing entry counts as an upgrade.  Takes only the owning
  /// shard's write lock; concurrent readers are never blocked.
  bool publish(const std::string& signature, const PlanEntry& entry);

  /// publish() and read back the resulting incumbent in one atomic step.
  /// This is how a cold request serves its freshly computed fallback
  /// without ever answering slower than the registry's current best: if
  /// a concurrent tune upgraded the signature between this request's
  /// miss and its publish, the returned entry is that better plan, not
  /// the fallback.
  PlanEntry publish_and_get(const std::string& signature,
                            const PlanEntry& entry);

  std::size_t size() const;
  std::size_t hits() const;
  std::size_t misses() const;
  /// publish() calls that replaced an existing entry with a better one.
  std::size_t upgrades() const;
  void clear();

  /// Record one served request (or `count` batched ones) for
  /// `signature`: bumps the relaxed request counter, marks the
  /// signature fresh for the age-out policy, and records `served_us`
  /// into its latency histogram.  Lock-free after the signature's first
  /// request.
  void record_demand(const std::string& signature, double served_us,
                     std::uint64_t count = 1);

  /// True (and fills *stats) when demand has been recorded — or loaded
  /// from a v2 file — for `signature`.  Does not touch hit/miss
  /// counters.
  bool demand(const std::string& signature, DemandStats* stats) const;

  /// The signatures with at least max(1, min_requests) recorded
  /// requests, ranked by request count descending (signature ascending
  /// on ties, so the ranking is deterministic), truncated to the top
  /// `k` (k = 0 means no truncation).  `tuned` reflects the registry's
  /// current entry; signatures without a registered plan are skipped.
  std::vector<HotSignature> hottest(std::size_t k,
                                    std::uint64_t min_requests = 1) const;

  /// Sum of every signature's request counter (including loaded
  /// baselines).
  std::uint64_t demand_requests() const;

  /// All per-signature served-latency histograms merged into one.
  support::HistogramSnapshot served_latency() const;

  /// Enable (n >= 1) or disable (n = 0, the default) the age-out
  /// policy: on save()/merge_save(), an entry whose persisted idle age
  /// reaches n — i.e. not requested for n consecutive saves — is
  /// dropped from the FILE (the in-memory registry keeps serving it).
  /// With the policy disabled, save() never advances ages, so
  /// save->load->save round-trips are byte-identical.
  void set_max_idle_generations(std::uint64_t n) { max_idle_generations_ = n; }
  std::uint64_t max_idle_generations() const { return max_idle_generations_; }

  /// Entries dropped from files by the age-out policy over this
  /// registry's lifetime.
  std::uint64_t aged_out() const {
    return aged_out_.load(std::memory_order_relaxed);
  }

  /// Write every entry to `path` (versioned v2 text, sorted by signature
  /// so the file is deterministic and byte-identical for any shard
  /// count), via temp file + atomic rename — no reader, concurrent or
  /// post-crash, can observe a torn file.  Persists each entry's demand
  /// columns (idle age + request count) and, when an age-out policy is
  /// set, drops entries whose age reaches the limit (counted in
  /// aged_out()).  On success the in-process demand counters fold into
  /// the persisted baseline, so repeated merge_saves union counts
  /// exactly instead of double-counting.  Throws Error on an unwritable
  /// path or an unserializable entry (tab/newline in a signature, ';' or
  /// tab in recipe text, non-finite modeled_us, empty recipe).
  /// Hit/miss/upgrade counters are not persisted.
  void save(const std::string& path) const;

  /// The registry serialized to the v2 text format — the same bytes
  /// save() writes, minus the filesystem: no age-out (every entry is
  /// included with its current age, nothing advances or drops) and no
  /// temp/rename dance.  Demand counters fold into the serialized
  /// baseline exactly like a successful save(), so the text carries the
  /// union and repeated exchanges never double-count — this is the
  /// anti-entropy payload of the distributed tier.  Throws Error on an
  /// unserializable entry (same validation as save()).
  std::string to_text() const;

  /// Merge registry text (v2 or v1, as produced by to_text()/save())
  /// into this registry: better-wins on entries, max/freshest union on
  /// demand — identical semantics to load(), with `source` standing in
  /// for the file path in error messages.  No quarantine is written
  /// (there is no file); under kSalvage malformed lines are dropped and
  /// counted in `report`.  Returns the number of entry lines read.
  /// This is how a node absorbs a peer's anti-entropy exchange.
  std::size_t merge_text(const std::string& text, const std::string& source,
                         support::RecoveryPolicy policy =
                             support::RecoveryPolicy::kStrict,
                         support::SalvageReport* report = nullptr);

  /// Merge entries from a save()d file into this registry under the
  /// better-wins rule (never counts upgrades — load is replication, not
  /// tuning progress).  Returns the number of entry lines read.  Reads
  /// both the current v2 format and legacy v1 files (whose entries load
  /// with fresh demand).  v2 demand columns are absorbed as a baseline:
  /// request counts take the max of file and current baseline (each
  /// file already carries the union at its save time), ages take the
  /// freshest (smallest) of the two sides.
  ///
  /// Failure handling is governed by `policy` (default kStrict): any
  /// corruption — unrecognized header/version, wrong field count,
  /// unparseable or non-finite time, bad tuned flag, recipe text that
  /// does not parse — throws Error, because a corrupt registry must fail
  /// loudly, not serve garbage plans.  Under kSalvage every record that
  /// still parses is merged (better-wins), malformed lines are dropped,
  /// and the damaged original is quarantined to `<path>.corrupt` so the
  /// next strict load finds no file; `report` receives the kept/dropped
  /// counts and the quarantine path.  An unreadable/missing file throws
  /// under both policies.
  std::size_t load(const std::string& path,
                   support::RecoveryPolicy policy =
                       support::RecoveryPolicy::kStrict,
                   support::SalvageReport* report = nullptr);

  /// Cross-process-safe persistence: atomically merge this registry into
  /// the file at `path` under an exclusive flock(2) on `path + ".lock"`,
  /// absorbing any existing file via load() (better-wins, honoring
  /// `policy`) before publishing the merged result with the atomic
  /// save().  Concurrent processes sharing one path therefore converge
  /// to the per-signature best of everything any of them found.  Returns
  /// the number of entries absorbed from the pre-existing file (0 when
  /// absent).
  std::size_t merge_save(
      const std::string& path,
      support::RecoveryPolicy policy = support::RecoveryPolicy::kStrict);

 private:
  using ShardMap = std::unordered_map<std::string, PlanEntry>;

  /// Live demand state for one signature.  Shared (never copied) so the
  /// recording path can bump it without holding any lock.  `idle` is -1
  /// while the signature has been requested (or first published) since
  /// the last save; save() folds it to the persisted age.  Request
  /// counts split into the baseline absorbed from files (`base_hits`)
  /// plus the increments recorded in this process since the last save
  /// (`local_hits`); their sum is the signature's total demand, and
  /// save() folds local into base so the union never double-counts.
  struct Demand {
    std::atomic<std::uint64_t> base_hits{0};
    std::atomic<std::uint64_t> local_hits{0};
    std::atomic<std::int64_t> idle{-1};
    support::Histogram served_us;
  };
  using DemandMap =
      std::unordered_map<std::string, std::shared_ptr<Demand>>;

  /// One stripe: an immutable published snapshot readers load atomically
  /// plus the mutex that serializes this stripe's copy-on-write
  /// publishers.  Counters are relaxed atomics (hot-path increments,
  /// summed on read).  The demand snapshot follows the same
  /// copy-on-write discipline, but its values are SHARED mutable
  /// records: inserting a signature copies the map, bumping an existing
  /// one touches only the record's atomics.
  struct Shard {
    mutable std::mutex write_mutex;
    std::atomic<std::shared_ptr<const ShardMap>> snapshot;
    std::atomic<std::shared_ptr<const DemandMap>> demand;
    mutable std::atomic<std::size_t> hits{0};
    mutable std::atomic<std::size_t> misses{0};
    std::atomic<std::size_t> upgrades{0};
  };

  Shard& shard_of(const std::string& signature) const;
  /// Merge `entries` into their owning shards, one copy-on-write pass
  /// per shard (load()'s bulk path — O(shards) snapshot copies instead
  /// of O(entries)).
  void merge_entries(std::vector<std::pair<std::string, PlanEntry>> entries,
                     bool count_upgrades);
  /// The shard's Demand record for `signature`, inserting a fresh one
  /// (copy-on-write, under the shard write lock) on first touch.
  std::shared_ptr<Demand> ensure_demand(Shard& shard,
                                        const std::string& signature) const;
  /// Union a loaded file's demand columns into the live record.
  void absorb_demand(const std::string& signature, std::uint64_t file_hits,
                     std::uint64_t file_age);
  /// A gathered, validated, sorted point-in-time view of every entry
  /// plus the demand readings needed to fold counters after a
  /// successful publish — the shared core of save() and to_text().
  /// Defined in registry.cpp; the unique_ptr is only ever materialized
  /// there.
  struct SaveBatch;
  /// Snapshot + validate + sort (throws on unserializable entries;
  /// `apply_ageout` advances ages and diverts aged-out rows).
  std::unique_ptr<SaveBatch> gather_rows(bool apply_ageout) const;
  /// The v2 text for a gathered batch.
  static std::string render_rows(const SaveBatch& batch);
  /// Fold the batch's demand readings into the persisted baseline —
  /// call ONLY after the serialized bytes have actually been published
  /// (renamed into place, or handed to the network layer).
  void fold_rows(const SaveBatch& batch) const;
  /// Parse v2/v1 registry text from `in` and merge it (better-wins +
  /// demand union) — the shared core of load() and merge_text().
  std::size_t merge_stream(std::istream& in, const std::string& source,
                           support::RecoveryPolicy policy,
                           support::SalvageReport* local);

  std::size_t shard_count_ = 1;  // power of two
  std::unique_ptr<Shard[]> shards_;
  std::uint64_t max_idle_generations_ = 0;  // 0 = age-out disabled
  mutable std::atomic<std::uint64_t> aged_out_{0};
  /// Serializes save()'s counter folding against concurrent save()s on
  /// the same registry (merge_save already serializes cross-process via
  /// the file lock; this covers two threads saving one registry).
  mutable std::mutex save_mutex_;
};

}  // namespace barracuda::serve
