// PlanRegistry: the serving layer's thread-safe map from canonical
// contraction signatures (serve/signature.hpp) to the best plan known
// for them.
//
// Unlike core::EvalCache (first-write-wins: measurements are
// deterministic, colliding values agree), the registry's merge rule is
// BETTER-WINS: an entry only ever replaces another when it serves a
// strictly faster plan (or breaks a modeled-time tie by being tuned
// rather than a static fallback).  That one rule is what makes the whole
// serving story monotone — a signature's served plan never gets slower,
// not across background upgrades within a process, not across load()
// from a file, not across concurrent processes composing through
// merge_save().
//
// Persistence reuses the EvalCache machinery wholesale: a versioned,
// line-oriented text format, save() publishing via temp file + atomic
// rename(2) (readers and post-crash inspectors never see a torn file),
// merge_save() holding an exclusive flock(2) on `<path>.lock` across
// load-merge-publish so concurrent processes compose losslessly, and
// load() rejecting corrupt files loudly instead of serving garbage.
#pragma once

#include <cstddef>
#include <mutex>
#include <string>
#include <unordered_map>

#include "support/recovery.hpp"

namespace barracuda::serve {

/// The best known plan for one signature: which joint variant to lower
/// (an index into core::enumerate_programs' deterministic ascending-flops
/// order for the problem) under which recipe, what the model predicts
/// for it, and whether it came from a full tune() or the static fallback
/// mapping.
struct PlanEntry {
  std::size_t variant = 0;
  /// core::serialize_recipe form (one "kernel N: ..." line per kernel);
  /// feed through core::parse_recipe + chill::lower_program to execute.
  std::string recipe_text;
  double modeled_us = 0;
  bool tuned = false;

  bool operator==(const PlanEntry&) const = default;
};

/// True when `a` should replace `b` as the served plan: strictly faster,
/// or equally fast but tuned where `b` is a fallback.  Ties (equal time,
/// equal tuned-ness) keep the incumbent, so merges are idempotent.
bool better_plan(const PlanEntry& a, const PlanEntry& b);

/// Thread-safe signature -> PlanEntry map with better-wins publication.
/// Safe to share across concurrent get_plan requests and background
/// tuning workers alike.
class PlanRegistry {
 public:
  /// True (and sets *entry) when a plan is registered for `signature`.
  /// Counts as a hit or miss.
  bool lookup(const std::string& signature, PlanEntry* entry) const;

  /// True when `signature` has a plan, WITHOUT touching the hit/miss
  /// counters (scheduling probes must not distort the serve hit rate).
  bool contains(const std::string& signature) const;

  /// lookup() without the hit/miss counters — the TuningService's
  /// scheduling probe ("is this entry already tuned?"), which must not
  /// distort the serve hit rate.
  bool peek(const std::string& signature, PlanEntry* entry) const;

  /// Better-wins publication: installs `entry` when the signature is new
  /// or `entry` beats the incumbent (see better_plan), otherwise keeps
  /// the incumbent.  Returns true when `entry` was installed.  Replacing
  /// an existing entry counts as an upgrade.
  bool publish(const std::string& signature, const PlanEntry& entry);

  /// publish() and read back the resulting incumbent in one atomic step.
  /// This is how a cold request serves its freshly computed fallback
  /// without ever answering slower than the registry's current best: if
  /// a concurrent tune upgraded the signature between this request's
  /// miss and its publish, the returned entry is that better plan, not
  /// the fallback.
  PlanEntry publish_and_get(const std::string& signature,
                            const PlanEntry& entry);

  std::size_t size() const;
  std::size_t hits() const;
  std::size_t misses() const;
  /// publish() calls that replaced an existing entry with a better one.
  std::size_t upgrades() const;
  void clear();

  /// Write every entry to `path` (versioned text, sorted by signature so
  /// the file is deterministic), via temp file + atomic rename — no
  /// reader, concurrent or post-crash, can observe a torn file.  Throws
  /// Error on an unwritable path or an unserializable entry (tab/newline
  /// in a signature, ';' or tab in recipe text, non-finite modeled_us,
  /// empty recipe).  Counters are not persisted.
  void save(const std::string& path) const;

  /// Merge entries from a save()d file into this registry under the
  /// better-wins rule (never counts upgrades — load is replication, not
  /// tuning progress).  Returns the number of entry lines read.
  ///
  /// Failure handling is governed by `policy` (default kStrict): any
  /// corruption — unrecognized header/version, wrong field count,
  /// unparseable or non-finite time, bad tuned flag, recipe text that
  /// does not parse — throws Error, because a corrupt registry must fail
  /// loudly, not serve garbage plans.  Under kSalvage every record that
  /// still parses is merged (better-wins), malformed lines are dropped,
  /// and the damaged original is quarantined to `<path>.corrupt` so the
  /// next strict load finds no file; `report` receives the kept/dropped
  /// counts and the quarantine path.  An unreadable/missing file throws
  /// under both policies.
  std::size_t load(const std::string& path,
                   support::RecoveryPolicy policy =
                       support::RecoveryPolicy::kStrict,
                   support::SalvageReport* report = nullptr);

  /// Cross-process-safe persistence: atomically merge this registry into
  /// the file at `path` under an exclusive flock(2) on `path + ".lock"`,
  /// absorbing any existing file via load() (better-wins, honoring
  /// `policy`) before publishing the merged result with the atomic
  /// save().  Concurrent processes sharing one path therefore converge
  /// to the per-signature best of everything any of them found.  Returns
  /// the number of entries absorbed from the pre-existing file (0 when
  /// absent).
  std::size_t merge_save(
      const std::string& path,
      support::RecoveryPolicy policy = support::RecoveryPolicy::kStrict);

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, PlanEntry> plans_;
  mutable std::size_t hits_ = 0;
  mutable std::size_t misses_ = 0;
  std::size_t upgrades_ = 0;
};

}  // namespace barracuda::serve
