// PlanServer: a PlanRegistry behind the frame protocol — the L2 tier N
// front-end processes share one logical registry through.
//
// Operations (all better-wins, so the server's registry is as monotone
// as any local one):
//
//   PING      liveness; payload echoed
//   GET_PLAN  signature -> the server's current entry (kNotFound when
//             unknown).  Uses peek(), so remote lookups do not distort
//             the server registry's own hit/miss counters.
//   PUT_PLAN  offer one entry; the reply says whether it won
//   SYNC      full anti-entropy: the client's to_text() registry merges
//             in (better-wins entries, max/freshest demand union), the
//             server's to_text() goes back — after one round trip both
//             sides hold the exact union
//   STATS     key\tvalue counter lines, for operators and tests
//
// Persistence: with a registry_path configured the server merge_saves
// on a flush-interval timer and — always — on stop(), so a SIGTERM'd
// server leaves the fleet's union on disk (through the same atomic
// temp+rename and flock protocol every other writer uses).  stop() is
// the graceful-shutdown path: drain in-flight requests, final save,
// then return; it never throws (save failures land in stats/last_error
// — shutdown must reach exit 0).
//
// Replication: with `peers` configured the server also runs a gossip
// loop — each round is one pairwise SYNC per peer through an ordinary
// RemoteRegistry link (the same v2 anti-entropy payload and max-demand
// reconciliation clients use), so a replica set converges to the exact
// union with no client online.  Better-wins + max-reconciled demand
// make rounds idempotent and order-free: a partitioned-then-healed
// pair converges byte-for-byte.  A dead peer costs one bounded failed
// round per interval (the link's breaker short-circuits the rest) and
// heals automatically when the peer returns.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/server.hpp"
#include "serve/registry.hpp"
#include "serve/remote/remoteregistry.hpp"
#include "support/recovery.hpp"

namespace barracuda::serve::remote {

struct PlanServerOptions {
  net::ServerOptions net;
  /// Registry file to merge_save into ("" = in-memory only).
  std::string registry_path;
  /// Seconds between background merge_saves (0 = only at stop()).
  double flush_interval = 0;
  /// Recovery policy for absorbing the existing file on merge_save.
  support::RecoveryPolicy policy = support::RecoveryPolicy::kStrict;
  /// Peer replicas to gossip with (periodic pairwise SYNC exchanges).
  std::vector<net::Endpoint> peers;
  /// Seconds between gossip rounds (0 = only explicit gossip_pass()).
  double gossip_interval = 0;
  /// Socket options for the peer links (timeouts + reconnect breaker).
  RemoteRegistryOptions peer_link;
};

struct PlanServerStats {
  std::size_t requests = 0;
  std::size_t gets = 0;
  std::size_t get_hits = 0;
  std::size_t puts = 0;
  std::size_t put_accepted = 0;
  std::size_t syncs = 0;
  std::size_t sync_entries_in = 0;  ///< entry lines absorbed from SYNCs
  std::size_t pings = 0;
  std::size_t stats_requests = 0;
  std::size_t bad_requests = 0;     ///< well-framed but unknown ops
  std::size_t flushes = 0;          ///< successful merge_saves
  std::size_t flush_failures = 0;
  std::size_t gossip_rounds = 0;    ///< completed pairwise peer SYNCs
  std::size_t gossip_failures = 0;  ///< peer SYNCs that could not complete
  net::ServerStats net;
};

class PlanServer {
 public:
  /// The registry must outlive the server; it may be shared with other
  /// in-process users (every op is just a registry call).
  explicit PlanServer(PlanRegistry& registry, PlanServerOptions options = {});
  ~PlanServer();

  PlanServer(const PlanServer&) = delete;
  PlanServer& operator=(const PlanServer&) = delete;

  /// Listener setup, before start().  listen_tcp returns the bound port
  /// (useful with port 0).
  std::uint16_t listen_tcp(const std::string& host, std::uint16_t port);
  void listen_unix(const std::string& path);

  void start();

  /// Graceful shutdown: drain in-flight requests, close connections,
  /// stop the flush timer, run the final merge_save.  Never throws;
  /// idempotent.
  void stop();

  /// Run one merge_save now (no-op without a registry_path).  Returns
  /// false on failure (recorded in stats).
  bool flush();

  /// One pairwise SYNC with every configured peer: push this server's
  /// registry, absorb each peer's in return (the peer's handler does
  /// the mirror-image merge, so one round trip converges the pair to
  /// the union).  Returns how many peer exchanges completed.  Never
  /// throws; a dead peer just counts a gossip failure.  The background
  /// loop (gossip_interval > 0) calls exactly this.
  std::size_t gossip_pass();

  PlanServerStats stats() const;
  /// Most recent flush failure text ("" when none).
  std::string last_error() const;

  PlanRegistry& registry() { return registry_; }

 private:
  net::Frame handle(const net::Frame& request);
  std::string stats_text() const;
  void flush_loop();
  void gossip_loop();

  PlanRegistry& registry_;
  PlanServerOptions options_;
  net::Server server_;
  std::vector<std::unique_ptr<RemoteRegistry>> peers_;

  std::thread flush_thread_;
  std::thread gossip_thread_;
  std::mutex flush_mutex_;
  std::condition_variable flush_cv_;
  bool flush_stop_ = false;
  bool stopped_ = false;

  mutable std::mutex error_mutex_;
  std::string last_error_;

  std::atomic<std::size_t> requests_{0};
  std::atomic<std::size_t> gets_{0};
  std::atomic<std::size_t> get_hits_{0};
  std::atomic<std::size_t> puts_{0};
  std::atomic<std::size_t> put_accepted_{0};
  std::atomic<std::size_t> syncs_{0};
  std::atomic<std::size_t> sync_entries_in_{0};
  std::atomic<std::size_t> pings_{0};
  std::atomic<std::size_t> stats_requests_{0};
  std::atomic<std::size_t> bad_requests_{0};
  std::atomic<std::size_t> flushes_{0};
  std::atomic<std::size_t> flush_failures_{0};
  std::atomic<std::size_t> gossip_rounds_{0};
  std::atomic<std::size_t> gossip_failures_{0};
};

}  // namespace barracuda::serve::remote
