// RemoteRegistry: the production RemoteBackend — a blocking frame
// client over a plan-server replica SET, wrapped in the same half-open
// breaker shape the TuningService uses for poisoned tunes, applied
// PER ENDPOINT:
//
//   closed (link up)   operations run; any transport failure closes the
//                      socket and opens that endpoint's breaker
//   open               operations skip the endpoint instantly — traffic
//                      fails over to the next replica in listed order,
//                      no client ever waits on a dead server — until
//                      reconnect_cooldown has elapsed
//   half-open          the next operation on the endpoint admits
//                      exactly ONE reconnect probe (callers serialize
//                      on the link mutex, so "exactly one" is
//                      structural): success heals the link and runs
//                      the operation; failure re-opens the breaker
//                      with a fresh cool-down
//
// Fleet semantics (endpoints are tried in listed order — deterministic
// selection, the first endpoint is the primary):
//
//   GET_PLAN   served by the first healthy replica; a transport failure
//              fails over to the next one, and only when EVERY replica
//              is unreachable does the op report kUnavailable.  A miss
//              from a healthy replica is authoritative (gossip keeps
//              replicas converged, so asking the others would only buy
//              latency).
//   PUT/SYNC   fan out to every replica; better-wins makes duplicate
//              publishes idempotent, and each SYNC re-encodes the
//              local registry so later replicas receive what earlier
//              ones taught us.  kOk when at least one replica
//              completed the round.
//   hedging    with hedge_threshold > 0, a GET_PLAN the primary has
//              not answered within the threshold races a duplicate on
//              the next replica and the FIRST answer wins; the slow
//              primary round trip is parked (bounded by the socket
//              timeout) and reaped later, never awaited inline.
//
// An application-level kError response (the server rejected one
// request) counts against that endpoint but does NOT open its breaker
// — the transport demonstrably works.  A server that closed the
// connection after a protocol error surfaces as a transport failure on
// the next operation, which is what trips the breaker and later
// exercises the reconnect probe.
//
// Fault sites: `serve.remote.publish` is armed at the TuningService's
// publish call site (the layer above), so this class stays a pure
// transport.  `net.connect` fires inside connect_endpoint;
// `net.read`/`net.write`/`net.frame.corrupt` fire inside the frame I/O
// this class performs.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "net/client.hpp"
#include "serve/remotebackend.hpp"

namespace barracuda::serve::remote {

struct RemoteRegistryOptions {
  /// Per-operation socket timeout in seconds.
  double timeout = 5.0;
  /// Bound on connect(2) per attempt (see net::ClientOptions).
  double connect_timeout = 5.0;
  /// Seconds an opened link breaker waits before admitting one
  /// reconnect probe.
  double reconnect_cooldown = 1.0;
  /// Hedged reads: > 0 arms hedging — a GET_PLAN the primary has not
  /// answered within this many seconds races a duplicate on the next
  /// healthy replica, first answer wins.  0 (the default) disables
  /// hedging.  Only meaningful with >= 2 endpoints.
  double hedge_threshold = 0;
  std::size_t max_payload = net::kMaxPayload;
};

/// Per-endpoint health and failure counters.
struct EndpointStats {
  std::string endpoint;
  bool link_up = false;
  std::size_t errors = 0;       ///< app-level kError replies
  std::size_t unavailable = 0;  ///< transport failures + breaker skips
  std::size_t reconnect_probes = 0;
  std::size_t reconnect_healed = 0;
  std::string last_error;
};

struct RemoteRegistryStats {
  std::size_t gets = 0;
  std::size_t get_hits = 0;
  std::size_t puts = 0;
  std::size_t put_accepted = 0;
  std::size_t syncs = 0;
  std::size_t errors = 0;       ///< ops that ended in an app-level error
  std::size_t unavailable = 0;  ///< ops with no reachable replica at all
  std::size_t failovers = 0;    ///< reads answered past a failed primary
  std::size_t hedges = 0;       ///< hedged reads launched
  std::size_t hedge_wins = 0;   ///< hedges the second replica won
  std::size_t reconnect_probes = 0;  ///< summed across endpoints
  std::size_t reconnect_healed = 0;  ///< summed across endpoints
  bool link_up = false;  ///< true when ANY endpoint is connected
  std::string last_error;
  std::vector<EndpointStats> endpoints;
};

class RemoteRegistry : public RemoteBackend {
 public:
  /// Single-replica form (the PR-9 star topology).
  explicit RemoteRegistry(net::Endpoint endpoint,
                          RemoteRegistryOptions options = {});
  /// Replica-set form: endpoints are tried in the given order.  Throws
  /// Error when `endpoints` is empty.
  explicit RemoteRegistry(std::vector<net::Endpoint> endpoints,
                          RemoteRegistryOptions options = {});
  ~RemoteRegistry() override;

  // RemoteBackend: never throws, never blocks past the socket timeout
  // (times the endpoint count, when every replica must be probed).
  RemoteStatus fetch(const std::string& signature, PlanEntry* entry) override;
  RemoteWrite publish(const std::string& signature,
                      const PlanEntry& entry) override;
  RemoteWrite sync(PlanRegistry& registry) override;
  RemoteTelemetry telemetry() const override;

  /// Liveness round trip: true when ANY replica answers (also a cheap
  /// way to force reconnect probes).
  bool ping();

  /// The STATS text of the first replica that answers; false when none
  /// does.
  bool stats_text(std::string* out);

  RemoteRegistryStats stats() const;

  std::vector<net::Endpoint> endpoints() const;
  /// The primary endpoint (kept for single-replica callers and logs).
  const net::Endpoint& endpoint() const;

 private:
  struct Link;
  /// Per-endpoint attempt verdict, folded into the op-level result.
  enum class LinkResult { kOk, kError, kUnavailable };

  /// Under link.mutex: true when the link is usable — connected, or
  /// (re)connected by this call.  Applies the breaker policy.
  bool ensure_link(Link& link);
  /// Under link.mutex: record a failed operation and open the breaker.
  void fail_link_locked(Link& link, const char* op,
                        const std::exception& error);
  /// One guarded round trip on one endpoint; kError responses do not
  /// drop the link.
  LinkResult roundtrip_on(Link& link, const char* op,
                          const net::Frame& request, net::Frame* response);
  /// True when the endpoint's breaker is open (still cooling down).
  bool breaker_open(Link& link);
  /// GET with failover (and hedging when armed): *winner is the index
  /// of the replica that answered.
  LinkResult fleet_get(const net::Frame& request, net::Frame* response,
                       std::size_t* winner);
  /// Stash an abandoned hedge round trip; reaps settled ones.
  void park(std::future<LinkResult> pending);

  void note_error(const std::string& text);

  RemoteRegistryOptions options_;
  std::vector<std::unique_ptr<Link>> links_;

  std::atomic<std::size_t> gets_{0};
  std::atomic<std::size_t> get_hits_{0};
  std::atomic<std::size_t> puts_{0};
  std::atomic<std::size_t> put_accepted_{0};
  std::atomic<std::size_t> syncs_{0};
  std::atomic<std::size_t> errors_{0};
  std::atomic<std::size_t> unavailable_{0};
  std::atomic<std::size_t> failovers_{0};
  std::atomic<std::size_t> hedges_{0};
  std::atomic<std::size_t> hedge_wins_{0};

  mutable std::mutex error_mutex_;
  std::string last_error_;  ///< op-level failures (e.g. encoding)

  // Declared after links_ so abandoned hedges (whose lambdas touch a
  // Link) are drained before any Link is destroyed.
  std::mutex hedge_mutex_;
  std::vector<std::future<LinkResult>> hedge_pending_;
};

}  // namespace barracuda::serve::remote
