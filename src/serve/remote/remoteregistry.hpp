// RemoteRegistry: the production RemoteBackend — a blocking frame
// client to a PlanServer, wrapped in the same half-open breaker shape
// the TuningService uses for poisoned tunes, applied to the CONNECTION:
//
//   closed (link up)   operations run; any transport failure closes the
//                      socket and opens the breaker
//   open               operations return kUnavailable/false instantly —
//                      the node serves local-only, no client ever waits
//                      on a dead server — until reconnect_cooldown has
//                      elapsed
//   half-open          the next operation admits exactly ONE reconnect
//                      probe (callers serialize on the link mutex, so
//                      "exactly one" is structural): success heals the
//                      link and runs the operation; failure re-opens
//                      the breaker with a fresh cool-down
//
// An application-level kError response (the server rejected one
// request) counts as an error but does NOT open the breaker — the
// transport demonstrably works.  A server that closed the connection
// after a protocol error surfaces as a transport failure on the next
// operation, which is what trips the breaker and later exercises the
// reconnect probe.
//
// Fault site: `serve.remote.publish` is armed at the TuningService's
// publish call site (the layer above), so this class stays a pure
// transport.  `net.read`/`net.write`/`net.frame.corrupt` fire inside
// the frame I/O this class performs.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>

#include "net/client.hpp"
#include "serve/remotebackend.hpp"

namespace barracuda::serve::remote {

struct RemoteRegistryOptions {
  /// Per-operation socket timeout in seconds.
  double timeout = 5.0;
  /// Seconds an opened link breaker waits before admitting one
  /// reconnect probe.
  double reconnect_cooldown = 1.0;
  std::size_t max_payload = net::kMaxPayload;
};

struct RemoteRegistryStats {
  std::size_t gets = 0;
  std::size_t get_hits = 0;
  std::size_t puts = 0;
  std::size_t put_accepted = 0;
  std::size_t syncs = 0;
  std::size_t errors = 0;         ///< failed operations (any cause)
  std::size_t reconnect_probes = 0;
  std::size_t reconnect_healed = 0;
  bool link_up = false;
  std::string last_error;
};

class RemoteRegistry : public RemoteBackend {
 public:
  explicit RemoteRegistry(net::Endpoint endpoint,
                          RemoteRegistryOptions options = {});

  // RemoteBackend: never throws, never blocks past the socket timeout.
  RemoteStatus fetch(const std::string& signature, PlanEntry* entry) override;
  bool publish(const std::string& signature, const PlanEntry& entry) override;
  bool sync(PlanRegistry& registry) override;

  /// Liveness round trip (also a cheap way to force a reconnect probe).
  bool ping();

  /// The server's STATS text; false when unavailable.
  bool stats_text(std::string* out);

  RemoteRegistryStats stats() const;

  const net::Endpoint& endpoint() const { return client_.endpoint(); }

 private:
  /// Under mutex_: true when the link is usable — connected, or
  /// (re)connected by this call.  Applies the breaker policy.
  bool ensure_link();
  /// Under mutex_: record a failed operation and open the breaker.
  void fail_link(const char* op, const std::exception& error);
  /// One guarded round trip; kError responses do not drop the link.
  bool roundtrip(const char* op, const net::Frame& request,
                 net::Frame* response);

  RemoteRegistryOptions options_;
  mutable std::mutex mutex_;  ///< serializes the link and all RTTs
  net::Client client_;
  bool down_ = false;
  std::chrono::steady_clock::time_point down_since_{};
  std::string last_error_;

  std::size_t gets_ = 0;
  std::size_t get_hits_ = 0;
  std::size_t puts_ = 0;
  std::size_t put_accepted_ = 0;
  std::size_t syncs_ = 0;
  std::size_t errors_ = 0;
  std::size_t reconnect_probes_ = 0;
  std::size_t reconnect_healed_ = 0;
};

}  // namespace barracuda::serve::remote
