#include "serve/remote/wire.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "core/report.hpp"
#include "support/error.hpp"
#include "support/str.hpp"

namespace barracuda::serve::remote {

std::string encode_plan(const std::string& signature,
                        const PlanEntry& entry) {
  if (signature.find_first_of("\t\n") != std::string::npos) {
    throw Error("plan signature contains tab/newline, not encodable: " +
                signature);
  }
  if (entry.recipe_text.find_first_of("\t;") != std::string::npos) {
    throw Error("plan recipe contains tab/';', not encodable (signature " +
                signature + ")");
  }
  const std::string flat = flatten_recipe(entry.recipe_text);
  if (flat.empty()) {
    throw Error("plan entry has an empty recipe (signature " + signature +
                ")");
  }
  if (!std::isfinite(entry.modeled_us)) {
    throw Error("plan modeled time for '" + signature +
                "' is not finite, not encodable");
  }
  char time_text[64];
  std::snprintf(time_text, sizeof time_text, "%.17g", entry.modeled_us);
  std::string out = time_text;
  out.push_back('\t');
  out += entry.tuned ? '1' : '0';
  out.push_back('\t');
  out += std::to_string(entry.variant);
  out.push_back('\t');
  out += flat;
  out.push_back('\t');
  out += signature;
  return out;
}

void decode_plan(const std::string& text, std::string* signature,
                 PlanEntry* entry) {
  const std::vector<std::string> fields = split(text, '\t');
  if (fields.size() != 5) {
    throw Error("malformed wire plan record (expected "
                "<us>\\t<tuned>\\t<variant>\\t<recipe>\\t<sig>, got " +
                std::to_string(fields.size()) + " fields)");
  }
  PlanEntry decoded;
  char* end = nullptr;
  decoded.modeled_us = std::strtod(fields[0].c_str(), &end);
  if (end == fields[0].c_str() || *end != '\0' ||
      !std::isfinite(decoded.modeled_us)) {
    throw Error("bad modeled time in wire plan record: '" + fields[0] + "'");
  }
  if (fields[1] == "0") {
    decoded.tuned = false;
  } else if (fields[1] == "1") {
    decoded.tuned = true;
  } else {
    throw Error("bad tuned flag in wire plan record: '" + fields[1] + "'");
  }
  decoded.variant =
      static_cast<std::size_t>(std::strtoull(fields[2].c_str(), &end, 10));
  if (end == fields[2].c_str() || *end != '\0') {
    throw Error("bad variant index in wire plan record: '" + fields[2] + "'");
  }
  decoded.recipe_text = unflatten_recipe(fields[3]);
  // Parse-at-decode keeps the remote warm path zero-reparse, exactly
  // like load()'s parse-at-load — and validates the recipe before the
  // entry can reach any registry.
  decoded.parsed = std::make_shared<const chill::Recipe>(
      core::parse_recipe(decoded.recipe_text, "<plan-wire>"));
  if (fields[4].empty()) {
    throw Error("empty signature in wire plan record");
  }
  *signature = fields[4];
  *entry = std::move(decoded);
}

}  // namespace barracuda::serve::remote
