#include "serve/remote/remoteregistry.hpp"

#include <exception>
#include <utility>

#include "serve/remote/wire.hpp"
#include "support/error.hpp"

namespace barracuda::serve::remote {

namespace {

net::ClientOptions client_options(const RemoteRegistryOptions& options) {
  net::ClientOptions out;
  out.timeout = options.timeout;
  out.connect_timeout = options.connect_timeout;
  out.max_payload = options.max_payload;
  return out;
}

}  // namespace

/// One replica: its client, its breaker, its counters.  The mutex
/// serializes the connection and all round trips on THIS endpoint;
/// different endpoints proceed concurrently (that is what makes a
/// hedge a race and not a queue).
struct RemoteRegistry::Link {
  Link(net::Endpoint ep, const net::ClientOptions& copts)
      : client(std::move(ep), copts) {}

  std::mutex mutex;
  net::Client client;
  bool down = false;
  std::chrono::steady_clock::time_point down_since{};
  std::size_t errors = 0;
  std::size_t unavailable = 0;
  std::size_t reconnect_probes = 0;
  std::size_t reconnect_healed = 0;
  std::string last_error;
};

RemoteRegistry::RemoteRegistry(std::vector<net::Endpoint> endpoints,
                               RemoteRegistryOptions options)
    : options_(options) {
  if (endpoints.empty()) {
    throw Error("RemoteRegistry needs at least one endpoint");
  }
  const net::ClientOptions copts = client_options(options);
  links_.reserve(endpoints.size());
  for (net::Endpoint& ep : endpoints) {
    links_.push_back(std::make_unique<Link>(std::move(ep), copts));
  }
}

RemoteRegistry::RemoteRegistry(net::Endpoint endpoint,
                               RemoteRegistryOptions options)
    : RemoteRegistry(std::vector<net::Endpoint>{std::move(endpoint)},
                     options) {}

RemoteRegistry::~RemoteRegistry() {
  // Abandoned hedge round trips still reference links_; their futures
  // block until the socket timeout bounds them out.
  std::lock_guard<std::mutex> lock(hedge_mutex_);
  hedge_pending_.clear();
}

bool RemoteRegistry::ensure_link(Link& link) {
  if (link.client.connected()) return true;
  const auto now = std::chrono::steady_clock::now();
  if (link.down) {
    const std::chrono::duration<double> since_down = now - link.down_since;
    if (since_down.count() < options_.reconnect_cooldown) {
      return false;  // breaker open: fail over, do not even try
    }
    // Half-open: this call is the single reconnect probe.
    ++link.reconnect_probes;
  }
  try {
    link.client.connect();
  } catch (const std::exception& e) {
    link.last_error = e.what();
    link.down = true;
    link.down_since = std::chrono::steady_clock::now();
    return false;
  }
  if (link.down) {
    link.down = false;
    ++link.reconnect_healed;
  }
  return true;
}

void RemoteRegistry::fail_link_locked(Link& link, const char* op,
                                      const std::exception& error) {
  link.last_error = std::string(op) + ": " + error.what();
  link.client.close();
  link.down = true;
  link.down_since = std::chrono::steady_clock::now();
}

bool RemoteRegistry::breaker_open(Link& link) {
  // try_lock, not lock: a busy link (e.g. an abandoned hedge round trip
  // still draining) is alive enough to hedge against — this check is an
  // optimization to skip a KNOWN-dead primary, never worth blocking on.
  std::unique_lock<std::mutex> lock(link.mutex, std::try_to_lock);
  if (!lock.owns_lock()) return false;
  if (link.client.connected() || !link.down) return false;
  const std::chrono::duration<double> since_down =
      std::chrono::steady_clock::now() - link.down_since;
  return since_down.count() < options_.reconnect_cooldown;
}

RemoteRegistry::LinkResult RemoteRegistry::roundtrip_on(
    Link& link, const char* op, const net::Frame& request,
    net::Frame* response) {
  std::lock_guard<std::mutex> lock(link.mutex);
  if (!ensure_link(link)) {
    ++link.unavailable;
    return LinkResult::kUnavailable;
  }
  try {
    *response = link.client.request(request);
  } catch (const std::exception& e) {
    // Transport failure: drop the link, open this endpoint's breaker.
    fail_link_locked(link, op, e);
    ++link.unavailable;
    return LinkResult::kUnavailable;
  }
  if (response->op == net::Op::kError) {
    // The server rejected THIS request but the transport works: count
    // the error, keep the link.  (A server that additionally closed the
    // connection surfaces as a transport failure on the next round
    // trip, which opens the breaker then.)
    ++link.errors;
    link.last_error = std::string(op) + ": server error: " + response->payload;
    return LinkResult::kError;
  }
  return LinkResult::kOk;
}

void RemoteRegistry::park(std::future<LinkResult> pending) {
  std::lock_guard<std::mutex> lock(hedge_mutex_);
  // Reap settled strays so the vector stays tiny under steady hedging.
  for (auto it = hedge_pending_.begin(); it != hedge_pending_.end();) {
    if (it->wait_for(std::chrono::seconds(0)) == std::future_status::ready) {
      it = hedge_pending_.erase(it);
    } else {
      ++it;
    }
  }
  hedge_pending_.push_back(std::move(pending));
}

RemoteRegistry::LinkResult RemoteRegistry::fleet_get(
    const net::Frame& request, net::Frame* response, std::size_t* winner) {
  bool any_error = false;
  const bool hedge_armed = options_.hedge_threshold > 0 && links_.size() > 1;
  if (hedge_armed && !breaker_open(*links_.front())) {
    // Hedged primary attempt: run the primary round trip on the side,
    // give it hedge_threshold seconds, then race the other replicas.
    Link& primary = *links_.front();
    auto holder = std::make_shared<net::Frame>();
    auto pending = std::async(std::launch::async,
                              [this, &primary, request, holder] {
                                return roundtrip_on(primary, "get_plan",
                                                    request, holder.get());
                              });
    const auto threshold =
        std::chrono::duration<double>(options_.hedge_threshold);
    if (pending.wait_for(threshold) == std::future_status::ready) {
      const LinkResult r = pending.get();
      if (r == LinkResult::kOk) {
        *response = *holder;
        *winner = 0;
        return r;
      }
      if (r == LinkResult::kError) any_error = true;
      // fall through to the plain failover walk over the other replicas
    } else {
      hedges_.fetch_add(1, std::memory_order_relaxed);
      for (std::size_t j = 1; j < links_.size(); ++j) {
        const LinkResult r = roundtrip_on(*links_[j], "get_plan", request,
                                          response);
        if (r == LinkResult::kOk) {
          hedge_wins_.fetch_add(1, std::memory_order_relaxed);
          *winner = j;
          // The slow primary keeps running, bounded by the socket
          // timeout; never awaited inline on a serving path.
          park(std::move(pending));
          return r;
        }
        if (r == LinkResult::kError) any_error = true;
      }
      // Every hedge lost: the slow primary answer is all that is left.
      const LinkResult r = pending.get();
      if (r == LinkResult::kOk) {
        *response = *holder;
        *winner = 0;
        return r;
      }
      if (r == LinkResult::kError) any_error = true;
      return any_error ? LinkResult::kError : LinkResult::kUnavailable;
    }
    // Primary answered quickly but failed: fail over, endpoints 1..n.
    for (std::size_t i = 1; i < links_.size(); ++i) {
      const LinkResult r =
          roundtrip_on(*links_[i], "get_plan", request, response);
      if (r == LinkResult::kOk) {
        failovers_.fetch_add(1, std::memory_order_relaxed);
        *winner = i;
        return r;
      }
      if (r == LinkResult::kError) any_error = true;
    }
    return any_error ? LinkResult::kError : LinkResult::kUnavailable;
  }
  // Plain deterministic walk in listed order; the first healthy
  // replica answers, everything before it was a failover casualty.
  for (std::size_t i = 0; i < links_.size(); ++i) {
    const LinkResult r = roundtrip_on(*links_[i], "get_plan", request,
                                      response);
    if (r == LinkResult::kOk) {
      if (i > 0) failovers_.fetch_add(1, std::memory_order_relaxed);
      *winner = i;
      return r;
    }
    if (r == LinkResult::kError) any_error = true;
  }
  return any_error ? LinkResult::kError : LinkResult::kUnavailable;
}

RemoteStatus RemoteRegistry::fetch(const std::string& signature,
                                   PlanEntry* entry) {
  gets_.fetch_add(1, std::memory_order_relaxed);
  net::Frame response;
  std::size_t winner = 0;
  const LinkResult result =
      fleet_get({net::Op::kGetPlan, signature}, &response, &winner);
  if (result == LinkResult::kError) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return RemoteStatus::kError;
  }
  if (result == LinkResult::kUnavailable) {
    unavailable_.fetch_add(1, std::memory_order_relaxed);
    return RemoteStatus::kUnavailable;
  }
  if (response.op == net::Op::kNotFound) return RemoteStatus::kMiss;
  try {
    std::string decoded_signature;
    decode_plan(response.payload, &decoded_signature, entry);
    if (decoded_signature != signature) {
      throw Error("plan server answered for signature '" + decoded_signature +
                  "', asked for '" + signature + "'");
    }
  } catch (const std::exception& e) {
    // A server speaking the protocol but returning garbage records is
    // as unusable as a dead one — same degradation path, charged to
    // the replica that answered.
    Link& link = *links_[winner];
    {
      std::lock_guard<std::mutex> lock(link.mutex);
      fail_link_locked(link, "get_plan", e);
      ++link.unavailable;
    }
    unavailable_.fetch_add(1, std::memory_order_relaxed);
    return RemoteStatus::kUnavailable;
  }
  get_hits_.fetch_add(1, std::memory_order_relaxed);
  return RemoteStatus::kHit;
}

RemoteWrite RemoteRegistry::publish(const std::string& signature,
                                    const PlanEntry& entry) {
  puts_.fetch_add(1, std::memory_order_relaxed);
  net::Frame request{net::Op::kPutPlan, ""};
  try {
    request.payload = encode_plan(signature, entry);
  } catch (const std::exception& e) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    note_error(std::string("put_plan: ") + e.what());
    return RemoteWrite::kError;
  }
  // Fan out to every replica — better-wins makes duplicates idempotent,
  // and a replica the op cannot reach simply learns the entry later via
  // gossip.
  bool any_ok = false;
  bool accepted = false;
  bool any_app_error = false;
  for (auto& link : links_) {
    net::Frame response;
    switch (roundtrip_on(*link, "put_plan", request, &response)) {
      case LinkResult::kOk:
        any_ok = true;
        if (response.payload == "1") accepted = true;
        break;
      case LinkResult::kError:
        any_app_error = true;
        break;
      case LinkResult::kUnavailable:
        break;
    }
  }
  if (!any_ok) {
    if (any_app_error) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      return RemoteWrite::kError;
    }
    unavailable_.fetch_add(1, std::memory_order_relaxed);
    return RemoteWrite::kUnavailable;
  }
  if (!accepted) return RemoteWrite::kRejected;
  put_accepted_.fetch_add(1, std::memory_order_relaxed);
  return RemoteWrite::kOk;
}

RemoteWrite RemoteRegistry::sync(PlanRegistry& registry) {
  syncs_.fetch_add(1, std::memory_order_relaxed);
  bool any_ok = false;
  bool any_app_error = false;
  for (std::size_t i = 0; i < links_.size(); ++i) {
    Link& link = *links_[i];
    net::Frame request{net::Op::kSync, ""};
    try {
      // Re-encoded per replica on purpose: the payload for replica i+1
      // already contains whatever replica i's reply taught us, so one
      // fan-out pass converges the whole set through this client.
      request.payload = registry.to_text();
    } catch (const std::exception& e) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      note_error(std::string("sync: ") + e.what());
      return RemoteWrite::kError;
    }
    net::Frame response;
    const LinkResult result = roundtrip_on(link, "sync", request, &response);
    if (result == LinkResult::kUnavailable) continue;
    if (result == LinkResult::kError) {
      any_app_error = true;
      continue;
    }
    try {
      registry.merge_text(response.payload, "<plan-server>");
      any_ok = true;
    } catch (const std::exception& e) {
      std::lock_guard<std::mutex> lock(link.mutex);
      fail_link_locked(link, "sync", e);
      ++link.unavailable;
    }
  }
  if (any_ok) return RemoteWrite::kOk;
  if (any_app_error) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return RemoteWrite::kError;
  }
  unavailable_.fetch_add(1, std::memory_order_relaxed);
  return RemoteWrite::kUnavailable;
}

bool RemoteRegistry::ping() {
  for (auto& link : links_) {
    net::Frame response;
    if (roundtrip_on(*link, "ping", {net::Op::kPing, "barracuda"},
                     &response) == LinkResult::kOk) {
      return true;
    }
  }
  return false;
}

bool RemoteRegistry::stats_text(std::string* out) {
  for (auto& link : links_) {
    net::Frame response;
    if (roundtrip_on(*link, "stats", {net::Op::kStats, ""}, &response) ==
        LinkResult::kOk) {
      *out = response.payload;
      return true;
    }
  }
  return false;
}

RemoteTelemetry RemoteRegistry::telemetry() const {
  RemoteTelemetry t;
  t.failovers = failovers_.load(std::memory_order_relaxed);
  t.hedges = hedges_.load(std::memory_order_relaxed);
  t.hedge_wins = hedge_wins_.load(std::memory_order_relaxed);
  return t;
}

void RemoteRegistry::note_error(const std::string& text) {
  std::lock_guard<std::mutex> lock(error_mutex_);
  last_error_ = text;
}

RemoteRegistryStats RemoteRegistry::stats() const {
  RemoteRegistryStats s;
  s.gets = gets_.load(std::memory_order_relaxed);
  s.get_hits = get_hits_.load(std::memory_order_relaxed);
  s.puts = puts_.load(std::memory_order_relaxed);
  s.put_accepted = put_accepted_.load(std::memory_order_relaxed);
  s.syncs = syncs_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  s.unavailable = unavailable_.load(std::memory_order_relaxed);
  s.failovers = failovers_.load(std::memory_order_relaxed);
  s.hedges = hedges_.load(std::memory_order_relaxed);
  s.hedge_wins = hedge_wins_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(error_mutex_);
    s.last_error = last_error_;
  }
  s.endpoints.reserve(links_.size());
  for (const auto& link_ptr : links_) {
    Link& link = *link_ptr;
    std::lock_guard<std::mutex> lock(link.mutex);
    EndpointStats es;
    es.endpoint = net::to_string(link.client.endpoint());
    es.link_up = link.client.connected();
    es.errors = link.errors;
    es.unavailable = link.unavailable;
    es.reconnect_probes = link.reconnect_probes;
    es.reconnect_healed = link.reconnect_healed;
    es.last_error = link.last_error;
    s.reconnect_probes += link.reconnect_probes;
    s.reconnect_healed += link.reconnect_healed;
    if (link.client.connected()) s.link_up = true;
    if (s.last_error.empty() && !link.last_error.empty()) {
      s.last_error = link.last_error;
    }
    s.endpoints.push_back(std::move(es));
  }
  return s;
}

std::vector<net::Endpoint> RemoteRegistry::endpoints() const {
  std::vector<net::Endpoint> out;
  out.reserve(links_.size());
  for (const auto& link : links_) out.push_back(link->client.endpoint());
  return out;
}

const net::Endpoint& RemoteRegistry::endpoint() const {
  return links_.front()->client.endpoint();
}

}  // namespace barracuda::serve::remote
