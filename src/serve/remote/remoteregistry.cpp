#include "serve/remote/remoteregistry.hpp"

#include <exception>
#include <utility>

#include "serve/remote/wire.hpp"
#include "support/error.hpp"

namespace barracuda::serve::remote {

namespace {

net::ClientOptions client_options(const RemoteRegistryOptions& options) {
  net::ClientOptions out;
  out.timeout = options.timeout;
  out.max_payload = options.max_payload;
  return out;
}

}  // namespace

RemoteRegistry::RemoteRegistry(net::Endpoint endpoint,
                               RemoteRegistryOptions options)
    : options_(options),
      client_(std::move(endpoint), client_options(options)) {}

bool RemoteRegistry::ensure_link() {
  if (client_.connected()) return true;
  const auto now = std::chrono::steady_clock::now();
  if (down_) {
    const std::chrono::duration<double> since_down = now - down_since_;
    if (since_down.count() < options_.reconnect_cooldown) {
      return false;  // breaker open: serve local-only, do not even try
    }
    // Half-open: this call is the single reconnect probe.
    ++reconnect_probes_;
  }
  try {
    client_.connect();
  } catch (const std::exception& e) {
    last_error_ = e.what();
    down_ = true;
    down_since_ = std::chrono::steady_clock::now();
    return false;
  }
  if (down_) {
    down_ = false;
    ++reconnect_healed_;
  }
  return true;
}

void RemoteRegistry::fail_link(const char* op, const std::exception& error) {
  ++errors_;
  last_error_ = std::string(op) + ": " + error.what();
  client_.close();
  down_ = true;
  down_since_ = std::chrono::steady_clock::now();
}

bool RemoteRegistry::roundtrip(const char* op, const net::Frame& request,
                               net::Frame* response) {
  // Caller holds mutex_.
  if (!ensure_link()) {
    ++errors_;
    return false;
  }
  try {
    *response = client_.request(request);
  } catch (const std::exception& e) {
    fail_link(op, e);  // transport failure: drop the link, open breaker
    return false;
  }
  if (response->op == net::Op::kError) {
    // The server rejected THIS request but the transport works: count
    // the error, keep the link.  (A server that additionally closed the
    // connection surfaces as a transport failure on the next round
    // trip, which opens the breaker then.)
    ++errors_;
    last_error_ = std::string(op) + ": server error: " + response->payload;
    return false;
  }
  return true;
}

RemoteStatus RemoteRegistry::fetch(const std::string& signature,
                                   PlanEntry* entry) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++gets_;
  net::Frame response;
  if (!roundtrip("get_plan", {net::Op::kGetPlan, signature}, &response)) {
    return RemoteStatus::kUnavailable;
  }
  if (response.op == net::Op::kNotFound) return RemoteStatus::kMiss;
  try {
    std::string decoded_signature;
    decode_plan(response.payload, &decoded_signature, entry);
    if (decoded_signature != signature) {
      throw Error("plan server answered for signature '" + decoded_signature +
                  "', asked for '" + signature + "'");
    }
  } catch (const std::exception& e) {
    // A server speaking the protocol but returning garbage records is
    // as unusable as a dead one — same degradation path.
    fail_link("get_plan", e);
    return RemoteStatus::kUnavailable;
  }
  ++get_hits_;
  return RemoteStatus::kHit;
}

bool RemoteRegistry::publish(const std::string& signature,
                             const PlanEntry& entry) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++puts_;
  net::Frame request{net::Op::kPutPlan, ""};
  try {
    request.payload = encode_plan(signature, entry);
  } catch (const std::exception& e) {
    ++errors_;
    last_error_ = std::string("put_plan: ") + e.what();
    return false;
  }
  net::Frame response;
  if (!roundtrip("put_plan", request, &response)) return false;
  const bool accepted = response.payload == "1";
  if (accepted) ++put_accepted_;
  return accepted;
}

bool RemoteRegistry::sync(PlanRegistry& registry) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++syncs_;
  net::Frame request{net::Op::kSync, ""};
  try {
    request.payload = registry.to_text();
  } catch (const std::exception& e) {
    ++errors_;
    last_error_ = std::string("sync: ") + e.what();
    return false;
  }
  net::Frame response;
  if (!roundtrip("sync", request, &response)) return false;
  try {
    registry.merge_text(response.payload, "<plan-server>");
  } catch (const std::exception& e) {
    fail_link("sync", e);
    return false;
  }
  return true;
}

bool RemoteRegistry::ping() {
  std::lock_guard<std::mutex> lock(mutex_);
  net::Frame response;
  return roundtrip("ping", {net::Op::kPing, "barracuda"}, &response);
}

bool RemoteRegistry::stats_text(std::string* out) {
  std::lock_guard<std::mutex> lock(mutex_);
  net::Frame response;
  if (!roundtrip("stats", {net::Op::kStats, ""}, &response)) return false;
  *out = response.payload;
  return true;
}

RemoteRegistryStats RemoteRegistry::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  RemoteRegistryStats s;
  s.gets = gets_;
  s.get_hits = get_hits_;
  s.puts = puts_;
  s.put_accepted = put_accepted_;
  s.syncs = syncs_;
  s.errors = errors_;
  s.reconnect_probes = reconnect_probes_;
  s.reconnect_healed = reconnect_healed_;
  s.link_up = client_.connected();
  s.last_error = last_error_;
  return s;
}

}  // namespace barracuda::serve::remote
