// Payload encodings for the plan protocol's GET_PLAN/PUT_PLAN ops: one
// (signature, PlanEntry) pair as a single tab-separated text line,
// deliberately the same record shape as the registry file format
//
//   <modeled_us>\t<tuned 0|1>\t<variant>\t<recipe-flattened>\t<signature>
//
// so anything that can read a v1 registry line can read a wire plan.
// SYNC payloads need no encoder of their own — they carry full
// PlanRegistry::to_text() / merge_text() v2 registry text.
#pragma once

#include <string>

#include "serve/registry.hpp"

namespace barracuda::serve::remote {

/// Encode one plan record.  Throws Error on unserializable entries
/// (same validation rules as PlanRegistry::save).
std::string encode_plan(const std::string& signature, const PlanEntry& entry);

/// Decode one plan record into (*signature, *entry), parsing the recipe
/// into entry->parsed so a remote hit serves zero-reparse like a warm
/// local one.  Throws Error on malformed text.
void decode_plan(const std::string& text, std::string* signature,
                 PlanEntry* entry);

}  // namespace barracuda::serve::remote
