#include "serve/remote/planserver.hpp"

#include <chrono>
#include <utility>

#include "serve/remote/wire.hpp"
#include "support/error.hpp"

namespace barracuda::serve::remote {

PlanServer::PlanServer(PlanRegistry& registry, PlanServerOptions options)
    : registry_(registry),
      options_(std::move(options)),
      server_([this](const net::Frame& f) { return handle(f); },
              options_.net) {
  peers_.reserve(options_.peers.size());
  for (const net::Endpoint& peer : options_.peers) {
    peers_.push_back(
        std::make_unique<RemoteRegistry>(peer, options_.peer_link));
  }
}

PlanServer::~PlanServer() { stop(); }

std::uint16_t PlanServer::listen_tcp(const std::string& host,
                                     std::uint16_t port) {
  return server_.listen_tcp(host, port);
}

void PlanServer::listen_unix(const std::string& path) {
  server_.listen_unix(path);
}

void PlanServer::start() {
  server_.start();
  if (!options_.registry_path.empty() && options_.flush_interval > 0) {
    flush_thread_ = std::thread([this] { flush_loop(); });
  }
  if (!peers_.empty() && options_.gossip_interval > 0) {
    gossip_thread_ = std::thread([this] { gossip_loop(); });
  }
}

bool PlanServer::flush() {
  if (options_.registry_path.empty()) return true;
  try {
    registry_.merge_save(options_.registry_path, options_.policy);
    flushes_.fetch_add(1, std::memory_order_relaxed);
    return true;
  } catch (const std::exception& e) {
    flush_failures_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(error_mutex_);
    last_error_ = e.what();
    return false;
  }
}

void PlanServer::flush_loop() {
  std::unique_lock<std::mutex> lock(flush_mutex_);
  const auto interval =
      std::chrono::duration<double>(options_.flush_interval);
  while (!flush_stop_) {
    if (flush_cv_.wait_for(lock, interval, [this] { return flush_stop_; })) {
      break;
    }
    lock.unlock();
    flush();
    lock.lock();
  }
}

std::size_t PlanServer::gossip_pass() {
  std::size_t completed = 0;
  for (auto& peer : peers_) {
    // sync() pushes the full registry and merges the peer's reply, and
    // the peer's SYNC handler does the mirror-image merge — one round
    // trip converges the PAIR to the exact union (better-wins entries,
    // max-reconciled demand), so repeated rounds are idempotent.
    if (peer->sync(registry_) == RemoteWrite::kOk) {
      gossip_rounds_.fetch_add(1, std::memory_order_relaxed);
      ++completed;
    } else {
      gossip_failures_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return completed;
}

void PlanServer::gossip_loop() {
  // Same shape as flush_loop, sharing its stop signal: both are
  // periodic maintenance ticks that must never hold a lock while
  // working.  A dead peer is already bounded by the peer link's
  // breaker, so the loop stays cheap while partitioned and converges
  // again when the peer heals.
  std::unique_lock<std::mutex> lock(flush_mutex_);
  const auto interval =
      std::chrono::duration<double>(options_.gossip_interval);
  while (!flush_stop_) {
    if (flush_cv_.wait_for(lock, interval, [this] { return flush_stop_; })) {
      break;
    }
    lock.unlock();
    gossip_pass();
    lock.lock();
  }
}

void PlanServer::stop() {
  if (stopped_) return;
  stopped_ = true;
  // Order matters for the graceful-shutdown guarantee: stop accepting
  // and DRAIN in-flight requests first (their PUTs/SYNCs still land),
  // then persist the final state.
  server_.stop();
  {
    std::lock_guard<std::mutex> lock(flush_mutex_);
    flush_stop_ = true;
  }
  flush_cv_.notify_all();
  if (flush_thread_.joinable()) flush_thread_.join();
  if (gossip_thread_.joinable()) gossip_thread_.join();
  flush();
}

net::Frame PlanServer::handle(const net::Frame& request) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  switch (request.op) {
    case net::Op::kPing:
      pings_.fetch_add(1, std::memory_order_relaxed);
      return {net::Op::kOk, request.payload};
    case net::Op::kGetPlan: {
      gets_.fetch_add(1, std::memory_order_relaxed);
      PlanEntry entry;
      // peek, not lookup: remote traffic must not distort the server
      // registry's own hit/miss counters (the client records the miss).
      if (!registry_.peek(request.payload, &entry)) {
        return {net::Op::kNotFound, ""};
      }
      get_hits_.fetch_add(1, std::memory_order_relaxed);
      return {net::Op::kOk, encode_plan(request.payload, entry)};
    }
    case net::Op::kPutPlan: {
      puts_.fetch_add(1, std::memory_order_relaxed);
      std::string signature;
      PlanEntry entry;
      // A malformed record throws -> the net layer replies kError and
      // keeps the connection; the registry is never touched.
      decode_plan(request.payload, &signature, &entry);
      const bool accepted = registry_.publish(signature, entry);
      if (accepted) put_accepted_.fetch_add(1, std::memory_order_relaxed);
      return {net::Op::kOk, accepted ? "1" : "0"};
    }
    case net::Op::kSync: {
      syncs_.fetch_add(1, std::memory_order_relaxed);
      if (!request.payload.empty()) {
        // Strict parse: a corrupt sync payload rejects the whole round
        // (merge_stream parses everything before merging anything), so
        // the server registry stays consistent.
        sync_entries_in_.fetch_add(
            registry_.merge_text(request.payload, "<sync>"),
            std::memory_order_relaxed);
      }
      return {net::Op::kOk, registry_.to_text()};
    }
    case net::Op::kStats:
      stats_requests_.fetch_add(1, std::memory_order_relaxed);
      return {net::Op::kOk, stats_text()};
    default:
      bad_requests_.fetch_add(1, std::memory_order_relaxed);
      throw Error("unknown plan-protocol op " +
                  std::to_string(static_cast<unsigned>(request.op)));
  }
}

std::string PlanServer::stats_text() const {
  const PlanServerStats s = stats();
  std::string out;
  auto line = [&out](const char* key, std::size_t value) {
    out += key;
    out.push_back('\t');
    out += std::to_string(value);
    out.push_back('\n');
  };
  line("requests", s.requests);
  line("gets", s.gets);
  line("get_hits", s.get_hits);
  line("puts", s.puts);
  line("put_accepted", s.put_accepted);
  line("syncs", s.syncs);
  line("sync_entries_in", s.sync_entries_in);
  line("pings", s.pings);
  line("bad_requests", s.bad_requests);
  line("flushes", s.flushes);
  line("flush_failures", s.flush_failures);
  line("gossip_rounds", s.gossip_rounds);
  line("gossip_failures", s.gossip_failures);
  line("registry_size", registry_.size());
  line("protocol_errors", s.net.protocol_errors);
  line("open_connections", s.net.open_connections);
  return out;
}

PlanServerStats PlanServer::stats() const {
  PlanServerStats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.gets = gets_.load(std::memory_order_relaxed);
  s.get_hits = get_hits_.load(std::memory_order_relaxed);
  s.puts = puts_.load(std::memory_order_relaxed);
  s.put_accepted = put_accepted_.load(std::memory_order_relaxed);
  s.syncs = syncs_.load(std::memory_order_relaxed);
  s.sync_entries_in = sync_entries_in_.load(std::memory_order_relaxed);
  s.pings = pings_.load(std::memory_order_relaxed);
  s.stats_requests = stats_requests_.load(std::memory_order_relaxed);
  s.bad_requests = bad_requests_.load(std::memory_order_relaxed);
  s.flushes = flushes_.load(std::memory_order_relaxed);
  s.flush_failures = flush_failures_.load(std::memory_order_relaxed);
  s.gossip_rounds = gossip_rounds_.load(std::memory_order_relaxed);
  s.gossip_failures = gossip_failures_.load(std::memory_order_relaxed);
  s.net = server_.stats();
  return s;
}

std::string PlanServer::last_error() const {
  std::lock_guard<std::mutex> lock(error_mutex_);
  return last_error_;
}

}  // namespace barracuda::serve::remote
