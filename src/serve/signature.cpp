#include "serve/signature.hpp"

#include <sstream>

namespace barracuda::serve {

std::string signature(const core::TuningProblem& problem,
                      const vgpu::DeviceProfile& device) {
  std::ostringstream os;
  os << device.name << '|';
  // tensor::Extents is an ordered map, so iteration order is the sorted
  // index order regardless of how the DSL declared them.
  for (const auto& [index, extent] : problem.extents) {
    os << index << '=' << extent << ',';
  }
  os << '|';
  for (const auto& stmt : problem.statements) os << stmt.to_string() << ';';
  return os.str();
}

std::string signature_of_dsl(std::string_view dsl_text,
                             const vgpu::DeviceProfile& device) {
  return signature(core::TuningProblem::from_dsl(dsl_text), device);
}

}  // namespace barracuda::serve
