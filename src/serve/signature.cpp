#include "serve/signature.hpp"

#include <cstdio>

namespace barracuda::serve {

std::string signature(const core::TuningProblem& problem,
                      const vgpu::DeviceProfile& device) {
  // This runs on EVERY get_plan request — with the registry read now a
  // lock-free snapshot lookup, signature construction is the biggest
  // per-request cost on the warm path — so build the string directly
  // (one reserve, plain appends) instead of through an ostringstream.
  std::string sig;
  sig.reserve(64 + 16 * problem.extents.size());
  sig += device.name;
  sig += '|';
  // tensor::Extents is an ordered map, so iteration order is the sorted
  // index order regardless of how the DSL declared them.
  char extent_text[24];
  for (const auto& [index, extent] : problem.extents) {
    sig += index;
    sig += '=';
    std::snprintf(extent_text, sizeof extent_text, "%lld",
                  static_cast<long long>(extent));
    sig += extent_text;
    sig += ',';
  }
  sig += '|';
  for (const auto& stmt : problem.statements) {
    sig += stmt.to_string();
    sig += ';';
  }
  return sig;
}

std::string signature_of_dsl(std::string_view dsl_text,
                             const vgpu::DeviceProfile& device) {
  return signature(core::TuningProblem::from_dsl(dsl_text), device);
}

}  // namespace barracuda::serve
