// PlanCache: a small LRU of MATERIALIZED plans — parsed recipe +
// lowered GPU kernels — keyed by canonical signature.
//
// Why it exists: a warm registry hit hands back a PlanEntry, but running
// it still costs enumerate_programs + lower_program per call (and,
// before PR 7, a recipe re-parse).  Those are pure functions of
// (signature, entry), so the serving layer caches the finished
// chill::GpuPlan and answers repeat executions with a shared_ptr copy —
// the per-request cost of a hot signature drops to one snapshot load.
//
// Concurrency discipline: identical to the sharded PlanRegistry's —
// readers are mutex-free.  The whole map is published as an immutable
// snapshot (std::shared_ptr<const Map>) through an atomic pointer;
// find() loads the snapshot, looks up, and bumps the entry's recency
// tick with a relaxed atomic store (the tick lives behind a shared_ptr
// in the slot, so it survives snapshot swaps).  insert() serializes
// writers on one mutex and publishes copy-on-write: copy the map, add
// the entry, evict the least-recently-used slots past capacity, swap.
// A reader holding an evicted plan keeps it alive through its
// shared_ptr — eviction drops the cache's reference, never the plan.
//
// Staleness is the CALLER's contract: a background tune may upgrade the
// registry entry after a plan was cached, so ExecutablePlan carries the
// PlanEntry it was lowered from and TuningService compares it against
// the registry's current entry on every hit (persisted-field equality).
// A stale hit is treated as a miss and re-materialized; the counters
// split the two cases (hits vs stale) so tests can pin the protocol.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "chill/kernel.hpp"
#include "serve/registry.hpp"

namespace barracuda::serve {

/// A plan ready to execute: the registry entry it was materialized from
/// (the staleness witness) plus the lowered kernels.  Immutable once
/// cached; shared read-only across any number of executing threads
/// (vgpu::execute_plan and the batch executors only read the plan).
struct ExecutablePlan {
  PlanEntry entry;
  chill::GpuPlan plan;
};

/// Thread-safe LRU from signature to shared ExecutablePlan.  Reads are
/// mutex-free snapshot loads; writes are serialized copy-on-write.
class PlanCache {
 public:
  /// `capacity` >= 1 (checked): the maximum number of cached plans.
  explicit PlanCache(std::size_t capacity = 128);

  std::size_t capacity() const { return capacity_; }

  /// The cached plan for `signature`, or null.  Mutex-free; bumps the
  /// entry's recency tick and the hit/miss counters (relaxed atomics).
  std::shared_ptr<const ExecutablePlan> find(
      const std::string& signature) const;

  /// Cache `plan` under `signature`, replacing any previous plan for it
  /// (last writer wins — both correspond to some registry state, and
  /// the staleness check re-validates every hit anyway).  Evicts the
  /// least-recently-used entries while size exceeds capacity.  Returns
  /// the shared pointer now cached.
  std::shared_ptr<const ExecutablePlan> insert(const std::string& signature,
                                               ExecutablePlan plan);

  std::size_t size() const;
  std::size_t hits() const;
  std::size_t misses() const;
  std::size_t evictions() const;
  void clear();

 private:
  struct Slot {
    std::shared_ptr<const ExecutablePlan> plan;
    /// Recency: the global tick at last find()/insert().  Behind a
    /// shared_ptr so find() can bump it through a const snapshot.
    std::shared_ptr<std::atomic<std::uint64_t>> last_used;
  };
  using Map = std::unordered_map<std::string, Slot>;

  std::size_t capacity_;
  std::atomic<std::shared_ptr<const Map>> snapshot_;
  mutable std::mutex write_mutex_;
  mutable std::atomic<std::uint64_t> tick_{0};
  mutable std::atomic<std::size_t> hits_{0};
  mutable std::atomic<std::size_t> misses_{0};
  std::atomic<std::size_t> evictions_{0};
};

}  // namespace barracuda::serve
