#include "serve/service.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <thread>
#include <utility>

#include "core/report.hpp"
#include "support/error.hpp"
#include "support/faultinject.hpp"
#include "support/threadpool.hpp"
#include "support/timer.hpp"

namespace barracuda::serve {
namespace {

/// Infeasible plans model to +inf; clamp to the same large finite
/// penalty the tuning objective uses so entries stay serializable and
/// comparable under better_plan.
double finite_us(double us) { return std::isfinite(us) ? us : 1e15; }

/// splitmix64 finisher: full-avalanche mixing for the jitter hash.
std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

/// Backoff before retry attempt `attempt` (2-based): capped exponential
/// with a deterministic jitter factor in [0.5, 1.0] — a pure function
/// of (jitter_seed, sig, attempt), so retry spacing reproduces exactly
/// and distinct signatures decorrelate.
double backoff_ms(const RetryPolicy& retry, const std::string& sig,
                  std::size_t attempt) {
  double exp_ms = retry.base_delay_ms;
  for (std::size_t k = 2; k < attempt; ++k) exp_ms *= 2.0;
  exp_ms = std::min(exp_ms, retry.cap_ms);
  std::uint64_t h = retry.jitter_seed;
  for (char c : sig) h = mix64(h ^ static_cast<unsigned char>(c));
  h = mix64(h ^ attempt);
  const double unit =
      static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);  // [0,1)
  return exp_ms * (0.5 + 0.5 * unit);
}

}  // namespace

TuningService::TuningService(PlanRegistry& registry, ServeOptions options)
    : registry_(registry),
      options_(std::move(options)),
      plan_cache_(options_.plan_cache_capacity) {
  BARRACUDA_CHECK_MSG(options_.queue_capacity >= 1,
                      "serve queue capacity must be >= 1");
  BARRACUDA_CHECK_MSG(options_.breaker_cooldown >= 0,
                      "breaker cool-down must be >= 0");
  BARRACUDA_CHECK_MSG(options_.retune_interval >= 0,
                      "retune interval must be >= 0");
  BARRACUDA_CHECK_MSG(options_.anti_entropy_interval >= 0,
                      "anti-entropy interval must be >= 0");
  known_.store(std::make_shared<const ContextMap>(),
               std::memory_order_relaxed);
  if (options_.retune_interval > 0) {
    retune_thread_ = std::thread([this] { retune_loop(); });
  }
  if (options_.remote && options_.anti_entropy_interval > 0) {
    anti_entropy_thread_ = std::thread([this] { anti_entropy_loop(); });
  }
}

TuningService::~TuningService() {
  // Stop the maintenance threads FIRST — neither the re-tune scheduler
  // nor the anti-entropy sync may start new work while we drain — then
  // let in-flight tasks finish: they capture `this`, so they must
  // complete before the members they touch are destroyed.  Their
  // upgrades still land in the registry, which outlives the service by
  // contract.
  if (retune_thread_.joinable() || anti_entropy_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(retune_mutex_);
      retune_stop_ = true;
    }
    retune_cv_.notify_all();
    if (retune_thread_.joinable()) retune_thread_.join();
    if (anti_entropy_thread_.joinable()) anti_entropy_thread_.join();
  }
  drain();
}

void TuningService::remember_signature(const std::string& sig,
                                       const core::TuningProblem& problem,
                                       const vgpu::DeviceProfile& device) {
  // Fast path: already known — one lock-free find on the immutable map.
  std::shared_ptr<const ContextMap> snap =
      known_.load(std::memory_order_acquire);
  if (snap->contains(sig)) return;
  auto context = std::make_shared<const RetuneContext>(
      RetuneContext{problem, device});
  std::lock_guard<std::mutex> lock(mutex_);
  std::shared_ptr<const ContextMap> current =
      known_.load(std::memory_order_relaxed);
  if (current->contains(sig)) return;
  auto next = std::make_shared<ContextMap>(*current);
  (*next)[sig] = std::move(context);
  known_.store(std::move(next), std::memory_order_release);
}

ServedPlan TuningService::serve_signature(std::string sig,
                                          const core::TuningProblem& problem,
                                          const vgpu::DeviceProfile& device,
                                          std::size_t count) {
  ServedPlan served;
  served.signature = std::move(sig);

  if (registry_.lookup(served.signature, &served.plan)) {
    served.source = ServedPlan::Source::kWarm;
    if (!served.plan.tuned) {
      served.scheduled_tune =
          maybe_schedule(served.signature, problem, device);
    }
    // Demand feeds the adaptive re-tuner: what was served, how often.
    registry_.record_demand(served.signature, served.plan.modeled_us, count);
    remember_signature(served.signature, problem, device);
    return served;
  }

  // Local (L1) miss: consult the remote (L2) tier first — a fleet that
  // already tuned this signature answers it here, and the node inherits
  // the plan instead of redoing the tune.  The backend contract says
  // fetch never throws and never blocks unboundedly, but a remote tier
  // must NEVER be able to fail a request, so the call is fenced anyway.
  if (options_.remote) {
    PlanEntry fetched;
    RemoteStatus status = RemoteStatus::kUnavailable;
    try {
      status = options_.remote->fetch(served.signature, &fetched);
    } catch (...) {
      status = RemoteStatus::kUnavailable;
    }
    switch (status) {
      case RemoteStatus::kHit: {
        remote_hits_.fetch_add(1, std::memory_order_relaxed);
        served.source = ServedPlan::Source::kRemote;
        // Publish into L1 better-wins and serve what the registry then
        // holds — same monotonicity rule as the cold path.
        served.plan = registry_.publish_and_get(served.signature, fetched);
        if (!served.plan.tuned) {
          served.scheduled_tune =
              maybe_schedule(served.signature, problem, device);
        }
        registry_.record_demand(served.signature, served.plan.modeled_us,
                                count);
        remember_signature(served.signature, problem, device);
        return served;
      }
      case RemoteStatus::kMiss:
        remote_misses_.fetch_add(1, std::memory_order_relaxed);
        break;
      case RemoteStatus::kError:
        // A replica answered and rejected the request — the transport
        // works, so this is an application problem, not a dead fleet.
        remote_errors_.fetch_add(1, std::memory_order_relaxed);
        break;
      case RemoteStatus::kUnavailable:
        // No replica reachable: degraded to local-only for this
        // request; the backend's per-endpoint breakers decide when to
        // probe the links again.
        remote_unavailable_.fetch_add(1, std::memory_order_relaxed);
        break;
    }
  }

  // Cold signature: compute the cheap fallback, publish it better-wins
  // and serve whatever the registry then holds — if a concurrent tune
  // finished in the window since our miss, that's the tuned plan, never
  // anything slower than a previous answer for this signature.
  served.source = ServedPlan::Source::kCold;
  served.plan = registry_.publish_and_get(
      served.signature, fallback_plan(problem, device, options_.tune));
  if (!served.plan.tuned) {
    served.scheduled_tune = maybe_schedule(served.signature, problem, device);
  }
  registry_.record_demand(served.signature, served.plan.modeled_us, count);
  remember_signature(served.signature, problem, device);
  return served;
}

ServedPlan TuningService::get_plan(const core::TuningProblem& problem,
                                   const vgpu::DeviceProfile& device) {
  // Warm path: this relaxed increment plus the registry's lock-free
  // shard-snapshot lookup is ALL a tuned hit does — no service mutex,
  // no contention with publishing tunes or other readers.
  requests_.fetch_add(1, std::memory_order_relaxed);
  return serve_signature(signature(problem, device), problem, device);
}

std::vector<TuningService::SignatureGroup> TuningService::group_batch(
    const std::vector<core::TuningProblem>& problems,
    const vgpu::DeviceProfile& device) const {
  // Group by DISTINCT problem before canonicalizing: structural
  // equality (statements + extents — exactly what the signature is
  // built from, the display name excluded) is far cheaper than building
  // the signature string, so a batch of a thousand identical requests
  // pays for ONE canonicalization, not a thousand.
  std::vector<SignatureGroup> groups;
  for (std::size_t i = 0; i < problems.size(); ++i) {
    const core::TuningProblem& p = problems[i];
    SignatureGroup* group = nullptr;
    for (SignatureGroup& g : groups) {
      // Extents first: same-kernel-different-shape batches (the common
      // heterogeneous mix) share identical statements, so comparing
      // those first would string-compare the whole program before the
      // extents mismatch finally splits the groups.
      if (g.problem == &p || (g.problem->extents == p.extents &&
                              g.problem->statements == p.statements)) {
        group = &g;
        break;
      }
    }
    if (group == nullptr) {
      groups.push_back({&p, signature(p, device), {}});
      group = &groups.back();
    }
    group->items.push_back(i);
  }
  return groups;
}

std::vector<ServedPlan> TuningService::get_plan_batch(
    const std::vector<core::TuningProblem>& problems,
    const vgpu::DeviceProfile& device) {
  // Like get_plan's warm path, the batched warm path is mutex-free:
  // relaxed counter bumps plus one lock-free registry lookup per
  // DISTINCT signature — the whole point of batching.
  requests_.fetch_add(problems.size(), std::memory_order_relaxed);
  batches_.fetch_add(1, std::memory_order_relaxed);
  batch_requests_.fetch_add(problems.size(), std::memory_order_relaxed);

  std::vector<ServedPlan> served(problems.size());
  std::vector<SignatureGroup> groups = group_batch(problems, device);
  batch_signature_lookups_.fetch_add(groups.size(),
                                     std::memory_order_relaxed);
  for (SignatureGroup& group : groups) {
    ServedPlan answer = serve_signature(std::move(group.sig), *group.problem,
                                        device, group.items.size());
    for (std::size_t k = 0; k + 1 < group.items.size(); ++k) {
      served[group.items[k]] = answer;
      // At most one item per signature group reports the enqueue —
      // mirroring "at most one request per tune run" of get_plan.
      answer.scheduled_tune = false;
    }
    served[group.items.back()] = std::move(answer);
  }
  return served;
}

std::shared_ptr<const ExecutablePlan> TuningService::executable_for(
    const ServedPlan& served, const core::TuningProblem& problem,
    bool* cache_hit) {
  std::shared_ptr<const ExecutablePlan> cached =
      plan_cache_.find(served.signature);
  if (cached && cached->entry == served.plan) {
    // Fresh hit: the cached plan was lowered from exactly the entry the
    // registry just served — reuse it outright.
    plan_cache_hits_.fetch_add(1, std::memory_order_relaxed);
    *cache_hit = true;
    return cached;
  }
  if (cached) {
    // A background tune upgraded the entry since this plan was cached:
    // the cached kernels are for the OLD plan, so re-materialize.
    plan_cache_stale_.fetch_add(1, std::memory_order_relaxed);
  } else {
    plan_cache_misses_.fetch_add(1, std::memory_order_relaxed);
  }
  *cache_hit = false;
  ExecutablePlan fresh;
  fresh.entry = served.plan;
  fresh.plan = materialize(problem, served.plan, options_.tune);
  return plan_cache_.insert(served.signature, std::move(fresh));
}

ExecutableServedPlan TuningService::get_executable(
    const core::TuningProblem& problem, const vgpu::DeviceProfile& device) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  ExecutableServedPlan out;
  out.served = serve_signature(signature(problem, device), problem, device);
  out.executable = executable_for(out.served, problem, &out.cache_hit);
  return out;
}

std::vector<ExecutableServedPlan> TuningService::get_executable_batch(
    const std::vector<core::TuningProblem>& problems,
    const vgpu::DeviceProfile& device) {
  requests_.fetch_add(problems.size(), std::memory_order_relaxed);
  batches_.fetch_add(1, std::memory_order_relaxed);
  batch_requests_.fetch_add(problems.size(), std::memory_order_relaxed);

  std::vector<ExecutableServedPlan> out(problems.size());
  std::vector<SignatureGroup> groups = group_batch(problems, device);
  batch_signature_lookups_.fetch_add(groups.size(),
                                     std::memory_order_relaxed);
  for (SignatureGroup& group : groups) {
    ExecutableServedPlan answer;
    answer.served = serve_signature(std::move(group.sig), *group.problem,
                                    device, group.items.size());
    // ONE materialization (or LRU hit) per distinct signature; every
    // item of the group shares the same executable pointer.
    answer.executable =
        executable_for(answer.served, *group.problem, &answer.cache_hit);
    for (std::size_t k = 0; k < group.items.size(); ++k) {
      out[group.items[k]] = answer;
      answer.served.scheduled_tune = false;
    }
  }
  return out;
}

bool TuningService::maybe_schedule(const std::string& sig,
                                   const core::TuningProblem& problem,
                                   const vgpu::DeviceProfile& device,
                                   bool retune) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Single-flight dedup.  Order matters: a finishing tune publishes
    // its upgrade BEFORE erasing itself from inflight_ (under this
    // mutex), so "not in flight" here means any completed tune is
    // already visible in the registry — the peek below closes the
    // completion race (a request that read the untuned entry before the
    // upgrade landed must not schedule a second tune after it).
    if (inflight_.contains(sig)) return false;
    // Circuit breaker: a signature that exhausted its retries stays on
    // its fallback plan (served instantly, like any other answer) and
    // is not rescheduled — a poisoned problem must not eat the tuning
    // queue forever.  With a cool-down configured, an open breaker
    // turns HALF-OPEN once the cool-down has elapsed: this request may
    // admit exactly one probe tune ("exactly one" is inflight_'s job —
    // the probe sits there until it resolves, blocking any second
    // schedule; a failing probe re-opens the breaker with a fresh
    // clock in run_tune).
    bool is_probe = false;
    auto open = breaker_.find(sig);
    if (open != breaker_.end()) {
      if (options_.breaker_cooldown <= 0) return false;
      const double open_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        open->second)
              .count();
      if (open_seconds < options_.breaker_cooldown) return false;
      is_probe = true;
    }
    // Re-tunes exist to re-run TUNED signatures with a bigger budget,
    // so the tuned-refusal guard applies only to the cold path.
    PlanEntry current;
    if (!retune && registry_.peek(sig, &current) && current.tuned) {
      return false;
    }
    if (scheduled_ + running_ >= options_.queue_capacity) {
      // Backpressure: refuse the enqueue, not the request.  The caller
      // already holds the fallback plan; the signature stays untuned
      // and a later request retries once the queue drained.  A refused
      // probe stays refusable: the breaker clock is untouched, so the
      // next request past the cool-down re-attempts it.
      ++rejected_;
      return false;
    }
    inflight_.insert(sig);
    ++scheduled_;
    ++tunes_started_;
    if (is_probe) ++breaker_probes_;
  }
  // Copies, not references: the tune outlives the request.
  support::ThreadPool::shared().submit([this, sig, problem, device, retune] {
    run_tune(sig, problem, device, retune);
  });
  return true;
}

void TuningService::run_tune(const std::string& sig,
                             const core::TuningProblem& problem,
                             const vgpu::DeviceProfile& device, bool retune) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    --scheduled_;
    ++running_;
  }
  WallTimer timer;

  // Cooperative deadline: one wall clock spans the whole run (every
  // retry attempt included).  The search consults it between evaluation
  // batches via SearchOptions::should_stop — possibly from concurrent
  // annealing chains, hence the shared_ptr + atomic flag — and an
  // expired search returns its best-so-far, which publishes like any
  // other result.  The timer lives in a shared_ptr because the options
  // copy (and the lambda in it) is moved into core::tune.
  core::TuneOptions tune_options = options_.tune;
  if (retune) {
    // Hot plans deserve more search: the multiplied budget is the whole
    // reason a re-tune can beat the latency-bound cold tune.
    tune_options.search.max_evaluations =
        options_.retune_budget > 0
            ? options_.retune_budget
            : 4 * std::max<std::size_t>(
                      1, tune_options.search.max_evaluations);
  }
  auto expired = std::make_shared<std::atomic<bool>>(false);
  if (options_.tune_deadline > 0) {
    auto clock = std::make_shared<WallTimer>();
    const double budget = options_.tune_deadline;
    auto inner = tune_options.search.should_stop;
    tune_options.search.should_stop = [clock, budget, expired, inner] {
      if (clock->seconds() >= budget) {
        expired->store(true, std::memory_order_relaxed);
        return true;
      }
      return inner && inner();
    };
  }

  // Retry loop: every attempt's error text is captured (satellite for
  // the old bare `catch (...)`); between attempts the worker sleeps the
  // deterministic backoff.  An exhausted run trips the breaker.
  const std::size_t max_attempts =
      std::max<std::size_t>(1, options_.retry.max_attempts);
  bool succeeded = false;
  bool improved = false;
  std::size_t attempts = 0;
  std::size_t extra_attempts = 0;
  std::string error_text;
  PlanEntry tuned;  // hoisted: a successful run's entry outlives the
                    // loop so it can be published to the remote tier
  for (std::size_t attempt = 1; attempt <= max_attempts; ++attempt) {
    if (attempt > 1) {
      // Retrying after the deadline expired (or an external should_stop
      // fired) would spend time the run no longer has; stop and let the
      // failure record tell the story.  Calling the lambda — not just
      // reading the flag — matters: an attempt that throws before its
      // search starts never consults should_stop, so the flag alone
      // would let a failing run retry far past its deadline.
      if (tune_options.search.should_stop &&
          tune_options.search.should_stop()) {
        break;
      }
      ++extra_attempts;
      const double ms = backoff_ms(options_.retry, sig, attempt);
      if (ms > 0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(ms));
      }
    }
    ++attempts;
    try {
      // `serve.tune` models the tune pipeline itself throwing (OOM in
      // enumeration, a lowering bug on one problem shape, ...);
      // `serve.retune` is the same failure on a re-tune run, so chaos
      // tests can poison re-tunes without touching cold tunes.
      support::fault::maybe_throw(retune ? "serve.retune" : "serve.tune");
      core::TuneResult result = core::tune(problem, device, tune_options);
      tuned = PlanEntry{};
      tuned.variant = result.best_variant;
      tuned.recipe_text = core::serialize_recipe(result.best_recipe);
      tuned.modeled_us = finite_us(result.modeled_us());
      tuned.tuned = true;
      // Cache the parsed recipe on the entry we already have in hand:
      // every future warm hit serves this entry without re-parsing.
      tuned.parsed =
          std::make_shared<const chill::Recipe>(std::move(result.best_recipe));
      // Better-wins: an upgrade only lands when the tuned plan actually
      // beats the fallback (it always should — the static mapping is a
      // candidate the search compares against), so the served latency
      // for this signature is monotone non-increasing.  For a re-tune
      // the same rule is the safety net: a bigger-budget search that
      // somehow finds nothing better leaves the incumbent untouched.
      improved = registry_.publish(sig, tuned);
      succeeded = true;
      break;
    } catch (const std::exception& e) {
      error_text = e.what();
    } catch (...) {
      error_text = "non-standard exception";
    }
  }

  // Share the win with the fleet: offer the tuned entry to the remote
  // tier (better-wins on the server side), outside any service lock.
  // Best-effort by contract — a dead or refusing backend costs one
  // remote_errors tick, never the tune.  `serve.remote.publish` models
  // this publish step itself failing (e.g. encoding a pathological
  // entry) independently of the socket-level net.* sites.
  std::string remote_error_text;
  if (succeeded && options_.remote) {
    try {
      support::fault::maybe_throw("serve.remote.publish");
      // Only an accepted offer counts as a publish; "backend already
      // holds better" is the idempotent fan-out case and costs nothing.
      switch (options_.remote->publish(sig, tuned)) {
        case RemoteWrite::kOk:
          remote_publishes_.fetch_add(1, std::memory_order_relaxed);
          break;
        case RemoteWrite::kRejected:
          break;
        case RemoteWrite::kError:
          remote_errors_.fetch_add(1, std::memory_order_relaxed);
          break;
        case RemoteWrite::kUnavailable:
          remote_unavailable_.fetch_add(1, std::memory_order_relaxed);
          break;
      }
    } catch (const std::exception& e) {
      remote_errors_.fetch_add(1, std::memory_order_relaxed);
      remote_error_text = e.what();
    } catch (...) {
      remote_errors_.fetch_add(1, std::memory_order_relaxed);
      remote_error_text = "non-standard exception";
    }
  }

  const double seconds = timer.seconds();
  const bool was_expired = expired->load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Publish-then-erase: see maybe_schedule for why this order is the
    // single-flight guarantee.
    inflight_.erase(sig);
    --running_;
    retries_ += extra_attempts;
    if (!error_text.empty()) {
      last_error_ = error_text;
      TuneFailure& record = failures_[sig];
      record.attempts = attempts;
      record.last_error = error_text;
    }
    // A failed remote publish is diagnostic, not a tune failure: no
    // failure record, no breaker — the tuned plan IS serving locally.
    if (!remote_error_text.empty()) {
      last_error_ = "remote publish: " + remote_error_text;
    }
    if (was_expired) ++deadline_expired_;
    if (succeeded) {
      ++tunes_completed_;
      tune_seconds_total_ += seconds;
      if (retune) {
        ++retunes_completed_;
        if (improved) ++retunes_improved_;
      }
      // A successful run through a half-open breaker heals it: the
      // signature leaves quarantine for good (it is now tuned, so
      // maybe_schedule's peek refuses further runs anyway).
      if (breaker_.erase(sig) > 0) ++breaker_healed_;
    } else {
      // Exhausted (or deadline-cut) run: the fallback stays in place
      // and the breaker quarantines the signature — until
      // reset_breakers(), or (with a cool-down configured) until the
      // clock set here admits the next half-open probe.  A failed probe
      // lands here too, restarting the cool-down from now.
      ++tune_failures_;
      breaker_[sig] = std::chrono::steady_clock::now();
    }
    if (scheduled_ + running_ == 0) idle_cv_.notify_all();
  }
}

std::vector<std::string> TuningService::retune_pass() {
  std::vector<std::string> scheduled;
  const std::size_t top_k = options_.retune_top_k;
  if (top_k == 0) return scheduled;
  const std::uint64_t threshold =
      std::max<std::uint64_t>(1, options_.hot_threshold);

  // Candidates: tuned signatures this service has served (we need the
  // remembered problem/device to rebuild the tune), ranked by demand
  // accumulated SINCE their last re-tune — a signature re-tuned once
  // must earn fresh traffic to qualify again.
  std::vector<HotSignature> hot = registry_.hottest(0, threshold);
  std::shared_ptr<const ContextMap> known =
      known_.load(std::memory_order_acquire);
  struct Candidate {
    HotSignature hot;
    std::uint64_t fresh = 0;
  };
  std::vector<Candidate> candidates;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (HotSignature& h : hot) {
      if (!h.tuned) continue;  // the cold path owns untuned signatures
      if (!known->contains(h.signature)) continue;
      auto seen = retuned_hits_.find(h.signature);
      const std::uint64_t baseline =
          seen == retuned_hits_.end() ? 0 : seen->second;
      const std::uint64_t fresh =
          h.requests > baseline ? h.requests - baseline : 0;
      if (fresh < threshold) continue;
      candidates.push_back({std::move(h), fresh});
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.fresh != b.fresh) return a.fresh > b.fresh;
              return a.hot.signature < b.hot.signature;
            });
  if (candidates.size() > top_k) candidates.resize(top_k);

  for (const Candidate& c : candidates) {
    try {
      // `serve.retune.enqueue` models the scheduler failing on one
      // candidate (e.g. an allocation inside the enqueue): the pass
      // records the error and moves on — adaptive re-tuning degrades,
      // serving never does.
      support::fault::maybe_throw("serve.retune.enqueue");
    } catch (const std::exception& e) {
      std::lock_guard<std::mutex> lock(mutex_);
      last_error_ = e.what();
      continue;
    }
    const RetuneContext& context = *known->at(c.hot.signature);
    if (maybe_schedule(c.hot.signature, context.problem, context.device,
                       /*retune=*/true)) {
      std::lock_guard<std::mutex> lock(mutex_);
      ++retunes_scheduled_;
      // The candidate's demand reading becomes the new baseline; a
      // REFUSED enqueue (in flight, breaker, backpressure) leaves the
      // baseline alone so the signature stays eligible next pass.
      retuned_hits_[c.hot.signature] = c.hot.requests;
      scheduled.push_back(c.hot.signature);
    }
  }
  return scheduled;
}

void TuningService::retune_loop() {
  std::unique_lock<std::mutex> lock(retune_mutex_);
  const auto interval =
      std::chrono::duration<double>(options_.retune_interval);
  while (!retune_stop_) {
    if (retune_cv_.wait_for(lock, interval, [this] { return retune_stop_; })) {
      break;
    }
    lock.unlock();
    try {
      retune_pass();
    } catch (const std::exception& e) {
      std::lock_guard<std::mutex> guard(mutex_);
      last_error_ = e.what();
    }
    lock.lock();
  }
}

bool TuningService::anti_entropy_pass() {
  if (!options_.remote) return false;
  RemoteWrite result = RemoteWrite::kError;
  try {
    result = options_.remote->sync(registry_);
  } catch (...) {
    result = RemoteWrite::kError;  // backends must not throw; fence anyway
  }
  switch (result) {
    case RemoteWrite::kOk:
    case RemoteWrite::kRejected:  // sync never rejects; treat as done
      anti_entropy_rounds_.fetch_add(1, std::memory_order_relaxed);
      return true;
    case RemoteWrite::kError:
      remote_errors_.fetch_add(1, std::memory_order_relaxed);
      return false;
    case RemoteWrite::kUnavailable:
      remote_unavailable_.fetch_add(1, std::memory_order_relaxed);
      return false;
  }
  return false;
}

void TuningService::anti_entropy_loop() {
  // Same shape as retune_loop, sharing its stop signal: both are
  // periodic maintenance ticks that must never hold a lock while
  // working.  A failed round is already counted by anti_entropy_pass
  // (the backend's breaker turns a dead server into instant false, so
  // the loop stays cheap while degraded and heals when a probe does).
  std::unique_lock<std::mutex> lock(retune_mutex_);
  const auto interval =
      std::chrono::duration<double>(options_.anti_entropy_interval);
  while (!retune_stop_) {
    if (retune_cv_.wait_for(lock, interval, [this] { return retune_stop_; })) {
      break;
    }
    lock.unlock();
    anti_entropy_pass();
    lock.lock();
  }
}

void TuningService::drain() {
  BARRACUDA_CHECK_MSG(!support::ThreadPool::on_worker_thread(),
                      "TuningService::drain() would deadlock on a pool "
                      "worker thread");
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return scheduled_ + running_ == 0; });
}

ServeStats TuningService::snapshot() const {
  ServeStats s;
  // Hot counter: relaxed atomic read, no lock — see the ServeStats
  // consistency contract.  Every counter below is read exactly once
  // into the snapshot (atomics with relaxed loads, mutex-guarded tune
  // state under one lock acquisition), so taking a snapshot while
  // workers mutate the counters is race-free by construction — there is
  // no field-by-field copy of live state anywhere.
  s.requests = requests_.load(std::memory_order_relaxed);
  {
    // Tune-path state: mutex_ is contended only by the miss/untuned
    // path and tune workers, so taking it here never stalls a warm
    // request.
    std::lock_guard<std::mutex> lock(mutex_);
    s.tunes_started = tunes_started_;
    s.tunes_completed = tunes_completed_;
    s.tune_failures = tune_failures_;
    s.retries = retries_;
    s.breaker_open = breaker_.size();
    s.deadline_expired = deadline_expired_;
    s.last_error = last_error_;
    s.rejected = rejected_;
    s.in_flight = running_;
    s.queue_depth = scheduled_;
    s.tune_seconds_total = tune_seconds_total_;
    s.breaker_probes = breaker_probes_;
    s.breaker_healed = breaker_healed_;
    s.retunes_scheduled = retunes_scheduled_;
    s.retunes_completed = retunes_completed_;
    s.retunes_improved = retunes_improved_;
  }
  s.batches = batches_.load(std::memory_order_relaxed);
  s.batch_requests = batch_requests_.load(std::memory_order_relaxed);
  s.batch_signature_lookups =
      batch_signature_lookups_.load(std::memory_order_relaxed);
  s.plan_cache_hits = plan_cache_hits_.load(std::memory_order_relaxed);
  s.plan_cache_stale = plan_cache_stale_.load(std::memory_order_relaxed);
  s.plan_cache_misses = plan_cache_misses_.load(std::memory_order_relaxed);
  s.plan_cache_evictions = plan_cache_.evictions();
  s.plan_cache_size = plan_cache_.size();
  s.remote_hits = remote_hits_.load(std::memory_order_relaxed);
  s.remote_misses = remote_misses_.load(std::memory_order_relaxed);
  s.remote_publishes = remote_publishes_.load(std::memory_order_relaxed);
  s.remote_errors = remote_errors_.load(std::memory_order_relaxed);
  s.remote_unavailable = remote_unavailable_.load(std::memory_order_relaxed);
  if (options_.remote) {
    // Replication counters live on the backend (it owns the endpoint
    // set); the snapshot mirrors them so one struct tells the story.
    const RemoteTelemetry t = options_.remote->telemetry();
    s.remote_failovers = t.failovers;
    s.remote_hedges = t.hedges;
    s.remote_hedge_wins = t.hedge_wins;
  }
  s.anti_entropy_rounds =
      anti_entropy_rounds_.load(std::memory_order_relaxed);
  s.registry_hits = registry_.hits();
  s.registry_misses = registry_.misses();
  s.upgrades = registry_.upgrades();
  s.demand_requests = registry_.demand_requests();
  s.served_latency = registry_.served_latency();
  return s;
}

bool TuningService::last_failure(const std::string& signature,
                                 TuneFailure* failure) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = failures_.find(signature);
  if (it == failures_.end()) return false;
  *failure = it->second;
  failure->breaker_open = breaker_.contains(signature);
  return true;
}

void TuningService::reset_breakers() {
  std::lock_guard<std::mutex> lock(mutex_);
  breaker_.clear();
}

chill::GpuPlan materialize(const core::TuningProblem& problem,
                           const PlanEntry& entry,
                           const core::TuneOptions& options) {
  std::vector<tcr::TcrProgram> variants = core::enumerate_programs(
      problem, options.octopi, options.max_joint_variants);
  BARRACUDA_CHECK_MSG(entry.variant < variants.size(),
                      "served plan variant out of range for this problem");
  // Entries that went through load() or a tune carry their parsed
  // recipe; warm-path materialization then never touches the parser
  // (pinned by tests via core::recipe_parse_count).  The text parse is
  // the fallback for hand-built entries.
  if (entry.parsed) {
    return chill::lower_program(variants[entry.variant], *entry.parsed);
  }
  chill::Recipe recipe =
      core::parse_recipe(entry.recipe_text, "<plan-registry>");
  return chill::lower_program(variants[entry.variant], recipe);
}

PrewarmResult prewarm(PlanRegistry& registry,
                      const octopi::OctopiProgram& program,
                      const std::vector<vgpu::DeviceProfile>& devices,
                      const PrewarmOptions& options) {
  BARRACUDA_CHECK_MSG(!devices.empty(), "prewarm needs at least one device");
  WallTimer timer;
  // The cartesian grid: extent specializations x devices.  Each cell is
  // an independent tune, farmed across the shared pool exactly like
  // core::tune_specializations — the pool-depth guard keeps the search
  // inside each pooled tune sequential, so one n_jobs knob bounds the
  // whole prewarm.
  std::vector<tensor::Extents> points =
      program.specializations(options.max_points);
  struct Cell {
    const tensor::Extents* extents;
    const vgpu::DeviceProfile* device;
  };
  std::vector<Cell> grid;
  grid.reserve(points.size() * devices.size());
  for (const auto& point : points) {
    for (const auto& device : devices) grid.push_back({&point, &device});
  }

  std::atomic<std::size_t> tuned{0}, skipped{0}, published{0};
  support::parallel_apply(
      support::resolve_jobs(options.tune.search.n_jobs), grid.size(),
      [&](std::size_t i) {
        core::TuningProblem problem;
        problem.name = "prewarm";
        problem.extents = *grid[i].extents;
        for (const auto& s : program.statements) {
          problem.statements.push_back(s.to_contraction());
        }
        const std::string sig = signature(problem, *grid[i].device);
        PlanEntry current;
        if (registry.peek(sig, &current) && current.tuned) {
          // Already tuned (a previous prewarm run, or a serving fleet's
          // merge_save): re-running prewarm only pays for new points.
          skipped.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        core::TuneResult result =
            core::tune(problem, *grid[i].device, options.tune);
        PlanEntry entry;
        entry.variant = result.best_variant;
        entry.recipe_text = core::serialize_recipe(result.best_recipe);
        entry.modeled_us = finite_us(result.modeled_us());
        entry.tuned = true;
        entry.parsed = std::make_shared<const chill::Recipe>(
            std::move(result.best_recipe));
        tuned.fetch_add(1, std::memory_order_relaxed);
        if (registry.publish(sig, entry)) {
          published.fetch_add(1, std::memory_order_relaxed);
        }
      });

  PrewarmResult result;
  result.points = grid.size();
  result.tuned = tuned.load(std::memory_order_relaxed);
  result.skipped = skipped.load(std::memory_order_relaxed);
  result.published = published.load(std::memory_order_relaxed);
  result.seconds = timer.seconds();
  return result;
}

PlanEntry fallback_plan(const core::TuningProblem& problem,
                        const vgpu::DeviceProfile& device,
                        const core::TuneOptions& options) {
  // Lowest-flops variant (enumerate_programs sorts ascending) under the
  // decision algorithm's static "optimized OpenACC" mapping — exactly
  // the default candidate tune() guarantees never to lose against.
  std::vector<tcr::TcrProgram> variants = core::enumerate_programs(
      problem, options.octopi, options.max_joint_variants);
  chill::Recipe recipe = chill::openacc_optimized_recipe(variants.front());
  chill::GpuPlan plan = chill::lower_program(variants.front(), recipe);
  PlanEntry entry;
  entry.variant = 0;
  entry.recipe_text = core::serialize_recipe(recipe);
  entry.modeled_us = finite_us(vgpu::model_plan(plan, device).total_us);
  entry.tuned = false;
  entry.parsed = std::make_shared<const chill::Recipe>(std::move(recipe));
  return entry;
}

}  // namespace barracuda::serve
