#include "serve/service.hpp"

#include <cmath>
#include <utility>

#include "core/report.hpp"
#include "support/error.hpp"
#include "support/threadpool.hpp"
#include "support/timer.hpp"

namespace barracuda::serve {
namespace {

/// Infeasible plans model to +inf; clamp to the same large finite
/// penalty the tuning objective uses so entries stay serializable and
/// comparable under better_plan.
double finite_us(double us) { return std::isfinite(us) ? us : 1e15; }

}  // namespace

TuningService::TuningService(PlanRegistry& registry, ServeOptions options)
    : registry_(registry), options_(std::move(options)) {
  BARRACUDA_CHECK_MSG(options_.queue_capacity >= 1,
                      "serve queue capacity must be >= 1");
}

TuningService::~TuningService() {
  // In-flight tasks capture `this`; they must finish before the members
  // they touch are destroyed.  Their upgrades still land in the
  // registry, which outlives the service by contract.
  drain();
}

ServedPlan TuningService::get_plan(const core::TuningProblem& problem,
                                   const vgpu::DeviceProfile& device) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++requests_;
  }
  ServedPlan served;
  served.signature = signature(problem, device);

  if (registry_.lookup(served.signature, &served.plan)) {
    served.source = ServedPlan::Source::kWarm;
    if (!served.plan.tuned) {
      served.scheduled_tune =
          maybe_schedule(served.signature, problem, device);
    }
    return served;
  }

  // Cold signature: compute the cheap fallback, publish it better-wins
  // and serve whatever the registry then holds — if a concurrent tune
  // finished in the window since our miss, that's the tuned plan, never
  // anything slower than a previous answer for this signature.
  served.source = ServedPlan::Source::kCold;
  served.plan = registry_.publish_and_get(
      served.signature, fallback_plan(problem, device, options_.tune));
  if (!served.plan.tuned) {
    served.scheduled_tune = maybe_schedule(served.signature, problem, device);
  }
  return served;
}

bool TuningService::maybe_schedule(const std::string& sig,
                                   const core::TuningProblem& problem,
                                   const vgpu::DeviceProfile& device) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Single-flight dedup.  Order matters: a finishing tune publishes
    // its upgrade BEFORE erasing itself from inflight_ (under this
    // mutex), so "not in flight" here means any completed tune is
    // already visible in the registry — the peek below closes the
    // completion race (a request that read the untuned entry before the
    // upgrade landed must not schedule a second tune after it).
    if (inflight_.contains(sig)) return false;
    PlanEntry current;
    if (registry_.peek(sig, &current) && current.tuned) return false;
    if (scheduled_ + running_ >= options_.queue_capacity) {
      // Backpressure: refuse the enqueue, not the request.  The caller
      // already holds the fallback plan; the signature stays untuned
      // and a later request retries once the queue drained.
      ++rejected_;
      return false;
    }
    inflight_.insert(sig);
    ++scheduled_;
    ++tunes_started_;
  }
  // Copies, not references: the tune outlives the request.
  support::ThreadPool::shared().submit(
      [this, sig, problem, device] { run_tune(sig, problem, device); });
  return true;
}

void TuningService::run_tune(const std::string& sig,
                             const core::TuningProblem& problem,
                             const vgpu::DeviceProfile& device) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    --scheduled_;
    ++running_;
  }
  WallTimer timer;
  bool failed = false;
  try {
    core::TuneResult result = core::tune(problem, device, options_.tune);
    PlanEntry tuned;
    tuned.variant = result.best_variant;
    tuned.recipe_text = core::serialize_recipe(result.best_recipe);
    tuned.modeled_us = finite_us(result.modeled_us());
    tuned.tuned = true;
    // Better-wins: an upgrade only lands when the tuned plan actually
    // beats the fallback (it always should — the static mapping is a
    // candidate the search compares against), so the served latency for
    // this signature is monotone non-increasing.
    registry_.publish(sig, tuned);
  } catch (...) {
    // A failed tune leaves the fallback in place; the signature stays
    // untuned so a later request may retry.
    failed = true;
  }
  const double seconds = timer.seconds();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Publish-then-erase: see maybe_schedule for why this order is the
    // single-flight guarantee.
    inflight_.erase(sig);
    --running_;
    if (failed) {
      ++tune_failures_;
    } else {
      ++tunes_completed_;
      tune_seconds_total_ += seconds;
    }
    if (scheduled_ + running_ == 0) idle_cv_.notify_all();
  }
}

void TuningService::drain() {
  BARRACUDA_CHECK_MSG(!support::ThreadPool::on_worker_thread(),
                      "TuningService::drain() would deadlock on a pool "
                      "worker thread");
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return scheduled_ + running_ == 0; });
}

ServeStats TuningService::stats() const {
  ServeStats s;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    s.requests = requests_;
    s.tunes_started = tunes_started_;
    s.tunes_completed = tunes_completed_;
    s.tune_failures = tune_failures_;
    s.rejected = rejected_;
    s.in_flight = running_;
    s.queue_depth = scheduled_;
    s.tune_seconds_total = tune_seconds_total_;
  }
  s.registry_hits = registry_.hits();
  s.registry_misses = registry_.misses();
  s.upgrades = registry_.upgrades();
  return s;
}

chill::GpuPlan materialize(const core::TuningProblem& problem,
                           const PlanEntry& entry,
                           const core::TuneOptions& options) {
  std::vector<tcr::TcrProgram> variants = core::enumerate_programs(
      problem, options.octopi, options.max_joint_variants);
  BARRACUDA_CHECK_MSG(entry.variant < variants.size(),
                      "served plan variant out of range for this problem");
  chill::Recipe recipe =
      core::parse_recipe(entry.recipe_text, "<plan-registry>");
  return chill::lower_program(variants[entry.variant], recipe);
}

PlanEntry fallback_plan(const core::TuningProblem& problem,
                        const vgpu::DeviceProfile& device,
                        const core::TuneOptions& options) {
  // Lowest-flops variant (enumerate_programs sorts ascending) under the
  // decision algorithm's static "optimized OpenACC" mapping — exactly
  // the default candidate tune() guarantees never to lose against.
  std::vector<tcr::TcrProgram> variants = core::enumerate_programs(
      problem, options.octopi, options.max_joint_variants);
  chill::Recipe recipe = chill::openacc_optimized_recipe(variants.front());
  chill::GpuPlan plan = chill::lower_program(variants.front(), recipe);
  PlanEntry entry;
  entry.variant = 0;
  entry.recipe_text = core::serialize_recipe(recipe);
  entry.modeled_us = finite_us(vgpu::model_plan(plan, device).total_us);
  entry.tuned = false;
  return entry;
}

}  // namespace barracuda::serve
