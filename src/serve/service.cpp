#include "serve/service.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <thread>
#include <utility>

#include "core/report.hpp"
#include "support/error.hpp"
#include "support/faultinject.hpp"
#include "support/threadpool.hpp"
#include "support/timer.hpp"

namespace barracuda::serve {
namespace {

/// Infeasible plans model to +inf; clamp to the same large finite
/// penalty the tuning objective uses so entries stay serializable and
/// comparable under better_plan.
double finite_us(double us) { return std::isfinite(us) ? us : 1e15; }

/// splitmix64 finisher: full-avalanche mixing for the jitter hash.
std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

/// Backoff before retry attempt `attempt` (2-based): capped exponential
/// with a deterministic jitter factor in [0.5, 1.0] — a pure function
/// of (jitter_seed, sig, attempt), so retry spacing reproduces exactly
/// and distinct signatures decorrelate.
double backoff_ms(const RetryPolicy& retry, const std::string& sig,
                  std::size_t attempt) {
  double exp_ms = retry.base_delay_ms;
  for (std::size_t k = 2; k < attempt; ++k) exp_ms *= 2.0;
  exp_ms = std::min(exp_ms, retry.cap_ms);
  std::uint64_t h = retry.jitter_seed;
  for (char c : sig) h = mix64(h ^ static_cast<unsigned char>(c));
  h = mix64(h ^ attempt);
  const double unit =
      static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);  // [0,1)
  return exp_ms * (0.5 + 0.5 * unit);
}

}  // namespace

TuningService::TuningService(PlanRegistry& registry, ServeOptions options)
    : registry_(registry), options_(std::move(options)) {
  BARRACUDA_CHECK_MSG(options_.queue_capacity >= 1,
                      "serve queue capacity must be >= 1");
}

TuningService::~TuningService() {
  // In-flight tasks capture `this`; they must finish before the members
  // they touch are destroyed.  Their upgrades still land in the
  // registry, which outlives the service by contract.
  drain();
}

ServedPlan TuningService::get_plan(const core::TuningProblem& problem,
                                   const vgpu::DeviceProfile& device) {
  // Warm path: this relaxed increment plus the registry's lock-free
  // shard-snapshot lookup is ALL a tuned hit does — no service mutex,
  // no contention with publishing tunes or other readers.
  requests_.fetch_add(1, std::memory_order_relaxed);
  ServedPlan served;
  served.signature = signature(problem, device);

  if (registry_.lookup(served.signature, &served.plan)) {
    served.source = ServedPlan::Source::kWarm;
    if (!served.plan.tuned) {
      served.scheduled_tune =
          maybe_schedule(served.signature, problem, device);
    }
    return served;
  }

  // Cold signature: compute the cheap fallback, publish it better-wins
  // and serve whatever the registry then holds — if a concurrent tune
  // finished in the window since our miss, that's the tuned plan, never
  // anything slower than a previous answer for this signature.
  served.source = ServedPlan::Source::kCold;
  served.plan = registry_.publish_and_get(
      served.signature, fallback_plan(problem, device, options_.tune));
  if (!served.plan.tuned) {
    served.scheduled_tune = maybe_schedule(served.signature, problem, device);
  }
  return served;
}

bool TuningService::maybe_schedule(const std::string& sig,
                                   const core::TuningProblem& problem,
                                   const vgpu::DeviceProfile& device) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Single-flight dedup.  Order matters: a finishing tune publishes
    // its upgrade BEFORE erasing itself from inflight_ (under this
    // mutex), so "not in flight" here means any completed tune is
    // already visible in the registry — the peek below closes the
    // completion race (a request that read the untuned entry before the
    // upgrade landed must not schedule a second tune after it).
    if (inflight_.contains(sig)) return false;
    // Circuit breaker: a signature that exhausted its retries stays on
    // its fallback plan (served instantly, like any other answer) and
    // is not rescheduled until reset_breakers() — a poisoned problem
    // must not eat the tuning queue forever.
    if (breaker_.contains(sig)) return false;
    PlanEntry current;
    if (registry_.peek(sig, &current) && current.tuned) return false;
    if (scheduled_ + running_ >= options_.queue_capacity) {
      // Backpressure: refuse the enqueue, not the request.  The caller
      // already holds the fallback plan; the signature stays untuned
      // and a later request retries once the queue drained.
      ++rejected_;
      return false;
    }
    inflight_.insert(sig);
    ++scheduled_;
    ++tunes_started_;
  }
  // Copies, not references: the tune outlives the request.
  support::ThreadPool::shared().submit(
      [this, sig, problem, device] { run_tune(sig, problem, device); });
  return true;
}

void TuningService::run_tune(const std::string& sig,
                             const core::TuningProblem& problem,
                             const vgpu::DeviceProfile& device) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    --scheduled_;
    ++running_;
  }
  WallTimer timer;

  // Cooperative deadline: one wall clock spans the whole run (every
  // retry attempt included).  The search consults it between evaluation
  // batches via SearchOptions::should_stop — possibly from concurrent
  // annealing chains, hence the shared_ptr + atomic flag — and an
  // expired search returns its best-so-far, which publishes like any
  // other result.  The timer lives in a shared_ptr because the options
  // copy (and the lambda in it) is moved into core::tune.
  core::TuneOptions tune_options = options_.tune;
  auto expired = std::make_shared<std::atomic<bool>>(false);
  if (options_.tune_deadline > 0) {
    auto clock = std::make_shared<WallTimer>();
    const double budget = options_.tune_deadline;
    auto inner = tune_options.search.should_stop;
    tune_options.search.should_stop = [clock, budget, expired, inner] {
      if (clock->seconds() >= budget) {
        expired->store(true, std::memory_order_relaxed);
        return true;
      }
      return inner && inner();
    };
  }

  // Retry loop: every attempt's error text is captured (satellite for
  // the old bare `catch (...)`); between attempts the worker sleeps the
  // deterministic backoff.  An exhausted run trips the breaker.
  const std::size_t max_attempts =
      std::max<std::size_t>(1, options_.retry.max_attempts);
  bool succeeded = false;
  std::size_t attempts = 0;
  std::size_t extra_attempts = 0;
  std::string error_text;
  for (std::size_t attempt = 1; attempt <= max_attempts; ++attempt) {
    if (attempt > 1) {
      // Retrying after the deadline expired (or an external should_stop
      // fired) would spend time the run no longer has; stop and let the
      // failure record tell the story.  Calling the lambda — not just
      // reading the flag — matters: an attempt that throws before its
      // search starts never consults should_stop, so the flag alone
      // would let a failing run retry far past its deadline.
      if (tune_options.search.should_stop &&
          tune_options.search.should_stop()) {
        break;
      }
      ++extra_attempts;
      const double ms = backoff_ms(options_.retry, sig, attempt);
      if (ms > 0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(ms));
      }
    }
    ++attempts;
    try {
      // `serve.tune` models the tune pipeline itself throwing (OOM in
      // enumeration, a lowering bug on one problem shape, ...).
      support::fault::maybe_throw("serve.tune");
      core::TuneResult result = core::tune(problem, device, tune_options);
      PlanEntry tuned;
      tuned.variant = result.best_variant;
      tuned.recipe_text = core::serialize_recipe(result.best_recipe);
      tuned.modeled_us = finite_us(result.modeled_us());
      tuned.tuned = true;
      // Better-wins: an upgrade only lands when the tuned plan actually
      // beats the fallback (it always should — the static mapping is a
      // candidate the search compares against), so the served latency
      // for this signature is monotone non-increasing.
      registry_.publish(sig, tuned);
      succeeded = true;
      break;
    } catch (const std::exception& e) {
      error_text = e.what();
    } catch (...) {
      error_text = "non-standard exception";
    }
  }

  const double seconds = timer.seconds();
  const bool was_expired = expired->load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Publish-then-erase: see maybe_schedule for why this order is the
    // single-flight guarantee.
    inflight_.erase(sig);
    --running_;
    retries_ += extra_attempts;
    if (!error_text.empty()) {
      last_error_ = error_text;
      TuneFailure& record = failures_[sig];
      record.attempts = attempts;
      record.last_error = error_text;
    }
    if (was_expired) ++deadline_expired_;
    if (succeeded) {
      ++tunes_completed_;
      tune_seconds_total_ += seconds;
    } else {
      // Exhausted (or deadline-cut) run: the fallback stays in place
      // and the breaker quarantines the signature until
      // reset_breakers().
      ++tune_failures_;
      breaker_.insert(sig);
    }
    if (scheduled_ + running_ == 0) idle_cv_.notify_all();
  }
}

void TuningService::drain() {
  BARRACUDA_CHECK_MSG(!support::ThreadPool::on_worker_thread(),
                      "TuningService::drain() would deadlock on a pool "
                      "worker thread");
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return scheduled_ + running_ == 0; });
}

ServeStats TuningService::stats() const {
  ServeStats s;
  // Hot counter: relaxed atomic read, no lock — see the ServeStats
  // consistency contract.
  s.requests = requests_.load(std::memory_order_relaxed);
  {
    // Tune-path state: mutex_ is contended only by the miss/untuned
    // path and tune workers, so taking it here never stalls a warm
    // request.
    std::lock_guard<std::mutex> lock(mutex_);
    s.tunes_started = tunes_started_;
    s.tunes_completed = tunes_completed_;
    s.tune_failures = tune_failures_;
    s.retries = retries_;
    s.breaker_open = breaker_.size();
    s.deadline_expired = deadline_expired_;
    s.last_error = last_error_;
    s.rejected = rejected_;
    s.in_flight = running_;
    s.queue_depth = scheduled_;
    s.tune_seconds_total = tune_seconds_total_;
  }
  s.registry_hits = registry_.hits();
  s.registry_misses = registry_.misses();
  s.upgrades = registry_.upgrades();
  return s;
}

bool TuningService::last_failure(const std::string& signature,
                                 TuneFailure* failure) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = failures_.find(signature);
  if (it == failures_.end()) return false;
  *failure = it->second;
  failure->breaker_open = breaker_.contains(signature);
  return true;
}

void TuningService::reset_breakers() {
  std::lock_guard<std::mutex> lock(mutex_);
  breaker_.clear();
}

chill::GpuPlan materialize(const core::TuningProblem& problem,
                           const PlanEntry& entry,
                           const core::TuneOptions& options) {
  std::vector<tcr::TcrProgram> variants = core::enumerate_programs(
      problem, options.octopi, options.max_joint_variants);
  BARRACUDA_CHECK_MSG(entry.variant < variants.size(),
                      "served plan variant out of range for this problem");
  chill::Recipe recipe =
      core::parse_recipe(entry.recipe_text, "<plan-registry>");
  return chill::lower_program(variants[entry.variant], recipe);
}

PrewarmResult prewarm(PlanRegistry& registry,
                      const octopi::OctopiProgram& program,
                      const std::vector<vgpu::DeviceProfile>& devices,
                      const PrewarmOptions& options) {
  BARRACUDA_CHECK_MSG(!devices.empty(), "prewarm needs at least one device");
  WallTimer timer;
  // The cartesian grid: extent specializations x devices.  Each cell is
  // an independent tune, farmed across the shared pool exactly like
  // core::tune_specializations — the pool-depth guard keeps the search
  // inside each pooled tune sequential, so one n_jobs knob bounds the
  // whole prewarm.
  std::vector<tensor::Extents> points =
      program.specializations(options.max_points);
  struct Cell {
    const tensor::Extents* extents;
    const vgpu::DeviceProfile* device;
  };
  std::vector<Cell> grid;
  grid.reserve(points.size() * devices.size());
  for (const auto& point : points) {
    for (const auto& device : devices) grid.push_back({&point, &device});
  }

  std::atomic<std::size_t> tuned{0}, skipped{0}, published{0};
  support::parallel_apply(
      support::resolve_jobs(options.tune.search.n_jobs), grid.size(),
      [&](std::size_t i) {
        core::TuningProblem problem;
        problem.name = "prewarm";
        problem.extents = *grid[i].extents;
        for (const auto& s : program.statements) {
          problem.statements.push_back(s.to_contraction());
        }
        const std::string sig = signature(problem, *grid[i].device);
        PlanEntry current;
        if (registry.peek(sig, &current) && current.tuned) {
          // Already tuned (a previous prewarm run, or a serving fleet's
          // merge_save): re-running prewarm only pays for new points.
          skipped.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        core::TuneResult result =
            core::tune(problem, *grid[i].device, options.tune);
        PlanEntry entry;
        entry.variant = result.best_variant;
        entry.recipe_text = core::serialize_recipe(result.best_recipe);
        entry.modeled_us = finite_us(result.modeled_us());
        entry.tuned = true;
        tuned.fetch_add(1, std::memory_order_relaxed);
        if (registry.publish(sig, entry)) {
          published.fetch_add(1, std::memory_order_relaxed);
        }
      });

  PrewarmResult result;
  result.points = grid.size();
  result.tuned = tuned.load(std::memory_order_relaxed);
  result.skipped = skipped.load(std::memory_order_relaxed);
  result.published = published.load(std::memory_order_relaxed);
  result.seconds = timer.seconds();
  return result;
}

PlanEntry fallback_plan(const core::TuningProblem& problem,
                        const vgpu::DeviceProfile& device,
                        const core::TuneOptions& options) {
  // Lowest-flops variant (enumerate_programs sorts ascending) under the
  // decision algorithm's static "optimized OpenACC" mapping — exactly
  // the default candidate tune() guarantees never to lose against.
  std::vector<tcr::TcrProgram> variants = core::enumerate_programs(
      problem, options.octopi, options.max_joint_variants);
  chill::Recipe recipe = chill::openacc_optimized_recipe(variants.front());
  chill::GpuPlan plan = chill::lower_program(variants.front(), recipe);
  PlanEntry entry;
  entry.variant = 0;
  entry.recipe_text = core::serialize_recipe(recipe);
  entry.modeled_us = finite_us(vgpu::model_plan(plan, device).total_us);
  entry.tuned = false;
  return entry;
}

}  // namespace barracuda::serve
