// The TuningService's view of a remote (L2) plan tier, kept free of any
// network headers: the service consults a RemoteBackend on a local
// (L1) registry miss, publishes freshly tuned plans through it, and
// periodically runs full anti-entropy syncs against it.  The production
// implementation is serve::remote::RemoteRegistry (a socket client over
// a replica SET with per-endpoint half-open breakers, failover, and
// optional hedged reads); tests substitute in-process fakes.
//
// Contract: implementations NEVER throw and NEVER block unboundedly —
// a broken or slow backend must degrade the node to local-only
// serving, not fail or stall a request.  Failures are reported through
// the return values, which distinguish "the tier answered and said no"
// (kError — transport works, request rejected) from "no replica could
// be reached at all" (kUnavailable) so the service's stats and the
// operator's failover picture stay honest.
#pragma once

#include <cstddef>
#include <string>

#include "serve/registry.hpp"

namespace barracuda::serve {

enum class RemoteStatus {
  kHit,          ///< the backend returned a plan
  kMiss,         ///< the backend is healthy but has no plan
  kError,        ///< a replica was reached but rejected the request
  kUnavailable,  ///< no replica could be reached right now
};

/// Result of a write-shaped backend operation (publish / sync).
enum class RemoteWrite {
  kOk,           ///< completed; for publish: accepted as an improvement
  kRejected,     ///< completed; the backend already holds better
  kError,        ///< a replica was reached but rejected the request
  kUnavailable,  ///< no replica could be reached right now
};

/// Replication-level counters a backend may expose (all zero for
/// single-endpoint or in-process backends): reads answered by a
/// non-primary replica after the primary failed, hedged reads
/// launched, and hedges the second replica won.
struct RemoteTelemetry {
  std::size_t failovers = 0;
  std::size_t hedges = 0;
  std::size_t hedge_wins = 0;
};

class RemoteBackend {
 public:
  virtual ~RemoteBackend() = default;

  /// Look `signature` up on the backend; fills *entry on kHit.
  virtual RemoteStatus fetch(const std::string& signature,
                             PlanEntry* entry) = 0;

  /// Offer `entry` to the backend (better-wins on its side, fanned out
  /// to every healthy replica — duplicates are idempotent).  kOk when
  /// at least one replica ACCEPTED the offer as an improvement;
  /// kRejected when every reachable replica already held better —
  /// publish is best-effort by design.
  virtual RemoteWrite publish(const std::string& signature,
                              const PlanEntry& entry) = 0;

  /// One full anti-entropy round: push `registry`'s state, absorb the
  /// backend's in return (both sides converge to the exact union —
  /// better-wins entries, max/freshest demand).  kOk when at least one
  /// round completed.
  virtual RemoteWrite sync(PlanRegistry& registry) = 0;

  /// Replication counters; the default suits backends with nothing to
  /// report.
  virtual RemoteTelemetry telemetry() const { return {}; }
};

}  // namespace barracuda::serve
