// The TuningService's view of a remote (L2) plan tier, kept free of any
// network headers: the service consults a RemoteBackend on a local
// (L1) registry miss, publishes freshly tuned plans through it, and
// periodically runs full anti-entropy syncs against it.  The production
// implementation is serve::remote::RemoteRegistry (a socket client with
// a half-open reconnect breaker); tests substitute in-process fakes.
//
// Contract: implementations NEVER throw and NEVER block unboundedly —
// a broken or slow backend must degrade the node to local-only
// serving, not fail or stall a request.  Failures are reported through
// the return values (kUnavailable / false).
#pragma once

#include <string>

#include "serve/registry.hpp"

namespace barracuda::serve {

enum class RemoteStatus {
  kHit,          ///< the backend returned a plan
  kMiss,         ///< the backend is healthy but has no plan
  kUnavailable,  ///< the backend cannot be reached right now
};

class RemoteBackend {
 public:
  virtual ~RemoteBackend() = default;

  /// Look `signature` up on the backend; fills *entry on kHit.
  virtual RemoteStatus fetch(const std::string& signature,
                             PlanEntry* entry) = 0;

  /// Offer `entry` to the backend (better-wins on its side).  Returns
  /// true when the backend ACCEPTED the offer as an improvement; false
  /// on "already have better" and on failure alike — publish is
  /// best-effort by design.
  virtual bool publish(const std::string& signature,
                       const PlanEntry& entry) = 0;

  /// One full anti-entropy round: push `registry`'s state, absorb the
  /// backend's in return (both sides converge to the exact union —
  /// better-wins entries, max/freshest demand).  Returns false when the
  /// round could not complete.
  virtual bool sync(PlanRegistry& registry) = 0;
};

}  // namespace barracuda::serve
