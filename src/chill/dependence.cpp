#include "chill/dependence.hpp"

#include <algorithm>

#include "support/error.hpp"
#include "tcr/loopnest.hpp"

namespace barracuda::chill {
namespace {

/// Depth-first search over delta components with interval pruning: at
/// each level the remaining terms can move the partial sum by at most
/// sum(|coef_d| * (extent_d - 1)); prune when the target is out of reach.
bool solve(const std::vector<std::int64_t>& coefs,
           const std::vector<std::int64_t>& extents,
           const std::vector<std::int64_t>& reach, std::size_t level,
           std::int64_t partial, std::size_t pivot, bool pivot_nonzero) {
  if (level == coefs.size()) return partial == 0 && pivot_nonzero;
  const std::int64_t remaining = reach[level];
  if (partial > remaining || partial < -remaining) return false;
  const std::int64_t extent = extents[level];
  for (std::int64_t d = -(extent - 1); d <= extent - 1; ++d) {
    if (level == pivot && d == 0) continue;  // pivot must move
    bool nz = pivot_nonzero || (level == pivot && d != 0);
    if (solve(coefs, extents, reach, level + 1,
              partial + coefs[level] * d, pivot, nz)) {
      return true;
    }
  }
  return false;
}

}  // namespace

bool has_nonzero_solution(const std::vector<std::int64_t>& coefs,
                          const std::vector<std::int64_t>& extents,
                          std::size_t pivot) {
  BARRACUDA_CHECK(coefs.size() == extents.size());
  BARRACUDA_CHECK(pivot < coefs.size());
  // A zero pivot coefficient always admits a solution (delta = e_pivot).
  if (coefs[pivot] == 0) return true;
  // reach[level]: maximum |sum| achievable by terms level..end.
  std::vector<std::int64_t> reach(coefs.size() + 1, 0);
  for (std::size_t d = coefs.size(); d-- > 0;) {
    reach[d] = reach[d + 1] + std::llabs(coefs[d]) * (extents[d] - 1);
  }
  return solve(coefs, extents, reach, 0, 0, pivot, false);
}

DependenceAnalysis analyze_dependences(const tcr::TcrProgram& program,
                                       std::size_t op_index) {
  BARRACUDA_CHECK(op_index < program.operations.size());
  std::vector<tcr::LoopNest> nests = tcr::build_loop_nests(program);
  const tcr::LoopNest& nest = nests[op_index];
  const tensor::Contraction& op = nest.stmt;

  // Flattened output coefficients per loop, from the declared shape.
  const tcr::TcrVariable& out_var = program.variable(op.output.name);
  std::vector<std::int64_t> out_dims;
  for (const auto& ix : out_var.indices) {
    out_dims.push_back(program.extents.at(ix));
  }
  tensor::Shape out_shape(out_dims.empty() ? std::vector<std::int64_t>{1}
                                           : out_dims);
  auto coef_of = [&](const std::string& loop_index) {
    std::int64_t coef = 0;
    for (std::size_t d = 0; d < op.output.indices.size(); ++d) {
      if (op.output.indices[d] == loop_index) {
        coef += out_shape.stride(d);
      }
    }
    return coef;
  };

  std::vector<std::int64_t> coefs;
  std::vector<std::int64_t> extents;
  for (const auto& loop : nest.loops) {
    coefs.push_back(coef_of(loop.index));
    extents.push_back(loop.extent);
  }

  // Reads of the output tensor with a different subscript force a
  // conservative all-carried result (flow dependences in arbitrary
  // directions); an identical subscript adds nothing beyond write/write.
  bool conservative = false;
  for (const auto& in : op.inputs) {
    if (in.name == op.output.name && !(in.indices == op.output.indices)) {
      conservative = true;
    }
  }

  DependenceAnalysis result;
  for (std::size_t l = 0; l < nest.loops.size(); ++l) {
    bool carried = conservative || has_nonzero_solution(coefs, extents, l);
    if (carried) {
      result.carried.push_back(nest.loops[l].index);
    } else {
      result.parallel.push_back(nest.loops[l].index);
    }
  }
  return result;
}

}  // namespace barracuda::chill
