#include "chill/lower.hpp"

#include <algorithm>
#include <set>

#include "tensor/shape.hpp"

namespace barracuda::chill {
namespace {

/// Flatten a tensor reference into an affine subscript using the row-major
/// strides of the tensor's *declared* shape.
AffineAccess flatten(const tcr::TcrProgram& program,
                     const tensor::TensorRef& ref) {
  const tcr::TcrVariable& var = program.variable(ref.name);
  std::vector<std::int64_t> dims;
  dims.reserve(var.indices.size());
  for (const auto& ix : var.indices) dims.push_back(program.extents.at(ix));
  tensor::Shape shape(dims);

  AffineAccess access;
  access.tensor = ref.name;
  for (std::size_t d = 0; d < ref.indices.size(); ++d) {
    const std::string& ix = ref.indices[d];
    std::int64_t stride = shape.rank() == 0 ? 0 : shape.stride(d);
    // Merge duplicate indices (diagonal accesses like A[i i]).
    bool merged = false;
    for (auto& term : access.terms) {
      if (term.index == ix) {
        term.coef += stride;
        merged = true;
        break;
      }
    }
    if (!merged) access.terms.push_back(AffineTerm{ix, stride});
  }
  return access;
}

}  // namespace

Kernel lower_kernel(const tcr::TcrProgram& program, std::size_t op_index,
                    const tcr::KernelConfig& config) {
  BARRACUDA_CHECK(op_index < program.operations.size());
  std::vector<tcr::LoopNest> nests = tcr::build_loop_nests(program);
  const tcr::LoopNest& nest = nests[op_index];
  tcr::validate_config(nest, config);

  const tensor::Contraction& op = program.operations[op_index];
  Kernel k;
  k.name = program.name + "_GPU_" + std::to_string(op_index + 1);
  auto dim_for = [&](const std::string& ix) {
    if (ix == tcr::kUnused) return GridDim{};
    return GridDim{ix, nest.extent_of(ix)};
  };
  k.thread_x = dim_for(config.thread_x);
  k.thread_y = dim_for(config.thread_y);
  k.block_x = dim_for(config.block_x);
  k.block_y = dim_for(config.block_y);
  for (std::size_t d = 0; d < config.sequential.size(); ++d) {
    const std::string& ix = config.sequential[d];
    SeqLoop loop{ix, nest.extent_of(ix), 1};
    if (d + 1 == config.sequential.size()) loop.unroll = config.unroll;
    k.seq.push_back(loop);
  }
  k.out = flatten(program, op.output);
  for (const auto& in : op.inputs) k.ins.push_back(flatten(program, in));
  k.scalar_replacement = config.scalar_replacement;
  for (const auto& name : config.shared_tensors) {
    const tcr::TcrVariable& var = program.variable(name);
    std::int64_t elems = 1;
    for (const auto& ix : var.indices) elems *= program.extents.at(ix);
    k.shared[name] = elems;
  }
  return k;
}

GpuPlan lower_program(const tcr::TcrProgram& program, const Recipe& recipe) {
  program.validate();
  BARRACUDA_CHECK_MSG(recipe.size() == program.operations.size(),
                      "recipe must provide one config per operation");
  GpuPlan plan;
  plan.name = program.name;
  for (std::size_t i = 0; i < recipe.size(); ++i) {
    plan.kernels.push_back(lower_kernel(program, i, recipe[i]));
  }

  for (const auto& var : program.variables) {
    std::vector<std::int64_t> dims;
    for (const auto& ix : var.indices) dims.push_back(program.extents.at(ix));
    plan.tensor_sizes[var.name] = tensor::Shape(dims).size();
  }

  // Data movement.  Inputs are read-before-written names.  Every kernel
  // accumulates, so each written tensor must start from either its live
  // prior contents (accumulating output: transfer it down) or from zeros
  // (temporaries and `=`-assigned outputs: device memset).  All
  // user-visible outputs come back.
  plan.h2d = program.input_names();
  for (const auto& out : program.output_names()) {
    bool transferred =
        std::find(plan.h2d.begin(), plan.h2d.end(), out) != plan.h2d.end();
    if (!transferred) {
      // The first write to the output decides: += reads prior host
      // contents, = starts from zero.
      bool first_write_accumulates = true;
      for (const auto& op : program.operations) {
        if (op.output.name == out) {
          first_write_accumulates = op.accumulate;
          break;
        }
      }
      if (first_write_accumulates) {
        plan.h2d.push_back(out);
      } else {
        plan.zero_init.push_back(out);
      }
    }
    plan.d2h.push_back(out);
  }
  for (const auto& name : program.written_names()) {
    if (!program.is_output(name)) plan.zero_init.push_back(name);
  }
  return plan;
}

Recipe openacc_naive_recipe(const tcr::TcrProgram& program) {
  Recipe recipe;
  for (const auto& nest : tcr::build_loop_nests(program)) {
    recipe.push_back(tcr::naive_openacc_config(nest));
  }
  return recipe;
}

Recipe openacc_optimized_recipe(const tcr::TcrProgram& program) {
  Recipe recipe;
  for (const auto& nest : tcr::build_loop_nests(program)) {
    recipe.push_back(tcr::optimized_openacc_config(nest));
  }
  return recipe;
}

}  // namespace barracuda::chill
