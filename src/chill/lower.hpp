// Lowering: apply a transformation recipe — one KernelConfig per TCR
// operation — to produce a GpuPlan (the CUDA-CHiLL role in Barracuda).
//
// The recipe corresponds to the CHiLL script of Figure 2(c):
//   cuda(k, block={BX,BY}, thread={TX,TY})   <- KernelConfig grid mapping
//   permute(k, ...)                          <- KernelConfig.sequential
//   unroll(k, inner, UF)                     <- KernelConfig.unroll
//   registers(k, out)                        <- KernelConfig.scalar_replacement
#pragma once

#include <vector>

#include "chill/kernel.hpp"
#include "tcr/decision.hpp"

namespace barracuda::chill {

/// The full recipe for a TCR program: one mapping decision per operation.
using Recipe = std::vector<tcr::KernelConfig>;

/// Lower one operation of `program` under `config`.  Validates the config
/// against the operation's loop nest (throws on illegal recipes).
Kernel lower_kernel(const tcr::TcrProgram& program, std::size_t op_index,
                    const tcr::KernelConfig& config);

/// Lower a whole program.  `recipe.size()` must equal the operation count.
/// Data movement: program inputs (and accumulated live outputs) are copied
/// host->device once, the final output copied back once, and temporaries
/// stay device-resident across kernels (Section II.B: "the data remains on
/// the GPU across these calls").
GpuPlan lower_program(const tcr::TcrProgram& program, const Recipe& recipe);

/// Convenience: a recipe of identical strategy built per-operation, used
/// by the OpenACC baselines.
Recipe openacc_naive_recipe(const tcr::TcrProgram& program);
Recipe openacc_optimized_recipe(const tcr::TcrProgram& program);

}  // namespace barracuda::chill
