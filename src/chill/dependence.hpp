// General affine dependence analysis.
//
// Section IV: "data dependence analysis requires pairwise comparison of
// access expressions to the same array, where one of the accesses is a
// write, within the context of the iteration space of the common loops
// ... While CUDA-CHiLL incorporates this general approach ... we can rely
// on a simplified dependence analysis specialized to the domain of tensor
// contractions."
//
// This module implements the *general* approach for the single-statement
// affine nests Barracuda generates, so the specialized rule ("LHS indices
// are parallel") can be validated against it — and so that adversarial
// aliasing subscripts (which the specialized rule would misjudge) are
// detected.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tcr/program.hpp"

namespace barracuda::chill {

/// Does a nonzero integer vector delta exist with |delta_d| < extents[d],
/// delta[pivot] != 0, and sum(coefs[d] * delta[d]) == 0?  This is the
/// dependence-distance equation of a write/write pair under one statement:
/// a solution means two distinct iterations differing in loop `pivot`
/// touch the same address.  Exact bounded search with interval pruning
/// (a Banerjee-style test made exact by the small extents of this
/// domain).
bool has_nonzero_solution(const std::vector<std::int64_t>& coefs,
                          const std::vector<std::int64_t>& extents,
                          std::size_t pivot);

/// Result of analyzing one operation of a TCR program.
struct DependenceAnalysis {
  std::vector<std::string> parallel;  // loops carrying no dependence
  std::vector<std::string> carried;   // loops carrying one
};

/// Run the general test on operation `op_index`.  Loops whose subscript
/// coefficient in the output is zero are trivially carried (every
/// iteration of the loop hits the same output element); nonzero
/// coefficients are checked for aliasing solutions.  An input reference
/// to the output tensor makes every loop conservatively carried unless
/// its subscript is identical to the write's.
DependenceAnalysis analyze_dependences(const tcr::TcrProgram& program,
                                       std::size_t op_index);

}  // namespace barracuda::chill
