// The GPU kernel intermediate representation produced by applying a
// CUDA-CHiLL transformation recipe (cuda/permute/unroll/registers) to a
// TCR loop nest.
//
// A Kernel is one grid launch evaluating one contraction operation:
// up to four loop indices are mapped onto (threadIdx.x, threadIdx.y,
// blockIdx.x, blockIdx.y); the remaining loops run sequentially inside
// each thread.  Array subscripts are flattened row-major affine functions
// of the loop indices, which is exactly what both the functional executor
// and the coalescing performance model need.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "support/error.hpp"

namespace barracuda::chill {

/// One term of a flattened affine subscript: coefficient * index.
struct AffineTerm {
  std::string index;
  std::int64_t coef = 0;

  bool operator==(const AffineTerm&) const = default;
};

/// A flattened array access: tensor[offset + sum(coef_i * index_i)].
struct AffineAccess {
  std::string tensor;
  std::int64_t offset = 0;
  std::vector<AffineTerm> terms;

  bool operator==(const AffineAccess&) const = default;

  /// Coefficient of `index` (0 when absent) — the memory stride seen when
  /// that loop advances by one.
  std::int64_t coef_of(const std::string& index) const;

  /// Evaluate the subscript under an index valuation.
  std::int64_t eval(
      const std::function<std::int64_t(const std::string&)>& value) const;

  /// Render as C source, e.g. "V[ty * 100 + bx * 10 + tx]" after index
  /// renaming via `rename` (identity renders raw index names).
  std::string to_source(
      const std::function<std::string(const std::string&)>& rename) const;
};

/// A sequential (intra-thread) loop.
struct SeqLoop {
  std::string index;
  std::int64_t extent = 0;
  /// Unroll factor (performance-only; semantics unchanged).  Applied to
  /// the innermost loop by the recipe.
  int unroll = 1;

  bool operator==(const SeqLoop&) const = default;
};

/// One grid dimension: the loop index mapped to it and its extent.
/// Unused dimensions have index "1" and extent 1.
struct GridDim {
  std::string index = "1";
  std::int64_t extent = 1;

  bool used() const { return index != "1"; }
  bool operator==(const GridDim&) const = default;
};

/// One generated GPU kernel.
struct Kernel {
  std::string name;
  GridDim thread_x, thread_y, block_x, block_y;
  std::vector<SeqLoop> seq;  // outermost-first
  /// Statement: out += product(ins).  Kernels uniformly accumulate into
  /// pre-zeroed (or live prior) device memory; non-accumulating TCR
  /// operations are handled by zero-initializing the output on device.
  AffineAccess out;
  std::vector<AffineAccess> ins;
  bool scalar_replacement = true;
  /// Input tensors staged whole into shared memory (name -> elements).
  /// A cooperative per-block load fills the staging buffer; the statement
  /// then reads the __shared__ copy.  Semantically transparent.
  std::map<std::string, std::int64_t> shared;

  /// Depth of the first loop of the maximal trailing run of sequential
  /// loops that do not move the output subscript — the region a scalar
  /// temporary may legally span.  Equals seq.size() when the innermost
  /// loop moves the output (scalar replacement then has no effect).
  std::size_t scalar_depth() const;

  /// Flops executed by one full grid launch (2 per point for a binary
  /// product, matching tensor::flop_count).
  std::int64_t flops() const;

  /// Total threads per block / blocks per grid.
  std::int64_t threads_per_block() const {
    return thread_x.extent * thread_y.extent;
  }
  std::int64_t blocks() const { return block_x.extent * block_y.extent; }
  /// Points in the full iteration space (threads x sequential trips).
  std::int64_t points() const;

  /// All loop indices of the kernel with their extents.
  std::map<std::string, std::int64_t> index_extents() const;

  /// Emit compilable CUDA C for this kernel (Figure 2(d) style).
  std::string cuda_source() const;
};

/// A full multi-kernel launch plan for one TCR program: kernels in
/// dependence order plus the host-side data movement ("the data remains on
/// the GPU across these calls").
struct GpuPlan {
  std::string name;
  std::vector<Kernel> kernels;
  /// Device allocation sizes in elements for every tensor touched.
  std::map<std::string, std::int64_t> tensor_sizes;
  /// Tensors copied host->device before the first kernel (program inputs,
  /// plus accumulated outputs whose prior contents are live).
  std::vector<std::string> h2d;
  /// Tensors copied device->host after the last kernel.
  std::vector<std::string> d2h;
  /// Tensors zero-initialized on device before the first kernel:
  /// temporaries plus any non-accumulating output not transferred down.
  std::vector<std::string> zero_init;

  std::int64_t flops() const;
  std::int64_t bytes_h2d() const;
  std::int64_t bytes_d2h() const;

  /// Emit the kernels plus a host driver (allocation, copies, launches).
  std::string cuda_source() const;
};

}  // namespace barracuda::chill
