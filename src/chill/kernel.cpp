#include "chill/kernel.hpp"

#include <algorithm>
#include <sstream>

namespace barracuda::chill {

std::int64_t AffineAccess::coef_of(const std::string& index) const {
  std::int64_t total = 0;
  for (const auto& t : terms) {
    if (t.index == index) total += t.coef;
  }
  return total;
}

std::int64_t AffineAccess::eval(
    const std::function<std::int64_t(const std::string&)>& value) const {
  std::int64_t addr = offset;
  for (const auto& t : terms) addr += t.coef * value(t.index);
  return addr;
}

std::string AffineAccess::to_source(
    const std::function<std::string(const std::string&)>& rename) const {
  std::ostringstream os;
  os << tensor << "[";
  bool first = true;
  for (const auto& t : terms) {
    if (t.coef == 0) continue;
    if (!first) os << " + ";
    if (t.coef == 1) {
      os << rename(t.index);
    } else {
      os << rename(t.index) << " * " << t.coef;
    }
    first = false;
  }
  if (offset != 0 || first) {
    if (!first) os << " + ";
    os << offset;
  }
  os << "]";
  return os.str();
}

std::int64_t Kernel::points() const {
  std::int64_t p = threads_per_block() * blocks();
  for (const auto& loop : seq) p *= loop.extent;
  return p;
}

std::int64_t Kernel::flops() const {
  std::int64_t per_point =
      std::max<std::int64_t>(static_cast<std::int64_t>(ins.size()), 1);
  return points() * per_point;
}

std::map<std::string, std::int64_t> Kernel::index_extents() const {
  std::map<std::string, std::int64_t> out_map;
  for (const GridDim* d : {&thread_x, &thread_y, &block_x, &block_y}) {
    if (d->used()) out_map[d->index] = d->extent;
  }
  for (const auto& loop : seq) out_map[loop.index] = loop.extent;
  return out_map;
}

std::size_t Kernel::scalar_depth() const {
  std::size_t depth = seq.size();
  while (depth > 0 && out.coef_of(seq[depth - 1].index) == 0) --depth;
  return depth;
}

namespace {

/// Grid indices render as tx/ty/bx/by; sequential loops keep their names.
std::function<std::string(const std::string&)> make_renamer(const Kernel& k) {
  std::map<std::string, std::string> names;
  if (k.thread_x.used()) names[k.thread_x.index] = "tx";
  if (k.thread_y.used()) names[k.thread_y.index] = "ty";
  if (k.block_x.used()) names[k.block_x.index] = "bx";
  if (k.block_y.used()) names[k.block_y.index] = "by";
  return [names](const std::string& ix) {
    auto it = names.find(ix);
    return it == names.end() ? ix : it->second;
  };
}

/// "target = target + in0 * in1;" with `inner_expr` substituted for the
/// innermost loop index (supports emitting unrolled copies).
std::string statement_source(const Kernel& k, const std::string& target,
                             const std::string& inner_index,
                             const std::string& inner_expr) {
  auto base = make_renamer(k);
  auto rename = [&](const std::string& ix) {
    if (!inner_index.empty() && ix == inner_index) return inner_expr;
    return base(ix);
  };
  std::ostringstream os;
  os << target << " = " << target << " + ";
  for (std::size_t i = 0; i < k.ins.size(); ++i) {
    if (i) os << " * ";
    AffineAccess in = k.ins[i];
    if (k.shared.contains(in.tensor)) in.tensor = "s_" + in.tensor;
    os << in.to_source(rename);
  }
  os << ";";
  return os.str();
}

}  // namespace

std::string Kernel::cuda_source() const {
  std::ostringstream os;
  auto rename = make_renamer(*this);

  std::vector<std::string> params{out.tensor};
  for (const auto& in : ins) {
    if (std::find(params.begin(), params.end(), in.tensor) == params.end()) {
      params.push_back(in.tensor);
    }
  }
  os << "__global__ void " << name << "(";
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (i) os << ", ";
    os << "double *" << params[i];
  }
  os << ")\n{\n";
  if (thread_x.used()) os << "  const int tx = threadIdx.x;\n";
  if (thread_y.used()) os << "  const int ty = threadIdx.y;\n";
  if (block_x.used()) os << "  const int bx = blockIdx.x;\n";
  if (block_y.used()) os << "  const int by = blockIdx.y;\n";

  // Cooperative staging of shared-memory tensors, then one barrier.
  if (!shared.empty()) {
    std::string tid = "0";
    if (thread_x.used() && thread_y.used()) {
      tid = "ty * " + std::to_string(thread_x.extent) + " + tx";
    } else if (thread_x.used()) {
      tid = "tx";
    } else if (thread_y.used()) {
      tid = "ty";
    }
    const std::int64_t nthreads = threads_per_block();
    for (const auto& [name, elems] : shared) {
      os << "  __shared__ double s_" << name << "[" << elems << "];\n";
      os << "  for (int s_i = " << tid << "; s_i < " << elems
         << "; s_i += " << nthreads << ") {\n";
      os << "    s_" << name << "[s_i] = " << name << "[s_i];\n";
      os << "  }\n";
    }
    os << "  __syncthreads();\n";
  }

  const std::string out_src = out.to_source(rename);
  // Scalar replacement spans the trailing output-invariant loops; it is a
  // no-op (and therefore skipped) when the innermost loop moves the output
  // subscript or when there are no sequential loops to span.
  const std::size_t sr_depth = scalar_depth();
  const bool sr = scalar_replacement && sr_depth < seq.size();
  const std::string target = sr ? "nv" : out_src;

  std::string indent = "  ";
  auto open_loop = [&](const SeqLoop& loop) {
    os << indent << "for (int " << loop.index << " = 0; " << loop.index
       << " < " << loop.extent << "; ++" << loop.index << ") {\n";
    indent += "  ";
  };
  auto close_loop = [&]() {
    indent.resize(indent.size() - 2);
    os << indent << "}\n";
  };

  // Loops outside the scalar region.
  for (std::size_t d = 0; d < sr_depth; ++d) open_loop(seq[d]);
  if (sr) os << indent << "double nv = " << out_src << ";\n";

  // Loops inside the scalar region, except the (possibly unrolled)
  // innermost one.
  for (std::size_t d = sr_depth; d + 1 < seq.size(); ++d) open_loop(seq[d]);

  if (seq.empty()) {
    os << indent << statement_source(*this, target, "", "") << "\n";
  } else {
    const SeqLoop& inner = seq.back();
    const int uf = std::max(1, inner.unroll);
    if (uf > 1) {
      const std::int64_t main_trip = (inner.extent / uf) * uf;
      os << indent << "for (int " << inner.index << " = 0; " << inner.index
         << " < " << main_trip << "; " << inner.index << " += " << uf
         << ") {\n";
      for (int u = 0; u < uf; ++u) {
        std::string expr =
            u == 0 ? inner.index
                   : "(" + inner.index + " + " + std::to_string(u) + ")";
        os << indent << "  " << statement_source(*this, target, inner.index, expr)
           << "\n";
      }
      os << indent << "}\n";
      for (std::int64_t r = main_trip; r < inner.extent; ++r) {
        os << indent
           << statement_source(*this, target, inner.index, std::to_string(r))
           << "\n";
      }
    } else {
      open_loop(inner);
      os << indent << statement_source(*this, target, inner.index, inner.index)
         << "\n";
      close_loop();
    }
    // Close the non-innermost loops inside the scalar region.
    for (std::size_t d = seq.size() - 1; d-- > sr_depth;) close_loop();
  }

  if (sr) os << indent << out_src << " = nv;\n";
  for (std::size_t d = sr_depth; d-- > 0;) close_loop();
  os << "}\n";
  return os.str();
}

std::int64_t GpuPlan::flops() const {
  std::int64_t total = 0;
  for (const auto& k : kernels) total += k.flops();
  return total;
}

std::int64_t GpuPlan::bytes_h2d() const {
  std::int64_t total = 0;
  for (const auto& name : h2d) {
    total += tensor_sizes.at(name) * static_cast<std::int64_t>(sizeof(double));
  }
  return total;
}

std::int64_t GpuPlan::bytes_d2h() const {
  std::int64_t total = 0;
  for (const auto& name : d2h) {
    total += tensor_sizes.at(name) * static_cast<std::int64_t>(sizeof(double));
  }
  return total;
}

std::string GpuPlan::cuda_source() const {
  std::ostringstream os;
  os << "// Generated by Barracuda for program '" << name << "'\n";
  os << "#include <cuda_runtime.h>\n\n";
  for (const auto& k : kernels) os << k.cuda_source() << "\n";

  os << "void " << name << "_run(";
  bool first = true;
  for (const auto& t : h2d) {
    os << (first ? "" : ", ") << "const double *h_" << t;
    first = false;
  }
  for (const auto& t : d2h) {
    os << (first ? "" : ", ") << "double *h_" << t;
    first = false;
  }
  os << ")\n{\n";
  for (const auto& [t, elems] : tensor_sizes) {
    os << "  double *d_" << t << ";\n";
    os << "  cudaMalloc(&d_" << t << ", " << elems
       << " * sizeof(double));\n";
  }
  for (const auto& t : zero_init) {
    os << "  cudaMemset(d_" << t << ", 0, " << tensor_sizes.at(t)
       << " * sizeof(double));\n";
  }
  for (const auto& t : h2d) {
    os << "  cudaMemcpy(d_" << t << ", h_" << t << ", "
       << tensor_sizes.at(t)
       << " * sizeof(double), cudaMemcpyHostToDevice);\n";
  }
  for (const auto& k : kernels) {
    os << "  {\n";
    os << "    dim3 grid(" << k.block_x.extent << ", " << k.block_y.extent
       << ");\n";
    os << "    dim3 block(" << k.thread_x.extent << ", " << k.thread_y.extent
       << ");\n";
    std::vector<std::string> params{k.out.tensor};
    for (const auto& in : k.ins) {
      if (std::find(params.begin(), params.end(), in.tensor) ==
          params.end()) {
        params.push_back(in.tensor);
      }
    }
    os << "    " << k.name << "<<<grid, block>>>(";
    for (std::size_t i = 0; i < params.size(); ++i) {
      if (i) os << ", ";
      os << "d_" << params[i];
    }
    os << ");\n  }\n";
  }
  for (const auto& t : d2h) {
    os << "  cudaMemcpy(h_" << t << ", d_" << t << ", "
       << tensor_sizes.at(t)
       << " * sizeof(double), cudaMemcpyDeviceToHost);\n";
  }
  for (const auto& [t, elems] : tensor_sizes) {
    os << "  cudaFree(d_" << t << ");\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace barracuda::chill
