// C host-code emission for TCR programs: the sequential and OpenMP
// baselines of Section VI as compilable artifacts.
//
// The generated translation unit contains one function
//     void <name>_cpu(const double* in0, ..., double* out0, ...)
// whose parameters are the program's input tensors (first-use order)
// followed by its written tensors (temporaries are allocated and freed
// inside).  Loop nests follow the program's fused structure; with
// `openmp` the fused/outer parallel loops carry
// `#pragma omp parallel for` annotations, mirroring the paper's
// hand-parallelized outermost-loop OpenMP comparison.
#pragma once

#include <string>

#include "tcr/program.hpp"

namespace barracuda::chill {

struct CSourceOptions {
  bool openmp = false;
  /// Fuse shareable outer loops (Section III); when false each operation
  /// keeps its own perfect nest.
  bool fuse = true;
};

/// Emit the full C translation unit.
std::string c_source(const tcr::TcrProgram& program,
                     const CSourceOptions& options = {});

/// Name of the emitted entry point ("<name>_cpu").
std::string c_entry_point(const tcr::TcrProgram& program);

/// Parameter order of the entry point: inputs (first-use order), then
/// written non-temporary outputs... concretely: inputs, then the final
/// output; temporaries never appear in the signature.
std::vector<std::string> c_parameters(const tcr::TcrProgram& program);

}  // namespace barracuda::chill
