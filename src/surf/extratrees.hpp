// Extremely randomized trees (Geurts, Ernst & Wehenkel 2006) regression,
// implemented from scratch — the surrogate model inside SURF.
//
// At each node a random subset of K features is drawn; for each, a single
// random cut-point uniform between the node's min and max of that feature;
// the split with the best variance reduction wins.  Leaves predict the
// mean of their samples; the forest averages its trees.
#pragma once

#include <cstdint>
#include <vector>

#include "support/rng.hpp"

namespace barracuda::surf {

struct ExtraTreesOptions {
  int n_trees = 30;
  /// Features examined per split; 0 means ceil(sqrt(dim)).
  int k_features = 0;
  /// Nodes with fewer samples become leaves.
  int min_samples_split = 4;
  std::uint64_t seed = 1;
  /// Worker threads for fit() (trees are independent) and
  /// predict_batch() (rows are independent).  0 means hardware
  /// concurrency; negative throws Error.  Predictions and
  /// feature_importances() are bit-identical for every value: per-tree
  /// Rngs are forked from the seed in tree order on the calling thread,
  /// trees land in index order, and per-tree split gains are reduced in
  /// tree order.
  int n_jobs = 1;
};

/// Forest regressor over dense double feature vectors.
class ExtraTreesRegressor {
 public:
  explicit ExtraTreesRegressor(ExtraTreesOptions options = {})
      : options_(options) {}

  /// Fit from scratch.  All rows must share one dimension; y.size() must
  /// equal X.size() and be non-empty.
  void fit(const std::vector<std::vector<double>>& X,
           const std::vector<double>& y);

  /// Mean prediction over trees.  Requires a prior fit().
  double predict(const std::vector<double>& x) const;

  /// Convenience batch prediction.
  std::vector<double> predict_batch(
      const std::vector<std::vector<double>>& X) const;

  /// Per-feature importance: total variance reduction attributed to
  /// splits on each feature, averaged over trees and normalized to sum
  /// to 1 (all zeros when no split was ever made).  In Barracuda this
  /// tells the user *which* mapping parameters the surrogate found
  /// performance-relevant.
  std::vector<double> feature_importances() const;

  bool fitted() const { return !trees_.empty(); }

 private:
  struct Node {
    // Internal node: feature/threshold and child indices; leaf: value.
    int feature = -1;
    double threshold = 0;
    int left = -1;
    int right = -1;
    double value = 0;
    bool is_leaf() const { return feature < 0; }
  };
  struct Tree {
    std::vector<Node> nodes;
    double predict(const std::vector<double>& x) const;
  };

  Tree build_tree(const std::vector<std::vector<double>>& X,
                  const std::vector<double>& y,
                  std::vector<std::size_t> sample, Rng& rng,
                  std::vector<double>& gain) const;

  ExtraTreesOptions options_;
  std::vector<Tree> trees_;
  std::vector<double> importances_;
  std::size_t dim_ = 0;
};

}  // namespace barracuda::surf
