// Alternative search strategies over the same configuration pool:
// a feature-space genetic algorithm (the strategy SPIRAL uses, per the
// paper's related work) and simulated annealing.  Both consume the same
// binarized features as SURF, so the three are directly comparable in
// the search ablation.
#pragma once

#include "surf/surf.hpp"

namespace barracuda::surf {

/// Genetic algorithm: a population of evaluated configurations evolves by
/// crossover (the unevaluated configuration nearest the feature-space
/// midpoint of two parents) and mutation (a random unevaluated
/// configuration near one parent).  Population size = batch_size.
SearchResult genetic_search(const std::vector<std::vector<double>>& features,
                            const Objective& evaluate,
                            const SearchOptions& options = {});

/// Simulated annealing: a random walk through feature-space neighbors
/// with Metropolis acceptance under a geometric temperature schedule.
SearchResult annealing_search(
    const std::vector<std::vector<double>>& features,
    const Objective& evaluate, const SearchOptions& options = {});

}  // namespace barracuda::surf
