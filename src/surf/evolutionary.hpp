// Alternative search strategies over the same configuration pool:
// a feature-space genetic algorithm (the strategy SPIRAL uses, per the
// paper's related work) and simulated annealing.  Both consume the same
// binarized features as SURF, so the three are directly comparable in
// the search ablation.
#pragma once

#include "surf/surf.hpp"

namespace barracuda::surf {

/// Genetic algorithm: a population of evaluated configurations evolves by
/// crossover (the unevaluated configuration nearest the feature-space
/// midpoint of two parents) and mutation (a random unevaluated
/// configuration near one parent).  Population size = batch_size.
SearchResult genetic_search(const std::vector<std::vector<double>>& features,
                            const Objective& evaluate,
                            const SearchOptions& options = {});

/// Simulated annealing: a random walk through feature-space neighbors
/// with Metropolis acceptance under a geometric temperature schedule.
///
/// n_jobs semantics differ from the batched searches: one chain cannot
/// be batched (every proposal depends on the previous accept/reject),
/// so n_jobs > 1 runs that many decorrelated restart chains
/// concurrently — the budget split evenly across them, each chain
/// independently seeded (chain 0 identically to the n_jobs = 1 search)
/// — and keeps the best, ties broken deterministically by the lowest
/// chain index.  The result is bit-identical for every thread schedule
/// and depends only on the chain count; n_jobs = 1 reproduces the
/// historical sequential record exactly.
SearchResult annealing_search(
    const std::vector<std::vector<double>>& features,
    const Objective& evaluate, const SearchOptions& options = {});

}  // namespace barracuda::surf
