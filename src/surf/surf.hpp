// SURF: Search Using Random Forest (Algorithm 2 of the paper).
//
// Model-based search over a finite pool of configurations: evaluate an
// initial random batch, fit an ExtraTrees surrogate over the feature
// vectors, then repeatedly evaluate the `batch_size` unevaluated
// configurations the model predicts to perform best, retraining after
// each batch.  Minimization throughout (values are execution times).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "surf/extratrees.hpp"

namespace barracuda::surf {

/// Objective: maps a pool index to its measured performance (lower is
/// better).  In Barracuda this runs the performance model (or, on real
/// hardware, times the generated code variant).
using Objective = std::function<double(std::size_t)>;

struct SearchOptions {
  /// Total evaluation budget n_max.  The paper uses 100 for Lg3t.
  std::size_t max_evaluations = 100;
  /// Concurrent evaluations per iteration (bs in Algorithm 2).
  std::size_t batch_size = 10;
  std::uint64_t seed = 1;
  ExtraTreesOptions model;
};

struct SearchResult {
  std::size_t best_index = 0;
  double best_value = 0;
  /// Every (pool index, value) evaluated, in evaluation order.
  std::vector<std::pair<std::size_t, double>> history;
  /// Wall seconds spent inside the search.
  double seconds = 0;
  /// Feature importances of the final surrogate model (empty for
  /// searches that fit no model).
  std::vector<double> importances;

  std::size_t evaluations() const { return history.size(); }
  /// Best value seen within the first `n` evaluations (search-quality
  /// curves for the ablation benches).
  double best_after(std::size_t n) const;
};

/// Algorithm 2.  `features[i]` is the binarized encoding of pool entry i.
SearchResult surf_search(const std::vector<std::vector<double>>& features,
                         const Objective& evaluate,
                         const SearchOptions& options = {});

/// Uniform-random search baseline (no surrogate model), same budget.
SearchResult random_search(std::size_t pool_size, const Objective& evaluate,
                           const SearchOptions& options = {});

/// Exhaustive sweep of the whole pool (ignores max_evaluations).
SearchResult exhaustive_search(std::size_t pool_size,
                               const Objective& evaluate);

}  // namespace barracuda::surf
