// SURF: Search Using Random Forest (Algorithm 2 of the paper).
//
// Model-based search over a finite pool of configurations: evaluate an
// initial random batch, fit an ExtraTrees surrogate over the feature
// vectors, then repeatedly evaluate the `batch_size` unevaluated
// configurations the model predicts to perform best, retraining after
// each batch.  Minimization throughout (values are execution times).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "surf/extratrees.hpp"

namespace barracuda::surf {

/// Objective: maps a pool index to its measured performance (lower is
/// better).  In Barracuda this runs the performance model (or, on real
/// hardware, times the generated code variant).  When a search runs with
/// n_jobs > 1 the objective is invoked concurrently from pool workers on
/// distinct indices, so it must be safe for concurrent calls (pure
/// functions of the index, or internally synchronized state).
using Objective = std::function<double(std::size_t)>;

/// Stochastic objective: like Objective but handed a private Rng forked
/// deterministically from the search seed in batch order, so noisy
/// measurements reproduce bit-identically for every n_jobs setting.  The
/// parent search engine is never shared across threads.
using StochasticObjective = std::function<double(std::size_t, Rng&)>;

struct SearchOptions {
  /// Total evaluation budget n_max.  The paper uses 100 for Lg3t.
  /// Entries the `prepaid` predicate marks as already known are charged
  /// nothing against this budget.
  std::size_t max_evaluations = 100;
  /// Concurrent evaluations per iteration (bs in Algorithm 2).
  std::size_t batch_size = 10;
  std::uint64_t seed = 1;
  /// Worker threads for the whole search — Evaluate_Parallel batches,
  /// ExtraTrees fitting and the predict-over-pool scoring all run on the
  /// shared support::ThreadPool with this many lanes.  1 = sequential,
  /// 0 = hardware concurrency, negative throws Error.  Results are
  /// bit-identical for every value: batches are recorded in batch order,
  /// candidate evaluations are independent, and the surrogate forks
  /// per-tree Rngs in tree order.
  int n_jobs = 1;
  /// Optional: true when pool entry i has already been measured (e.g. a
  /// warm core::EvalCache holds its key).  Prepaid entries still run
  /// through the objective (a cache lookup) and enter the history, but
  /// cost nothing against max_evaluations — a warm cache stretches the
  /// budget instead of wasting it.  Consulted only on the driver thread
  /// at proposal time.  Honored by surf_search and random_search;
  /// genetic/annealing charge every evaluation.
  std::function<bool(std::size_t)> prepaid;
  /// Optional: true when pool entry i's canonical key is already in the
  /// evaluation cache.  Consulted only on the driver thread at proposal
  /// time.  When set, every search counts SearchResult::
  /// duplicate_proposals (budget-charged proposals of already-measured
  /// configurations); surf_search additionally reorders batch selection
  /// when `cache_aware` is on.
  std::function<bool(std::size_t)> cached;
  /// Cache-aware batch proposal (surf_search only; needs `cached`).
  /// Already-cached candidates are deprioritized so the measurement
  /// budget goes to genuinely new configurations:
  ///   - with `prepaid` set (free cache hits), every cached pool entry
  ///     is replayed up front as free lookups — in pool order, before
  ///     the model rounds, replacing the random bootstrap batch — and
  ///     the model rounds then propose only unevaluated configurations;
  ///   - without `prepaid`, cached candidates are skipped from the
  ///     measurement batches outright (the random bootstrap draws past
  ///     them, falling back to the plain draw when the whole pool is
  ///     cached).
  /// Off by default because, like `prepaid`, it changes what a warm
  /// search explores; results stay bit-identical for every n_jobs.
  bool cache_aware = false;
  /// Optional cooperative cancellation (serve::TuningService's tune
  /// deadline): consulted between evaluation batches — never mid-batch,
  /// so in-flight work always completes and the history stays a
  /// batch-aligned prefix of the uncancelled run.  When it returns true
  /// the search stops and returns the best found so far; the first
  /// batch always runs, so the result is never empty.  Honored by
  /// surf_search, random_search, genetic_search and annealing_search
  /// (exhaustive_search takes no options and cannot be cancelled).
  /// Must be safe for concurrent calls: annealing restart chains
  /// consult it from pool workers (a wall-clock deadline check
  /// qualifies).  Unset = never stop early.
  std::function<bool()> should_stop;
  /// Surrogate options.  surf_search overrides `model.seed` and
  /// `model.n_jobs` from the search's own seed/n_jobs so one knob
  /// governs evaluation and fitting alike.
  ExtraTreesOptions model;
};

/// Evaluate_Parallel (Algorithm 2): evaluates a batch of candidates,
/// across a fixed thread pool when n_jobs > 1, and returns the values in
/// batch order regardless of completion order.  For stochastic
/// objectives a child Rng is forked per candidate, in batch order,
/// before any evaluation is dispatched — the fork sequence (and thus the
/// result) is independent of thread scheduling.
class BatchEvaluator {
 public:
  /// `n_jobs`: 0 = hardware concurrency, negative throws Error.
  BatchEvaluator(Objective objective, int n_jobs);
  /// `seed` feeds the per-candidate Rng forks (decorrelated from the
  /// search's own sampling stream).
  BatchEvaluator(StochasticObjective objective, std::uint64_t seed,
                 int n_jobs);
  ~BatchEvaluator();

  /// Values of `batch`, in batch order.
  std::vector<double> operator()(const std::vector<std::size_t>& batch);

 private:
  Objective objective_;
  StochasticObjective stochastic_;
  Rng fork_source_{0};
  std::size_t jobs_ = 1;  // lanes on the shared pool; 1 = sequential
};

struct SearchResult {
  std::size_t best_index = 0;
  double best_value = 0;
  /// Every (pool index, value) evaluated, in evaluation order.
  std::vector<std::pair<std::size_t, double>> history;
  /// Wall seconds spent inside the search.
  double seconds = 0;
  /// Budget-charged proposals whose configuration the evaluation cache
  /// already held at proposal time (always 0 when SearchOptions::cached
  /// is unset).  These are wasted measurements a cache-aware search
  /// avoids: free replays (prepaid) and skipped candidates don't count.
  std::size_t duplicate_proposals = 0;
  /// Feature importances of the final surrogate model (empty for
  /// searches that fit no model).
  std::vector<double> importances;

  std::size_t evaluations() const { return history.size(); }
  /// Best value seen within the first `n` evaluations (search-quality
  /// curves for the ablation benches).
  double best_after(std::size_t n) const;
};

/// Algorithm 2.  `features[i]` is the binarized encoding of pool entry i.
SearchResult surf_search(const std::vector<std::vector<double>>& features,
                         const Objective& evaluate,
                         const SearchOptions& options = {});
SearchResult surf_search(const std::vector<std::vector<double>>& features,
                         const StochasticObjective& evaluate,
                         const SearchOptions& options = {});

/// Uniform-random search baseline (no surrogate model), same budget.
SearchResult random_search(std::size_t pool_size, const Objective& evaluate,
                           const SearchOptions& options = {});
SearchResult random_search(std::size_t pool_size,
                           const StochasticObjective& evaluate,
                           const SearchOptions& options = {});

/// Exhaustive sweep of the whole pool (ignores max_evaluations).
SearchResult exhaustive_search(std::size_t pool_size,
                               const Objective& evaluate);

}  // namespace barracuda::surf
