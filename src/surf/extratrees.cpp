#include "surf/extratrees.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"
#include "support/threadpool.hpp"

namespace barracuda::surf {
namespace {

double mean(const std::vector<double>& y,
            const std::vector<std::size_t>& sample) {
  double s = 0;
  for (auto i : sample) s += y[i];
  return s / static_cast<double>(sample.size());
}

double sum_sq_dev(const std::vector<double>& y,
                  const std::vector<std::size_t>& sample) {
  double m = mean(y, sample);
  double s = 0;
  for (auto i : sample) s += (y[i] - m) * (y[i] - m);
  return s;
}

}  // namespace

double ExtraTreesRegressor::Tree::predict(
    const std::vector<double>& x) const {
  int node = 0;
  while (!nodes[static_cast<std::size_t>(node)].is_leaf()) {
    const Node& n = nodes[static_cast<std::size_t>(node)];
    node = (x[static_cast<std::size_t>(n.feature)] < n.threshold) ? n.left
                                                                  : n.right;
  }
  return nodes[static_cast<std::size_t>(node)].value;
}

ExtraTreesRegressor::Tree ExtraTreesRegressor::build_tree(
    const std::vector<std::vector<double>>& X, const std::vector<double>& y,
    std::vector<std::size_t> sample, Rng& rng,
    std::vector<double>& gain) const {
  Tree tree;
  // Iterative construction with an explicit stack of (node index, sample).
  struct Work {
    int node;
    std::vector<std::size_t> sample;
  };
  tree.nodes.push_back(Node{});
  std::vector<Work> stack;
  stack.push_back({0, std::move(sample)});

  const int k = options_.k_features > 0
                    ? options_.k_features
                    : static_cast<int>(std::ceil(std::sqrt(
                          static_cast<double>(dim_))));

  while (!stack.empty()) {
    Work w = std::move(stack.back());
    stack.pop_back();
    Node& node = tree.nodes[static_cast<std::size_t>(w.node)];

    const double node_ssd = sum_sq_dev(y, w.sample);
    if (static_cast<int>(w.sample.size()) < options_.min_samples_split ||
        node_ssd <= 1e-24) {
      node.feature = -1;
      node.value = mean(y, w.sample);
      continue;
    }

    // Draw k candidate features (without replacement when possible) and a
    // random threshold each; keep the best variance reduction.
    int best_feature = -1;
    double best_threshold = 0;
    double best_score = node_ssd;  // must strictly improve
    auto feats = rng.sample_without_replacement(
        dim_, std::min<std::size_t>(static_cast<std::size_t>(k), dim_));
    for (auto f : feats) {
      double lo = INFINITY, hi = -INFINITY;
      for (auto i : w.sample) {
        lo = std::min(lo, X[i][f]);
        hi = std::max(hi, X[i][f]);
      }
      if (!(hi > lo)) continue;  // constant feature in this node
      double threshold = rng.uniform(lo, hi);
      if (threshold <= lo) threshold = std::nextafter(lo, hi);
      std::vector<std::size_t> left, right;
      for (auto i : w.sample) {
        (X[i][f] < threshold ? left : right).push_back(i);
      }
      if (left.empty() || right.empty()) continue;
      double score = sum_sq_dev(y, left) + sum_sq_dev(y, right);
      if (score < best_score) {
        best_score = score;
        best_feature = static_cast<int>(f);
        best_threshold = threshold;
      }
    }

    if (best_feature < 0) {
      node.feature = -1;
      node.value = mean(y, w.sample);
      continue;
    }

    gain[static_cast<std::size_t>(best_feature)] += node_ssd - best_score;
    std::vector<std::size_t> left, right;
    for (auto i : w.sample) {
      (X[i][static_cast<std::size_t>(best_feature)] < best_threshold ? left
                                                                     : right)
          .push_back(i);
    }
    // push_back may reallocate and invalidate `node`: compute the child
    // indices first and write the split through the vector afterwards.
    const int left_node = static_cast<int>(tree.nodes.size());
    const int right_node = left_node + 1;
    tree.nodes.push_back(Node{});
    tree.nodes.push_back(Node{});
    Node& parent = tree.nodes[static_cast<std::size_t>(w.node)];
    parent.feature = best_feature;
    parent.threshold = best_threshold;
    parent.left = left_node;
    parent.right = right_node;
    stack.push_back({left_node, std::move(left)});
    stack.push_back({right_node, std::move(right)});
  }
  return tree;
}

void ExtraTreesRegressor::fit(const std::vector<std::vector<double>>& X,
                              const std::vector<double>& y) {
  BARRACUDA_CHECK_MSG(!X.empty(), "cannot fit on an empty training set");
  BARRACUDA_CHECK(X.size() == y.size());
  dim_ = X[0].size();
  for (const auto& row : X) {
    BARRACUDA_CHECK_MSG(row.size() == dim_, "ragged feature matrix");
  }
  const std::size_t n_trees =
      static_cast<std::size_t>(std::max(options_.n_trees, 0));
  BARRACUDA_CHECK_MSG(n_trees >= 1, "n_trees must be >= 1");

  // Per-tree Rngs are forked from the seed in tree order on the calling
  // thread, so the stream each tree sees never depends on how (or
  // whether) the build is parallelized.
  Rng rng(options_.seed);
  std::vector<Rng> tree_rngs;
  tree_rngs.reserve(n_trees);
  for (std::size_t t = 0; t < n_trees; ++t) tree_rngs.push_back(rng.fork());

  std::vector<std::size_t> all(X.size());
  for (std::size_t i = 0; i < X.size(); ++i) all[i] = i;

  // Trees are independent: build them across the shared pool, each
  // writing its own slot and its own gain vector.  The gains are reduced
  // in tree order below, so importances are bit-identical for every
  // n_jobs value (including the sequential path, which runs the exact
  // same per-tree-then-reduce arithmetic).  Built into locals so a
  // throwing build leaves the model unfitted rather than half-built.
  std::vector<Tree> trees(n_trees);
  std::vector<std::vector<double>> gains(n_trees,
                                         std::vector<double>(dim_, 0.0));
  support::parallel_apply(
      support::resolve_jobs(options_.n_jobs), n_trees, [&](std::size_t t) {
        trees[t] = build_tree(X, y, all, tree_rngs[t], gains[t]);
      });
  trees_ = std::move(trees);

  importances_.assign(dim_, 0.0);
  for (std::size_t t = 0; t < n_trees; ++t) {
    for (std::size_t d = 0; d < dim_; ++d) importances_[d] += gains[t][d];
  }
  double total = 0;
  for (double g : importances_) total += g;
  if (total > 0) {
    for (double& g : importances_) g /= total;
  }
}

std::vector<double> ExtraTreesRegressor::feature_importances() const {
  BARRACUDA_CHECK_MSG(fitted(), "feature_importances() before fit()");
  return importances_;
}

double ExtraTreesRegressor::predict(const std::vector<double>& x) const {
  BARRACUDA_CHECK_MSG(fitted(), "predict() before fit()");
  BARRACUDA_CHECK_MSG(x.size() == dim_, "feature dimension mismatch");
  double s = 0;
  for (const auto& tree : trees_) s += tree.predict(x);
  return s / static_cast<double>(trees_.size());
}

std::vector<double> ExtraTreesRegressor::predict_batch(
    const std::vector<std::vector<double>>& X) const {
  // Rows are independent and each lands in its own slot, so sharding
  // across the pool is trivially bit-identical to the sequential loop.
  std::vector<double> out(X.size());
  support::parallel_apply(support::resolve_jobs(options_.n_jobs), X.size(),
                          [&](std::size_t i) { out[i] = predict(X[i]); });
  return out;
}

}  // namespace barracuda::surf
