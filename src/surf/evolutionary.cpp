#include "surf/evolutionary.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"
#include "support/threadpool.hpp"
#include "support/timer.hpp"

namespace barracuda::surf {
namespace {

double sq_distance(const std::vector<double>& a,
                   const std::vector<double>& b) {
  double s = 0;
  for (std::size_t d = 0; d < a.size(); ++d) {
    double diff = a[d] - b[d];
    s += diff * diff;
  }
  return s;
}

/// Index of the unevaluated pool entry closest to `target`; -1 when the
/// pool is exhausted.
std::ptrdiff_t nearest_unevaluated(
    const std::vector<std::vector<double>>& features,
    const std::vector<bool>& evaluated, const std::vector<double>& target) {
  std::ptrdiff_t best = -1;
  double best_d = 0;
  for (std::size_t i = 0; i < features.size(); ++i) {
    if (evaluated[i]) continue;
    double d = sq_distance(features[i], target);
    if (best < 0 || d < best_d) {
      best = static_cast<std::ptrdiff_t>(i);
      best_d = d;
    }
  }
  return best;
}

struct Tracker {
  SearchResult result;
  std::vector<bool> evaluated;
  std::size_t budget;

  bool exhausted() const {
    return result.history.size() >= budget;
  }
  double eval(std::size_t i, const Objective& objective) {
    double y = objective(i);
    evaluated[i] = true;
    result.history.emplace_back(i, y);
    if (result.history.size() == 1 || y < result.best_value) {
      result.best_value = y;
      result.best_index = i;
    }
    return y;
  }
  /// Record an already-computed batch value (Evaluate_Parallel path).
  void record(std::size_t i, double y) {
    result.history.emplace_back(i, y);
    if (result.history.size() == 1 || y < result.best_value) {
      result.best_value = y;
      result.best_index = i;
    }
  }
};

}  // namespace

SearchResult genetic_search(const std::vector<std::vector<double>>& features,
                            const Objective& evaluate,
                            const SearchOptions& options) {
  BARRACUDA_CHECK_MSG(!features.empty(), "empty configuration pool");
  WallTimer timer;
  Rng rng(options.seed);
  BatchEvaluator batches(evaluate, options.n_jobs);
  Tracker t;
  t.evaluated.assign(features.size(), false);
  t.budget = std::min(options.max_evaluations, features.size());

  // Initial population, measured as one parallel batch.
  const std::size_t pop_size =
      std::max<std::size_t>(2, std::min(options.batch_size, t.budget));
  std::vector<std::pair<double, std::size_t>> population;  // (value, index)
  {
    std::vector<std::size_t> seed_batch = rng.sample_without_replacement(
        features.size(), std::min(pop_size, t.budget));
    for (auto i : seed_batch) t.evaluated[i] = true;
    std::vector<double> values = batches(seed_batch);
    for (std::size_t b = 0; b < seed_batch.size(); ++b) {
      t.record(seed_batch[b], values[b]);
      population.emplace_back(values[b], seed_batch[b]);
    }
  }

  while (!t.exhausted()) {
    // Cooperative cancellation between generations (the seed batch above
    // always runs, so the result is never empty).
    if (options.should_stop && options.should_stop()) break;
    std::sort(population.begin(), population.end());
    const std::size_t parents = std::max<std::size_t>(2, pop_size / 2);
    std::vector<std::pair<double, std::size_t>> next(
        population.begin(),
        population.begin() +
            static_cast<std::ptrdiff_t>(
                std::min(parents, population.size())));

    // Select the whole generation's offspring first — selection only
    // needs parent *indices* (values are used by the sort above), so the
    // chosen children and the rng stream are exactly those of the
    // sequential algorithm — then evaluate them as one parallel batch.
    std::vector<std::size_t> offspring;
    std::size_t first_child = next.size();
    while (next.size() < pop_size &&
           t.result.history.size() + offspring.size() < t.budget) {
      std::size_t a = next[rng.index(std::min(parents, next.size()))].second;
      std::size_t b = next[rng.index(std::min(parents, next.size()))].second;
      std::vector<double> target(features[a].size());
      if (rng.flip(0.3)) {
        // Mutation: a random point near parent a (jitter each feature).
        for (std::size_t d = 0; d < target.size(); ++d) {
          target[d] = features[a][d] + rng.normal(0.0, 0.5);
        }
      } else {
        // Crossover: feature-space midpoint of the parents.
        for (std::size_t d = 0; d < target.size(); ++d) {
          target[d] = 0.5 * (features[a][d] + features[b][d]);
        }
      }
      std::ptrdiff_t child = nearest_unevaluated(features, t.evaluated,
                                                 target);
      if (child < 0) break;
      // Reserve immediately so the next nearest_unevaluated call skips
      // it, exactly as the sequential eval-as-you-go loop did.
      t.evaluated[static_cast<std::size_t>(child)] = true;
      offspring.push_back(static_cast<std::size_t>(child));
      next.emplace_back(0.0, static_cast<std::size_t>(child));
    }
    std::vector<double> values = batches(offspring);
    for (std::size_t b = 0; b < offspring.size(); ++b) {
      t.record(offspring[b], values[b]);
      next[first_child + b].first = values[b];
    }
    if (next.size() == population.size() &&
        std::equal(next.begin(), next.end(), population.begin())) {
      break;  // no unevaluated neighbors left
    }
    population = std::move(next);
  }
  t.result.seconds = timer.seconds();
  return t.result;
}

namespace {

/// One annealing Markov chain: the sequential algorithm, unchanged.
/// `budget` caps this chain's evaluations (already clamped to the pool
/// size by the caller).
SearchResult annealing_chain(
    const std::vector<std::vector<double>>& features,
    const Objective& evaluate, std::uint64_t seed, std::size_t budget,
    const std::function<bool()>& should_stop) {
  Rng rng(seed);
  Tracker t;
  t.evaluated.assign(features.size(), false);
  t.budget = budget;
  if (budget == 0) return t.result;

  std::size_t current = rng.index(features.size());
  double current_y = t.eval(current, evaluate);
  // Geometric cooling from the scale of the first value.
  double temperature = std::max(std::fabs(current_y), 1e-6);
  const double cooling = 0.90;

  while (!t.exhausted()) {
    // Cooperative cancellation between steps (the first evaluation above
    // always runs; with restart chains this is consulted concurrently,
    // see SearchOptions::should_stop).
    if (should_stop && should_stop()) break;
    // Propose: a random jitter of the current point, snapped to the
    // nearest unevaluated configuration.
    std::vector<double> target = features[current];
    for (auto& v : target) v += rng.normal(0.0, 1.0);
    std::ptrdiff_t proposal = nearest_unevaluated(features, t.evaluated,
                                                  target);
    if (proposal < 0) break;
    double y = t.eval(static_cast<std::size_t>(proposal), evaluate);
    double delta = y - current_y;
    if (delta <= 0 ||
        rng.uniform() < std::exp(-delta / std::max(temperature, 1e-12))) {
      current = static_cast<std::size_t>(proposal);
      current_y = y;
    }
    temperature *= cooling;
  }
  return t.result;
}

}  // namespace

SearchResult annealing_search(
    const std::vector<std::vector<double>>& features,
    const Objective& evaluate, const SearchOptions& options) {
  // One annealing chain is inherently sequential — every proposal
  // depends on the accept/reject outcome of the previous evaluation —
  // so n_jobs cannot batch a single chain.  Instead, n_jobs > 1 runs
  // that many DECORRELATED RESTART CHAINS concurrently and keeps the
  // best: the evaluation budget is split evenly across the chains
  // (earlier chains absorb the remainder), chain c is seeded with a
  // fork of (options.seed ^ 0x9e37u) advanced c times (chain 0 seeds
  // exactly like the sequential search, so n_jobs = 1 reproduces the
  // historical record byte-for-byte), and chains do NOT coordinate —
  // each explores with its own evaluated-set, so two chains may re-walk
  // the same configuration (that is what makes restarts decorrelated).
  //
  // Determinism story: each chain is a deterministic function of
  // (features, seed, budget); results are merged in chain order
  // (histories concatenated, best taken with ties broken by the LOWEST
  // chain index, then by that chain's own earliest-best rule) — so the
  // outcome is bit-identical for every thread schedule and for every
  // pool width, and depends only on the chain *count*.
  BARRACUDA_CHECK_MSG(!features.empty(), "empty configuration pool");
  WallTimer timer;
  const std::size_t chains = support::resolve_jobs(options.n_jobs);
  if (chains <= 1) {
    SearchResult result = annealing_chain(
        features, evaluate, options.seed ^ 0x9e37u,
        std::min(options.max_evaluations, features.size()),
        options.should_stop);
    result.seconds = timer.seconds();
    return result;
  }

  // Per-chain seeds: forked deterministically in chain order from one
  // source stream, before any chain runs.
  Rng seeder(options.seed ^ 0x9e37u);
  std::vector<std::uint64_t> seeds(chains);
  seeds[0] = options.seed ^ 0x9e37u;  // chain 0 == the sequential chain
  for (std::size_t c = 1; c < chains; ++c) {
    std::uint64_t hi = seeder.engine()();
    std::uint64_t lo = seeder.engine()();
    seeds[c] = hi ^ (lo * 0x2545f4914f6cdd1dull);
  }

  // Budget split: total stays min(max_evaluations, ...); chain budgets
  // differ by at most one, earlier chains take the remainder.
  const std::size_t total = options.max_evaluations;
  std::vector<std::size_t> budgets(chains);
  for (std::size_t c = 0; c < chains; ++c) {
    budgets[c] = std::min(total / chains + (c < total % chains ? 1 : 0),
                          features.size());
  }

  // The objective must already be safe for concurrent calls (the same
  // Evaluate_Parallel contract every other search relies on).
  std::vector<SearchResult> per_chain(chains);
  support::parallel_apply(chains, chains, [&](std::size_t c) {
    per_chain[c] = annealing_chain(features, evaluate, seeds[c], budgets[c],
                                   options.should_stop);
  });

  // Chain-order merge: deterministic regardless of scheduling.
  SearchResult merged;
  bool have_best = false;
  for (std::size_t c = 0; c < chains; ++c) {
    const SearchResult& r = per_chain[c];
    merged.history.insert(merged.history.end(), r.history.begin(),
                          r.history.end());
    if (r.history.empty()) continue;
    if (!have_best || r.best_value < merged.best_value) {
      merged.best_value = r.best_value;
      merged.best_index = r.best_index;
      have_best = true;
    }
  }
  BARRACUDA_CHECK_MSG(have_best, "annealing restarts evaluated nothing");
  merged.seconds = timer.seconds();
  return merged;
}

}  // namespace barracuda::surf
