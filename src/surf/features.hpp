// Feature binarization for the Barracuda search space (Section V).
//
// SURF's surrogate model needs fixed-length numeric vectors, but a tuning
// point is categorical: which OCTOPI variant, and per kernel which loop
// index feeds each PERMUTE parameter (ThreadX/ThreadY/BlockX/BlockY) plus
// the sequential order.  Categorical choices are one-hot encoded over the
// union vocabulary of loop indices; unroll factors stay numeric.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tcr/decision.hpp"
#include "tcr/program.hpp"

namespace barracuda::surf {

/// Encodes (variant index, per-kernel configs) into flat feature vectors
/// of a fixed dimension across all variants of one tensor computation.
class RecipeFeaturizer {
 public:
  explicit RecipeFeaturizer(const std::vector<tcr::TcrProgram>& variants);

  std::size_t dim() const { return dim_; }
  const std::vector<std::string>& vocabulary() const { return vocabulary_; }

  /// Encode one tuning point.  `recipe.size()` must match the variant's
  /// operation count; shorter variants are zero-padded to the widest.
  std::vector<double> encode(
      std::size_t variant_index,
      const std::vector<tcr::KernelConfig>& recipe) const;

  /// Human-readable name of feature dimension `d`, e.g. "variant#3",
  /// "kernel2.TY=j", "kernel1.unroll".
  std::string feature_name(std::size_t d) const;

 private:
  void encode_one_hot(std::vector<double>& out, std::size_t base,
                      const std::string& value) const;

  std::size_t variant_count_ = 0;
  std::size_t max_kernels_ = 0;
  std::vector<std::string> vocabulary_;  // all loop indices + "1"
  std::size_t per_kernel_dim_ = 0;
  std::size_t dim_ = 0;
};

}  // namespace barracuda::surf
