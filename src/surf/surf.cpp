#include "surf/surf.hpp"

#include <algorithm>
#include <utility>

#include "support/error.hpp"
#include "support/threadpool.hpp"
#include "support/timer.hpp"

namespace barracuda::surf {
namespace {

void record(SearchResult& result, std::size_t index, double value) {
  result.history.emplace_back(index, value);
  if (result.history.size() == 1 || value < result.best_value) {
    result.best_value = value;
    result.best_index = index;
  }
}

}  // namespace

BatchEvaluator::BatchEvaluator(Objective objective, int n_jobs)
    : objective_(std::move(objective)),
      jobs_(support::resolve_jobs(n_jobs)) {
  BARRACUDA_CHECK_MSG(objective_, "null objective");
}

BatchEvaluator::BatchEvaluator(StochasticObjective objective,
                               std::uint64_t seed, int n_jobs)
    : stochastic_(std::move(objective)),
      // Decorrelate the evaluation stream from the search's sampling
      // stream (which uses the raw seed).
      fork_source_(seed ^ 0xe7a1ba7c4e5ull),
      jobs_(support::resolve_jobs(n_jobs)) {
  BARRACUDA_CHECK_MSG(stochastic_, "null objective");
}

BatchEvaluator::~BatchEvaluator() = default;

std::vector<double> BatchEvaluator::operator()(
    const std::vector<std::size_t>& batch) {
  std::vector<double> values(batch.size());

  // Fork one child engine per candidate *before* dispatching: the fork
  // order is the batch order, so the streams each candidate sees do not
  // depend on how the pool schedules the work.  The parent engine is
  // only ever touched here, on the driver thread.
  std::vector<Rng> rngs;
  if (stochastic_) {
    rngs.reserve(batch.size());
    for (std::size_t b = 0; b < batch.size(); ++b) {
      rngs.push_back(fork_source_.fork());
    }
  }

  // Candidates run on the shared pool with jobs_ concurrent lanes;
  // every value lands in its batch-order slot.
  support::parallel_apply(jobs_, batch.size(), [&](std::size_t b) {
    values[b] = stochastic_ ? stochastic_(batch[b], rngs[b])
                            : objective_(batch[b]);
  });
  return values;
}

double SearchResult::best_after(std::size_t n) const {
  BARRACUDA_CHECK_MSG(n >= 1,
                      "best_after(0) is meaningless: no evaluations seen");
  BARRACUDA_CHECK(!history.empty());
  double best = history.front().second;
  for (std::size_t i = 0; i < std::min(n, history.size()); ++i) {
    best = std::min(best, history[i].second);
  }
  return best;
}

namespace {

SearchResult surf_search_impl(const std::vector<std::vector<double>>& features,
                              BatchEvaluator& evaluate,
                              const SearchOptions& options) {
  BARRACUDA_CHECK_MSG(!features.empty(), "empty configuration pool");
  BARRACUDA_CHECK(options.batch_size >= 1);
  WallTimer timer;
  SearchResult result;
  Rng rng(options.seed);
  const std::size_t jobs = support::resolve_jobs(options.n_jobs);

  const std::size_t pool_size = features.size();
  const std::size_t budget = std::min(options.max_evaluations, pool_size);
  std::vector<bool> evaluated(pool_size, false);
  std::vector<std::vector<double>> train_x;
  std::vector<double> train_y;

  // Budget accounting: every evaluation costs 1 unless the caller marks
  // it prepaid (already measured — a warm cache makes it a free lookup).
  // Checked on the driver thread at proposal time, so the accounting is
  // independent of n_jobs.
  std::size_t charged = 0;
  auto charge_of = [&](std::size_t index) -> std::size_t {
    return options.prepaid && options.prepaid(index) ? 0 : 1;
  };
  auto is_cached = [&](std::size_t index) {
    return options.cached && options.cached(index);
  };
  // Counts a proposal against the budget and, when it pays full price
  // for a configuration the cache already holds, against the
  // duplicate-proposal meter.
  auto charge = [&](std::size_t index) {
    const std::size_t cost = charge_of(index);
    if (cost > 0 && is_cached(index)) ++result.duplicate_proposals;
    charged += cost;
  };
  const bool cache_aware =
      options.cache_aware && static_cast<bool>(options.cached);
  // Cooperative cancellation (between batches, driver thread only): the
  // budget-slicing that lets a tune deadline cut the search off without
  // abandoning a batch mid-flight.
  auto stop_requested = [&] {
    return options.should_stop && options.should_stop();
  };

  auto run_batch = [&](const std::vector<std::size_t>& batch) {
    // Evaluate_Parallel in the paper: the candidates run concurrently
    // (n_jobs workers), but results are recorded in batch order, so the
    // history — and everything trained on it — is identical to the
    // sequential path.
    std::vector<double> values = evaluate(batch);
    for (std::size_t b = 0; b < batch.size(); ++b) {
      evaluated[batch[b]] = true;
      train_x.push_back(features[batch[b]]);
      train_y.push_back(values[b]);
      record(result, batch[b], values[b]);
    }
  };

  // Cache replay (cache-aware + prepaid): every already-cached pool
  // entry is a free lookup, so replay them all — in pool order, chunked
  // by batch_size — before spending any budget.  This seeds the
  // surrogate with everything the cache knows and guarantees a warm
  // search never loses sight of the cold run's best, while the model
  // rounds below then propose only genuinely new configurations.
  bool replayed = false;
  if (cache_aware && options.prepaid) {
    std::vector<std::size_t> known;
    for (std::size_t i = 0; i < pool_size; ++i) {
      if (is_cached(i)) known.push_back(i);
    }
    for (std::size_t begin = 0; begin < known.size();
         begin += options.batch_size) {
      // Replay slices are free but not instantaneous (cache lookups);
      // honor the deadline between them once the first landed.
      if (begin > 0 && stop_requested()) break;
      std::vector<std::size_t> batch(
          known.begin() + begin,
          known.begin() +
              std::min(known.size(), begin + options.batch_size));
      for (auto i : batch) charge(i);
      run_batch(batch);
    }
    replayed = !known.empty();
  }

  // Initialization: a random batch of min(bs, n_max) distinct configs
  // (unnecessary when the cache replay already bootstrapped the model).
  if (!replayed) {
    const std::size_t n0 = std::min(options.batch_size, budget);
    std::vector<std::size_t> batch;
    if (cache_aware) {
      // Draw past already-cached entries: walk the full pool
      // permutation (its prefix is exactly the plain n0 draw) and keep
      // the first n0 uncached configurations, falling back to the plain
      // prefix when the whole pool is cached.
      auto perm = rng.sample_without_replacement(pool_size, pool_size);
      for (std::size_t p = 0; p < perm.size() && batch.size() < n0; ++p) {
        if (!is_cached(perm[p])) batch.push_back(perm[p]);
      }
      if (batch.empty()) {
        batch.assign(perm.begin(), perm.begin() + n0);
      }
    } else {
      auto picks = rng.sample_without_replacement(pool_size, n0);
      batch.assign(picks.begin(), picks.end());
    }
    for (auto i : batch) charge(i);
    run_batch(batch);
  }

  ExtraTreesOptions model_options = options.model;
  model_options.seed = options.seed ^ 0x5u;
  model_options.n_jobs = options.n_jobs;
  ExtraTreesRegressor model(model_options);
  while (charged < budget && result.evaluations() < pool_size &&
         !stop_requested()) {
    model.fit(train_x, train_y);

    // Predict every unevaluated configuration (sharded across the pool —
    // this scoring pass is the per-iteration hot path on large pools);
    // take the bs best whose combined cost still fits the budget.
    std::vector<std::size_t> candidates;
    candidates.reserve(pool_size - result.evaluations());
    for (std::size_t i = 0; i < pool_size; ++i) {
      if (!evaluated[i]) candidates.push_back(i);
    }
    BARRACUDA_CHECK(!candidates.empty());
    std::vector<double> predicted(candidates.size());
    support::parallel_apply(jobs, candidates.size(), [&](std::size_t c) {
      predicted[c] = model.predict(features[candidates[c]]);
    });
    std::vector<std::pair<double, std::size_t>> scored;
    scored.reserve(candidates.size());
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      scored.emplace_back(predicted[c], candidates[c]);
    }
    std::sort(scored.begin(), scored.end());
    if (cache_aware) {
      // Deprioritize already-cached candidates (stable, so the model's
      // ranking is preserved within each class): the paid batch slots
      // go to the best *new* configurations first.
      std::stable_partition(scored.begin(), scored.end(),
                            [&](const std::pair<double, std::size_t>& s) {
                              return !is_cached(s.second);
                            });
    }

    std::vector<std::size_t> batch;
    std::size_t pending = 0;
    std::size_t pending_duplicates = 0;
    for (const auto& [value, index] : scored) {
      if (batch.size() >= options.batch_size) break;
      if (cache_aware && !options.prepaid && is_cached(index)) {
        // Skip mode (no free-hit accounting): re-measuring a cached
        // configuration would burn budget on a known value.
        continue;
      }
      std::size_t cost = charge_of(index);
      if (charged + pending + cost > budget) continue;
      if (cost > 0 && is_cached(index)) ++pending_duplicates;
      pending += cost;
      batch.push_back(index);
    }
    if (batch.empty()) break;  // nothing affordable left
    charged += pending;
    result.duplicate_proposals += pending_duplicates;
    run_batch(batch);
  }
  if (!model.fitted() && !train_x.empty()) model.fit(train_x, train_y);
  if (model.fitted()) result.importances = model.feature_importances();
  result.seconds = timer.seconds();
  return result;
}

SearchResult random_search_impl(std::size_t pool_size,
                                BatchEvaluator& evaluate,
                                const SearchOptions& options) {
  BARRACUDA_CHECK(pool_size > 0);
  BARRACUDA_CHECK(options.batch_size >= 1);
  WallTimer timer;
  SearchResult result;
  Rng rng(options.seed);
  const std::size_t budget = std::min(options.max_evaluations, pool_size);
  // A full pool permutation, walked front to back: its prefix is exactly
  // the sample_without_replacement(pool, budget) draw (partial
  // Fisher-Yates), so without a prepaid predicate the history matches
  // the fixed-size draw bit for bit, while a warm cache lets the walk
  // continue past `budget` picks for free.
  auto picks = rng.sample_without_replacement(pool_size, pool_size);
  std::size_t charged = 0;
  std::size_t pos = 0;
  while (pos < picks.size() && charged < budget &&
         // Cooperative cancellation between chunks; the first chunk
         // always runs so the result is never empty.
         !(pos > 0 && options.should_stop && options.should_stop())) {
    // Evaluate in batch_size chunks through Evaluate_Parallel; history
    // order stays the pick order and charging happens at proposal time
    // on the driver thread.
    std::vector<std::size_t> batch;
    while (pos < picks.size() && batch.size() < options.batch_size &&
           charged < budget) {
      std::size_t index = picks[pos++];
      if (!options.prepaid || !options.prepaid(index)) {
        ++charged;
        // Random search stays cache-oblivious by design (it is the
        // uninformed baseline) but still meters the budget it burns
        // re-proposing configurations the cache already holds.
        if (options.cached && options.cached(index)) {
          ++result.duplicate_proposals;
        }
      }
      batch.push_back(index);
    }
    std::vector<double> values = evaluate(batch);
    for (std::size_t b = 0; b < batch.size(); ++b) {
      record(result, batch[b], values[b]);
    }
  }
  result.seconds = timer.seconds();
  return result;
}

}  // namespace

SearchResult surf_search(const std::vector<std::vector<double>>& features,
                         const Objective& evaluate,
                         const SearchOptions& options) {
  BatchEvaluator batches(evaluate, options.n_jobs);
  return surf_search_impl(features, batches, options);
}

SearchResult surf_search(const std::vector<std::vector<double>>& features,
                         const StochasticObjective& evaluate,
                         const SearchOptions& options) {
  BatchEvaluator batches(evaluate, options.seed, options.n_jobs);
  return surf_search_impl(features, batches, options);
}

SearchResult random_search(std::size_t pool_size, const Objective& evaluate,
                           const SearchOptions& options) {
  BatchEvaluator batches(evaluate, options.n_jobs);
  return random_search_impl(pool_size, batches, options);
}

SearchResult random_search(std::size_t pool_size,
                           const StochasticObjective& evaluate,
                           const SearchOptions& options) {
  BatchEvaluator batches(evaluate, options.seed, options.n_jobs);
  return random_search_impl(pool_size, batches, options);
}

SearchResult exhaustive_search(std::size_t pool_size,
                               const Objective& evaluate) {
  BARRACUDA_CHECK(pool_size > 0);
  WallTimer timer;
  SearchResult result;
  for (std::size_t i = 0; i < pool_size; ++i) record(result, i, evaluate(i));
  result.seconds = timer.seconds();
  return result;
}

}  // namespace barracuda::surf
