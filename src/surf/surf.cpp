#include "surf/surf.hpp"

#include <algorithm>

#include "support/error.hpp"
#include "support/timer.hpp"

namespace barracuda::surf {
namespace {

void record(SearchResult& result, std::size_t index, double value) {
  result.history.emplace_back(index, value);
  if (result.history.size() == 1 || value < result.best_value) {
    result.best_value = value;
    result.best_index = index;
  }
}

}  // namespace

double SearchResult::best_after(std::size_t n) const {
  BARRACUDA_CHECK(!history.empty());
  double best = history.front().second;
  for (std::size_t i = 0; i < std::min(n, history.size()); ++i) {
    best = std::min(best, history[i].second);
  }
  return best;
}

SearchResult surf_search(const std::vector<std::vector<double>>& features,
                         const Objective& evaluate,
                         const SearchOptions& options) {
  BARRACUDA_CHECK_MSG(!features.empty(), "empty configuration pool");
  BARRACUDA_CHECK(options.batch_size >= 1);
  WallTimer timer;
  SearchResult result;
  Rng rng(options.seed);

  const std::size_t pool_size = features.size();
  const std::size_t budget = std::min(options.max_evaluations, pool_size);
  std::vector<bool> evaluated(pool_size, false);
  std::vector<std::vector<double>> train_x;
  std::vector<double> train_y;

  auto run_batch = [&](const std::vector<std::size_t>& batch) {
    // Evaluate_Parallel in the paper; sequential here (the evaluations
    // share one modeled device), identical results.
    for (auto i : batch) {
      double y = evaluate(i);
      evaluated[i] = true;
      train_x.push_back(features[i]);
      train_y.push_back(y);
      record(result, i, y);
    }
  };

  // Initialization: a random batch of min(bs, n_max) distinct configs.
  run_batch([&] {
    std::size_t n0 = std::min(options.batch_size, budget);
    auto picks = rng.sample_without_replacement(pool_size, n0);
    return std::vector<std::size_t>(picks.begin(), picks.end());
  }());

  ExtraTreesOptions model_options = options.model;
  model_options.seed = options.seed ^ 0x5u;
  ExtraTreesRegressor model(model_options);
  while (result.evaluations() < budget) {
    model.fit(train_x, train_y);

    // Predict every unevaluated configuration; take the bs best.
    std::vector<std::pair<double, std::size_t>> scored;
    for (std::size_t i = 0; i < pool_size; ++i) {
      if (!evaluated[i]) scored.emplace_back(model.predict(features[i]), i);
    }
    BARRACUDA_CHECK(!scored.empty());
    std::size_t take = std::min(options.batch_size,
                                std::min(budget - result.evaluations(),
                                         scored.size()));
    std::partial_sort(scored.begin(), scored.begin() + static_cast<long>(take),
                      scored.end());
    std::vector<std::size_t> batch;
    for (std::size_t b = 0; b < take; ++b) batch.push_back(scored[b].second);
    run_batch(batch);
  }
  if (!model.fitted() && !train_x.empty()) model.fit(train_x, train_y);
  if (model.fitted()) result.importances = model.feature_importances();
  result.seconds = timer.seconds();
  return result;
}

SearchResult random_search(std::size_t pool_size, const Objective& evaluate,
                           const SearchOptions& options) {
  BARRACUDA_CHECK(pool_size > 0);
  WallTimer timer;
  SearchResult result;
  Rng rng(options.seed);
  const std::size_t budget = std::min(options.max_evaluations, pool_size);
  auto picks = rng.sample_without_replacement(pool_size, budget);
  for (auto i : picks) record(result, i, evaluate(i));
  result.seconds = timer.seconds();
  return result;
}

SearchResult exhaustive_search(std::size_t pool_size,
                               const Objective& evaluate) {
  BARRACUDA_CHECK(pool_size > 0);
  WallTimer timer;
  SearchResult result;
  for (std::size_t i = 0; i < pool_size; ++i) record(result, i, evaluate(i));
  result.seconds = timer.seconds();
  return result;
}

}  // namespace barracuda::surf
