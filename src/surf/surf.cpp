#include "surf/surf.hpp"

#include <algorithm>
#include <utility>

#include "support/error.hpp"
#include "support/timer.hpp"

namespace barracuda::surf {
namespace {

void record(SearchResult& result, std::size_t index, double value) {
  result.history.emplace_back(index, value);
  if (result.history.size() == 1 || value < result.best_value) {
    result.best_value = value;
    result.best_index = index;
  }
}

}  // namespace

BatchEvaluator::BatchEvaluator(Objective objective, std::size_t n_jobs)
    : objective_(std::move(objective)) {
  BARRACUDA_CHECK_MSG(objective_, "null objective");
  if (n_jobs > 1) pool_ = std::make_unique<support::ThreadPool>(n_jobs);
}

BatchEvaluator::BatchEvaluator(StochasticObjective objective,
                               std::uint64_t seed, std::size_t n_jobs)
    : stochastic_(std::move(objective)),
      // Decorrelate the evaluation stream from the search's sampling
      // stream (which uses the raw seed).
      fork_source_(seed ^ 0xe7a1ba7c4e5ull) {
  BARRACUDA_CHECK_MSG(stochastic_, "null objective");
  if (n_jobs > 1) pool_ = std::make_unique<support::ThreadPool>(n_jobs);
}

BatchEvaluator::~BatchEvaluator() = default;

std::vector<double> BatchEvaluator::operator()(
    const std::vector<std::size_t>& batch) {
  std::vector<double> values(batch.size());

  // Fork one child engine per candidate *before* dispatching: the fork
  // order is the batch order, so the streams each candidate sees do not
  // depend on how the pool schedules the work.  The parent engine is
  // only ever touched here, on the driver thread.
  std::vector<Rng> rngs;
  if (stochastic_) {
    rngs.reserve(batch.size());
    for (std::size_t b = 0; b < batch.size(); ++b) {
      rngs.push_back(fork_source_.fork());
    }
  }

  auto evaluate_one = [&](std::size_t b) {
    values[b] = stochastic_ ? stochastic_(batch[b], rngs[b])
                            : objective_(batch[b]);
  };
  if (pool_ && batch.size() > 1) {
    pool_->parallel_for(batch.size(), evaluate_one);
  } else {
    for (std::size_t b = 0; b < batch.size(); ++b) evaluate_one(b);
  }
  return values;
}

double SearchResult::best_after(std::size_t n) const {
  BARRACUDA_CHECK_MSG(n >= 1,
                      "best_after(0) is meaningless: no evaluations seen");
  BARRACUDA_CHECK(!history.empty());
  double best = history.front().second;
  for (std::size_t i = 0; i < std::min(n, history.size()); ++i) {
    best = std::min(best, history[i].second);
  }
  return best;
}

namespace {

SearchResult surf_search_impl(const std::vector<std::vector<double>>& features,
                              BatchEvaluator& evaluate,
                              const SearchOptions& options) {
  BARRACUDA_CHECK_MSG(!features.empty(), "empty configuration pool");
  BARRACUDA_CHECK(options.batch_size >= 1);
  WallTimer timer;
  SearchResult result;
  Rng rng(options.seed);

  const std::size_t pool_size = features.size();
  const std::size_t budget = std::min(options.max_evaluations, pool_size);
  std::vector<bool> evaluated(pool_size, false);
  std::vector<std::vector<double>> train_x;
  std::vector<double> train_y;

  auto run_batch = [&](const std::vector<std::size_t>& batch) {
    // Evaluate_Parallel in the paper: the candidates run concurrently
    // (n_jobs workers), but results are recorded in batch order, so the
    // history — and everything trained on it — is identical to the
    // sequential path.
    std::vector<double> values = evaluate(batch);
    for (std::size_t b = 0; b < batch.size(); ++b) {
      evaluated[batch[b]] = true;
      train_x.push_back(features[batch[b]]);
      train_y.push_back(values[b]);
      record(result, batch[b], values[b]);
    }
  };

  // Initialization: a random batch of min(bs, n_max) distinct configs.
  run_batch([&] {
    std::size_t n0 = std::min(options.batch_size, budget);
    auto picks = rng.sample_without_replacement(pool_size, n0);
    return std::vector<std::size_t>(picks.begin(), picks.end());
  }());

  ExtraTreesOptions model_options = options.model;
  model_options.seed = options.seed ^ 0x5u;
  ExtraTreesRegressor model(model_options);
  while (result.evaluations() < budget) {
    model.fit(train_x, train_y);

    // Predict every unevaluated configuration; take the bs best.
    std::vector<std::pair<double, std::size_t>> scored;
    for (std::size_t i = 0; i < pool_size; ++i) {
      if (!evaluated[i]) scored.emplace_back(model.predict(features[i]), i);
    }
    BARRACUDA_CHECK(!scored.empty());
    std::size_t take = std::min(options.batch_size,
                                std::min(budget - result.evaluations(),
                                         scored.size()));
    std::partial_sort(scored.begin(), scored.begin() + static_cast<long>(take),
                      scored.end());
    std::vector<std::size_t> batch;
    for (std::size_t b = 0; b < take; ++b) batch.push_back(scored[b].second);
    run_batch(batch);
  }
  if (!model.fitted() && !train_x.empty()) model.fit(train_x, train_y);
  if (model.fitted()) result.importances = model.feature_importances();
  result.seconds = timer.seconds();
  return result;
}

SearchResult random_search_impl(std::size_t pool_size,
                                BatchEvaluator& evaluate,
                                const SearchOptions& options) {
  BARRACUDA_CHECK(pool_size > 0);
  BARRACUDA_CHECK(options.batch_size >= 1);
  WallTimer timer;
  SearchResult result;
  Rng rng(options.seed);
  const std::size_t budget = std::min(options.max_evaluations, pool_size);
  auto picks = rng.sample_without_replacement(pool_size, budget);
  // Evaluate in batch_size chunks through Evaluate_Parallel; history
  // order stays the pick order.
  for (std::size_t start = 0; start < picks.size();
       start += options.batch_size) {
    std::size_t end = std::min(picks.size(), start + options.batch_size);
    std::vector<std::size_t> batch(picks.begin() + static_cast<long>(start),
                                   picks.begin() + static_cast<long>(end));
    std::vector<double> values = evaluate(batch);
    for (std::size_t b = 0; b < batch.size(); ++b) {
      record(result, batch[b], values[b]);
    }
  }
  result.seconds = timer.seconds();
  return result;
}

}  // namespace

SearchResult surf_search(const std::vector<std::vector<double>>& features,
                         const Objective& evaluate,
                         const SearchOptions& options) {
  BatchEvaluator batches(evaluate, options.n_jobs);
  return surf_search_impl(features, batches, options);
}

SearchResult surf_search(const std::vector<std::vector<double>>& features,
                         const StochasticObjective& evaluate,
                         const SearchOptions& options) {
  BatchEvaluator batches(evaluate, options.seed, options.n_jobs);
  return surf_search_impl(features, batches, options);
}

SearchResult random_search(std::size_t pool_size, const Objective& evaluate,
                           const SearchOptions& options) {
  BatchEvaluator batches(evaluate, options.n_jobs);
  return random_search_impl(pool_size, batches, options);
}

SearchResult random_search(std::size_t pool_size,
                           const StochasticObjective& evaluate,
                           const SearchOptions& options) {
  BatchEvaluator batches(evaluate, options.seed, options.n_jobs);
  return random_search_impl(pool_size, batches, options);
}

SearchResult exhaustive_search(std::size_t pool_size,
                               const Objective& evaluate) {
  BARRACUDA_CHECK(pool_size > 0);
  WallTimer timer;
  SearchResult result;
  for (std::size_t i = 0; i < pool_size; ++i) record(result, i, evaluate(i));
  result.seconds = timer.seconds();
  return result;
}

}  // namespace barracuda::surf
