#include "surf/features.hpp"

#include <algorithm>
#include <set>

#include "support/error.hpp"

namespace barracuda::surf {

RecipeFeaturizer::RecipeFeaturizer(
    const std::vector<tcr::TcrProgram>& variants) {
  BARRACUDA_CHECK_MSG(!variants.empty(), "no variants to featurize");
  variant_count_ = variants.size();
  std::set<std::string> vocab;
  vocab.insert(tcr::kUnused);
  for (const auto& program : variants) {
    max_kernels_ = std::max(max_kernels_, program.operations.size());
    for (const auto& [ix, extent] : program.extents) vocab.insert(ix);
  }
  vocabulary_.assign(vocab.begin(), vocab.end());
  // Per kernel: 4 grid one-hots + innermost/outermost sequential one-hots
  // + 1 numeric unroll + 1 numeric sequential-loop count.
  per_kernel_dim_ = 6 * vocabulary_.size() + 2;
  dim_ = variant_count_ + max_kernels_ * per_kernel_dim_;
}

void RecipeFeaturizer::encode_one_hot(std::vector<double>& out,
                                      std::size_t base,
                                      const std::string& value) const {
  auto it = std::find(vocabulary_.begin(), vocabulary_.end(), value);
  BARRACUDA_CHECK_MSG(it != vocabulary_.end(),
                      "index " << value << " not in featurizer vocabulary");
  out[base + static_cast<std::size_t>(it - vocabulary_.begin())] = 1.0;
}

std::vector<double> RecipeFeaturizer::encode(
    std::size_t variant_index,
    const std::vector<tcr::KernelConfig>& recipe) const {
  BARRACUDA_CHECK(variant_index < variant_count_);
  BARRACUDA_CHECK_MSG(recipe.size() <= max_kernels_,
                      "recipe longer than the widest variant");
  std::vector<double> x(dim_, 0.0);
  x[variant_index] = 1.0;
  const std::size_t v = vocabulary_.size();
  for (std::size_t k = 0; k < recipe.size(); ++k) {
    const tcr::KernelConfig& cfg = recipe[k];
    std::size_t base = variant_count_ + k * per_kernel_dim_;
    encode_one_hot(x, base + 0 * v, cfg.thread_x);
    encode_one_hot(x, base + 1 * v, cfg.thread_y);
    encode_one_hot(x, base + 2 * v, cfg.block_x);
    encode_one_hot(x, base + 3 * v, cfg.block_y);
    encode_one_hot(x, base + 4 * v,
                   cfg.sequential.empty() ? tcr::kUnused
                                          : cfg.sequential.back());
    encode_one_hot(x, base + 5 * v,
                   cfg.sequential.empty() ? tcr::kUnused
                                          : cfg.sequential.front());
    x[base + 6 * v] = static_cast<double>(cfg.unroll);
    x[base + 6 * v + 1] = static_cast<double>(cfg.sequential.size());
  }
  return x;
}

std::string RecipeFeaturizer::feature_name(std::size_t d) const {
  BARRACUDA_CHECK(d < dim_);
  if (d < variant_count_) return "variant#" + std::to_string(d + 1);
  d -= variant_count_;
  const std::size_t kernel = d / per_kernel_dim_;
  const std::size_t within = d % per_kernel_dim_;
  const std::size_t v = vocabulary_.size();
  std::string prefix = "kernel" + std::to_string(kernel + 1) + ".";
  static const char* kSlots[] = {"TX", "TY", "BX", "BY",
                                 "inner_seq", "outer_seq"};
  if (within < 6 * v) {
    return prefix + kSlots[within / v] + "=" + vocabulary_[within % v];
  }
  return prefix + (within == 6 * v ? "unroll" : "seq_count");
}

}  // namespace barracuda::surf
