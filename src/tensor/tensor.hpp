// Dense row-major tensor of doubles — the value type flowing through the
// reference evaluator, the sequential CPU interpreter and the vGPU
// functional executor.
#pragma once

#include <cmath>
#include <vector>

#include "support/rng.hpp"
#include "tensor/shape.hpp"

namespace barracuda::tensor {

/// Owning dense tensor.  Value-semantic; copies are deep.
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape, double fill = 0.0)
      : shape_(std::move(shape)),
        data_(static_cast<std::size_t>(shape_.size()), fill) {}

  static Tensor zeros(std::vector<std::int64_t> dims) {
    return Tensor(Shape(std::move(dims)));
  }

  /// Uniform [-1, 1) entries from a caller-supplied deterministic stream.
  static Tensor random(std::vector<std::int64_t> dims, Rng& rng) {
    Tensor t(Shape(std::move(dims)));
    for (auto& v : t.data_) v = rng.uniform(-1.0, 1.0);
    return t;
  }

  const Shape& shape() const { return shape_; }
  std::int64_t size() const { return shape_.size(); }

  double& at(const std::vector<std::int64_t>& idx) {
    return data_[static_cast<std::size_t>(shape_.linearize(idx))];
  }
  double at(const std::vector<std::int64_t>& idx) const {
    return data_[static_cast<std::size_t>(shape_.linearize(idx))];
  }

  double& flat(std::int64_t i) { return data_[static_cast<std::size_t>(i)]; }
  double flat(std::int64_t i) const {
    return data_[static_cast<std::size_t>(i)];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  void fill(double v) { data_.assign(data_.size(), v); }

  /// Max absolute elementwise difference; infinity on shape mismatch.
  static double max_abs_diff(const Tensor& a, const Tensor& b) {
    if (a.shape() != b.shape()) return INFINITY;
    double m = 0.0;
    for (std::size_t i = 0; i < a.data_.size(); ++i) {
      m = std::fmax(m, std::fabs(a.data_[i] - b.data_[i]));
    }
    return m;
  }

  /// Approximate equality with a tolerance covering FP reassociation across
  /// differently-ordered contraction variants.
  static bool allclose(const Tensor& a, const Tensor& b, double tol = 1e-9) {
    return max_abs_diff(a, b) <= tol;
  }

 private:
  Shape shape_;
  std::vector<double> data_;
};

}  // namespace barracuda::tensor
