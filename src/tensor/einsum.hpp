// Abstract einsum contraction statements and a naive reference evaluator.
//
// This is the semantic ground truth of the whole system: OCTOPI variants,
// CHiLL-transformed kernels and vGPU executions are all validated against
// the evaluator in this module.  Indices follow the paper's convention:
// any index appearing on the right-hand side but not in the output is
// implicitly summed.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace barracuda::tensor {

/// A named tensor with symbolic indices, e.g. A[l k] or t3[h3 h2 h1 p6 p5 p4].
struct TensorRef {
  std::string name;
  std::vector<std::string> indices;

  bool operator==(const TensorRef&) const = default;
  std::string to_string() const;
};

/// One contraction statement: output (+)= product(inputs), summing every
/// index not present in the output.
struct Contraction {
  TensorRef output;
  std::vector<TensorRef> inputs;
  bool accumulate = true;  // += when true, = when false

  bool operator==(const Contraction&) const = default;
  std::string to_string() const;

  /// Indices appearing anywhere in the statement, in first-use order.
  std::vector<std::string> all_indices() const;
  /// Indices summed over (on some input but not the output).
  std::vector<std::string> summed_indices() const;
};

/// Extent of each symbolic index, e.g. {i:10, j:10, k:10, l:10, m:10, n:10}.
using Extents = std::map<std::string, std::int64_t>;

/// A straight-line sequence of contractions writing temporaries then the
/// final output(s) — the shape of an OCTOPI variant.
struct ContractionProgram {
  std::vector<Contraction> steps;

  bool operator==(const ContractionProgram&) const = default;
  std::string to_string() const;
};

/// Shape of a tensor reference under the given extents.
Shape shape_of(const TensorRef& ref, const Extents& extents);

/// Multiply-add count of one statement: 1 fused multiply + adds per input
/// product term over the full (free x summed) iteration space, counted as
/// 2*|inputs-1|... the paper counts a k-ary product accumulate as
/// (k multiplies-1 + 1 add) flops per point; we use the standard
/// 2*points*(k-1)+... — concretely: points * (2*(k-1)) for k>=2 and
/// points * 2 for k==1 (multiply + accumulate).
std::int64_t flop_count(const Contraction& c, const Extents& extents);
std::int64_t flop_count(const ContractionProgram& p, const Extents& extents);

/// Environment mapping tensor names to values.
using TensorEnv = std::map<std::string, Tensor>;

/// Evaluate one statement naively against `env`; the output tensor must
/// already exist in `env` when accumulate==true (it is created/zeroed when
/// accumulate==false or absent).
void evaluate(const Contraction& c, const Extents& extents, TensorEnv& env);

/// Evaluate a whole program; temporaries referenced before definition are
/// created as zeros.  Returns a reference to the final statement's output.
const Tensor& evaluate(const ContractionProgram& p, const Extents& extents,
                       TensorEnv& env);

}  // namespace barracuda::tensor
