#include "tensor/einsum.hpp"

#include <algorithm>
#include <sstream>

#include "support/str.hpp"

namespace barracuda::tensor {

std::string TensorRef::to_string() const {
  std::ostringstream os;
  os << name << "[";
  for (std::size_t i = 0; i < indices.size(); ++i) {
    if (i) os << " ";
    os << indices[i];
  }
  os << "]";
  return os.str();
}

std::string Contraction::to_string() const {
  std::ostringstream os;
  os << output.to_string() << (accumulate ? " += " : " = ");
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    if (i) os << " * ";
    os << inputs[i].to_string();
  }
  return os.str();
}

std::vector<std::string> Contraction::all_indices() const {
  std::vector<std::string> order;
  auto add = [&](const std::vector<std::string>& idxs) {
    for (const auto& ix : idxs) {
      if (std::find(order.begin(), order.end(), ix) == order.end()) {
        order.push_back(ix);
      }
    }
  };
  add(output.indices);
  for (const auto& in : inputs) add(in.indices);
  return order;
}

std::vector<std::string> Contraction::summed_indices() const {
  std::vector<std::string> out;
  for (const auto& ix : all_indices()) {
    if (std::find(output.indices.begin(), output.indices.end(), ix) ==
        output.indices.end()) {
      out.push_back(ix);
    }
  }
  return out;
}

std::string ContractionProgram::to_string() const {
  std::ostringstream os;
  for (const auto& s : steps) os << s.to_string() << "\n";
  return os.str();
}

Shape shape_of(const TensorRef& ref, const Extents& extents) {
  std::vector<std::int64_t> dims;
  dims.reserve(ref.indices.size());
  for (const auto& ix : ref.indices) {
    auto it = extents.find(ix);
    BARRACUDA_CHECK_MSG(it != extents.end(), "missing extent for index " << ix);
    dims.push_back(it->second);
  }
  return Shape(std::move(dims));
}

std::int64_t flop_count(const Contraction& c, const Extents& extents) {
  std::int64_t points = 1;
  for (const auto& ix : c.all_indices()) {
    auto it = extents.find(ix);
    BARRACUDA_CHECK_MSG(it != extents.end(), "missing extent for index " << ix);
    points *= it->second;
  }
  // Each iteration-space point performs (k-1) multiplies and 1 add for a
  // k-ary product, i.e. k flops per point (the usual 2 flops/point for the
  // binary contractions OCTOPI emits); a single-input accumulate is 1 add.
  std::int64_t k = static_cast<std::int64_t>(c.inputs.size());
  return points * std::max<std::int64_t>(k, 1);
}

std::int64_t flop_count(const ContractionProgram& p, const Extents& extents) {
  std::int64_t total = 0;
  for (const auto& s : p.steps) total += flop_count(s, extents);
  return total;
}

void evaluate(const Contraction& c, const Extents& extents, TensorEnv& env) {
  const Shape out_shape = shape_of(c.output, extents);
  auto [it, inserted] = env.try_emplace(c.output.name, Tensor(out_shape));
  Tensor& out = it->second;
  if (!inserted) {
    BARRACUDA_CHECK_MSG(out.shape() == out_shape,
                        "shape mismatch for output " << c.output.name);
    if (!c.accumulate) out.fill(0.0);
  }

  const std::vector<std::string> order = c.all_indices();
  std::vector<std::int64_t> space;
  space.reserve(order.size());
  for (const auto& ix : order) space.push_back(extents.at(ix));

  // Pre-resolve, for every operand, the position in `order` of each of its
  // indices so the inner loop is a cheap gather.
  auto positions = [&](const TensorRef& ref) {
    std::vector<std::size_t> pos;
    pos.reserve(ref.indices.size());
    for (const auto& ix : ref.indices) {
      auto p = std::find(order.begin(), order.end(), ix);
      pos.push_back(static_cast<std::size_t>(p - order.begin()));
    }
    return pos;
  };
  const std::vector<std::size_t> out_pos = positions(c.output);
  std::vector<const Tensor*> in_tensors;
  std::vector<std::vector<std::size_t>> in_pos;
  for (const auto& in : c.inputs) {
    auto jt = env.find(in.name);
    BARRACUDA_CHECK_MSG(jt != env.end(), "undefined input tensor " << in.name);
    BARRACUDA_CHECK_MSG(jt->second.shape() == shape_of(in, extents),
                        "shape mismatch for input " << in.name);
    in_tensors.push_back(&jt->second);
    in_pos.push_back(positions(in));
  }

  std::vector<std::int64_t> sub;
  for_each_index(space, [&](const std::vector<std::int64_t>& idx) {
    double prod = 1.0;
    for (std::size_t t = 0; t < in_tensors.size(); ++t) {
      sub.clear();
      for (auto p : in_pos[t]) sub.push_back(idx[p]);
      prod *= in_tensors[t]->at(sub);
    }
    sub.clear();
    for (auto p : out_pos) sub.push_back(idx[p]);
    out.at(sub) += prod;
  });
}

const Tensor& evaluate(const ContractionProgram& p, const Extents& extents,
                       TensorEnv& env) {
  BARRACUDA_CHECK(!p.steps.empty());
  for (const auto& s : p.steps) evaluate(s, extents, env);
  return env.at(p.steps.back().output.name);
}

}  // namespace barracuda::tensor
