// Shapes and row-major index arithmetic for dense tensors.
//
// Barracuda targets contractions over tensors with small per-dimension
// extents (O(1)–O(10), up to 16 for the NWChem kernels) but possibly many
// dimensions (rank 6 for the CCSD(T) triples kernels), so shapes are
// dynamic-rank.
#pragma once

#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "support/error.hpp"

namespace barracuda::tensor {

/// Dynamic-rank shape with row-major (C order) strides: the *last* dimension
/// is contiguous, matching the paper's "assuming row-major layout" analysis.
class Shape {
 public:
  Shape() = default;
  explicit Shape(std::vector<std::int64_t> dims) : dims_(std::move(dims)) {
    for (auto d : dims_) BARRACUDA_CHECK_MSG(d > 0, "extent must be positive");
  }

  std::size_t rank() const { return dims_.size(); }
  std::int64_t dim(std::size_t i) const { return dims_.at(i); }
  const std::vector<std::int64_t>& dims() const { return dims_; }

  /// Total element count (1 for rank-0 scalars).
  std::int64_t size() const {
    return std::accumulate(dims_.begin(), dims_.end(), std::int64_t{1},
                           std::multiplies<>());
  }

  /// Row-major stride of dimension `i` in elements.
  std::int64_t stride(std::size_t i) const {
    BARRACUDA_CHECK(i < dims_.size());
    std::int64_t s = 1;
    for (std::size_t k = dims_.size(); k-- > i + 1;) s *= dims_[k];
    return s;
  }

  /// Flatten a multi-index (one entry per dimension, each in range).
  std::int64_t linearize(const std::vector<std::int64_t>& idx) const {
    BARRACUDA_CHECK(idx.size() == dims_.size());
    std::int64_t lin = 0;
    for (std::size_t k = 0; k < dims_.size(); ++k) {
      BARRACUDA_CHECK(idx[k] >= 0 && idx[k] < dims_[k]);
      lin = lin * dims_[k] + idx[k];
    }
    return lin;
  }

  bool operator==(const Shape& o) const = default;

  std::string to_string() const {
    std::string s = "(";
    for (std::size_t i = 0; i < dims_.size(); ++i) {
      if (i) s += ",";
      s += std::to_string(dims_[i]);
    }
    return s + ")";
  }

 private:
  std::vector<std::int64_t> dims_;
};

/// Odometer over a multi-dimensional iteration space.  Calls `fn` with a
/// multi-index for every point in row-major order.  Zero-rank spaces call
/// `fn` exactly once with an empty index.
template <typename Fn>
void for_each_index(const std::vector<std::int64_t>& extents, Fn&& fn) {
  std::vector<std::int64_t> idx(extents.size(), 0);
  while (true) {
    fn(idx);
    std::size_t k = extents.size();
    while (k > 0) {
      --k;
      if (++idx[k] < extents[k]) break;
      idx[k] = 0;
      if (k == 0) return;
    }
    if (extents.empty()) return;
  }
}

}  // namespace barracuda::tensor
