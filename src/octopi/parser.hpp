// Parser for the OCTOPI tensor DSL (Figure 2(a) syntax).
//
// Line-oriented grammar:
//   line      := comment | dim-decl | statement
//   comment   := '#' ...
//   dim-decl  := 'dim' ident+ '=' integer
//   statement := ref ('='|'+=') rhs
//   rhs       := 'Sum' '(' '[' ident-list ']' ',' product ')' | product
//   product   := ref ('*' ref)*
//   ref       := ident '[' ident-list ']'
//   ident-list elements are separated by spaces and/or commas.
#pragma once

#include <string_view>

#include "octopi/ast.hpp"

namespace barracuda::octopi {

/// Parse a full OCTOPI program.  Throws barracuda::ParseError (with the
/// offending line number) on malformed input.  `source_name` labels errors.
OctopiProgram parse_octopi(std::string_view text,
                           std::string_view source_name = "<octopi>");

/// Parse a single statement line (no dim declarations).
EinsumStatement parse_statement(std::string_view line,
                                std::string_view source_name = "<octopi>",
                                int line_number = 1);

}  // namespace barracuda::octopi
