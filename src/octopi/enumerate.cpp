#include "octopi/enumerate.hpp"

#include <algorithm>
#include <optional>
#include <set>

#include "support/error.hpp"

namespace barracuda::octopi {
namespace {

using tensor::Contraction;
using tensor::ContractionProgram;
using tensor::Extents;
using tensor::TensorRef;

/// Mutable enumeration state threaded through the depth-first search.
struct EnumState {
  const Contraction* stmt = nullptr;
  const Extents* extents = nullptr;
  const EnumerateOptions* options = nullptr;

  /// Terms indexed by global creation id (Algorithm 1's T_1..T_d); dead
  /// (consumed) terms become nullopt.  Ids only grow, which is what the
  /// cursor constraint `a < b, b > c` is defined over.
  std::vector<std::optional<TensorRef>> terms;
  std::set<std::string> used_names;
  std::vector<Contraction> steps;
  std::vector<Variant>* results = nullptr;

  bool is_free(const std::string& ix) const {
    const auto& out = stmt->output.indices;
    return std::find(out.begin(), out.end(), ix) != out.end();
  }

  /// Number of *alive* terms whose index set contains `ix`, excluding the
  /// term ids listed in `excluded`.
  int occurrence_count(const std::string& ix,
                       std::initializer_list<std::size_t> excluded) const {
    int count = 0;
    for (std::size_t id = 0; id < terms.size(); ++id) {
      if (!terms[id]) continue;
      if (std::find(excluded.begin(), excluded.end(), id) != excluded.end()) {
        continue;
      }
      const auto& idxs = terms[id]->indices;
      if (std::find(idxs.begin(), idxs.end(), ix) != idxs.end()) ++count;
    }
    return count;
  }

  std::string fresh_temp_name(std::size_t id) {
    std::string name = "t" + std::to_string(id);
    while (used_names.contains(name)) name.insert(name.begin(), '_');
    used_names.insert(name);
    return name;
  }

  std::size_t alive_count() const {
    std::size_t n = 0;
    for (const auto& t : terms) n += t.has_value();
    return n;
  }
};

/// Sum out every index that occurs in exactly one alive term and is not a
/// free (output) index — Algorithm 1 lines 5–9.  Deterministic (no
/// branching), so it runs at the top of each search node.  Returns the id
/// of the last consumed term, used to advance the cursor.
std::optional<std::size_t> apply_exclusive_sums(EnumState& st) {
  std::optional<std::size_t> last_consumed;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t a = 0; a < st.terms.size() && !changed; ++a) {
      if (!st.terms[a]) continue;
      const TensorRef ta = *st.terms[a];
      std::vector<std::string> kept;
      for (const auto& ix : ta.indices) {
        bool exclusive = !st.is_free(ix) && st.occurrence_count(ix, {a}) == 0;
        if (!exclusive) kept.push_back(ix);
      }
      if (kept.size() == ta.indices.size()) continue;
      // When this unary reduction is the final operation, write straight
      // into the statement's output instead of a temporary.
      std::size_t d = st.terms.size();
      TensorRef td;
      if (st.alive_count() == 1 && kept == st.stmt->output.indices) {
        td = st.stmt->output;
      } else {
        td = TensorRef{st.fresh_temp_name(d), kept};
      }
      st.steps.push_back(Contraction{td, {ta}, /*accumulate=*/true});
      st.terms.push_back(td);
      st.terms[a].reset();
      last_consumed = a;
      changed = true;
    }
  }
  return last_consumed;
}

void emit_variant(EnumState& st) {
  if (st.results->size() >= st.options->max_variants) return;
  Variant v;
  v.program.steps = st.steps;
  v.flops = tensor::flop_count(v.program, *st.extents);
  st.results->push_back(std::move(v));
}

/// Depth-first enumeration over merge choices (Algorithm 1 lines 10–14).
void search(EnumState st, std::size_t cursor) {
  if (st.results->size() >= st.options->max_variants) return;

  if (auto consumed = apply_exclusive_sums(st)) {
    cursor = std::max(cursor, *consumed);
  }

  if (st.alive_count() == 1) {
    // All contraction already performed; if the surviving term is a
    // temporary other than the output (possible only for degenerate inputs),
    // emit a final copy-accumulate into the declared output.
    for (std::size_t id = 0; id < st.terms.size(); ++id) {
      if (!st.terms[id]) continue;
      if (!(*st.terms[id] == st.stmt->output)) {
        Contraction finalize{st.stmt->output, {*st.terms[id]},
                             st.stmt->accumulate};
        st.steps.push_back(finalize);
      }
    }
    if (!st.steps.empty()) {
      st.steps.back().output = st.stmt->output;
      st.steps.back().accumulate = st.stmt->accumulate;
    }
    emit_variant(st);
    return;
  }

  for (std::size_t b = cursor + 1; b < st.terms.size(); ++b) {
    if (!st.terms[b]) continue;
    for (std::size_t a = 0; a < b; ++a) {
      if (!st.terms[a]) continue;
      EnumState next = st;
      const TensorRef ta = *next.terms[a];
      const TensorRef tb = *next.terms[b];

      // Surviving indices: free, or still needed by some other alive term.
      auto survives = [&](const std::string& ix) {
        return next.is_free(ix) || next.occurrence_count(ix, {a, b}) > 0;
      };
      std::vector<std::string> out_indices;
      auto add_surviving = [&](const TensorRef& t) {
        for (const auto& ix : t.indices) {
          if (survives(ix) && std::find(out_indices.begin(), out_indices.end(),
                                        ix) == out_indices.end()) {
            out_indices.push_back(ix);
          }
        }
      };
      add_surviving(ta);
      add_surviving(tb);

      std::size_t d = next.terms.size();
      const bool is_final = next.alive_count() == 2;
      TensorRef td = is_final ? next.stmt->output
                              : TensorRef{next.fresh_temp_name(d), out_indices};
      if (is_final) {
        // The last merge must produce exactly the free indices.
        std::set<std::string> got(out_indices.begin(), out_indices.end());
        std::set<std::string> want(next.stmt->output.indices.begin(),
                                   next.stmt->output.indices.end());
        BARRACUDA_CHECK_MSG(got == want,
                            "final merge indices do not match the output");
      }
      next.steps.push_back(Contraction{
          td, {ta, tb}, is_final ? next.stmt->accumulate : true});
      next.terms.push_back(td);
      next.terms[a].reset();
      next.terms[b].reset();
      search(std::move(next), /*cursor=*/b);
    }
  }
}

}  // namespace

std::vector<Variant> enumerate_variants(const Contraction& stmt,
                                        const Extents& extents,
                                        const EnumerateOptions& options) {
  BARRACUDA_CHECK_MSG(!stmt.inputs.empty(), "statement has no factors");
  std::vector<Variant> results;

  const bool direct_only =
      !options.strength_reduction || stmt.inputs.size() <= 2;
  if (direct_only) {
    Variant v;
    v.program.steps = {stmt};
    v.flops = tensor::flop_count(v.program, extents);
    results.push_back(std::move(v));
    if (stmt.inputs.size() <= 2) return results;  // nothing else to enumerate
    return results;
  }

  EnumState st;
  st.stmt = &stmt;
  st.extents = &extents;
  st.options = &options;
  st.results = &results;
  st.used_names.insert(stmt.output.name);
  for (const auto& in : stmt.inputs) {
    st.terms.emplace_back(in);
    st.used_names.insert(in.name);
  }
  search(std::move(st), /*cursor=*/0);

  std::sort(results.begin(), results.end(),
            [](const Variant& x, const Variant& y) {
              if (x.flops != y.flops) return x.flops < y.flops;
              return x.program.to_string() < y.program.to_string();
            });
  if (options.max_flops_ratio > 0 && !results.empty()) {
    const double cutoff =
        static_cast<double>(results.front().flops) * options.max_flops_ratio;
    while (results.size() > 1 &&
           static_cast<double>(results.back().flops) > cutoff) {
      results.pop_back();
    }
  }
  return results;
}

std::size_t count_min_flop_variants(const std::vector<Variant>& variants) {
  if (variants.empty()) return 0;
  std::int64_t best = variants.front().flops;
  std::size_t count = 0;
  for (const auto& v : variants) count += (v.flops == best);
  return count;
}

}  // namespace barracuda::octopi
