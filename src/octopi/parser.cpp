#include "octopi/parser.hpp"

#include <cctype>
#include <cstdlib>
#include <optional>
#include <string>

#include "support/error.hpp"
#include "support/str.hpp"

namespace barracuda::octopi {
namespace {

/// Character-cursor over one logical line with error context.
class Cursor {
 public:
  Cursor(std::string_view text, std::string_view source, int line)
      : text_(text), source_(source), line_(line) {}

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool at_end() {
    skip_ws();
    return pos_ >= text_.size();
  }

  char peek() {
    skip_ws();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  bool try_consume(std::string_view token) {
    skip_ws();
    if (text_.substr(pos_).starts_with(token)) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  void expect(std::string_view token) {
    if (!try_consume(token)) {
      fail("expected '" + std::string(token) + "'");
    }
  }

  std::string ident() {
    skip_ws();
    if (pos_ >= text_.size() || !is_ident_start(text_[pos_])) {
      fail("expected identifier");
    }
    std::size_t start = pos_;
    while (pos_ < text_.size() && is_ident_char(text_[pos_])) ++pos_;
    return std::string(text_.substr(start, pos_ - start));
  }

  std::int64_t integer() {
    skip_ws();
    std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start) fail("expected integer");
    return std::strtoll(std::string(text_.substr(start, pos_ - start)).c_str(),
                        nullptr, 10);
  }

  /// Identifiers separated by whitespace and/or commas, up to a terminator.
  std::vector<std::string> ident_list(char terminator) {
    std::vector<std::string> out;
    while (peek() != terminator && !at_end()) {
      if (!out.empty() && peek() == ',') expect(",");
      if (peek() == terminator) break;
      out.push_back(ident());
    }
    return out;
  }

  [[noreturn]] void fail(const std::string& message) {
    throw ParseError(source_, line_,
                     message + " at column " + std::to_string(pos_ + 1) +
                         " in: " + std::string(text_));
  }

 private:
  std::string_view text_;
  std::string_view source_;
  int line_;
  std::size_t pos_ = 0;
};

tensor::TensorRef parse_ref(Cursor& cur) {
  tensor::TensorRef ref;
  ref.name = cur.ident();
  cur.expect("[");
  ref.indices = cur.ident_list(']');
  cur.expect("]");
  return ref;
}

std::vector<tensor::TensorRef> parse_product(Cursor& cur) {
  std::vector<tensor::TensorRef> factors;
  factors.push_back(parse_ref(cur));
  while (cur.try_consume("*")) factors.push_back(parse_ref(cur));
  return factors;
}

}  // namespace

EinsumStatement parse_statement(std::string_view line,
                                std::string_view source_name,
                                int line_number) {
  Cursor cur(line, source_name, line_number);
  EinsumStatement stmt;
  stmt.output = parse_ref(cur);
  if (cur.try_consume("+=")) {
    stmt.accumulate = true;
  } else if (cur.try_consume("=")) {
    stmt.accumulate = false;
  } else {
    cur.fail("expected '=' or '+='");
  }
  if (cur.try_consume("Sum")) {
    cur.expect("(");
    cur.expect("[");
    stmt.sum_indices = cur.ident_list(']');
    cur.expect("]");
    cur.expect(",");
    stmt.factors = parse_product(cur);
    cur.expect(")");
  } else {
    stmt.factors = parse_product(cur);
  }
  if (!cur.at_end()) cur.fail("trailing input after statement");
  if (stmt.factors.empty()) cur.fail("statement has no factors");
  return stmt;
}

OctopiProgram parse_octopi(std::string_view text,
                           std::string_view source_name) {
  OctopiProgram program;
  int line_number = 0;
  for (const auto& raw : split(text, '\n')) {
    ++line_number;
    std::string_view line = trim(raw);
    if (auto hash = line.find('#'); hash != std::string_view::npos) {
      line = trim(line.substr(0, hash));
    }
    if (line.empty()) continue;
    if (starts_with(line, "dim ") || line == "dim") {
      Cursor cur(line, source_name, line_number);
      cur.expect("dim");
      std::vector<std::string> names = cur.ident_list('=');
      cur.expect("=");
      std::int64_t extent = cur.integer();
      // Optional range form: "dim p = 8..16".
      std::optional<std::int64_t> hi;
      if (cur.try_consume("..")) hi = cur.integer();
      if (!cur.at_end()) cur.fail("trailing input after dim declaration");
      if (names.empty()) cur.fail("dim declaration names no indices");
      if (extent <= 0) cur.fail("dim extent must be positive");
      if (hi && *hi < extent) cur.fail("range upper bound below lower");
      for (const auto& n : names) {
        if (program.extents.contains(n) || program.ranges.contains(n)) {
          if (!hi && program.extents.contains(n) &&
              program.extents.at(n) == extent) {
            continue;  // benign re-declaration
          }
          throw ParseError(std::string(source_name), line_number,
                           "conflicting extents for index " + n);
        }
        if (hi) {
          program.ranges.emplace(n, ExtentRange{extent, *hi});
        } else {
          program.extents.emplace(n, extent);
        }
      }
      if (hi) program.range_groups.push_back(names);
      continue;
    }
    program.statements.push_back(
        parse_statement(line, source_name, line_number));
  }

  // Every index used by a statement must have a declared extent if any
  // dim declarations are present at all (otherwise extents are supplied by
  // the caller at evaluation time).
  if (!program.extents.empty() || !program.ranges.empty()) {
    for (const auto& s : program.statements) {
      for (const auto& ix : s.to_contraction().all_indices()) {
        if (!program.extents.contains(ix) && !program.ranges.contains(ix)) {
          throw ParseError(std::string(source_name), line_number,
                           "index " + ix + " has no dim declaration");
        }
      }
    }
  }
  return program;
}

}  // namespace barracuda::octopi
