// OCTOPI Algorithm 1: enumeration of algebraic transformations.
//
// Given an n-ary contraction, enumerate every way of evaluating it as a
// sequence of unary/binary contractions over temporaries, exploiting
// commutativity and associativity (the paper's "strength reduction").
// The cursor constraint (choose term ids a < b with b > c) makes each
// distinct association tree appear exactly once: for Eqn. (1)'s four-term
// product this yields exactly 15 variants, of which 6 attain the minimal
// O(N^4) operation count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/einsum.hpp"

namespace barracuda::octopi {

/// One enumerated evaluation order, lowered to a straight-line program of
/// contraction steps writing temporaries t<k> and finally the output.
struct Variant {
  tensor::ContractionProgram program;
  /// Total multiply-add flops under the extents supplied to enumerate().
  std::int64_t flops = 0;

  std::string to_string() const { return program.to_string(); }
};

/// Enumeration controls.
struct EnumerateOptions {
  /// Upper bound on variants produced (safety valve for large products;
  /// all benchmarks in this repo stay far below it).
  std::size_t max_variants = 100000;
  /// When false, only the direct (single-statement, no-temporary) variant
  /// is produced — the "strength reduction off" ablation.
  bool strength_reduction = true;
  /// Flops-ratio pruning (a Section VIII-style rule): drop variants whose
  /// operation count exceeds this multiple of the minimum.  0 disables.
  /// High-flop evaluation orders almost never win, so modest ratios
  /// shrink the variant set without hurting quality.
  double max_flops_ratio = 0;
};

/// Enumerate all evaluation orders of `stmt` (Algorithm 1).  `extents` is
/// used only for flop costing.  Variants are returned sorted by ascending
/// flops, ties broken by program text for determinism.
std::vector<Variant> enumerate_variants(const tensor::Contraction& stmt,
                                        const tensor::Extents& extents,
                                        const EnumerateOptions& options = {});

/// Number of variants attaining the minimum flop count.
std::size_t count_min_flop_variants(const std::vector<Variant>& variants);

}  // namespace barracuda::octopi
