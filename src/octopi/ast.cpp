#include "octopi/ast.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "support/error.hpp"
#include "support/str.hpp"

namespace barracuda::octopi {

tensor::Contraction Einsum_to_contraction_impl(const EinsumStatement& s) {
  tensor::Contraction c{s.output, s.factors, s.accumulate};
  if (!s.sum_indices.empty()) {
    // The explicit Sum list must be exactly the RHS-only indices, in any
    // order; anything else indicates a malformed program.
    std::set<std::string> declared(s.sum_indices.begin(),
                                   s.sum_indices.end());
    BARRACUDA_CHECK_MSG(declared.size() == s.sum_indices.size(),
                        "duplicate index in Sum list");
    auto inferred_vec = c.summed_indices();
    std::set<std::string> inferred(inferred_vec.begin(), inferred_vec.end());
    BARRACUDA_CHECK_MSG(
        declared == inferred,
        "Sum([" << join(s.sum_indices, " ")
                << "]) does not match the indices that appear only on the "
                   "right-hand side ["
                << join(inferred_vec, " ") << "]");
  }
  return c;
}

tensor::Contraction EinsumStatement::to_contraction() const {
  return Einsum_to_contraction_impl(*this);
}

std::string EinsumStatement::to_string() const {
  std::ostringstream os;
  os << output.to_string() << (accumulate ? " += " : " = ");
  const bool with_sum = !sum_indices.empty();
  if (with_sum) os << "Sum([" << join(sum_indices, " ") << "], ";
  for (std::size_t i = 0; i < factors.size(); ++i) {
    if (i) os << " * ";
    os << factors[i].to_string();
  }
  if (with_sum) os << ")";
  return os.str();
}

std::vector<tensor::Extents> OctopiProgram::specializations(
    std::size_t max_points) const {
  std::vector<tensor::Extents> out;
  if (ranges.empty()) {
    out.push_back(extents);
    return out;
  }
  // One axis per range group; all of a group's indices take the same
  // value at each grid point.
  struct Axis {
    std::vector<std::string> names;
    ExtentRange range;
  };
  std::vector<Axis> axes;
  for (const auto& group : range_groups) {
    BARRACUDA_CHECK(!group.empty());
    axes.push_back(Axis{group, ranges.at(group.front())});
  }
  std::vector<std::int64_t> cursor;
  for (const auto& axis : axes) cursor.push_back(axis.range.lo);
  while (out.size() < max_points) {
    tensor::Extents point = extents;
    for (std::size_t a = 0; a < axes.size(); ++a) {
      for (const auto& name : axes[a].names) point[name] = cursor[a];
    }
    out.push_back(std::move(point));
    std::size_t a = axes.size();
    bool done = true;
    while (a > 0) {
      --a;
      if (++cursor[a] <= axes[a].range.hi) {
        done = false;
        break;
      }
      cursor[a] = axes[a].range.lo;
    }
    if (done) break;
  }
  return out;
}

std::string OctopiProgram::to_string() const {
  std::ostringstream os;
  for (const auto& [index, extent] : extents) {
    os << "dim " << index << " = " << extent << "\n";
  }
  for (const auto& group : range_groups) {
    const ExtentRange& range = ranges.at(group.front());
    os << "dim " << join(group, " ") << " = " << range.lo << ".."
       << range.hi << "\n";
  }
  for (const auto& s : statements) os << s.to_string() << "\n";
  return os.str();
}

}  // namespace barracuda::octopi
