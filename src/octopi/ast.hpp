// OCTOPI abstract syntax: the user-facing tensor DSL of Figure 2(a).
//
//   dim i j k l m n = 10
//   V[i j k] = Sum([l m n], A[l k] * B[m j] * C[n i] * U[l m n])
//
// A statement is an (optionally accumulating) assignment of a product of
// tensor factors, with an explicit or inferred summation index list.
#pragma once

#include <string>
#include <vector>

#include "tensor/einsum.hpp"

namespace barracuda::octopi {

/// One DSL summation statement.
struct EinsumStatement {
  tensor::TensorRef output;
  /// Explicit Sum([...]) index list; empty means "infer from indices that
  /// appear on the right-hand side only".
  std::vector<std::string> sum_indices;
  std::vector<tensor::TensorRef> factors;
  bool accumulate = false;  // += vs =

  /// Lower to the index-inferred contraction form, validating that any
  /// explicit Sum list matches the RHS-only indices.
  tensor::Contraction to_contraction() const;

  std::string to_string() const;
};

/// Inclusive extent range from a `dim i = 8..16` declaration — Section
/// III: the user "can optionally specify the index dimension or a range
/// of dimensions so that the framework can specialize the optimizations
/// it applies for specific tensor sizes".
struct ExtentRange {
  std::int64_t lo = 0;
  std::int64_t hi = 0;

  bool operator==(const ExtentRange&) const = default;
};

/// A parsed OCTOPI input: dimension declarations plus statements.
struct OctopiProgram {
  tensor::Extents extents;                       // fixed dims
  std::map<std::string, ExtentRange> ranges;     // ranged dims
  /// Indices declared on the same ranged `dim` line vary together (one
  /// axis): `dim i j k l = 8..12` sweeps a single polynomial order, not
  /// a 4-dimensional grid.
  std::vector<std::vector<std::string>> range_groups;
  std::vector<EinsumStatement> statements;

  /// Concrete extent maps for every point of the range grid (cross
  /// product over ranged dims), capped at `max_points` (the lowest
  /// corners win when capping).  With no ranges returns just `extents`.
  std::vector<tensor::Extents> specializations(
      std::size_t max_points = 64) const;

  std::string to_string() const;
};

}  // namespace barracuda::octopi
