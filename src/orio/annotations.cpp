#include "orio/annotations.hpp"

#include <sstream>

#include "support/error.hpp"
#include "support/str.hpp"
#include "tcr/loopnest.hpp"

namespace barracuda::orio {
namespace {

std::string quoted_list(const std::vector<std::string>& items) {
  std::string out = "[";
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i) out += ",";
    out += "'" + items[i] + "'";
  }
  return out + "]";
}

}  // namespace

std::string emit_performance_params(
    const tcr::TcrProgram& program,
    const std::vector<tcr::KernelSpace>& spaces) {
  BARRACUDA_CHECK(spaces.size() == program.operations.size());
  std::ostringstream os;
  os << "def performance_params {\n";
  for (std::size_t k = 0; k < spaces.size(); ++k) {
    const tcr::KernelSpace& space = spaces[k];
    const std::string id = std::to_string(k + 1);
    os << "  param PERMUTE_" << id << "_TX[] = " << quoted_list(space.thread_x)
       << ";\n";
    os << "  param PERMUTE_" << id << "_TY[] = " << quoted_list(space.thread_y)
       << ";\n";
    os << "  param PERMUTE_" << id << "_BX[] = " << quoted_list(space.block_x)
       << ";\n";
    os << "  param PERMUTE_" << id << "_BY[] = " << quoted_list(space.block_y)
       << ";\n";
    os << "  param UF_" << id << "[] = [";
    for (std::size_t i = 0; i < space.unroll_factors.size(); ++i) {
      if (i) os << ",";
      os << space.unroll_factors[i];
    }
    os << "];\n";
  }
  os << "}\n";
  return os.str();
}

std::string emit_chill_recipe(const tcr::TcrProgram& program,
                              const chill::Recipe& recipe) {
  BARRACUDA_CHECK(recipe.size() == program.operations.size());
  std::ostringstream os;
  for (std::size_t k = 0; k < recipe.size(); ++k) {
    const tcr::KernelConfig& cfg = recipe[k];
    const std::string id = std::to_string(k + 1);
    os << "cuda(" << id << ",block={" << cfg.block_x << "," << cfg.block_y
       << "},thread={" << cfg.thread_x << "," << cfg.thread_y << "})\n";
    if (!cfg.sequential.empty()) {
      os << "permute(" << id << ",[" << join(cfg.sequential, ",") << "])\n";
    }
    if (cfg.scalar_replacement) {
      os << "registers(" << id << ",\""
         << program.operations[k].output.name << "\")\n";
    }
    if (!cfg.sequential.empty() && cfg.unroll > 1) {
      os << "unroll(" << id << ",\"" << cfg.sequential.back() << "\","
         << cfg.unroll << ")\n";
    }
    for (const auto& tensor_name : cfg.shared_tensors) {
      os << "shared(" << id << ",\"" << tensor_name << "\")\n";
    }
  }
  return os.str();
}

std::string emit_annotated_source(
    const tcr::TcrProgram& program,
    const std::vector<tcr::KernelSpace>& spaces,
    const chill::Recipe& recipe) {
  std::ostringstream os;
  os << emit_performance_params(program, spaces);
  os << "/*@ begin CHiLL (\n";
  std::istringstream recipe_lines(emit_chill_recipe(program, recipe));
  for (std::string line; std::getline(recipe_lines, line);) {
    os << "  " << line << "\n";
  }
  os << ") @*/\n";
  for (const auto& nest : tcr::build_loop_nests(program)) {
    os << nest.to_string();
  }
  os << "/*@ end @*/\n";
  return os.str();
}

}  // namespace barracuda::orio
