// Orio-style annotation emission (Figure 2(c) of the paper).
//
// Barracuda drives its search through Orio annotations: a
// `def performance_params` block declaring the PERMUTE/UF parameter
// domains, and a CHiLL transformation recipe (`cuda`, `permute`,
// `registers`, `unroll`) describing one concrete code variant.  This
// module renders both texts from the library's native structures so the
// generated artifacts can be inspected, diffed and (on a machine with the
// original toolchain) replayed through Orio + CUDA-CHiLL.
#pragma once

#include <string>
#include <vector>

#include "chill/lower.hpp"
#include "tcr/decision.hpp"
#include "tcr/program.hpp"

namespace barracuda::orio {

/// The `def performance_params { ... }` block for a whole program: one
/// PERMUTE_<k>_{TX,TY,BX,BY} parameter list per kernel plus UF_<k>
/// unroll domains, matching Figure 2(c).
std::string emit_performance_params(
    const tcr::TcrProgram& program,
    const std::vector<tcr::KernelSpace>& spaces);

/// The CHiLL recipe for one concrete configuration of kernel `k`
/// (1-based in the emitted text, as in the paper):
///   cuda(k, block={BX,BY}, thread={TX,TY})
///   permute(k, [seq order])
///   registers(k, "<output>")
///   unroll(k, "<inner>", UF)
std::string emit_chill_recipe(const tcr::TcrProgram& program,
                              const chill::Recipe& recipe);

/// The full annotation: params + `/*@ begin CHiLL (...) @*/` wrapper
/// around the recipe, followed by the sequential loop nests the
/// annotations transform (the bottom half of Figure 2(c)).
std::string emit_annotated_source(
    const tcr::TcrProgram& program,
    const std::vector<tcr::KernelSpace>& spaces,
    const chill::Recipe& recipe);

}  // namespace barracuda::orio
