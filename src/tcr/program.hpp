// TCR: the Tensor Contraction Representation of Figure 2(b).
//
// A TCR program is the unit of work handed from OCTOPI to the code
// generator: named tensor variables with explicit shapes plus a straight
// line of unary/binary contraction operations.  The text format mirrors
// the paper:
//
//   ex
//   access: linearize
//   define:
//   I = J = K = L = M = N = 10
//   variables:
//   A:(L,K)
//   temp1:(I,L,M)
//   operations:
//   temp1:(i,l,m) += C:(n,i)*U:(l,m,n)
//
// Dimension symbols are the upper-cased loop index names.
#pragma once

#include <string>
#include <vector>

#include "octopi/enumerate.hpp"
#include "tensor/einsum.hpp"

namespace barracuda::tcr {

/// A declared tensor variable: name plus the loop indices that give its
/// shape (extent of each index comes from the program's extents).
struct TcrVariable {
  std::string name;
  std::vector<std::string> indices;

  bool operator==(const TcrVariable&) const = default;
};

/// One TCR program: a lowered OCTOPI variant ready for code generation.
struct TcrProgram {
  std::string name = "ex";
  tensor::Extents extents;
  std::vector<TcrVariable> variables;   // inputs, temporaries, outputs
  std::vector<tensor::Contraction> operations;
  /// User-visible output tensors.  Empty means "the final operation's
  /// output" (the single-statement case); multi-statement programs list
  /// every statement's output so code generation transfers all of them.
  std::vector<std::string> outputs;

  bool operator==(const TcrProgram&) const = default;

  /// The variable declaration for `name`; throws if undeclared.
  const TcrVariable& variable(const std::string& name) const;
  bool has_variable(const std::string& name) const;

  /// Names written by some operation but never declared as program inputs:
  /// temporaries plus final outputs.
  std::vector<std::string> written_names() const;
  /// Names read before ever being written: the program's input tensors.
  std::vector<std::string> input_names() const;
  /// Output of the final operation.
  const std::string& output_name() const;
  /// All user-visible outputs (see `outputs`; falls back to the final
  /// operation's output).
  std::vector<std::string> output_names() const;
  bool is_output(const std::string& name) const;

  /// Total flops of all operations under the program extents.
  std::int64_t flops() const;

  /// Validate internal consistency (all refs declared, index extents known,
  /// ref index lists match declarations).  Throws on violation.
  void validate() const;

  std::string to_string() const;
};

/// Lower an OCTOPI variant to TCR, declaring every referenced tensor.
TcrProgram from_variant(const octopi::Variant& variant,
                        const tensor::Extents& extents,
                        const std::string& name = "ex");

/// Parse the Figure 2(b) text format.  Throws barracuda::ParseError.
TcrProgram parse_tcr(std::string_view text,
                     std::string_view source_name = "<tcr>");

}  // namespace barracuda::tcr
