#include "tcr/fusion.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "support/error.hpp"

namespace barracuda::tcr {
namespace {

bool contains(const std::vector<std::string>& v, const std::string& s) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

}  // namespace

std::string FusedGroup::to_string() const {
  std::ostringstream os;
  std::string indent;
  for (const auto& loop : shared) {
    os << indent << "for " << loop.index << " in [0," << loop.extent
       << ")  // fused\n";
    indent += "  ";
  }
  for (const auto& body : bodies) {
    std::string inner = indent;
    for (std::size_t d = shared.size(); d < body.loops.size(); ++d) {
      os << inner << "for " << body.loops[d].index << " in [0,"
         << body.loops[d].extent << ")\n";
      inner += "  ";
    }
    os << inner << body.stmt.to_string() << "\n";
  }
  return os.str();
}

std::vector<std::string> fusible_indices(const LoopNest& producer,
                                         const LoopNest& consumer) {
  std::vector<std::string> out;
  // Temporaries flowing producer -> consumer.
  std::vector<const tensor::TensorRef*> flows;
  for (const auto& in : consumer.stmt.inputs) {
    if (in.name == producer.stmt.output.name) flows.push_back(&in);
  }
  for (const auto& loop : producer.loops) {
    const std::string& ix = loop.index;
    if (!producer.is_parallel(ix) || !consumer.is_parallel(ix)) continue;
    if (std::none_of(consumer.loops.begin(), consumer.loops.end(),
                     [&](const Loop& l) { return l.index == ix; })) {
      continue;
    }
    bool carried_by_all_flows = std::all_of(
        flows.begin(), flows.end(), [&](const tensor::TensorRef* t) {
          return contains(t->indices, ix);
        });
    if (carried_by_all_flows) out.push_back(ix);
  }
  return out;
}

LoopNest reorder_outer(const LoopNest& nest,
                       const std::vector<std::string>& outer) {
  LoopNest result;
  result.stmt = nest.stmt;
  for (const auto& ix : outer) {
    auto it = std::find_if(nest.loops.begin(), nest.loops.end(),
                           [&](const Loop& l) { return l.index == ix; });
    BARRACUDA_CHECK_MSG(it != nest.loops.end(),
                        "reorder_outer: no loop " << ix);
    BARRACUDA_CHECK_MSG(nest.is_parallel(ix),
                        "reorder_outer: " << ix << " is not parallel");
    result.loops.push_back(*it);
  }
  for (const auto& loop : nest.loops) {
    if (!contains(outer, loop.index)) result.loops.push_back(loop);
  }
  return result;
}

std::vector<FusedGroup> fuse_program(const TcrProgram& program) {
  std::vector<LoopNest> nests = build_loop_nests(program);
  std::vector<FusedGroup> groups;
  for (const auto& nest : nests) {
    if (!groups.empty()) {
      FusedGroup& g = groups.back();
      // Candidate shared indices: the current shared set intersected with
      // what is fusible against every member of the group (data flows are
      // producer->consumer from each member to the new nest).
      std::vector<std::string> shared;
      for (const auto& loop : g.shared) {
        bool ok = std::all_of(
            g.bodies.begin(), g.bodies.end(), [&](const LoopNest& body) {
              auto f = fusible_indices(body, nest);
              return contains(f, loop.index);
            });
        if (ok) shared.push_back(loop.index);
      }
      if (!shared.empty()) {
        if (shared.size() != g.shared.size()) {
          // Shrink the group's shared prefix to the surviving indices.
          std::vector<Loop> kept;
          for (const auto& loop : g.shared) {
            if (contains(shared, loop.index)) kept.push_back(loop);
          }
          g.shared = kept;
          for (auto& body : g.bodies) body = reorder_outer(body, shared);
        }
        g.bodies.push_back(reorder_outer(nest, shared));
        continue;
      }
    }
    // Start a new group seeded with this nest's parallel loops as the
    // (maximal) tentative shared set; it shrinks as members join.
    FusedGroup g;
    for (const auto& ix : nest.parallel_indices()) {
      g.shared.push_back(Loop{ix, nest.extent_of(ix)});
    }
    g.bodies.push_back(
        reorder_outer(nest, [&] {
          std::vector<std::string> idx;
          for (const auto& l : g.shared) idx.push_back(l.index);
          return idx;
        }()));
    groups.push_back(std::move(g));
  }
  return groups;
}

std::int64_t unfused_temp_elements(const TcrProgram& program) {
  std::int64_t total = 0;
  std::set<std::string> counted;
  for (const auto& op : program.operations) {
    const std::string& name = op.output.name;
    if (program.is_output(name) || counted.contains(name)) continue;
    counted.insert(name);
    total += tensor::shape_of(op.output, program.extents).size();
  }
  return total;
}

std::int64_t fused_temp_elements(const TcrProgram& program,
                                 const std::vector<FusedGroup>& groups) {
  std::int64_t total = 0;
  for (const auto& g : groups) {
    std::set<std::string> fused_idx;
    for (const auto& loop : g.shared) fused_idx.insert(loop.index);
    // Temporaries both written and read inside this group shrink to the
    // slice not indexed by the fused loops.
    std::set<std::string> written;
    for (const auto& body : g.bodies) {
      for (const auto& in : body.stmt.inputs) {
        if (!written.contains(in.name)) continue;
        std::int64_t slice = 1;
        for (const auto& ix : in.indices) {
          if (!fused_idx.contains(ix)) slice *= program.extents.at(ix);
        }
        total += slice;
      }
      if (!program.is_output(body.stmt.output.name)) {
        written.insert(body.stmt.output.name);
      }
    }
    // Temporaries escaping the group still materialize fully.
    for (const auto& name : written) {
      bool consumed_later = false;
      for (const auto& other : groups) {
        if (&other == &g) continue;
        for (const auto& body : other.bodies) {
          for (const auto& in : body.stmt.inputs) {
            consumed_later |= (in.name == name);
          }
        }
      }
      if (consumed_later) {
        for (const auto& op : program.operations) {
          if (op.output.name == name) {
            total += tensor::shape_of(op.output, program.extents).size();
            break;
          }
        }
      }
    }
  }
  return total;
}

}  // namespace barracuda::tcr
