#include "tcr/loopnest.hpp"

#include <algorithm>
#include <sstream>

#include "support/error.hpp"

namespace barracuda::tcr {

std::vector<std::string> LoopNest::parallel_indices() const {
  std::vector<std::string> out;
  for (const auto& loop : loops) {
    if (is_parallel(loop.index)) out.push_back(loop.index);
  }
  return out;
}

std::vector<std::string> LoopNest::reduction_indices() const {
  std::vector<std::string> out;
  for (const auto& loop : loops) {
    if (!is_parallel(loop.index)) out.push_back(loop.index);
  }
  return out;
}

bool LoopNest::is_parallel(const std::string& index) const {
  const auto& lhs = stmt.output.indices;
  return std::find(lhs.begin(), lhs.end(), index) != lhs.end();
}

std::int64_t LoopNest::extent_of(const std::string& index) const {
  for (const auto& loop : loops) {
    if (loop.index == index) return loop.extent;
  }
  throw InternalError("loop nest has no loop for index " + index);
}

std::string LoopNest::to_string() const {
  std::ostringstream os;
  std::string indent;
  for (const auto& loop : loops) {
    os << indent << "for " << loop.index << " in [0," << loop.extent << ")"
       << (is_parallel(loop.index) ? "  // parallel" : "  // reduction")
       << "\n";
    indent += "  ";
  }
  os << indent << stmt.to_string() << "\n";
  return os.str();
}

std::vector<LoopNest> build_loop_nests(const TcrProgram& program) {
  program.validate();
  std::vector<LoopNest> nests;
  nests.reserve(program.operations.size());
  for (const auto& op : program.operations) {
    LoopNest nest;
    nest.stmt = op;
    for (const auto& ix : op.output.indices) {
      nest.loops.push_back(Loop{ix, program.extents.at(ix)});
    }
    for (const auto& ix : op.summed_indices()) {
      nest.loops.push_back(Loop{ix, program.extents.at(ix)});
    }
    nests.push_back(std::move(nest));
  }
  return nests;
}

bool is_contiguous(const tensor::TensorRef& ref,
                   const std::vector<Loop>& loops) {
  // Position of each of the reference's indices in the loop order; the
  // reference is contiguous iff these positions are strictly increasing
  // (every index must be a loop index).
  std::int64_t prev = -1;
  for (const auto& ix : ref.indices) {
    auto it = std::find_if(loops.begin(), loops.end(),
                           [&](const Loop& l) { return l.index == ix; });
    if (it == loops.end()) return false;
    std::int64_t pos = it - loops.begin();
    if (pos <= prev) return false;
    prev = pos;
  }
  return true;
}

std::vector<tensor::TensorRef> contiguous_refs(const LoopNest& nest) {
  std::vector<tensor::TensorRef> out;
  if (is_contiguous(nest.stmt.output, nest.loops)) {
    out.push_back(nest.stmt.output);
  }
  for (const auto& in : nest.stmt.inputs) {
    if (is_contiguous(in, nest.loops)) out.push_back(in);
  }
  return out;
}

std::vector<tensor::TensorRef> noncontiguous_refs(const LoopNest& nest) {
  std::vector<tensor::TensorRef> out;
  if (!is_contiguous(nest.stmt.output, nest.loops)) {
    out.push_back(nest.stmt.output);
  }
  for (const auto& in : nest.stmt.inputs) {
    if (!is_contiguous(in, nest.loops)) out.push_back(in);
  }
  return out;
}

}  // namespace barracuda::tcr
