#include "tcr/program.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <sstream>

#include "support/error.hpp"
#include "support/str.hpp"

namespace barracuda::tcr {
namespace {

std::string upper(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::toupper(c));
  return out;
}

std::string lower(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::tolower(c));
  return out;
}

}  // namespace

const TcrVariable& TcrProgram::variable(const std::string& name) const {
  for (const auto& v : variables) {
    if (v.name == name) return v;
  }
  throw InternalError("undeclared TCR variable: " + name);
}

bool TcrProgram::has_variable(const std::string& name) const {
  return std::any_of(variables.begin(), variables.end(),
                     [&](const TcrVariable& v) { return v.name == name; });
}

std::vector<std::string> TcrProgram::written_names() const {
  std::vector<std::string> out;
  for (const auto& op : operations) {
    if (std::find(out.begin(), out.end(), op.output.name) == out.end()) {
      out.push_back(op.output.name);
    }
  }
  return out;
}

std::vector<std::string> TcrProgram::input_names() const {
  std::set<std::string> written;
  std::vector<std::string> inputs;
  for (const auto& op : operations) {
    for (const auto& in : op.inputs) {
      if (!written.contains(in.name) &&
          std::find(inputs.begin(), inputs.end(), in.name) == inputs.end()) {
        inputs.push_back(in.name);
      }
    }
    written.insert(op.output.name);
  }
  return inputs;
}

const std::string& TcrProgram::output_name() const {
  BARRACUDA_CHECK(!operations.empty());
  return operations.back().output.name;
}

std::vector<std::string> TcrProgram::output_names() const {
  if (!outputs.empty()) return outputs;
  return {output_name()};
}

bool TcrProgram::is_output(const std::string& name) const {
  auto names = output_names();
  return std::find(names.begin(), names.end(), name) != names.end();
}

std::int64_t TcrProgram::flops() const {
  std::int64_t total = 0;
  for (const auto& op : operations) total += tensor::flop_count(op, extents);
  return total;
}

void TcrProgram::validate() const {
  BARRACUDA_CHECK_MSG(!operations.empty(), "TCR program has no operations");
  for (const auto& v : variables) {
    for (const auto& ix : v.indices) {
      BARRACUDA_CHECK_MSG(extents.contains(ix),
                          "variable " << v.name << " uses index " << ix
                                      << " with no extent");
    }
  }
  auto check_ref = [&](const tensor::TensorRef& ref) {
    const TcrVariable& v = variable(ref.name);  // throws if undeclared
    BARRACUDA_CHECK_MSG(v.indices.size() == ref.indices.size(),
                        "rank mismatch for " << ref.name);
    for (std::size_t d = 0; d < ref.indices.size(); ++d) {
      const auto& ix = ref.indices[d];
      BARRACUDA_CHECK_MSG(extents.contains(ix),
                          "reference to " << ref.name << " uses index " << ix
                                          << " with no extent");
      // A tensor may be referenced under different index names than its
      // declaration (e.g. the same derivative matrix contracted along
      // different modes), but the per-dimension extents must agree.
      BARRACUDA_CHECK_MSG(
          extents.at(ix) == extents.at(v.indices[d]),
          "extent mismatch in dimension " << d << " of " << ref.name);
    }
  };
  for (const auto& op : operations) {
    check_ref(op.output);
    BARRACUDA_CHECK_MSG(!op.inputs.empty(),
                        "operation with no inputs: " << op.to_string());
    for (const auto& in : op.inputs) check_ref(in);
  }
  auto written = written_names();
  for (const auto& out : outputs) {
    BARRACUDA_CHECK_MSG(
        std::find(written.begin(), written.end(), out) != written.end(),
        "declared output " << out << " is never written");
  }
}

std::string TcrProgram::to_string() const {
  std::ostringstream os;
  os << name << "\n";
  os << "access: linearize\n";
  os << "define:\n";
  // Group indices by extent so the line reads like the paper's
  // "N = J = M = I = L = K = 10".
  std::map<std::int64_t, std::vector<std::string>> by_extent;
  for (const auto& [ix, extent] : extents) {
    by_extent[extent].push_back(upper(ix));
  }
  for (const auto& [extent, names] : by_extent) {
    for (std::size_t i = 0; i < names.size(); ++i) {
      os << names[i] << " = ";
    }
    os << extent << "\n";
  }
  os << "variables:\n";
  for (const auto& v : variables) {
    os << v.name << ":(";
    for (std::size_t i = 0; i < v.indices.size(); ++i) {
      if (i) os << ",";
      os << upper(v.indices[i]);
    }
    os << ")\n";
  }
  os << "operations:\n";
  for (const auto& op : operations) {
    os << op.output.name << ":(" << join(op.output.indices, ",") << ")"
       << (op.accumulate ? " += " : " = ");
    for (std::size_t i = 0; i < op.inputs.size(); ++i) {
      if (i) os << "*";
      os << op.inputs[i].name << ":(" << join(op.inputs[i].indices, ",")
         << ")";
    }
    os << "\n";
  }
  return os.str();
}

TcrProgram from_variant(const octopi::Variant& variant,
                        const tensor::Extents& extents,
                        const std::string& name) {
  TcrProgram p;
  p.name = name;
  p.operations = variant.program.steps;
  BARRACUDA_CHECK_MSG(!p.operations.empty(), "empty OCTOPI variant");

  // Collect the extents actually used, requiring each to be known.
  for (const auto& op : p.operations) {
    for (const auto& ix : op.all_indices()) {
      auto it = extents.find(ix);
      BARRACUDA_CHECK_MSG(it != extents.end(),
                          "no extent for index " << ix);
      p.extents[ix] = it->second;
    }
  }

  // Declare every referenced tensor once, inputs first (in first-use
  // order), then temporaries/outputs in definition order.
  auto declare = [&](const tensor::TensorRef& ref) {
    if (!p.has_variable(ref.name)) {
      p.variables.push_back(TcrVariable{ref.name, ref.indices});
    }
  };
  std::set<std::string> written;
  for (const auto& op : p.operations) {
    for (const auto& in : op.inputs) {
      if (!written.contains(in.name)) declare(in);
    }
    written.insert(op.output.name);
  }
  for (const auto& op : p.operations) declare(op.output);

  p.validate();
  return p;
}

namespace {

/// Parse "name:(i,l,m)" into a TensorRef with lower-cased indices.
tensor::TensorRef parse_shaped_ref(std::string_view text,
                                   std::string_view source, int line) {
  auto fail = [&](const std::string& msg) -> tensor::TensorRef {
    throw ParseError(source, line, msg + ": " + std::string(text));
  };
  auto colon = text.find(':');
  if (colon == std::string_view::npos) return fail("expected ':' in reference");
  tensor::TensorRef ref;
  ref.name = std::string(trim(text.substr(0, colon)));
  if (ref.name.empty()) return fail("empty tensor name");
  std::string_view rest = trim(text.substr(colon + 1));
  if (rest.size() < 2 || rest.front() != '(' || rest.back() != ')') {
    return fail("expected '(indices)'");
  }
  std::string_view inner = rest.substr(1, rest.size() - 2);
  if (!trim(inner).empty()) {
    for (const auto& part : split(inner, ',')) {
      std::string ix = lower(std::string(trim(part)));
      if (ix.empty()) return fail("empty index");
      ref.indices.push_back(ix);
    }
  }
  return ref;
}

}  // namespace

TcrProgram parse_tcr(std::string_view text, std::string_view source_name) {
  TcrProgram p;
  enum class Section { kHeader, kDefine, kVariables, kOperations };
  Section section = Section::kHeader;
  bool saw_name = false;
  int line_number = 0;

  for (const auto& raw : split(text, '\n')) {
    ++line_number;
    std::string_view line = trim(raw);
    if (auto hash = line.find('#'); hash != std::string_view::npos) {
      line = trim(line.substr(0, hash));
    }
    if (line.empty()) continue;

    if (line == "define:") { section = Section::kDefine; continue; }
    if (line == "variables:") { section = Section::kVariables; continue; }
    if (line == "operations:") { section = Section::kOperations; continue; }
    if (starts_with(line, "access:")) {
      std::string_view mode = trim(line.substr(7));
      if (mode != "linearize") {
        throw ParseError(source_name, line_number,
                         "unsupported access mode: " + std::string(mode));
      }
      continue;
    }

    switch (section) {
      case Section::kHeader: {
        if (saw_name) {
          throw ParseError(source_name, line_number,
                           "unexpected line before define:");
        }
        p.name = std::string(line);
        saw_name = true;
        break;
      }
      case Section::kDefine: {
        // "N = J = M = I = L = K = 10": all names share the final value.
        auto parts = split(line, '=');
        if (parts.size() < 2) {
          throw ParseError(source_name, line_number,
                           "malformed define line");
        }
        std::int64_t extent = 0;
        try {
          extent = std::stoll(std::string(trim(parts.back())));
        } catch (const std::exception&) {
          throw ParseError(source_name, line_number,
                           "define line does not end in an integer");
        }
        if (extent <= 0) {
          throw ParseError(source_name, line_number,
                           "extent must be positive");
        }
        for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
          std::string ix = lower(std::string(trim(parts[i])));
          if (ix.empty()) {
            throw ParseError(source_name, line_number, "empty dim name");
          }
          p.extents[ix] = extent;
        }
        break;
      }
      case Section::kVariables: {
        tensor::TensorRef ref =
            parse_shaped_ref(line, source_name, line_number);
        p.variables.push_back(TcrVariable{ref.name, ref.indices});
        break;
      }
      case Section::kOperations: {
        bool accumulate = true;
        auto pos = line.find("+=");
        std::size_t op_len = 2;
        if (pos == std::string_view::npos) {
          pos = line.find('=');
          op_len = 1;
          accumulate = false;
        }
        if (pos == std::string_view::npos) {
          throw ParseError(source_name, line_number,
                           "operation missing '=' or '+='");
        }
        tensor::Contraction op;
        op.accumulate = accumulate;
        op.output = parse_shaped_ref(trim(line.substr(0, pos)), source_name,
                                     line_number);
        for (const auto& factor : split(line.substr(pos + op_len), '*')) {
          op.inputs.push_back(
              parse_shaped_ref(trim(factor), source_name, line_number));
        }
        p.operations.push_back(std::move(op));
        break;
      }
    }
  }

  try {
    p.validate();
  } catch (const Error& e) {
    throw ParseError(source_name, line_number, e.what());
  }
  return p;
}

}  // namespace barracuda::tcr
