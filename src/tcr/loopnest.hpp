// Loop nests generated from TCR operations, plus the tensor-specialized
// analyses of Section IV: dependence (parallel vs. reduction loops) and
// the "contiguous tensor" memory-order analysis.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tcr/program.hpp"

namespace barracuda::tcr {

/// One loop of a nest: an index with its (constant) trip count.
struct Loop {
  std::string index;
  std::int64_t extent = 0;

  bool operator==(const Loop&) const = default;
};

/// A perfect loop nest evaluating one contraction operation.  `loops` is
/// ordered outermost-first; the default order is output indices (in output
/// layout order) followed by reduction indices.
struct LoopNest {
  std::vector<Loop> loops;
  tensor::Contraction stmt;

  /// Loop indices carrying no dependence: those present on the LHS.
  /// (Section IV: "Dependences can be carried only by loops with indices
  /// present in the right-hand side but not in the left-hand side.")
  std::vector<std::string> parallel_indices() const;
  /// Loop indices carrying the reduction (RHS-only).
  std::vector<std::string> reduction_indices() const;
  bool is_parallel(const std::string& index) const;

  std::int64_t extent_of(const std::string& index) const;

  /// Render as C-like pseudocode (for tests, docs and debugging).
  std::string to_string() const;
};

/// Build the default loop nest for every operation of a TCR program.
std::vector<LoopNest> build_loop_nests(const TcrProgram& program);

/// A tensor reference is *contiguous* under a loop order if its indices,
/// read left-to-right (slowest to fastest dimension, row-major), appear in
/// the same relative order as the loops — i.e. the innermost loops touch
/// the fastest-varying dimensions, so consecutive iterations access
/// consecutive memory.
bool is_contiguous(const tensor::TensorRef& ref,
                   const std::vector<Loop>& loops);

/// References (output first, then inputs) that are contiguous in `nest`.
std::vector<tensor::TensorRef> contiguous_refs(const LoopNest& nest);
/// References that are not contiguous in `nest`.
std::vector<tensor::TensorRef> noncontiguous_refs(const LoopNest& nest);

}  // namespace barracuda::tcr
