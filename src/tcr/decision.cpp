#include "tcr/decision.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "support/error.hpp"
#include "support/str.hpp"

namespace barracuda::tcr {
namespace {

bool contains(const std::vector<std::string>& v, const std::string& s) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

void push_unique(std::vector<std::string>& v, const std::string& s) {
  if (!contains(v, s)) v.push_back(s);
}

/// All permutations of `items` when small, else just the canonical and
/// reversed orders (keeps rank-6 kernels' spaces enumerable).
std::vector<std::vector<std::string>> loop_orders(
    std::vector<std::string> items, bool permute) {
  std::vector<std::vector<std::string>> orders;
  if (!permute || items.size() <= 1) {
    orders.push_back(std::move(items));
    return orders;
  }
  if (items.size() > 4) {
    std::vector<std::string> reversed(items.rbegin(), items.rend());
    orders.push_back(std::move(items));
    orders.push_back(std::move(reversed));
    return orders;
  }
  std::vector<std::string> sorted = items;
  std::sort(sorted.begin(), sorted.end());
  do {
    orders.push_back(sorted);
  } while (std::next_permutation(sorted.begin(), sorted.end()));
  return orders;
}

}  // namespace

std::vector<std::string> KernelConfig::assigned_indices() const {
  std::vector<std::string> out;
  for (const auto& ix : {thread_x, thread_y, block_x, block_y}) {
    if (ix != kUnused) out.push_back(ix);
  }
  return out;
}

std::string KernelConfig::to_string() const {
  std::ostringstream os;
  os << "cuda(block={" << block_x << "," << block_y << "},thread={"
     << thread_x << "," << thread_y << "}) seq=[" << join(sequential, ",")
     << "] unroll=" << unroll
     << (scalar_replacement ? " registers(out)" : "");
  if (!shared_tensors.empty()) {
    os << " shared(" << join(shared_tensors, ",") << ")";
  }
  return os.str();
}

std::int64_t ref_footprint_elements(const LoopNest& nest,
                                    const tensor::TensorRef& ref) {
  std::int64_t elems = 1;
  for (const auto& ix : ref.indices) elems *= nest.extent_of(ix);
  return elems;
}

std::string KernelSpace::to_string() const {
  std::ostringstream os;
  os << "param TX[] = [" << join(thread_x, ",") << "];\n";
  os << "param TY[] = [" << join(thread_y, ",") << "];\n";
  os << "param BX[] = [" << join(block_x, ",") << "];\n";
  os << "param BY[] = [" << join(block_y, ",") << "];\n";
  os << "param UF[] = [";
  for (std::size_t i = 0; i < unroll_factors.size(); ++i) {
    if (i) os << ",";
    os << unroll_factors[i];
  }
  os << "];\n";
  return os.str();
}

KernelSpace derive_space(const LoopNest& nest,
                         const DecisionOptions& options) {
  KernelSpace space;
  space.permute_sequential = options.permute_sequential;
  const std::vector<std::string> parallel = nest.parallel_indices();

  // Degenerate scalar-output operations (full reductions) have no
  // parallel loop to put on the grid: they run as a single-thread kernel
  // with every loop sequential.  Rare, but OCTOPI variants can contain
  // scalar intermediates.
  if (parallel.empty()) {
    space.thread_x = {kUnused};
    space.thread_y = {kUnused};
    space.block_x = {kUnused};
    space.block_y = {kUnused};
    std::int64_t max_extent = 1;
    for (const auto& loop : nest.loops) {
      max_extent = std::max(max_extent, loop.extent);
    }
    int hi = static_cast<int>(
        std::min<std::int64_t>(options.max_unroll, max_extent));
    for (int f = 1; f <= hi; ++f) space.unroll_factors.push_back(f);
    return space;
  }

  // ThreadX: parallel loops such that adjacent threads touch adjacent
  // elements of some input tensor — i.e. the loop index occupies the
  // fastest-varying (last) dimension of an input reference.
  if (options.coalescing_aware) {
    for (const auto& in : nest.stmt.inputs) {
      if (in.indices.empty()) continue;
      const std::string& last = in.indices.back();
      if (nest.is_parallel(last)) push_unique(space.thread_x, last);
    }
    // The accumulated output is read-modified-written, so its fastest
    // dimension coalesces too.
    if (!nest.stmt.output.indices.empty()) {
      const std::string& last = nest.stmt.output.indices.back();
      if (nest.is_parallel(last)) push_unique(space.thread_x, last);
    }
    // Degenerate nests (no coalescible parallel index) fall back on every
    // parallel loop so the kernel still has a ThreadX choice.
    if (space.thread_x.empty()) space.thread_x = parallel;
  } else {
    space.thread_x = parallel;
  }

  // Pool for ThreadY/BlockX/BlockY: parallel indices of contiguous
  // tensors from innermost to outermost; if that yields fewer than four,
  // continue with the non-contiguous tensors from outermost to innermost.
  std::vector<std::string> pool;
  for (const auto& ref : contiguous_refs(nest)) {
    for (auto it = ref.indices.rbegin(); it != ref.indices.rend(); ++it) {
      if (nest.is_parallel(*it)) push_unique(pool, *it);
    }
  }
  if (pool.size() < 4) {
    for (const auto& ref : noncontiguous_refs(nest)) {
      for (const auto& ix : ref.indices) {
        if (nest.is_parallel(ix)) push_unique(pool, ix);
      }
    }
  }
  if (pool.empty()) pool = parallel;

  space.thread_y = pool;
  push_unique(space.thread_y, kUnused);
  space.block_x = pool;
  // BlockX may also degenerate to unused (a single-block launch with the
  // leftover parallel loops sequential inside the threads); without this
  // the space collapses when ThreadX/ThreadY consume the whole pool.
  push_unique(space.block_x, kUnused);
  space.block_y = pool;
  push_unique(space.block_y, kUnused);

  // Shared-memory staging candidates: inputs small enough to stage whole
  // and reused across a block's threads (some parallel loop index is
  // absent from the reference, so distinct threads touch the same data).
  if (options.use_shared_memory) {
    for (const auto& in : nest.stmt.inputs) {
      if (contains(space.shared_candidates, in.name)) continue;
      std::int64_t bytes = ref_footprint_elements(nest, in) * 8;
      if (bytes > options.shared_memory_bytes) continue;
      bool reused = std::any_of(
          parallel.begin(), parallel.end(), [&](const std::string& ix) {
            return !contains(in.indices, ix);
          });
      if (reused && space.shared_candidates.size() < 3) {
        space.shared_candidates.push_back(in.name);
      }
    }
  }

  // Unroll factors 1..min(max_unroll, largest loop extent).
  std::int64_t max_extent = 1;
  for (const auto& loop : nest.loops) {
    max_extent = std::max(max_extent, loop.extent);
  }
  int hi = static_cast<int>(
      std::min<std::int64_t>(options.max_unroll, max_extent));
  for (int f = 1; f <= hi; ++f) space.unroll_factors.push_back(f);
  return space;
}

namespace {

/// Invoke `fn(config)` for every valid configuration.
template <typename Fn>
void for_each_config(const LoopNest& nest, const KernelSpace& space,
                     Fn&& fn) {
  for (const auto& tx : space.thread_x) {
    for (const auto& ty : space.thread_y) {
      if (ty != kUnused && ty == tx) continue;
      for (const auto& bx : space.block_x) {
        if (bx != kUnused && (bx == tx || bx == ty)) continue;
        for (const auto& by : space.block_y) {
          if (by != kUnused && (by == tx || by == ty || by == bx)) continue;
          std::vector<std::string> assigned;
          for (const auto& ix : {tx, ty, bx, by}) {
            if (ix != kUnused) assigned.push_back(ix);
          }
          std::vector<std::string> leftover;
          for (const auto& loop : nest.loops) {
            if (!contains(assigned, loop.index)) leftover.push_back(loop.index);
          }
          for (auto& order :
               loop_orders(leftover, space.permute_sequential)) {
            for (int uf : space.unroll_factors) {
              // Unrolling targets the innermost sequential loop; skip
              // factors exceeding its trip count (they alias lower ones).
              if (!order.empty() &&
                  uf > nest.extent_of(order.back())) {
                continue;
              }
              if (order.empty() && uf != 1) continue;
              KernelConfig cfg;
              cfg.thread_x = tx;
              cfg.thread_y = ty;
              cfg.block_x = bx;
              cfg.block_y = by;
              cfg.sequential = order;
              cfg.unroll = uf;
              cfg.scalar_replacement = true;
              // Every subset of the staging candidates (empty first).
              const std::size_t subsets =
                  std::size_t{1} << space.shared_candidates.size();
              for (std::size_t mask = 0; mask < subsets; ++mask) {
                cfg.shared_tensors.clear();
                for (std::size_t c = 0; c < space.shared_candidates.size();
                     ++c) {
                  if (mask & (std::size_t{1} << c)) {
                    cfg.shared_tensors.push_back(space.shared_candidates[c]);
                  }
                }
                fn(cfg);
              }
            }
          }
        }
      }
    }
  }
}

}  // namespace

std::vector<KernelConfig> enumerate_configs(const LoopNest& nest,
                                            const KernelSpace& space) {
  std::vector<KernelConfig> out;
  for_each_config(nest, space, [&](const KernelConfig& cfg) {
    out.push_back(cfg);
  });
  return out;
}

std::int64_t space_size(const LoopNest& nest, const KernelSpace& space) {
  std::int64_t n = 0;
  for_each_config(nest, space, [&](const KernelConfig&) { ++n; });
  return n;
}

KernelConfig optimized_openacc_config(const LoopNest& nest) {
  KernelSpace space = derive_space(nest);
  KernelConfig cfg;
  // The Barracuda-derived decomposition: coalesce the output write when
  // possible (the output is the dominant stream for these kernels),
  // otherwise the first input-driven candidate; then fill ThreadY/BlockX/
  // BlockY from the contiguity-ordered pool.
  cfg.thread_x = space.thread_x.front();
  if (!nest.stmt.output.indices.empty()) {
    const std::string& out_last = nest.stmt.output.indices.back();
    if (contains(space.thread_x, out_last)) cfg.thread_x = out_last;
  }
  auto next_from = [&](const std::vector<std::string>& pool,
                       std::string& slot) {
    for (const auto& ix : pool) {
      if (ix == kUnused) continue;
      if (ix == cfg.thread_x || ix == cfg.thread_y || ix == cfg.block_x ||
          ix == cfg.block_y) {
        continue;
      }
      slot = ix;
      return;
    }
  };
  next_from(space.thread_y, cfg.thread_y);
  next_from(space.block_x, cfg.block_x);
  next_from(space.block_y, cfg.block_y);
  for (const auto& loop : nest.loops) {
    if (loop.index != cfg.thread_x && loop.index != cfg.thread_y &&
        loop.index != cfg.block_x && loop.index != cfg.block_y) {
      cfg.sequential.push_back(loop.index);
    }
  }
  cfg.unroll = 1;
  cfg.scalar_replacement = true;  // "performs scalar replacement on the output"
  validate_config(nest, cfg);
  return cfg;
}

KernelConfig naive_openacc_config(const LoopNest& nest) {
  const std::vector<std::string> parallel = nest.parallel_indices();
  KernelConfig cfg;
  if (!parallel.empty()) {
    cfg.block_x = parallel.front();  // gang on the outermost parallel loop
    if (parallel.size() > 1) cfg.thread_x = parallel[1];  // vector next
  }
  for (const auto& loop : nest.loops) {
    if (loop.index != cfg.block_x && loop.index != cfg.thread_x) {
      cfg.sequential.push_back(loop.index);
    }
  }
  cfg.unroll = 1;
  cfg.scalar_replacement = false;  // private() does not registerize
  validate_config(nest, cfg);
  return cfg;
}

void validate_config(const LoopNest& nest, const KernelConfig& config) {
  std::set<std::string> seen;
  for (const auto& ix : config.assigned_indices()) {
    BARRACUDA_CHECK_MSG(nest.is_parallel(ix),
                        "grid index " << ix << " is not a parallel loop");
    BARRACUDA_CHECK_MSG(seen.insert(ix).second,
                        "grid index " << ix << " assigned twice");
  }
  for (const auto& ix : config.sequential) {
    BARRACUDA_CHECK_MSG(!seen.contains(ix),
                        "loop " << ix << " both grid-mapped and sequential");
    seen.insert(ix);
  }
  for (const auto& loop : nest.loops) {
    BARRACUDA_CHECK_MSG(seen.contains(loop.index),
                        "loop " << loop.index << " not covered by config");
  }
  BARRACUDA_CHECK(seen.size() == nest.loops.size());
  BARRACUDA_CHECK(config.unroll >= 1);
  std::set<std::string> shared_seen;
  for (const auto& name : config.shared_tensors) {
    bool is_input = std::any_of(
        nest.stmt.inputs.begin(), nest.stmt.inputs.end(),
        [&](const tensor::TensorRef& in) { return in.name == name; });
    BARRACUDA_CHECK_MSG(is_input,
                        "shared tensor " << name << " is not an input");
    BARRACUDA_CHECK_MSG(shared_seen.insert(name).second,
                        "shared tensor " << name << " listed twice");
  }
  if (!config.sequential.empty()) {
    BARRACUDA_CHECK_MSG(
        config.unroll <= nest.extent_of(config.sequential.back()),
        "unroll factor exceeds innermost sequential trip count");
  } else {
    BARRACUDA_CHECK(config.unroll == 1);
  }
}

}  // namespace barracuda::tcr
