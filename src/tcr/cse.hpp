// Common-subexpression elimination across the operations of a TCR
// program — the optimization of the TCE lineage the paper builds on
// (Hartono et al., "Identifying cost-effective common subexpressions to
// reduce operation count in tensor contraction evaluations").
//
// Two operations compute the same value when they have identical input
// reference lists (up to commutativity of the product) and the same
// output index tuple, and their outputs start from zero (temporaries).
// The second computation is dropped and its uses redirected to the first.
#pragma once

#include "tcr/program.hpp"

namespace barracuda::tcr {

struct CseResult {
  TcrProgram program;
  /// Operations removed and flops saved relative to the input program.
  std::size_t eliminated_ops = 0;
  std::int64_t saved_flops = 0;
};

/// Apply CSE.  Only temporaries (written once, not the program output)
/// are candidates; semantics are preserved exactly.
CseResult eliminate_common_subexpressions(const TcrProgram& program);

}  // namespace barracuda::tcr
