#include "tcr/cse.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "support/error.hpp"

namespace barracuda::tcr {
namespace {

/// Canonical key of an operation after input renaming: output index
/// tuple plus the sorted (commutative product) input references.
std::string operation_key(const tensor::Contraction& op) {
  std::vector<std::string> inputs;
  for (const auto& in : op.inputs) inputs.push_back(in.to_string());
  std::sort(inputs.begin(), inputs.end());
  std::ostringstream os;
  os << "(";
  for (const auto& ix : op.output.indices) os << ix << " ";
  os << ")=";
  for (const auto& in : inputs) os << in << "*";
  return os.str();
}

}  // namespace

CseResult eliminate_common_subexpressions(const TcrProgram& program) {
  program.validate();

  // Temporaries written exactly once are safe CSE candidates.
  std::map<std::string, int> write_count;
  for (const auto& op : program.operations) ++write_count[op.output.name];

  CseResult result;
  result.program.name = program.name;
  result.program.extents = program.extents;
  result.program.outputs = program.outputs;

  std::map<std::string, std::string> rename;  // dup temp -> canonical temp
  std::map<std::string, std::string> seen;    // key -> canonical temp
  for (const auto& original : program.operations) {
    tensor::Contraction op = original;
    for (auto& in : op.inputs) {
      auto it = rename.find(in.name);
      if (it != rename.end()) in.name = it->second;
    }
    const bool candidate = !program.is_output(op.output.name) &&
                           write_count[op.output.name] == 1;
    if (candidate) {
      std::string key = operation_key(op);
      auto it = seen.find(key);
      if (it != seen.end()) {
        rename[op.output.name] = it->second;
        ++result.eliminated_ops;
        result.saved_flops += tensor::flop_count(op, program.extents);
        continue;
      }
      seen.emplace(std::move(key), op.output.name);
    }
    result.program.operations.push_back(std::move(op));
  }

  // Re-declare only the variables still referenced.
  std::set<std::string> live;
  for (const auto& op : result.program.operations) {
    live.insert(op.output.name);
    for (const auto& in : op.inputs) live.insert(in.name);
  }
  for (const auto& var : program.variables) {
    if (live.contains(var.name)) result.program.variables.push_back(var);
  }
  result.program.validate();
  return result;
}

}  // namespace barracuda::tcr
