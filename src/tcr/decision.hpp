// The GPU decision algorithm of Section IV: given a loop nest, derive the
// autotuning search space — candidate thread/block decompositions chosen
// for global-memory coalescing, sequential-loop permutations, and unroll
// factors — plus the fixed OpenACC-style mapping strategies used as
// baselines in Section VI.B.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tcr/loopnest.hpp"

namespace barracuda::tcr {

/// Sentinel meaning "this grid dimension is unused" (extent 1), matching
/// the '1' entries of the paper's PERMUTE parameter lists.
inline const std::string kUnused = "1";

/// One point of the per-kernel search space: a complete mapping decision.
struct KernelConfig {
  std::string thread_x = kUnused;
  std::string thread_y = kUnused;
  std::string block_x = kUnused;
  std::string block_y = kUnused;
  /// Remaining loops, outermost-first, executed sequentially inside each
  /// thread.  Reduction loops always appear here.
  std::vector<std::string> sequential;
  /// Unroll factor applied to the innermost sequential loop (1 = none).
  int unroll = 1;
  /// Keep the output element in a register across the reduction and write
  /// it back once (Section IV: always applied by Barracuda; the naive
  /// OpenACC baseline lacks it).
  bool scalar_replacement = true;
  /// Input tensors staged whole into shared memory by a cooperative
  /// per-block load (the "data placement in different levels of the
  /// memory hierarchy" of Khan's algorithm, which the paper's simplified
  /// space omits; opt-in via DecisionOptions::use_shared_memory).
  std::vector<std::string> shared_tensors;

  bool operator==(const KernelConfig&) const = default;
  std::string to_string() const;

  /// Grid indices actually assigned (excludes kUnused entries).
  std::vector<std::string> assigned_indices() const;
};

/// The Orio-style parameter lists the decision algorithm produces for one
/// kernel (Figure 2(c)): candidates for each PERMUTE parameter plus the
/// unroll factor domain.
struct KernelSpace {
  std::vector<std::string> thread_x;  // coalescing-driven candidates
  std::vector<std::string> thread_y;  // includes kUnused
  std::vector<std::string> block_x;
  std::vector<std::string> block_y;   // includes kUnused
  std::vector<int> unroll_factors;
  /// Input tensors eligible for shared-memory staging (small footprint,
  /// reused across the threads of a block).  Each doubles the space
  /// (staged or not).
  std::vector<std::string> shared_candidates;
  /// Permute the sequential loops too ("the search space also consists of
  /// different loop orders").
  bool permute_sequential = true;

  std::string to_string() const;
};

struct DecisionOptions {
  /// Cap on unroll factors considered ("relatively small because of the
  /// small loop iteration counts").
  int max_unroll = 10;
  /// Enumerate sequential-loop permutations (ablation switch).
  bool permute_sequential = true;
  /// Choose ThreadX by the coalescing rule; when false every parallel
  /// index is a ThreadX candidate (the "coalescing-blind" ablation).
  bool coalescing_aware = true;
  /// Include shared-memory staging decisions in the space.  Off by
  /// default: the paper's space is a simplification of Khan's algorithm
  /// without this placement axis; turning it on is this reproduction's
  /// faithful extension of that axis.
  bool use_shared_memory = false;
  /// Shared-memory capacity assumed when selecting staging candidates.
  std::int64_t shared_memory_bytes = 48 * 1024;
};

/// The extents (in elements) of a tensor reference under a loop nest;
/// used for shared-memory footprint checks.
std::int64_t ref_footprint_elements(const LoopNest& nest,
                                    const tensor::TensorRef& ref);

/// Run the Section IV decision algorithm on one loop nest.
KernelSpace derive_space(const LoopNest& nest,
                         const DecisionOptions& options = {});

/// Enumerate every valid configuration of `space` for `nest`: distinct
/// grid indices, all leftover loops sequential (reduction loops included),
/// every sequential permutation (when enabled) and every unroll factor.
/// Permutation fan-out is capped at seq-loop counts <= 4 (24 orders);
/// beyond that only the canonical and fully-reversed orders are emitted.
std::vector<KernelConfig> enumerate_configs(const LoopNest& nest,
                                            const KernelSpace& space);

/// |enumerate_configs| without materializing it.
std::int64_t space_size(const LoopNest& nest, const KernelSpace& space);

/// The Barracuda-derived single best-guess mapping used for the
/// "Optimized OpenACC" baseline: coalescing-aware ThreadX, first block
/// candidate, scalar replacement, no autotuned permutation or unrolling.
KernelConfig optimized_openacc_config(const LoopNest& nest);

/// The "Naive OpenACC" baseline: parallelization directives with no
/// decomposition guidance — outermost parallel loop to blocks, innermost
/// (in program order) parallel loop to threads, no scalar replacement.
KernelConfig naive_openacc_config(const LoopNest& nest);

/// Validate `config` against `nest` (grid indices are parallel loops, all
/// loops covered exactly once, reduction loops sequential, unroll >= 1).
/// Throws on violation.
void validate_config(const LoopNest& nest, const KernelConfig& config);

}  // namespace barracuda::tcr
