// Loop fusion across the operations of a TCR program (Section III).
//
// After strength reduction, consecutive operations often share outer
// parallel loops; fusing them shrinks the live range of temporaries from a
// whole tensor to a slice, improving memory behaviour.  Fusing loop `i` of
// a producer and consumer is legal when every temporary flowing between
// them carries `i`, so each fused iteration produces exactly the slice the
// consumer reads.
#pragma once

#include <string>
#include <vector>

#include "tcr/loopnest.hpp"

namespace barracuda::tcr {

/// A maximal run of operations fused at `shared` outer loops.  Each body
/// nest has been reordered so the shared loops are its outermost loops, in
/// the common order.
struct FusedGroup {
  std::vector<Loop> shared;       // fused outer loops, outermost-first
  std::vector<LoopNest> bodies;   // one per operation, shared prefix first

  std::string to_string() const;
};

/// Indices along which `producer` and `consumer` may legally fuse: parallel
/// in both, and contained in every temporary written by the producer chain
/// and read by the consumer.
std::vector<std::string> fusible_indices(const LoopNest& producer,
                                         const LoopNest& consumer);

/// Reorder `nest` so `outer` (a subset of its loop indices) comes first in
/// the given order; the remaining loops keep their relative order.
/// Legal for any permutation of parallel loops (and of reduction loops
/// relative to each other), which is all this module performs.
LoopNest reorder_outer(const LoopNest& nest,
                       const std::vector<std::string>& outer);

/// Greedy maximal fusion over the program's operation sequence: extend the
/// current group while the next operation shares a non-empty fusible
/// prefix with *every* member, otherwise start a new group.
std::vector<FusedGroup> fuse_program(const TcrProgram& program);

/// Total temporary-tensor footprint (elements) if the program runs
/// unfused: each temporary materializes wholly.
std::int64_t unfused_temp_elements(const TcrProgram& program);

/// Temporary footprint with `groups` fused: a temporary produced and
/// consumed inside one group only materializes its per-iteration slice.
std::int64_t fused_temp_elements(const TcrProgram& program,
                                 const std::vector<FusedGroup>& groups);

}  // namespace barracuda::tcr
