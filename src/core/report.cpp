#include "core/report.hpp"

#include <atomic>
#include <sstream>

#include "support/error.hpp"
#include "support/table.hpp"
#include "support/str.hpp"

namespace barracuda::core {
namespace {

std::string join_or_dash(const std::vector<std::string>& items) {
  return items.empty() ? "-" : join(items, ",");
}

std::vector<std::string> split_or_empty(std::string_view text) {
  if (text == "-") return {};
  std::vector<std::string> out;
  for (const auto& part : split(text, ',')) {
    if (!part.empty()) out.push_back(part);
  }
  return out;
}

}  // namespace

std::string serialize_recipe(const chill::Recipe& recipe) {
  std::ostringstream os;
  for (std::size_t k = 0; k < recipe.size(); ++k) {
    const tcr::KernelConfig& cfg = recipe[k];
    os << "kernel " << (k + 1) << ": tx=" << cfg.thread_x
       << " ty=" << cfg.thread_y << " bx=" << cfg.block_x
       << " by=" << cfg.block_y << " seq=" << join_or_dash(cfg.sequential)
       << " unroll=" << cfg.unroll
       << " registers=" << (cfg.scalar_replacement ? 1 : 0)
       << " shared=" << join_or_dash(cfg.shared_tensors) << "\n";
  }
  return os.str();
}

namespace {
std::atomic<std::size_t> g_recipe_parses{0};
}  // namespace

std::size_t recipe_parse_count() {
  return g_recipe_parses.load(std::memory_order_relaxed);
}

chill::Recipe parse_recipe(std::string_view text,
                           std::string_view source_name) {
  g_recipe_parses.fetch_add(1, std::memory_order_relaxed);
  chill::Recipe recipe;
  int line_number = 0;
  for (const auto& raw : split(text, '\n')) {
    ++line_number;
    std::string_view line = trim(raw);
    if (line.empty() || line.front() == '#') continue;
    auto fail = [&](const std::string& msg) -> chill::Recipe {
      throw ParseError(source_name, line_number,
                       msg + ": " + std::string(line));
    };
    if (!starts_with(line, "kernel ")) return fail("expected 'kernel N:'");
    auto colon = line.find(':');
    if (colon == std::string_view::npos) return fail("missing ':'");

    tcr::KernelConfig cfg;
    bool saw_unroll = false;
    for (const auto& field : split_ws(line.substr(colon + 1))) {
      auto eq = field.find('=');
      if (eq == std::string::npos) return fail("malformed field " + field);
      std::string key = field.substr(0, eq);
      std::string value = field.substr(eq + 1);
      if (value.empty()) return fail("empty value for " + key);
      if (key == "tx") {
        cfg.thread_x = value;
      } else if (key == "ty") {
        cfg.thread_y = value;
      } else if (key == "bx") {
        cfg.block_x = value;
      } else if (key == "by") {
        cfg.block_y = value;
      } else if (key == "seq") {
        cfg.sequential = split_or_empty(value);
      } else if (key == "unroll") {
        try {
          cfg.unroll = std::stoi(value);
        } catch (const std::exception&) {
          return fail("bad unroll value");
        }
        saw_unroll = true;
      } else if (key == "registers") {
        cfg.scalar_replacement = (value != "0");
      } else if (key == "shared") {
        cfg.shared_tensors = split_or_empty(value);
      } else {
        return fail("unknown field " + key);
      }
    }
    if (!saw_unroll || cfg.unroll < 1) return fail("missing/invalid unroll");
    recipe.push_back(std::move(cfg));
  }
  if (recipe.empty()) {
    throw ParseError(source_name, line_number, "empty recipe");
  }
  return recipe;
}

std::string tuning_report(const TuneResult& result,
                          const vgpu::DeviceProfile& device) {
  std::ostringstream os;
  os << "=== Barracuda tuning report ===\n";
  os << "device          : " << device.name << " (" << device.arch << ", "
     << TextTable::fixed(device.peak_dp_gflops(), 0) << " GF DP peak)\n";
  os << "variants        : " << result.variants.size() << " enumerated, #"
     << (result.best_variant + 1) << " chosen ("
     << result.flops << " flops; minimal "
     << result.variants.front().flops() << ")\n";
  os << "search          : " << result.search.evaluations()
     << " evaluations over a pool of " << result.pool_size << " (space "
     << result.joint_space_size << "), "
     << TextTable::fixed(result.search.seconds, 2) << "s\n";
  os << "modeled         : " << TextTable::fixed(result.modeled_us(), 1)
     << " us total; kernels "
     << TextTable::fixed(result.best_timing.kernel_us, 1) << " us, h2d "
     << TextTable::fixed(result.best_timing.h2d_us, 1) << " us, d2h "
     << TextTable::fixed(result.best_timing.d2h_us, 1) << " us\n";
  os << "throughput      : "
     << TextTable::gflops(result.modeled_gflops()) << " GF cold, "
     << TextTable::gflops(result.modeled_gflops_amortized())
     << " GF with transfers amortized over 100 reps\n";
  os << "--- chosen variant (TCR) ---\n"
     << result.best_program().to_string();
  os << "--- recipe ---\n" << serialize_recipe(result.best_recipe);
  if (!result.parameter_importances.empty()) {
    os << "--- what mattered (surrogate feature importances) ---\n";
    for (const auto& [name, weight] : result.parameter_importances) {
      os << "  " << name << " : " << TextTable::fixed(weight * 100, 1)
         << "%\n";
    }
  }
  os << "--- per-kernel model ---\n";
  for (std::size_t k = 0; k < result.best_timing.kernels.size(); ++k) {
    const auto& kt = result.best_timing.kernels[k];
    os << "kernel " << (k + 1) << ": compute "
       << TextTable::fixed(kt.compute_us, 2) << " us, memory "
       << TextTable::fixed(kt.memory_us, 2) << " us, occupancy "
       << TextTable::fixed(kt.occupancy * 100, 0) << "%, SM util "
       << TextTable::fixed(kt.sm_utilization * 100, 0) << "%\n";
  }
  return os.str();
}

}  // namespace barracuda::core
