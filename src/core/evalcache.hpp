// Memoizing cache for variant measurements.
//
// Every search trial funnels through one evaluation: lower (variant,
// recipe) to a GpuPlan and time it on the modeled device.  That value is
// a pure function of the device, the variant's contraction program and
// the mapping configuration — so repeated sweeps (multi-seed ablations,
// per-device re-tunes, re-run harnesses sharing one cache) can skip
// re-executing variants they have already measured.  Keys are canonical:
// they are built from the contraction statements, extents and recipe
// text, never from program display names, so two pools that materialize
// the same computation share entries.
//
// The cache also survives the process: save()/load() use a versioned,
// line-oriented text format (see evalcache.cpp), and the bench harnesses
// honor BARRACUDA_CACHE=path so a re-run re-measures nothing (cuTT's
// standard remedy for measurement-based tuning cost: persist the plans).
// Concurrent harness invocations may share one path: merge_save() holds
// an advisory inter-process lock across load-merge-publish so parallel
// writers compose to the union of their measurements, and every publish
// is an atomic rename, so a crash never leaves a torn file.
#pragma once

#include <cstddef>
#include <mutex>
#include <string>
#include <unordered_map>

#include "chill/lower.hpp"
#include "support/recovery.hpp"
#include "tcr/program.hpp"
#include "vgpu/device.hpp"

namespace barracuda::core {

/// Thread-safe memo table from canonical evaluation keys to measured
/// values.  Safe to share across concurrent Evaluate_Parallel workers and
/// across sequential tune() calls alike.
class EvalCache {
 public:
  /// Canonical key of one measurement: device identity + the variant's
  /// contraction signature (statements + extents, name-independent) + the
  /// per-operation mapping recipe.
  static std::string key(const vgpu::DeviceProfile& device,
                         const tcr::TcrProgram& program,
                         const chill::Recipe& recipe);

  /// True (and sets *value) when `key` was measured before.  Counts as a
  /// hit or miss.
  bool lookup(const std::string& key, double* value) const;

  /// True when `key` is present, WITHOUT touching the hit/miss counters
  /// — the probe behind "cache hits are free evaluations" budget
  /// accounting (surf::SearchOptions::prepaid), which must not distort
  /// the measured hit rate.
  bool contains(const std::string& key) const;

  /// Record a measurement.  Re-storing an existing key keeps the original
  /// value (measurements are deterministic; first write wins).
  void store(const std::string& key, double value);

  /// Memoized lookup-or-compute in one step.
  template <typename Fn>
  double get_or_eval(const std::string& k, Fn&& compute) {
    double value = 0;
    if (lookup(k, &value)) return value;
    value = compute();
    store(k, value);
    return value;
  }

  std::size_t hits() const;
  std::size_t misses() const;
  std::size_t size() const;
  void clear();

  /// Write every entry to `path` (versioned text, sorted by key so the
  /// file is deterministic).  Crash-safe: the file is written to a
  /// temporary sibling and atomically rename(2)d into place, so no
  /// reader — concurrent or post-crash — can observe a torn file.
  /// Throws Error when the file cannot be written, or when an entry is
  /// not serializable (tab/newline in a key, non-finite value).
  /// Counters are not persisted — they describe a process, not the
  /// measurements.  NOTE: plain save() is still whole-file replacement;
  /// concurrent writers sharing one path should use merge_save().
  void save(const std::string& path) const;

  /// Cross-process-safe persistence: atomically merge this cache into
  /// the file at `path`.  Takes an exclusive advisory lock (flock(2) on
  /// `path + ".lock"`), absorbs any existing file via load() (existing
  /// in-memory keys keep their value — load()'s first-write-wins rule),
  /// then publishes the union with the atomic save().  Locks die with
  /// their holder, so a crashed writer never wedges the path (the
  /// leftover .lock file is inert).  Returns the number of entries
  /// absorbed from the pre-existing file (0 when absent).  Throws Error
  /// on an unwritable path, a corrupt existing file (unless `policy` is
  /// kSalvage — see load()), or lock failure.
  std::size_t merge_save(
      const std::string& path,
      support::RecoveryPolicy policy = support::RecoveryPolicy::kStrict);

  /// Merge entries from a save()d file into this cache (existing keys
  /// keep their value; counters are untouched).  Returns the number of
  /// entry lines read (on duplicate keys — in the file or against the
  /// in-memory table — the first-seen value sticks).
  ///
  /// Failure handling is governed by `policy` (default kStrict): a
  /// corrupt file — unrecognized header/version, missing tab,
  /// unparseable or non-finite value — throws Error, because a corrupt
  /// cache must fail loudly, not seed the tuner with garbage.  Under
  /// kSalvage a damaged file is recovered instead: every line that still
  /// parses is merged, malformed lines are dropped, and the original
  /// file is quarantined to `<path>.corrupt` (atomic rename; a later
  /// strict load of `path` then simply finds no file).  `report`, when
  /// non-null, receives the kept/dropped counts and the quarantine path.
  /// An unreadable/missing file still throws under both policies.
  std::size_t load(const std::string& path,
                   support::RecoveryPolicy policy =
                       support::RecoveryPolicy::kStrict,
                   support::SalvageReport* report = nullptr);

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, double> values_;
  mutable std::size_t hits_ = 0;
  mutable std::size_t misses_ = 0;
};

}  // namespace barracuda::core
