// Memoizing cache for variant measurements.
//
// Every search trial funnels through one evaluation: lower (variant,
// recipe) to a GpuPlan and time it on the modeled device.  That value is
// a pure function of the device, the variant's contraction program and
// the mapping configuration — so repeated sweeps (multi-seed ablations,
// per-device re-tunes, re-run harnesses sharing one cache) can skip
// re-executing variants they have already measured.  Keys are canonical:
// they are built from the contraction statements, extents and recipe
// text, never from program display names, so two pools that materialize
// the same computation share entries.
#pragma once

#include <cstddef>
#include <mutex>
#include <string>
#include <unordered_map>

#include "chill/lower.hpp"
#include "tcr/program.hpp"
#include "vgpu/device.hpp"

namespace barracuda::core {

/// Thread-safe memo table from canonical evaluation keys to measured
/// values.  Safe to share across concurrent Evaluate_Parallel workers and
/// across sequential tune() calls alike.
class EvalCache {
 public:
  /// Canonical key of one measurement: device identity + the variant's
  /// contraction signature (statements + extents, name-independent) + the
  /// per-operation mapping recipe.
  static std::string key(const vgpu::DeviceProfile& device,
                         const tcr::TcrProgram& program,
                         const chill::Recipe& recipe);

  /// True (and sets *value) when `key` was measured before.  Counts as a
  /// hit or miss.
  bool lookup(const std::string& key, double* value) const;

  /// Record a measurement.  Re-storing an existing key keeps the original
  /// value (measurements are deterministic; first write wins).
  void store(const std::string& key, double value);

  /// Memoized lookup-or-compute in one step.
  template <typename Fn>
  double get_or_eval(const std::string& k, Fn&& compute) {
    double value = 0;
    if (lookup(k, &value)) return value;
    value = compute();
    store(k, value);
    return value;
  }

  std::size_t hits() const;
  std::size_t misses() const;
  std::size_t size() const;
  void clear();

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, double> values_;
  mutable std::size_t hits_ = 0;
  mutable std::size_t misses_ = 0;
};

}  // namespace barracuda::core
