// Barracuda: the end-to-end autotuning pipeline (Figure 1 of the paper).
//
//   DSL text ──octopi──▶ algebraic variants ──tcr──▶ loop nests + search
//   space ──chill──▶ GPU plans ──vgpu──▶ modeled time ──surf──▶ best plan
//
// This is the library's primary public entry point.  A TuningProblem names
// a (possibly multi-statement) tensor computation; tune() explores the
// joint space of OCTOPI variants x per-kernel mapping decisions with SURF
// and returns the winning plan together with the full search record.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chill/lower.hpp"
#include "core/evalcache.hpp"
#include "cpuexec/cpumodel.hpp"
#include "octopi/parser.hpp"
#include "surf/surf.hpp"
#include "tcr/decision.hpp"
#include "vgpu/device.hpp"
#include "vgpu/perfmodel.hpp"

namespace barracuda::core {

/// A tensor computation to optimize: one or more contraction statements
/// over shared index extents.
struct TuningProblem {
  std::string name;
  std::vector<tensor::Contraction> statements;
  tensor::Extents extents;

  /// Parse from OCTOPI DSL text (with dim declarations).
  static TuningProblem from_dsl(std::string_view text,
                                std::string_view name = "ex");

  /// Flops of the naive (direct, un-strength-reduced) evaluation.
  std::int64_t direct_flops() const;
};

struct TuneOptions {
  octopi::EnumerateOptions octopi;
  tcr::DecisionOptions decision;
  surf::SearchOptions search;
  enum class Method { kSurf, kRandom, kExhaustive, kGenetic, kAnnealing };
  Method method = Method::kSurf;
  /// Cap on the materialized configuration pool handed to the search:
  /// when the joint space exceeds it, the pool is a uniform sample (the
  /// full size is still reported in TuneResult::joint_space_size).
  std::size_t max_pool = 4096;
  /// Cap on the cross product of per-statement OCTOPI variants.
  std::size_t max_joint_variants = 60;
  std::uint64_t pool_seed = 1;
  /// Optional memo table consulted before each variant measurement and
  /// updated after it (see core/evalcache.hpp).  Share one instance
  /// across repeated tune() calls (multi-seed sweeps, per-device loops)
  /// to never re-execute an already-measured variant.  Not owned.
  EvalCache* eval_cache = nullptr;
  /// When true (and eval_cache is set), configurations already in the
  /// cache are charged nothing against search.max_evaluations — a warm
  /// cache stretches the budget into genuinely new measurements instead
  /// of re-spending it on known ones.  Off by default because it changes
  /// what the search explores: a warm re-run no longer replays the cold
  /// run's record (it goes further), so leave it off when byte-identical
  /// re-runs are the goal (e.g. BARRACUDA_CACHE re-runs of the bench
  /// harnesses) and turn it on when best-found-per-measurement is.
  bool free_cache_hits = false;
  /// When true (and eval_cache is set), SURF's batch proposal is
  /// cache-aware: configurations whose canonical key the cache already
  /// holds are deprioritized so the measurement budget goes to genuinely
  /// new ones.  Combined with free_cache_hits, every cached pool entry
  /// is replayed up front as free lookups (the warm search keeps the
  /// cold run's best and its surrogate starts from everything known);
  /// without free_cache_hits, cached configurations are skipped from
  /// the measurement batches outright.  Off by default for the same
  /// reason as free_cache_hits: it changes what a warm search explores,
  /// so byte-identical warm re-runs need it off.  Results remain
  /// bit-identical for every search.n_jobs.  SearchResult::
  /// duplicate_proposals meters the budget wasted on already-measured
  /// configurations whenever eval_cache is set.
  bool cache_aware_proposals = false;
};

/// Everything tune() learned, plus the artifacts to use it.
struct TuneResult {
  /// All enumerated variant programs (ascending flops).
  std::vector<tcr::TcrProgram> variants;
  std::size_t best_variant = 0;
  chill::Recipe best_recipe;
  chill::GpuPlan best_plan;
  vgpu::PlanTiming best_timing;
  /// Flops of the chosen variant.
  std::int64_t flops = 0;
  /// Exact size of the joint search space (variants x kernel configs).
  std::int64_t joint_space_size = 0;
  /// Size of the materialized pool the search ran over.
  std::size_t pool_size = 0;
  surf::SearchResult search;
  /// The mapping parameters the surrogate model found most
  /// performance-relevant, most important first (empty for searches that
  /// fit no model).  Names come from the feature binarization, e.g.
  /// "kernel1.TX=k" or "kernel2.unroll".
  std::vector<std::pair<std::string, double>> parameter_importances;

  const tcr::TcrProgram& best_program() const {
    return variants[best_variant];
  }
  double modeled_us() const { return best_timing.total_us; }
  double modeled_gflops() const { return best_timing.gflops(flops); }
  /// GFlops with transfers amortized over `repetitions` kernel executions
  /// (the paper's 100-repetition measurement methodology).
  double modeled_gflops_amortized(int repetitions = 100) const;
  /// Functionally execute the tuned plan against `env` (inputs present,
  /// output pre-sized).
  void run(tensor::TensorEnv& env) const;
  std::string cuda_source() const { return best_plan.cuda_source(); }
};

/// Enumerate the joint variant programs for a problem: the cross product
/// of per-statement OCTOPI variants, with temporaries renamed apart,
/// sorted by total flops.
std::vector<tcr::TcrProgram> enumerate_programs(
    const TuningProblem& problem, const octopi::EnumerateOptions& opt = {},
    std::size_t max_joint_variants = 60);

/// The direct program: each statement lowered as-is, no strength
/// reduction.  This is the CPU baseline code shape.
tcr::TcrProgram direct_program(const TuningProblem& problem);

/// Run the full pipeline against a modeled device.
TuneResult tune(const TuningProblem& problem,
                const vgpu::DeviceProfile& device,
                const TuneOptions& options = {});

/// OpenACC-style baselines (Section VI.B): the minimal-flop variant lowered
/// with a fixed mapping strategy instead of autotuning.
struct BaselineResult {
  tcr::TcrProgram program;
  chill::GpuPlan plan;
  vgpu::PlanTiming timing;
  std::int64_t flops = 0;
  double modeled_gflops() const { return timing.gflops(flops); }
  double modeled_gflops_amortized(int repetitions = 100) const;
};
BaselineResult openacc_baseline(const TuningProblem& problem,
                                const vgpu::DeviceProfile& device,
                                bool optimized);

/// CPU baseline on the modeled Haswell (1 thread = sequential baseline).
cpuexec::CpuTiming cpu_baseline(const TuningProblem& problem,
                                const cpuexec::CpuProfile& cpu, int threads);

/// Size specialization (Section III: the DSL accepts dimension *ranges*
/// so the framework can "specialize the optimizations it applies for
/// specific tensor sizes"): tune one plan per point of the range grid.
struct SizeSpecialization {
  tensor::Extents extents;
  TuneResult result;
};
std::vector<SizeSpecialization> tune_specializations(
    const octopi::OctopiProgram& program, const vgpu::DeviceProfile& device,
    const TuneOptions& options = {}, std::size_t max_points = 16);

}  // namespace barracuda::core
