// Tuning reports and recipe persistence.
//
// Section VIII lists "facilitate integration of the generated code into
// applications" as future work: an application wants to run the (slow)
// search once, persist the winning recipe, and re-lower it on every
// subsequent build without re-searching.  serialize_recipe/parse_recipe
// give recipes a stable, diffable text form; tuning_report renders the
// full outcome of a tune() run for humans.
#pragma once

#include <cstddef>
#include <string>

#include "core/barracuda.hpp"

namespace barracuda::core {

/// One line per kernel:
///   kernel 1: tx=k ty=j bx=e by=1 seq=i,l unroll=8 registers=1 shared=D
std::string serialize_recipe(const chill::Recipe& recipe);

/// Inverse of serialize_recipe.  Throws barracuda::ParseError on
/// malformed text.  The result can be fed straight to
/// chill::lower_program (which validates it against the program).
chill::Recipe parse_recipe(std::string_view text,
                           std::string_view source_name = "<recipe>");

/// Process-wide count of parse_recipe calls (a relaxed atomic).  The
/// serving layer's warm path promises ZERO recipe parses per request —
/// parsed recipes ride inside PlanEntry from load/publish time — and
/// the batch/LRU tests pin that promise against this counter instead of
/// trusting the code path by inspection.
std::size_t recipe_parse_count();

/// Human-readable multi-section report of a tuning run.
std::string tuning_report(const TuneResult& result,
                          const vgpu::DeviceProfile& device);

}  // namespace barracuda::core
