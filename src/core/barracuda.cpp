#include "core/barracuda.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <set>

#include "support/error.hpp"
#include "support/threadpool.hpp"
#include "surf/evolutionary.hpp"
#include "surf/features.hpp"
#include "vgpu/executor.hpp"

namespace barracuda::core {
namespace {

using tensor::Contraction;

/// Rename the temporaries of one statement's variant so that statements
/// combined into a joint program cannot collide.
std::vector<Contraction> rename_temporaries(
    const std::vector<Contraction>& steps, const Contraction& statement,
    std::set<std::string>& used, int& counter) {
  std::map<std::string, std::string> renames;
  auto fresh = [&] {
    std::string name;
    do {
      name = "t" + std::to_string(counter++);
    } while (used.contains(name));
    used.insert(name);
    return name;
  };
  std::vector<Contraction> out = steps;
  for (auto& step : out) {
    for (auto& in : step.inputs) {
      auto it = renames.find(in.name);
      if (it != renames.end()) in.name = it->second;
    }
    if (step.output.name != statement.output.name) {
      auto it = renames.find(step.output.name);
      if (it == renames.end()) {
        it = renames.emplace(step.output.name, fresh()).first;
      }
      step.output.name = it->second;
    }
  }
  return out;
}

}  // namespace

TuningProblem TuningProblem::from_dsl(std::string_view text,
                                      std::string_view name) {
  octopi::OctopiProgram parsed = octopi::parse_octopi(text, name);
  BARRACUDA_CHECK_MSG(!parsed.statements.empty(), "no statements in DSL");
  BARRACUDA_CHECK_MSG(!parsed.extents.empty(),
                      "DSL text must declare dims for tuning");
  TuningProblem problem;
  problem.name = std::string(name);
  problem.extents = parsed.extents;
  for (const auto& s : parsed.statements) {
    problem.statements.push_back(s.to_contraction());
  }
  return problem;
}

std::int64_t TuningProblem::direct_flops() const {
  std::int64_t total = 0;
  for (const auto& s : statements) total += tensor::flop_count(s, extents);
  return total;
}

std::vector<tcr::TcrProgram> enumerate_programs(
    const TuningProblem& problem, const octopi::EnumerateOptions& opt,
    std::size_t max_joint_variants) {
  BARRACUDA_CHECK_MSG(!problem.statements.empty(), "empty problem");

  // Per-statement variant lists (ascending flops).
  std::vector<std::vector<octopi::Variant>> per_stmt;
  for (const auto& s : problem.statements) {
    per_stmt.push_back(octopi::enumerate_variants(s, problem.extents, opt));
  }

  // Cap the cross product by trimming each list to k entries with
  // prod(k_i) <= max_joint_variants (k uniform across statements, lowest
  // flops first — the most promising variants survive).
  double total = 1;
  for (const auto& vs : per_stmt) total *= static_cast<double>(vs.size());
  if (total > static_cast<double>(max_joint_variants)) {
    std::size_t k = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::floor(std::pow(
               static_cast<double>(max_joint_variants),
               1.0 / static_cast<double>(per_stmt.size())))));
    for (auto& vs : per_stmt) {
      if (vs.size() > k) vs.resize(k);
    }
  }

  // Names that must never be reused for temporaries.
  std::set<std::string> used;
  for (const auto& s : problem.statements) {
    used.insert(s.output.name);
    for (const auto& in : s.inputs) used.insert(in.name);
  }

  // Mixed-radix cross product.
  std::vector<tcr::TcrProgram> programs;
  std::vector<std::size_t> choice(per_stmt.size(), 0);
  while (true) {
    octopi::Variant joint;
    std::set<std::string> names = used;
    int counter = 1;
    for (std::size_t s = 0; s < per_stmt.size(); ++s) {
      auto steps = rename_temporaries(per_stmt[s][choice[s]].program.steps,
                                      problem.statements[s], names, counter);
      joint.program.steps.insert(joint.program.steps.end(), steps.begin(),
                                 steps.end());
    }
    joint.flops = tensor::flop_count(joint.program, problem.extents);
    tcr::TcrProgram program =
        tcr::from_variant(joint, problem.extents, problem.name);
    for (const auto& stmt : problem.statements) {
      if (std::find(program.outputs.begin(), program.outputs.end(),
                    stmt.output.name) == program.outputs.end()) {
        program.outputs.push_back(stmt.output.name);
      }
    }
    programs.push_back(std::move(program));

    std::size_t d = per_stmt.size();
    while (d > 0) {
      --d;
      if (++choice[d] < per_stmt[d].size()) break;
      choice[d] = 0;
      if (d == 0) {
        std::stable_sort(programs.begin(), programs.end(),
                         [](const tcr::TcrProgram& a,
                            const tcr::TcrProgram& b) {
                           return a.flops() < b.flops();
                         });
        return programs;
      }
    }
  }
}

tcr::TcrProgram direct_program(const TuningProblem& problem) {
  octopi::Variant v;
  v.program.steps = problem.statements;
  v.flops = problem.direct_flops();
  tcr::TcrProgram program =
      tcr::from_variant(v, problem.extents, problem.name);
  for (const auto& stmt : problem.statements) {
    if (std::find(program.outputs.begin(), program.outputs.end(),
                  stmt.output.name) == program.outputs.end()) {
      program.outputs.push_back(stmt.output.name);
    }
  }
  return program;
}

double TuneResult::modeled_gflops_amortized(int repetitions) const {
  BARRACUDA_CHECK(repetitions >= 1);
  double us = best_timing.kernel_us +
              (best_timing.h2d_us + best_timing.d2h_us) / repetitions;
  return us > 0 ? (static_cast<double>(flops) / 1e3) / us : 0;
}

double BaselineResult::modeled_gflops_amortized(int repetitions) const {
  BARRACUDA_CHECK(repetitions >= 1);
  double us = timing.kernel_us +
              (timing.h2d_us + timing.d2h_us) / repetitions;
  return us > 0 ? (static_cast<double>(flops) / 1e3) / us : 0;
}

void TuneResult::run(tensor::TensorEnv& env) const {
  vgpu::execute_plan(best_plan, env);
}

namespace {

/// One entry of the joint tuning pool.
struct PoolEntry {
  std::size_t variant = 0;
  std::vector<std::size_t> config;  // per-operation config index

  auto operator<=>(const PoolEntry&) const = default;
};

struct VariantSpace {
  std::vector<std::vector<tcr::KernelConfig>> op_configs;
  double size = 1;  // product of per-op config counts
};

chill::Recipe recipe_of(const VariantSpace& space, const PoolEntry& e) {
  chill::Recipe recipe;
  for (std::size_t op = 0; op < space.op_configs.size(); ++op) {
    recipe.push_back(space.op_configs[op][e.config[op]]);
  }
  return recipe;
}

}  // namespace

TuneResult tune(const TuningProblem& problem,
                const vgpu::DeviceProfile& device,
                const TuneOptions& options) {
  TuneResult result;
  result.variants =
      enumerate_programs(problem, options.octopi, options.max_joint_variants);

  // Per-variant search spaces from the Section IV decision algorithm.
  std::vector<VariantSpace> spaces;
  double total_size = 0;
  for (const auto& program : result.variants) {
    VariantSpace space;
    for (const auto& nest : tcr::build_loop_nests(program)) {
      tcr::KernelSpace ks = tcr::derive_space(nest, options.decision);
      space.op_configs.push_back(tcr::enumerate_configs(nest, ks));
      space.size *= static_cast<double>(space.op_configs.back().size());
    }
    total_size += space.size;
    spaces.push_back(std::move(space));
  }
  result.joint_space_size =
      total_size < 9e18 ? static_cast<std::int64_t>(total_size)
                        : std::numeric_limits<std::int64_t>::max();

  // Materialize the pool: exact enumeration when small, uniform sample
  // (variant weighted by its share of the joint space) otherwise.
  std::vector<PoolEntry> pool;
  if (total_size <= static_cast<double>(options.max_pool)) {
    for (std::size_t v = 0; v < spaces.size(); ++v) {
      PoolEntry e;
      e.variant = v;
      e.config.assign(spaces[v].op_configs.size(), 0);
      while (true) {
        pool.push_back(e);
        std::size_t d = e.config.size();
        bool done = true;
        while (d > 0) {
          --d;
          if (++e.config[d] < spaces[v].op_configs[d].size()) {
            done = false;
            break;
          }
          e.config[d] = 0;
        }
        if (done) break;
      }
    }
  } else {
    // Stratified sample: equal shares per variant, so low-flop variants
    // (small spaces) are as visible to the search as high-flop ones whose
    // larger spaces would otherwise swamp a uniform joint sample.
    Rng rng(options.pool_seed);
    std::set<PoolEntry> seen;
    const std::size_t share =
        std::max<std::size_t>(1, options.max_pool / spaces.size());
    for (std::size_t v = 0; v < spaces.size(); ++v) {
      std::size_t quota = static_cast<std::size_t>(
          std::min<double>(static_cast<double>(share), spaces[v].size));
      std::size_t attempts = 0;
      std::size_t taken = 0;
      while (taken < quota && attempts < quota * 20) {
        ++attempts;
        PoolEntry e;
        e.variant = v;
        for (const auto& configs : spaces[v].op_configs) {
          e.config.push_back(rng.index(configs.size()));
        }
        if (seen.insert(e).second) {
          pool.push_back(std::move(e));
          ++taken;
        }
      }
    }
  }
  BARRACUDA_CHECK_MSG(!pool.empty(), "empty tuning pool");
  result.pool_size = pool.size();

  // Featurize (binarization, Section V) and define the objective.
  surf::RecipeFeaturizer featurizer(result.variants);
  std::vector<std::vector<double>> features;
  features.reserve(pool.size());
  for (const auto& e : pool) {
    features.push_back(
        featurizer.encode(e.variant, recipe_of(spaces[e.variant], e)));
  }
  // The objective runs concurrently from pool workers when
  // options.search.n_jobs > 1: it only reads the shared pool/variant
  // state, and the cache (when present) is internally synchronized.
  // (The enumerate/lower layers it calls — chill::lower_program,
  // vgpu::model_plan — keep all mutable state in their arguments; see
  // the threading contract in docs/ARCHITECTURE.md.)
  auto objective = [&](std::size_t i) {
    const PoolEntry& e = pool[i];
    chill::Recipe recipe = recipe_of(spaces[e.variant], e);
    auto measure = [&] {
      chill::GpuPlan plan =
          chill::lower_program(result.variants[e.variant], recipe);
      double us = vgpu::model_plan(plan, device).total_us;
      // Infeasible plans (exceed device memory) become a large finite
      // penalty: infinities would poison the surrogate model's training
      // set.
      return std::isfinite(us) ? us : 1e15;
    };
    if (!options.eval_cache) return measure();
    return options.eval_cache->get_or_eval(
        EvalCache::key(device, result.variants[e.variant], recipe), measure);
  };

  surf::SearchOptions search_options = options.search;
  if (options.eval_cache) {
    // Counter-free contains() probe of a pool entry's canonical key,
    // consulted only on the driver thread at proposal time (so it never
    // distorts the measured hit rate or depends on n_jobs).
    auto in_cache = [&, cache = options.eval_cache](std::size_t i) {
      const PoolEntry& e = pool[i];
      return cache->contains(EvalCache::key(device,
                                            result.variants[e.variant],
                                            recipe_of(spaces[e.variant], e)));
    };
    // Duplicate-proposal metering is always on when a cache is present;
    // it only counts, never reorders, so default searches are unchanged.
    search_options.cached = in_cache;
    if (options.free_cache_hits) {
      // Budget accounting: configurations the warm cache already knows
      // are free lookups, so they cost nothing against max_evaluations.
      search_options.prepaid = in_cache;
    }
    // Reordering (replay-first or skip) is the separate opt-in.
    search_options.cache_aware = options.cache_aware_proposals;
  }

  switch (options.method) {
    case TuneOptions::Method::kSurf:
      result.search = surf::surf_search(features, objective, search_options);
      break;
    case TuneOptions::Method::kRandom:
      result.search =
          surf::random_search(pool.size(), objective, search_options);
      break;
    case TuneOptions::Method::kExhaustive:
      result.search = surf::exhaustive_search(pool.size(), objective);
      break;
    case TuneOptions::Method::kGenetic:
      result.search =
          surf::genetic_search(features, objective, search_options);
      break;
    case TuneOptions::Method::kAnnealing:
      result.search =
          surf::annealing_search(features, objective, search_options);
      break;
  }

  // Named parameter importances from the final surrogate (SURF only).
  if (!result.search.importances.empty()) {
    std::vector<std::pair<std::string, double>> named;
    for (std::size_t d = 0; d < result.search.importances.size(); ++d) {
      double g = result.search.importances[d];
      if (g > 0) named.emplace_back(featurizer.feature_name(d), g);
    }
    std::sort(named.begin(), named.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    if (named.size() > 8) named.resize(8);
    result.parameter_importances = std::move(named);
  }

  const PoolEntry& best = pool[result.search.best_index];
  result.best_variant = best.variant;
  result.best_recipe = recipe_of(spaces[best.variant], best);

  // The decision algorithm's own default mapping (the "optimized" static
  // choice) is always a candidate: the search must never return something
  // worse than the compiler would have picked without autotuning.
  chill::Recipe default_recipe =
      chill::openacc_optimized_recipe(result.variants.front());
  double default_us =
      vgpu::model_plan(
          chill::lower_program(result.variants.front(), default_recipe),
          device)
          .total_us;
  if (default_us < result.search.best_value) {
    result.best_variant = 0;
    result.best_recipe = std::move(default_recipe);
  }

  result.best_plan = chill::lower_program(result.variants[result.best_variant],
                                          result.best_recipe);
  result.best_timing = vgpu::model_plan(result.best_plan, device);
  result.flops = result.variants[result.best_variant].flops();
  return result;
}

BaselineResult openacc_baseline(const TuningProblem& problem,
                                const vgpu::DeviceProfile& device,
                                bool optimized) {
  BaselineResult r;
  r.program = enumerate_programs(problem).front();
  chill::Recipe recipe = optimized
                             ? chill::openacc_optimized_recipe(r.program)
                             : chill::openacc_naive_recipe(r.program);
  r.plan = chill::lower_program(r.program, recipe);
  r.timing = vgpu::model_plan(r.plan, device);
  r.flops = r.program.flops();
  return r;
}

std::vector<SizeSpecialization> tune_specializations(
    const octopi::OctopiProgram& program, const vgpu::DeviceProfile& device,
    const TuneOptions& options, std::size_t max_points) {
  BARRACUDA_CHECK_MSG(!program.statements.empty(), "no statements");
  // The grid points are independent tune() calls: farm them across the
  // shared pool (options.search.n_jobs lanes — the same knob that
  // parallelizes a single search).  Each point writes its own slot, so
  // the result is identical for every job count; the searches *inside* a
  // pooled tune() hit the pool-depth guard and run sequentially, keeping
  // one bounded pool for the whole pipeline.  A shared eval_cache (when
  // set) is internally synchronized.
  std::vector<tensor::Extents> points = program.specializations(max_points);
  std::vector<SizeSpecialization> out(points.size());
  support::parallel_apply(
      support::resolve_jobs(options.search.n_jobs), points.size(),
      [&](std::size_t p) {
        TuningProblem problem;
        problem.name = "specialized";
        problem.extents = points[p];
        for (const auto& s : program.statements) {
          problem.statements.push_back(s.to_contraction());
        }
        out[p].extents = std::move(points[p]);
        out[p].result = tune(problem, device, options);
      });
  return out;
}

cpuexec::CpuTiming cpu_baseline(const TuningProblem& problem,
                                const cpuexec::CpuProfile& cpu,
                                int threads) {
  // The CPU baselines run the same strength-reduced computation (Nekbone
  // recasts its contractions as matrix multiplies; the paper's speedups
  // compare equal-flop implementations).
  tcr::TcrProgram program = enumerate_programs(problem).front();
  return cpuexec::model_cpu(program, cpu, threads);
}

}  // namespace barracuda::core
