#include "core/evalcache.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "support/error.hpp"
#include "support/faultinject.hpp"
#include "support/filelock.hpp"

namespace barracuda::core {
namespace {

// On-disk format (line-oriented text; one measurement per line):
//
//   barracuda-evalcache v1
//   <value>\t<key>
//   ...
//
// Values print with %.17g, which round-trips IEEE doubles exactly; keys
// are the canonical EvalCache::key strings (they never contain newlines
// or tabs — they are built from '|'/','/';'-separated to_string()s).
constexpr const char* kHeader = "barracuda-evalcache v1";

}  // namespace

std::string EvalCache::key(const vgpu::DeviceProfile& device,
                           const tcr::TcrProgram& program,
                           const chill::Recipe& recipe) {
  std::ostringstream os;
  os << device.name << '|';
  // Contraction signature: extents + statements, not the program name —
  // "ex" and "specialized" pools over the same computation must collide.
  for (const auto& [index, extent] : program.extents) {
    os << index << '=' << extent << ',';
  }
  os << '|';
  for (const auto& op : program.operations) os << op.to_string() << ';';
  os << '|';
  for (const auto& config : recipe) os << config.to_string() << ';';
  return os.str();
}

bool EvalCache::lookup(const std::string& key, double* value) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = values_.find(key);
  if (it == values_.end()) {
    ++misses_;
    return false;
  }
  ++hits_;
  *value = it->second;
  return true;
}

void EvalCache::store(const std::string& key, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  values_.emplace(key, value);
}

std::size_t EvalCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::size_t EvalCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::size_t EvalCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return values_.size();
}

bool EvalCache::contains(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return values_.find(key) != values_.end();
}

void EvalCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  values_.clear();
  hits_ = 0;
  misses_ = 0;
}

void EvalCache::save(const std::string& path) const {
  std::vector<std::pair<std::string, double>> entries;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    entries.assign(values_.begin(), values_.end());
  }
  std::sort(entries.begin(), entries.end());

  // Validate before touching the filesystem so a serialization error
  // never leaves a partial temp file behind.
  for (const auto& [key, value] : entries) {
    if (key.find_first_of("\t\n") != std::string::npos) {
      throw Error("evaluation cache key contains tab/newline, "
                  "not serializable: " + key);
    }
    if (!std::isfinite(value)) {
      throw Error("evaluation cache value for '" + key +
                  "' is not finite, not serializable");
    }
  }

  // Atomic publish: write the complete file to a sibling temp path, then
  // rename(2) it over the target.  The rename is atomic within a
  // filesystem, so a concurrent reader (or anyone inspecting the file
  // after this process crashes mid-save) sees either the previous
  // complete cache or the new one — never a torn or truncated file.
  // The pid suffix keeps uncoordinated writers from scribbling on each
  // other's temp files (their *renames* still race; merge_save is the
  // lock-protected path that also prevents lost updates).
  const std::string tmp =
      path + ".tmp." + std::to_string(support::process_tag());
  {
    // `evalcache.save.open` models the temp file failing to open (full
    // disk, unwritable directory) — the same path a real ofstream
    // failure takes.
    std::ofstream out(support::fault::hit("evalcache.save.open") ? ""
                                                                 : tmp);
    if (!out) throw Error("cannot write evaluation cache: " + tmp);
    out << kHeader << '\n';
    char value_text[64];
    for (const auto& [key, value] : entries) {
      std::snprintf(value_text, sizeof value_text, "%.17g", value);
      out << value_text << '\t' << key << '\n';
    }
    out.flush();
    if (!out) {
      out.close();
      std::remove(tmp.c_str());
      throw Error("failed writing evaluation cache: " + tmp);
    }
  }
  // `evalcache.save.rename` models a failed publish: the complete temp
  // file exists but never replaces the target — exactly what a cross-
  // device or permission rename failure leaves behind (minus the temp,
  // which both paths clean up).
  if (support::fault::hit("evalcache.save.rename") ||
      std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw Error("cannot publish evaluation cache: rename " + tmp + " -> " +
                path);
  }
}

std::size_t EvalCache::load(const std::string& path,
                            support::RecoveryPolicy policy,
                            support::SalvageReport* report) {
  const bool salvage = policy == support::RecoveryPolicy::kSalvage;
  support::SalvageReport local;
  // `evalcache.load` models an unreadable file — failing before any
  // record lands keeps load() all-or-nothing under fault injection too.
  support::fault::maybe_throw("evalcache.load");
  std::ifstream in(path);
  if (!in) throw Error("cannot read evaluation cache: " + path);

  // Under kSalvage a malformed line is dropped instead of thrown;
  // `reject` centralizes the policy split so the per-line validation
  // below stays identical for both modes.
  auto reject = [&](const std::string& message) {
    if (!salvage) throw Error(message);
    ++local.dropped;
  };

  std::string line;
  std::size_t loaded = 0;
  if (!std::getline(in, line) || line != kHeader) {
    reject("not a barracuda evaluation cache (bad or missing '" +
           std::string(kHeader) + "' header): " + path);
    // A wrong header means nothing after it can be trusted as v1
    // records: salvage keeps zero entries and quarantines below.
    in.setstate(std::ios::eofbit);
  }
  std::size_t line_no = 1;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    while (std::getline(in, line)) {
      ++line_no;
      if (line.empty()) continue;
      const std::size_t tab = line.find('\t');
      if (tab == std::string::npos || tab + 1 >= line.size()) {
        reject("corrupt evaluation cache at " + path + ":" +
               std::to_string(line_no) + ": expected <value>\\t<key>");
        continue;
      }
      const std::string value_text = line.substr(0, tab);
      char* end = nullptr;
      const double value = std::strtod(value_text.c_str(), &end);
      if (end == value_text.c_str() || *end != '\0') {
        reject("corrupt evaluation cache at " + path + ":" +
               std::to_string(line_no) + ": bad value '" + value_text + "'");
        continue;
      }
      if (!std::isfinite(value)) {
        // Measurements are finite by construction (infeasible plans
        // become a large finite penalty), so NaN/±inf can only mean
        // corruption.
        reject("corrupt evaluation cache at " + path + ":" +
               std::to_string(line_no) + ": non-finite value '" +
               value_text + "'");
        continue;
      }
      values_.emplace(line.substr(tab + 1), value);
      ++loaded;
    }
  }
  in.close();
  local.kept = loaded;
  if (salvage && local.dropped > 0) {
    // Quarantine the damaged original so the next strict load of `path`
    // finds no file instead of tripping over the same corruption; the
    // salvaged state gets re-published by the caller's next save.
    const std::string quarantine = path + ".corrupt";
    if (std::rename(path.c_str(), quarantine.c_str()) != 0) {
      throw Error("cannot quarantine corrupt evaluation cache: rename " +
                  path + " -> " + quarantine);
    }
    local.quarantine_path = quarantine;
  }
  if (report) *report = local;
  return loaded;
}

std::size_t EvalCache::merge_save(const std::string& path,
                                  support::RecoveryPolicy policy) {
  // Serialize the whole read-modify-write against every other
  // merge_save on this path — other threads (flock conflicts between
  // file descriptions, even within one process) and other processes
  // alike — so concurrent writers compose to the union instead of
  // last-writer-wins.  See support::FileLock for the lock-file protocol.
  support::FileLock lock(path + ".lock");
  std::size_t absorbed = 0;
  {
    std::ifstream probe(path);
    if (probe.good()) {
      probe.close();
      // load()'s merge rule applies: keys this cache already holds keep
      // their value (first-write-wins; measurements are deterministic,
      // so colliding values agree anyway).  Under kSalvage a corrupt
      // existing file contributes whatever still parses and is
      // quarantined; the save below then republishes a clean file.
      absorbed = load(path, policy);
    }
  }
  save(path);
  return absorbed;
}

}  // namespace barracuda::core
