#include "core/evalcache.hpp"

#include <sstream>

namespace barracuda::core {

std::string EvalCache::key(const vgpu::DeviceProfile& device,
                           const tcr::TcrProgram& program,
                           const chill::Recipe& recipe) {
  std::ostringstream os;
  os << device.name << '|';
  // Contraction signature: extents + statements, not the program name —
  // "ex" and "specialized" pools over the same computation must collide.
  for (const auto& [index, extent] : program.extents) {
    os << index << '=' << extent << ',';
  }
  os << '|';
  for (const auto& op : program.operations) os << op.to_string() << ';';
  os << '|';
  for (const auto& config : recipe) os << config.to_string() << ';';
  return os.str();
}

bool EvalCache::lookup(const std::string& key, double* value) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = values_.find(key);
  if (it == values_.end()) {
    ++misses_;
    return false;
  }
  ++hits_;
  *value = it->second;
  return true;
}

void EvalCache::store(const std::string& key, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  values_.emplace(key, value);
}

std::size_t EvalCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::size_t EvalCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::size_t EvalCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return values_.size();
}

void EvalCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  values_.clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace barracuda::core
