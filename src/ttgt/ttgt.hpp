// TTGT baseline: evaluate a binary tensor contraction as
// Transpose-Transpose-GEMM-Transpose, the strategy of the TCE-era
// libraries the paper positions itself against (§VII: "often, tensors
// are transposed so that a high-performance matrix-matrix multiplication
// can be used") and the reason Barracuda exists (§I: for small
// dimensions, "mapping the problem to use highly-tuned linear algebra
// libraries will not achieve high performance as these libraries are
// optimized for large matrices").
//
// The planner classifies a binary contraction's indices into the GEMM
// roles (batch L, M from the first operand, N from the second, K
// contracted), decides which operands need a physical transpose to reach
// GEMM-able layout, and the model prices the resulting pipeline on a
// virtual device with a cuBLAS-like GEMM model whose efficiency collapses
// under tile quantization at small M/N/K — which is exactly the effect
// the paper's motivation rests on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/einsum.hpp"
#include "vgpu/device.hpp"

namespace barracuda::ttgt {

/// GEMM problem extracted from a contraction.
struct GemmShape {
  std::int64_t batch = 1;  // product of indices shared by both inputs and the output
  std::int64_t m = 1;      // output indices owned by the first operand
  std::int64_t n = 1;      // output indices owned by the second operand
  std::int64_t k = 1;      // contracted indices

  std::int64_t flops() const { return 2 * batch * m * n * k; }
};

/// A full TTGT execution plan for one binary contraction.
struct TtgtPlan {
  GemmShape gemm;
  bool transpose_a = false;
  bool transpose_b = false;
  bool transpose_out = false;
  /// Bytes moved by the transpose kernels (read + write per tensor).
  std::int64_t transpose_bytes = 0;
  /// Number of kernel launches (transposes + the GEMM).
  int launches = 1;

  std::string to_string() const;
};

/// Build the plan.  The contraction must be binary; throws otherwise.
/// Index classification: in both inputs and the output -> batch; in the
/// first input and the output -> M; second input and output -> N; both
/// inputs only -> K.  Indices appearing in just one tensor are rejected
/// (sum them out first).
TtgtPlan plan_ttgt(const tensor::Contraction& op,
                   const tensor::Extents& extents);

/// cuBLAS-like GEMM timing: peak DP throughput derated by tile
/// quantization (tiles of 64x64x16) and SM occupancy, floored by the
/// streaming-memory bound, plus one launch.
double model_gemm_us(const GemmShape& shape,
                     const vgpu::DeviceProfile& device);

/// Whole-pipeline timing: transposes at DRAM bandwidth + GEMM + launch
/// overhead per kernel.  Excludes host<->device transfer (compare
/// kernel-resident, like the Figure 3 methodology).
double model_ttgt_us(const TtgtPlan& plan, const vgpu::DeviceProfile& device);

}  // namespace barracuda::ttgt
