#include "ttgt/ttgt.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/error.hpp"

namespace barracuda::ttgt {
namespace {

enum class Role { kBatch, kM, kN, kK };

bool contains(const std::vector<std::string>& v, const std::string& s) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

/// True if the roles of `ref`'s indices appear as contiguous groups in
/// the order given by `group_order` (so the tensor is GEMM-able without a
/// physical transpose).
bool grouped_in_order(const std::vector<Role>& roles,
                      const std::vector<Role>& group_order) {
  std::size_t group = 0;
  for (Role r : roles) {
    while (group < group_order.size() && r != group_order[group]) ++group;
    if (group == group_order.size()) return false;
  }
  return true;
}

}  // namespace

std::string TtgtPlan::to_string() const {
  std::ostringstream os;
  os << "gemm(batch=" << gemm.batch << ", m=" << gemm.m << ", n=" << gemm.n
     << ", k=" << gemm.k << ")";
  if (transpose_a) os << " +transpose(A)";
  if (transpose_b) os << " +transpose(B)";
  if (transpose_out) os << " +transpose(out)";
  return os.str();
}

TtgtPlan plan_ttgt(const tensor::Contraction& op,
                   const tensor::Extents& extents) {
  BARRACUDA_CHECK_MSG(op.inputs.size() == 2,
                      "TTGT requires a binary contraction");
  const auto& a = op.inputs[0];
  const auto& b = op.inputs[1];

  auto role_of = [&](const std::string& ix) {
    const bool in_a = contains(a.indices, ix);
    const bool in_b = contains(b.indices, ix);
    const bool in_out = contains(op.output.indices, ix);
    if (in_a && in_b && in_out) return Role::kBatch;
    if (in_a && in_out) return Role::kM;
    if (in_b && in_out) return Role::kN;
    BARRACUDA_CHECK_MSG(in_a && in_b,
                        "index " << ix
                                 << " appears in only one tensor; sum it "
                                    "out before TTGT planning");
    return Role::kK;
  };

  TtgtPlan plan;
  for (const auto& ix : op.all_indices()) {
    std::int64_t extent = extents.at(ix);
    switch (role_of(ix)) {
      case Role::kBatch: plan.gemm.batch *= extent; break;
      case Role::kM: plan.gemm.m *= extent; break;
      case Role::kN: plan.gemm.n *= extent; break;
      case Role::kK: plan.gemm.k *= extent; break;
    }
  }

  auto roles_of = [&](const std::vector<std::string>& indices) {
    std::vector<Role> roles;
    for (const auto& ix : indices) roles.push_back(role_of(ix));
    return roles;
  };
  auto bytes_of = [&](const tensor::TensorRef& ref) {
    std::int64_t elems = 1;
    for (const auto& ix : ref.indices) elems *= extents.at(ix);
    return elems * 8;
  };

  // A must read as (batch, M, K); B as (batch, K, N); the output as
  // (batch, M, N) — each up to within-group order, which GEMM leading
  // dimensions absorb.
  plan.transpose_a =
      !grouped_in_order(roles_of(a.indices), {Role::kBatch, Role::kM, Role::kK});
  plan.transpose_b =
      !grouped_in_order(roles_of(b.indices), {Role::kBatch, Role::kK, Role::kN});
  plan.transpose_out = !grouped_in_order(
      roles_of(op.output.indices), {Role::kBatch, Role::kM, Role::kN});

  plan.launches = 1;
  if (plan.transpose_a) {
    plan.transpose_bytes += 2 * bytes_of(a);
    ++plan.launches;
  }
  if (plan.transpose_b) {
    plan.transpose_bytes += 2 * bytes_of(b);
    ++plan.launches;
  }
  if (plan.transpose_out) {
    plan.transpose_bytes += 2 * bytes_of(op.output);
    ++plan.launches;
  }
  return plan;
}

double model_gemm_us(const GemmShape& shape,
                     const vgpu::DeviceProfile& device) {
  // Tile quantization: a library GEMM schedules 64x64 output tiles over
  // 16-deep K slices; partial tiles waste the difference.
  constexpr double kTileM = 64, kTileN = 64, kTileK = 16;
  auto padded = [](double v, double tile) {
    return std::ceil(v / tile) * tile;
  };
  const double m = static_cast<double>(shape.m);
  const double n = static_cast<double>(shape.n);
  const double k = static_cast<double>(shape.k);
  const double b = static_cast<double>(shape.batch);
  const double quantization =
      (m * n * k) / (padded(m, kTileM) * padded(n, kTileN) * padded(k, kTileK));

  // Parallelism: output tiles (x batches) must cover the SMs.
  const double tiles =
      b * std::ceil(m / kTileM) * std::ceil(n / kTileN);
  const double utilization =
      std::min(1.0, tiles / (2.0 * device.sm_count));

  const double peak_sustained = 0.85 * device.peak_dp_gflops();
  const double eff = std::max(quantization * utilization, 1e-4);
  const double compute_us =
      static_cast<double>(shape.flops()) / (peak_sustained * eff * 1e3);

  const double bytes = b * (m * k + k * n + 2 * m * n) * 8.0;
  const double memory_us = bytes / (device.dram_bandwidth_gbs * 1e3);

  return std::max(compute_us, memory_us) + device.kernel_launch_us;
}

double model_ttgt_us(const TtgtPlan& plan,
                     const vgpu::DeviceProfile& device) {
  double us = model_gemm_us(plan.gemm, device);
  if (plan.transpose_bytes > 0) {
    us += static_cast<double>(plan.transpose_bytes) /
          (device.dram_bandwidth_gbs * 1e3);
    us += device.kernel_launch_us * (plan.launches - 1);
  }
  // One host-side synchronize per invocation, same as Barracuda's plans.
  us += device.sync_us;
  return us;
}

}  // namespace barracuda::ttgt
