// The benchmark workloads of Table I.
//
//   Eqn.(1)  spectral-element contraction from Figure 2 (10^3)
//   Lg3      local_grad3 from Nekbone (batched, 12^3 elements)
//   Lg3t     local_grad3 transpose-apply from Nekbone
//   TCE ex   the classic four-tensor example of the Tensor Contraction
//            Engine papers [Baumgartner et al.]
//   S1/D1/D2 the 27 loop-driven CCSD(T) triples kernels extracted from
//            NWChem (trip count 16 per dimension), reconstructed as einsum
//            statements from jeffhammond/nwchem-tce-triples-kernels (see
//            DESIGN.md: substitutions).
#pragma once

#include <string>
#include <vector>

#include "core/barracuda.hpp"

namespace barracuda::benchsuite {

struct Benchmark {
  std::string name;
  std::string description;
  core::TuningProblem problem;
};

/// Eqn (1): V[i j k] = Sum([l m n], A[l k] B[m j] C[n i] U[l m n]),
/// all dims 10 (a single spectral element — the paper's "too little work
/// for the GPU" case).
Benchmark eqn1();

/// The two-dimensional spectral-element contraction of Section II:
/// V[i j] = Sum([k l], A[l j] B[k i] U[k l]) — O(p^4) naively, O(p^3)
/// after strength reduction (W[i l] = B[k i] U[k l]; V = A W).
Benchmark eqn1_2d(std::int64_t p = 10);

/// local_grad3: ur/us/ut = derivative contractions of u along the three
/// reference directions, batched over `elements` spectral elements of
/// order p (paper: p=12).
Benchmark lg3(std::int64_t elements = 512, std::int64_t p = 12);

/// local_grad3 transpose-apply: w accumulates D^T contractions of the
/// three gradient fields.
Benchmark lg3t(std::int64_t elements = 512, std::int64_t p = 12);

/// TCE example: S[a b i j] = Sum over c,d,e,f,k,l of
/// A[a c i k] B[b e f l] C2[d f j k] D2[c d e l] (dims = `n`).
Benchmark tce_ex(std::int64_t n = 16);

/// NWChem CCSD(T) kernels.  `k` in [1,9].
Benchmark nwchem_s1(int k, std::int64_t n = 16);
Benchmark nwchem_d1(int k, std::int64_t n = 16);
Benchmark nwchem_d2(int k, std::int64_t n = 16);

/// All nine kernels of one family.
std::vector<Benchmark> s1_family(std::int64_t n = 16);
std::vector<Benchmark> d1_family(std::int64_t n = 16);
std::vector<Benchmark> d2_family(std::int64_t n = 16);

/// The whole family as one nine-statement problem accumulating into t3
/// (t3 stays on the device across kernels) — the Table IV socket-level
/// computation.
Benchmark nwchem_family_combined(char family, std::int64_t n = 16);

/// The four individual computations of Table II, in table order.
std::vector<Benchmark> table2_benchmarks();

}  // namespace barracuda::benchsuite
