#include "benchsuite/nekbone.hpp"

#include <cmath>

#include "cpuexec/interpreter.hpp"
#include "support/error.hpp"

namespace barracuda::benchsuite {
namespace {

/// Bytes moved per CG iteration by the non-contraction vector updates
/// (residual/search-direction AXPYs and dot products): roughly 10 sweeps
/// of the solution-sized field.
double vector_traffic_bytes(const NekboneConfig& c) {
  double n = static_cast<double>(c.elements) * c.p * c.p * c.p;
  return 10.0 * n * 8.0;
}

std::int64_t vector_flops(const NekboneConfig& c) {
  std::int64_t n = c.elements * c.p * c.p * c.p;
  return 10 * n;
}

NekboneModel combine(const NekboneConfig& config, double contraction_us,
                     double vector_us, double transfer_us,
                     std::int64_t contraction_flops) {
  NekboneModel m;
  m.per_iteration_us = contraction_us + vector_us;
  m.transfer_us = transfer_us;
  m.total_us = m.per_iteration_us * config.cg_iterations + transfer_us;
  m.flops = (contraction_flops + vector_flops(config)) *
            static_cast<std::int64_t>(config.cg_iterations);
  m.gflops = m.total_us > 0
                 ? (static_cast<double>(m.flops) / 1e3) / m.total_us
                 : 0;
  return m;
}

}  // namespace

NekboneModel model_nekbone_barracuda(const NekboneConfig& config,
                                     const vgpu::DeviceProfile& device,
                                     const core::TuneOptions& options) {
  Benchmark g3 = lg3(config.elements, config.p);
  Benchmark g3t = lg3t(config.elements, config.p);
  core::TuneResult r3 = core::tune(g3.problem, device, options);
  core::TuneResult r3t = core::tune(g3t.problem, device, options);
  double contraction_us =
      r3.best_timing.kernel_us + r3t.best_timing.kernel_us;
  // Vector updates run on-device at DRAM bandwidth.
  double vector_us =
      vector_traffic_bytes(config) / (device.dram_bandwidth_gbs * 1e3);
  // Fields cross PCIe once per solve (u down, x back).
  double n_bytes =
      static_cast<double>(config.elements) * config.p * config.p * config.p *
      8.0;
  double transfer_us = 2.0 * n_bytes / (device.pcie_bandwidth_gbs * 1e3) +
                       2.0 * device.pcie_latency_us;
  return combine(config, contraction_us, vector_us, transfer_us,
                 r3.flops + r3t.flops);
}

NekboneModel model_nekbone_openacc(const NekboneConfig& config,
                                   const vgpu::DeviceProfile& device,
                                   bool optimized) {
  Benchmark g3 = lg3(config.elements, config.p);
  Benchmark g3t = lg3t(config.elements, config.p);
  core::BaselineResult b3 =
      core::openacc_baseline(g3.problem, device, optimized);
  core::BaselineResult b3t =
      core::openacc_baseline(g3t.problem, device, optimized);
  double contraction_us = b3.timing.kernel_us + b3t.timing.kernel_us;
  double vector_us =
      vector_traffic_bytes(config) / (device.dram_bandwidth_gbs * 1e3);
  double n_bytes =
      static_cast<double>(config.elements) * config.p * config.p * config.p *
      8.0;
  double transfer_us = 2.0 * n_bytes / (device.pcie_bandwidth_gbs * 1e3) +
                       2.0 * device.pcie_latency_us;
  return combine(config, contraction_us, vector_us, transfer_us,
                 b3.flops + b3t.flops);
}

NekboneModel model_nekbone_cpu(const NekboneConfig& config,
                               const cpuexec::CpuProfile& cpu, int threads) {
  Benchmark g3 = lg3(config.elements, config.p);
  Benchmark g3t = lg3t(config.elements, config.p);
  cpuexec::CpuTiming t3 = core::cpu_baseline(g3.problem, cpu, threads);
  cpuexec::CpuTiming t3t = core::cpu_baseline(g3t.problem, cpu, threads);
  double contraction_us = t3.total_us + t3t.total_us;
  double bw = threads == 1 ? cpu.core_bandwidth_gbs
                           : std::min(cpu.socket_bandwidth_gbs,
                                      cpu.core_bandwidth_gbs * threads);
  double vector_us = vector_traffic_bytes(config) / (bw * 1e3);
  std::int64_t contraction_flops =
      core::enumerate_programs(g3.problem).front().flops() +
      core::enumerate_programs(g3t.problem).front().flops();
  return combine(config, contraction_us, vector_us, /*transfer_us=*/0.0,
                 contraction_flops);
}

CgResult solve_cg(const NekboneConfig& config, double tolerance) {
  const std::int64_t p = config.p;
  const std::int64_t e = config.elements;
  const std::int64_t n = e * p * p * p;
  BARRACUDA_CHECK_MSG(n <= (1 << 20),
                      "solve_cg is a correctness vehicle; use small sizes");

  Benchmark g3 = lg3(e, p);
  Benchmark g3t = lg3t(e, p);
  tcr::TcrProgram p3 = core::enumerate_programs(g3.problem).front();
  tcr::TcrProgram p3t = core::enumerate_programs(g3t.problem).front();

  // A fixed derivative-like matrix D (diagonally dominant keeps the
  // operator well conditioned).
  Rng rng(2026);
  tensor::Tensor D = tensor::Tensor::random({p, p}, rng);
  for (std::int64_t i = 0; i < p; ++i) D.at({i, i}) += 2.0;

  // Operator application: w = Lg3t(Lg3(u)) + u  (SPD: M^T M + I).
  auto apply = [&](const tensor::Tensor& u) {
    tensor::TensorEnv env;
    env.emplace("D", D);
    env.emplace("U", u);
    cpuexec::run_sequential(p3, env);
    tensor::TensorEnv env2;
    env2.emplace("D", D);
    env2.emplace("UR", env.at("UR"));
    env2.emplace("US", env.at("US"));
    env2.emplace("UT", env.at("UT"));
    const tensor::Tensor& w = cpuexec::run_sequential(p3t, env2);
    tensor::Tensor out = w;
    for (std::int64_t i = 0; i < n; ++i) out.flat(i) += u.flat(i);
    return out;
  };

  auto dot = [&](const tensor::Tensor& a, const tensor::Tensor& b) {
    double s = 0;
    for (std::int64_t i = 0; i < n; ++i) s += a.flat(i) * b.flat(i);
    return s;
  };

  tensor::Tensor b = tensor::Tensor::random({e, p, p, p}, rng);
  tensor::Tensor x = tensor::Tensor::zeros({e, p, p, p});
  tensor::Tensor r = b;
  tensor::Tensor d = r;
  double rho = dot(r, r);
  const double b_norm = std::sqrt(dot(b, b));

  CgResult result;
  for (int it = 0; it < config.cg_iterations; ++it) {
    tensor::Tensor q = apply(d);
    double alpha = rho / dot(d, q);
    for (std::int64_t i = 0; i < n; ++i) {
      x.flat(i) += alpha * d.flat(i);
      r.flat(i) -= alpha * q.flat(i);
    }
    double rho_next = dot(r, r);
    result.iterations = it + 1;
    result.residual = std::sqrt(rho_next) / b_norm;
    if (result.residual < tolerance) {
      result.converged = true;
      break;
    }
    double beta = rho_next / rho;
    rho = rho_next;
    for (std::int64_t i = 0; i < n; ++i) {
      d.flat(i) = r.flat(i) + beta * d.flat(i);
    }
  }
  return result;
}

}  // namespace barracuda::benchsuite
