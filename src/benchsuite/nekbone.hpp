// Nekbone mini-app: a conjugate-gradient solve over spectral elements
// whose operator application is dominated by the Lg3 / Lg3t tensor
// contractions (Section VI: "a conjugate gradient loop that operates over
// a sequence of tensor contractions", 12^3 problem size).
//
// Two faces:
//   * a *real* CG solver (host execution of the TCR programs) used to
//     validate that the tuned contractions compose into a correct,
//     converging solver, and
//   * *modeled* GPU/CPU timings of the CG loop used by the Table III/IV
//     benches — contraction data stays resident on the device across the
//     solve, transfers happen once.
#pragma once

#include <cstdint>

#include "benchsuite/workloads.hpp"
#include "cpuexec/cpumodel.hpp"
#include "vgpu/device.hpp"

namespace barracuda::benchsuite {

struct NekboneConfig {
  std::int64_t elements = 512;
  std::int64_t p = 12;
  int cg_iterations = 100;
};

/// Modeled performance of the CG loop.
struct NekboneModel {
  double per_iteration_us = 0;
  double transfer_us = 0;  // once per solve
  double total_us = 0;
  std::int64_t flops = 0;  // whole solve
  double gflops = 0;
};

/// Barracuda: lg3 and lg3t individually autotuned, then composed.
NekboneModel model_nekbone_barracuda(const NekboneConfig& config,
                                     const vgpu::DeviceProfile& device,
                                     const core::TuneOptions& options = {});

/// OpenACC baselines (naive / optimized) for Table III.
NekboneModel model_nekbone_openacc(const NekboneConfig& config,
                                   const vgpu::DeviceProfile& device,
                                   bool optimized);

/// Haswell baseline (1 thread = sequential) for Table IV.
NekboneModel model_nekbone_cpu(const NekboneConfig& config,
                               const cpuexec::CpuProfile& cpu, int threads);

/// Result of the real (functionally executed) CG solve.
struct CgResult {
  int iterations = 0;
  double residual = 0;
  bool converged = false;
};

/// Solve (Lg3t∘Lg3 + I) x = b with CG, executing the contraction programs
/// on the host.  Small sizes only (this is a correctness vehicle).
CgResult solve_cg(const NekboneConfig& config, double tolerance = 1e-8);

}  // namespace barracuda::benchsuite
