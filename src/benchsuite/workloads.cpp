#include "benchsuite/workloads.hpp"

#include <sstream>

#include "support/error.hpp"

namespace barracuda::benchsuite {
namespace {

std::string dims_line(const std::vector<std::string>& names,
                      std::int64_t extent) {
  std::string line = "dim";
  for (const auto& n : names) line += " " + n;
  line += " = " + std::to_string(extent);
  return line;
}

}  // namespace

Benchmark eqn1() {
  Benchmark b;
  b.name = "Eqn.(1)";
  b.description = "Spectral element example from Figure 2";
  b.problem = core::TuningProblem::from_dsl(R"(
dim i j k l m n = 10
V[i j k] = Sum([l m n], A[l k] * B[m j] * C[n i] * U[l m n])
)",
                                            "eqn1");
  return b;
}

Benchmark eqn1_2d(std::int64_t p) {
  Benchmark b;
  b.name = "Eqn.(1) 2D";
  b.description = "Two-dimensional spectral element contraction (Sec. II)";
  std::ostringstream dsl;
  dsl << dims_line({"i", "j", "k", "l"}, p) << "\n"
      << "V[i j] = Sum([k l], A[l j] * B[k i] * U[k l])\n";
  b.problem = core::TuningProblem::from_dsl(dsl.str(), "eqn1_2d");
  return b;
}

Benchmark lg3(std::int64_t elements, std::int64_t p) {
  Benchmark b;
  b.name = "Lg3";
  b.description = "local_grad3 from Nekbone";
  std::ostringstream dsl;
  dsl << "dim e = " << elements << "\n"
      << dims_line({"i", "j", "k", "l"}, p) << "\n"
      << "UR[e i j k] += D[i l] * U[e l j k]\n"
      << "US[e i j k] += D[j l] * U[e i l k]\n"
      << "UT[e i j k] += D[k l] * U[e i j l]\n";
  b.problem = core::TuningProblem::from_dsl(dsl.str(), "lg3");
  return b;
}

Benchmark lg3t(std::int64_t elements, std::int64_t p) {
  Benchmark b;
  b.name = "Lg3t";
  b.description = "local_grad3t from Nekbone";
  std::ostringstream dsl;
  dsl << "dim e = " << elements << "\n"
      << dims_line({"i", "j", "k", "l"}, p) << "\n"
      << "W[e i j k] += D[l i] * UR[e l j k]\n"
      << "W[e i j k] += D[l j] * US[e i l k]\n"
      << "W[e i j k] += D[l k] * UT[e i j l]\n";
  b.problem = core::TuningProblem::from_dsl(dsl.str(), "lg3t");
  return b;
}

Benchmark tce_ex(std::int64_t n) {
  Benchmark b;
  b.name = "TCE ex";
  b.description = "TCE example tensor (Baumgartner et al.)";
  std::ostringstream dsl;
  dsl << dims_line({"a", "b", "i", "j", "c", "d", "e", "f", "k", "l"}, n)
      << "\n"
      << "S[a b i j] = Sum([c d e f k l], "
         "A[a c i k] * B[b e f l] * C2[d f j k] * D2[c d e l])\n";
  b.problem = core::TuningProblem::from_dsl(dsl.str(), "tce_ex");
  return b;
}

namespace {

/// The nine (h, p) role assignments shared by each CCSD(T) kernel family:
/// which hole index pairs with the first tensor and which particle index
/// is pulled out of v2.
struct Roles {
  // Partition of {h1,h2,h3}: `h` goes to the first tensor, {ha,hb} stay
  // on v2; partition of {p4,p5,p6}: `p` goes to the first tensor for
  // s1/d2 (or v2 for d1), the others stay.
  const char* h;
  const char* ha;
  const char* hb;
  const char* p;
  const char* pa;
  const char* pb;
};

Roles roles_for(int k) {
  BARRACUDA_CHECK_MSG(k >= 1 && k <= 9, "kernel index must be in [1,9]");
  static const Roles table[9] = {
      // p-group cycles every 3 kernels, h-group cycles within.
      {"h1", "h3", "h2", "p4", "p6", "p5"},  // _1
      {"h2", "h3", "h1", "p4", "p6", "p5"},  // _2
      {"h3", "h2", "h1", "p4", "p6", "p5"},  // _3
      {"h1", "h3", "h2", "p5", "p6", "p4"},  // _4
      {"h2", "h3", "h1", "p5", "p6", "p4"},  // _5
      {"h3", "h2", "h1", "p5", "p6", "p4"},  // _6
      {"h1", "h3", "h2", "p6", "p5", "p4"},  // _7
      {"h2", "h3", "h1", "p6", "p5", "p4"},  // _8
      {"h3", "h2", "h1", "p6", "p5", "p4"},  // _9
  };
  return table[k - 1];
}

std::string nwchem_dims(std::int64_t n) {
  return dims_line({"h1", "h2", "h3", "p4", "p5", "p6", "h7", "p7"}, n);
}

}  // namespace

Benchmark nwchem_s1(int k, std::int64_t n) {
  Roles r = roles_for(k);
  Benchmark b;
  b.name = "s1_" + std::to_string(k);
  b.description = "NWChem CCSD(T) singles kernel";
  std::ostringstream dsl;
  dsl << nwchem_dims(n) << "\n"
      << "t3[h3 h2 h1 p6 p5 p4] += t1[" << r.p << " " << r.h << "] * v2["
      << r.ha << " " << r.hb << " " << r.pa << " " << r.pb << "]\n";
  b.problem = core::TuningProblem::from_dsl(dsl.str(), b.name);
  return b;
}

Benchmark nwchem_d1(int k, std::int64_t n) {
  Roles r = roles_for(k);
  Benchmark b;
  b.name = "d1_" + std::to_string(k);
  b.description = "NWChem CCSD(T) doubles kernel (h7 contraction)";
  std::ostringstream dsl;
  // t2 carries h7, two particles and one hole; v2 carries the remaining
  // holes, the remaining particle and h7.
  dsl << nwchem_dims(n) << "\n"
      << "t3[h3 h2 h1 p6 p5 p4] += t2[h7 " << r.pa << " " << r.pb << " "
      << r.h << "] * v2[" << r.ha << " " << r.hb << " " << r.p
      << " h7]\n";
  b.problem = core::TuningProblem::from_dsl(dsl.str(), b.name);
  return b;
}

Benchmark nwchem_d2(int k, std::int64_t n) {
  Roles r = roles_for(k);
  Benchmark b;
  b.name = "d2_" + std::to_string(k);
  b.description = "NWChem CCSD(T) doubles kernel (p7 contraction)";
  std::ostringstream dsl;
  dsl << nwchem_dims(n) << "\n"
      << "t3[h3 h2 h1 p6 p5 p4] += t2[p7 " << r.p << " " << r.h << " "
      << r.ha << "] * v2[p7 " << r.hb << " " << r.pa << " " << r.pb
      << "]\n";
  b.problem = core::TuningProblem::from_dsl(dsl.str(), b.name);
  return b;
}

std::vector<Benchmark> s1_family(std::int64_t n) {
  std::vector<Benchmark> out;
  for (int k = 1; k <= 9; ++k) out.push_back(nwchem_s1(k, n));
  return out;
}

std::vector<Benchmark> d1_family(std::int64_t n) {
  std::vector<Benchmark> out;
  for (int k = 1; k <= 9; ++k) out.push_back(nwchem_d1(k, n));
  return out;
}

std::vector<Benchmark> d2_family(std::int64_t n) {
  std::vector<Benchmark> out;
  for (int k = 1; k <= 9; ++k) out.push_back(nwchem_d2(k, n));
  return out;
}

Benchmark nwchem_family_combined(char family, std::int64_t n) {
  std::vector<Benchmark> members;
  std::string fname;
  switch (family) {
    case 's': members = s1_family(n); fname = "s1"; break;
    case 'd': members = d1_family(n); fname = "d1"; break;
    case '2': members = d2_family(n); fname = "d2"; break;
    default:
      throw InternalError("unknown NWChem family (use 's', 'd' or '2')");
  }
  Benchmark b;
  b.name = "NWCHEM " + fname;
  b.description = "all nine " + fname + " kernels accumulating into t3";
  b.problem.name = fname + "_all";
  b.problem.extents = members[0].problem.extents;
  for (const auto& m : members) {
    b.problem.statements.push_back(m.problem.statements.at(0));
  }
  return b;
}

std::vector<Benchmark> table2_benchmarks() {
  return {eqn1(), lg3(), lg3t(), tce_ex()};
}

}  // namespace barracuda::benchsuite
