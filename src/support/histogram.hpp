// Fixed-bucket, mergeable latency histograms for demand tracking.
//
// The serving layer records one served-latency sample per request into a
// per-signature Histogram hung off the plan registry's demand table.  The
// recording path is called from every client thread concurrently, so it
// must be wait-free: each bucket is a relaxed atomic counter and min/max
// are CAS loops, no mutex anywhere.  Bucket edges are deterministic
// (geometric powers of two over the microsecond range the modeled
// latencies live in) so two histograms recorded on different machines, in
// different processes, or merged in either order produce the exact same
// counts — merge is plain bucket-wise addition, which makes it
// associative and commutative by construction, the property the
// cross-process registry merge relies on.
//
// Quantiles over bucketed data are inherently interval estimates: the
// nearest-rank quantile of the underlying raw sample is guaranteed to lie
// in [quantile_low(p), quantile_high(p)] — the lower and upper edge of
// the bucket holding the rank (the overflow bucket's upper bound is the
// recorded maximum).  tests/support/histogram_test.cpp pins the bracket
// against support::percentile_sorted on the raw samples.
#pragma once

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "support/error.hpp"

namespace barracuda::support {

/// Immutable copy of a Histogram's state.  Cheap to merge and to ship
/// through ServeStats; carries everything needed to answer quantile
/// bracket queries without touching the live atomics again.
struct HistogramSnapshot {
  std::vector<double> edges;          ///< strictly ascending bucket edges
  std::vector<std::uint64_t> counts;  ///< edges.size() + 1 buckets
  std::uint64_t total = 0;            ///< sum of counts
  double min = 0.0;                   ///< smallest recorded value (0 if empty)
  double max = 0.0;                   ///< largest recorded value (0 if empty)

  /// Bucket-wise addition.  Requires identical edges; min/max combine as
  /// the usual lattice, so merge is associative and commutative.
  void merge(const HistogramSnapshot& other) {
    BARRACUDA_CHECK_MSG(edges == other.edges,
                        "cannot merge histograms with different bucket edges");
    BARRACUDA_CHECK(counts.size() == other.counts.size());
    for (std::size_t i = 0; i < counts.size(); ++i) counts[i] += other.counts[i];
    if (other.total > 0) {
      min = total > 0 ? std::min(min, other.min) : other.min;
      max = total > 0 ? std::max(max, other.max) : other.max;
    }
    total += other.total;
  }

  /// Lower bound of the bucket containing the nearest-rank p-quantile
  /// (the same rank rule as percentile_sorted: ceil(p/100 * total)).
  /// p must be in (0, 100]; an empty histogram returns 0, matching the
  /// empty-sample rule of percentile_sorted.
  double quantile_low(double p) const { return quantile_bucket_bound(p, false); }

  /// Upper bound of that bucket; the overflow bucket reports the
  /// recorded maximum so the bound is always finite.
  double quantile_high(double p) const { return quantile_bucket_bound(p, true); }

 private:
  double quantile_bucket_bound(double p, bool upper) const {
    BARRACUDA_CHECK_MSG(p > 0 && p <= 100, "percentile must be in (0, 100]");
    if (total == 0) return 0.0;
    const auto rank = static_cast<std::uint64_t>(
        std::ceil(p / 100.0 * static_cast<double>(total)));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
      seen += counts[i];
      if (seen >= rank) {
        if (upper) return i < edges.size() ? edges[i] : max;
        return i == 0 ? std::min(0.0, min) : edges[i - 1];
      }
    }
    return max;  // unreachable when counts sum to total
  }
};

/// Wait-free fixed-bucket histogram.  Bucket i covers [edges[i-1],
/// edges[i]) with bucket 0 reaching down to -inf and the last (overflow)
/// bucket up to +inf.  All mutation is relaxed-atomic: exact counts are
/// still guaranteed (fetch_add never loses increments), only cross-bucket
/// ordering is unconstrained, which a histogram does not care about.
class Histogram {
 public:
  /// Default edges: 0.25us * 2^i for 25 steps — geometric coverage from
  /// a quarter microsecond to ~4.2 seconds, the range modeled kernel
  /// latencies occupy.  Deterministic so independently constructed
  /// histograms are always mergeable.
  static std::vector<double> default_edges() {
    std::vector<double> edges;
    edges.reserve(25);
    double e = 0.25;
    for (int i = 0; i < 25; ++i, e *= 2.0) edges.push_back(e);
    return edges;
  }

  explicit Histogram(std::vector<double> edges = default_edges())
      : edges_(std::move(edges)),
        counts_(std::make_unique<std::atomic<std::uint64_t>[]>(edges_.size() + 1)) {
    BARRACUDA_CHECK_MSG(!edges_.empty(), "histogram needs at least one edge");
    BARRACUDA_CHECK_MSG(std::is_sorted(edges_.begin(), edges_.end()) &&
                            std::adjacent_find(edges_.begin(), edges_.end()) ==
                                edges_.end(),
                        "histogram edges must be strictly ascending");
    for (std::size_t i = 0; i <= edges_.size(); ++i)
      counts_[i].store(0, std::memory_order_relaxed);
    min_.store(std::numeric_limits<double>::infinity(),
               std::memory_order_relaxed);
    max_.store(-std::numeric_limits<double>::infinity(),
               std::memory_order_relaxed);
  }

  /// Record `count` occurrences of `value`.  Wait-free apart from the
  /// min/max CAS loops (which converge immediately absent contention).
  void record(double value, std::uint64_t count = 1) {
    BARRACUDA_CHECK_MSG(std::isfinite(value),
                        "histogram values must be finite");
    if (count == 0) return;
    const std::size_t bucket = static_cast<std::size_t>(
        std::upper_bound(edges_.begin(), edges_.end(), value) - edges_.begin());
    counts_[bucket].fetch_add(count, std::memory_order_relaxed);
    double cur = min_.load(std::memory_order_relaxed);
    while (value < cur &&
           !min_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
    }
    cur = max_.load(std::memory_order_relaxed);
    while (value > cur &&
           !max_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
    }
  }

  const std::vector<double>& edges() const { return edges_; }

  /// Point-in-time copy.  Concurrent record() calls may or may not be
  /// included (each either fully lands in a later snapshot or not — no
  /// increment is ever lost), which is the usual relaxed-counter
  /// contract the serving stats already follow.
  HistogramSnapshot snapshot() const {
    HistogramSnapshot snap;
    snap.edges = edges_;
    snap.counts.resize(edges_.size() + 1);
    for (std::size_t i = 0; i <= edges_.size(); ++i) {
      snap.counts[i] = counts_[i].load(std::memory_order_relaxed);
      snap.total += snap.counts[i];
    }
    if (snap.total > 0) {
      snap.min = min_.load(std::memory_order_relaxed);
      snap.max = max_.load(std::memory_order_relaxed);
    }
    return snap;
  }

 private:
  std::vector<double> edges_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
  std::atomic<double> min_;
  std::atomic<double> max_;
};

}  // namespace barracuda::support
