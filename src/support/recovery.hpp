// Persistence recovery policy shared by the on-disk stores
// (core::EvalCache, serve::PlanRegistry).
//
// The default contract is loud rejection: a corrupt file throws, because
// silently seeding the tuner or the serving layer with garbage is worse
// than failing.  kSalvage is the opt-in production-recovery mode: keep
// every record that still parses, drop the rest, and quarantine the
// original file to `<path>.corrupt` so the next strict load never trips
// over it again — the caller re-publishes the salvaged state with the
// usual atomic save.
#pragma once

#include <cstddef>
#include <string>

namespace barracuda::support {

enum class RecoveryPolicy {
  /// Reject corrupt files loudly (throw on the first malformed line).
  kStrict,
  /// Keep the parseable records, drop malformed lines, and move the
  /// original file aside to `<path>.corrupt`.
  kSalvage,
};

/// What a kSalvage load did (all zeros / empty after a clean load).
struct SalvageReport {
  std::size_t kept = 0;     ///< records loaded
  std::size_t dropped = 0;  ///< malformed lines skipped (header counts as 1)
  /// Path the damaged original was moved to (empty when the file was
  /// clean and no quarantine happened).
  std::string quarantine_path;

  bool salvaged() const { return !quarantine_path.empty(); }
};

}  // namespace barracuda::support
