// Error handling primitives shared by every Barracuda module.
//
// All user-facing failures (DSL syntax errors, malformed TCR programs,
// illegal transformation recipes) throw barracuda::Error with a formatted
// message.  Internal invariant violations use BARRACUDA_CHECK, which throws
// InternalError carrying the failing expression and source location so that
// tests can assert on misuse without aborting the process.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>

namespace barracuda {

/// Base class for all errors raised by the Barracuda library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A malformed input program (DSL text, TCR text, bad shapes, ...).
class ParseError : public Error {
 public:
  ParseError(std::string_view source, int line, const std::string& message)
      : Error(format(source, line, message)), line_(line) {}

  int line() const { return line_; }

 private:
  static std::string format(std::string_view source, int line,
                            const std::string& message) {
    std::ostringstream os;
    os << source << ":" << line << ": " << message;
    return os.str();
  }
  int line_ = 0;
};

/// A violated internal invariant; indicates a bug in Barracuda itself or a
/// misuse of an API precondition.
class InternalError : public Error {
 public:
  using Error::Error;
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& message) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed: " << expr;
  if (!message.empty()) os << " — " << message;
  throw InternalError(os.str());
}
}  // namespace detail

}  // namespace barracuda

/// Assert an invariant; throws barracuda::InternalError on failure.
#define BARRACUDA_CHECK(expr)                                              \
  do {                                                                     \
    if (!(expr))                                                           \
      ::barracuda::detail::check_failed(#expr, __FILE__, __LINE__, "");    \
  } while (0)

/// Assert an invariant with an explanatory message (streamed).
#define BARRACUDA_CHECK_MSG(expr, msg)                                     \
  do {                                                                     \
    if (!(expr)) {                                                         \
      std::ostringstream barracuda_check_os_;                              \
      barracuda_check_os_ << msg;                                          \
      ::barracuda::detail::check_failed(#expr, __FILE__, __LINE__,         \
                                        barracuda_check_os_.str());        \
    }                                                                      \
  } while (0)
