// Nearest-rank percentiles for latency summaries.
//
// The serving harnesses (bench_serve, the CLI --serve driver) summarize
// request latencies as p50/p95/max.  Both used to hand-roll the index
// arithmetic — `all[all.size() * 95 / 100]` — which is a truncating
// formula that indexes the 94.x-th percentile for most sample counts
// and reads the upper middle for p50 on even sizes.  The correct
// nearest-rank statistic lives here once, so every harness agrees and a
// unit test (tests/support/percentile_test.cpp) can pin the arithmetic
// on known small vectors.
#pragma once

#include <cmath>
#include <cstddef>
#include <vector>

#include "support/error.hpp"

namespace barracuda::support {

/// Nearest-rank percentile of an ascending-sorted sample: the smallest
/// element such that at least p% of the sample is <= it, i.e.
/// sorted[ceil(p/100 * N) - 1].  p must be in (0, 100]; p = 100 is the
/// maximum.  An empty sample returns 0 (the "no requests" row of a
/// latency table), never an out-of-range read.
inline double percentile_sorted(const std::vector<double>& sorted, double p) {
  BARRACUDA_CHECK_MSG(p > 0 && p <= 100, "percentile must be in (0, 100]");
  if (sorted.empty()) return 0.0;
  const double rank =
      std::ceil(p / 100.0 * static_cast<double>(sorted.size()));
  std::size_t index = rank < 1.0 ? 0 : static_cast<std::size_t>(rank) - 1;
  if (index >= sorted.size()) index = sorted.size() - 1;
  return sorted[index];
}

}  // namespace barracuda::support
