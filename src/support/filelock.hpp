// Advisory inter-process file locking + atomic-publish helpers shared by
// the persistent stores (core::EvalCache, serve::PlanRegistry).
//
// Protocol: the lock file is `<path>.lock`, created on first use and
// never deleted; a writer holds an exclusive flock(2) on it across its
// whole read-modify-write.  flock locks belong to the open file
// description, so the kernel releases them when the holder exits or
// crashes — a leftover `.lock` FILE is therefore harmless (stale-lock
// recovery needs no timeouts or pid probes; the next flock simply
// succeeds).  Readers that skip the lock are still safe as long as the
// data file is only ever replaced via atomic rename.  On platforms
// without flock the lock degrades to a no-op: writers stay crash-safe
// (rename) but concurrent writers may lose updates.
#pragma once

#include <string>

#ifndef _WIN32
#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>
#endif

#include "support/error.hpp"
#include "support/faultinject.hpp"

namespace barracuda::support {

/// Exclusive advisory lock on `path`, held for the object's lifetime.
class FileLock {
 public:
  explicit FileLock(const std::string& path) {
    // Chaos probe: a lock-acquisition failure (EMFILE, a read-only
    // filesystem, ...) must surface as a clean Error from merge_save,
    // never a partial merge.
    fault::maybe_throw("filelock.acquire");
#ifndef _WIN32
    fd_ = ::open(path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0666);
    if (fd_ < 0) {
      throw Error("cannot open lock file: " + path);
    }
    if (::flock(fd_, LOCK_EX) != 0) {
      ::close(fd_);
      throw Error("cannot lock lock file: " + path);
    }
#else
    (void)path;
#endif
  }
  ~FileLock() {
#ifndef _WIN32
    ::flock(fd_, LOCK_UN);
    ::close(fd_);
#endif
  }
  FileLock(const FileLock&) = delete;
  FileLock& operator=(const FileLock&) = delete;

 private:
  int fd_ = -1;
};

/// Uniquifies a process's temp-file names so uncoordinated savers
/// sharing one directory never write to the same temp path.
inline unsigned long process_tag() {
#ifndef _WIN32
  return static_cast<unsigned long>(::getpid());
#else
  return 0;
#endif
}

}  // namespace barracuda::support
