// Advisory inter-process file locking + atomic-publish helpers shared by
// the persistent stores (core::EvalCache, serve::PlanRegistry).
//
// Protocol: the lock file is `<path>.lock`, created on demand by whoever
// wants the lock and UNLINKED by the releasing holder, so registry and
// cache directories no longer accumulate stale `.lock` litter across
// runs.  Unlinking a lock file is racy if done naively (a waiter blocked
// in flock(2) on the old inode would "acquire" a lock nobody else can
// see), so acquisition uses the open-lock-stat-verify pattern:
//
//   1. open(path, O_CREAT)            — get an fd on whatever inode is
//                                       at `path` right now
//   2. flock(fd, LOCK_EX)             — wait for exclusivity on it
//   3. fstat(fd) == stat(path)?       — still the live lock file?
//        yes: we hold the lock; done.
//        no:  the previous holder unlinked it while we waited — our
//             lock is on a dead inode nobody else will ever open.
//             Close and retry on the fresh inode.
//
// Release unlinks `path` BEFORE dropping the flock: while we hold the
// exclusive lock we are the only verified holder, so the inode at
// `path` is still ours to remove, and any waiter blocked on it will
// fail the verify step and retry.  flock locks belong to the open file
// description, so a crashed holder's lock (and its leftover file, which
// the next acquirer simply re-verifies or re-creates) are both inert —
// stale-lock recovery still needs no timeouts or pid probes.  Readers
// that skip the lock are still safe as long as the data file is only
// ever replaced via atomic rename.  On platforms without flock the lock
// degrades to a no-op: writers stay crash-safe (rename) but concurrent
// writers may lose updates.
#pragma once

#include <string>

#ifndef _WIN32
#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

#include "support/error.hpp"
#include "support/faultinject.hpp"

namespace barracuda::support {

/// Exclusive advisory lock on `path`, held for the object's lifetime.
/// The lock file is removed on release (see the protocol above).
class FileLock {
 public:
  explicit FileLock(const std::string& path) : path_(path) {
    // Chaos probe: a lock-acquisition failure (EMFILE, a read-only
    // filesystem, ...) must surface as a clean Error from merge_save,
    // never a partial merge.
    fault::maybe_throw("filelock.acquire");
#ifndef _WIN32
    for (;;) {
      fd_ = ::open(path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0666);
      if (fd_ < 0) {
        throw Error("cannot open lock file: " + path);
      }
      if (::flock(fd_, LOCK_EX) != 0) {
        ::close(fd_);
        throw Error("cannot lock lock file: " + path);
      }
      struct stat held{}, live{};
      if (::fstat(fd_, &held) != 0) {
        ::close(fd_);
        throw Error("cannot stat lock file: " + path);
      }
      // Verify the locked inode is still what `path` names.  A failed
      // stat (ENOENT) or a different inode means the previous holder
      // unlinked the file while we waited in flock — our exclusivity is
      // on a dead inode no future waiter will open, so retry on the
      // fresh one.
      if (::stat(path.c_str(), &live) == 0 && held.st_dev == live.st_dev &&
          held.st_ino == live.st_ino) {
        return;
      }
      ::close(fd_);
    }
#endif
  }
  ~FileLock() {
#ifndef _WIN32
    // Unlink while still holding the exclusive lock: we are the only
    // verified holder, so the inode at path_ is ours, and waiters
    // blocked on it fail the verify step and retry on whatever gets
    // created next.  close() drops the flock.
    ::unlink(path_.c_str());
    ::close(fd_);
#endif
  }
  FileLock(const FileLock&) = delete;
  FileLock& operator=(const FileLock&) = delete;

 private:
  std::string path_;
  int fd_ = -1;
};

/// Uniquifies a process's temp-file names so uncoordinated savers
/// sharing one directory never write to the same temp path.
inline unsigned long process_tag() {
#ifndef _WIN32
  return static_cast<unsigned long>(::getpid());
#else
  return 0;
#endif
}

}  // namespace barracuda::support
