// Fixed-width text table rendering for benchmark harnesses.
//
// The bench binaries print paper-style tables (Table II–IV) to stdout; this
// keeps the formatting logic in one place so every table lines up the same
// way and can be diffed across runs.
#pragma once

#include <string>
#include <vector>

namespace barracuda {

/// Accumulates rows of string cells and renders them with aligned columns.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append one row; it may have fewer cells than the header (padded).
  void add_row(std::vector<std::string> cells);

  /// Render with a header rule and two-space column gaps.
  std::string render() const;

  std::size_t row_count() const { return rows_.size(); }

  /// Format helpers used by the bench harnesses.
  static std::string fixed(double v, int precision);
  static std::string speedup(double v);   // "23.74x"
  static std::string gflops(double v);    // "42.74"
  static std::string seconds(double v);   // "324.8s"

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace barracuda
