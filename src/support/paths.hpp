// Startup-time validation of user-supplied persistence paths
// (BARRACUDA_CACHE, BARRACUDA_REGISTRY, --registry).
//
// The persistent stores publish via sibling temp files + rename, so a
// path in an unwritable directory fails at the FIRST BACKGROUND SAVE —
// minutes into a serve run, on a pool worker, long after the operator
// stopped watching.  validate_writable_path() front-loads that failure:
// the CLI calls it before serving a single request, so a bad path is a
// clear startup error instead of a buried background one.
#pragma once

#include <cstdio>
#include <fstream>
#include <string>

#include "support/error.hpp"
#include "support/filelock.hpp"

namespace barracuda::support {

/// Throw Error unless `path` can be created/written and its directory
/// accepts the sibling temp files the atomic-save protocol needs.
/// Probes by creating and removing `<path>.probe.<pid>`; the data file
/// itself is never touched (an existing file is left exactly as is, a
/// missing one is not created).
inline void validate_writable_path(const std::string& path,
                                   const std::string& what) {
  const std::string probe =
      path + ".probe." + std::to_string(process_tag());
  {
    std::ofstream out(probe);
    if (!out) {
      throw Error(what + " path is not writable: " + path +
                  " (cannot create files next to it — check that the "
                  "directory exists and is writable)");
    }
    out << "probe\n";
    out.flush();
    if (!out) {
      std::remove(probe.c_str());
      throw Error(what + " path is not writable: " + path +
                  " (write to its directory failed)");
    }
  }
  std::remove(probe.c_str());
}

}  // namespace barracuda::support
