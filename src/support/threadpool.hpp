// Fixed-size thread pool for parallel batch evaluation.
//
// The pool backs Evaluate_Parallel (Algorithm 2): a search hands it a
// batch of independent candidate evaluations and receives every result
// before continuing.  Deliberately minimal — a fixed set of workers and a
// blocking parallel_for, no work stealing, no futures — because the
// callers' unit of work (one variant measurement) is orders of magnitude
// larger than any scheduling overhead, and a simple pool is easy to prove
// race-free under TSan (see BARRACUDA_SANITIZE in the top-level
// CMakeLists).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace barracuda::support {

/// A fixed set of worker threads executing submitted tasks FIFO.
/// Construction spawns the workers; destruction stops them after the
/// queue drains (every parallel_for has returned by then, since the call
/// blocks until its whole batch completed).
///
/// Thread-safety contract: parallel_for is safe to call from multiple
/// driver threads (each batch carries its own completion state), but the
/// tasks of one batch must only touch state disjoint per index or
/// internally synchronized.  Nested parallel_for (calling it from inside
/// a task) is not supported and would deadlock a fully-busy pool.
class ThreadPool {
 public:
  /// Spawn `threads` workers (>= 1 checked).  A pool of 1 still runs
  /// tasks on its single worker, which keeps the execution environment
  /// (stack, thread identity) uniform across n_jobs settings.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Run fn(0), ..., fn(n-1) across the workers and block until every
  /// call returned.  Results must be written by `fn` into per-index
  /// slots; the pool imposes no ordering between indices.  The first
  /// exception thrown by any fn is rethrown here after the batch drains
  /// (remaining indices still run, so per-index output slots stay
  /// consistent).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_cv_;  // workers wait for tasks
  std::deque<std::function<void()>> tasks_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace barracuda::support
