// Fixed-size thread pool for parallel batch work across the pipeline.
//
// One process-wide pool (ThreadPool::shared) backs every parallel layer:
// Evaluate_Parallel batches (Algorithm 2), ExtraTrees tree construction
// and batch prediction, tune_specializations and the bench harness
// per-kernel loops.  Deliberately minimal — a fixed set of workers and a
// blocking parallel_for, no work stealing, no futures — because the
// callers' unit of work (one variant measurement, one tree build) is
// orders of magnitude larger than any scheduling overhead, and a simple
// pool is easy to prove race-free under TSan (see BARRACUDA_SANITIZE in
// the top-level CMakeLists).
//
// Nested parallelism is governed by a pool-depth guard: a parallel_for
// (or parallel_apply) issued from inside a pooled task runs inline on the
// calling worker instead of re-entering the queue.  One `n_jobs` knob at
// the outermost parallel layer therefore bounds the worker count of the
// whole pipeline — an outer parallel tune_specializations makes every
// search/fit inside it sequential, with no oversubscription and no
// deadlock.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace barracuda::support {

/// A fixed set of worker threads executing submitted tasks FIFO.
/// Construction spawns the workers; destruction stops them after the
/// queue drains (every parallel_for has returned by then, since the call
/// blocks until its whole batch completed).
///
/// Thread-safety contract: parallel_for is safe to call from multiple
/// driver threads (each batch carries its own completion state), but the
/// tasks of one batch must only touch state disjoint per index or
/// internally synchronized.  parallel_for called from inside a pooled
/// task does not deadlock: the depth guard detects the worker thread and
/// runs the batch inline.
class ThreadPool {
 public:
  /// Spawn `threads` workers (>= 1 checked).  A pool of 1 still runs
  /// tasks on its single worker, which keeps the execution environment
  /// (stack, thread identity) uniform across n_jobs settings.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const;

  /// Grow the pool to at least `threads` workers (never shrinks).  Used
  /// by the shared pool so an explicit `--jobs N` above the current size
  /// gets its N concurrent lanes even when N exceeds the core count
  /// (measurement-latency-bound batches overlap waits, not compute).
  void ensure(std::size_t threads);

  /// Enqueue one fire-and-forget task and return immediately.  The task
  /// runs on some worker in FIFO order relative to other submissions;
  /// the pool provides no completion signal — callers that need one
  /// (e.g. serve::TuningService's background tunes) track it themselves
  /// with a counter + condition variable captured by the task.  A task
  /// that throws is still a caller bug (the exception has nowhere to
  /// go), but it must not take the worker — or the process — down with
  /// it: the invocation is wrapped, the escape is swallowed and counted
  /// in dropped_exceptions(), and the worker moves on to the next task.
  /// Submitting from a pool worker is allowed (the task is queued, not
  /// run inline): submit never blocks, so it cannot deadlock the way a
  /// nested blocking batch could.
  void submit(std::function<void()> task);

  /// Exceptions that escaped submitted tasks and were swallowed to keep
  /// the worker alive.  Nonzero means some caller broke the submit
  /// contract (fallible work belongs in try/catch inside the task) —
  /// surface this counter in health reports, not just tests.
  std::size_t dropped_exceptions() const;

  /// Run fn(0), ..., fn(n-1) across the workers and block until every
  /// call returned.  Results must be written by `fn` into per-index
  /// slots; the pool imposes no ordering between indices.  The first
  /// exception thrown by any fn is rethrown here after the batch drains
  /// (remaining indices still run, so per-index output slots stay
  /// consistent).  Called from a pool worker (any pool), the batch runs
  /// inline on the caller with the same exception semantics.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// The process-wide pool, lazily created with hardware_concurrency()
  /// workers and grown on demand by ensure().
  static ThreadPool& shared();

  /// True on a thread owned by any ThreadPool — the pool-depth guard the
  /// parallel helpers consult before dispatching.
  static bool on_worker_thread();

 private:
  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;  // workers wait for tasks
  std::deque<std::function<void()>> tasks_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
  std::atomic<std::size_t> dropped_exceptions_{0};
};

/// Resolve a user-facing jobs knob into a worker count: positive values
/// pass through, 0 means "hardware concurrency" and negative values throw
/// Error (a silent clamp would hide a caller bug).
std::size_t resolve_jobs(int n_jobs);

/// Run fn(0), ..., fn(n-1) with at most `jobs` concurrent lanes on the
/// shared pool: the index range is split into min(jobs, n) strided shards
/// (shard s handles s, s+jobs, s+2*jobs, ...), one pooled task per shard,
/// so a bounded jobs count holds even when the shared pool is larger.
/// Runs inline — plain sequential loop — when jobs <= 1, n <= 1, or the
/// caller is already a pool worker (the depth guard).  Exception
/// semantics: within a shard, indices after a throwing index are skipped;
/// other shards complete; the first exception is rethrown.
void parallel_apply(std::size_t jobs, std::size_t n,
                    const std::function<void(std::size_t)>& fn);

}  // namespace barracuda::support
