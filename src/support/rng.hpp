// Deterministic random number generation.
//
// Every stochastic component (SURF sampling, ExtraTrees split selection,
// random-search baselines, test data generation) draws from an explicitly
// seeded Rng so that runs, tests and benchmark tables are reproducible.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "support/error.hpp"

namespace barracuda {

/// Thin deterministic wrapper over a 64-bit Mersenne Twister with the
/// sampling helpers the search components need.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : engine_(seed) {}

  /// Uniform integer in [0, n).  Requires n > 0.
  std::size_t index(std::size_t n) {
    BARRACUDA_CHECK(n > 0);
    return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi) {
    BARRACUDA_CHECK(lo <= hi);
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Uniform real in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Standard normal draw.
  double normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Bernoulli draw with probability p of true.
  bool flip(double p = 0.5) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Sample k distinct indices from [0, n) without replacement
  /// (partial Fisher-Yates).  Requires k <= n.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k) {
    BARRACUDA_CHECK(k <= n);
    std::vector<std::size_t> pool(n);
    for (std::size_t i = 0; i < n; ++i) pool[i] = i;
    for (std::size_t i = 0; i < k; ++i) {
      std::size_t j = i + index(n - i);
      std::swap(pool[i], pool[j]);
    }
    pool.resize(k);
    return pool;
  }

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[index(i)]);
    }
  }

  /// Fork a child generator whose stream is decorrelated from the parent.
  /// Used so each ExtraTrees tree gets an independent stream.
  Rng fork() {
    std::uint64_t hi = engine_();
    std::uint64_t lo = engine_();
    return Rng(hi ^ (lo * 0x2545f4914f6cdd1dull));
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace barracuda
