// Small string utilities used by the DSL / TCR parsers and printers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace barracuda {

/// Strip leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Split on a single character delimiter; empty fields are preserved.
std::vector<std::string> split(std::string_view s, char delim);

/// Split on runs of ASCII whitespace; empty fields are dropped.
std::vector<std::string> split_ws(std::string_view s);

/// Join elements with a separator.
std::string join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// True if `s` begins with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// True if `c` can begin an identifier ([A-Za-z_]).
bool is_ident_start(char c);

/// True if `c` can continue an identifier ([A-Za-z0-9_]).
bool is_ident_char(char c);

}  // namespace barracuda
