// Wall-clock timing for search-time measurements (Table II "Search" column).
#pragma once

#include <chrono>

namespace barracuda {

/// Monotonic wall timer; starts on construction.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace barracuda
