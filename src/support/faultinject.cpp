#include "support/faultinject.hpp"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <unordered_map>

#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/str.hpp"

namespace barracuda::support::fault {
namespace {

struct Site {
  double probability = 0;
  std::size_t limit = 0;  // 0 = unlimited
  bool armed = false;
  Rng rng{0};
  SiteStats counters;
};

struct Table {
  std::mutex mutex;
  std::unordered_map<std::string, Site> sites;
  std::size_t armed_count = 0;
};

Table& table() {
  static Table t;
  return t;
}

/// Must be called with the table lock held after any arm/disarm.
void refresh_armed_flag(const Table& t) {
  detail::g_armed.store(t.armed_count > 0, std::memory_order_relaxed);
}

/// Applies BARRACUDA_FAULTS once, before main() can issue any probe.
/// Construction order against other statics is irrelevant: the ctor only
/// touches the function-local table.  A malformed spec must not escape
/// as an exception — that would std::terminate during static init
/// (SIGABRT, core dump) — and must not be silently ignored either (a
/// chaos run with nothing armed would "pass" vacuously), so it prints
/// the parse error and exits.
struct EnvLoader {
  EnvLoader() {
    const char* spec = std::getenv("BARRACUDA_FAULTS");
    if (!spec || !*spec) return;
    try {
      configure(spec);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      std::exit(2);
    }
  }
};
const EnvLoader env_loader;

}  // namespace

namespace detail {

std::atomic<bool> g_armed{false};

bool hit_slow(const char* site) {
  Table& t = table();
  std::lock_guard<std::mutex> lock(t.mutex);
  auto it = t.sites.find(site);
  if (it == t.sites.end() || !it->second.armed) return false;
  Site& s = it->second;
  ++s.counters.probes;
  // One draw per probe, in probe order under this lock: the hit count
  // for a fixed probe count is deterministic regardless of which thread
  // issues which probe.
  if (s.rng.uniform() >= s.probability) return false;
  ++s.counters.hits;
  if (s.limit > 0 && s.counters.hits >= s.limit) {
    s.armed = false;
    --t.armed_count;
    refresh_armed_flag(t);
  }
  return true;
}

}  // namespace detail

void maybe_throw(const char* site) {
  if (hit(site)) {
    throw Error(std::string("injected fault at ") + site);
  }
}

void enable(const std::string& site, double probability, std::uint64_t seed,
            std::size_t limit) {
  if (!(probability >= 0.0 && probability <= 1.0)) {
    throw Error("fault probability must be in [0, 1] for site " + site);
  }
  BARRACUDA_CHECK_MSG(!site.empty(), "fault site name must be non-empty");
  Table& t = table();
  std::lock_guard<std::mutex> lock(t.mutex);
  auto [it, inserted] = t.sites.try_emplace(site);
  Site& s = it->second;
  if (!inserted && s.armed) --t.armed_count;
  s.probability = probability;
  s.limit = limit;
  s.armed = true;
  s.rng = Rng(seed);
  s.counters = SiteStats{};
  ++t.armed_count;
  refresh_armed_flag(t);
}

void disable(const std::string& site) {
  Table& t = table();
  std::lock_guard<std::mutex> lock(t.mutex);
  auto it = t.sites.find(site);
  if (it == t.sites.end() || !it->second.armed) return;
  it->second.armed = false;
  --t.armed_count;
  refresh_armed_flag(t);
}

void clear() {
  Table& t = table();
  std::lock_guard<std::mutex> lock(t.mutex);
  t.sites.clear();
  t.armed_count = 0;
  refresh_armed_flag(t);
}

void configure(const std::string& spec) {
  for (const std::string& item : split(spec, ',')) {
    if (item.empty()) continue;
    std::vector<std::string> fields = split(item, ':');
    if (fields.size() < 3 || fields.size() > 4 || fields[0].empty()) {
      throw Error("bad BARRACUDA_FAULTS entry '" + item +
                  "' (want site:prob:seed[:limit])");
    }
    char* end = nullptr;
    const double prob = std::strtod(fields[1].c_str(), &end);
    if (end == fields[1].c_str() || *end != '\0') {
      throw Error("bad fault probability '" + fields[1] + "' in '" + item +
                  "'");
    }
    const std::uint64_t seed = std::strtoull(fields[2].c_str(), &end, 10);
    if (end == fields[2].c_str() || *end != '\0') {
      throw Error("bad fault seed '" + fields[2] + "' in '" + item + "'");
    }
    std::size_t limit = 0;
    if (fields.size() == 4) {
      limit = static_cast<std::size_t>(
          std::strtoull(fields[3].c_str(), &end, 10));
      if (end == fields[3].c_str() || *end != '\0') {
        throw Error("bad fault limit '" + fields[3] + "' in '" + item + "'");
      }
    }
    enable(fields[0], prob, seed, limit);
  }
}

SiteStats stats(const std::string& site) {
  Table& t = table();
  std::lock_guard<std::mutex> lock(t.mutex);
  auto it = t.sites.find(site);
  return it == t.sites.end() ? SiteStats{} : it->second.counters;
}

std::vector<std::string> armed_sites() {
  Table& t = table();
  std::lock_guard<std::mutex> lock(t.mutex);
  std::vector<std::string> names;
  for (const auto& [name, site] : t.sites) {
    if (site.armed) names.push_back(name);
  }
  return names;
}

}  // namespace barracuda::support::fault
