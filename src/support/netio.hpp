// Robust file-descriptor I/O for the network tier (and any other fd
// stream): the POSIX read(2)/write(2) contract lets the kernel deliver
// partial transfers and EINTR at will, so every caller that wants
// "exactly N bytes or a clean error" needs the same retry loop.  This
// header is that loop, written once and shared by the frame codec, the
// plan-server event loop and the blocking client.
//
// Error taxonomy (what the distributed tier's recovery logic keys on):
//
//   read_exact -> false     the peer closed BEFORE the first byte — a
//                           normal end-of-stream, not an error.
//   TruncatedRead           the peer closed MID-transfer: some bytes of
//                           the requested span arrived, the rest never
//                           will.  For a framed protocol this is always
//                           a protocol violation (a torn frame).
//   Error                   a real I/O failure (ECONNRESET, timeout via
//                           SO_RCVTIMEO/SO_SNDTIMEO, EBADF, ...).
//
// Fault sites: `net.read` fires at the top of read_exact and `net.write`
// at the top of write_all, so BARRACUDA_FAULTS can fail socket I/O with
// the same deterministic schedules the persistence sites use.
#pragma once

#include <cstddef>
#include <cstdint>

#include "support/error.hpp"

namespace barracuda::support::netio {

/// The peer closed the stream partway through a read_exact span.
class TruncatedRead : public Error {
 public:
  using Error::Error;
  explicit TruncatedRead(const std::string& what) : Error(what) {}
};

/// Read exactly `size` bytes from `fd` into `data`, retrying partial
/// reads and EINTR.  Returns true on success; false when the stream was
/// already at end-of-file (zero bytes read).  Throws TruncatedRead when
/// EOF arrives after the first byte, Error on any other failure
/// (including an SO_RCVTIMEO timeout).
bool read_exact(int fd, void* data, std::size_t size);

/// Write all `size` bytes of `data` to `fd`, retrying partial writes
/// and EINTR.  Sends with MSG_NOSIGNAL so a dead peer surfaces as an
/// EPIPE Error instead of killing the process with SIGPIPE (plain
/// write(2) is used for non-socket fds).  Throws Error on failure.
void write_all(int fd, const void* data, std::size_t size);

/// Bounded frame-length validation: true when a declared payload length
/// is within the receiver's limit.  A length-prefixed protocol MUST
/// check this before allocating or reading the payload — a corrupt or
/// hostile 4-byte length field must never turn into a multi-gigabyte
/// allocation or an endless read.
inline bool frame_length_ok(std::uint64_t declared, std::size_t limit) {
  return declared <= static_cast<std::uint64_t>(limit);
}

}  // namespace barracuda::support::netio
