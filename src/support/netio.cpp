#include "support/netio.hpp"

#include <cerrno>
#include <cstring>
#include <string>

#include <sys/socket.h>
#include <unistd.h>

#include "support/faultinject.hpp"

namespace barracuda::support::netio {
namespace {

std::string errno_text(const char* op) {
  return std::string(op) + " failed: " + std::strerror(errno);
}

}  // namespace

bool read_exact(int fd, void* data, std::size_t size) {
  // `net.read` models the whole span failing (reset, timeout) — it
  // fires before any byte moves so callers see an ordinary I/O error.
  fault::maybe_throw("net.read");
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::read(fd, p + got, size - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw Error("socket read timed out after " + std::to_string(got) +
                    "/" + std::to_string(size) + " bytes");
      }
      throw Error(errno_text("socket read"));
    }
    if (n == 0) {
      if (got == 0) return false;  // clean end-of-stream
      throw TruncatedRead("peer closed mid-read after " +
                          std::to_string(got) + "/" + std::to_string(size) +
                          " bytes");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

void write_all(int fd, const void* data, std::size_t size) {
  fault::maybe_throw("net.write");
  const char* p = static_cast<const char*>(data);
  std::size_t sent = 0;
  while (sent < size) {
    // MSG_NOSIGNAL: a peer that closed turns into EPIPE, not SIGPIPE.
    ssize_t n = ::send(fd, p + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0 && errno == ENOTSOCK) {
      n = ::write(fd, p + sent, size - sent);
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw Error("socket write timed out after " + std::to_string(sent) +
                    "/" + std::to_string(size) + " bytes");
      }
      throw Error(errno_text("socket write"));
    }
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace barracuda::support::netio
