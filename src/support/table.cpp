#include "support/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace barracuda {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << "  ";
      os << std::left << std::setw(static_cast<int>(width[c])) << row[c];
    }
    os << "\n";
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c ? 2 : 0);
  }
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string TextTable::fixed(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TextTable::speedup(double v) { return fixed(v, 2) + "x"; }

std::string TextTable::gflops(double v) { return fixed(v, 2); }

std::string TextTable::seconds(double v) { return fixed(v, 1) + "s"; }

}  // namespace barracuda
