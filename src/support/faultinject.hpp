// Deterministic fault injection for chaos-testing the persistence and
// serving layers.
//
// Every fallible operation worth testing carries a named probe — e.g.
// `fault::maybe_throw("registry.save.rename")` right before the rename —
// and the probe fires only when its site has been armed, either
// programmatically (fault::enable) or through the environment:
//
//   BARRACUDA_FAULTS=site:prob:seed[:limit],site2:prob2:seed2,...
//
//   site   probe name (dotted lowercase, subsystem.operation[.step])
//   prob   firing probability per probe in [0, 1]
//   seed   seeds the site's private deterministic draw stream
//   limit  optional: disarm after this many fired probes (0 = unlimited),
//          the knob for exact fault schedules ("fail the first 2 saves")
//
// Determinism: each site owns a seeded Rng and draws once per probe, in
// probe order, under the site table's lock — for a fixed probe count the
// hit count is a pure function of (prob, seed, limit), independent of
// thread interleaving.  prob=1 with a limit gives exact schedules:
// precisely the first `limit` probes fire.
//
// Zero-cost when disabled: fault::hit() is an inline relaxed atomic load
// of a process-wide "anything armed" flag — no lock, no string hashing,
// no map lookup — so production binaries pay one predictable branch per
// probe site.
//
// Registered sites (grep for fault::hit / fault::maybe_throw):
//   evalcache.save.open      EvalCache::save, before writing the temp
//   evalcache.save.rename    EvalCache::save, before the atomic rename
//   evalcache.load           EvalCache::load, before reading
//   registry.save.open       PlanRegistry::save, before writing the temp
//   registry.save.rename     PlanRegistry::save, before the atomic rename
//   registry.save.ageout     PlanRegistry::save, in the age-out drop branch
//   registry.load            PlanRegistry::load, before reading
//   filelock.acquire         FileLock, before taking the flock
//   threadpool.task          ThreadPool::submit, at task invocation
//   serve.tune               TuningService, at each background tune attempt
//   serve.retune             TuningService, at each re-tune attempt
//   serve.retune.enqueue     TuningService::retune_pass, per candidate
//   serve.remote.publish     TuningService::run_tune, before offering a
//                            tuned plan to the remote tier
//   net.accept               net::Server, each accepted connection (hit()
//                            true = drop the connection immediately)
//   net.connect              net::connect_endpoint, per connect attempt
//                            (hit() true = the real failure branch runs:
//                            close + throw, as for an unreachable host)
//   net.read                 netio::read_exact, per call (client and server)
//   net.write                netio::write_all, per call (client and server)
//   net.frame.corrupt        net::write_frame, per frame (hit() true =
//                            flip a checksum byte on the wire — the
//                            receiver must reject the frame)
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace barracuda::support::fault {

namespace detail {
/// True when any site is armed; the only thing a disabled probe reads.
extern std::atomic<bool> g_armed;
/// The locked slow path: look the site up, count the probe, draw.
bool hit_slow(const char* site);
}  // namespace detail

/// True when the armed probe at `site` fires this call.  Counts a probe
/// against the site either way (see stats()).  Unarmed sites — and every
/// site when injection is disabled — return false.
inline bool hit(const char* site) {
  if (!detail::g_armed.load(std::memory_order_relaxed)) return false;
  return detail::hit_slow(site);
}

/// hit(), and on a firing probe throw Error("injected fault at <site>").
/// The standard probe for call sites whose real failure mode is an
/// exception (I/O errors, lock failures, a crashing tune candidate).
void maybe_throw(const char* site);

/// Arm `site`: each probe fires with `probability`, drawn from a stream
/// seeded by `seed`; after `limit` fired probes the site disarms itself
/// (0 = unlimited).  Re-enabling a site resets its stream and counters.
/// Throws Error for probability outside [0, 1].
void enable(const std::string& site, double probability, std::uint64_t seed,
            std::size_t limit = 0);

/// Disarm one site (no-op when not armed).
void disable(const std::string& site);

/// Disarm every site and drop all counters.
void clear();

/// Parse and apply a BARRACUDA_FAULTS spec ("site:prob:seed[:limit],...",
/// see the file comment for the grammar).  Throws Error on a malformed
/// spec.  An empty spec is a no-op.
void configure(const std::string& spec);

/// Per-site probe accounting (zeros for never-armed sites).
struct SiteStats {
  std::size_t probes = 0;  ///< times the armed site was evaluated
  std::size_t hits = 0;    ///< times it fired
};
SiteStats stats(const std::string& site);

/// Names of currently armed sites (disarmed-by-limit sites excluded).
std::vector<std::string> armed_sites();

}  // namespace barracuda::support::fault
