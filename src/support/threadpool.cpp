#include "support/threadpool.hpp"

#include "support/error.hpp"

namespace barracuda::support {

ThreadPool::ThreadPool(std::size_t threads) {
  BARRACUDA_CHECK_MSG(threads >= 1, "thread pool needs at least one worker");
  workers_.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ set and queue drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;

  // Shared batch state, touched only under `state->mutex` (the error
  // slot) or atomically via the counter-under-mutex pattern; `fn` itself
  // runs unlocked.
  struct BatchState {
    std::mutex mutex;
    std::condition_variable done_cv;
    std::size_t done = 0;
    std::exception_ptr error;
  };
  BatchState state;

  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t i = 0; i < n; ++i) {
      tasks_.emplace_back([&state, &fn, i, n] {
        std::exception_ptr err;
        try {
          fn(i);
        } catch (...) {
          err = std::current_exception();
        }
        std::lock_guard<std::mutex> batch_lock(state.mutex);
        if (err && !state.error) state.error = err;
        if (++state.done == n) state.done_cv.notify_all();
      });
    }
  }
  work_cv_.notify_all();

  std::unique_lock<std::mutex> lock(state.mutex);
  state.done_cv.wait(lock, [&state, n] { return state.done == n; });
  if (state.error) std::rethrow_exception(state.error);
}

}  // namespace barracuda::support
