#include "support/threadpool.hpp"

#include <algorithm>
#include <utility>

#include "support/error.hpp"
#include "support/faultinject.hpp"

namespace barracuda::support {
namespace {

/// Set for the lifetime of every pool worker thread; the depth guard.
thread_local bool tl_on_pool_worker = false;

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  BARRACUDA_CHECK_MSG(threads >= 1, "thread pool needs at least one worker");
  std::lock_guard<std::mutex> lock(mutex_);
  workers_.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::size_t ThreadPool::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return workers_.size();
}

void ThreadPool::ensure(std::size_t threads) {
  std::lock_guard<std::mutex> lock(mutex_);
  BARRACUDA_CHECK_MSG(!stop_, "ensure() on a stopping pool");
  while (workers_.size() < threads) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void ThreadPool::worker_loop() {
  tl_on_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ set and queue drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  BARRACUDA_CHECK_MSG(task != nullptr, "submit() needs a callable task");
  // Containment wrapper: a submitted task's exception has nowhere to
  // propagate (fire-and-forget), so an escape must not unwind through
  // worker_loop and kill the worker (std::terminate).  Swallow, count,
  // survive.  The `threadpool.task` probe injects exactly this caller
  // bug so the containment itself stays tested.
  auto contained = [this, task = std::move(task)] {
    try {
      fault::maybe_throw("threadpool.task");
      task();
    } catch (...) {
      dropped_exceptions_.fetch_add(1, std::memory_order_relaxed);
    }
  };
  {
    std::lock_guard<std::mutex> lock(mutex_);
    BARRACUDA_CHECK_MSG(!stop_, "submit() on a stopping pool");
    tasks_.emplace_back(std::move(contained));
  }
  work_cv_.notify_one();
}

std::size_t ThreadPool::dropped_exceptions() const {
  return dropped_exceptions_.load(std::memory_order_relaxed);
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;

  // Pool-depth guard: a batch issued from inside a pooled task runs
  // inline on the calling worker — queueing it could deadlock a
  // fully-busy pool, and the outer batch already owns the parallelism
  // budget.  Same semantics as the pooled path: every index runs, the
  // first exception is rethrown after the batch drains.
  if (on_worker_thread()) {
    std::exception_ptr error;
    for (std::size_t i = 0; i < n; ++i) {
      try {
        fn(i);
      } catch (...) {
        if (!error) error = std::current_exception();
      }
    }
    if (error) std::rethrow_exception(error);
    return;
  }

  // Shared batch state, touched only under `state->mutex` (the error
  // slot) or atomically via the counter-under-mutex pattern; `fn` itself
  // runs unlocked.
  struct BatchState {
    std::mutex mutex;
    std::condition_variable done_cv;
    std::size_t done = 0;
    std::exception_ptr error;
  };
  BatchState state;

  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t i = 0; i < n; ++i) {
      tasks_.emplace_back([&state, &fn, i, n] {
        std::exception_ptr err;
        try {
          fn(i);
        } catch (...) {
          err = std::current_exception();
        }
        std::lock_guard<std::mutex> batch_lock(state.mutex);
        if (err && !state.error) state.error = err;
        if (++state.done == n) state.done_cv.notify_all();
      });
    }
  }
  work_cv_.notify_all();

  std::unique_lock<std::mutex> lock(state.mutex);
  state.done_cv.wait(lock, [&state, n] { return state.done == n; });
  if (state.error) std::rethrow_exception(state.error);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(
      std::max<std::size_t>(1, std::thread::hardware_concurrency()));
  return pool;
}

bool ThreadPool::on_worker_thread() { return tl_on_pool_worker; }

std::size_t resolve_jobs(int n_jobs) {
  if (n_jobs < 0) {
    throw Error("n_jobs must be >= 0 (0 means hardware concurrency), got " +
                std::to_string(n_jobs));
  }
  if (n_jobs == 0) {
    return std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  return static_cast<std::size_t>(n_jobs);
}

void parallel_apply(std::size_t jobs, std::size_t n,
                    const std::function<void(std::size_t)>& fn) {
  const std::size_t shards = std::min(jobs, n);
  if (shards <= 1 || ThreadPool::on_worker_thread()) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool& pool = ThreadPool::shared();
  pool.ensure(shards);
  pool.parallel_for(shards, [&fn, n, shards](std::size_t s) {
    for (std::size_t i = s; i < n; i += shards) fn(i);
  });
}

}  // namespace barracuda::support
