// Spectral-element scenario: the Nekbone mini-app.
//
// Demonstrates (1) a real conjugate-gradient solve whose operator is the
// Lg3/Lg3t contraction pair executed through the library, and (2) the
// modeled GPU-vs-CPU performance comparison of Tables III/IV at the
// paper's 12^3 problem size.
#include <cstdio>

#include "benchsuite/nekbone.hpp"

using namespace barracuda;

int main() {
  // --- 1. A real CG solve (small size; functional execution) ----------
  benchsuite::NekboneConfig small;
  small.elements = 4;
  small.p = 6;
  small.cg_iterations = 300;
  std::printf("solving (Lg3t o Lg3 + I) x = b on %lld elements of order %lld\n",
              static_cast<long long>(small.elements),
              static_cast<long long>(small.p));
  benchsuite::CgResult cg = benchsuite::solve_cg(small, 1e-9);
  std::printf("CG %s in %d iterations (relative residual %.2e)\n\n",
              cg.converged ? "converged" : "did NOT converge", cg.iterations,
              cg.residual);

  // --- 2. Modeled performance at the paper's scale --------------------
  benchsuite::NekboneConfig config;
  config.elements = 512;
  config.p = 12;
  config.cg_iterations = 100;

  core::TuneOptions options;
  options.search.max_evaluations = 60;

  auto cpu = cpuexec::CpuProfile::haswell();
  benchsuite::NekboneModel seq = benchsuite::model_nekbone_cpu(config, cpu, 1);
  benchsuite::NekboneModel omp = benchsuite::model_nekbone_cpu(config, cpu, 4);
  std::printf("Haswell 1 core        : %7.2f GFlop/s\n", seq.gflops);
  std::printf("Haswell OpenMP 4 cores: %7.2f GFlop/s\n", omp.gflops);

  for (const auto& device : vgpu::DeviceProfile::paper_devices()) {
    benchsuite::NekboneModel naive =
        benchsuite::model_nekbone_openacc(config, device, false);
    benchsuite::NekboneModel opt =
        benchsuite::model_nekbone_openacc(config, device, true);
    benchsuite::NekboneModel tuned =
        benchsuite::model_nekbone_barracuda(config, device, options);
    std::printf(
        "%-12s: OpenACC naive %6.2f | OpenACC optimized %6.2f | "
        "Barracuda %6.2f GFlop/s\n",
        device.name.c_str(), naive.gflops, opt.gflops, tuned.gflops);
  }
  return cg.converged ? 0 : 1;
}
