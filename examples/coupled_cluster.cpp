// Coupled-cluster scenario: tuning a NWChem CCSD(T) triples kernel.
//
// Tunes d1_1 (t3 += t2 * v2, contracting h7, trip counts 16) for each of
// the paper's three GPUs, shows how the winning mapping differs per
// architecture, and compares against the OpenACC baselines — the Figure 3
// experiment for a single kernel, narrated.
#include <cstdio>

#include "benchsuite/workloads.hpp"
#include "vgpu/executor.hpp"

using namespace barracuda;

int main() {
  benchsuite::Benchmark kernel = benchsuite::nwchem_d1(1);
  std::printf("kernel %s: %s\n", kernel.name.c_str(),
              kernel.problem.statements[0].to_string().c_str());
  std::printf("trip count 16 per dimension; %lld flops per launch\n\n",
              static_cast<long long>(kernel.problem.direct_flops()));

  core::TuneOptions options;
  options.search.max_evaluations = 80;

  for (const auto& device : vgpu::DeviceProfile::paper_devices()) {
    core::BaselineResult naive =
        core::openacc_baseline(kernel.problem, device, false);
    core::BaselineResult optimized =
        core::openacc_baseline(kernel.problem, device, true);
    core::TuneResult tuned = core::tune(kernel.problem, device, options);

    std::printf("=== %s (%s) ===\n", device.name.c_str(),
                device.arch.c_str());
    std::printf("  OpenACC naive     : %9.1f us kernel time\n",
                naive.timing.kernel_us);
    std::printf("  OpenACC optimized : %9.1f us (%.1fx over naive)\n",
                optimized.timing.kernel_us,
                naive.timing.kernel_us / optimized.timing.kernel_us);
    std::printf("  Barracuda         : %9.1f us (%.1fx over naive)\n",
                tuned.best_timing.kernel_us,
                naive.timing.kernel_us / tuned.best_timing.kernel_us);
    std::printf("  winning mapping   : %s\n\n",
                tuned.best_recipe[0].to_string().c_str());
  }

  // Functional spot-check of the tuned kernel at a reduced size (rank-6
  // tensors at trip count 16 are too large to sweep on the host).
  benchsuite::Benchmark small = benchsuite::nwchem_d1(1, 4);
  core::TuneOptions quick;
  quick.search.max_evaluations = 20;
  quick.max_pool = 200;
  core::TuneResult r =
      core::tune(small.problem, vgpu::DeviceProfile::gtx980(), quick);
  Rng rng(3);
  tensor::TensorEnv env;
  env.emplace("t2", tensor::Tensor::random({4, 4, 4, 4}, rng));
  env.emplace("v2", tensor::Tensor::random({4, 4, 4, 4}, rng));
  env.emplace("t3", tensor::Tensor::zeros({4, 4, 4, 4, 4, 4}));
  tensor::TensorEnv ref = env;
  r.run(env);
  tensor::evaluate(small.problem.statements[0], small.problem.extents, ref);
  double err = tensor::Tensor::max_abs_diff(env.at("t3"), ref.at("t3"));
  std::printf("functional check at trip count 4: max |err| = %.3g (%s)\n",
              err, err < 1e-9 ? "PASS" : "FAIL");
  return err < 1e-9 ? 0 : 1;
}
