// Quickstart: tune a tensor contraction for a GPU in five steps.
//
//   1. Write the computation in the OCTOPI DSL.
//   2. Pick a modeled device.
//   3. tune() — OCTOPI variants -> TCR search space -> SURF.
//   4. Inspect the winning plan (mapping, modeled time, CUDA source).
//   5. Execute it functionally and check against the reference.
#include <cstdio>

#include "core/barracuda.hpp"
#include "tensor/einsum.hpp"

using namespace barracuda;

int main() {
  // 1. A batched spectral-element derivative: 256 elements of order 12.
  core::TuningProblem problem = core::TuningProblem::from_dsl(R"(
dim e = 256
dim i j k l = 12
UR[e i j k] += D[i l] * U[e l j k]
)",
                                                              "quickstart");

  // 2-3. Autotune for a Maxwell GTX 980.
  vgpu::DeviceProfile device = vgpu::DeviceProfile::gtx980();
  core::TuneOptions options;
  options.search.max_evaluations = 80;
  core::TuneResult result = core::tune(problem, device, options);

  std::printf("device            : %s (%s)\n", device.name.c_str(),
              device.arch.c_str());
  std::printf("variants explored : %zu\n", result.variants.size());
  std::printf("search space      : %lld configurations\n",
              static_cast<long long>(result.joint_space_size));
  std::printf("evaluations       : %zu (SURF)\n",
              result.search.evaluations());
  std::printf("best mapping      : %s\n",
              result.best_recipe[0].to_string().c_str());
  std::printf("modeled time      : %.1f us  (%.2f GFlop/s)\n",
              result.modeled_us(), result.modeled_gflops());

  // 4. The generated CUDA for the winning variant.
  std::printf("\n--- generated CUDA (kernel 1) ---\n%s\n",
              result.best_plan.kernels[0].cuda_source().c_str());

  // 5. Execute the tuned plan functionally and validate.
  Rng rng(7);
  tensor::TensorEnv env;
  env.emplace("D", tensor::Tensor::random({12, 12}, rng));
  env.emplace("U", tensor::Tensor::random({256, 12, 12, 12}, rng));
  env.emplace("UR", tensor::Tensor::zeros({256, 12, 12, 12}));
  tensor::TensorEnv reference = env;

  result.run(env);
  tensor::evaluate(problem.statements[0], problem.extents, reference);
  double err =
      tensor::Tensor::max_abs_diff(env.at("UR"), reference.at("UR"));
  std::printf("functional check  : max |err| = %.3g  (%s)\n", err,
              err < 1e-9 ? "PASS" : "FAIL");
  return err < 1e-9 ? 0 : 1;
}
