// Artifact export: everything a downstream application would take away
// from a tuning run — the paper's Section VIII integration story.
//
//   * the tuned CUDA translation unit (kernels + host driver),
//   * the sequential and OpenMP C baselines,
//   * the Orio/CHiLL annotation text for replay through the original
//     toolchain,
//   * the persisted recipe, re-parsed and re-lowered to prove the
//     round trip.
#include <cstdio>

#include "chill/csource.hpp"
#include "core/report.hpp"
#include "orio/annotations.hpp"

using namespace barracuda;

int main() {
  core::TuningProblem problem = core::TuningProblem::from_dsl(R"(
dim e = 256
dim i j k l = 12
UR[e i j k] += D[i l] * U[e l j k]
US[e i j k] += D[j l] * U[e i l k]
UT[e i j k] += D[k l] * U[e i j l]
)",
                                                              "lg3");
  auto device = vgpu::DeviceProfile::tesla_k20();
  core::TuneOptions options;
  options.search.max_evaluations = 60;
  core::TuneResult result = core::tune(problem, device, options);

  std::printf("%s\n", core::tuning_report(result, device).c_str());

  std::printf("=== CUDA artifact (first kernel) =======================\n");
  std::printf("%s\n", result.best_plan.kernels[0].cuda_source().c_str());

  std::printf("=== OpenMP C baseline artifact ==========================\n");
  chill::CSourceOptions copt;
  copt.openmp = true;
  std::printf("%s\n",
              chill::c_source(result.best_program(), copt).c_str());

  std::printf("=== Orio/CHiLL recipe ===================================\n");
  std::printf("%s\n",
              orio::emit_chill_recipe(result.best_program(),
                                      result.best_recipe)
                  .c_str());

  // Recipe persistence round trip: serialize, re-parse, re-lower, and
  // confirm the replayed plan models identically.
  std::string saved = core::serialize_recipe(result.best_recipe);
  chill::Recipe reloaded = core::parse_recipe(saved);
  chill::GpuPlan replayed =
      chill::lower_program(result.best_program(), reloaded);
  double replay_us = vgpu::model_plan(replayed, device).total_us;
  std::printf("=== recipe round trip ===================================\n");
  std::printf("%s", saved.c_str());
  std::printf("replayed plan: %.1f us (tuned plan: %.1f us) — %s\n",
              replay_us, result.modeled_us(),
              replay_us == result.modeled_us() ? "IDENTICAL" : "MISMATCH");
  return replay_us == result.modeled_us() ? 0 : 1;
}
