// Figure 2 walkthrough: every stage of the Barracuda pipeline for the
// paper's running example, Eqn (1).
//
//   (a) OCTOPI DSL input
//   (b) algebraic variants (Algorithm 1) and the chosen TCR program
//   (c) the derived search space (PERMUTE/UF parameter lists)
//   (d) the optimized CUDA output
#include <cstdio>

#include "core/barracuda.hpp"
#include "tcr/fusion.hpp"

using namespace barracuda;

int main() {
  const char* dsl = R"(dim i j k l m n = 10
V[i j k] = Sum([l m n], A[l k] * B[m j] * C[n i] * U[l m n])
)";
  std::printf("=== (a) OCTOPI input =====================================\n");
  std::printf("%s\n", dsl);

  core::TuningProblem problem = core::TuningProblem::from_dsl(dsl, "ex");

  std::printf("=== (b) OCTOPI algebraic variants (Algorithm 1) ==========\n");
  auto programs = core::enumerate_programs(problem);
  std::printf("%zu variants enumerated; flop counts:\n", programs.size());
  std::size_t minimal = 0;
  for (const auto& p : programs) {
    minimal += (p.flops() == programs.front().flops());
  }
  for (std::size_t v = 0; v < programs.size(); ++v) {
    std::printf("  variant %2zu: %8lld flops%s\n", v + 1,
                static_cast<long long>(programs[v].flops()),
                programs[v].flops() == programs.front().flops()
                    ? "  (minimal)"
                    : "");
  }
  std::printf("%zu of %zu variants attain the minimal operation count\n",
              minimal, programs.size());
  std::printf("(direct evaluation would cost %lld flops)\n\n",
              static_cast<long long>(problem.direct_flops()));

  std::printf("=== (b') TCR input for the first minimal variant =========\n");
  std::printf("%s\n", programs.front().to_string().c_str());

  std::printf("=== fusion structure of that variant =====================\n");
  for (const auto& group : tcr::fuse_program(programs.front())) {
    std::printf("%s\n", group.to_string().c_str());
  }

  std::printf("=== (c) search space (decision algorithm, Section IV) ====\n");
  auto nests = tcr::build_loop_nests(programs.front());
  for (std::size_t k = 0; k < nests.size(); ++k) {
    tcr::KernelSpace space = tcr::derive_space(nests[k]);
    std::printf("kernel %zu:  %s  [%lld configurations]\n%s\n", k + 1,
                nests[k].stmt.to_string().c_str(),
                static_cast<long long>(tcr::space_size(nests[k], space)),
                space.to_string().c_str());
  }

  std::printf("=== (d) tuned CUDA output (GTX 980) ======================\n");
  core::TuneOptions options;
  options.search.max_evaluations = 60;
  core::TuneResult result =
      core::tune(problem, vgpu::DeviceProfile::gtx980(), options);
  std::printf("%s\n", result.cuda_source().c_str());
  std::printf("modeled: %.1f us, %.2f GFlop/s (amortized %.2f GFlop/s)\n",
              result.modeled_us(), result.modeled_gflops(),
              result.modeled_gflops_amortized());
  return 0;
}
