// barracuda — command-line front end to the tuning pipeline.
//
//   barracuda <input.oct> [options]
//
//   --device gtx980|k20|c2050    target device model     (default gtx980)
//   --evals N                    SURF evaluation budget  (default 100)
//   --jobs N                     worker threads for evaluation AND model
//                                fitting (default 1; 0 = hardware
//                                concurrency; results are identical for
//                                every N)
//   --method surf|random|exhaustive                      (default surf)
//   --shared                     enable shared-memory staging decisions
//   --emit-cuda FILE             write the tuned CUDA source
//   --emit-orio FILE             write the Orio/CHiLL annotation text
//   --emit-c FILE                write the sequential C baseline source
//   --save-recipe FILE           persist the winning recipe (+ variant)
//   --load-recipe FILE           replay a saved recipe instead of searching
//   --report                     print the full tuning report
//   --verify                     functionally execute the tuned plan
//                                against the reference evaluator
//
// Serve mode (the serve-bench driver for the src/serve subsystem):
//   --serve                      run the plan-serving driver instead of
//                                a one-shot tune: N client threads fire
//                                M requests each at a TuningService and
//                                the driver prints serve statistics
//                                (hits, misses, single-flight tunes,
//                                upgrades, latencies)
//   --clients N                  serve-mode client threads (default 4)
//   --requests M                 requests per client     (default 8)
//   --batch N                    submit requests N at a time through
//                                get_plan_batch: one signature lookup
//                                (and at most one tune enqueue) serves
//                                a whole same-shape batch; the driver
//                                prints the batch/lookup amortization
//   --registry FILE              persistent plan registry: loaded before
//                                serving (if present), merged back after
//                                under an advisory lock — repeated
//                                invocations start warm and concurrent
//                                invocations compose to the per-signature
//                                best (BARRACUDA_REGISTRY works too)
//   --tune-deadline SECONDS      wall budget per background tune run;
//                                an expired tune publishes its
//                                best-so-far plan (0 = unbounded)
//   --breaker-cooldown SECONDS   half-open circuit breakers: after this
//                                cool-down an open breaker admits
//                                exactly one probe tune (success heals
//                                it, failure re-opens it; 0 = breakers
//                                stay open until the process exits)
//   --remote ADDR[,ADDR...]      distributed serving: consult a plan
//                                server (unix:PATH or tcp:HOST:PORT) on
//                                every local registry miss (L2 tier),
//                                publish freshly tuned plans back to it,
//                                and run one anti-entropy sync before
//                                and after serving — a fresh node
//                                against a warm server serves 0-miss
//                                warm with zero tunes of its own.
//                                Several addresses form a REPLICA SET:
//                                reads fail over in listed order
//                                (first = primary), writes fan out to
//                                every healthy replica, and each
//                                endpoint carries its own half-open
//                                breaker — one dead replica costs
//                                nothing but failovers, a fully dead
//                                fleet degrades the node to local-only
//                                serving; requests NEVER fail on
//                                remote trouble
//   --hedge-threshold S          hedged reads: a remote GET the primary
//                                has not answered within S seconds
//                                races a duplicate on the next replica,
//                                first answer wins (0 = off; needs >= 2
//                                --remote endpoints)
//   --anti-entropy-interval S    seconds between background full-sync
//                                rounds against --remote (0 = only the
//                                explicit start/end syncs)
//
// Plan-server mode (the network side of distributed serving):
//   --plan-server ADDR           run a plan server instead of tuning:
//                                serve GET_PLAN/PUT_PLAN/SYNC/STATS on
//                                ADDR (unix:PATH or tcp:HOST:PORT; TCP
//                                port 0 picks an ephemeral port, printed
//                                on stdout) until SIGINT/SIGTERM, then
//                                drain in-flight requests, merge-save
//                                --registry (if set), print stats, and
//                                exit 0.  No input file needed
//   --server-threads N           plan-server worker threads (default 4)
//   --flush-interval SECONDS     background merge-save period for the
//                                server's --registry (0 = only at
//                                shutdown)
//   --peers ADDR[,ADDR...]       replica peers to gossip with: each
//                                gossip round runs one pairwise SYNC
//                                per peer (the same v2 anti-entropy
//                                payload clients use), so a replica
//                                set converges to the exact union —
//                                better-wins entries, max-reconciled
//                                demand — with no client online
//   --gossip-interval SECONDS    seconds between gossip rounds
//                                (default 1 when --peers is set)
//
// Prewarm mode (offline registry pre-warming — the serving analog of
// tune_specializations):
//   --prewarm                    tune the cartesian grid of the input's
//                                extent specializations (ranged dims,
//                                e.g. `dim i j k = 8..16`) x --devices
//                                into --registry, in parallel on the
//                                shared pool, so a later --serve run
//                                boots 100% warm (zero cold misses,
//                                zero background tunes).  Requires
//                                --registry; merge-saves under the
//                                advisory lock, so concurrent prewarms
//                                and serving fleets compose better-wins
//   --devices a,b,c              prewarm device list (names as in
//                                --device; default: the --device value)
//   --grid N                     cap on the extent grid (default 64,
//                                lowest corners win)
//
// Persistence robustness:
//   --recover                    load persisted files (BARRACUDA_CACHE,
//                                --registry) in salvage mode: keep every
//                                record that still parses, drop the
//                                corrupt lines, and quarantine the
//                                damaged original to <path>.corrupt.
//                                Without it a corrupt file fails loudly
//                                (BARRACUDA_RECOVER=1 works too).
//   Both persistence paths are validated writable at startup, so a
//   mistyped directory fails immediately with a clear message instead
//   of after minutes of tuning.
//
// With BARRACUDA_CACHE=path in the environment, measured values are
// loaded from `path` before tuning (if it exists) and merged back after
// (atomically, under an advisory lock), so repeated invocations skip
// re-measurement entirely and concurrent invocations sharing one path
// keep the union of their measurements.  An end-of-run cache summary
// (entries, hits, misses, hit rate) prints whenever BARRACUDA_CACHE is
// set.
//
// BARRACUDA_FAULTS=site:prob:seed[:limit],... arms the deterministic
// fault-injection layer (support/faultinject.hpp) for chaos testing;
// serve mode keeps answering every request under injected tune and
// persistence failures (retry/backoff + circuit breaker + fallback
// plans), and end-of-serve persistence failures warn instead of
// aborting a successful serve run.
//
// The input file is OCTOPI DSL text with dim declarations, e.g.
//   dim i j k l m n = 10
//   V[i j k] = Sum([l m n], A[l k] * B[m j] * C[n i] * U[l m n])
#include <cstdio>
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "chill/csource.hpp"
#include "core/barracuda.hpp"
#include "core/report.hpp"
#include "net/socket.hpp"
#include "octopi/parser.hpp"
#include "orio/annotations.hpp"
#include "serve/remote/planserver.hpp"
#include "serve/remote/remoteregistry.hpp"
#include "serve/service.hpp"
#include "support/paths.hpp"
#include "support/percentile.hpp"
#include "support/recovery.hpp"
#include "support/str.hpp"
#include "support/timer.hpp"
#include "tensor/einsum.hpp"

using namespace barracuda;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <input.oct> [--device gtx980|k20|c2050] "
               "[--evals N] [--jobs N] "
               "[--method surf|random|exhaustive] [--shared] "
               "[--emit-cuda FILE] [--emit-orio FILE] [--verify] "
               "[--recover] "
               "[--serve [--clients N] [--requests M] [--batch N] "
               "[--registry FILE] [--tune-deadline SECONDS] "
               "[--breaker-cooldown SECONDS] [--retune-budget N] "
               "[--retune-interval SECONDS] [--retune-topk K] "
               "[--hot-threshold N] [--ageout N] [--remote ADDR[,ADDR...]] "
               "[--hedge-threshold SECONDS] "
               "[--anti-entropy-interval SECONDS]] "
               "[--prewarm --registry FILE [--devices a,b,c] [--grid N]]\n"
               "       %s --plan-server ADDR [--registry FILE] "
               "[--server-threads N] [--flush-interval SECONDS] "
               "[--peers ADDR[,ADDR...]] [--gossip-interval SECONDS] "
               "[--ageout N] [--recover]\n",
               argv0, argv0);
  return 2;
}

/// One-line summary of a salvage load, printed whenever --recover
/// actually had to drop records.
void print_salvage(const char* what, const support::SalvageReport& report) {
  if (!report.salvaged()) return;
  std::printf("%s : salvaged %zu records (%zu corrupt lines dropped), "
              "original quarantined to %s\n",
              what, report.kept, report.dropped,
              report.quarantine_path.c_str());
}

/// Device model by CLI name; false on an unknown name.
bool device_by_name(const std::string& name, vgpu::DeviceProfile* out) {
  if (name == "gtx980") {
    *out = vgpu::DeviceProfile::gtx980();
  } else if (name == "k20") {
    *out = vgpu::DeviceProfile::tesla_k20();
  } else if (name == "c2050") {
    *out = vgpu::DeviceProfile::tesla_c2050();
  } else {
    return false;
  }
  return true;
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return false;
  }
  out << content;
  return true;
}

/// Functionally execute the tuned plan on random inputs and compare with
/// the reference evaluator.  Returns the max absolute error.
double verify(const core::TuningProblem& problem,
              const core::TuneResult& result) {
  Rng rng(12345);
  tensor::TensorEnv env;
  const tcr::TcrProgram& program = result.best_program();
  for (const auto& name : program.input_names()) {
    const auto& var = program.variable(name);
    std::vector<std::int64_t> dims;
    for (const auto& ix : var.indices) dims.push_back(program.extents.at(ix));
    env.emplace(name, tensor::Tensor::random(dims, rng));
  }
  for (const auto& out : program.output_names()) {
    const auto& out_var = program.variable(out);
    std::vector<std::int64_t> out_dims;
    for (const auto& ix : out_var.indices) {
      out_dims.push_back(program.extents.at(ix));
    }
    env.emplace(out, tensor::Tensor::zeros(out_dims));
  }

  tensor::TensorEnv reference = env;
  result.run(env);
  for (const auto& stmt : problem.statements) {
    tensor::evaluate(stmt, problem.extents, reference);
  }
  double err = 0;
  for (const auto& out : program.output_names()) {
    err = std::max(err, tensor::Tensor::max_abs_diff(env.at(out),
                                                     reference.at(out)));
  }
  return err;
}

/// Parse a comma-separated endpoint list (`--remote`, `--peers`).
/// Empty items are ignored; throws Error on malformed addresses.
std::vector<net::Endpoint> parse_endpoint_list(const std::string& csv) {
  std::vector<net::Endpoint> out;
  for (const std::string& item : split(csv, ',')) {
    if (!item.empty()) out.push_back(net::parse_endpoint(item));
  }
  return out;
}

/// SIGINT/SIGTERM land here in --plan-server mode: the serving loop
/// polls the flag and runs the graceful shutdown (drain, final
/// merge-save, exit 0).
volatile std::sig_atomic_t g_stop_server = 0;
void handle_stop_signal(int) { g_stop_server = 1; }

/// The plan-server driver: serve the frame protocol on ADDR until a
/// stop signal, then drain, merge-save the registry, print stats.
/// Returns the process exit code.
int run_plan_server(const std::string& addr, const std::string& registry_path,
                    support::RecoveryPolicy policy, std::size_t threads,
                    double flush_interval, std::size_t ageout,
                    const std::string& peers_csv, double gossip_interval) {
  serve::PlanRegistry registry;
  registry.set_max_idle_generations(ageout);
  if (!registry_path.empty()) {
    support::validate_writable_path(registry_path, "plan registry");
    std::ifstream probe(registry_path);
    if (probe.good()) {
      probe.close();
      support::SalvageReport report;
      std::printf("plan registry    : loaded %zu entries from %s\n",
                  registry.load(registry_path, policy, &report),
                  registry_path.c_str());
      print_salvage("plan registry   ", report);
    }
  }

  serve::remote::PlanServerOptions options;
  options.net.workers = threads;
  options.registry_path = registry_path;
  options.flush_interval = flush_interval;
  options.policy = policy;
  options.peers = parse_endpoint_list(peers_csv);
  options.gossip_interval = gossip_interval;
  serve::remote::PlanServer server(registry, options);

  net::Endpoint endpoint = net::parse_endpoint(addr);
  if (endpoint.kind == net::Endpoint::Kind::kUnix) {
    server.listen_unix(endpoint.path);
  } else {
    endpoint.port = server.listen_tcp(endpoint.host, endpoint.port);
  }
  // Scripted smokes background this process and wait for the line
  // before starting clients — flush so it is visible immediately.
  std::printf("plan server      : listening on %s (%zu workers)\n",
              net::to_string(endpoint).c_str(), threads);
  if (!options.peers.empty()) {
    std::string names;
    for (const net::Endpoint& peer : options.peers) {
      if (!names.empty()) names += ", ";
      names += net::to_string(peer);
    }
    std::printf("plan gossip      : %zu peer(s) [%s], every %.2fs\n",
                options.peers.size(), names.c_str(),
                options.gossip_interval);
  }
  std::fflush(stdout);

  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);
  server.start();
  while (!g_stop_server) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  // Graceful shutdown: stop accepting, drain in-flight requests (their
  // PUTs/SYNCs still land), final merge-save, report, exit 0.
  server.stop();

  const serve::remote::PlanServerStats s = server.stats();
  std::printf("plan requests    : %zu total (%zu gets [%zu hits], %zu puts "
              "[%zu accepted], %zu syncs [%zu entries in], %zu pings)\n",
              s.requests, s.gets, s.get_hits, s.puts, s.put_accepted,
              s.syncs, s.sync_entries_in, s.pings);
  std::printf("plan connections : %zu accepted, %zu protocol errors, %zu "
              "handler errors, %zu io errors, %zu faulted accepts\n",
              s.net.accepted, s.net.protocol_errors, s.net.handler_errors,
              s.net.io_errors, s.net.faulted_accepts);
  std::printf("plan registry    : %zu entries held (%zu flushes, %zu "
              "failed)\n",
              registry.size(), s.flushes, s.flush_failures);
  if (!options.peers.empty()) {
    std::printf("plan gossip      : %zu rounds completed, %zu failed\n",
                s.gossip_rounds, s.gossip_failures);
  }
  if (!server.last_error().empty()) {
    std::fprintf(stderr, "warning: plan registry flush trouble (%s)\n",
                 server.last_error().c_str());
  }
  return 0;
}

/// The serve-bench driver: N client threads fire M requests each at a
/// TuningService over one PlanRegistry, then the single-flight tune
/// drains and the stats print.  Returns the process exit code.
int run_serve(const core::TuningProblem& problem,
              const vgpu::DeviceProfile& device,
              const core::TuneOptions& tune_options,
              std::size_t clients, std::size_t requests, std::size_t batch,
              const std::string& registry_path,
              support::RecoveryPolicy policy, double tune_deadline,
              double breaker_cooldown, std::size_t retune_budget,
              double retune_interval, std::size_t retune_topk,
              std::uint64_t hot_threshold, std::size_t ageout,
              const std::string& remote_addr, double anti_entropy_interval,
              double hedge_threshold) {
  serve::PlanRegistry registry;
  registry.set_max_idle_generations(ageout);
  if (!registry_path.empty()) {
    std::ifstream probe(registry_path);
    if (probe.good()) {
      probe.close();
      support::SalvageReport report;
      std::printf("plan registry    : loaded %zu entries from %s\n",
                  registry.load(registry_path, policy, &report),
                  registry_path.c_str());
      print_salvage("plan registry   ", report);
    }
  }

  serve::ServeOptions serve_options;
  serve_options.tune = tune_options;
  serve_options.tune_deadline = tune_deadline;
  serve_options.breaker_cooldown = breaker_cooldown;
  serve_options.retune_budget = retune_budget;
  serve_options.retune_interval = retune_interval;
  serve_options.retune_top_k = retune_topk;
  serve_options.hot_threshold = hot_threshold;
  std::shared_ptr<serve::remote::RemoteRegistry> remote;
  if (!remote_addr.empty()) {
    serve::remote::RemoteRegistryOptions remote_options;
    remote_options.hedge_threshold = hedge_threshold;
    remote = std::make_shared<serve::remote::RemoteRegistry>(
        parse_endpoint_list(remote_addr), remote_options);
    serve_options.remote = remote;
    serve_options.anti_entropy_interval = anti_entropy_interval;
  }
  const bool retune_configured = retune_budget > 0 || retune_interval > 0;
  serve::TuningService service(registry, serve_options);
  if (remote) {
    // Inherit the fleet's tuning up front: one sync round makes a fresh
    // node as warm as the server before the first request arrives (the
    // CI smoke greps for the resulting 0-miss serve).  A dead server
    // just degrades this to a no-op — serving must start regardless.
    service.anti_entropy_pass();
  }

  // Each client thread records its own latencies; slots are disjoint.
  // With --batch N, a client submits its requests N at a time through
  // get_plan_batch (one signature lookup serves the whole batch) and
  // records the amortized per-request latency.
  std::vector<std::vector<double>> latency_us(clients);
  WallTimer wall;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      latency_us[c].reserve(requests);
      if (batch > 0) {
        const std::vector<core::TuningProblem> full(batch, problem);
        for (std::size_t r = 0; r < requests; r += batch) {
          const std::size_t n = std::min(batch, requests - r);
          WallTimer t;
          std::vector<serve::ServedPlan> served =
              n == batch
                  ? service.get_plan_batch(full, device)
                  : service.get_plan_batch(
                        std::vector<core::TuningProblem>(n, problem), device);
          const double us = t.seconds() * 1e6;
          (void)served;
          for (std::size_t k = 0; k < n; ++k) {
            latency_us[c].push_back(us / static_cast<double>(n));
          }
        }
      } else {
        for (std::size_t r = 0; r < requests; ++r) {
          WallTimer t;
          serve::ServedPlan served = service.get_plan(problem, device);
          latency_us[c].push_back(t.seconds() * 1e6);
          (void)served;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const double serve_seconds = wall.seconds();
  service.drain();
  if (retune_configured) {
    // One deterministic end-of-run pass regardless of --retune-interval:
    // the background scheduler may or may not have woken during a short
    // run, but the CLI's adaptive report should reflect the traffic it
    // just generated.  After the first drain the cold tunes have
    // published (re-tuning only targets already-tuned signatures); the
    // second drain completes the re-tunes the pass scheduled.
    service.retune_pass();
    service.drain();
  }
  if (remote) {
    // Final sync: whatever this run tuned (and whatever publish calls
    // the chaos faults ate) reaches the server before we report.
    service.anti_entropy_pass();
  }

  serve::ServeStats stats = service.snapshot();
  std::vector<double> all;
  for (const auto& v : latency_us) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  // Shared nearest-rank helper — the hand-rolled index math this
  // replaced was off by one rank (see support/percentile.hpp).
  auto pct = [&](double p) { return support::percentile_sorted(all, p); };

  std::printf("serve clients    : %zu threads x %zu requests\n", clients,
              requests);
  std::printf("requests         : %zu answered in %.3fs (%.0f req/s)\n",
              stats.requests, serve_seconds,
              serve_seconds > 0 ? stats.requests / serve_seconds : 0.0);
  std::printf("registry         : %zu hits / %zu misses, %zu entries\n",
              stats.registry_hits, stats.registry_misses, registry.size());
  if (batch > 0) {
    // The CI smoke greps this line: signature lookups must come in
    // UNDER the request count, or batching amortized nothing.
    std::printf("batched serve    : %zu batches (max %zu), %zu requests, "
                "%zu signature lookups (amortization %.1fx)\n",
                stats.batches, batch, stats.batch_requests,
                stats.batch_signature_lookups,
                stats.batch_signature_lookups
                    ? static_cast<double>(stats.batch_requests) /
                          static_cast<double>(stats.batch_signature_lookups)
                    : 0.0);
  }
  std::printf("tunes            : %zu started (single-flight), %zu "
              "completed, %zu failed, %zu rejected by backpressure\n",
              stats.tunes_started, stats.tunes_completed,
              stats.tune_failures, stats.rejected);
  std::printf("resilience       : %zu retries, %zu breakers open, %zu "
              "deadline-expired tunes, %zu probes (%zu healed)\n",
              stats.retries, stats.breaker_open, stats.deadline_expired,
              stats.breaker_probes, stats.breaker_healed);
  if (remote) {
    // The CI smoke greps this line: distributed serving must actually
    // consult and feed the L2 tier, and anti-entropy must run.
    std::printf("remote           : %zu hits / %zu misses, %zu publishes, "
                "%zu errors, %zu unreachable, %zu anti-entropy rounds\n",
                stats.remote_hits, stats.remote_misses,
                stats.remote_publishes, stats.remote_errors,
                stats.remote_unavailable, stats.anti_entropy_rounds);
    const serve::remote::RemoteRegistryStats link = remote->stats();
    if (link.endpoints.size() > 1 || stats.remote_hedges > 0) {
      // Fleet smokes grep this line: one dead replica must show up as
      // failovers here, never as failed requests above.
      std::printf("remote fleet     : %zu endpoints, %zu failovers, %zu "
                  "hedges (%zu won)\n",
                  link.endpoints.size(), stats.remote_failovers,
                  stats.remote_hedges, stats.remote_hedge_wins);
    }
    for (const serve::remote::EndpointStats& ep : link.endpoints) {
      std::printf("remote link      : %s (%s), %zu failed ops (%zu app / "
                  "%zu unreachable), %zu reconnect probes (%zu healed)\n",
                  ep.link_up ? "up" : "down", ep.endpoint.c_str(),
                  ep.errors + ep.unavailable, ep.errors, ep.unavailable,
                  ep.reconnect_probes, ep.reconnect_healed);
    }
  }
  if (retune_configured) {
    // The CI smoke greps this line: adaptive serving must actually
    // re-tune the hot signatures, not just count demand.
    std::printf("adaptive         : %zu re-tunes scheduled, %zu completed, "
                "%zu improved the served plan\n",
                stats.retunes_scheduled, stats.retunes_completed,
                stats.retunes_improved);
  }
  if (stats.served_latency.total > 0) {
    std::printf("demand           : %" PRIu64 " requests recorded, served "
                "modeled-latency p50 <= %.2f us, p95 <= %.2f us\n",
                stats.demand_requests,
                stats.served_latency.quantile_high(50),
                stats.served_latency.quantile_high(95));
  }
  if (!stats.last_error.empty()) {
    std::printf("last tune error  : %s\n", stats.last_error.c_str());
  }
  std::printf("upgrades         : %zu (mean tune latency %.1f ms)\n",
              stats.upgrades,
              stats.tunes_completed
                  ? 1e3 * stats.tune_seconds_total / stats.tunes_completed
                  : 0.0);
  std::printf("serve latency    : p50 %.1f us, p95 %.1f us, max %.1f us\n",
              pct(50), pct(95), all.empty() ? 0.0 : all.back());

  // The post-drain answer is the tuned plan every later request gets.
  serve::ServedPlan final = service.get_plan(problem, device);
  std::printf("served plan      : variant #%zu, %.1f us modeled (%s)\n",
              final.plan.variant + 1, final.plan.modeled_us,
              final.plan.tuned ? "tuned" : "fallback");

  if (!registry_path.empty()) {
    // Best-effort: the serve run itself succeeded (every request was
    // answered), so a failing end-of-run publish — full disk, injected
    // chaos faults — warns loudly instead of turning success into a
    // non-zero exit.  The next invocation simply starts colder.
    try {
      registry.merge_save(registry_path, policy);
      if (registry.aged_out() > 0) {
        // The CLI saves exactly once, so the persisted count is the
        // in-memory size minus this save's aged-out drops.
        std::printf("plan registry    : %zu entries saved to %s "
                    "(%" PRIu64 " idle entries aged out)\n",
                    registry.size() - static_cast<std::size_t>(registry.aged_out()),
                    registry_path.c_str(), registry.aged_out());
      } else {
        std::printf("plan registry    : %zu entries saved to %s\n",
                    registry.size(), registry_path.c_str());
      }
    } catch (const Error& e) {
      std::fprintf(stderr,
                   "warning: plan registry not saved (%s); serve results "
                   "for this run are lost on exit\n",
                   e.what());
    }
  }
  return 0;
}

/// The offline pre-warming driver: tune the extent-grid x device-list
/// cartesian product into the registry file, so a later --serve boots
/// 100% warm.  Returns the process exit code.
int run_prewarm(const octopi::OctopiProgram& program,
                const std::vector<vgpu::DeviceProfile>& devices,
                const core::TuneOptions& tune_options, std::size_t grid,
                const std::string& registry_path,
                support::RecoveryPolicy policy) {
  serve::PlanRegistry registry;
  {
    std::ifstream probe(registry_path);
    if (probe.good()) {
      probe.close();
      support::SalvageReport report;
      std::printf("plan registry    : loaded %zu entries from %s\n",
                  registry.load(registry_path, policy, &report),
                  registry_path.c_str());
      print_salvage("plan registry   ", report);
    }
  }

  serve::PrewarmOptions options;
  options.tune = tune_options;
  options.max_points = grid;
  serve::PrewarmResult result =
      serve::prewarm(registry, program, devices, options);

  std::printf("prewarm grid     : %zu points (%zu extent specializations "
              "x %zu devices)\n",
              result.points, result.points / devices.size(),
              devices.size());
  std::printf("prewarm tunes    : %zu run, %zu skipped (already tuned), "
              "%zu published, %.2fs\n",
              result.tuned, result.skipped, result.published,
              result.seconds);
  registry.merge_save(registry_path, policy);
  std::printf("plan registry    : %zu entries saved to %s\n",
              registry.size(), registry_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  std::string input_path;
  std::string device_name = "gtx980";
  std::string method = "surf";
  std::string emit_cuda, emit_orio, emit_c, save_recipe, load_recipe;
  std::size_t evals = 100;
  int jobs = 1;
  bool shared = false, do_verify = false, do_report = false;
  bool do_serve = false;
  bool do_prewarm = false;
  std::string devices_arg;
  std::size_t grid = 64;
  std::size_t clients = 4, requests = 8, batch = 0;
  double tune_deadline = 0, breaker_cooldown = 0;
  std::size_t retune_budget = 0, retune_topk = 4;
  double retune_interval = 0;
  std::uint64_t hot_threshold = 16;
  std::size_t ageout = 0;
  std::string plan_server_addr, remote_addr, peers_csv;
  std::size_t server_threads = 4;
  double flush_interval = 0, anti_entropy_interval = 0;
  double hedge_threshold = 0, gossip_interval = -1;
  const char* registry_env = std::getenv("BARRACUDA_REGISTRY");
  std::string registry_path = registry_env ? registry_env : "";
  const char* recover_env = std::getenv("BARRACUDA_RECOVER");
  bool recover = recover_env && *recover_env &&
                 std::strcmp(recover_env, "0") != 0;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--device") {
      device_name = next();
    } else if (arg == "--evals") {
      evals = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--jobs") {
      jobs = static_cast<int>(std::strtol(next(), nullptr, 10));
      if (jobs < 0) {
        std::fprintf(stderr,
                     "error: --jobs must be >= 0 (0 = hardware "
                     "concurrency)\n");
        return 2;
      }
    } else if (arg == "--method") {
      method = next();
    } else if (arg == "--shared") {
      shared = true;
    } else if (arg == "--emit-cuda") {
      emit_cuda = next();
    } else if (arg == "--emit-orio") {
      emit_orio = next();
    } else if (arg == "--emit-c") {
      emit_c = next();
    } else if (arg == "--save-recipe") {
      save_recipe = next();
    } else if (arg == "--load-recipe") {
      load_recipe = next();
    } else if (arg == "--serve") {
      do_serve = true;
    } else if (arg == "--prewarm") {
      do_prewarm = true;
    } else if (arg == "--devices") {
      devices_arg = next();
    } else if (arg == "--grid") {
      grid = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
      if (grid == 0) {
        std::fprintf(stderr, "error: --grid must be >= 1\n");
        return 2;
      }
    } else if (arg == "--clients") {
      clients = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--requests") {
      requests = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--batch") {
      batch = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
      if (batch == 0) {
        std::fprintf(stderr, "error: --batch must be >= 1\n");
        return 2;
      }
    } else if (arg == "--retune-budget") {
      retune_budget =
          static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--retune-interval") {
      retune_interval = std::strtod(next(), nullptr);
      if (retune_interval < 0) {
        std::fprintf(stderr, "error: --retune-interval must be >= 0\n");
        return 2;
      }
    } else if (arg == "--retune-topk") {
      retune_topk =
          static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--hot-threshold") {
      hot_threshold = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--ageout") {
      ageout = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--plan-server") {
      plan_server_addr = next();
    } else if (arg == "--server-threads") {
      server_threads =
          static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
      if (server_threads == 0) {
        std::fprintf(stderr, "error: --server-threads must be >= 1\n");
        return 2;
      }
    } else if (arg == "--flush-interval") {
      flush_interval = std::strtod(next(), nullptr);
      if (flush_interval < 0) {
        std::fprintf(stderr, "error: --flush-interval must be >= 0\n");
        return 2;
      }
    } else if (arg == "--remote") {
      remote_addr = next();
    } else if (arg == "--hedge-threshold") {
      hedge_threshold = std::strtod(next(), nullptr);
      if (hedge_threshold < 0) {
        std::fprintf(stderr, "error: --hedge-threshold must be >= 0\n");
        return 2;
      }
    } else if (arg == "--peers") {
      peers_csv = next();
    } else if (arg == "--gossip-interval") {
      gossip_interval = std::strtod(next(), nullptr);
      if (gossip_interval < 0) {
        std::fprintf(stderr, "error: --gossip-interval must be >= 0\n");
        return 2;
      }
    } else if (arg == "--anti-entropy-interval") {
      anti_entropy_interval = std::strtod(next(), nullptr);
      if (anti_entropy_interval < 0) {
        std::fprintf(stderr,
                     "error: --anti-entropy-interval must be >= 0\n");
        return 2;
      }
    } else if (arg == "--breaker-cooldown") {
      breaker_cooldown = std::strtod(next(), nullptr);
      if (breaker_cooldown < 0) {
        std::fprintf(stderr, "error: --breaker-cooldown must be >= 0\n");
        return 2;
      }
    } else if (arg == "--registry") {
      registry_path = next();
    } else if (arg == "--tune-deadline") {
      tune_deadline = std::strtod(next(), nullptr);
      if (tune_deadline < 0) {
        std::fprintf(stderr, "error: --tune-deadline must be >= 0\n");
        return 2;
      }
    } else if (arg == "--recover") {
      recover = true;
    } else if (arg == "--report") {
      do_report = true;
    } else if (arg == "--verify") {
      do_verify = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "error: unknown option %s\n", arg.c_str());
      return usage(argv[0]);
    } else if (input_path.empty()) {
      input_path = arg;
    } else {
      return usage(argv[0]);
    }
  }
  // Plan-server mode needs no input program — it serves plans, it does
  // not tune them — and composes with no other mode.
  if (!plan_server_addr.empty()) {
    if (do_serve || do_prewarm || !input_path.empty()) {
      std::fprintf(stderr,
                   "error: --plan-server is its own mode (run clients with "
                   "--serve --remote against it)\n");
      return 2;
    }
    const support::RecoveryPolicy policy =
        recover ? support::RecoveryPolicy::kSalvage
                : support::RecoveryPolicy::kStrict;
    try {
      // --gossip-interval without an explicit value defaults to 1s once
      // peers exist; without peers it is meaningless either way.
      const double gossip =
          gossip_interval >= 0 ? gossip_interval
                               : (peers_csv.empty() ? 0.0 : 1.0);
      return run_plan_server(plan_server_addr, registry_path, policy,
                             server_threads, flush_interval, ageout,
                             peers_csv, gossip);
    } catch (const Error& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }
  if (input_path.empty() || evals == 0) return usage(argv[0]);
  if (do_serve && (clients == 0 || requests == 0)) {
    std::fprintf(stderr, "error: --clients and --requests must be >= 1\n");
    return 2;
  }
  if (!remote_addr.empty() && !do_serve) {
    std::fprintf(stderr, "error: --remote requires --serve\n");
    return 2;
  }
  if (!peers_csv.empty() || gossip_interval >= 0) {
    // plan_server_addr handled above; reaching here means serve mode.
    std::fprintf(stderr,
                 "error: --peers/--gossip-interval require --plan-server\n");
    return 2;
  }
  if (hedge_threshold > 0 && remote_addr.find(',') == std::string::npos) {
    std::fprintf(stderr,
                 "error: --hedge-threshold needs >= 2 --remote endpoints\n");
    return 2;
  }
  if (do_prewarm && do_serve) {
    std::fprintf(stderr,
                 "error: --prewarm and --serve are separate modes (prewarm "
                 "offline, then serve against the registry)\n");
    return 2;
  }
  if (do_prewarm && registry_path.empty()) {
    std::fprintf(stderr,
                 "error: --prewarm needs --registry FILE (or "
                 "BARRACUDA_REGISTRY) to write the warm registry to\n");
    return 2;
  }

  vgpu::DeviceProfile device;
  if (!device_by_name(device_name, &device)) {
    std::fprintf(stderr, "error: unknown device %s\n", device_name.c_str());
    return 2;
  }

  // --devices: the prewarm grid's device axis (default: just --device).
  std::vector<vgpu::DeviceProfile> prewarm_devices;
  if (devices_arg.empty()) {
    prewarm_devices.push_back(device);
  } else {
    for (const std::string& name : split(devices_arg, ',')) {
      vgpu::DeviceProfile d;
      if (!device_by_name(name, &d)) {
        std::fprintf(stderr, "error: unknown device %s in --devices\n",
                     name.c_str());
        return 2;
      }
      prewarm_devices.push_back(d);
    }
  }

  std::ifstream in(input_path);
  if (!in) {
    std::fprintf(stderr, "error: cannot read %s\n", input_path.c_str());
    return 1;
  }
  std::ostringstream text;
  text << in.rdbuf();

  const support::RecoveryPolicy policy = recover
                                             ? support::RecoveryPolicy::kSalvage
                                             : support::RecoveryPolicy::kStrict;

  try {
    if (do_prewarm) {
      // Prewarm parses the OCTOPI program directly (NOT through
      // TuningProblem::from_dsl): ranged dims — `dim i j k = 8..16` —
      // are exactly what spans the extent grid, and a prewarm input may
      // consist of nothing else.
      octopi::OctopiProgram program =
          octopi::parse_octopi(text.str(), input_path);
      core::TuneOptions options;
      options.search.max_evaluations = evals;
      options.search.n_jobs = jobs;
      options.decision.use_shared_memory = shared;
      support::validate_writable_path(registry_path, "plan registry");
      core::EvalCache eval_cache;
      options.eval_cache = &eval_cache;
      const char* cache_path = std::getenv("BARRACUDA_CACHE");
      if (cache_path && *cache_path) {
        support::validate_writable_path(cache_path, "evaluation cache");
        std::ifstream probe(cache_path);
        if (probe.good()) {
          probe.close();
          support::SalvageReport report;
          std::printf("evaluation cache : loaded %zu entries from %s\n",
                      eval_cache.load(cache_path, policy, &report),
                      cache_path);
          print_salvage("evaluation cache", report);
        }
      }
      int rc = run_prewarm(program, prewarm_devices, options, grid,
                           registry_path, policy);
      if (cache_path && *cache_path) {
        eval_cache.merge_save(cache_path, policy);
        std::printf("evaluation cache : %zu entries saved to %s\n",
                    eval_cache.size(), cache_path);
      }
      return rc;
    }

    core::TuningProblem problem =
        core::TuningProblem::from_dsl(text.str(), input_path);
    core::TuneOptions options;
    options.search.max_evaluations = evals;
    options.search.n_jobs = jobs;
    options.decision.use_shared_memory = shared;
    core::EvalCache eval_cache;
    options.eval_cache = &eval_cache;
    const char* cache_path = std::getenv("BARRACUDA_CACHE");
    // Fail-fast on persistence paths: a mistyped BARRACUDA_CACHE /
    // BARRACUDA_REGISTRY / --registry directory should abort now with a
    // clear message, not after minutes of tuning when the end-of-run
    // save finally trips over it.
    if (cache_path && *cache_path) {
      support::validate_writable_path(cache_path, "evaluation cache");
    }
    if (!registry_path.empty()) {
      support::validate_writable_path(registry_path, "plan registry");
    }
    if (cache_path && *cache_path) {
      std::ifstream probe(cache_path);
      if (probe.good()) {
        support::SalvageReport report;
        std::size_t n = eval_cache.load(cache_path, policy, &report);
        std::printf("evaluation cache : loaded %zu entries from %s\n", n,
                    cache_path);
        print_salvage("evaluation cache", report);
      }
    }
    if (method == "random") {
      options.method = core::TuneOptions::Method::kRandom;
    } else if (method == "exhaustive") {
      options.method = core::TuneOptions::Method::kExhaustive;
    } else if (method != "surf") {
      std::fprintf(stderr, "error: unknown method %s\n", method.c_str());
      return 2;
    }

    // End-of-run cache summary, printed on every path whenever
    // BARRACUDA_CACHE is set (hit rate measures how much re-measurement
    // the cache saved this run).
    auto cache_summary = [&] {
      if (!(cache_path && *cache_path)) return;
      const std::size_t probes = eval_cache.hits() + eval_cache.misses();
      std::printf("cache summary    : %zu entries, %zu hits / %zu misses "
                  "(%.1f%% hit rate)\n",
                  eval_cache.size(), eval_cache.hits(), eval_cache.misses(),
                  probes ? 100.0 * static_cast<double>(eval_cache.hits()) /
                               static_cast<double>(probes)
                         : 0.0);
    };

    if (do_serve) {
      int rc = run_serve(problem, device, options, clients, requests, batch,
                         registry_path, policy, tune_deadline,
                         breaker_cooldown, retune_budget, retune_interval,
                         retune_topk, hot_threshold, ageout, remote_addr,
                         anti_entropy_interval, hedge_threshold);
      if (cache_path && *cache_path) {
        // Best-effort for the same reason as the registry save in
        // run_serve: persistence trouble must not fail a served run.
        try {
          eval_cache.merge_save(cache_path, policy);
          std::printf("evaluation cache : %zu entries saved to %s\n",
                      eval_cache.size(), cache_path);
        } catch (const Error& e) {
          std::fprintf(stderr,
                       "warning: evaluation cache not saved (%s)\n",
                       e.what());
        }
      }
      cache_summary();
      return rc;
    }

    core::TuneResult result;
    if (!load_recipe.empty()) {
      // Replay a persisted recipe: no search, just re-lower and model.
      std::ifstream rin(load_recipe);
      if (!rin) {
        std::fprintf(stderr, "error: cannot read %s\n",
                     load_recipe.c_str());
        return 1;
      }
      std::ostringstream rtext;
      rtext << rin.rdbuf();
      std::size_t variant = 0;
      std::string body = rtext.str();
      if (body.rfind("# variant ", 0) == 0) {
        variant = static_cast<std::size_t>(
                      std::strtoull(body.c_str() + 10, nullptr, 10)) -
                  1;
      }
      result.variants = core::enumerate_programs(problem);
      if (variant >= result.variants.size()) {
        std::fprintf(stderr, "error: recipe variant out of range\n");
        return 1;
      }
      result.best_variant = variant;
      result.best_recipe = core::parse_recipe(body, load_recipe);
      result.best_plan = chill::lower_program(result.variants[variant],
                                              result.best_recipe);
      result.best_timing = vgpu::model_plan(result.best_plan, device);
      result.flops = result.variants[variant].flops();
      result.joint_space_size = 0;
      result.pool_size = 0;
      result.search.history = {{0, result.best_timing.total_us}};
      result.search.best_value = result.best_timing.total_us;
      std::printf("recipe           : replayed from %s (no search)\n",
                  load_recipe.c_str());
    } else {
      result = core::tune(problem, device, options);
      if (cache_path && *cache_path) {
        // Merge under the advisory lock: concurrent invocations sharing
        // one cache path keep each other's measurements.
        eval_cache.merge_save(cache_path, policy);
        std::printf("evaluation cache : %zu entries (%zu hits / %zu misses) "
                    "saved to %s\n",
                    eval_cache.size(), eval_cache.hits(),
                    eval_cache.misses(), cache_path);
      }
    }

    std::printf("input            : %s (%zu statement%s)\n",
                input_path.c_str(), problem.statements.size(),
                problem.statements.size() == 1 ? "" : "s");
    std::printf("device           : %s (%s, %.0f GF DP peak)\n",
                device.name.c_str(), device.arch.c_str(),
                device.peak_dp_gflops());
    std::printf("variants         : %zu (best: #%zu, %lld flops)\n",
                result.variants.size(), result.best_variant + 1,
                static_cast<long long>(result.flops));
    std::printf("search space     : %lld configurations (pool %zu, %zu "
                "evaluations, %.2fs)\n",
                static_cast<long long>(result.joint_space_size),
                result.pool_size, result.search.evaluations(),
                result.search.seconds);
    for (std::size_t k = 0; k < result.best_recipe.size(); ++k) {
      std::printf("kernel %zu mapping : %s\n", k + 1,
                  result.best_recipe[k].to_string().c_str());
    }
    std::printf("modeled time     : %.1f us (%.2f GFlop/s; %.2f GFlop/s "
                "with transfers amortized over 100 reps)\n",
                result.modeled_us(), result.modeled_gflops(),
                result.modeled_gflops_amortized());
    cache_summary();

    if (do_report) {
      std::printf("\n%s", core::tuning_report(result, device).c_str());
    }
    if (!emit_cuda.empty() &&
        !write_file(emit_cuda, result.cuda_source())) {
      return 1;
    }
    if (!emit_c.empty() &&
        !write_file(emit_c, chill::c_source(result.best_program()))) {
      return 1;
    }
    if (!save_recipe.empty()) {
      std::string body = "# variant " +
                         std::to_string(result.best_variant + 1) + "\n" +
                         core::serialize_recipe(result.best_recipe);
      if (!write_file(save_recipe, body)) return 1;
    }
    if (!emit_orio.empty()) {
      std::vector<tcr::KernelSpace> spaces;
      for (const auto& nest :
           tcr::build_loop_nests(result.best_program())) {
        spaces.push_back(tcr::derive_space(nest, options.decision));
      }
      if (!write_file(emit_orio,
                      orio::emit_annotated_source(result.best_program(),
                                                  spaces,
                                                  result.best_recipe))) {
        return 1;
      }
    }
    if (do_verify) {
      double err = verify(problem, result);
      std::printf("verification     : max |err| = %.3g (%s)\n", err,
                  err < 1e-9 ? "PASS" : "FAIL");
      if (err >= 1e-9) return 1;
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
