// Ablation: shared-memory data placement (this reproduction's faithful
// extension of the memory-hierarchy axis of Khan's algorithm, which the
// paper's simplified space omits).  Staging the small reused derivative
// matrix D into shared memory removes its per-iteration global reads.
#include "bench_common.hpp"

using namespace barracuda;

int main() {
  bench::print_header(
      "Ablation: shared-memory staging of reused inputs (extension)");

  TextTable table({"Benchmark", "Device", "No staging (us)",
                   "With staging (us)", "Speedup", "Best mapping uses"});
  for (const auto& benchmark :
       {benchsuite::lg3(512, 12), benchsuite::lg3t(512, 12)}) {
    for (const auto& device : {vgpu::DeviceProfile::tesla_c2050(),
                               vgpu::DeviceProfile::gtx980()}) {
      core::TuneOptions off = bench::paper_tune_options();
      core::TuneOptions on = off;
      on.decision.use_shared_memory = true;

      core::TuneResult plain = core::tune(benchmark.problem, device, off);
      core::TuneResult staged = core::tune(benchmark.problem, device, on);
      std::size_t staged_kernels = 0;
      for (const auto& cfg : staged.best_recipe) {
        staged_kernels += !cfg.shared_tensors.empty();
      }
      table.add_row(
          {benchmark.name, device.name,
           TextTable::fixed(plain.best_timing.kernel_us, 1),
           TextTable::fixed(staged.best_timing.kernel_us, 1),
           TextTable::speedup(plain.best_timing.kernel_us /
                              staged.best_timing.kernel_us),
           std::to_string(staged_kernels) + "/" +
               std::to_string(staged.best_recipe.size()) + " staged"});
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nReading: with warp-broadcast reads and L2 capture already pricing\n"
      "the small derivative matrix as nearly free, staging buys little and\n"
      "the axis doubles the space per candidate — diluting a fixed search\n"
      "budget (the no-staging configurations are a subset, but the sampled\n"
      "pool covers them more thinly).  This *validates the paper's choice*\n"
      "to leave data placement out of its simplified space for these\n"
      "kernels; the axis is here for workloads where it does pay.\n");
  return 0;
}
