// Plan-serving throughput and latency: cold registry vs warm registry
// on a repeated-signature workload, at 1..8 client threads.
//
// Workload: a handful of distinct contraction signatures (the paper's
// Eqn (1) shape at several extents), each requested many times — the
// traffic shape a production tuning service sees, where millions of
// requests collapse onto a small set of hot signatures.
//
//   cold phase  : fresh registry, one pass — every client requests every
//                 signature once, so requests pay the cold cost: the
//                 fallback construction (enumerate + lower + model) and
//                 the tune enqueue, or at best a race on a signature
//                 another client is concurrently publishing.
//   warm phase  : after drain(), every signature is tuned and every
//                 request is a registry hit — a lock-free shard-snapshot
//                 read (no mutex anywhere on the path).  This is the
//                 steady state a long-running service lives in, and must
//                 be >= 10x the cold throughput AND scale with client
//                 count (the contention gates this harness checks).
//
// Scaling gates (the regression guard for the sharded lock-free warm
// path — the single-mutex registry was flat at ~200-275k req/s from 1
// to 8 clients):
//   scaling_efficiency = warm req/s at 8 clients / (8 x warm req/s at
//   1 client).  Both targets scale with the cores actually present
//   (min(1, hw/8)): on an 8-core box the gate is the full >= 1M
//   aggregate req/s and >= 0.5 efficiency; on smaller CI boxes the
//   pro-rated gate still catches a lock-contention collapse (efficiency
//   on 1 core cannot exceed ~1/8 no matter the code, but a contended
//   mutex drives it far below even that).
//
// Emits the raw rows plus scaling_efficiency to BENCH_serve.json for
// plotting/regression tracking.  Exit status is the gates above plus a
// cleanliness gate on the resilience counters: no faults are injected
// here, so any retry, tune failure, or open circuit breaker is a real
// pipeline bug.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "serve/service.hpp"
#include "support/percentile.hpp"
#include "support/timer.hpp"

using namespace barracuda;

namespace {

constexpr std::size_t kClientWidths[] = {1, 2, 4, 8};
constexpr std::size_t kRequestsPerSignature = 50;

/// Distinct signatures: Eqn (1) at different extents (different extents
/// -> different canonical signatures and different tuned plans).
std::vector<core::TuningProblem> workload() {
  std::vector<core::TuningProblem> problems;
  for (int n : {4, 5, 6, 7}) {
    std::string dsl =
        "dim i j k l m n = " + std::to_string(n) +
        "\nV[i j k] = Sum([l m n], A[l k] * B[m j] * C[n i] * U[l m n])\n";
    problems.push_back(
        core::TuningProblem::from_dsl(dsl, "eqn1_n" + std::to_string(n)));
  }
  return problems;
}

struct PhaseResult {
  double seconds = 0;
  std::size_t requests = 0;
  double p50_us = 0, p95_us = 0, max_us = 0;
  double throughput() const { return requests / std::max(seconds, 1e-12); }
};

/// Fire `passes` round-robin passes over the signatures at `service`
/// from `clients` threads (disjoint latency slots) and summarize.
PhaseResult run_phase(serve::TuningService& service,
                      const std::vector<core::TuningProblem>& problems,
                      const vgpu::DeviceProfile& device,
                      std::size_t clients, std::size_t passes) {
  const std::size_t per_client = problems.size() * passes;
  std::vector<std::vector<double>> latency(clients);
  PhaseResult phase;
  WallTimer wall;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      latency[c].reserve(per_client);
      for (std::size_t r = 0; r < per_client; ++r) {
        const core::TuningProblem& p =
            problems[(c + r) % problems.size()];
        WallTimer t;
        (void)service.get_plan(p, device);
        latency[c].push_back(t.seconds() * 1e6);
      }
    });
  }
  for (auto& t : threads) t.join();
  phase.seconds = wall.seconds();
  std::vector<double> all;
  for (const auto& v : latency) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  phase.requests = all.size();
  if (!all.empty()) {
    // Shared nearest-rank helper: the old inline math here used
    // truncating indices (size/2, size*95/100) which over-reports the
    // rank on small N — e.g. p50 of 4 samples read element 3 of 4.
    phase.p50_us = support::percentile_sorted(all, 50.0);
    phase.p95_us = support::percentile_sorted(all, 95.0);
    phase.max_us = all.back();
  }
  return phase;
}

}  // namespace

int main() {
  bench::print_header(
      "Plan serving: cold vs warm registry, repeated signatures");
  std::vector<core::TuningProblem> problems = workload();
  auto device = vgpu::DeviceProfile::tesla_k20();

  core::TuneOptions tune = bench::paper_tune_options();
  tune.search.max_evaluations = 30;
  tune.max_pool = 256;

  struct Row {
    std::size_t clients;
    PhaseResult cold, warm;
    std::size_t tunes = 0;
    std::size_t retries = 0;
    std::size_t failures = 0;
    std::size_t breakers = 0;
    bool single_flight = false;
  };
  std::vector<Row> rows;

  for (std::size_t clients : kClientWidths) {
    Row row;
    row.clients = clients;
    serve::PlanRegistry registry;
    serve::ServeOptions options;
    options.tune = tune;
    serve::TuningService service(registry, options);

    row.cold = run_phase(service, problems, device, clients, 1);
    service.drain();  // all background tunes land before the warm phase
    row.warm =
        run_phase(service, problems, device, clients, kRequestsPerSignature);
    service.drain();

    serve::ServeStats stats = service.stats();
    row.tunes = stats.tunes_started;
    // Resilience counters: this harness injects no faults, so any
    // retry, tune failure, or open breaker is a real pipeline bug and
    // fails the gate below.
    row.retries = stats.retries;
    row.failures = stats.tune_failures;
    row.breakers = stats.breaker_open;
    // Single-flight gate: exactly one tune per distinct signature, no
    // matter how many clients raced on it.
    row.single_flight =
        stats.tunes_started == problems.size() && stats.rejected == 0;
    rows.push_back(row);
  }

  TextTable table({"clients", "cold req/s", "warm req/s", "speedup",
                   "warm p50 us", "warm p95 us", "tunes", "retries",
                   "single-flight"});
  bool all_pass = true;
  for (const Row& row : rows) {
    const double speedup = row.warm.throughput() / row.cold.throughput();
    const bool clean = row.retries == 0 && row.failures == 0 &&
                       row.breakers == 0;
    all_pass = all_pass && speedup >= 10.0 && row.single_flight && clean;
    table.add_row({std::to_string(row.clients),
                   TextTable::fixed(row.cold.throughput(), 0),
                   TextTable::fixed(row.warm.throughput(), 0),
                   TextTable::fixed(speedup, 1),
                   TextTable::fixed(row.warm.p50_us, 1),
                   TextTable::fixed(row.warm.p95_us, 1),
                   std::to_string(row.tunes),
                   std::to_string(row.retries),
                   row.single_flight ? "yes" : "NO — BUG"});
  }
  std::printf("%s", table.render().c_str());

  // Contention gates for the sharded lock-free warm path.  Full targets
  // (>= 1M aggregate req/s at 8 clients, scaling efficiency >= 0.5) are
  // pro-rated by the cores available: a 1-core CI box cannot scale 8
  // threads no matter how lock-free the path is, but a contended mutex
  // still collapses far below the pro-rated floor.
  const double hw = std::max<double>(
      1.0, static_cast<double>(std::thread::hardware_concurrency()));
  const double hw_scale = std::min(1.0, hw / 8.0);
  const double warm_at_1 = rows.front().warm.throughput();
  const double warm_at_max = rows.back().warm.throughput();
  const double scaling_efficiency =
      warm_at_max /
      (static_cast<double>(rows.back().clients) * std::max(warm_at_1, 1e-12));
  const double aggregate_target = 1e6 * hw_scale;
  const double efficiency_target = 0.5 * hw_scale;
  const bool aggregate_ok = warm_at_max >= aggregate_target;
  const bool efficiency_ok = scaling_efficiency >= efficiency_target;
  all_pass = all_pass && aggregate_ok && efficiency_ok;

  std::printf(
      "\nwarm aggregate @ %zu clients : %.0f req/s (target %.0f, %s)\n"
      "scaling efficiency          : %.3f (target %.3f, %s) "
      "[%zu cores detected]\n",
      rows.back().clients, warm_at_max, aggregate_target,
      aggregate_ok ? "pass" : "FAIL", scaling_efficiency, efficiency_target,
      efficiency_ok ? "pass" : "FAIL", static_cast<std::size_t>(hw));
  std::printf(
      "\nGate: warm-registry throughput >= 10x cold on the repeated-\n"
      "signature workload, tune count == distinct signatures (%zu) at\n"
      "every client width, zero retries/failures/open breakers (nothing\n"
      "injects faults here, so any retry is a pipeline bug), and the\n"
      "core-scaled aggregate-throughput / scaling-efficiency targets\n"
      "above (full targets: 1M req/s aggregate, 0.5 efficiency).\n",
      problems.size());

  const char* json_path = "BENCH_serve.json";
  std::ofstream out(json_path);
  char head[256];
  std::snprintf(head, sizeof(head),
                "{\n  \"distinct_signatures\": %zu,\n"
                "  \"requests_per_signature\": %zu,\n"
                "  \"hardware_concurrency\": %zu,\n"
                "  \"scaling_efficiency\": %.4f,\n"
                "  \"rows\": [\n",
                problems.size(), kRequestsPerSignature,
                static_cast<std::size_t>(hw), scaling_efficiency);
  out << head;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"clients\": %zu, \"cold_req_per_s\": %.1f, "
        "\"warm_req_per_s\": %.1f, \"speedup\": %.2f, "
        "\"cold_p95_us\": %.2f, \"warm_p50_us\": %.2f, "
        "\"warm_p95_us\": %.2f, \"tunes\": %zu, "
        "\"retries\": %zu, \"tune_failures\": %zu, "
        "\"breakers_open\": %zu, \"single_flight\": %s}%s\n",
        row.clients, row.cold.throughput(), row.warm.throughput(),
        row.warm.throughput() / row.cold.throughput(), row.cold.p95_us,
        row.warm.p50_us, row.warm.p95_us, row.tunes, row.retries,
        row.failures, row.breakers,
        row.single_flight ? "true" : "false",
        i + 1 < rows.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
  out.close();
  std::printf("raw rows written to %s\n", json_path);
  return all_pass ? 0 : 1;
}
