// Plan-serving throughput and latency: cold registry vs warm registry
// on a repeated-signature workload, at 1..8 client threads.
//
// Workload: a handful of distinct contraction signatures (the paper's
// Eqn (1) shape at several extents), each requested many times — the
// traffic shape a production tuning service sees, where millions of
// requests collapse onto a small set of hot signatures.
//
//   cold phase  : fresh registry, one pass — every client requests every
//                 signature once, so requests pay the cold cost: the
//                 fallback construction (enumerate + lower + model) and
//                 the tune enqueue, or at best a race on a signature
//                 another client is concurrently publishing.
//   warm phase  : after drain(), every signature is tuned and every
//                 request is a registry hit — a mutex-guarded map
//                 lookup.  This is the steady state a long-running
//                 service lives in, and must be >= 10x the cold
//                 throughput (the acceptance gate this harness checks;
//                 in practice it is orders of magnitude beyond that).
//
// Emits the raw rows to BENCH_serve.json for plotting/regression
// tracking.  Exit status is the 10x gate plus a cleanliness gate on
// the resilience counters: no faults are injected here, so any retry,
// tune failure, or open circuit breaker is a real pipeline bug.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "serve/service.hpp"
#include "support/timer.hpp"

using namespace barracuda;

namespace {

constexpr std::size_t kClientWidths[] = {1, 2, 4, 8};
constexpr std::size_t kRequestsPerSignature = 50;

/// Distinct signatures: Eqn (1) at different extents (different extents
/// -> different canonical signatures and different tuned plans).
std::vector<core::TuningProblem> workload() {
  std::vector<core::TuningProblem> problems;
  for (int n : {4, 5, 6, 7}) {
    std::string dsl =
        "dim i j k l m n = " + std::to_string(n) +
        "\nV[i j k] = Sum([l m n], A[l k] * B[m j] * C[n i] * U[l m n])\n";
    problems.push_back(
        core::TuningProblem::from_dsl(dsl, "eqn1_n" + std::to_string(n)));
  }
  return problems;
}

struct PhaseResult {
  double seconds = 0;
  std::size_t requests = 0;
  double p50_us = 0, p95_us = 0, max_us = 0;
  double throughput() const { return requests / std::max(seconds, 1e-12); }
};

/// Fire `passes` round-robin passes over the signatures at `service`
/// from `clients` threads (disjoint latency slots) and summarize.
PhaseResult run_phase(serve::TuningService& service,
                      const std::vector<core::TuningProblem>& problems,
                      const vgpu::DeviceProfile& device,
                      std::size_t clients, std::size_t passes) {
  const std::size_t per_client = problems.size() * passes;
  std::vector<std::vector<double>> latency(clients);
  PhaseResult phase;
  WallTimer wall;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      latency[c].reserve(per_client);
      for (std::size_t r = 0; r < per_client; ++r) {
        const core::TuningProblem& p =
            problems[(c + r) % problems.size()];
        WallTimer t;
        (void)service.get_plan(p, device);
        latency[c].push_back(t.seconds() * 1e6);
      }
    });
  }
  for (auto& t : threads) t.join();
  phase.seconds = wall.seconds();
  std::vector<double> all;
  for (const auto& v : latency) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  phase.requests = all.size();
  if (!all.empty()) {
    phase.p50_us = all[all.size() / 2];
    phase.p95_us = all[std::min(all.size() - 1, all.size() * 95 / 100)];
    phase.max_us = all.back();
  }
  return phase;
}

}  // namespace

int main() {
  bench::print_header(
      "Plan serving: cold vs warm registry, repeated signatures");
  std::vector<core::TuningProblem> problems = workload();
  auto device = vgpu::DeviceProfile::tesla_k20();

  core::TuneOptions tune = bench::paper_tune_options();
  tune.search.max_evaluations = 30;
  tune.max_pool = 256;

  struct Row {
    std::size_t clients;
    PhaseResult cold, warm;
    std::size_t tunes = 0;
    std::size_t retries = 0;
    std::size_t failures = 0;
    std::size_t breakers = 0;
    bool single_flight = false;
  };
  std::vector<Row> rows;

  for (std::size_t clients : kClientWidths) {
    Row row;
    row.clients = clients;
    serve::PlanRegistry registry;
    serve::ServeOptions options;
    options.tune = tune;
    serve::TuningService service(registry, options);

    row.cold = run_phase(service, problems, device, clients, 1);
    service.drain();  // all background tunes land before the warm phase
    row.warm =
        run_phase(service, problems, device, clients, kRequestsPerSignature);
    service.drain();

    serve::ServeStats stats = service.stats();
    row.tunes = stats.tunes_started;
    // Resilience counters: this harness injects no faults, so any
    // retry, tune failure, or open breaker is a real pipeline bug and
    // fails the gate below.
    row.retries = stats.retries;
    row.failures = stats.tune_failures;
    row.breakers = stats.breaker_open;
    // Single-flight gate: exactly one tune per distinct signature, no
    // matter how many clients raced on it.
    row.single_flight =
        stats.tunes_started == problems.size() && stats.rejected == 0;
    rows.push_back(row);
  }

  TextTable table({"clients", "cold req/s", "warm req/s", "speedup",
                   "warm p50 us", "warm p95 us", "tunes", "retries",
                   "single-flight"});
  bool all_pass = true;
  for (const Row& row : rows) {
    const double speedup = row.warm.throughput() / row.cold.throughput();
    const bool clean = row.retries == 0 && row.failures == 0 &&
                       row.breakers == 0;
    all_pass = all_pass && speedup >= 10.0 && row.single_flight && clean;
    table.add_row({std::to_string(row.clients),
                   TextTable::fixed(row.cold.throughput(), 0),
                   TextTable::fixed(row.warm.throughput(), 0),
                   TextTable::fixed(speedup, 1),
                   TextTable::fixed(row.warm.p50_us, 1),
                   TextTable::fixed(row.warm.p95_us, 1),
                   std::to_string(row.tunes),
                   std::to_string(row.retries),
                   row.single_flight ? "yes" : "NO — BUG"});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nGate: warm-registry throughput >= 10x cold on the repeated-\n"
      "signature workload, tune count == distinct signatures (%zu) at\n"
      "every client width, and zero retries/failures/open breakers\n"
      "(nothing injects faults here, so any retry is a pipeline bug).\n",
      problems.size());

  const char* json_path = "BENCH_serve.json";
  std::ofstream out(json_path);
  out << "{\n  \"distinct_signatures\": " << problems.size()
      << ",\n  \"requests_per_signature\": " << kRequestsPerSignature
      << ",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"clients\": %zu, \"cold_req_per_s\": %.1f, "
        "\"warm_req_per_s\": %.1f, \"speedup\": %.2f, "
        "\"cold_p95_us\": %.2f, \"warm_p50_us\": %.2f, "
        "\"warm_p95_us\": %.2f, \"tunes\": %zu, "
        "\"retries\": %zu, \"tune_failures\": %zu, "
        "\"breakers_open\": %zu, \"single_flight\": %s}%s\n",
        row.clients, row.cold.throughput(), row.warm.throughput(),
        row.warm.throughput() / row.cold.throughput(), row.cold.p95_us,
        row.warm.p50_us, row.warm.p95_us, row.tunes, row.retries,
        row.failures, row.breakers,
        row.single_flight ? "true" : "false",
        i + 1 < rows.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
  out.close();
  std::printf("raw rows written to %s\n", json_path);
  return all_pass ? 0 : 1;
}
