// Plan-serving throughput and latency: cold registry vs warm registry
// on a repeated-signature workload, at 1..8 client threads.
//
// Workload: a handful of distinct contraction signatures (the paper's
// Eqn (1) shape at several extents), each requested many times — the
// traffic shape a production tuning service sees, where millions of
// requests collapse onto a small set of hot signatures.
//
//   cold phase  : fresh registry, one pass — every client requests every
//                 signature once, so requests pay the cold cost: the
//                 fallback construction (enumerate + lower + model) and
//                 the tune enqueue, or at best a race on a signature
//                 another client is concurrently publishing.
//   warm phase  : after drain(), every signature is tuned and every
//                 request is a registry hit — a lock-free shard-snapshot
//                 read (no mutex anywhere on the path).  This is the
//                 steady state a long-running service lives in, and must
//                 be >= 10x the cold throughput AND scale with client
//                 count (the contention gates this harness checks).
//
// Scaling gates (the regression guard for the sharded lock-free warm
// path — the single-mutex registry was flat at ~200-275k req/s from 1
// to 8 clients):
//   scaling_efficiency = warm req/s at 8 clients / (8 x warm req/s at
//   1 client).  Both targets scale with the cores actually present
//   (min(1, hw/8)): on an 8-core box the gate is the full >= 1M
//   aggregate req/s and >= 0.5 efficiency; on smaller CI boxes the
//   pro-rated gate still catches a lock-contention collapse (efficiency
//   on 1 core cannot exceed ~1/8 no matter the code, but a contended
//   mutex drives it far below even that).
//
// A distributed phase then runs the same workload against an
// in-process PlanServer on a Unix socket: remote warm GET_PLAN round
// trips must sustain >= 0.1x the local warm rate, and a second fresh
// node sharing the server must warm up with zero tunes of its own.
//
// Emits the raw rows plus scaling_efficiency to BENCH_serve.json for
// plotting/regression tracking.  Exit status is the gates above plus a
// cleanliness gate on the resilience counters: no faults are injected
// here, so any retry, tune failure, or open circuit breaker is a real
// pipeline bug.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "net/socket.hpp"
#include "serve/remote/planserver.hpp"
#include "serve/remote/remoteregistry.hpp"
#include "serve/service.hpp"
#include "support/percentile.hpp"
#include "support/timer.hpp"

using namespace barracuda;

namespace {

constexpr std::size_t kClientWidths[] = {1, 2, 4, 8};
constexpr std::size_t kRequestsPerSignature = 50;

/// Distinct signatures: Eqn (1) at different extents (different extents
/// -> different canonical signatures and different tuned plans).
std::vector<core::TuningProblem> workload() {
  std::vector<core::TuningProblem> problems;
  for (int n : {4, 5, 6, 7}) {
    std::string dsl =
        "dim i j k l m n = " + std::to_string(n) +
        "\nV[i j k] = Sum([l m n], A[l k] * B[m j] * C[n i] * U[l m n])\n";
    problems.push_back(
        core::TuningProblem::from_dsl(dsl, "eqn1_n" + std::to_string(n)));
  }
  return problems;
}

struct PhaseResult {
  double seconds = 0;
  std::size_t requests = 0;
  double p50_us = 0, p95_us = 0, max_us = 0;
  double throughput() const { return requests / std::max(seconds, 1e-12); }
};

/// Fire `passes` round-robin passes over the signatures at `service`
/// from `clients` threads (disjoint latency slots) and summarize.
PhaseResult run_phase(serve::TuningService& service,
                      const std::vector<core::TuningProblem>& problems,
                      const vgpu::DeviceProfile& device,
                      std::size_t clients, std::size_t passes) {
  const std::size_t per_client = problems.size() * passes;
  std::vector<std::vector<double>> latency(clients);
  PhaseResult phase;
  WallTimer wall;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      latency[c].reserve(per_client);
      for (std::size_t r = 0; r < per_client; ++r) {
        const core::TuningProblem& p =
            problems[(c + r) % problems.size()];
        WallTimer t;
        (void)service.get_plan(p, device);
        latency[c].push_back(t.seconds() * 1e6);
      }
    });
  }
  for (auto& t : threads) t.join();
  phase.seconds = wall.seconds();
  std::vector<double> all;
  for (const auto& v : latency) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  phase.requests = all.size();
  if (!all.empty()) {
    // Shared nearest-rank helper: the old inline math here used
    // truncating indices (size/2, size*95/100) which over-reports the
    // rank on small N — e.g. p50 of 4 samples read element 3 of 4.
    phase.p50_us = support::percentile_sorted(all, 50.0);
    phase.p95_us = support::percentile_sorted(all, 95.0);
    phase.max_us = all.back();
  }
  return phase;
}

/// One warm batched row: `clients` threads each fire `rounds` calls to
/// get_plan_batch with a heterogeneous batch of `batch` problems
/// (round-robin over the signatures, so every batch mixes all of them).
/// Latencies are amortized per request (batch wall time / batch size) —
/// the figure a batching client actually experiences per answer.
struct BatchRow {
  std::size_t batch = 0;
  PhaseResult phase;
  std::size_t lookups = 0;      // registry lookups the phase performed
  double amortization = 0;      // requests per registry lookup
};

BatchRow run_batched_phase(serve::TuningService& service,
                           const std::vector<core::TuningProblem>& problems,
                           const vgpu::DeviceProfile& device,
                           std::size_t clients, std::size_t batch,
                           std::size_t rounds) {
  BatchRow row;
  row.batch = batch;
  // Pre-build the rotated batches OUTSIDE the timed region: assembling
  // the request vector is the client's job either way, and the
  // per-request path doesn't pay a problem copy per call either.
  std::vector<std::vector<core::TuningProblem>> rotations(problems.size());
  for (std::size_t rot = 0; rot < rotations.size(); ++rot) {
    rotations[rot].reserve(batch);
    for (std::size_t k = 0; k < batch; ++k) {
      rotations[rot].push_back(problems[(rot + k) % problems.size()]);
    }
  }

  const serve::ServeStats before = service.stats();
  std::vector<std::vector<double>> latency(clients);
  WallTimer wall;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      latency[c].reserve(rounds);
      for (std::size_t r = 0; r < rounds; ++r) {
        const auto& request = rotations[(c + r) % rotations.size()];
        WallTimer t;
        (void)service.get_plan_batch(request, device);
        latency[c].push_back(t.seconds() * 1e6 /
                             static_cast<double>(batch));
      }
    });
  }
  for (auto& t : threads) t.join();
  row.phase.seconds = wall.seconds();
  row.phase.requests = clients * rounds * batch;

  const serve::ServeStats after = service.stats();
  row.lookups = (after.registry_hits + after.registry_misses) -
                (before.registry_hits + before.registry_misses);
  row.amortization = row.lookups
                         ? static_cast<double>(row.phase.requests) /
                               static_cast<double>(row.lookups)
                         : 0.0;

  std::vector<double> all;
  for (const auto& v : latency) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  if (!all.empty()) {
    row.phase.p50_us = support::percentile_sorted(all, 50.0);
    row.phase.p95_us = support::percentile_sorted(all, 95.0);
    row.phase.max_us = all.back();
  }
  return row;
}

}  // namespace

int main() {
  bench::print_header(
      "Plan serving: cold vs warm registry, repeated signatures");
  std::vector<core::TuningProblem> problems = workload();
  auto device = vgpu::DeviceProfile::tesla_k20();

  core::TuneOptions tune = bench::paper_tune_options();
  tune.search.max_evaluations = 30;
  tune.max_pool = 256;

  struct Row {
    std::size_t clients;
    PhaseResult cold, warm;
    std::size_t tunes = 0;
    std::size_t retries = 0;
    std::size_t failures = 0;
    std::size_t breakers = 0;
    bool single_flight = false;
  };
  std::vector<Row> rows;

  for (std::size_t clients : kClientWidths) {
    Row row;
    row.clients = clients;
    serve::PlanRegistry registry;
    serve::ServeOptions options;
    options.tune = tune;
    serve::TuningService service(registry, options);

    row.cold = run_phase(service, problems, device, clients, 1);
    service.drain();  // all background tunes land before the warm phase
    row.warm =
        run_phase(service, problems, device, clients, kRequestsPerSignature);
    service.drain();

    serve::ServeStats stats = service.stats();
    row.tunes = stats.tunes_started;
    // Resilience counters: this harness injects no faults, so any
    // retry, tune failure, or open breaker is a real pipeline bug and
    // fails the gate below.
    row.retries = stats.retries;
    row.failures = stats.tune_failures;
    row.breakers = stats.breaker_open;
    // Single-flight gate: exactly one tune per distinct signature, no
    // matter how many clients raced on it.
    row.single_flight =
        stats.tunes_started == problems.size() && stats.rejected == 0;
    rows.push_back(row);
  }

  TextTable table({"clients", "cold req/s", "warm req/s", "speedup",
                   "warm p50 us", "warm p95 us", "tunes", "retries",
                   "single-flight"});
  bool all_pass = true;
  for (const Row& row : rows) {
    const double speedup = row.warm.throughput() / row.cold.throughput();
    const bool clean = row.retries == 0 && row.failures == 0 &&
                       row.breakers == 0;
    all_pass = all_pass && speedup >= 10.0 && row.single_flight && clean;
    table.add_row({std::to_string(row.clients),
                   TextTable::fixed(row.cold.throughput(), 0),
                   TextTable::fixed(row.warm.throughput(), 0),
                   TextTable::fixed(speedup, 1),
                   TextTable::fixed(row.warm.p50_us, 1),
                   TextTable::fixed(row.warm.p95_us, 1),
                   std::to_string(row.tunes),
                   std::to_string(row.retries),
                   row.single_flight ? "yes" : "NO — BUG"});
  }
  std::printf("%s", table.render().c_str());

  // Contention gates for the sharded lock-free warm path.  Full targets
  // (>= 1M aggregate req/s at 8 clients, scaling efficiency >= 0.5) are
  // pro-rated by the cores available: a 1-core CI box cannot scale 8
  // threads no matter how lock-free the path is, but a contended mutex
  // still collapses far below the pro-rated floor.
  const double hw = std::max<double>(
      1.0, static_cast<double>(std::thread::hardware_concurrency()));
  const double hw_scale = std::min(1.0, hw / 8.0);
  const double warm_at_1 = rows.front().warm.throughput();
  const double warm_at_max = rows.back().warm.throughput();
  const double scaling_efficiency =
      warm_at_max /
      (static_cast<double>(rows.back().clients) * std::max(warm_at_1, 1e-12));
  const double aggregate_target = 1e6 * hw_scale;
  const double efficiency_target = 0.5 * hw_scale;
  const bool aggregate_ok = warm_at_max >= aggregate_target;
  const bool efficiency_ok = scaling_efficiency >= efficiency_target;
  all_pass = all_pass && aggregate_ok && efficiency_ok;

  std::printf(
      "\nwarm aggregate @ %zu clients : %.0f req/s (target %.0f, %s)\n"
      "scaling efficiency          : %.3f (target %.3f, %s) "
      "[%zu cores detected]\n",
      rows.back().clients, warm_at_max, aggregate_target,
      aggregate_ok ? "pass" : "FAIL", scaling_efficiency, efficiency_target,
      efficiency_ok ? "pass" : "FAIL", static_cast<std::size_t>(hw));

  // Batched serving: the same warm workload submitted through
  // get_plan_batch in heterogeneous round-robin batches.  A batch pays
  // ONE signature canonicalization + registry lookup per distinct
  // signature it contains, so warm throughput must leave per-request
  // serving far behind — the gate pins >= 5x at batch 64.
  const std::size_t kBatchClients = 4;
  const std::size_t kBatchSizes[] = {4, 16, 64};
  serve::PlanRegistry batch_registry;
  serve::ServeOptions batch_options;
  batch_options.tune = tune;
  serve::TuningService batch_service(batch_registry, batch_options);
  (void)run_phase(batch_service, problems, device, kBatchClients, 1);
  batch_service.drain();  // warm + tuned before any batched row
  const PhaseResult per_request_warm = run_phase(
      batch_service, problems, device, kBatchClients, kRequestsPerSignature);
  std::vector<BatchRow> batch_rows;
  for (std::size_t batch : kBatchSizes) {
    // Same request volume per row (rounds scale inversely with batch
    // size), so every row's timing noise is comparable.
    const std::size_t rounds = std::max<std::size_t>(1, 3200 / batch);
    batch_rows.push_back(run_batched_phase(batch_service, problems, device,
                                           kBatchClients, batch, rounds));
  }

  TextTable batch_table({"batch", "warm req/s", "vs per-req", "p50 us/req",
                         "p95 us/req", "lookups", "amortization"});
  const double per_request_rate = per_request_warm.throughput();
  double batch64_speedup = 0;
  double batch64_amortization = 0;
  for (const BatchRow& row : batch_rows) {
    const double speedup =
        row.phase.throughput() / std::max(per_request_rate, 1e-12);
    if (row.batch == 64) {
      batch64_speedup = speedup;
      batch64_amortization = row.amortization;
    }
    batch_table.add_row({std::to_string(row.batch),
                         TextTable::fixed(row.phase.throughput(), 0),
                         TextTable::fixed(speedup, 1),
                         TextTable::fixed(row.phase.p50_us, 2),
                         TextTable::fixed(row.phase.p95_us, 2),
                         std::to_string(row.lookups),
                         TextTable::fixed(row.amortization, 1)});
  }
  std::printf("\nbatched warm serving (%zu clients, per-request warm "
              "baseline %.0f req/s):\n%s",
              kBatchClients, per_request_rate,
              batch_table.render().c_str());
  const bool batch_ok = batch64_speedup >= 5.0;
  std::printf("batch-64 speedup over per-request: %.1fx (target >= 5.0, "
              "%s)\n",
              batch64_speedup, batch_ok ? "pass" : "FAIL");
  all_pass = all_pass && batch_ok;

  // Adaptive re-tuning: the same signatures under SKEWED demand, served
  // by a deliberately starved first-tune budget (4 evaluations — the
  // quick cold tune a latency-sensitive service runs inline).  The
  // control service stops there; the adaptive service runs one
  // retune_pass() with a multiplied budget over its top-2 hottest
  // signatures.  Gates: the re-tuner targets EXACTLY the top-2 by
  // demand, every hot signature's final modeled latency is <= the
  // control's, and at least one is STRICTLY better (the whole point of
  // spending the bigger budget where the traffic is).
  const std::size_t kAdaptiveClients = 8;
  // Requests per client per signature rank: ~2.5x drop-off per rank, so
  // the hot set (ranks 0-1) is unambiguous at any thread interleaving.
  const std::size_t kSkew[] = {64, 16, 7, 4};
  // Larger extents than the throughput workload, hottest first: at
  // n <= 20 the decision algorithm's static default — always a search
  // candidate — is already modeled-optimal, so no budget could improve
  // on it and the strictly-better gate would be unsatisfiable.  From
  // n = 24 up the mapping space is rich enough that the starved search
  // leaves real headroom.
  std::vector<core::TuningProblem> adaptive_problems;
  for (int n : {32, 28, 24, 20}) {
    std::string dsl =
        "dim i j k l m n = " + std::to_string(n) +
        "\nV[i j k] = Sum([l m n], A[l k] * B[m j] * C[n i] * U[l m n])\n";
    adaptive_problems.push_back(
        core::TuningProblem::from_dsl(dsl, "eqn1_n" + std::to_string(n)));
  }
  core::TuneOptions starved = tune;
  starved.search.max_evaluations = 1;

  auto run_skewed = [&](serve::TuningService& service) {
    std::vector<std::thread> threads;
    threads.reserve(kAdaptiveClients);
    for (std::size_t c = 0; c < kAdaptiveClients; ++c) {
      threads.emplace_back([&] {
        for (std::size_t s = 0; s < adaptive_problems.size(); ++s) {
          for (std::size_t r = 0; r < kSkew[s]; ++r) {
            (void)service.get_plan(adaptive_problems[s], device);
          }
        }
      });
    }
    for (auto& t : threads) t.join();
  };

  serve::PlanRegistry control_registry;
  serve::ServeOptions control_options;
  control_options.tune = starved;
  serve::TuningService control_service(control_registry, control_options);
  run_skewed(control_service);
  control_service.drain();

  serve::PlanRegistry adaptive_registry;
  serve::ServeOptions adaptive_options;
  adaptive_options.tune = starved;
  adaptive_options.retune_budget = 256;
  adaptive_options.retune_top_k = 2;
  adaptive_options.hot_threshold = 1;
  serve::TuningService adaptive_service(adaptive_registry, adaptive_options);
  run_skewed(adaptive_service);
  adaptive_service.drain();  // cold tunes land; re-tuning needs them tuned
  std::vector<std::string> retuned = adaptive_service.retune_pass();
  adaptive_service.drain();

  struct AdaptiveRow {
    std::string signature;
    std::uint64_t requests = 0;
    double control_us = 0, adaptive_us = 0;
    bool retuned = false;
  };
  std::vector<AdaptiveRow> adaptive_rows;
  for (const core::TuningProblem& p : adaptive_problems) {
    AdaptiveRow row;
    serve::ServedPlan control_final = control_service.get_plan(p, device);
    serve::ServedPlan adaptive_final = adaptive_service.get_plan(p, device);
    row.signature = adaptive_final.signature;
    row.control_us = control_final.plan.modeled_us;
    row.adaptive_us = adaptive_final.plan.modeled_us;
    row.retuned = std::find(retuned.begin(), retuned.end(),
                            row.signature) != retuned.end();
    serve::DemandStats demand;
    if (adaptive_registry.demand(row.signature, &demand)) {
      row.requests = demand.requests;
    }
    adaptive_rows.push_back(row);
  }

  TextTable adaptive_table({"rank", "requests", "control us", "adaptive us",
                            "improvement", "re-tuned"});
  bool hot_targeting_ok = retuned.size() == 2;
  bool hot_no_worse = true;
  bool hot_strictly_better = false;
  for (std::size_t s = 0; s < adaptive_rows.size(); ++s) {
    const AdaptiveRow& row = adaptive_rows[s];
    const bool hot = s < 2;
    if (hot != row.retuned) hot_targeting_ok = false;
    if (hot) {
      if (row.adaptive_us > row.control_us) hot_no_worse = false;
      if (row.adaptive_us < row.control_us) hot_strictly_better = true;
    }
    adaptive_table.add_row(
        {std::to_string(s + 1), std::to_string(row.requests),
         TextTable::fixed(row.control_us, 1),
         TextTable::fixed(row.adaptive_us, 1),
         TextTable::fixed(
             100.0 * (row.control_us - row.adaptive_us) /
                 std::max(row.control_us, 1e-12),
             1) + "%",
         row.retuned ? "yes" : "no"});
  }
  const serve::ServeStats adaptive_stats = adaptive_service.snapshot();
  std::printf("\nadaptive re-tuning (%zu clients, %zu/%zu/%zu/%zu requests "
              "per client by rank, base budget %zu evals, re-tune budget "
              "%zu):\n%s",
              kAdaptiveClients, kSkew[0], kSkew[1], kSkew[2], kSkew[3],
              starved.search.max_evaluations, adaptive_options.retune_budget,
              adaptive_table.render().c_str());
  std::printf("re-tunes: %zu scheduled, %zu completed, %zu improved the "
              "served plan\n",
              adaptive_stats.retunes_scheduled,
              adaptive_stats.retunes_completed,
              adaptive_stats.retunes_improved);
  const bool adaptive_ok =
      hot_targeting_ok && hot_no_worse && hot_strictly_better;
  std::printf("adaptive gate: top-2 targeting %s, hot plans no worse %s, "
              ">= 1 strictly better %s\n",
              hot_targeting_ok ? "pass" : "FAIL",
              hot_no_worse ? "pass" : "FAIL",
              hot_strictly_better ? "pass" : "FAIL");
  all_pass = all_pass && adaptive_ok;

  // Distributed serving: an in-process PlanServer on a Unix socket
  // stands in for the fleet's L2 tier.  Node 1 tunes the workload and
  // publishes every plan to the server; then (a) raw remote warm
  // GET_PLAN throughput is measured over real socket round trips —
  // each frame paying encode + checksum + syscall + decode — and gated
  // at >= 0.1x the LOCAL warm rate (per_request_warm above, same 4
  // client threads), and (b) a second, completely fresh node against
  // the same server must reach its own warm-hit state with ZERO tunes
  // of its own: every first-sight signature is a remote hit cached
  // into L1, every later request a lock-free local hit.
  const char* kSockPath = "bench_serve_plan.sock";
  serve::PlanRegistry server_registry;
  serve::remote::PlanServer plan_server(server_registry);
  plan_server.listen_unix(kSockPath);
  plan_server.start();
  const net::Endpoint server_ep =
      net::parse_endpoint(std::string("unix:") + kSockPath);
  auto make_remote = [&] {
    return std::make_shared<serve::remote::RemoteRegistry>(server_ep);
  };

  const std::size_t kRemoteClients = 4;
  serve::PlanRegistry node1_registry;
  serve::ServeOptions node1_options;
  node1_options.tune = tune;
  node1_options.remote = make_remote();
  serve::TuningService node1(node1_registry, node1_options);
  (void)run_phase(node1, problems, device, kRemoteClients, 1);
  node1.drain();  // tunes land and publish to the server
  const bool node1_synced = node1.anti_entropy_pass();
  const serve::ServeStats node1_stats = node1.stats();

  std::vector<std::string> signatures;
  signatures.reserve(problems.size());
  for (const core::TuningProblem& p : problems) {
    signatures.push_back(node1.get_plan(p, device).signature);
  }

  const std::size_t kGetsPerClient = 2000;
  std::atomic<std::size_t> remote_get_misses{0};
  PhaseResult remote_warm;
  {
    WallTimer wall;
    std::vector<std::thread> threads;
    threads.reserve(kRemoteClients);
    for (std::size_t c = 0; c < kRemoteClients; ++c) {
      threads.emplace_back([&] {
        // One connection per client thread, like real front-ends.
        serve::remote::RemoteRegistry link(server_ep);
        serve::PlanEntry entry;
        for (std::size_t r = 0; r < kGetsPerClient; ++r) {
          if (link.fetch(signatures[r % signatures.size()], &entry) !=
              serve::RemoteStatus::kHit) {
            remote_get_misses.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    remote_warm.seconds = wall.seconds();
    remote_warm.requests = kRemoteClients * kGetsPerClient;
  }
  const double remote_rate = remote_warm.throughput();
  const double remote_ratio =
      remote_rate / std::max(per_request_rate, 1e-12);
  const bool remote_rate_ok =
      remote_ratio >= 0.1 && remote_get_misses.load() == 0;

  serve::PlanRegistry node2_registry;
  serve::ServeOptions node2_options;
  node2_options.tune = tune;
  node2_options.remote = make_remote();
  serve::TuningService node2(node2_registry, node2_options);
  // First sight of every signature: local miss -> remote hit (single
  // thread, so the count is exact), then the usual warm workload runs
  // entirely on L1.
  (void)run_phase(node2, problems, device, 1, 1);
  const PhaseResult node2_warm = run_phase(node2, problems, device,
                                           kRemoteClients,
                                           kRequestsPerSignature);
  node2.drain();
  const serve::ServeStats node2_stats = node2.stats();
  const bool node2_ok = node2_stats.tunes_started == 0 &&
                        node2_stats.remote_hits == problems.size() &&
                        node2_stats.remote_misses == 0 &&
                        node2_stats.remote_errors == 0;

  const serve::remote::PlanServerStats server_stats = plan_server.stats();
  plan_server.stop();

  TextTable dist_table({"metric", "value"});
  dist_table.add_row({"remote warm GET req/s", TextTable::fixed(remote_rate, 0)});
  dist_table.add_row({"local warm req/s", TextTable::fixed(per_request_rate, 0)});
  dist_table.add_row({"remote/local ratio", TextTable::fixed(remote_ratio, 3)});
  dist_table.add_row({"remote GET misses", std::to_string(remote_get_misses.load())});
  dist_table.add_row({"node1 publishes", std::to_string(node1_stats.remote_publishes)});
  dist_table.add_row({"node1 anti-entropy rounds", std::to_string(node1_stats.anti_entropy_rounds)});
  dist_table.add_row({"node2 remote hits", std::to_string(node2_stats.remote_hits)});
  dist_table.add_row({"node2 tunes started", std::to_string(node2_stats.tunes_started)});
  dist_table.add_row({"node2 warm req/s", TextTable::fixed(node2_warm.throughput(), 0)});
  dist_table.add_row({"server requests", std::to_string(server_stats.requests)});
  std::printf("\ndistributed serving (PlanServer over %s, %zu remote "
              "clients):\n%s",
              kSockPath, kRemoteClients, dist_table.render().c_str());
  const bool distributed_ok = remote_rate_ok && node2_ok && node1_synced;
  std::printf("distributed gate: remote warm >= 0.1x local %s, fresh node "
              "warms with zero own tunes %s, anti-entropy round %s\n",
              remote_rate_ok ? "pass" : "FAIL", node2_ok ? "pass" : "FAIL",
              node1_synced ? "pass" : "FAIL");
  all_pass = all_pass && distributed_ok;

  // Replicated fleet: the same warm GET workload against a TWO-replica
  // fleet, then with the PRIMARY stopped.  Losing a replica costs one
  // transport failure plus breaker-bounded skips, never correctness —
  // the gate pins the one-down warm rate at >= 0.5x the two-replica
  // rate (every surviving request pays the cheap open-breaker check on
  // the dead endpoint, nothing pays a reconnect within the cooldown).
  // A hedged link with a deliberately absurd threshold (1 us) then
  // forces the hedge path on effectively every read: correctness must
  // hold (zero misses) while the hedge counters light up.
  const char* kFleetSockA = "bench_serve_fleet_a.sock";
  const char* kFleetSockB = "bench_serve_fleet_b.sock";
  serve::PlanRegistry fleet_a_registry;
  serve::PlanRegistry fleet_b_registry;
  fleet_a_registry.merge_text(server_registry.to_text(), "<seed>");
  fleet_b_registry.merge_text(server_registry.to_text(), "<seed>");
  auto fleet_server_a = std::make_unique<serve::remote::PlanServer>(
      fleet_a_registry);
  fleet_server_a->listen_unix(kFleetSockA);
  fleet_server_a->start();
  serve::remote::PlanServer fleet_server_b(fleet_b_registry);
  fleet_server_b.listen_unix(kFleetSockB);
  fleet_server_b.start();
  const std::vector<net::Endpoint> fleet_eps = {
      net::parse_endpoint(std::string("unix:") + kFleetSockA),
      net::parse_endpoint(std::string("unix:") + kFleetSockB)};

  const std::size_t kFleetGets = 3000;
  serve::remote::RemoteRegistryOptions fleet_options;
  // Longer than either measured phase: the dead primary is probed once
  // and then skipped for the rest of the one-down measurement.
  fleet_options.reconnect_cooldown = 30.0;
  serve::remote::RemoteRegistry fleet_link(fleet_eps, fleet_options);
  std::size_t fleet_misses = 0;
  auto run_fleet_gets = [&](serve::remote::RemoteRegistry& link,
                            std::size_t count) {
    PhaseResult phase;
    WallTimer wall;
    serve::PlanEntry entry;
    for (std::size_t r = 0; r < count; ++r) {
      if (link.fetch(signatures[r % signatures.size()], &entry) !=
          serve::RemoteStatus::kHit) {
        ++fleet_misses;
      }
    }
    phase.seconds = wall.seconds();
    phase.requests = count;
    return phase;
  };
  const PhaseResult fleet_two_up = run_fleet_gets(fleet_link, kFleetGets);

  // Hedged reads while both replicas are alive: the 1 us threshold
  // loses to any real round trip, so essentially every read hedges.
  serve::remote::RemoteRegistryOptions hedge_options;
  hedge_options.hedge_threshold = 1e-6;
  hedge_options.timeout = 5.0;
  const std::size_t kHedgeGets = 500;
  serve::remote::RemoteRegistry hedge_link(fleet_eps, hedge_options);
  const PhaseResult hedged = run_fleet_gets(hedge_link, kHedgeGets);
  const serve::RemoteTelemetry hedge_telemetry = hedge_link.telemetry();

  // Stop the PRIMARY and measure again on the same link: the first
  // fetch pays the transport failure and opens the breaker (run before
  // the timed region — that cost is the detection, not the steady
  // state the gate pins).
  fleet_server_a.reset();
  {
    serve::PlanEntry entry;
    (void)fleet_link.fetch(signatures[0], &entry);
  }
  const PhaseResult fleet_one_down = run_fleet_gets(fleet_link, kFleetGets);
  const serve::remote::RemoteRegistryStats fleet_stats = fleet_link.stats();
  fleet_server_b.stop();

  const double failover_ratio = fleet_one_down.throughput() /
                                std::max(fleet_two_up.throughput(), 1e-12);
  const bool failover_ok = failover_ratio >= 0.5 && fleet_misses == 0;
  const bool hedge_ok = hedge_telemetry.hedges > 0;
  TextTable fleet_table({"metric", "value"});
  fleet_table.add_row({"two-replica warm GET req/s",
                       TextTable::fixed(fleet_two_up.throughput(), 0)});
  fleet_table.add_row({"one-down warm GET req/s",
                       TextTable::fixed(fleet_one_down.throughput(), 0)});
  fleet_table.add_row({"one-down / two-replica",
                       TextTable::fixed(failover_ratio, 3)});
  fleet_table.add_row({"failovers", std::to_string(fleet_stats.failovers)});
  fleet_table.add_row({"hedged GET req/s",
                       TextTable::fixed(hedged.throughput(), 0)});
  fleet_table.add_row({"hedges", std::to_string(hedge_telemetry.hedges)});
  fleet_table.add_row({"hedge wins",
                       std::to_string(hedge_telemetry.hedge_wins)});
  fleet_table.add_row({"fleet GET misses", std::to_string(fleet_misses)});
  std::printf("\nreplicated fleet (2 plan servers, primary stopped "
              "mid-benchmark):\n%s",
              fleet_table.render().c_str());
  std::printf("fleet gate: one-down warm >= 0.5x two-replica %s, zero "
              "misses %s, hedges observed %s\n",
              failover_ratio >= 0.5 ? "pass" : "FAIL",
              fleet_misses == 0 ? "pass" : "FAIL",
              hedge_ok ? "pass" : "FAIL");
  all_pass = all_pass && failover_ok && hedge_ok;

  std::printf(
      "\nGate: warm-registry throughput >= 10x cold on the repeated-\n"
      "signature workload, tune count == distinct signatures (%zu) at\n"
      "every client width, zero retries/failures/open breakers (nothing\n"
      "injects faults here, so any retry is a pipeline bug), the\n"
      "core-scaled aggregate-throughput / scaling-efficiency targets\n"
      "above (full targets: 1M req/s aggregate, 0.5 efficiency),\n"
      "batched warm throughput >= 5x per-request warm at batch 64, the\n"
      "adaptive re-tuner targeting exactly the top-2 hot signatures\n"
      "with every hot plan no worse and at least one strictly better\n"
      "than the no-retune control, and the distributed tier serving\n"
      "remote warm GETs at >= 0.1x the local warm rate with a fresh\n"
      "node warming from the shared server without a single tune of\n"
      "its own, plus the replicated-fleet gates: one-down warm GETs at\n"
      ">= 0.5x the two-replica rate with zero misses, and hedged reads\n"
      "staying correct under a threshold that forces the hedge path.\n",
      problems.size());

  const char* json_path = "BENCH_serve.json";
  std::ofstream out(json_path);
  char head[256];
  std::snprintf(head, sizeof(head),
                "{\n  \"distinct_signatures\": %zu,\n"
                "  \"requests_per_signature\": %zu,\n"
                "  \"hardware_concurrency\": %zu,\n"
                "  \"scaling_efficiency\": %.4f,\n"
                "  \"batch64_speedup\": %.2f,\n"
                "  \"amortization_factor\": %.2f,\n"
                "  \"rows\": [\n",
                problems.size(), kRequestsPerSignature,
                static_cast<std::size_t>(hw), scaling_efficiency,
                batch64_speedup, batch64_amortization);
  out << head;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"clients\": %zu, \"cold_req_per_s\": %.1f, "
        "\"warm_req_per_s\": %.1f, \"speedup\": %.2f, "
        "\"cold_p95_us\": %.2f, \"warm_p50_us\": %.2f, "
        "\"warm_p95_us\": %.2f, \"tunes\": %zu, "
        "\"retries\": %zu, \"tune_failures\": %zu, "
        "\"breakers_open\": %zu, \"single_flight\": %s}%s\n",
        row.clients, row.cold.throughput(), row.warm.throughput(),
        row.warm.throughput() / row.cold.throughput(), row.cold.p95_us,
        row.warm.p50_us, row.warm.p95_us, row.tunes, row.retries,
        row.failures, row.breakers,
        row.single_flight ? "true" : "false",
        i + 1 < rows.size() ? "," : "");
    out << buf;
  }
  out << "  ],\n  \"batched\": [\n";
  for (std::size_t i = 0; i < batch_rows.size(); ++i) {
    const BatchRow& row = batch_rows[i];
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"batch\": %zu, \"clients\": %zu, \"req_per_s\": %.1f, "
        "\"speedup_vs_per_request\": %.2f, \"p50_us_per_req\": %.3f, "
        "\"p95_us_per_req\": %.3f, \"registry_lookups\": %zu, "
        "\"amortization_factor\": %.2f}%s\n",
        row.batch, kBatchClients, row.phase.throughput(),
        row.phase.throughput() / std::max(per_request_rate, 1e-12),
        row.phase.p50_us, row.phase.p95_us, row.lookups, row.amortization,
        i + 1 < batch_rows.size() ? "," : "");
    out << buf;
  }
  out << "  ],\n  \"adaptive\": [\n";
  for (std::size_t i = 0; i < adaptive_rows.size(); ++i) {
    const AdaptiveRow& row = adaptive_rows[i];
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"rank\": %zu, \"requests\": %llu, \"control_us\": %.3f, "
        "\"adaptive_us\": %.3f, \"retuned\": %s}%s\n",
        i + 1, static_cast<unsigned long long>(row.requests),
        row.control_us, row.adaptive_us, row.retuned ? "true" : "false",
        i + 1 < adaptive_rows.size() ? "," : "");
    out << buf;
  }
  char adaptive_tail[256];
  std::snprintf(adaptive_tail, sizeof(adaptive_tail),
                "  ],\n  \"retunes_scheduled\": %zu,\n"
                "  \"retunes_completed\": %zu,\n"
                "  \"retunes_improved\": %zu,\n",
                adaptive_stats.retunes_scheduled,
                adaptive_stats.retunes_completed,
                adaptive_stats.retunes_improved);
  out << adaptive_tail;
  char dist_buf[768];
  std::snprintf(
      dist_buf, sizeof(dist_buf),
      "  \"distributed\": {\n"
      "    \"remote_clients\": %zu,\n"
      "    \"remote_warm_get_per_s\": %.1f,\n"
      "    \"local_warm_req_per_s\": %.1f,\n"
      "    \"remote_to_local_ratio\": %.4f,\n"
      "    \"remote_get_misses\": %zu,\n"
      "    \"node1_remote_publishes\": %zu,\n"
      "    \"node1_remote_misses\": %zu,\n"
      "    \"node1_anti_entropy_rounds\": %zu,\n"
      "    \"node2_remote_hits\": %zu,\n"
      "    \"node2_remote_misses\": %zu,\n"
      "    \"node2_remote_errors\": %zu,\n"
      "    \"node2_tunes_started\": %zu,\n"
      "    \"node2_warm_req_per_s\": %.1f,\n"
      "    \"server_requests\": %zu\n"
      "  },\n",
      kRemoteClients, remote_rate, per_request_rate, remote_ratio,
      remote_get_misses.load(), node1_stats.remote_publishes,
      node1_stats.remote_misses, node1_stats.anti_entropy_rounds,
      node2_stats.remote_hits, node2_stats.remote_misses,
      node2_stats.remote_errors, node2_stats.tunes_started,
      node2_warm.throughput(), server_stats.requests);
  out << dist_buf;
  char fleet_buf[768];
  std::snprintf(
      fleet_buf, sizeof(fleet_buf),
      "  \"failover\": {\n"
      "    \"replicas\": 2,\n"
      "    \"two_up_warm_get_per_s\": %.1f,\n"
      "    \"one_down_warm_get_per_s\": %.1f,\n"
      "    \"one_down_to_two_up_ratio\": %.4f,\n"
      "    \"failovers\": %zu,\n"
      "    \"dead_endpoint_unavailable\": %zu,\n"
      "    \"fleet_get_misses\": %zu\n"
      "  },\n"
      "  \"hedge\": {\n"
      "    \"threshold_s\": %.0e,\n"
      "    \"hedged_get_per_s\": %.1f,\n"
      "    \"hedges\": %zu,\n"
      "    \"hedge_wins\": %zu\n"
      "  }\n}\n",
      fleet_two_up.throughput(), fleet_one_down.throughput(), failover_ratio,
      fleet_stats.failovers,
      fleet_stats.endpoints.empty() ? 0 : fleet_stats.endpoints[0].unavailable,
      fleet_misses, hedge_options.hedge_threshold, hedged.throughput(),
      hedge_telemetry.hedges, hedge_telemetry.hedge_wins);
  out << fleet_buf;
  out.close();
  std::printf("raw rows written to %s\n", json_path);
  return all_pass ? 0 : 1;
}
