// Size specialization (Section III): tune the Nekbone derivative
// contraction across the spectral order range p = 8..16 and show how the
// winning mapping and unroll factor track the size — the reason the DSL
// accepts dimension ranges.
#include <sstream>

#include "bench_common.hpp"

#include "octopi/parser.hpp"

using namespace barracuda;

int main() {
  bench::print_header(
      "Size specialization: Lg3 direction kernel across p = 8..16");

  octopi::OctopiProgram program = octopi::parse_octopi(R"(
dim e = 512
dim i j k l = 8..16
UR[e i j k] += D[i l] * U[e l j k]
)");

  auto device = vgpu::DeviceProfile::gtx980();
  core::TuneOptions options = bench::paper_tune_options();
  options.search.max_evaluations = 60;
  // The 9 per-size tune() calls are independent; BARRACUDA_JOBS=N farms
  // them across the shared pool, and BARRACUDA_CACHE=path persists the
  // measurement table across runs.
  options.search.n_jobs = static_cast<int>(bench::jobs());
  core::EvalCache cache;
  bench::PersistentCache persist(cache);
  options.eval_cache = &cache;

  auto specs = core::tune_specializations(program, device, options);
  TextTable table({"p", "GFlop/s", "Kernel us", "Best mapping"});
  for (const auto& spec : specs) {
    table.add_row({std::to_string(spec.extents.at("i")),
                   TextTable::gflops(spec.result.modeled_gflops()),
                   TextTable::fixed(spec.result.best_timing.kernel_us, 1),
                   spec.result.best_recipe[0].to_string()});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nShape target: the tuned decomposition and unroll factor change\n"
      "with the polynomial order — one fixed mapping cannot serve the\n"
      "whole range, which is why the DSL takes dimension ranges.\n");
  return 0;
}
