// Future-work experiment (Section VIII): "further prune the autotuning
// search space once we develop a better understanding of where pruning
// does not impact quality of results".  Measures, at a fixed SURF budget,
// how much space-size reduction different pruning rules buy and what they
// cost in result quality.
#include "bench_common.hpp"

using namespace barracuda;

int main() {
  bench::print_header(
      "Future work: search-space pruning (Section VIII)");

  struct Rule {
    const char* name;
    bool permute;
    int max_unroll;
  };
  const Rule rules[] = {
      {"full space", true, 10},
      {"no seq permutation", false, 10},
      {"unroll <= 4", true, 4},
      {"both prunes", false, 4},
  };

  auto device = vgpu::DeviceProfile::gtx980();
  for (const auto& benchmark :
       {benchsuite::lg3t(512, 12), benchsuite::nwchem_d2(1)}) {
    std::printf("\n--- %s ---\n", benchmark.name.c_str());
    TextTable table({"Pruning rule", "Space size", "Tuned kernel (us)",
                     "Quality vs full"});
    double full_us = 0;
    for (const auto& rule : rules) {
      double total_us = 0;
      std::int64_t space = 0;
      const int seeds = 3;
      for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
        core::TuneOptions opt = bench::paper_tune_options(seed);
        opt.search.max_evaluations = 60;
        opt.decision.permute_sequential = rule.permute;
        opt.decision.max_unroll = rule.max_unroll;
        core::TuneResult r = core::tune(benchmark.problem, device, opt);
        total_us += r.best_timing.kernel_us;
        space = r.joint_space_size;
      }
      double mean_us = total_us / seeds;
      if (rule.permute && rule.max_unroll == 10) full_us = mean_us;
      table.add_row({rule.name, std::to_string(space),
                     TextTable::fixed(mean_us, 1),
                     TextTable::fixed(full_us / mean_us * 100.0, 1) + "%"});
    }
    std::printf("%s", table.render().c_str());
  }
  std::printf(
      "\nShape target: pruning shrinks the space by orders of magnitude\n"
      "while quality stays near 100%% — the premise of the paper's\n"
      "future-work direction.\n");
  return 0;
}
