// Google-benchmark microbenchmarks of the framework components: how fast
// is the pipeline itself (enumeration, space derivation, lowering,
// modeling, surrogate fitting, functional execution)?  These bound the
// autotuning throughput reported by the table harnesses.
#include <benchmark/benchmark.h>

#include "benchsuite/workloads.hpp"
#include "chill/lower.hpp"
#include "surf/extratrees.hpp"
#include "surf/features.hpp"
#include "vgpu/executor.hpp"
#include "vgpu/perfmodel.hpp"

using namespace barracuda;

namespace {

core::TuningProblem eqn1_problem() { return benchsuite::eqn1().problem; }

void BM_OctopiEnumerateEqn1(benchmark::State& state) {
  core::TuningProblem p = eqn1_problem();
  for (auto _ : state) {
    auto programs = core::enumerate_programs(p);
    benchmark::DoNotOptimize(programs.size());
  }
}
BENCHMARK(BM_OctopiEnumerateEqn1);

void BM_DeriveSpaceAndEnumerateConfigs(benchmark::State& state) {
  tcr::TcrProgram program =
      core::enumerate_programs(eqn1_problem()).front();
  auto nests = tcr::build_loop_nests(program);
  for (auto _ : state) {
    std::size_t total = 0;
    for (const auto& nest : nests) {
      total += tcr::enumerate_configs(nest, tcr::derive_space(nest)).size();
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_DeriveSpaceAndEnumerateConfigs);

void BM_LowerAndModelPlan(benchmark::State& state) {
  tcr::TcrProgram program =
      core::enumerate_programs(benchsuite::lg3(512, 12).problem).front();
  chill::Recipe recipe = chill::openacc_optimized_recipe(program);
  auto device = vgpu::DeviceProfile::gtx980();
  for (auto _ : state) {
    chill::GpuPlan plan = chill::lower_program(program, recipe);
    benchmark::DoNotOptimize(vgpu::model_plan(plan, device).total_us);
  }
}
BENCHMARK(BM_LowerAndModelPlan);

void BM_CudaSourceEmission(benchmark::State& state) {
  tcr::TcrProgram program =
      core::enumerate_programs(eqn1_problem()).front();
  chill::GpuPlan plan = chill::lower_program(
      program, chill::openacc_optimized_recipe(program));
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan.cuda_source().size());
  }
}
BENCHMARK(BM_CudaSourceEmission);

void BM_FunctionalExecutorEqn1(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  core::TuningProblem p = core::TuningProblem::from_dsl(
      "dim i j k l m n = " + std::to_string(n) +
          "\nV[i j k] = Sum([l m n], A[l k] * B[m j] * C[n i] * U[l m n])\n",
      "ex");
  tcr::TcrProgram program = core::enumerate_programs(p).front();
  chill::GpuPlan plan = chill::lower_program(
      program, chill::openacc_optimized_recipe(program));
  Rng rng(1);
  tensor::TensorEnv env;
  env.emplace("A", tensor::Tensor::random({n, n}, rng));
  env.emplace("B", tensor::Tensor::random({n, n}, rng));
  env.emplace("C", tensor::Tensor::random({n, n}, rng));
  env.emplace("U", tensor::Tensor::random({n, n, n}, rng));
  env.emplace("V", tensor::Tensor::zeros({n, n, n}));
  for (auto _ : state) {
    tensor::TensorEnv copy = env;
    vgpu::execute_plan(plan, copy);
    benchmark::DoNotOptimize(copy.at("V").flat(0));
  }
  state.SetItemsProcessed(state.iterations() * program.flops());
}
BENCHMARK(BM_FunctionalExecutorEqn1)->Arg(6)->Arg(10);

void BM_ReferenceEinsumEqn1(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  core::TuningProblem p = core::TuningProblem::from_dsl(
      "dim i j k l m n = " + std::to_string(n) +
          "\nV[i j k] = Sum([l m n], A[l k] * B[m j] * C[n i] * U[l m n])\n",
      "ex");
  Rng rng(1);
  tensor::TensorEnv env;
  env.emplace("A", tensor::Tensor::random({n, n}, rng));
  env.emplace("B", tensor::Tensor::random({n, n}, rng));
  env.emplace("C", tensor::Tensor::random({n, n}, rng));
  env.emplace("U", tensor::Tensor::random({n, n, n}, rng));
  for (auto _ : state) {
    tensor::TensorEnv copy = env;
    tensor::evaluate(p.statements[0], p.extents, copy);
    benchmark::DoNotOptimize(copy.at("V").flat(0));
  }
}
BENCHMARK(BM_ReferenceEinsumEqn1)->Arg(6)->Arg(10);

void BM_ExtraTreesFit(benchmark::State& state) {
  const std::size_t samples = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  std::vector<std::vector<double>> X;
  std::vector<double> y;
  for (std::size_t i = 0; i < samples; ++i) {
    std::vector<double> row(40);
    for (auto& v : row) v = rng.uniform();
    y.push_back(10 * row[0] + row[1]);
    X.push_back(std::move(row));
  }
  for (auto _ : state) {
    surf::ExtraTreesRegressor model;
    model.fit(X, y);
    benchmark::DoNotOptimize(model.predict(X[0]));
  }
}
BENCHMARK(BM_ExtraTreesFit)->Arg(50)->Arg(100);

void BM_SurfSearchOnModel(benchmark::State& state) {
  core::TuningProblem p = benchsuite::lg3(128, 12).problem;
  auto device = vgpu::DeviceProfile::gtx980();
  for (auto _ : state) {
    core::TuneOptions opt;
    opt.search.max_evaluations = 40;
    opt.max_pool = 500;
    benchmark::DoNotOptimize(
        core::tune(p, device, opt).best_timing.total_us);
  }
}
BENCHMARK(BM_SurfSearchOnModel);

}  // namespace

BENCHMARK_MAIN();
