// Reproduces Table III: Nekbone performance comparison, OpenACC vs
// Barracuda, on the Tesla K20 and Tesla C2050 (GFlop/s).
#include "bench_common.hpp"

using namespace barracuda;

int main() {
  bench::print_header(
      "Table III: Nekbone performance comparison, OpenACC vs Barracuda");

  benchsuite::NekboneConfig config;
  config.elements = 512;
  config.p = 12;
  config.cg_iterations = 100;

  TextTable table(
      {"Device", "OpenACC Naive", "OpenACC Optimized", "Barracuda"});
  for (const auto& device :
       {vgpu::DeviceProfile::tesla_k20(), vgpu::DeviceProfile::tesla_c2050()}) {
    benchsuite::NekboneModel naive =
        benchsuite::model_nekbone_openacc(config, device, false);
    benchsuite::NekboneModel optimized =
        benchsuite::model_nekbone_openacc(config, device, true);
    benchsuite::NekboneModel tuned = benchsuite::model_nekbone_barracuda(
        config, device, bench::paper_tune_options());
    table.add_row({device.name, TextTable::gflops(naive.gflops),
                   TextTable::gflops(optimized.gflops),
                   TextTable::gflops(tuned.gflops)});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nPaper (Table III): K20 2.86 / 12.39 / 36.47; C2050 1.18 / 19.21 /\n"
      "34.65 GFlop/s.  Shape targets: naive << optimized < Barracuda, with\n"
      "Barracuda in the tens of GFlop/s on both devices.\n");
  return 0;
}
