// Future-work experiment (Section VIII): "jointly optimizing lgrad3,
// lgrad3t and adjacent code".  Compares tuning Lg3 and Lg3t as separate
// problems (each plan transfers its fields) against tuning the combined
// six-statement problem, where the gradient fields UR/US/UT remain
// device-resident between the two phases.
#include <sstream>

#include "bench_common.hpp"

using namespace barracuda;

namespace {

core::TuningProblem joint_problem(std::int64_t elements, std::int64_t p) {
  std::ostringstream dsl;
  dsl << "dim e = " << elements << "\n"
      << "dim i j k l = " << p << "\n"
      << "UR[e i j k] += D[i l] * U[e l j k]\n"
      << "US[e i j k] += D[j l] * U[e i l k]\n"
      << "UT[e i j k] += D[k l] * U[e i j l]\n"
      << "W[e i j k] += D[l i] * UR[e l j k]\n"
      << "W[e i j k] += D[l j] * US[e i l k]\n"
      << "W[e i j k] += D[l k] * UT[e i j l]\n";
  return core::TuningProblem::from_dsl(dsl.str(), "lgrad_joint");
}

}  // namespace

int main() {
  bench::print_header(
      "Future work: joint tuning of lgrad3 + lgrad3t (Section VIII)");

  const std::int64_t elements = 512, p = 12;
  auto device = vgpu::DeviceProfile::tesla_k20();

  // Separate: two problems, two plans, two rounds of transfers.
  core::TuneResult g3 = core::tune(benchsuite::lg3(elements, p).problem,
                                   device, bench::paper_tune_options());
  core::TuneResult g3t = core::tune(benchsuite::lg3t(elements, p).problem,
                                    device, bench::paper_tune_options(2));
  double separate_us = g3.best_timing.total_us + g3t.best_timing.total_us;

  // Joint: one six-kernel plan; UR/US/UT never cross PCIe.
  core::TuneOptions joint_opt = bench::paper_tune_options(3);
  joint_opt.search.max_evaluations = 200;  // same total budget as 2 x 100
  core::TuneResult joint = core::tune(joint_problem(elements, p), device,
                                      joint_opt);

  std::printf("separate tuning : %10.1f us total (%.2f + %.2f GFlop/s)\n",
              separate_us, g3.modeled_gflops(), g3t.modeled_gflops());
  std::printf("joint tuning    : %10.1f us total (%.2f GFlop/s)\n",
              joint.best_timing.total_us, joint.modeled_gflops());
  std::printf("joint transfers : h2d %.1f us, d2h %.1f us "
              "(separate: %.1f us, %.1f us)\n",
              joint.best_timing.h2d_us, joint.best_timing.d2h_us,
              g3.best_timing.h2d_us + g3t.best_timing.h2d_us,
              g3.best_timing.d2h_us + g3t.best_timing.d2h_us);
  std::printf("end-to-end gain : %.2fx\n",
              separate_us / joint.best_timing.total_us);
  std::printf(
      "\nShape target: the joint plan wins because the three gradient\n"
      "fields (3 x %lld doubles) stay on the device instead of crossing\n"
      "PCIe twice.\n",
      static_cast<long long>(elements * p * p * p));
  return 0;
}
