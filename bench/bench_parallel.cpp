// Pipeline parallelism scaling: wall-clock for the three parallelized
// layers — ExtraTrees fit/predict, Evaluate_Parallel batch evaluation,
// and whole tune() calls — at n_jobs in {1, 2, 4, 8}, with bit-identity
// checks against the sequential run at every width.  Emits the raw
// numbers to BENCH_parallel.json for plotting/regression tracking.
//
// Note: real speedups require real cores; on a single-core host the
// CPU-bound fit/tune sections show ~1x while the sleep-latency
// Evaluate_Parallel section still overlaps its waits.
#include <chrono>
#include <cmath>
#include <fstream>
#include <thread>

#include "bench_common.hpp"
#include "support/timer.hpp"
#include "surf/extratrees.hpp"

using namespace barracuda;

namespace {

constexpr int kJobs[] = {1, 2, 4, 8};
constexpr std::size_t kWidths = sizeof(kJobs) / sizeof(kJobs[0]);

std::string json_bool(bool b) { return b ? "true" : "false"; }

}  // namespace

int main() {
  bench::print_header("Pipeline parallelism: wall clock vs n_jobs");
  std::printf("hardware concurrency: %u\n",
              std::thread::hardware_concurrency());

  // --- ExtraTrees fit/predict: 30 trees on 500 samples x 8 features.
  constexpr std::size_t kSamples = 500, kDim = 8, kQueries = 200;
  Rng rng(42);
  std::vector<std::vector<double>> X(kSamples, std::vector<double>(kDim));
  std::vector<double> y(kSamples);
  for (std::size_t i = 0; i < kSamples; ++i) {
    for (std::size_t d = 0; d < kDim; ++d) X[i][d] = rng.uniform(-1, 1);
    y[i] = X[i][0] * X[i][1] + std::sin(3 * X[i][2]) + 0.1 * X[i][3];
  }
  std::vector<std::vector<double>> Q(X.begin(), X.begin() + kQueries);

  double fit_s[kWidths], predict_s[kWidths];
  bool fit_identical[kWidths], imp_identical[kWidths];
  std::vector<double> ref_pred, ref_imp;
  for (std::size_t j = 0; j < kWidths; ++j) {
    surf::ExtraTreesOptions opt;
    opt.n_trees = 30;
    opt.seed = 7;
    opt.n_jobs = kJobs[j];
    surf::ExtraTreesRegressor forest(opt);
    WallTimer timer;
    forest.fit(X, y);
    fit_s[j] = timer.seconds();
    timer.reset();
    std::vector<double> pred = forest.predict_batch(Q);
    predict_s[j] = timer.seconds();
    std::vector<double> imp = forest.feature_importances();
    if (j == 0) {
      ref_pred = pred;
      ref_imp = imp;
    }
    fit_identical[j] = pred == ref_pred;
    imp_identical[j] = imp == ref_imp;
  }

  // --- Evaluate_Parallel: 16 candidates, 5 ms emulated measurement
  // latency each (the paper quotes ~4 s per real evaluation).
  constexpr std::size_t kBatch = 16;
  surf::Objective timed = [](std::size_t i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    return static_cast<double>(i);
  };
  std::vector<std::size_t> batch(kBatch);
  for (std::size_t i = 0; i < kBatch; ++i) batch[i] = i;
  double eval_s[kWidths];
  for (std::size_t j = 0; j < kWidths; ++j) {
    surf::BatchEvaluator evaluate(timed, kJobs[j]);
    WallTimer timer;
    evaluate(batch);
    eval_s[j] = timer.seconds();
  }

  // --- Whole tune() calls: one SURF run per width, same seed; the best
  // value must not depend on the width.
  core::TuningProblem problem = benchsuite::lg3(128, 10).problem;
  auto device = vgpu::DeviceProfile::tesla_k20();
  double tune_s[kWidths], tune_best[kWidths];
  for (std::size_t j = 0; j < kWidths; ++j) {
    core::TuneOptions opt = bench::paper_tune_options();
    opt.search.max_evaluations = 60;
    opt.search.n_jobs = kJobs[j];
    WallTimer timer;
    core::TuneResult r = core::tune(problem, device, opt);
    tune_s[j] = timer.seconds();
    tune_best[j] = r.best_timing.total_us;
  }

  TextTable table({"n_jobs", "fit ms", "predict ms", "evaluate ms",
                   "tune ms", "bit-identical"});
  for (std::size_t j = 0; j < kWidths; ++j) {
    bool identical = fit_identical[j] && imp_identical[j] &&
                     tune_best[j] == tune_best[0];
    table.add_row({std::to_string(kJobs[j]),
                   TextTable::fixed(fit_s[j] * 1e3, 1),
                   TextTable::fixed(predict_s[j] * 1e3, 1),
                   TextTable::fixed(eval_s[j] * 1e3, 1),
                   TextTable::fixed(tune_s[j] * 1e3, 1),
                   identical ? "yes" : "NO — BUG"});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nDeterminism contract: every column of results (predictions,\n"
      "importances, tuned best) is byte-identical across widths; only the\n"
      "wall clock is allowed to move.\n");

  const char* json_path = "BENCH_parallel.json";
  std::ofstream out(json_path);
  out << "{\n  \"hardware_concurrency\": "
      << std::thread::hardware_concurrency() << ",\n  \"runs\": [\n";
  for (std::size_t j = 0; j < kWidths; ++j) {
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"n_jobs\": %d, \"fit_s\": %.6f, \"predict_s\": %.6f, "
        "\"evaluate_s\": %.6f, \"tune_s\": %.6f, "
        "\"predictions_identical\": %s, \"importances_identical\": %s, "
        "\"tune_best_identical\": %s}%s\n",
        kJobs[j], fit_s[j], predict_s[j], eval_s[j], tune_s[j],
        json_bool(fit_identical[j]).c_str(),
        json_bool(imp_identical[j]).c_str(),
        json_bool(tune_best[j] == tune_best[0]).c_str(),
        j + 1 < kWidths ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
  out.close();
  std::printf("\nraw wall-times written to %s\n", json_path);

  bool all_identical = true;
  for (std::size_t j = 0; j < kWidths; ++j) {
    all_identical = all_identical && fit_identical[j] && imp_identical[j] &&
                    tune_best[j] == tune_best[0];
  }
  return all_identical ? 0 : 1;
}
