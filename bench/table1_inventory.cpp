// Table I: the benchmark inventory — rendered from the live workload
// definitions with their shapes, flop counts and search-space sizes, so
// the table is checked against the code rather than transcribed.
#include "bench_common.hpp"

using namespace barracuda;

namespace {

std::string statement_summary(const core::TuningProblem& p) {
  if (p.statements.size() == 1) return p.statements[0].to_string();
  return std::to_string(p.statements.size()) + " statements, e.g. " +
         p.statements[0].to_string();
}

void add_row(TextTable& table, const benchsuite::Benchmark& b) {
  tcr::TcrProgram direct = core::direct_program(b.problem);
  std::int64_t space = 0;
  auto programs = core::enumerate_programs(b.problem);
  {
    double total = 0;
    for (const auto& program : programs) {
      double size = 1;
      for (const auto& nest : tcr::build_loop_nests(program)) {
        size *= static_cast<double>(
            tcr::space_size(nest, tcr::derive_space(nest)));
      }
      total += size;
    }
    space = total < 9e18 ? static_cast<std::int64_t>(total) : -1;
  }
  table.add_row({b.name, b.description, std::to_string(programs.size()),
                 std::to_string(direct.flops()),
                 space >= 0 ? std::to_string(space) : ">9e18"});
}

}  // namespace

int main() {
  bench::print_header("Table I: benchmarks used in this study");
  TextTable table({"Name", "Description", "Variants", "Direct flops",
                   "Search space"});
  add_row(table, benchsuite::eqn1());
  add_row(table, benchsuite::eqn1_2d());
  add_row(table, benchsuite::lg3());
  add_row(table, benchsuite::lg3t());
  add_row(table, benchsuite::tce_ex());
  add_row(table, benchsuite::nwchem_s1(1));
  add_row(table, benchsuite::nwchem_d1(1));
  add_row(table, benchsuite::nwchem_d2(1));
  std::printf("%s", table.render().c_str());

  std::printf("\nWorkload statements:\n");
  for (const auto& b :
       {benchsuite::eqn1(), benchsuite::lg3(), benchsuite::lg3t(),
        benchsuite::tce_ex(), benchsuite::nwchem_s1(1),
        benchsuite::nwchem_d1(1), benchsuite::nwchem_d2(1)}) {
    std::printf("  %-10s %s\n", b.name.c_str(),
                statement_summary(b.problem).c_str());
  }
  std::printf(
      "\n(The S1/D1/D2 families each comprise nine kernels; the Nekbone\n"
      "mini-app composes Lg3 and Lg3t inside a conjugate-gradient loop.)\n");
  return 0;
}
