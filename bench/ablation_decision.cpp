// Ablation: value of the contiguity/coalescing-driven decision algorithm
// (Section IV).  Compares tuned results when ThreadX candidates are
// derived from the coalescing rule versus a coalescing-blind space (all
// parallel loops eligible), at the same search budget: the blind space is
// larger and dilutes the budget with uncoalesced mappings.
#include "bench_common.hpp"

using namespace barracuda;

int main() {
  bench::print_header("Ablation: coalescing-aware vs blind ThreadX");

  auto device = vgpu::DeviceProfile::tesla_k20();
  TextTable table({"Benchmark", "Budget", "Aware (us)", "Blind (us)",
                   "Blind/Aware"});
  for (const auto& benchmark :
       {benchsuite::lg3(512, 12), benchsuite::nwchem_d2(1)}) {
    for (std::size_t budget : {20u, 60u}) {
      double aware_total = 0, blind_total = 0;
      const int seeds = 3;
      for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
        core::TuneOptions aware = bench::paper_tune_options(seed);
        aware.search.max_evaluations = budget;
        core::TuneOptions blind = aware;
        blind.decision.coalescing_aware = false;
        aware_total +=
            core::tune(benchmark.problem, device, aware).best_timing.kernel_us;
        blind_total +=
            core::tune(benchmark.problem, device, blind).best_timing.kernel_us;
      }
      table.add_row({benchmark.name, std::to_string(budget),
                     TextTable::fixed(aware_total / seeds, 1),
                     TextTable::fixed(blind_total / seeds, 1),
                     TextTable::speedup(blind_total / aware_total)});
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nShape target: at small budgets the pruned, coalescing-aware space\n"
      "finds better mappings; the gap narrows as the budget grows.\n");
  return 0;
}
