// Reproduces Figure 3: speedup of the optimized Barracuda and OpenACC
// code versions over the naive OpenACC implementations of the 27 NWChem
// excerpt kernels (d1_1..9, d2_1..9, s1_1..9) on the C2050 and K20.
#include <functional>

#include "bench_common.hpp"

using namespace barracuda;

namespace {

// One evaluation cache for the whole 27-kernel x 2-device sweep:
// families that share contraction structure (and re-runs of a family) hit
// already-measured variants instead of re-executing them.
core::EvalCache g_cache;

void run_family(const std::string& title,
                const std::vector<benchsuite::Benchmark>& family) {
  bench::print_header("Figure 3 — " + title +
                      ": speedup over naive OpenACC");
  TextTable table({"Kernel", "Barracuda C2050", "OpenACC C2050",
                   "Barracuda K20", "OpenACC K20"});
  for (const auto& kernel : family) {
    std::vector<std::string> row{kernel.name};
    for (const auto& device : {vgpu::DeviceProfile::tesla_c2050(),
                               vgpu::DeviceProfile::tesla_k20()}) {
      core::BaselineResult naive =
          core::openacc_baseline(kernel.problem, device, false);
      core::BaselineResult optimized =
          core::openacc_baseline(kernel.problem, device, true);
      core::TuneOptions options = bench::paper_tune_options();
      options.eval_cache = &g_cache;
      core::TuneResult tuned = core::tune(kernel.problem, device, options);
      double base = naive.timing.kernel_us;
      row.push_back(
          TextTable::speedup(base / tuned.best_timing.kernel_us));
      row.push_back(
          TextTable::speedup(base / optimized.timing.kernel_us));
    }
    table.add_row(row);
  }
  std::printf("%s", table.render().c_str());
}

}  // namespace

int main() {
  run_family("D1 kernels", benchsuite::d1_family());
  run_family("D2 kernels", benchsuite::d2_family());
  run_family("S1 kernels", benchsuite::s1_family());
  std::printf("\nevaluation cache: %zu hits, %zu misses, %zu entries\n",
              g_cache.hits(), g_cache.misses(), g_cache.size());
  std::printf(
      "\nPaper (Figure 3) shape targets: D1 shows the largest speedups\n"
      "(up to ~70x on the K20); D2 and S1 land in the ~5-25x band;\n"
      "Barracuda >= optimized OpenACC on nearly every kernel, and both\n"
      "are far above naive (1x).\n");
  return 0;
}
