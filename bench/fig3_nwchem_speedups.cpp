// Reproduces Figure 3: speedup of the optimized Barracuda and OpenACC
// code versions over the naive OpenACC implementations of the 27 NWChem
// excerpt kernels (d1_1..9, d2_1..9, s1_1..9) on the C2050 and K20.
//
// The 27 kernel x 2 device tune() calls are independent, so the rows of
// each family table are farmed across the shared thread pool
// (BARRACUDA_JOBS=N lanes; searches inside a pooled tune() run
// sequentially via the pool-depth guard).  With BARRACUDA_CACHE=path the
// measurement table survives the process: a second run looks up every
// variant instead of re-measuring it and reproduces the same report.
#include <functional>

#include "bench_common.hpp"

using namespace barracuda;

namespace {

// One evaluation cache for the whole 27-kernel x 2-device sweep:
// families that share contraction structure (and re-runs of a family) hit
// already-measured variants instead of re-executing them.  Internally
// synchronized, so concurrent per-kernel tune() calls may share it.
core::EvalCache g_cache;

void run_family(const std::string& title,
                const std::vector<benchsuite::Benchmark>& family) {
  bench::print_header("Figure 3 — " + title +
                      ": speedup over naive OpenACC");
  // Each kernel's row is an independent computation; build them in
  // parallel, emit them in kernel order.
  std::vector<std::vector<std::string>> rows(family.size());
  support::parallel_apply(bench::jobs(), family.size(), [&](std::size_t k) {
    const auto& kernel = family[k];
    std::vector<std::string> row{kernel.name};
    for (const auto& device : {vgpu::DeviceProfile::tesla_c2050(),
                               vgpu::DeviceProfile::tesla_k20()}) {
      core::BaselineResult naive =
          core::openacc_baseline(kernel.problem, device, false);
      core::BaselineResult optimized =
          core::openacc_baseline(kernel.problem, device, true);
      core::TuneOptions options = bench::paper_tune_options();
      options.eval_cache = &g_cache;
      core::TuneResult tuned = core::tune(kernel.problem, device, options);
      double base = naive.timing.kernel_us;
      row.push_back(
          TextTable::speedup(base / tuned.best_timing.kernel_us));
      row.push_back(
          TextTable::speedup(base / optimized.timing.kernel_us));
    }
    rows[k] = std::move(row);
  });
  TextTable table({"Kernel", "Barracuda C2050", "OpenACC C2050",
                   "Barracuda K20", "OpenACC K20"});
  for (auto& row : rows) table.add_row(row);
  std::printf("%s", table.render().c_str());
}

}  // namespace

int main() {
  bench::PersistentCache persist(g_cache);
  run_family("D1 kernels", benchsuite::d1_family());
  run_family("D2 kernels", benchsuite::d2_family());
  run_family("S1 kernels", benchsuite::s1_family());

  bench::print_header("Evaluation cache over the whole sweep");
  bench::print_cache_summary(g_cache);
  std::printf(
      "\nA warm BARRACUDA_CACHE re-run performs zero new measurements:\n"
      "every lookup above is a hit and the tables reproduce exactly.\n");
  std::printf(
      "\nPaper (Figure 3) shape targets: D1 shows the largest speedups\n"
      "(up to ~70x on the K20); D2 and S1 land in the ~5-25x band;\n"
      "Barracuda >= optimized OpenACC on nearly every kernel, and both\n"
      "are far above naive (1x).\n");
  return 0;
}
