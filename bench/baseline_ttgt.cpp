// The paper's motivating claim (Section I): "mapping the problem to use
// highly-tuned linear algebra libraries will not achieve high performance
// as these libraries are optimized for large matrices."  This harness
// makes that claim an experiment: each contraction is evaluated both by
// Barracuda's tuned loop kernels and by the TTGT strategy (transpose to
// GEMM-able layout + library GEMM), kernel-resident, across sizes — the
// crossover should sit well above the paper's small-tensor regime.
#include "bench_common.hpp"

#include "ttgt/ttgt.hpp"

using namespace barracuda;

namespace {

double barracuda_kernel_us(const core::TuningProblem& problem,
                           const vgpu::DeviceProfile& device) {
  core::TuneOptions opt = bench::paper_tune_options();
  opt.search.max_evaluations = 60;
  return core::tune(problem, device, opt).best_timing.kernel_us;
}

}  // namespace

int main() {
  auto device = vgpu::DeviceProfile::tesla_k20();

  bench::print_header(
      "Motivation: Barracuda vs TTGT (library GEMM) across matrix sizes");
  TextTable sweep({"n", "Barracuda GF", "TTGT GF", "Winner"});
  for (std::int64_t n : {8, 12, 16, 24, 32, 64, 128, 256, 512}) {
    std::string dsl = "dim i j k = " + std::to_string(n) +
                      "\nC[i k] += A[i j] * B[j k]\n";
    core::TuningProblem problem = core::TuningProblem::from_dsl(dsl, "mm");
    double flops = static_cast<double>(problem.direct_flops());
    double barracuda_gf =
        flops / 1e3 / barracuda_kernel_us(problem, device);
    ttgt::TtgtPlan plan =
        ttgt::plan_ttgt(problem.statements[0], problem.extents);
    double ttgt_gf = flops / 1e3 / ttgt::model_ttgt_us(plan, device);
    sweep.add_row({std::to_string(n), TextTable::gflops(barracuda_gf),
                   TextTable::gflops(ttgt_gf),
                   barracuda_gf >= ttgt_gf ? "Barracuda" : "TTGT"});
  }
  std::printf("%s", sweep.render().c_str());

  bench::print_header(
      "The paper's actual workloads, kernel-resident, vs TTGT");
  TextTable table({"Workload", "Barracuda GF", "TTGT GF", "TTGT plan"});
  struct Row {
    const char* label;
    core::TuningProblem problem;
  };
  std::vector<Row> rows;
  rows.push_back({"Lg3 direction (512 x 12^3)",
                  core::TuningProblem::from_dsl(R"(
dim e = 512
dim i j k l = 12
UR[e i j k] += D[i l] * U[e l j k]
)",
                                                "lg")});
  rows.push_back({"NWChem d1_1 (16)",
                  benchsuite::nwchem_d1(1).problem});
  rows.push_back({"NWChem d2_1 (16)",
                  benchsuite::nwchem_d2(1).problem});
  for (const auto& row : rows) {
    double flops = static_cast<double>(row.problem.direct_flops());
    double barracuda_gf =
        flops / 1e3 / barracuda_kernel_us(row.problem, device);
    ttgt::TtgtPlan plan =
        ttgt::plan_ttgt(row.problem.statements[0], row.problem.extents);
    double ttgt_gf = flops / 1e3 / ttgt::model_ttgt_us(plan, device);
    table.add_row({row.label, TextTable::gflops(barracuda_gf),
                   TextTable::gflops(ttgt_gf), plan.to_string()});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nShape target: TTGT crawls at the paper's sizes (tile quantization\n"
      "+ transpose traffic) and only overtakes the generated loop kernels\n"
      "for matrices in the hundreds — outside the small-tensor regime\n"
      "Barracuda targets.\n");
  return 0;
}
