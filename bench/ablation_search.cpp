// Ablation: value of the model-based search (Section V).  SURF vs
// uniform random search vs exhaustive enumeration, same pool, matched
// budgets, across seeds — reporting best-found-after-N curves.  Also
// demonstrates the Evaluate_Parallel machinery: a shared evaluation
// cache so the multi-seed sweep never re-measures a variant the
// exhaustive pass (or an earlier seed) already measured, and the
// wall-clock effect of farming one batch across n_jobs workers.
#include <algorithm>
#include <chrono>
#include <thread>

#include "bench_common.hpp"
#include "support/timer.hpp"

using namespace barracuda;

namespace {

/// Evaluate_Parallel wall-clock demo.  On real hardware each candidate
/// costs milliseconds-to-seconds of device measurement (the paper quotes
/// ~4 s per evaluation); the modeled objective here takes microseconds,
/// so we emulate the measurement latency with a fixed per-candidate wait
/// and show that a 16-candidate batch overlaps those waits across
/// workers.  Values are unchanged — only the wall clock moves.
void parallel_evaluation_demo() {
  bench::print_header("Evaluate_Parallel: 16-candidate batch wall clock");
  constexpr std::size_t kBatch = 16;
  constexpr auto kMeasurementLatency = std::chrono::milliseconds(5);
  surf::Objective timed = [&](std::size_t i) {
    std::this_thread::sleep_for(kMeasurementLatency);
    return static_cast<double>(i);
  };
  std::vector<std::size_t> batch(kBatch);
  for (std::size_t i = 0; i < kBatch; ++i) batch[i] = i;

  double seconds[2] = {0, 0};
  const std::size_t jobs[2] = {1, 4};
  std::vector<double> values[2];
  for (int j = 0; j < 2; ++j) {
    surf::BatchEvaluator evaluate(timed, jobs[j]);
    WallTimer timer;
    values[j] = evaluate(batch);
    seconds[j] = timer.seconds();
    std::printf("n_jobs = %zu : %6.1f ms\n", jobs[j], seconds[j] * 1e3);
  }
  bool identical = values[0] == values[1];
  std::printf("speedup     : %.2fx (results %s)\n", seconds[0] / seconds[1],
              identical ? "identical" : "DIVERGED — BUG");
}

/// Budget-stretch demo (TuneOptions::free_cache_hits): re-running a tune
/// against a warm cache with cache hits charged as free evaluations lets
/// the same measurement budget reach configurations the cold run never
/// saw — the known prefix replays as free lookups and the budget is
/// spent entirely on new measurements.
void budget_stretch_demo(const core::TuningProblem& problem,
                         const vgpu::DeviceProfile& device) {
  bench::print_header(
      "EvalCache budget stretch: warm cache + free_cache_hits");
  core::EvalCache cache;
  core::TuneOptions opt = bench::paper_tune_options();
  opt.search.max_evaluations = 40;
  opt.eval_cache = &cache;

  core::TuneResult cold = core::tune(problem, device, opt);
  const std::size_t cold_measurements = cache.misses();

  opt.free_cache_hits = true;
  core::TuneResult warm = core::tune(problem, device, opt);

  TextTable table({"Run", "Evaluations", "New measurements", "Best us"});
  table.add_row({"cold", std::to_string(cold.search.evaluations()),
                 std::to_string(cold_measurements),
                 TextTable::fixed(cold.best_timing.total_us, 2)});
  table.add_row({"warm + free hits",
                 std::to_string(warm.search.evaluations()),
                 std::to_string(cache.misses() - cold_measurements),
                 TextTable::fixed(warm.best_timing.total_us, 2)});
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nSame max_evals budget: the warm run replays the cold run's %zu\n"
      "evaluations as free cache hits and spends its whole budget on new\n"
      "configurations (best can only improve or tie).\n",
      cold.search.evaluations());
}

/// Duplicate-proposal demo (TuneOptions::cache_aware_proposals): how
/// much of a warm re-run's budget SURF wastes re-proposing already
/// -measured configurations, and how cache-aware ordering reclaims it.
/// Uses its own cache (not the harness-wide one) so the rates are
/// attributable to exactly these three runs.
void cache_aware_demo(const core::TuningProblem& problem,
                      const vgpu::DeviceProfile& device) {
  bench::print_header(
      "Cache-aware proposals: duplicate-proposal rate on a warm cache");
  core::EvalCache cache;
  core::TuneOptions opt = bench::paper_tune_options();
  opt.search.max_evaluations = 40;
  opt.eval_cache = &cache;

  auto duplicate_rate = [](const core::TuneResult& r) {
    return 100.0 * r.search.duplicate_proposals /
           std::max<std::size_t>(1, r.search.evaluations());
  };
  auto add_row = [&](TextTable& table, const char* name,
                     const core::TuneResult& r, std::size_t new_meas) {
    table.add_row({name, std::to_string(r.search.evaluations()),
                   std::to_string(r.search.duplicate_proposals),
                   TextTable::fixed(duplicate_rate(r), 1) + "%",
                   std::to_string(new_meas),
                   TextTable::fixed(r.best_timing.total_us, 2)});
  };

  TextTable table({"Run", "Evaluations", "Duplicate proposals", "Dup rate",
                   "New measurements", "Best us"});
  core::TuneResult cold = core::tune(problem, device, opt);
  std::size_t measured = cache.misses();
  add_row(table, "cold", cold, measured);

  // Plain warm re-run: same search, so every proposal is a duplicate —
  // the whole budget re-buys known values.
  core::TuneResult plain = core::tune(problem, device, opt);
  add_row(table, "warm (oblivious)", plain, cache.misses() - measured);
  measured = cache.misses();

  // Cache-aware + free hits: known configurations replay free, the
  // budget goes entirely to new measurements, duplicates drop to zero.
  opt.free_cache_hits = true;
  opt.cache_aware_proposals = true;
  core::TuneResult aware = core::tune(problem, device, opt);
  add_row(table, "warm (cache-aware)", aware, cache.misses() - measured);
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nThe oblivious warm run burns ~100%% of its budget re-proposing\n"
      "measured configurations; cache-aware ordering spends the identical\n"
      "budget on genuinely new ones (duplicate rate ~0).\n");
}

}  // namespace

int main() {
  bench::print_header("Ablation: SURF vs random vs exhaustive search");

  core::TuningProblem problem = benchsuite::lg3(256, 12).problem;
  auto device = vgpu::DeviceProfile::tesla_k20();

  // One cache for the whole harness: the exhaustive pass measures the
  // entire pool once, so every later (method, seed) run re-uses those
  // measurements instead of re-executing them.  With BARRACUDA_CACHE=path
  // the table even survives the process.
  core::EvalCache cache;
  bench::PersistentCache persist(cache);

  // Exhaustive over the materialized pool: the reference optimum.
  core::TuneOptions ex = bench::paper_tune_options();
  ex.method = core::TuneOptions::Method::kExhaustive;
  ex.max_pool = 3000;
  ex.eval_cache = &cache;
  core::TuneResult exhaustive = core::tune(problem, device, ex);
  std::printf("pool size %zu; exhaustive optimum: %.2f us (%zu evals)\n",
              exhaustive.pool_size, exhaustive.best_timing.total_us,
              exhaustive.search.evaluations());
  const std::size_t warm_misses = cache.misses();
  std::printf("evaluation cache after exhaustive pass: %zu entries\n\n",
              cache.size());

  TextTable table({"Method", "after 10", "after 25", "after 50",
                   "after 100", "regret vs optimum"});
  for (auto method : {core::TuneOptions::Method::kSurf,
                      core::TuneOptions::Method::kGenetic,
                      core::TuneOptions::Method::kAnnealing,
                      core::TuneOptions::Method::kRandom}) {
    double after[4] = {0, 0, 0, 0};
    double final_best = 0;
    const int seeds = 5;
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
      core::TuneOptions opt = bench::paper_tune_options(seed);
      opt.method = method;
      opt.max_pool = 3000;
      opt.search.max_evaluations = 100;
      opt.eval_cache = &cache;
      core::TuneResult r = core::tune(problem, device, opt);
      const std::size_t ns[4] = {10, 25, 50, 100};
      for (int i = 0; i < 4; ++i) after[i] += r.search.best_after(ns[i]);
      final_best += r.best_timing.total_us;
    }
    std::vector<std::string> row{
        method == core::TuneOptions::Method::kSurf      ? "SURF"
        : method == core::TuneOptions::Method::kGenetic ? "genetic"
        : method == core::TuneOptions::Method::kAnnealing
            ? "annealing"
            : "random"};
    for (int i = 0; i < 4; ++i) {
      row.push_back(TextTable::fixed(after[i] / seeds, 2) + "us");
    }
    row.push_back(TextTable::fixed(
        (final_best / seeds / exhaustive.best_timing.total_us - 1.0) * 100,
        2) + "%");
    table.add_row(row);
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nEvaluation cache over the method x seed sweep:\n");
  bench::print_cache_summary(cache);
  std::printf(
      "\nThe grid re-executed %zu variants not already measured by the\n"
      "exhaustive warm-up (every other evaluation was a cache hit).\n",
      cache.misses() - warm_misses);
  std::printf(
      "\nShape target: the model-based SURF dominates the early part of the\n"
      "curve (best results at 25 and 50 evaluations — the budgets that\n"
      "matter when each evaluation costs ~4 s on hardware); every informed\n"
      "strategy ends far below random's regret at 100 evals.\n");

  parallel_evaluation_demo();
  budget_stretch_demo(problem, device);
  cache_aware_demo(problem, device);
  return 0;
}
