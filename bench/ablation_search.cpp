// Ablation: value of the model-based search (Section V).  SURF vs
// uniform random search vs exhaustive enumeration, same pool, matched
// budgets, across seeds — reporting best-found-after-N curves.
#include "bench_common.hpp"

using namespace barracuda;

int main() {
  bench::print_header("Ablation: SURF vs random vs exhaustive search");

  core::TuningProblem problem = benchsuite::lg3(256, 12).problem;
  auto device = vgpu::DeviceProfile::tesla_k20();

  // Exhaustive over the materialized pool: the reference optimum.
  core::TuneOptions ex = bench::paper_tune_options();
  ex.method = core::TuneOptions::Method::kExhaustive;
  ex.max_pool = 3000;
  core::TuneResult exhaustive = core::tune(problem, device, ex);
  std::printf("pool size %zu; exhaustive optimum: %.2f us (%zu evals)\n\n",
              exhaustive.pool_size, exhaustive.best_timing.total_us,
              exhaustive.search.evaluations());

  TextTable table({"Method", "after 10", "after 25", "after 50",
                   "after 100", "regret vs optimum"});
  for (auto method : {core::TuneOptions::Method::kSurf,
                      core::TuneOptions::Method::kGenetic,
                      core::TuneOptions::Method::kAnnealing,
                      core::TuneOptions::Method::kRandom}) {
    double after[4] = {0, 0, 0, 0};
    double final_best = 0;
    const int seeds = 5;
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
      core::TuneOptions opt = bench::paper_tune_options(seed);
      opt.method = method;
      opt.max_pool = 3000;
      opt.search.max_evaluations = 100;
      core::TuneResult r = core::tune(problem, device, opt);
      const std::size_t ns[4] = {10, 25, 50, 100};
      for (int i = 0; i < 4; ++i) after[i] += r.search.best_after(ns[i]);
      final_best += r.best_timing.total_us;
    }
    std::vector<std::string> row{
        method == core::TuneOptions::Method::kSurf      ? "SURF"
        : method == core::TuneOptions::Method::kGenetic ? "genetic"
        : method == core::TuneOptions::Method::kAnnealing
            ? "annealing"
            : "random"};
    for (int i = 0; i < 4; ++i) {
      row.push_back(TextTable::fixed(after[i] / seeds, 2) + "us");
    }
    row.push_back(TextTable::fixed(
        (final_best / seeds / exhaustive.best_timing.total_us - 1.0) * 100,
        2) + "%");
    table.add_row(row);
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nShape target: the model-based SURF dominates the early part of the\n"
      "curve (best results at 25 and 50 evaluations — the budgets that\n"
      "matter when each evaluation costs ~4 s on hardware); every informed\n"
      "strategy ends far below random's regret at 100 evals.\n");
  return 0;
}
