// Reproduces Table IV: Nekbone and NWChem excerpt performance,
// OpenMP (Haswell 1 core / 4 cores) vs Barracuda (GTX 980), in GFlop/s.
//
// For the NWChem rows the socket-level computation is the whole family:
// all nine kernels accumulating into one device-resident t3, transferred
// once (Section VI: "the data remains on the GPU across these calls").
#include "bench_common.hpp"

using namespace barracuda;

namespace {

struct FamilyModel {
  double kernel_us = 0;
  double transfer_us = 0;
  std::int64_t flops = 0;
  double gflops() const {
    double us = kernel_us + transfer_us;
    return us > 0 ? (static_cast<double>(flops) / 1e3) / us : 0;
  }
};

FamilyModel model_family_barracuda(char family,
                                   const vgpu::DeviceProfile& device) {
  std::vector<benchsuite::Benchmark> members;
  switch (family) {
    case 's': members = benchsuite::s1_family(); break;
    case 'd': members = benchsuite::d1_family(); break;
    default: members = benchsuite::d2_family(); break;
  }
  FamilyModel m;
  double input_bytes = 0;
  std::int64_t transfers = 1;  // t3 up
  for (const auto& member : members) {
    core::TuneResult tuned =
        core::tune(member.problem, device, bench::paper_tune_options());
    m.kernel_us += tuned.best_timing.kernel_us;
    m.flops += tuned.flops;
    // Each kernel's own t1/t2/v2 slices head down once.
    for (const auto& name : tuned.best_plan.h2d) {
      if (name == "t3") continue;  // resident across the family
      input_bytes += static_cast<double>(
                         tuned.best_plan.tensor_sizes.at(name)) *
                     8.0;
      ++transfers;
    }
  }
  const double t3_bytes = std::pow(16.0, 6) * 8.0;
  m.transfer_us = (input_bytes + t3_bytes) /
                      (device.pcie_bandwidth_gbs * 1e3) +
                  device.pcie_latency_us * static_cast<double>(transfers);
  return m;
}

}  // namespace

int main() {
  bench::print_header(
      "Table IV: Nekbone and NWChem excerpts, OpenMP vs Barracuda");

  auto cpu = cpuexec::CpuProfile::haswell();
  auto device = vgpu::DeviceProfile::gtx980();
  TextTable table({"Benchmark", "1 core", "OpenMP 4 cores", "Barracuda"});

  // --- Nekbone ----------------------------------------------------------
  benchsuite::NekboneConfig config;
  config.elements = 512;
  config.p = 12;
  config.cg_iterations = 100;
  benchsuite::NekboneModel one = benchsuite::model_nekbone_cpu(config, cpu, 1);
  benchsuite::NekboneModel four =
      benchsuite::model_nekbone_cpu(config, cpu, 4);
  benchsuite::NekboneModel gpu = benchsuite::model_nekbone_barracuda(
      config, device, bench::paper_tune_options());
  table.add_row({"Nekbone", TextTable::gflops(one.gflops) + "GF",
                 TextTable::gflops(four.gflops) + "GF",
                 TextTable::gflops(gpu.gflops) + "GF"});

  // --- NWChem families ---------------------------------------------------
  const char* labels[3] = {"NWCHEM s1", "NWCHEM d1", "NWCHEM d2"};
  const char families[3] = {'s', 'd', '2'};
  for (int f = 0; f < 3; ++f) {
    benchsuite::Benchmark combined =
        benchsuite::nwchem_family_combined(families[f]);
    cpuexec::CpuTiming c1 = core::cpu_baseline(combined.problem, cpu, 1);
    cpuexec::CpuTiming c4 = core::cpu_baseline(combined.problem, cpu, 4);
    std::int64_t cpu_flops =
        core::enumerate_programs(combined.problem).front().flops();
    FamilyModel fm = model_family_barracuda(families[f], device);
    table.add_row({labels[f],
                   TextTable::gflops(c1.gflops(cpu_flops)) + "GF",
                   TextTable::gflops(c4.gflops(cpu_flops)) + "GF",
                   TextTable::gflops(fm.gflops()) + "GF"});
  }

  std::printf("%s", table.render().c_str());
  std::printf(
      "\nPaper (Table IV): Nekbone 7.79/23.97/35.70; s1 2.47/2.61/16.14;\n"
      "d1 3.90/25.29/115.37; d2 5.60/14.90/50.00 GFlop/s.\n"
      "Shape targets: s1 gains almost nothing from 4 OpenMP cores\n"
      "(bandwidth-bound) while Nekbone/d1/d2 scale; Barracuda beats the\n"
      "4-core OpenMP on every row; d1 is the GPU's best family.\n");
  return 0;
}
