// Reproduces Table II: results summary for the individual
// tensor-contraction computations (Eqn.(1), Lg3, Lg3t, TCE ex).
//
// Columns, as in the paper:
//   Speedup — tuned GTX 980 versus plain sequential execution on Haswell
//   GFlops / Search — per device (GTX 980, K20, C2050): modeled GFlop/s
//     (transfers amortized over 100 repetitions, the paper's methodology)
//     and wall-clock seconds spent in the SURF search.
#include "bench_common.hpp"

using namespace barracuda;

int main() {
  bench::print_header(
      "Table II: results summary for individual tensor contractions");

  auto devices = vgpu::DeviceProfile::paper_devices();
  TextTable table({"Name", "Speedup",
                   devices[0].name + " GF", "Search",
                   devices[1].name + " GF", "Search",
                   devices[2].name + " GF", "Search"});

  for (const auto& benchmark : benchsuite::table2_benchmarks()) {
    std::vector<std::string> row{benchmark.name};

    // Plain sequential Haswell baseline (same strength-reduced flops).
    cpuexec::CpuTiming cpu =
        core::cpu_baseline(benchmark.problem, bench::haswell_plain(), 1);

    bool first_device = true;
    for (const auto& device : devices) {
      core::TuneResult tuned =
          core::tune(benchmark.problem, device, bench::paper_tune_options());
      double us = tuned.best_timing.kernel_us +
                  (tuned.best_timing.h2d_us + tuned.best_timing.d2h_us) /
                      bench::kRepetitions;
      if (first_device) {
        row.push_back(TextTable::speedup(cpu.total_us / us));
        first_device = false;
      }
      row.push_back(TextTable::gflops(
          tuned.modeled_gflops_amortized(bench::kRepetitions)));
      row.push_back(TextTable::seconds(tuned.search.seconds));
    }
    table.add_row(row);
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nPaper (Table II): Eqn.(1) 0.63x/1.99GF; Lg3 23.74x/42.74GF;\n"
      "Lg3t 22.87x/41.11GF; TCE ex 29.77x/42.72GF (GTX 980 column).\n"
      "Shape targets: Eqn.(1) near or below 1x (too little work for the\n"
      "GPU); the other three tens-of-GFlops and >10x over sequential.\n");
  return 0;
}
