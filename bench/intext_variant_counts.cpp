// Reproduces the in-text claims of Sections II.B and III:
//   * OCTOPI generates fifteen versions of Eqn.(1);
//   * six of them perform the same (minimal) amount of floating-point
//     computation;
//   * the same-flop versions still differ in performance (~9% spread on
//     the GTX 980 in the paper) — data layout and mapping matter even at
//     equal flops.
#include "bench_common.hpp"

#include "octopi/enumerate.hpp"
#include "octopi/parser.hpp"

using namespace barracuda;

int main() {
  bench::print_header("In-text: Eqn.(1) variant enumeration (Section III)");

  core::TuningProblem problem = benchsuite::eqn1().problem;
  auto programs = core::enumerate_programs(problem);
  std::size_t minimal = 0;
  for (const auto& p : programs) {
    minimal += (p.flops() == programs.front().flops());
  }
  std::printf("variants enumerated       : %zu   (paper: 15)\n",
              programs.size());
  std::printf("minimal-flop variants     : %zu   (paper: 6)\n", minimal);
  std::printf("minimal flops             : %lld (3 x 2N^4)\n",
              static_cast<long long>(programs.front().flops()));
  std::printf("direct evaluation flops   : %lld (4N^6)\n\n",
              static_cast<long long>(problem.direct_flops()));

  // Tune each minimal-flop variant in isolation and report the modeled
  // performance spread on the GTX 980.
  auto device = vgpu::DeviceProfile::gtx980();
  std::printf("per-variant tuned kernel time on %s:\n", device.name.c_str());
  double best = 1e300, worst = 0;
  for (std::size_t v = 0; v < minimal; ++v) {
    // Pin the search to this variant by re-posing its (already binary)
    // operations as the statements of a fresh problem: each binary
    // statement has exactly one OCTOPI variant, so the tuning pool draws
    // from this evaluation order only.
    core::TuningProblem pinned;
    pinned.name = "eqn1_v" + std::to_string(v + 1);
    pinned.extents = problem.extents;
    for (const auto& op : programs[v].operations) {
      pinned.statements.push_back(op);
    }
    core::TuneOptions opt = bench::paper_tune_options(v + 1);
    opt.search.max_evaluations = 80;
    core::TuneResult r = core::tune(pinned, device, opt);
    double us = r.best_timing.kernel_us;
    best = std::min(best, us);
    worst = std::max(worst, us);
    std::printf("  variant %zu: %8.2f us\n", v + 1, us);
  }
  std::printf(
      "\nspread across same-flop variants: %.1f%%   (paper: ~9%% on the "
      "GTX 980)\n",
      (worst / best - 1.0) * 100.0);
  return 0;
}
