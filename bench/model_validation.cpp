// Model validation: the two analytic models are checked against ground
// truth that IS available in this environment —
//   (1) the CPU model against real measured host execution of the same
//       TCR programs (at sizes the interpreter can sweep), and
//   (2) the GPU coalescing model against exact warp-level traffic
//       measurement (vgpu::measure_traffic).
#include "bench_common.hpp"

#include "cpuexec/interpreter.hpp"
#include "vgpu/traffic.hpp"

using namespace barracuda;

namespace {

tensor::TensorEnv random_inputs(const tcr::TcrProgram& program, Rng& rng) {
  tensor::TensorEnv env;
  for (const auto& name : program.input_names()) {
    const auto& var = program.variable(name);
    std::vector<std::int64_t> dims;
    for (const auto& ix : var.indices) dims.push_back(program.extents.at(ix));
    env.emplace(name, tensor::Tensor::random(dims, rng));
  }
  return env;
}

}  // namespace

int main() {
  bench::print_header("Model validation (1): CPU model vs measured host");
  std::printf(
      "The interpreter is not an optimizing compiler, so measured GFlop/s\n"
      "sit well below the modeled tuned-C figures; the *relative* cost of\n"
      "the workloads is the validated quantity.\n\n");
  TextTable cpu_table({"Workload", "Modeled us", "Measured us",
                       "Modeled/Measured"});
  Rng rng(1);
  auto cpu = cpuexec::CpuProfile::haswell();
  for (const auto& b :
       {benchsuite::eqn1(), benchsuite::lg3(16, 8),
        benchsuite::nwchem_d1(1, 8)}) {
    tcr::TcrProgram program = core::enumerate_programs(b.problem).front();
    double modeled = cpuexec::model_cpu(program, cpu, 1).total_us;
    double measured =
        cpuexec::measure_sequential_seconds(program,
                                            random_inputs(program, rng), 3) *
        1e6;
    cpu_table.add_row({b.name, TextTable::fixed(modeled, 1),
                       TextTable::fixed(measured, 1),
                       TextTable::fixed(modeled / measured, 3)});
  }
  std::printf("%s", cpu_table.render().c_str());

  bench::print_header(
      "Model validation (2): coalescing model vs exact warp traffic");
  TextTable gpu_table({"Access", "Modeled tx/warp", "Measured tx/warp"});
  tcr::TcrProgram lg =
      core::enumerate_programs(benchsuite::lg3(8, 12).problem).front();
  auto nests = tcr::build_loop_nests(lg);
  auto dev = vgpu::DeviceProfile::tesla_k20();
  for (std::size_t op = 0; op < lg.operations.size(); ++op) {
    chill::Kernel k = chill::lower_kernel(
        lg, op, tcr::optimized_openacc_config(nests[op]));
    vgpu::TrafficMeasurement measured = vgpu::measure_traffic(k, dev, 8);
    vgpu::KernelTiming modeled = vgpu::model_kernel(k, dev);
    for (std::size_t i = 0; i < k.ins.size(); ++i) {
      std::string key = k.ins[i].tensor + "#" + std::to_string(i);
      gpu_table.add_row(
          {"op" + std::to_string(op + 1) + " " + k.ins[i].tensor,
           TextTable::fixed(modeled.accesses[i].transactions_per_warp_visit,
                            2),
           TextTable::fixed(
               measured.accesses.at(key).transactions_per_warp_visit(),
               2)});
    }
  }
  std::printf("%s", gpu_table.render().c_str());
  std::printf(
      "\nShape target: modeled transactions per warp visit within ~2x of\n"
      "the exact measurement on every access stream.\n");
  return 0;
}
