// Shared helpers for the table/figure reproduction harnesses.
#pragma once

#include <cstdio>
#include <string>

#include "benchsuite/nekbone.hpp"
#include "benchsuite/workloads.hpp"
#include "support/table.hpp"

namespace barracuda::bench {

/// The paper measures each variant as the average of 100 repetitions, so
/// host<->device transfer cost amortizes across repetitions.
constexpr int kRepetitions = 100;

/// Default tuning budget used by the harnesses (the paper runs SURF with
/// 100 evaluations for Lg3t).
inline core::TuneOptions paper_tune_options(std::uint64_t seed = 1) {
  core::TuneOptions options;
  options.search.max_evaluations = 100;
  options.search.batch_size = 10;
  options.search.seed = seed;
  options.max_pool = 2048;
  options.pool_seed = seed;
  return options;
}

/// The "plain sequential loop nest" Haswell profile used as the Table II
/// speedup baseline (unvectorized reference code), versus the tuned
/// profile used for the hand-optimized OpenMP comparisons of Table IV.
inline cpuexec::CpuProfile haswell_plain() {
  cpuexec::CpuProfile cpu = cpuexec::CpuProfile::haswell();
  cpu.core_gflops = 2.0;  // plain scalar loop nest, no blocking/SIMD
  return cpu;
}

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

}  // namespace barracuda::bench
