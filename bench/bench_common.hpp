// Shared helpers for the table/figure reproduction harnesses.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "benchsuite/nekbone.hpp"
#include "benchsuite/workloads.hpp"
#include "support/table.hpp"
#include "support/threadpool.hpp"

namespace barracuda::bench {

/// The paper measures each variant as the average of 100 repetitions, so
/// host<->device transfer cost amortizes across repetitions.
constexpr int kRepetitions = 100;

/// Default tuning budget used by the harnesses (the paper runs SURF with
/// 100 evaluations for Lg3t).
inline core::TuneOptions paper_tune_options(std::uint64_t seed = 1) {
  core::TuneOptions options;
  options.search.max_evaluations = 100;
  options.search.batch_size = 10;
  options.search.seed = seed;
  options.max_pool = 2048;
  options.pool_seed = seed;
  return options;
}

/// The "plain sequential loop nest" Haswell profile used as the Table II
/// speedup baseline (unvectorized reference code), versus the tuned
/// profile used for the hand-optimized OpenMP comparisons of Table IV.
inline cpuexec::CpuProfile haswell_plain() {
  cpuexec::CpuProfile cpu = cpuexec::CpuProfile::haswell();
  cpu.core_gflops = 2.0;  // plain scalar loop nest, no blocking/SIMD
  return cpu;
}

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

/// Worker lanes for the harness's own outer loops (independent tune()
/// calls per kernel/grid point), from BARRACUDA_JOBS (default 1,
/// 0 = hardware concurrency).  Searches inside pooled tune() calls fall
/// back to sequential via the pool-depth guard, so this never
/// oversubscribes.
inline std::size_t jobs() {
  const char* env = std::getenv("BARRACUDA_JOBS");
  return support::resolve_jobs(env && *env ? std::atoi(env) : 1);
}

/// BARRACUDA_CACHE=path hook: loads `path` into the cache on
/// construction (when the file exists) and merges the cache back on
/// destruction, so a re-run of the harness re-measures nothing.  The
/// write-back is merge_save(): concurrent harness invocations sharing
/// one path compose to the union of their measurements instead of
/// last-writer-wins, and a crash mid-save never tears the file.
class PersistentCache {
 public:
  explicit PersistentCache(core::EvalCache& cache) : cache_(cache) {
    const char* env = std::getenv("BARRACUDA_CACHE");
    if (!env || !*env) return;
    path_ = env;
    std::ifstream probe(path_);
    if (probe.good()) {
      probe.close();
      std::printf("evaluation cache: loaded %zu entries from %s\n",
                  cache_.load(path_), path_.c_str());
    }
  }
  ~PersistentCache() {
    if (path_.empty()) return;
    try {
      cache_.merge_save(path_);
      std::printf("evaluation cache: %zu entries saved to %s\n",
                  cache_.size(), path_.c_str());
    } catch (const Error& e) {
      std::fprintf(stderr, "evaluation cache: save failed: %s\n", e.what());
    }
  }
  PersistentCache(const PersistentCache&) = delete;
  PersistentCache& operator=(const PersistentCache&) = delete;

 private:
  core::EvalCache& cache_;
  std::string path_;
};

/// The hit/miss summary table the harnesses append after their result
/// tables (every objective call is either a hit — skipped work — or a
/// miss — one real measurement).
inline void print_cache_summary(const core::EvalCache& cache) {
  TextTable table({"Lookups", "Hits", "Misses", "Hit rate", "Entries"});
  const std::size_t lookups = cache.hits() + cache.misses();
  table.add_row({std::to_string(lookups), std::to_string(cache.hits()),
                 std::to_string(cache.misses()),
                 lookups ? TextTable::fixed(100.0 *
                                                static_cast<double>(
                                                    cache.hits()) /
                                                static_cast<double>(lookups),
                                            1) + "%"
                         : "-",
                 std::to_string(cache.size())});
  std::printf("%s", table.render().c_str());
}

}  // namespace barracuda::bench
