// Ablation: value of OCTOPI's algebraic strength reduction (Section III).
// Tunes Eqn.(1) and the TCE example with and without the Algorithm 1
// rewrite; without it the only variant is the direct O(N^6)/O(N^10) nest.
#include "bench_common.hpp"

using namespace barracuda;

int main() {
  bench::print_header("Ablation: strength reduction on vs off");

  auto device = vgpu::DeviceProfile::gtx980();
  TextTable table({"Benchmark", "Flops (SR on)", "Flops (SR off)",
                   "Kernel us (on)", "Kernel us (off)", "Speedup"});

  for (const auto& benchmark :
       {benchsuite::eqn1(), benchsuite::tce_ex(12)}) {
    core::TuneOptions on = bench::paper_tune_options();
    core::TuneOptions off = on;
    off.octopi.strength_reduction = false;

    core::TuneResult with_sr = core::tune(benchmark.problem, device, on);
    core::TuneResult without_sr = core::tune(benchmark.problem, device, off);
    table.add_row(
        {benchmark.name, std::to_string(with_sr.flops),
         std::to_string(without_sr.flops),
         TextTable::fixed(with_sr.best_timing.kernel_us, 1),
         TextTable::fixed(without_sr.best_timing.kernel_us, 1),
         TextTable::speedup(without_sr.best_timing.kernel_us /
                            with_sr.best_timing.kernel_us)});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nShape target: strength reduction cuts the operation count by\n"
      "O(N^2) or more and translates into a large end-to-end speedup.\n");
  return 0;
}
