// Reproduces the in-text claims of Section V:
//   * the joint search space for Lg3t is very large (512,000 tensor-code
//     variants in the paper's, smaller, parameterization);
//   * SURF with 100 evaluations finds a high-quality configuration in
//     minutes, while exhaustive enumeration at ~4 s/variant would take
//     weeks ("approximately 23 days").
#include "bench_common.hpp"

using namespace barracuda;

int main() {
  bench::print_header("In-text: Lg3t search space and SURF economics");

  benchsuite::Benchmark b = benchsuite::lg3t(512, 12);
  auto device = vgpu::DeviceProfile::gtx980();

  core::TuneOptions options = bench::paper_tune_options();
  options.search.max_evaluations = 100;  // the paper's budget for Lg3t
  core::TuneResult r = core::tune(b.problem, device, options);

  std::printf("joint search space        : %lld tensor-code variants\n",
              static_cast<long long>(r.joint_space_size));
  std::printf("  (paper: 512,000 under its smaller parameterization)\n");
  std::printf("pool materialized         : %zu configurations\n",
              r.pool_size);
  std::printf("SURF evaluations          : %zu\n", r.search.evaluations());
  std::printf("SURF wall time            : %.2f s (model-based evaluation)\n",
              r.search.seconds);
  std::printf("best modeled kernel time  : %.1f us (%.2f GFlop/s amortized)\n",
              r.best_timing.kernel_us,
              r.modeled_gflops_amortized(bench::kRepetitions));

  // The paper's economics: ~4 s per empirical evaluation on hardware.
  const double secs_per_variant = 4.0;
  double exhaustive_days = static_cast<double>(r.joint_space_size) *
                           secs_per_variant / 86400.0;
  double surf_minutes =
      static_cast<double>(r.search.evaluations()) * secs_per_variant / 60.0;
  std::printf(
      "\nat the paper's ~4 s/variant hardware evaluation cost:\n"
      "  SURF (100 evals)        : %.1f minutes   (paper: ~7 minutes)\n"
      "  exhaustive enumeration  : %.1f days      (paper: ~23 days)\n",
      surf_minutes, exhaustive_days);

  // Search-quality curve: best found after N evaluations.
  std::printf("\nSURF best-found-so-far curve (modeled us):\n");
  for (std::size_t n : {10u, 25u, 50u, 100u}) {
    std::printf("  after %3zu evals: %.1f us\n", n,
                r.search.best_after(n));
  }
  return 0;
}
