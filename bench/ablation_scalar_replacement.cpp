// Ablation: value of scalar replacement / registers() (Section IV: the
// compiler "always applies scalar replacement to explicitly copy the
// output tensor variable to a scalar temporary").  Same decomposition,
// registers on vs off.
#include "bench_common.hpp"

#include "chill/lower.hpp"

using namespace barracuda;

int main() {
  bench::print_header("Ablation: scalar replacement (registers) on vs off");

  TextTable table({"Kernel", "Device", "with registers (us)",
                   "without (us)", "Speedup"});
  for (const auto& benchmark :
       {benchsuite::lg3(512, 12), benchsuite::nwchem_d1(1),
        benchsuite::nwchem_d2(1)}) {
    for (const auto& device : {vgpu::DeviceProfile::gtx980(),
                               vgpu::DeviceProfile::tesla_c2050()}) {
      tcr::TcrProgram program =
          core::enumerate_programs(benchmark.problem).front();
      chill::Recipe with_sr = chill::openacc_optimized_recipe(program);
      chill::Recipe without_sr = with_sr;
      for (auto& cfg : without_sr) cfg.scalar_replacement = false;

      double on = vgpu::model_plan(chill::lower_program(program, with_sr),
                                   device)
                      .kernel_us;
      double off = vgpu::model_plan(
                       chill::lower_program(program, without_sr), device)
                       .kernel_us;
      table.add_row({benchmark.name, device.name, TextTable::fixed(on, 1),
                     TextTable::fixed(off, 1),
                     TextTable::speedup(off / on)});
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nShape target: keeping the accumulator in a register removes the\n"
      "per-reduction-iteration read-modify-write of the output and yields\n"
      "a clear speedup wherever the reduction loop is inside the thread.\n");
  return 0;
}
