// Tests for ranged dimension declarations and size specialization
// (Section III: "the user can optionally specify the index dimension or a
// range of dimensions").
#include <gtest/gtest.h>

#include "core/barracuda.hpp"
#include "octopi/parser.hpp"

namespace barracuda::octopi {
namespace {

TEST(Ranges, ParseRangeDeclaration) {
  OctopiProgram p = parse_octopi(R"(
dim e = 64
dim i j k l = 8..12
UR[e i j k] += D[i l] * U[e l j k]
)");
  EXPECT_EQ(p.extents.at("e"), 64);
  EXPECT_FALSE(p.extents.contains("i"));
  ASSERT_TRUE(p.ranges.contains("i"));
  EXPECT_EQ(p.ranges.at("i"), (ExtentRange{8, 12}));
  EXPECT_EQ(p.ranges.at("l"), (ExtentRange{8, 12}));
}

TEST(Ranges, DegenerateRangeAccepted) {
  OctopiProgram p = parse_octopi("dim i = 4..4\nC[i] = A[i]\n");
  EXPECT_EQ(p.ranges.at("i"), (ExtentRange{4, 4}));
  EXPECT_EQ(p.specializations().size(), 1u);
}

TEST(Ranges, InvertedRangeRejected) {
  EXPECT_THROW(parse_octopi("dim i = 8..4\nC[i] = A[i]\n"), ParseError);
}

TEST(Ranges, ConflictWithFixedDimRejected) {
  EXPECT_THROW(parse_octopi("dim i = 4\ndim i = 4..8\nC[i] = A[i]\n"),
               ParseError);
}

TEST(Ranges, SpecializationsEnumerateGrid) {
  OctopiProgram p = parse_octopi(R"(
dim a = 2..4
dim b = 5
C[a] += A[a b]
)");
  auto specs = p.specializations();
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0].at("a"), 2);
  EXPECT_EQ(specs[2].at("a"), 4);
  for (const auto& s : specs) EXPECT_EQ(s.at("b"), 5);
}

TEST(Ranges, CrossProductOfTwoRanges) {
  OctopiProgram p = parse_octopi(R"(
dim a = 2..3
dim b = 7..9
C[a] += A[a b]
)");
  auto specs = p.specializations();
  EXPECT_EQ(specs.size(), 2u * 3u);
}

TEST(Ranges, SpecializationCapKeepsLowCorners) {
  OctopiProgram p = parse_octopi(R"(
dim a = 1..100
C[a] += A[a]
)");
  auto specs = p.specializations(5);
  ASSERT_EQ(specs.size(), 5u);
  EXPECT_EQ(specs.front().at("a"), 1);
  EXPECT_EQ(specs.back().at("a"), 5);
}

TEST(Ranges, NoRangesYieldsSinglePoint) {
  OctopiProgram p = parse_octopi("dim i = 4\nC[i] = A[i]\n");
  auto specs = p.specializations();
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(specs[0].at("i"), 4);
}

TEST(Ranges, RoundTripThroughToString) {
  OctopiProgram p = parse_octopi("dim i = 8..12\nC[i] = A[i]\n");
  OctopiProgram q = parse_octopi(p.to_string());
  EXPECT_EQ(q.ranges.at("i"), (ExtentRange{8, 12}));
}

TEST(Ranges, TuneSpecializationsProducesPerSizePlans) {
  OctopiProgram p = parse_octopi(R"(
dim e = 32
dim i j k l = 4..6
UR[e i j k] += D[i l] * U[e l j k]
)");
  core::TuneOptions opt;
  opt.search.max_evaluations = 15;
  opt.max_pool = 150;
  auto specs = core::tune_specializations(
      p, vgpu::DeviceProfile::gtx980(), opt);
  ASSERT_EQ(specs.size(), 3u);
  for (std::size_t s = 0; s < specs.size(); ++s) {
    EXPECT_EQ(specs[s].extents.at("i"),
              static_cast<std::int64_t>(4 + s));
    EXPECT_GT(specs[s].result.modeled_gflops(), 0);
    // The grid geometry tracks the specialized size.
    const auto& k = specs[s].result.best_plan.kernels[0];
    auto ext = k.index_extents();
    EXPECT_EQ(ext.at("i"), static_cast<std::int64_t>(4 + s));
  }
}

}  // namespace
}  // namespace barracuda::octopi
