#include "octopi/parser.hpp"

#include <gtest/gtest.h>

namespace barracuda::octopi {
namespace {

constexpr const char* kEqn1 = R"(
# Spectral element example, Eqn (1) of the paper.
dim i j k l m n = 10
V[i j k] = Sum([l m n], A[l k] * B[m j] * C[n i] * U[l m n])
)";

TEST(Parser, ParsesEqn1) {
  OctopiProgram p = parse_octopi(kEqn1);
  ASSERT_EQ(p.statements.size(), 1u);
  const EinsumStatement& s = p.statements[0];
  EXPECT_EQ(s.output.name, "V");
  EXPECT_EQ(s.output.indices, (std::vector<std::string>{"i", "j", "k"}));
  EXPECT_EQ(s.sum_indices, (std::vector<std::string>{"l", "m", "n"}));
  ASSERT_EQ(s.factors.size(), 4u);
  EXPECT_EQ(s.factors[0].name, "A");
  EXPECT_EQ(s.factors[3].indices,
            (std::vector<std::string>{"l", "m", "n"}));
  EXPECT_FALSE(s.accumulate);
  EXPECT_EQ(p.extents.at("i"), 10);
  EXPECT_EQ(p.extents.at("n"), 10);
}

TEST(Parser, SumListOptionalAndInferred) {
  EinsumStatement s = parse_statement("C[i k] += A[i j] * B[j k]");
  EXPECT_TRUE(s.accumulate);
  EXPECT_TRUE(s.sum_indices.empty());
  auto c = s.to_contraction();
  EXPECT_EQ(c.summed_indices(), (std::vector<std::string>{"j"}));
}

TEST(Parser, CommaSeparatedIndexListsAccepted) {
  EinsumStatement s =
      parse_statement("V[i, j, k] = Sum([l, m, n], A[l,k] * U[l m n] * B[m j] * C[n i])");
  EXPECT_EQ(s.output.indices, (std::vector<std::string>{"i", "j", "k"}));
  EXPECT_EQ(s.sum_indices, (std::vector<std::string>{"l", "m", "n"}));
}

TEST(Parser, MultipleStatementsAndSharedDims) {
  OctopiProgram p = parse_octopi(R"(
dim i j = 4
dim k = 8
W[i k] = A[i j] * B[j k]
V[i k] += W[i k] * D[k]
)");
  ASSERT_EQ(p.statements.size(), 2u);
  EXPECT_EQ(p.extents.at("k"), 8);
  EXPECT_TRUE(p.statements[1].accumulate);
}

TEST(Parser, SumListMismatchThrows) {
  EinsumStatement s =
      parse_statement("C[i k] = Sum([j z], A[i j] * B[j k])");
  EXPECT_THROW(s.to_contraction(), InternalError);
}

TEST(Parser, SumListDuplicateThrows) {
  EinsumStatement s =
      parse_statement("C[i k] = Sum([j j], A[i j] * B[j k])");
  EXPECT_THROW(s.to_contraction(), InternalError);
}

TEST(Parser, SyntaxErrorsCarryLineNumbers) {
  try {
    parse_octopi("dim i = 4\nC[i] == A[i]\n", "bad.oct");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_NE(std::string(e.what()).find("bad.oct:2"), std::string::npos);
  }
}

TEST(Parser, MissingBracketThrows) {
  EXPECT_THROW(parse_statement("C[i k = A[i j] * B[j k]"), ParseError);
  EXPECT_THROW(parse_statement("C[i k] = A[i j * B[j k]"), ParseError);
}

TEST(Parser, TrailingGarbageThrows) {
  EXPECT_THROW(parse_statement("C[i] = A[i] zzz"), ParseError);
}

TEST(Parser, UndeclaredIndexWithDimsThrows) {
  EXPECT_THROW(parse_octopi("dim i = 4\nC[i] = A[i j]\n"), ParseError);
}

TEST(Parser, ConflictingDimThrows) {
  EXPECT_THROW(parse_octopi("dim i = 4\ndim i = 5\nC[i] = A[i]\n"),
               ParseError);
}

TEST(Parser, NonPositiveDimThrows) {
  EXPECT_THROW(parse_octopi("dim i = 0\nC[i] = A[i]\n"), ParseError);
}

TEST(Parser, NoDimsLeavesExtentsToCaller) {
  OctopiProgram p = parse_octopi("C[i k] = A[i j] * B[j k]\n");
  EXPECT_TRUE(p.extents.empty());
}

TEST(Parser, CommentsAndBlankLinesIgnored) {
  OctopiProgram p = parse_octopi(R"(
# leading comment

dim i = 2   # trailing comment
C[i] = A[i]  # another
)");
  EXPECT_EQ(p.statements.size(), 1u);
}

TEST(Parser, RoundTripThroughToString) {
  OctopiProgram p = parse_octopi(kEqn1);
  OctopiProgram q = parse_octopi(p.to_string());
  ASSERT_EQ(q.statements.size(), 1u);
  EXPECT_EQ(q.statements[0].to_string(), p.statements[0].to_string());
  EXPECT_EQ(q.extents, p.extents);
}

TEST(Parser, ScalarOutputAllowed) {
  EinsumStatement s = parse_statement("y[] = Sum([i], u[i] * v[i])");
  EXPECT_TRUE(s.output.indices.empty());
  EXPECT_EQ(s.to_contraction().summed_indices(),
            (std::vector<std::string>{"i"}));
}

}  // namespace
}  // namespace barracuda::octopi
