#include "octopi/enumerate.hpp"

#include <gtest/gtest.h>

#include <set>

#include "octopi/parser.hpp"
#include "tensor/einsum.hpp"

namespace barracuda::octopi {
namespace {

using tensor::Contraction;
using tensor::Extents;
using tensor::Tensor;
using tensor::TensorEnv;

Contraction eqn1() {
  return parse_statement(
             "V[i j k] = Sum([l m n], A[l k] * B[m j] * C[n i] * U[l m n])")
      .to_contraction();
}

Extents eqn1_extents(std::int64_t n = 10) {
  Extents e;
  for (const char* ix : {"i", "j", "k", "l", "m", "n"}) e[ix] = n;
  return e;
}

// --- The paper's headline enumeration facts (Sections II.B / III) ---

TEST(Enumerate, Eqn1YieldsExactlyFifteenVariants) {
  auto variants = enumerate_variants(eqn1(), eqn1_extents());
  EXPECT_EQ(variants.size(), 15u);
}

TEST(Enumerate, Eqn1VariantsAreDistinctPrograms) {
  auto variants = enumerate_variants(eqn1(), eqn1_extents());
  std::set<std::string> texts;
  for (const auto& v : variants) texts.insert(v.program.to_string());
  EXPECT_EQ(texts.size(), variants.size());
}

TEST(Enumerate, Eqn1HasSixMinimalFlopVariants) {
  auto variants = enumerate_variants(eqn1(), eqn1_extents());
  // Minimal variants are three N^4 binary contractions = 3 * 2N^4 flops.
  EXPECT_EQ(variants.front().flops, 3 * 2 * 10000);
  EXPECT_EQ(count_min_flop_variants(variants), 6u);
}

TEST(Enumerate, Eqn1MinimalBeatsDirectByN2Factor) {
  auto variants = enumerate_variants(eqn1(), eqn1_extents());
  Contraction direct = eqn1();
  std::int64_t direct_flops = tensor::flop_count(direct, eqn1_extents());
  // O(N^6) direct vs O(N^4) strength-reduced.
  EXPECT_GT(direct_flops, 50 * variants.front().flops);
}

TEST(Enumerate, VariantsSortedByFlops) {
  auto variants = enumerate_variants(eqn1(), eqn1_extents());
  for (std::size_t i = 1; i < variants.size(); ++i) {
    EXPECT_LE(variants[i - 1].flops, variants[i].flops);
  }
}

// --- Correctness: every variant computes the same tensor ---

TEST(Enumerate, AllEqn1VariantsMatchDirectEvaluation) {
  Extents ext = eqn1_extents(5);
  Rng rng(101);
  TensorEnv base;
  base.emplace("A", Tensor::random({5, 5}, rng));
  base.emplace("B", Tensor::random({5, 5}, rng));
  base.emplace("C", Tensor::random({5, 5}, rng));
  base.emplace("U", Tensor::random({5, 5, 5}, rng));

  TensorEnv direct_env = base;
  tensor::evaluate(eqn1(), ext, direct_env);
  const Tensor& expect = direct_env.at("V");

  auto variants = enumerate_variants(eqn1(), ext);
  ASSERT_EQ(variants.size(), 15u);
  for (const auto& v : variants) {
    TensorEnv env = base;
    const Tensor& got = tensor::evaluate(v.program, ext, env);
    EXPECT_TRUE(Tensor::allclose(expect, got, 1e-9))
        << "variant disagrees:\n"
        << v.program.to_string();
  }
}

TEST(Enumerate, VariantsCorrectUnderAsymmetricExtents) {
  Contraction c = eqn1();
  Extents ext{{"i", 2}, {"j", 3}, {"k", 4}, {"l", 5}, {"m", 2}, {"n", 3}};
  Rng rng(7);
  TensorEnv base;
  base.emplace("A", Tensor::random({5, 4}, rng));
  base.emplace("B", Tensor::random({2, 3}, rng));
  base.emplace("C", Tensor::random({3, 2}, rng));
  base.emplace("U", Tensor::random({5, 2, 3}, rng));
  TensorEnv direct_env = base;
  tensor::evaluate(c, ext, direct_env);

  for (const auto& v : enumerate_variants(c, ext)) {
    TensorEnv env = base;
    const Tensor& got = tensor::evaluate(v.program, ext, env);
    EXPECT_TRUE(Tensor::allclose(direct_env.at("V"), got, 1e-9))
        << v.program.to_string();
  }
}

// --- Structure of enumerated programs ---

TEST(Enumerate, StepsAreAllUnaryOrBinary) {
  for (const auto& v : enumerate_variants(eqn1(), eqn1_extents())) {
    for (const auto& step : v.program.steps) {
      EXPECT_GE(step.inputs.size(), 1u);
      EXPECT_LE(step.inputs.size(), 2u);
    }
  }
}

TEST(Enumerate, FinalStepWritesDeclaredOutput) {
  for (const auto& v : enumerate_variants(eqn1(), eqn1_extents())) {
    const auto& last = v.program.steps.back();
    EXPECT_EQ(last.output.name, "V");
    EXPECT_EQ(last.output.indices,
              (std::vector<std::string>{"i", "j", "k"}));
  }
}

TEST(Enumerate, TemporariesAreDefinedBeforeUse) {
  for (const auto& v : enumerate_variants(eqn1(), eqn1_extents())) {
    std::set<std::string> defined{"A", "B", "C", "U"};
    for (const auto& step : v.program.steps) {
      for (const auto& in : step.inputs) {
        EXPECT_TRUE(defined.contains(in.name))
            << in.name << " used before definition in\n"
            << v.program.to_string();
      }
      defined.insert(step.output.name);
    }
  }
}

TEST(Enumerate, MinimalVariantShapeMatchesPaperExample) {
  // The paper's chosen variant: T1 <- C*U, T2 <- B*T1, V <- A*T2, all N^4.
  auto variants = enumerate_variants(eqn1(), eqn1_extents());
  bool found = false;
  for (const auto& v : variants) {
    if (v.flops != variants.front().flops) break;
    if (v.program.steps.size() == 3 &&
        v.program.steps[0].inputs[0].name == "C" &&
        v.program.steps[0].inputs[1].name == "U" &&
        v.program.steps[1].inputs[0].name == "B" &&
        v.program.steps[2].inputs[0].name == "A") {
      // T1 must carry [i l m]: C's surviving index then U's, per the paper.
      EXPECT_EQ(v.program.steps[0].output.indices,
                (std::vector<std::string>{"i", "l", "m"}));
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

// --- Binary / unary / degenerate inputs ---

TEST(Enumerate, BinaryContractionHasSingleVariant) {
  Contraction c =
      parse_statement("C[i k] += A[i j] * B[j k]").to_contraction();
  Extents ext{{"i", 4}, {"j", 4}, {"k", 4}};
  auto variants = enumerate_variants(c, ext);
  ASSERT_EQ(variants.size(), 1u);
  EXPECT_EQ(variants[0].program.steps.size(), 1u);
  EXPECT_EQ(variants[0].program.steps[0], c);
}

TEST(Enumerate, SingleFactorReduction) {
  Contraction c = parse_statement("y[i] = Sum([j], A[i j])").to_contraction();
  Extents ext{{"i", 3}, {"j", 4}};
  auto variants = enumerate_variants(c, ext);
  ASSERT_EQ(variants.size(), 1u);
  Rng rng(3);
  TensorEnv env;
  env.emplace("A", Tensor::random({3, 4}, rng));
  const Tensor& y = tensor::evaluate(variants[0].program, ext, env);
  for (std::int64_t i = 0; i < 3; ++i) {
    double acc = 0;
    for (std::int64_t j = 0; j < 4; ++j) acc += env.at("A").at({i, j});
    EXPECT_NEAR(y.at({i}), acc, 1e-12);
  }
}

TEST(Enumerate, ThreeTermProductCounts) {
  // Three terms: 3 association trees, no balanced-pair collapse.
  Contraction c = parse_statement(
                      "W[i l] = Sum([j k], A[i j] * B[j k] * C[k l])")
                      .to_contraction();
  Extents ext{{"i", 4}, {"j", 4}, {"k", 4}, {"l", 4}};
  auto variants = enumerate_variants(c, ext);
  EXPECT_EQ(variants.size(), 3u);
}

TEST(Enumerate, StrengthReductionOffGivesDirectOnly) {
  EnumerateOptions opt;
  opt.strength_reduction = false;
  auto variants = enumerate_variants(eqn1(), eqn1_extents(), opt);
  ASSERT_EQ(variants.size(), 1u);
  EXPECT_EQ(variants[0].program.steps.size(), 1u);
  EXPECT_EQ(variants[0].program.steps[0].inputs.size(), 4u);
  EXPECT_EQ(variants[0].flops, 4 * 1000000);
}

TEST(Enumerate, MaxVariantsCapRespected) {
  EnumerateOptions opt;
  opt.max_variants = 4;
  auto variants = enumerate_variants(eqn1(), eqn1_extents(), opt);
  EXPECT_EQ(variants.size(), 4u);
}

TEST(Enumerate, TempNamesAvoidUserTensorNames) {
  // A user tensor named like a would-be temporary must not collide.
  Contraction c = parse_statement(
                      "V[i] = Sum([j k l], t4[i j] * t5[j k] * t6[k l] * w[l])")
                      .to_contraction();
  Extents ext{{"i", 2}, {"j", 2}, {"k", 2}, {"l", 2}};
  for (const auto& v : enumerate_variants(c, ext)) {
    std::set<std::string> defined{"t4", "t5", "t6", "w"};
    for (const auto& step : v.program.steps) {
      EXPECT_FALSE(defined.contains(step.output.name) &&
                   step.output.name != "V")
          << "temp name collides with input: " << step.output.name;
      defined.insert(step.output.name);
    }
  }
}

TEST(Enumerate, FiveTermProductCountMatchesDoubleFactorial) {
  // Distinct association trees over n leaves = (2n-3)!!; n=5 -> 105.
  Contraction c =
      parse_statement(
          "V[a] = Sum([b c d e], P[a b] * Q[b c] * R[c d] * S[d e] * T[e])")
          .to_contraction();
  Extents ext{{"a", 2}, {"b", 2}, {"c", 2}, {"d", 2}, {"e", 2}};
  auto variants = enumerate_variants(c, ext);
  EXPECT_EQ(variants.size(), 105u);
}

TEST(Enumerate, FiveTermVariantsAllCorrect) {
  Contraction c =
      parse_statement(
          "V[a] = Sum([b c d e], P[a b] * Q[b c] * R[c d] * S[d e] * T[e])")
          .to_contraction();
  Extents ext{{"a", 3}, {"b", 2}, {"c", 4}, {"d", 2}, {"e", 3}};
  Rng rng(55);
  TensorEnv base;
  base.emplace("P", Tensor::random({3, 2}, rng));
  base.emplace("Q", Tensor::random({2, 4}, rng));
  base.emplace("R", Tensor::random({4, 2}, rng));
  base.emplace("S", Tensor::random({2, 3}, rng));
  base.emplace("T", Tensor::random({3}, rng));
  TensorEnv direct_env = base;
  tensor::evaluate(c, ext, direct_env);
  for (const auto& v : enumerate_variants(c, ext)) {
    TensorEnv env = base;
    const Tensor& got = tensor::evaluate(v.program, ext, env);
    EXPECT_TRUE(Tensor::allclose(direct_env.at("V"), got, 1e-9))
        << v.program.to_string();
  }
}


TEST(Enumerate, FlopsRatioPruningDropsExpensiveVariants) {
  EnumerateOptions opt;
  opt.max_flops_ratio = 1.0;  // keep only minimal-flop variants
  auto minimal_only = enumerate_variants(eqn1(), eqn1_extents(), opt);
  EXPECT_EQ(minimal_only.size(), 6u);
  for (const auto& v : minimal_only) {
    EXPECT_EQ(v.flops, minimal_only.front().flops);
  }

  opt.max_flops_ratio = 1e9;  // effectively no pruning
  EXPECT_EQ(enumerate_variants(eqn1(), eqn1_extents(), opt).size(), 15u);

  opt.max_flops_ratio = 0;  // disabled
  EXPECT_EQ(enumerate_variants(eqn1(), eqn1_extents(), opt).size(), 15u);
}

TEST(Enumerate, FlopsRatioPruningNeverEmptiesTheSet) {
  EnumerateOptions opt;
  opt.max_flops_ratio = 0.0001;  // pathologically tight
  opt.strength_reduction = true;
  auto variants = enumerate_variants(eqn1(), eqn1_extents(), opt);
  EXPECT_GE(variants.size(), 1u);
}

}  // namespace
}  // namespace barracuda::octopi
