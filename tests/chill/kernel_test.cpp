#include "chill/kernel.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace barracuda::chill {
namespace {

AffineAccess v_access() {
  // V[ty*100 + bx*10 + tx] from Figure 2(d), with indices i,j,k.
  AffineAccess a;
  a.tensor = "V";
  a.terms = {{"i", 100}, {"j", 10}, {"k", 1}};
  return a;
}

TEST(AffineAccess, CoefOfSumsDuplicates) {
  AffineAccess a;
  a.tensor = "A";
  a.terms = {{"i", 10}, {"i", 1}, {"j", 5}};
  EXPECT_EQ(a.coef_of("i"), 11);
  EXPECT_EQ(a.coef_of("j"), 5);
  EXPECT_EQ(a.coef_of("z"), 0);
}

TEST(AffineAccess, EvalAppliesOffsetAndTerms) {
  AffineAccess a = v_access();
  a.offset = 7;
  auto value = [](const std::string& ix) -> std::int64_t {
    if (ix == "i") return 2;
    if (ix == "j") return 3;
    return 4;
  };
  EXPECT_EQ(a.eval(value), 7 + 200 + 30 + 4);
}

TEST(AffineAccess, SourceRendering) {
  AffineAccess a = v_access();
  auto identity = [](const std::string& ix) { return ix; };
  EXPECT_EQ(a.to_source(identity), "V[i * 100 + j * 10 + k]");
  AffineAccess scalar;
  scalar.tensor = "y";
  EXPECT_EQ(scalar.to_source(identity), "y[0]");
}

Kernel sample_kernel() {
  // V[i*100 + j*10 + k] += A[l*10 + k] * T[j*100 + i*10 + l]
  // with k->tx, j->ty, i->bx, l sequential (reduction).
  Kernel k;
  k.name = "ex_GPU_3";
  k.thread_x = {"k", 10};
  k.thread_y = {"j", 10};
  k.block_x = {"i", 10};
  k.seq = {{"l", 10, 1}};
  k.out = v_access();
  AffineAccess a;
  a.tensor = "A";
  a.terms = {{"l", 10}, {"k", 1}};
  AffineAccess t;
  t.tensor = "T";
  t.terms = {{"j", 100}, {"i", 10}, {"l", 1}};
  k.ins = {a, t};
  return k;
}

TEST(Kernel, GeometryAndFlops) {
  Kernel k = sample_kernel();
  EXPECT_EQ(k.threads_per_block(), 100);
  EXPECT_EQ(k.blocks(), 10);
  EXPECT_EQ(k.points(), 10000);
  EXPECT_EQ(k.flops(), 20000);  // binary product: 2 flops per point
}

TEST(Kernel, IndexExtentsCoverGridAndSeq) {
  auto ext = sample_kernel().index_extents();
  EXPECT_EQ(ext.size(), 4u);
  EXPECT_EQ(ext.at("k"), 10);
  EXPECT_EQ(ext.at("l"), 10);
}

TEST(Kernel, ScalarDepthTrailingInvariantRun) {
  Kernel k = sample_kernel();
  // Innermost (only) seq loop l does not appear in V's subscript.
  EXPECT_EQ(k.scalar_depth(), 0u);

  // Make the innermost loop move the output: scalar region vanishes.
  Kernel k2 = sample_kernel();
  k2.seq = {{"l", 10, 1}, {"j", 10, 1}};
  k2.thread_y = {};
  EXPECT_EQ(k2.scalar_depth(), 2u);

  // Reduction inside, parallel outside: region covers only the inner loop.
  Kernel k3 = sample_kernel();
  k3.seq = {{"j", 10, 1}, {"l", 10, 1}};
  k3.thread_y = {};
  EXPECT_EQ(k3.scalar_depth(), 1u);
}

TEST(Kernel, CudaSourceMatchesFigure2dShape) {
  Kernel k = sample_kernel();
  k.seq[0].unroll = 3;
  std::string src = k.cuda_source();
  EXPECT_NE(src.find("__global__ void ex_GPU_3"), std::string::npos);
  EXPECT_NE(src.find("double nv = V[bx * 100 + ty * 10 + tx];"),
            std::string::npos);
  // Unroll-by-3 main loop with a remainder statement (10 = 3*3 + 1).
  EXPECT_NE(src.find("for (int l = 0; l < 9; l += 3)"), std::string::npos);
  EXPECT_NE(src.find("nv = nv + A[(l + 2) * 10 + tx]"), std::string::npos);
  EXPECT_NE(src.find("nv = nv + A[9 * 10 + tx]"), std::string::npos);
  EXPECT_NE(src.find("V[bx * 100 + ty * 10 + tx] = nv;"), std::string::npos);
}

TEST(Kernel, CudaSourceWithoutScalarReplacementWritesInPlace) {
  Kernel k = sample_kernel();
  k.scalar_replacement = false;
  std::string src = k.cuda_source();
  EXPECT_EQ(src.find("double nv"), std::string::npos);
  EXPECT_NE(src.find("V[bx * 100 + ty * 10 + tx] = "
                     "V[bx * 100 + ty * 10 + tx] + "),
            std::string::npos);
}

TEST(Kernel, CudaSourceBalancedBraces) {
  for (int uf : {1, 2, 3, 5, 10}) {
    Kernel k = sample_kernel();
    k.seq[0].unroll = uf;
    std::string src = k.cuda_source();
    EXPECT_EQ(std::count(src.begin(), src.end(), '{'),
              std::count(src.begin(), src.end(), '}'))
        << src;
  }
}

TEST(Kernel, ScalarReplacementSkippedWhenOutputMovesInnermost) {
  Kernel k = sample_kernel();
  k.seq = {{"l", 10, 1}, {"j", 10, 1}};  // j moves V and is innermost
  k.thread_y = {};
  std::string src = k.cuda_source();
  EXPECT_EQ(src.find("double nv"), std::string::npos);
}

TEST(GpuPlan, ByteAccounting) {
  GpuPlan plan;
  plan.name = "ex";
  plan.tensor_sizes = {{"A", 100}, {"V", 1000}, {"t", 500}};
  plan.h2d = {"A"};
  plan.d2h = {"V"};
  plan.zero_init = {"t"};
  EXPECT_EQ(plan.bytes_h2d(), 800);
  EXPECT_EQ(plan.bytes_d2h(), 8000);
}

TEST(GpuPlan, CudaSourceHasHostDriver) {
  GpuPlan plan;
  plan.name = "ex";
  plan.kernels = {sample_kernel()};
  plan.tensor_sizes = {{"A", 100}, {"T", 1000}, {"V", 1000}};
  plan.h2d = {"A", "T"};
  plan.d2h = {"V"};
  std::string src = plan.cuda_source();
  EXPECT_NE(src.find("cudaMalloc(&d_V, 1000 * sizeof(double));"),
            std::string::npos);
  EXPECT_NE(src.find("cudaMemcpyHostToDevice"), std::string::npos);
  EXPECT_NE(src.find("dim3 grid(10, 1);"), std::string::npos);
  EXPECT_NE(src.find("dim3 block(10, 10);"), std::string::npos);
  EXPECT_NE(src.find("ex_GPU_3<<<grid, block>>>(d_V, d_A, d_T);"),
            std::string::npos);
  EXPECT_NE(src.find("cudaFree(d_A);"), std::string::npos);
}

}  // namespace
}  // namespace barracuda::chill
