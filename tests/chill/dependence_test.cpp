#include "chill/dependence.hpp"

#include <gtest/gtest.h>

#include "benchsuite/workloads.hpp"
#include "octopi/parser.hpp"

namespace barracuda::chill {
namespace {

// --- the bounded integer solver ---------------------------------------

TEST(DependenceSolver, ZeroCoefficientAlwaysDependent) {
  // Reduction loop: coef 0 means every iteration hits the same element.
  EXPECT_TRUE(has_nonzero_solution({10, 0}, {10, 10}, 1));
}

TEST(DependenceSolver, RowMajorStridesAreIndependent) {
  // Proper row-major strides cannot alias within bounds.
  EXPECT_FALSE(has_nonzero_solution({100, 10, 1}, {10, 10, 10}, 0));
  EXPECT_FALSE(has_nonzero_solution({100, 10, 1}, {10, 10, 10}, 1));
  EXPECT_FALSE(has_nonzero_solution({100, 10, 1}, {10, 10, 10}, 2));
}

TEST(DependenceSolver, AliasingStridesDetected) {
  // A[i*4 + j] with j in [0,8): iterations (i, j) and (i+1, j-4)
  // collide — the specialized LHS rule would wrongly call both parallel.
  EXPECT_TRUE(has_nonzero_solution({4, 1}, {3, 8}, 0));
  EXPECT_TRUE(has_nonzero_solution({4, 1}, {3, 8}, 1));
  // With j in [0,4) no collision exists.
  EXPECT_FALSE(has_nonzero_solution({4, 1}, {3, 4}, 0));
}

TEST(DependenceSolver, DiagonalAccessIndependent) {
  // A[i*(N+1)]: merged diagonal coefficient, still injective.
  EXPECT_FALSE(has_nonzero_solution({11}, {10}, 0));
}

TEST(DependenceSolver, OppositeCoefficientsAlias) {
  // addr = i - j: (0,0) and (1,1) collide.
  EXPECT_TRUE(has_nonzero_solution({1, -1}, {4, 4}, 0));
}

// --- agreement with the specialized tensor rule -----------------------

TEST(Dependence, GeneralTestAgreesWithLhsRuleOnAllWorkloads) {
  std::vector<benchsuite::Benchmark> workloads{
      benchsuite::eqn1(),        benchsuite::eqn1_2d(),
      benchsuite::lg3(8, 6),     benchsuite::lg3t(8, 6),
      benchsuite::tce_ex(4),     benchsuite::nwchem_s1(1, 4),
      benchsuite::nwchem_d1(4, 4), benchsuite::nwchem_d2(7, 4)};
  for (const auto& b : workloads) {
    for (const auto& program : core::enumerate_programs(b.problem)) {
      auto nests = tcr::build_loop_nests(program);
      for (std::size_t op = 0; op < program.operations.size(); ++op) {
        DependenceAnalysis general = analyze_dependences(program, op);
        EXPECT_EQ(general.parallel, nests[op].parallel_indices())
            << b.name << " op " << op;
        EXPECT_EQ(general.carried, nests[op].reduction_indices())
            << b.name << " op " << op;
      }
    }
  }
}

TEST(Dependence, ReductionLoopsCarriedOnEqn1) {
  tcr::TcrProgram p = core::direct_program(benchsuite::eqn1().problem);
  DependenceAnalysis a = analyze_dependences(p, 0);
  EXPECT_EQ(a.parallel, (std::vector<std::string>{"i", "j", "k"}));
  EXPECT_EQ(a.carried, (std::vector<std::string>{"l", "m", "n"}));
}

TEST(Dependence, OutputReadWithDifferentSubscriptIsConservative) {
  // Y[i] += Y[p] * A[i p]: reading the written tensor under another
  // subscript defeats the specialized rule; the general analysis must
  // mark everything carried.
  tcr::TcrProgram p = tcr::parse_tcr(R"(
rw
define:
I = P = 4
variables:
A:(I,P)
Y:(I)
operations:
Y:(i) += Y:(p)*A:(i,p)
)");
  DependenceAnalysis a = analyze_dependences(p, 0);
  EXPECT_TRUE(a.parallel.empty());
  EXPECT_EQ(a.carried.size(), 2u);
}

TEST(Dependence, IdenticalOutputReadSubscriptNotConservative) {
  // Y[i] += Y[i] * A[i]: the read matches the write exactly; i stays
  // parallel.
  tcr::TcrProgram p = tcr::parse_tcr(R"(
sq
define:
I = 4
variables:
A:(I)
Y:(I)
operations:
Y:(i) += Y:(i)*A:(i)
)");
  DependenceAnalysis a = analyze_dependences(p, 0);
  EXPECT_EQ(a.parallel, (std::vector<std::string>{"i"}));
}

TEST(Dependence, ScalarOutputAllCarried) {
  tcr::TcrProgram p = tcr::parse_tcr(R"(
dot
define:
I = 8
variables:
u:(I)
v:(I)
y:()
operations:
y:() += u:(i)*v:(i)
)");
  DependenceAnalysis a = analyze_dependences(p, 0);
  EXPECT_TRUE(a.parallel.empty());
  EXPECT_EQ(a.carried, (std::vector<std::string>{"i"}));
}

}  // namespace
}  // namespace barracuda::chill
