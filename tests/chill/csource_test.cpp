#include "chill/csource.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace barracuda::chill {
namespace {

tcr::TcrProgram eqn1_program() {
  return tcr::parse_tcr(R"(
ex
define:
I = J = K = L = M = N = 10
variables:
A:(L,K)
B:(M,J)
C:(N,I)
U:(L,M,N)
temp1:(I,L,M)
temp3:(J,I,L)
V:(I,J,K)
operations:
temp1:(i,l,m) += C:(n,i)*U:(l,m,n)
temp3:(j,i,l) += B:(m,j)*temp1:(i,l,m)
V:(i,j,k) += A:(l,k)*temp3:(j,i,l)
)");
}

TEST(CSource, SignatureListsInputsThenOutput) {
  tcr::TcrProgram p = eqn1_program();
  EXPECT_EQ(c_entry_point(p), "ex_cpu");
  auto params = c_parameters(p);
  ASSERT_EQ(params.size(), 5u);
  EXPECT_EQ(params.back(), "V");
  std::string src = c_source(p);
  EXPECT_NE(src.find("void ex_cpu(const double* C, const double* U, "
                     "const double* B, const double* A, double* V)"),
            std::string::npos)
      << src;
}

TEST(CSource, TemporariesAllocatedAndFreed) {
  std::string src = c_source(eqn1_program());
  EXPECT_NE(src.find("double* temp1 = calloc(1000, sizeof(double));"),
            std::string::npos);
  EXPECT_NE(src.find("free(temp1);"), std::string::npos);
  EXPECT_NE(src.find("free(temp3);"), std::string::npos);
  // The output is caller-owned: never allocated or freed here.
  EXPECT_EQ(src.find("double* V ="), std::string::npos);
  EXPECT_EQ(src.find("free(V)"), std::string::npos);
}

TEST(CSource, RowMajorSubscripts) {
  std::string src = c_source(eqn1_program());
  EXPECT_NE(src.find("V[((i) * 10 + j) * 10 + k]"), std::string::npos);
  EXPECT_NE(src.find("A[(l) * 10 + k]"), std::string::npos);
}

TEST(CSource, OpenMpPragmasOnFusedParallelLoops) {
  CSourceOptions opt;
  opt.openmp = true;
  std::string src = c_source(eqn1_program(), opt);
  EXPECT_NE(src.find("#include <omp.h>"), std::string::npos);
  EXPECT_NE(src.find("#pragma omp parallel for"), std::string::npos);
}

TEST(CSource, SequentialHasNoPragmas) {
  std::string src = c_source(eqn1_program());
  EXPECT_EQ(src.find("#pragma"), std::string::npos);
  EXPECT_EQ(src.find("omp.h"), std::string::npos);
}

TEST(CSource, UnfusedEmitsOneNestPerOperation) {
  CSourceOptions opt;
  opt.fuse = false;
  std::string src = c_source(eqn1_program(), opt);
  // Three operations, each opening its own i loop.
  std::size_t count = 0;
  for (std::size_t pos = 0;
       (pos = src.find("for (int i = 0;", pos)) != std::string::npos;
       ++pos) {
    ++count;
  }
  EXPECT_EQ(count, 3u);
}

TEST(CSource, BracesBalancedFusedAndUnfused) {
  for (bool fuse : {true, false}) {
    for (bool openmp : {true, false}) {
      CSourceOptions opt;
      opt.fuse = fuse;
      opt.openmp = openmp;
      std::string src = c_source(eqn1_program(), opt);
      EXPECT_EQ(std::count(src.begin(), src.end(), '{'),
                std::count(src.begin(), src.end(), '}'));
    }
  }
}

TEST(CSource, NonAccumulatingOutputMemset) {
  tcr::TcrProgram p = eqn1_program();
  p.operations.back().accumulate = false;
  std::string src = c_source(p);
  EXPECT_NE(src.find("memset(V, 0, 1000 * sizeof(double));"),
            std::string::npos);
}

}  // namespace
}  // namespace barracuda::chill
