#include "chill/lower.hpp"

#include <gtest/gtest.h>

namespace barracuda::chill {
namespace {

tcr::TcrProgram eqn1_program() {
  return tcr::parse_tcr(R"(
ex
define:
I = J = K = L = M = N = 10
variables:
A:(L,K)
B:(M,J)
C:(N,I)
U:(L,M,N)
temp1:(I,L,M)
temp3:(J,I,L)
V:(I,J,K)
operations:
temp1:(i,l,m) += C:(n,i)*U:(l,m,n)
temp3:(j,i,l) += B:(m,j)*temp1:(i,l,m)
V:(i,j,k) += A:(l,k)*temp3:(j,i,l)
)");
}

Recipe default_recipe(const tcr::TcrProgram& p) {
  Recipe r;
  for (const auto& nest : tcr::build_loop_nests(p)) {
    r.push_back(tcr::optimized_openacc_config(nest));
  }
  return r;
}

TEST(Lower, KernelSubscriptsUseDeclaredStrides) {
  tcr::TcrProgram p = eqn1_program();
  Kernel k = lower_kernel(p, 2, default_recipe(p)[2]);
  // V:(I,J,K) row-major: strides 100, 10, 1.
  EXPECT_EQ(k.out.coef_of("i"), 100);
  EXPECT_EQ(k.out.coef_of("j"), 10);
  EXPECT_EQ(k.out.coef_of("k"), 1);
  // A:(L,K): strides 10, 1 on indices l, k.
  EXPECT_EQ(k.ins[0].coef_of("l"), 10);
  EXPECT_EQ(k.ins[0].coef_of("k"), 1);
  // temp3:(J,I,L) referenced as (j,i,l): strides 100, 10, 1.
  EXPECT_EQ(k.ins[1].coef_of("j"), 100);
  EXPECT_EQ(k.ins[1].coef_of("l"), 1);
}

TEST(Lower, GridDimsComeFromConfig) {
  tcr::TcrProgram p = eqn1_program();
  auto nests = tcr::build_loop_nests(p);
  tcr::KernelConfig cfg;
  cfg.thread_x = "k";
  cfg.thread_y = "j";
  cfg.block_x = "i";
  cfg.sequential = {"l"};
  cfg.unroll = 5;
  Kernel k = lower_kernel(p, 2, cfg);
  EXPECT_EQ(k.thread_x.index, "k");
  EXPECT_EQ(k.thread_x.extent, 10);
  EXPECT_EQ(k.thread_y.index, "j");
  EXPECT_EQ(k.block_x.index, "i");
  EXPECT_FALSE(k.block_y.used());
  ASSERT_EQ(k.seq.size(), 1u);
  EXPECT_EQ(k.seq[0].index, "l");
  EXPECT_EQ(k.seq[0].unroll, 5);
  EXPECT_EQ(k.name, "ex_GPU_3");
}

TEST(Lower, IllegalConfigRejected) {
  tcr::TcrProgram p = eqn1_program();
  tcr::KernelConfig cfg;
  cfg.thread_x = "l";  // reduction index on the grid
  cfg.sequential = {"i", "j", "k"};
  EXPECT_THROW(lower_kernel(p, 2, cfg), InternalError);
}

TEST(Lower, PlanDataMovement) {
  tcr::TcrProgram p = eqn1_program();
  GpuPlan plan = lower_program(p, default_recipe(p));
  ASSERT_EQ(plan.kernels.size(), 3u);
  // Inputs C, U, B, A head down; V heads down too (accumulating final
  // output with live prior contents) and comes back.
  for (const char* t : {"A", "B", "C", "U", "V"}) {
    EXPECT_NE(std::find(plan.h2d.begin(), plan.h2d.end(), t),
              plan.h2d.end())
        << t;
  }
  EXPECT_EQ(plan.d2h, (std::vector<std::string>{"V"}));
  // Temporaries stay resident and are zero-initialized.
  EXPECT_EQ(plan.zero_init.size(), 2u);
  EXPECT_EQ(plan.tensor_sizes.at("V"), 1000);
  EXPECT_EQ(plan.tensor_sizes.at("A"), 100);
}

TEST(Lower, NonAccumulatingOutputZeroInitInsteadOfTransfer) {
  tcr::TcrProgram p = eqn1_program();
  p.operations.back().accumulate = false;
  GpuPlan plan = lower_program(p, default_recipe(p));
  EXPECT_EQ(std::find(plan.h2d.begin(), plan.h2d.end(), "V"),
            plan.h2d.end());
  EXPECT_NE(std::find(plan.zero_init.begin(), plan.zero_init.end(), "V"),
            plan.zero_init.end());
}

TEST(Lower, RecipeSizeMustMatchOperationCount) {
  tcr::TcrProgram p = eqn1_program();
  Recipe r = default_recipe(p);
  r.pop_back();
  EXPECT_THROW(lower_program(p, r), InternalError);
}

TEST(Lower, OpenAccRecipesDifferInScalarReplacement) {
  tcr::TcrProgram p = eqn1_program();
  Recipe naive = openacc_naive_recipe(p);
  Recipe opt = openacc_optimized_recipe(p);
  ASSERT_EQ(naive.size(), 3u);
  ASSERT_EQ(opt.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_FALSE(naive[i].scalar_replacement);
    EXPECT_TRUE(opt[i].scalar_replacement);
  }
}

TEST(Lower, DiagonalAccessMergesTerms) {
  tcr::TcrProgram p = tcr::parse_tcr(R"(
diag
define:
I = 4
variables:
A:(I,I)
y:(I)
operations:
y:(i) += A:(i,i)
)");
  tcr::KernelConfig cfg;
  cfg.thread_x = "i";
  Kernel k = lower_kernel(p, 0, cfg);
  EXPECT_EQ(k.ins[0].coef_of("i"), 5);  // 4 + 1
}

TEST(Lower, PlanCudaSourceContainsAllKernels) {
  tcr::TcrProgram p = eqn1_program();
  GpuPlan plan = lower_program(p, default_recipe(p));
  std::string src = plan.cuda_source();
  EXPECT_NE(src.find("ex_GPU_1"), std::string::npos);
  EXPECT_NE(src.find("ex_GPU_2"), std::string::npos);
  EXPECT_NE(src.find("ex_GPU_3"), std::string::npos);
  EXPECT_NE(src.find("cudaMemset(d_temp1"), std::string::npos);
}

}  // namespace
}  // namespace barracuda::chill
