#include "surf/surf.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace barracuda::surf {
namespace {

/// Synthetic tuning landscape: a sharp optimum at one configuration plus
/// structure the model can learn (feature 0 strongly predictive).
struct Landscape {
  std::vector<std::vector<double>> features;
  std::vector<double> values;

  static Landscape make(std::size_t n, std::uint64_t seed) {
    Rng rng(seed);
    Landscape l;
    for (std::size_t i = 0; i < n; ++i) {
      double a = rng.uniform(), b = rng.uniform(), c = rng.uniform();
      l.features.push_back({a, b, c});
      // Time: mostly driven by a, small noise-like contribution from b,c.
      l.values.push_back(10.0 * a + 0.5 * b + 0.1 * c);
    }
    return l;
  }

  Objective objective(int* count = nullptr) const {
    return [this, count](std::size_t i) {
      if (count) ++*count;
      return values[i];
    };
  }

  double optimum() const {
    double best = values[0];
    for (double v : values) best = std::min(best, v);
    return best;
  }
};

TEST(Surf, RespectsEvaluationBudget) {
  Landscape l = Landscape::make(500, 1);
  int evals = 0;
  SearchOptions opt;
  opt.max_evaluations = 60;
  opt.batch_size = 10;
  SearchResult r = surf_search(l.features, l.objective(&evals), opt);
  EXPECT_EQ(evals, 60);
  EXPECT_EQ(r.evaluations(), 60u);
}

TEST(Surf, NeverEvaluatesSameConfigurationTwice) {
  Landscape l = Landscape::make(300, 2);
  SearchOptions opt;
  opt.max_evaluations = 120;
  opt.batch_size = 15;
  SearchResult r = surf_search(l.features, l.objective(), opt);
  std::set<std::size_t> seen;
  for (const auto& [i, v] : r.history) {
    EXPECT_TRUE(seen.insert(i).second) << "re-evaluated " << i;
  }
}

TEST(Surf, BudgetAtPoolSizeFindsGlobalOptimum) {
  Landscape l = Landscape::make(80, 3);
  SearchOptions opt;
  opt.max_evaluations = 80;
  opt.batch_size = 8;
  SearchResult r = surf_search(l.features, l.objective(), opt);
  EXPECT_DOUBLE_EQ(r.best_value, l.optimum());
}

TEST(Surf, BeatsRandomSearchOnStructuredLandscape) {
  // Averaged over seeds, the model-guided search should find better
  // configurations than uniform random sampling at the same budget.
  double surf_total = 0, random_total = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Landscape l = Landscape::make(2000, 100 + seed);
    SearchOptions opt;
    opt.max_evaluations = 60;
    opt.batch_size = 10;
    opt.seed = seed;
    surf_total += surf_search(l.features, l.objective(), opt).best_value;
    random_total +=
        random_search(l.features.size(), l.objective(), opt).best_value;
  }
  EXPECT_LT(surf_total, random_total);
}

TEST(Surf, HistoryTracksBestCorrectly) {
  Landscape l = Landscape::make(100, 4);
  SearchOptions opt;
  opt.max_evaluations = 50;
  SearchResult r = surf_search(l.features, l.objective(), opt);
  double best = INFINITY;
  for (const auto& [i, v] : r.history) {
    best = std::min(best, v);
    EXPECT_DOUBLE_EQ(v, l.values[i]);
  }
  EXPECT_DOUBLE_EQ(r.best_value, best);
  EXPECT_DOUBLE_EQ(l.values[r.best_index], r.best_value);
  EXPECT_DOUBLE_EQ(r.best_after(r.evaluations()), best);
  EXPECT_GE(r.best_after(10), best);
}

TEST(Surf, DeterministicGivenSeed) {
  Landscape l = Landscape::make(400, 5);
  SearchOptions opt;
  opt.max_evaluations = 40;
  opt.seed = 77;
  SearchResult a = surf_search(l.features, l.objective(), opt);
  SearchResult b = surf_search(l.features, l.objective(), opt);
  EXPECT_EQ(a.history, b.history);
}

TEST(Surf, PoolSmallerThanBatchStillWorks) {
  Landscape l = Landscape::make(5, 6);
  SearchOptions opt;
  opt.max_evaluations = 100;
  opt.batch_size = 10;
  SearchResult r = surf_search(l.features, l.objective(), opt);
  EXPECT_EQ(r.evaluations(), 5u);
  EXPECT_DOUBLE_EQ(r.best_value, l.optimum());
}

TEST(RandomSearch, SamplesWithoutReplacementWithinBudget) {
  Landscape l = Landscape::make(50, 7);
  SearchOptions opt;
  opt.max_evaluations = 50;
  SearchResult r = random_search(50, l.objective(), opt);
  std::set<std::size_t> seen;
  for (const auto& [i, v] : r.history) seen.insert(i);
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_DOUBLE_EQ(r.best_value, l.optimum());
}

TEST(ExhaustiveSearch, AlwaysFindsOptimum) {
  Landscape l = Landscape::make(123, 8);
  SearchResult r = exhaustive_search(123, l.objective());
  EXPECT_EQ(r.evaluations(), 123u);
  EXPECT_DOUBLE_EQ(r.best_value, l.optimum());
}

TEST(Surf, EmptyPoolThrows) {
  EXPECT_THROW(
      surf_search({}, [](std::size_t) { return 0.0; }, SearchOptions{}),
      InternalError);
  EXPECT_THROW(
      random_search(0, [](std::size_t) { return 0.0; }, SearchOptions{}),
      InternalError);
}

}  // namespace
}  // namespace barracuda::surf
