#include "surf/surf.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace barracuda::surf {
namespace {

/// Synthetic tuning landscape: a sharp optimum at one configuration plus
/// structure the model can learn (feature 0 strongly predictive).
struct Landscape {
  std::vector<std::vector<double>> features;
  std::vector<double> values;

  static Landscape make(std::size_t n, std::uint64_t seed) {
    Rng rng(seed);
    Landscape l;
    for (std::size_t i = 0; i < n; ++i) {
      double a = rng.uniform(), b = rng.uniform(), c = rng.uniform();
      l.features.push_back({a, b, c});
      // Time: mostly driven by a, small noise-like contribution from b,c.
      l.values.push_back(10.0 * a + 0.5 * b + 0.1 * c);
    }
    return l;
  }

  Objective objective(int* count = nullptr) const {
    return [this, count](std::size_t i) {
      if (count) ++*count;
      return values[i];
    };
  }

  double optimum() const {
    double best = values[0];
    for (double v : values) best = std::min(best, v);
    return best;
  }
};

TEST(Surf, RespectsEvaluationBudget) {
  Landscape l = Landscape::make(500, 1);
  int evals = 0;
  SearchOptions opt;
  opt.max_evaluations = 60;
  opt.batch_size = 10;
  SearchResult r = surf_search(l.features, l.objective(&evals), opt);
  EXPECT_EQ(evals, 60);
  EXPECT_EQ(r.evaluations(), 60u);
}

TEST(Surf, NeverEvaluatesSameConfigurationTwice) {
  Landscape l = Landscape::make(300, 2);
  SearchOptions opt;
  opt.max_evaluations = 120;
  opt.batch_size = 15;
  SearchResult r = surf_search(l.features, l.objective(), opt);
  std::set<std::size_t> seen;
  for (const auto& [i, v] : r.history) {
    EXPECT_TRUE(seen.insert(i).second) << "re-evaluated " << i;
  }
}

TEST(Surf, BudgetAtPoolSizeFindsGlobalOptimum) {
  Landscape l = Landscape::make(80, 3);
  SearchOptions opt;
  opt.max_evaluations = 80;
  opt.batch_size = 8;
  SearchResult r = surf_search(l.features, l.objective(), opt);
  EXPECT_DOUBLE_EQ(r.best_value, l.optimum());
}

TEST(Surf, BeatsRandomSearchOnStructuredLandscape) {
  // Averaged over seeds, the model-guided search should find better
  // configurations than uniform random sampling at the same budget.
  double surf_total = 0, random_total = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Landscape l = Landscape::make(2000, 100 + seed);
    SearchOptions opt;
    opt.max_evaluations = 60;
    opt.batch_size = 10;
    opt.seed = seed;
    surf_total += surf_search(l.features, l.objective(), opt).best_value;
    random_total +=
        random_search(l.features.size(), l.objective(), opt).best_value;
  }
  EXPECT_LT(surf_total, random_total);
}

// best_after(n) is the best value among the first n evaluations — a
// prefix query.  n = 0 names an empty prefix and is rejected.
TEST(SearchResult, BestAfterPrefixSemantics) {
  SearchResult r;
  r.history = {{4, 7.0}, {2, 3.0}, {9, 5.0}, {1, 1.0}};
  EXPECT_DOUBLE_EQ(r.best_after(1), 7.0);
  EXPECT_DOUBLE_EQ(r.best_after(2), 3.0);
  EXPECT_DOUBLE_EQ(r.best_after(3), 3.0);
  EXPECT_DOUBLE_EQ(r.best_after(4), 1.0);
  // n past the end clamps to the full history.
  EXPECT_DOUBLE_EQ(r.best_after(100), 1.0);
}

TEST(SearchResult, BestAfterZeroThrows) {
  SearchResult r;
  r.history = {{0, 2.0}, {1, 1.0}};
  EXPECT_THROW(r.best_after(0), InternalError);
}

TEST(Surf, HistoryTracksBestCorrectly) {
  Landscape l = Landscape::make(100, 4);
  SearchOptions opt;
  opt.max_evaluations = 50;
  SearchResult r = surf_search(l.features, l.objective(), opt);
  double best = INFINITY;
  for (const auto& [i, v] : r.history) {
    best = std::min(best, v);
    EXPECT_DOUBLE_EQ(v, l.values[i]);
  }
  EXPECT_DOUBLE_EQ(r.best_value, best);
  EXPECT_DOUBLE_EQ(l.values[r.best_index], r.best_value);
  EXPECT_DOUBLE_EQ(r.best_after(r.evaluations()), best);
  EXPECT_GE(r.best_after(10), best);
}

TEST(Surf, DeterministicGivenSeed) {
  Landscape l = Landscape::make(400, 5);
  SearchOptions opt;
  opt.max_evaluations = 40;
  opt.seed = 77;
  SearchResult a = surf_search(l.features, l.objective(), opt);
  SearchResult b = surf_search(l.features, l.objective(), opt);
  EXPECT_EQ(a.history, b.history);
}

// The Evaluate_Parallel determinism contract: farming batches across
// worker threads must not change a single bit of the search record.
TEST(Surf, ParallelEvaluationBitIdenticalToSequential) {
  Landscape l = Landscape::make(400, 11);
  SearchOptions opt;
  opt.max_evaluations = 60;
  opt.batch_size = 10;
  opt.seed = 13;
  opt.n_jobs = 1;
  SearchResult sequential = surf_search(l.features, l.objective(), opt);
  opt.n_jobs = 4;
  SearchResult parallel = surf_search(l.features, l.objective(), opt);
  EXPECT_EQ(sequential.history, parallel.history);
  EXPECT_EQ(sequential.best_index, parallel.best_index);
  EXPECT_EQ(sequential.best_value, parallel.best_value);
  EXPECT_EQ(sequential.importances, parallel.importances);
}

TEST(RandomSearch, ParallelEvaluationBitIdenticalToSequential) {
  Landscape l = Landscape::make(200, 12);
  SearchOptions opt;
  opt.max_evaluations = 64;
  opt.batch_size = 7;  // deliberately not dividing the budget
  opt.seed = 5;
  opt.n_jobs = 1;
  SearchResult sequential = random_search(200, l.objective(), opt);
  opt.n_jobs = 4;
  SearchResult parallel = random_search(200, l.objective(), opt);
  EXPECT_EQ(sequential.history, parallel.history);
  EXPECT_EQ(sequential.best_index, parallel.best_index);
  EXPECT_EQ(sequential.best_value, parallel.best_value);
}

// Stochastic objectives draw from a per-candidate Rng forked in batch
// order, so even noisy measurements reproduce for every n_jobs setting.
TEST(Surf, StochasticObjectiveReproducibleAcrossJobCounts) {
  Landscape l = Landscape::make(300, 13);
  StochasticObjective noisy = [&](std::size_t i, Rng& rng) {
    return l.values[i] + rng.normal(0.0, 0.01);
  };
  SearchOptions opt;
  opt.max_evaluations = 50;
  opt.seed = 21;
  opt.n_jobs = 1;
  SearchResult sequential = surf_search(l.features, noisy, opt);
  opt.n_jobs = 4;
  SearchResult parallel = surf_search(l.features, noisy, opt);
  EXPECT_EQ(sequential.history, parallel.history);

  opt.n_jobs = 1;
  SearchResult rand_seq = random_search(300, noisy, opt);
  opt.n_jobs = 3;
  SearchResult rand_par = random_search(300, noisy, opt);
  EXPECT_EQ(rand_seq.history, rand_par.history);
}

TEST(BatchEvaluator, ReturnsValuesInBatchOrder) {
  BatchEvaluator evaluate(
      [](std::size_t i) { return static_cast<double>(i) * 2.0; }, 4);
  std::vector<std::size_t> batch{9, 1, 4, 7, 0, 3};
  std::vector<double> values = evaluate(batch);
  ASSERT_EQ(values.size(), batch.size());
  for (std::size_t b = 0; b < batch.size(); ++b) {
    EXPECT_DOUBLE_EQ(values[b], static_cast<double>(batch[b]) * 2.0);
  }
}

TEST(BatchEvaluator, PropagatesObjectiveExceptions) {
  BatchEvaluator evaluate(
      [](std::size_t i) -> double {
        if (i == 2) throw Error("measurement failed");
        return 0.0;
      },
      4);
  EXPECT_THROW(evaluate({0, 1, 2, 3}), Error);
}

TEST(Surf, PoolSmallerThanBatchStillWorks) {
  Landscape l = Landscape::make(5, 6);
  SearchOptions opt;
  opt.max_evaluations = 100;
  opt.batch_size = 10;
  SearchResult r = surf_search(l.features, l.objective(), opt);
  EXPECT_EQ(r.evaluations(), 5u);
  EXPECT_DOUBLE_EQ(r.best_value, l.optimum());
}

TEST(RandomSearch, SamplesWithoutReplacementWithinBudget) {
  Landscape l = Landscape::make(50, 7);
  SearchOptions opt;
  opt.max_evaluations = 50;
  SearchResult r = random_search(50, l.objective(), opt);
  std::set<std::size_t> seen;
  for (const auto& [i, v] : r.history) seen.insert(i);
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_DOUBLE_EQ(r.best_value, l.optimum());
}

TEST(ExhaustiveSearch, AlwaysFindsOptimum) {
  Landscape l = Landscape::make(123, 8);
  SearchResult r = exhaustive_search(123, l.objective());
  EXPECT_EQ(r.evaluations(), 123u);
  EXPECT_DOUBLE_EQ(r.best_value, l.optimum());
}

TEST(Surf, NegativeJobsThrows) {
  Landscape l = Landscape::make(20, 9);
  SearchOptions opt;
  opt.n_jobs = -1;
  EXPECT_THROW(surf_search(l.features, l.objective(), opt), Error);
  EXPECT_THROW(random_search(20, l.objective(), opt), Error);
}

// Prepaid ("free cache hit") accounting: configurations the predicate
// marks prepaid cost 0 against max_evaluations, so a warm search walks
// past its budget's worth of known configurations and spends the whole
// budget on new measurements.
TEST(Surf, PrepaidEvaluationsDoNotConsumeBudget) {
  Landscape l = Landscape::make(200, 14);
  SearchOptions opt;
  opt.max_evaluations = 30;
  opt.batch_size = 10;
  opt.seed = 3;

  // Cold run: everything is paid.
  int cold_calls = 0;
  SearchResult cold = surf_search(l.features, l.objective(&cold_calls), opt);
  EXPECT_EQ(cold.evaluations(), 30u);

  // Warm run: the cold run's picks are prepaid.  The search replays them
  // for free and still pays for 30 new configurations.
  std::set<std::size_t> known;
  for (const auto& [i, v] : cold.history) known.insert(i);
  int warm_paid = 0;
  Objective counting = [&](std::size_t i) {
    if (!known.count(i)) ++warm_paid;
    return l.values[i];
  };
  opt.prepaid = [&](std::size_t i) { return known.count(i) > 0; };
  SearchResult warm = surf_search(l.features, counting, opt);
  EXPECT_GT(warm.evaluations(), 30u);
  EXPECT_EQ(warm_paid, 30);
  // More information can only help: the warm best is at least as good.
  EXPECT_LE(warm.best_value, cold.best_value);
}

TEST(RandomSearch, PrepaidEvaluationsDoNotConsumeBudget) {
  Landscape l = Landscape::make(100, 15);
  SearchOptions opt;
  opt.max_evaluations = 20;
  opt.seed = 4;
  SearchResult cold = random_search(100, l.objective(), opt);
  EXPECT_EQ(cold.evaluations(), 20u);

  std::set<std::size_t> known;
  for (const auto& [i, v] : cold.history) known.insert(i);
  opt.prepaid = [&](std::size_t i) { return known.count(i) > 0; };
  int warm_paid = 0;
  Objective counting = [&](std::size_t i) {
    if (!known.count(i)) ++warm_paid;
    return l.values[i];
  };
  SearchResult warm = random_search(100, counting, opt);
  // The permutation prefix is shared, so the first 20 draws replay free
  // and 20 more are paid.
  EXPECT_EQ(warm.evaluations(), 40u);
  EXPECT_EQ(warm_paid, 20);
  for (std::size_t n = 1; n <= 20; ++n) {
    EXPECT_EQ(warm.history[n - 1], cold.history[n - 1]);
  }
}

// Degenerate prepaid case: when every configuration in the pool is
// prepaid, the search terminates by pool exhaustion, not budget.
TEST(Surf, AllPrepaidPoolWalksToExhaustion) {
  Landscape l = Landscape::make(60, 16);
  SearchOptions opt;
  opt.max_evaluations = 10;
  opt.batch_size = 8;
  opt.prepaid = [](std::size_t) { return true; };
  SearchResult r = surf_search(l.features, l.objective(), opt);
  EXPECT_EQ(r.evaluations(), 60u);
  EXPECT_DOUBLE_EQ(r.best_value, l.optimum());

  SearchResult rr = random_search(60, l.objective(), opt);
  EXPECT_EQ(rr.evaluations(), 60u);
  EXPECT_DOUBLE_EQ(rr.best_value, l.optimum());
}

// Without a prepaid predicate the reworked loops must behave exactly as
// before (the budget counts every evaluation).
TEST(Surf, NoPrepaidPredicateMeansEveryEvaluationIsCharged) {
  Landscape l = Landscape::make(150, 18);
  SearchOptions opt;
  opt.max_evaluations = 25;
  SearchResult r = surf_search(l.features, l.objective(), opt);
  EXPECT_EQ(r.evaluations(), 25u);
}

// Cache-aware skip mode (cached predicate, no prepaid accounting):
// already-cached configurations are excluded from the measurement
// batches entirely, so the budget buys only new measurements and the
// duplicate meter stays at zero.
TEST(Surf, CacheAwareSkipsCachedConfigurations) {
  Landscape l = Landscape::make(200, 21);
  SearchOptions opt;
  opt.max_evaluations = 30;
  opt.batch_size = 10;
  opt.seed = 5;
  SearchResult cold = surf_search(l.features, l.objective(), opt);

  std::set<std::size_t> known;
  for (const auto& [i, v] : cold.history) known.insert(i);
  opt.cached = [&](std::size_t i) { return known.count(i) > 0; };
  opt.cache_aware = true;
  SearchResult warm = surf_search(l.features, l.objective(), opt);
  EXPECT_EQ(warm.evaluations(), 30u);
  EXPECT_EQ(warm.duplicate_proposals, 0u);
  for (const auto& [i, v] : warm.history) {
    EXPECT_EQ(known.count(i), 0u) << "proposed cached config " << i;
  }
}

// Cache-aware + prepaid (the free_cache_hits pairing): every cached
// pool entry replays for free up front, in pool order, so the warm
// search starts from everything the cache knows — including the cold
// run's best — and then spends the full budget on new configurations.
TEST(Surf, CacheAwareReplaysCachedEntriesFirstWhenPrepaid) {
  Landscape l = Landscape::make(200, 22);
  SearchOptions opt;
  opt.max_evaluations = 30;
  opt.batch_size = 10;
  opt.seed = 6;
  SearchResult cold = surf_search(l.features, l.objective(), opt);

  std::set<std::size_t> known;
  for (const auto& [i, v] : cold.history) known.insert(i);
  auto in_cache = [&](std::size_t i) { return known.count(i) > 0; };
  opt.cached = in_cache;
  opt.prepaid = in_cache;
  opt.cache_aware = true;
  int warm_paid = 0;
  Objective counting = [&](std::size_t i) {
    if (!known.count(i)) ++warm_paid;
    return l.values[i];
  };
  SearchResult warm = surf_search(l.features, counting, opt);

  // Replay prefix: the cached entries, in ascending pool order.
  std::vector<std::size_t> expected(known.begin(), known.end());
  ASSERT_GE(warm.history.size(), expected.size());
  for (std::size_t n = 0; n < expected.size(); ++n) {
    EXPECT_EQ(warm.history[n].first, expected[n]) << "replay slot " << n;
  }
  // Free replays are not duplicates — the whole budget bought new
  // measurements on top of the replayed knowledge.
  EXPECT_EQ(warm.duplicate_proposals, 0u);
  EXPECT_EQ(warm_paid, 30);
  EXPECT_EQ(warm.evaluations(), known.size() + 30);
  // The warm search holds everything the cold one saw, so its best can
  // only match or improve.
  EXPECT_LE(warm.best_value, cold.best_value);
}

// Metering without reordering: a warm re-run with only `cached` set
// (cache_aware off) replays the cold search bit for bit and reports how
// much of its budget went to already-measured configurations.
TEST(Surf, DuplicateProposalsAreMeteredWithoutReordering) {
  Landscape l = Landscape::make(150, 23);
  SearchOptions opt;
  opt.max_evaluations = 25;
  opt.batch_size = 8;
  opt.seed = 7;
  SearchResult cold = surf_search(l.features, l.objective(), opt);
  EXPECT_EQ(cold.duplicate_proposals, 0u);  // no cached predicate at all

  std::set<std::size_t> known;
  for (const auto& [i, v] : cold.history) known.insert(i);
  opt.cached = [&](std::size_t i) { return known.count(i) > 0; };
  SearchResult warm = surf_search(l.features, l.objective(), opt);
  // Identical trajectory (metering must not perturb the search)...
  ASSERT_EQ(warm.history.size(), cold.history.size());
  for (std::size_t n = 0; n < cold.history.size(); ++n) {
    EXPECT_EQ(warm.history[n], cold.history[n]);
  }
  // ...and every charged proposal was a duplicate.
  EXPECT_EQ(warm.duplicate_proposals, warm.evaluations());
}

TEST(RandomSearch, DuplicateProposalsAreMeteredWithoutReordering) {
  Landscape l = Landscape::make(100, 24);
  SearchOptions opt;
  opt.max_evaluations = 20;
  opt.seed = 8;
  SearchResult cold = random_search(100, l.objective(), opt);

  std::set<std::size_t> known;
  for (const auto& [i, v] : cold.history) known.insert(i);
  opt.cached = [&](std::size_t i) { return known.count(i) > 0; };
  SearchResult warm = random_search(100, l.objective(), opt);
  ASSERT_EQ(warm.history.size(), cold.history.size());
  for (std::size_t n = 0; n < cold.history.size(); ++n) {
    EXPECT_EQ(warm.history[n], cold.history[n]);
  }
  EXPECT_EQ(warm.duplicate_proposals, warm.evaluations());
}

// The determinism contract extends to cache-aware ordering: proposal
// selection, replay order, and the duplicate meter all live on the
// driver thread, so every n_jobs produces the identical search.
TEST(Surf, CacheAwareSearchIsBitIdenticalForEveryJobCount) {
  Landscape l = Landscape::make(200, 25);
  SearchOptions base;
  base.max_evaluations = 30;
  base.batch_size = 10;
  base.seed = 9;
  SearchResult cold = surf_search(l.features, l.objective(), base);
  std::set<std::size_t> known;
  for (const auto& [i, v] : cold.history) known.insert(i);
  auto in_cache = [&](std::size_t i) { return known.count(i) > 0; };

  for (bool with_prepaid : {false, true}) {
    SearchOptions opt = base;
    opt.cached = in_cache;
    if (with_prepaid) opt.prepaid = in_cache;
    opt.cache_aware = true;
    opt.n_jobs = 1;
    SearchResult reference = surf_search(l.features, l.objective(), opt);
    for (int jobs : {2, 4}) {
      opt.n_jobs = jobs;
      SearchResult r = surf_search(l.features, l.objective(), opt);
      ASSERT_EQ(r.history.size(), reference.history.size()) << jobs;
      for (std::size_t n = 0; n < reference.history.size(); ++n) {
        EXPECT_EQ(r.history[n], reference.history[n]) << jobs;
      }
      EXPECT_EQ(r.duplicate_proposals, reference.duplicate_proposals);
      EXPECT_DOUBLE_EQ(r.best_value, reference.best_value);
    }
  }
}

// Degenerate case: everything is cached but there is no free-hit
// accounting.  Skipping all of it would deadlock the search at zero
// evaluations, so the init batch falls back to the plain random prefix
// and the budget is (meterably) spent on duplicates.
TEST(Surf, AllCachedPoolWithoutPrepaidStillSearches) {
  Landscape l = Landscape::make(60, 26);
  SearchOptions opt;
  opt.max_evaluations = 10;
  opt.batch_size = 8;
  opt.cached = [](std::size_t) { return true; };
  opt.cache_aware = true;
  SearchResult r = surf_search(l.features, l.objective(), opt);
  EXPECT_GE(r.evaluations(), 8u);  // at least the fallback init batch
  EXPECT_EQ(r.duplicate_proposals, r.evaluations());
}

TEST(Surf, EmptyPoolThrows) {
  EXPECT_THROW(
      surf_search({}, [](std::size_t) { return 0.0; }, SearchOptions{}),
      InternalError);
  EXPECT_THROW(
      random_search(0, [](std::size_t) { return 0.0; }, SearchOptions{}),
      InternalError);
}

}  // namespace
}  // namespace barracuda::surf
