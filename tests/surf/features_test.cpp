#include "surf/features.hpp"

#include <gtest/gtest.h>

#include <set>

#include "octopi/parser.hpp"

namespace barracuda::surf {
namespace {

std::vector<tcr::TcrProgram> eqn1_variants(std::int64_t n = 10) {
  auto stmt = octopi::parse_statement(
                  "V[i j k] = Sum([l m n], A[l k] * B[m j] * C[n i] * U[l m n])")
                  .to_contraction();
  tensor::Extents ext;
  for (const char* ix : {"i", "j", "k", "l", "m", "n"}) ext[ix] = n;
  std::vector<tcr::TcrProgram> programs;
  for (const auto& v : octopi::enumerate_variants(stmt, ext)) {
    programs.push_back(tcr::from_variant(v, ext));
  }
  return programs;
}

TEST(Features, DimensionIsFixedAcrossVariants) {
  auto variants = eqn1_variants();
  RecipeFeaturizer fz(variants);
  ASSERT_EQ(variants.size(), 15u);
  // Vocabulary: i,j,k,l,m,n plus the unused sentinel.
  EXPECT_EQ(fz.vocabulary().size(), 7u);
  // All encodings share fz.dim().
  for (std::size_t v = 0; v < variants.size(); ++v) {
    std::vector<tcr::KernelConfig> recipe;
    for (const auto& nest : tcr::build_loop_nests(variants[v])) {
      recipe.push_back(tcr::optimized_openacc_config(nest));
    }
    EXPECT_EQ(fz.encode(v, recipe).size(), fz.dim());
  }
}

TEST(Features, VariantIndexOneHot) {
  auto variants = eqn1_variants();
  RecipeFeaturizer fz(variants);
  std::vector<tcr::KernelConfig> recipe;
  for (const auto& nest : tcr::build_loop_nests(variants[3])) {
    recipe.push_back(tcr::optimized_openacc_config(nest));
  }
  auto x = fz.encode(3, recipe);
  for (std::size_t v = 0; v < variants.size(); ++v) {
    EXPECT_DOUBLE_EQ(x[v], v == 3 ? 1.0 : 0.0);
  }
}

TEST(Features, DistinctConfigsEncodeDistinctly) {
  auto variants = eqn1_variants();
  RecipeFeaturizer fz(variants);
  auto nests = tcr::build_loop_nests(variants[0]);
  auto configs =
      tcr::enumerate_configs(nests[0], tcr::derive_space(nests[0]));
  ASSERT_GE(configs.size(), 2u);
  std::vector<tcr::KernelConfig> base;
  for (std::size_t k = 1; k < nests.size(); ++k) {
    base.push_back(tcr::optimized_openacc_config(nests[k]));
  }
  std::vector<tcr::KernelConfig> r1{configs[0]};
  std::vector<tcr::KernelConfig> r2{configs[configs.size() / 2]};
  r1.insert(r1.end(), base.begin(), base.end());
  r2.insert(r2.end(), base.begin(), base.end());
  EXPECT_NE(fz.encode(0, r1), fz.encode(0, r2));
}

TEST(Features, UnrollIsNumericNotOneHot) {
  auto variants = eqn1_variants();
  RecipeFeaturizer fz(variants);
  auto nests = tcr::build_loop_nests(variants[0]);
  std::vector<tcr::KernelConfig> recipe;
  for (const auto& nest : nests) {
    recipe.push_back(tcr::optimized_openacc_config(nest));
  }
  recipe[0].unroll = 7;
  auto x7 = fz.encode(0, recipe);
  recipe[0].unroll = 3;
  auto x3 = fz.encode(0, recipe);
  // Exactly one feature differs, by exactly 4.
  int diffs = 0;
  double delta = 0;
  for (std::size_t d = 0; d < x7.size(); ++d) {
    if (x7[d] != x3[d]) {
      ++diffs;
      delta = x7[d] - x3[d];
    }
  }
  EXPECT_EQ(diffs, 1);
  EXPECT_DOUBLE_EQ(delta, 4.0);
}

TEST(Features, UnknownIndexRejected) {
  auto variants = eqn1_variants();
  RecipeFeaturizer fz(variants);
  std::vector<tcr::KernelConfig> recipe(3);
  recipe[0].thread_x = "zz";
  EXPECT_THROW(fz.encode(0, recipe), InternalError);
}

TEST(Features, EmptyVariantListRejected) {
  EXPECT_THROW(RecipeFeaturizer fz({}), InternalError);
}


TEST(Features, FeatureNamesDecodeEveryDimension) {
  auto variants = eqn1_variants();
  RecipeFeaturizer fz(variants);
  std::set<std::string> names;
  for (std::size_t d = 0; d < fz.dim(); ++d) {
    EXPECT_TRUE(names.insert(fz.feature_name(d)).second)
        << "duplicate name at dim " << d;
  }
  EXPECT_EQ(fz.feature_name(0), "variant#1");
  EXPECT_EQ(fz.feature_name(14), "variant#15");
  // The first per-kernel dimension is kernel1.TX over the vocabulary.
  std::string first = fz.feature_name(15);
  EXPECT_EQ(first.rfind("kernel1.TX=", 0), 0u) << first;
  EXPECT_THROW(fz.feature_name(fz.dim()), InternalError);
}

}  // namespace
}  // namespace barracuda::surf
