#include "surf/extratrees.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace barracuda::surf {
namespace {

TEST(ExtraTrees, FitsConstantFunctionExactly) {
  std::vector<std::vector<double>> X{{0}, {1}, {2}, {3}};
  std::vector<double> y{5, 5, 5, 5};
  ExtraTreesRegressor model;
  model.fit(X, y);
  EXPECT_DOUBLE_EQ(model.predict({1.5}), 5.0);
}

TEST(ExtraTrees, SeparatesTwoClusters) {
  std::vector<std::vector<double>> X;
  std::vector<double> y;
  for (int i = 0; i < 20; ++i) {
    X.push_back({static_cast<double>(i % 2), static_cast<double>(i)});
    y.push_back(i % 2 ? 10.0 : -10.0);
  }
  ExtraTreesOptions opt;
  opt.min_samples_split = 2;
  ExtraTreesRegressor model(opt);
  model.fit(X, y);
  EXPECT_NEAR(model.predict({1.0, 7.0}), 10.0, 2.0);
  EXPECT_NEAR(model.predict({0.0, 8.0}), -10.0, 2.0);
}

TEST(ExtraTrees, LearnsSmoothFunctionApproximately) {
  Rng rng(7);
  std::vector<std::vector<double>> X;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    double a = rng.uniform(0, 1), b = rng.uniform(0, 1);
    X.push_back({a, b});
    y.push_back(3 * a - 2 * b);
  }
  ExtraTreesOptions opt;
  opt.n_trees = 50;
  opt.min_samples_split = 2;
  ExtraTreesRegressor model(opt);
  model.fit(X, y);
  double err = 0;
  int trials = 50;
  for (int i = 0; i < trials; ++i) {
    double a = rng.uniform(0.1, 0.9), b = rng.uniform(0.1, 0.9);
    err += std::fabs(model.predict({a, b}) - (3 * a - 2 * b));
  }
  EXPECT_LT(err / trials, 0.5);
}

TEST(ExtraTrees, DeterministicGivenSeed) {
  Rng rng(9);
  std::vector<std::vector<double>> X;
  std::vector<double> y;
  for (int i = 0; i < 50; ++i) {
    X.push_back({rng.uniform(), rng.uniform(), rng.uniform()});
    y.push_back(rng.uniform());
  }
  ExtraTreesOptions opt;
  opt.seed = 42;
  ExtraTreesRegressor a(opt), b(opt);
  a.fit(X, y);
  b.fit(X, y);
  for (int i = 0; i < 10; ++i) {
    std::vector<double> x{rng.uniform(), rng.uniform(), rng.uniform()};
    EXPECT_DOUBLE_EQ(a.predict(x), b.predict(x));
  }
}

TEST(ExtraTrees, HandlesOneHotFeatures) {
  // Binarized categorical input, as SURF uses: value determined by which
  // of 4 one-hot slots is set.
  std::vector<std::vector<double>> X;
  std::vector<double> y;
  for (int rep = 0; rep < 10; ++rep) {
    for (int c = 0; c < 4; ++c) {
      std::vector<double> x(4, 0.0);
      x[static_cast<std::size_t>(c)] = 1.0;
      X.push_back(x);
      y.push_back(c * 2.0);
    }
  }
  ExtraTreesOptions opt;
  opt.n_trees = 40;
  opt.min_samples_split = 2;
  opt.k_features = 4;
  ExtraTreesRegressor model(opt);
  model.fit(X, y);
  for (int c = 0; c < 4; ++c) {
    std::vector<double> x(4, 0.0);
    x[static_cast<std::size_t>(c)] = 1.0;
    EXPECT_NEAR(model.predict(x), c * 2.0, 0.6);
  }
}

TEST(ExtraTrees, SingleSampleFit) {
  ExtraTreesRegressor model;
  model.fit({{1.0, 2.0}}, {7.0});
  EXPECT_DOUBLE_EQ(model.predict({0.0, 0.0}), 7.0);
}

TEST(ExtraTrees, ErrorsOnMisuse) {
  ExtraTreesRegressor model;
  EXPECT_THROW(model.predict({1.0}), InternalError);
  EXPECT_THROW(model.fit({}, {}), InternalError);
  EXPECT_THROW(model.fit({{1.0}, {2.0, 3.0}}, {1.0, 2.0}), InternalError);
  model.fit({{1.0}, {2.0}}, {1.0, 2.0});
  EXPECT_THROW(model.predict({1.0, 2.0}), InternalError);
}


TEST(ExtraTrees, FeatureImportancesIdentifyTheSignal) {
  // y depends overwhelmingly on feature 0; importances must say so.
  Rng rng(31);
  std::vector<std::vector<double>> X;
  std::vector<double> y;
  for (int i = 0; i < 300; ++i) {
    std::vector<double> row{rng.uniform(), rng.uniform(), rng.uniform(),
                            rng.uniform()};
    y.push_back(20.0 * row[0] + 0.1 * row[2]);
    X.push_back(std::move(row));
  }
  ExtraTreesOptions opt;
  opt.n_trees = 40;
  opt.min_samples_split = 4;
  ExtraTreesRegressor model(opt);
  model.fit(X, y);
  auto imp = model.feature_importances();
  ASSERT_EQ(imp.size(), 4u);
  double total = imp[0] + imp[1] + imp[2] + imp[3];
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(imp[0], 0.6);
  EXPECT_GT(imp[0], imp[1]);
  EXPECT_GT(imp[0], imp[3]);
}

TEST(ExtraTrees, ImportancesZeroWhenNoSplitPossible) {
  ExtraTreesRegressor model;
  model.fit({{1.0}, {1.0}, {1.0}, {1.0}}, {2.0, 2.0, 2.0, 2.0});
  auto imp = model.feature_importances();
  ASSERT_EQ(imp.size(), 1u);
  EXPECT_DOUBLE_EQ(imp[0], 0.0);
}

TEST(ExtraTrees, ImportancesBeforeFitThrows) {
  ExtraTreesRegressor model;
  EXPECT_THROW(model.feature_importances(), InternalError);
}

// The parallel-fit determinism contract: every n_jobs produces the
// bit-identical forest — same predictions, same batch predictions, same
// importances — because per-tree Rngs are forked in tree order on the
// calling thread and reductions run in tree order.
TEST(ExtraTrees, ParallelFitIsBitIdenticalForEveryJobCount) {
  Rng rng(17);
  std::vector<std::vector<double>> X;
  std::vector<double> y;
  for (int i = 0; i < 150; ++i) {
    std::vector<double> row{rng.uniform(), rng.uniform(), rng.uniform(),
                            rng.uniform(), rng.uniform()};
    y.push_back(7 * row[0] - 3 * row[1] * row[2] + row[4]);
    X.push_back(std::move(row));
  }
  std::vector<std::vector<double>> Q;
  for (int i = 0; i < 40; ++i) {
    Q.push_back({rng.uniform(), rng.uniform(), rng.uniform(), rng.uniform(),
                 rng.uniform()});
  }

  ExtraTreesOptions base;
  base.n_trees = 16;
  base.seed = 5;
  base.n_jobs = 1;
  ExtraTreesRegressor reference(base);
  reference.fit(X, y);
  const std::vector<double> ref_pred = reference.predict_batch(Q);
  const std::vector<double> ref_imp = reference.feature_importances();

  for (int jobs : {2, 4, 8, 0}) {  // 0 = hardware concurrency
    ExtraTreesOptions opt = base;
    opt.n_jobs = jobs;
    ExtraTreesRegressor model(opt);
    model.fit(X, y);
    EXPECT_EQ(model.predict_batch(Q), ref_pred) << "n_jobs=" << jobs;
    EXPECT_EQ(model.feature_importances(), ref_imp) << "n_jobs=" << jobs;
    for (int i = 0; i < 5; ++i) {
      EXPECT_EQ(model.predict(Q[static_cast<std::size_t>(i)]),
                ref_pred[static_cast<std::size_t>(i)]);
    }
  }
}

TEST(ExtraTrees, NegativeJobsThrows) {
  ExtraTreesOptions opt;
  opt.n_jobs = -2;
  ExtraTreesRegressor model(opt);
  EXPECT_THROW(model.fit({{1.0}, {2.0}}, {1.0, 2.0}), Error);
  EXPECT_FALSE(model.fitted());
}

TEST(ExtraTrees, FailedParallelFitLeavesModelUnfitted) {
  ExtraTreesOptions opt;
  opt.n_trees = 0;  // invalid: no trees
  ExtraTreesRegressor model(opt);
  EXPECT_THROW(model.fit({{1.0}, {2.0}}, {1.0, 2.0}), Error);
  EXPECT_FALSE(model.fitted());
}

}  // namespace
}  // namespace barracuda::surf
