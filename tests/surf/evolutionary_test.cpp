#include "surf/evolutionary.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace barracuda::surf {
namespace {

struct Landscape {
  std::vector<std::vector<double>> features;
  std::vector<double> values;

  static Landscape make(std::size_t n, std::uint64_t seed) {
    Rng rng(seed);
    Landscape l;
    for (std::size_t i = 0; i < n; ++i) {
      double a = rng.uniform(), b = rng.uniform(), c = rng.uniform();
      l.features.push_back({a, b, c});
      l.values.push_back(10.0 * a + 0.5 * b + 0.1 * c);
    }
    return l;
  }

  Objective objective() const {
    return [this](std::size_t i) { return values[i]; };
  }

  double optimum() const {
    double best = values[0];
    for (double v : values) best = std::min(best, v);
    return best;
  }
};

using SearchFn = SearchResult (*)(const std::vector<std::vector<double>>&,
                                  const Objective&, const SearchOptions&);

class EvolutionaryTest : public ::testing::TestWithParam<SearchFn> {};

TEST_P(EvolutionaryTest, RespectsBudgetAndNeverRepeats) {
  Landscape l = Landscape::make(400, 1);
  SearchOptions opt;
  opt.max_evaluations = 70;
  SearchResult r = GetParam()(l.features, l.objective(), opt);
  EXPECT_LE(r.evaluations(), 70u);
  EXPECT_GE(r.evaluations(), 10u);
  std::set<std::size_t> seen;
  for (const auto& [i, v] : r.history) {
    EXPECT_TRUE(seen.insert(i).second);
    EXPECT_DOUBLE_EQ(v, l.values[i]);
  }
  EXPECT_DOUBLE_EQ(l.values[r.best_index], r.best_value);
}

TEST_P(EvolutionaryTest, DeterministicGivenSeed) {
  Landscape l = Landscape::make(300, 2);
  SearchOptions opt;
  opt.max_evaluations = 50;
  opt.seed = 9;
  SearchResult a = GetParam()(l.features, l.objective(), opt);
  SearchResult b = GetParam()(l.features, l.objective(), opt);
  EXPECT_EQ(a.history, b.history);
}

TEST_P(EvolutionaryTest, FullBudgetOnTinyPoolFindsOptimum) {
  Landscape l = Landscape::make(12, 3);
  SearchOptions opt;
  opt.max_evaluations = 100;
  SearchResult r = GetParam()(l.features, l.objective(), opt);
  EXPECT_DOUBLE_EQ(r.best_value, l.optimum());
  EXPECT_EQ(r.evaluations(), 12u);
}

TEST_P(EvolutionaryTest, EmptyPoolThrows) {
  EXPECT_THROW(
      GetParam()({}, [](std::size_t) { return 0.0; }, SearchOptions{}),
      InternalError);
}

TEST_P(EvolutionaryTest, BeatsRandomOnStructuredLandscapeOnAverage) {
  double evo_total = 0, random_total = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Landscape l = Landscape::make(1500, 200 + seed);
    SearchOptions opt;
    opt.max_evaluations = 50;
    opt.seed = seed;
    evo_total += GetParam()(l.features, l.objective(), opt).best_value;
    random_total +=
        random_search(l.features.size(), l.objective(), opt).best_value;
  }
  EXPECT_LE(evo_total, random_total * 1.05);
}

// Each generation's offspring are selected up front and measured as one
// Evaluate_Parallel batch; the search record must not depend on n_jobs.
TEST(Genetic, ParallelEvaluationBitIdenticalToSequential) {
  Landscape l = Landscape::make(500, 6);
  SearchOptions opt;
  opt.max_evaluations = 60;
  opt.batch_size = 12;
  opt.seed = 4;
  opt.n_jobs = 1;
  SearchResult sequential = genetic_search(l.features, l.objective(), opt);
  opt.n_jobs = 4;
  SearchResult parallel = genetic_search(l.features, l.objective(), opt);
  EXPECT_EQ(sequential.history, parallel.history);
  EXPECT_EQ(sequential.best_index, parallel.best_index);
  EXPECT_EQ(sequential.best_value, parallel.best_value);
}

// n_jobs > 1 turns annealing into decorrelated restart chains: the
// budget splits across the chains, results merge in chain order, and the
// record depends only on the chain count — never on the thread schedule.
TEST(Annealing, RestartChainsDeterministicAcrossRuns) {
  Landscape l = Landscape::make(600, 11);
  SearchOptions opt;
  opt.max_evaluations = 60;
  opt.seed = 5;
  opt.n_jobs = 4;
  SearchResult a = annealing_search(l.features, l.objective(), opt);
  SearchResult b = annealing_search(l.features, l.objective(), opt);
  EXPECT_EQ(a.history, b.history);
  EXPECT_EQ(a.best_index, b.best_index);
  EXPECT_EQ(a.best_value, b.best_value);
}

// Chain 0 is seeded exactly like the sequential search, so the merged
// history leads with what a sequential run at chain 0's budget produces
// (n_jobs = 1 stays bit-identical to the historical algorithm).
TEST(Annealing, ChainZeroReproducesSequentialRecord) {
  Landscape l = Landscape::make(600, 12);
  SearchOptions opt;
  opt.max_evaluations = 60;
  opt.seed = 7;
  opt.n_jobs = 4;
  SearchResult multi = annealing_search(l.features, l.objective(), opt);

  opt.n_jobs = 1;
  opt.max_evaluations = 15;  // 60 / 4: chain 0's share
  SearchResult sequential = annealing_search(l.features, l.objective(), opt);
  ASSERT_GE(multi.history.size(), sequential.history.size());
  for (std::size_t i = 0; i < sequential.history.size(); ++i) {
    EXPECT_EQ(multi.history[i], sequential.history[i]) << "entry " << i;
  }
}

// The total budget is respected exactly when the pool is large enough
// (chain budgets differ by at most one and sum to max_evaluations), the
// merged best is the minimum over the whole merged history, and restarts
// never do worse than a single chain on the same budget can guarantee —
// the merge takes the best chain.
TEST(Annealing, RestartBudgetSplitsAcrossChains) {
  Landscape l = Landscape::make(500, 13);
  SearchOptions opt;
  opt.max_evaluations = 50;
  opt.seed = 3;
  opt.n_jobs = 3;
  SearchResult r = annealing_search(l.features, l.objective(), opt);
  EXPECT_EQ(r.evaluations(), 50u);
  double best = r.history.front().second;
  for (const auto& [i, v] : r.history) {
    EXPECT_DOUBLE_EQ(v, l.values[i]);
    best = std::min(best, v);
  }
  EXPECT_DOUBLE_EQ(r.best_value, best);
  EXPECT_DOUBLE_EQ(l.values[r.best_index], r.best_value);
}

// On a constant objective every chain ties; the merge must break the
// tie deterministically toward the LOWEST chain index, i.e. chain 0's
// own (earliest-entry) best — which is also what the sequential search
// reports.
TEST(Annealing, ConstantObjectiveTieBreaksToChainZero) {
  Landscape l = Landscape::make(200, 14);
  Objective constant = [](std::size_t) { return 42.0; };
  SearchOptions opt;
  opt.max_evaluations = 40;
  opt.seed = 9;
  opt.n_jobs = 1;
  SearchResult sequential = annealing_search(l.features, constant, opt);
  opt.n_jobs = 4;
  SearchResult multi = annealing_search(l.features, constant, opt);
  EXPECT_EQ(multi.best_value, 42.0);
  EXPECT_EQ(multi.best_index, sequential.best_index);
  EXPECT_EQ(multi.best_index, multi.history.front().first);
}

INSTANTIATE_TEST_SUITE_P(Strategies, EvolutionaryTest,
                         ::testing::Values(&genetic_search,
                                           &annealing_search),
                         [](const ::testing::TestParamInfo<SearchFn>& info) {
                           return info.index == 0 ? "genetic" : "annealing";
                         });

}  // namespace
}  // namespace barracuda::surf
