#include "surf/evolutionary.hpp"

#include <gtest/gtest.h>

#include <set>

namespace barracuda::surf {
namespace {

struct Landscape {
  std::vector<std::vector<double>> features;
  std::vector<double> values;

  static Landscape make(std::size_t n, std::uint64_t seed) {
    Rng rng(seed);
    Landscape l;
    for (std::size_t i = 0; i < n; ++i) {
      double a = rng.uniform(), b = rng.uniform(), c = rng.uniform();
      l.features.push_back({a, b, c});
      l.values.push_back(10.0 * a + 0.5 * b + 0.1 * c);
    }
    return l;
  }

  Objective objective() const {
    return [this](std::size_t i) { return values[i]; };
  }

  double optimum() const {
    double best = values[0];
    for (double v : values) best = std::min(best, v);
    return best;
  }
};

using SearchFn = SearchResult (*)(const std::vector<std::vector<double>>&,
                                  const Objective&, const SearchOptions&);

class EvolutionaryTest : public ::testing::TestWithParam<SearchFn> {};

TEST_P(EvolutionaryTest, RespectsBudgetAndNeverRepeats) {
  Landscape l = Landscape::make(400, 1);
  SearchOptions opt;
  opt.max_evaluations = 70;
  SearchResult r = GetParam()(l.features, l.objective(), opt);
  EXPECT_LE(r.evaluations(), 70u);
  EXPECT_GE(r.evaluations(), 10u);
  std::set<std::size_t> seen;
  for (const auto& [i, v] : r.history) {
    EXPECT_TRUE(seen.insert(i).second);
    EXPECT_DOUBLE_EQ(v, l.values[i]);
  }
  EXPECT_DOUBLE_EQ(l.values[r.best_index], r.best_value);
}

TEST_P(EvolutionaryTest, DeterministicGivenSeed) {
  Landscape l = Landscape::make(300, 2);
  SearchOptions opt;
  opt.max_evaluations = 50;
  opt.seed = 9;
  SearchResult a = GetParam()(l.features, l.objective(), opt);
  SearchResult b = GetParam()(l.features, l.objective(), opt);
  EXPECT_EQ(a.history, b.history);
}

TEST_P(EvolutionaryTest, FullBudgetOnTinyPoolFindsOptimum) {
  Landscape l = Landscape::make(12, 3);
  SearchOptions opt;
  opt.max_evaluations = 100;
  SearchResult r = GetParam()(l.features, l.objective(), opt);
  EXPECT_DOUBLE_EQ(r.best_value, l.optimum());
  EXPECT_EQ(r.evaluations(), 12u);
}

TEST_P(EvolutionaryTest, EmptyPoolThrows) {
  EXPECT_THROW(
      GetParam()({}, [](std::size_t) { return 0.0; }, SearchOptions{}),
      InternalError);
}

TEST_P(EvolutionaryTest, BeatsRandomOnStructuredLandscapeOnAverage) {
  double evo_total = 0, random_total = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Landscape l = Landscape::make(1500, 200 + seed);
    SearchOptions opt;
    opt.max_evaluations = 50;
    opt.seed = seed;
    evo_total += GetParam()(l.features, l.objective(), opt).best_value;
    random_total +=
        random_search(l.features.size(), l.objective(), opt).best_value;
  }
  EXPECT_LE(evo_total, random_total * 1.05);
}

// Each generation's offspring are selected up front and measured as one
// Evaluate_Parallel batch; the search record must not depend on n_jobs.
TEST(Genetic, ParallelEvaluationBitIdenticalToSequential) {
  Landscape l = Landscape::make(500, 6);
  SearchOptions opt;
  opt.max_evaluations = 60;
  opt.batch_size = 12;
  opt.seed = 4;
  opt.n_jobs = 1;
  SearchResult sequential = genetic_search(l.features, l.objective(), opt);
  opt.n_jobs = 4;
  SearchResult parallel = genetic_search(l.features, l.objective(), opt);
  EXPECT_EQ(sequential.history, parallel.history);
  EXPECT_EQ(sequential.best_index, parallel.best_index);
  EXPECT_EQ(sequential.best_value, parallel.best_value);
}

INSTANTIATE_TEST_SUITE_P(Strategies, EvolutionaryTest,
                         ::testing::Values(&genetic_search,
                                           &annealing_search),
                         [](const ::testing::TestParamInfo<SearchFn>& info) {
                           return info.index == 0 ? "genetic" : "annealing";
                         });

}  // namespace
}  // namespace barracuda::surf
