#include "tcr/fusion.hpp"

#include <gtest/gtest.h>

namespace barracuda::tcr {
namespace {

TcrProgram eqn1_program() {
  return parse_tcr(R"(
ex
define:
I = J = K = L = M = N = 10
variables:
A:(L,K)
B:(M,J)
C:(N,I)
U:(L,M,N)
temp1:(I,L,M)
temp3:(J,I,L)
V:(I,J,K)
operations:
temp1:(i,l,m) += C:(n,i)*U:(l,m,n)
temp3:(j,i,l) += B:(m,j)*temp1:(i,l,m)
V:(i,j,k) += A:(l,k)*temp3:(j,i,l)
)");
}

TEST(Fusion, FusibleIndicesRequireTempToCarryIndex) {
  auto nests = build_loop_nests(eqn1_program());
  // temp1:(i,l,m) feeds temp3:(j,i,l): i and l are in both nests' parallel
  // sets and in temp1's index set; m is parallel in nest0 but a reduction
  // in nest1 (not on temp3's LHS)... m IS parallel in nest0 and reduction
  // in nest1, so only i,l qualify.
  auto fusible = fusible_indices(nests[0], nests[1]);
  std::set<std::string> got(fusible.begin(), fusible.end());
  EXPECT_EQ(got, (std::set<std::string>{"i", "l"}));
}

TEST(Fusion, NoFlowMeansAnySharedParallelLoopFusible) {
  TcrProgram p = parse_tcr(R"(
pair
define:
I = J = K = 8
variables:
A:(I,J)
B:(I,J)
X:(I,K)
Y:(I,K)
operations:
X:(i,k) += A:(i,j)*A:(j,k)
Y:(i,k) += B:(i,j)*B:(j,k)
)");
  auto nests = build_loop_nests(p);
  auto fusible = fusible_indices(nests[0], nests[1]);
  std::set<std::string> got(fusible.begin(), fusible.end());
  EXPECT_EQ(got, (std::set<std::string>{"i", "k"}));
}

TEST(Fusion, ReorderOuterMovesRequestedLoopsFirst) {
  auto nests = build_loop_nests(eqn1_program());
  LoopNest reordered = reorder_outer(nests[0], {"l", "i"});
  std::vector<std::string> order;
  for (const auto& loop : reordered.loops) order.push_back(loop.index);
  EXPECT_EQ(order, (std::vector<std::string>{"l", "i", "m", "n"}));
}

TEST(Fusion, ReorderOuterRejectsReductionLoops) {
  auto nests = build_loop_nests(eqn1_program());
  EXPECT_THROW(reorder_outer(nests[0], {"n"}), InternalError);
  EXPECT_THROW(reorder_outer(nests[0], {"z"}), InternalError);
}

TEST(Fusion, Eqn1FusesAtSharedLoops) {
  auto groups = fuse_program(eqn1_program());
  // All three ops share parallel loops pairwise (i,l then i,j...), so the
  // greedy pass should form fewer than three groups.
  std::size_t total_bodies = 0;
  for (const auto& g : groups) total_bodies += g.bodies.size();
  EXPECT_EQ(total_bodies, 3u);
  EXPECT_LT(groups.size(), 3u);
  // The first group must share a non-empty prefix.
  EXPECT_FALSE(groups.front().shared.empty());
  for (const auto& g : groups) {
    for (const auto& body : g.bodies) {
      // Shared loops must be the outermost loops of every body.
      for (std::size_t d = 0; d < g.shared.size(); ++d) {
        EXPECT_EQ(body.loops[d].index, g.shared[d].index);
      }
    }
  }
}

TEST(Fusion, FusionReducesTemporaryFootprint) {
  TcrProgram p = eqn1_program();
  auto groups = fuse_program(p);
  EXPECT_LT(fused_temp_elements(p, groups), unfused_temp_elements(p));
  EXPECT_EQ(unfused_temp_elements(p), 1000 + 1000);  // temp1 + temp3
}

TEST(Fusion, IndependentOpsWithDisjointLoopsDoNotFuse) {
  TcrProgram p = parse_tcr(R"(
two
define:
I = J = A = B = 4
variables:
X:(I,J)
P:(I,J)
Y:(A,B)
Q:(A,B)
operations:
P:(i,j) += X:(i,j)
Q:(a,b) += Y:(a,b)
)");
  auto groups = fuse_program(p);
  EXPECT_EQ(groups.size(), 2u);
}

TEST(Fusion, SingleOpProgramIsOneGroup) {
  TcrProgram p = parse_tcr(R"(
mm
define:
I = J = K = 8
variables:
A:(I,J)
B:(J,K)
C:(I,K)
operations:
C:(i,k) += A:(i,j)*B:(j,k)
)");
  auto groups = fuse_program(p);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].bodies.size(), 1u);
}

TEST(Fusion, ToStringShowsFusedStructure) {
  auto groups = fuse_program(eqn1_program());
  std::string s = groups.front().to_string();
  EXPECT_NE(s.find("// fused"), std::string::npos);
}

}  // namespace
}  // namespace barracuda::tcr
