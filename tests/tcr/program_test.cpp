#include "tcr/program.hpp"

#include <gtest/gtest.h>

#include "octopi/parser.hpp"

namespace barracuda::tcr {
namespace {

tensor::Extents eqn1_extents() {
  tensor::Extents e;
  for (const char* ix : {"i", "j", "k", "l", "m", "n"}) e[ix] = 10;
  return e;
}

octopi::Variant best_eqn1_variant() {
  auto stmt = octopi::parse_statement(
                  "V[i j k] = Sum([l m n], A[l k] * B[m j] * C[n i] * U[l m n])")
                  .to_contraction();
  auto variants = octopi::enumerate_variants(stmt, eqn1_extents());
  // Find the paper's variant: C*U first, then B, then A.
  for (const auto& v : variants) {
    if (v.program.steps[0].inputs[0].name == "C" &&
        v.program.steps.size() == 3 &&
        v.program.steps[1].inputs[0].name == "B") {
      return v;
    }
  }
  throw std::runtime_error("paper variant not found");
}

TEST(TcrProgram, FromVariantDeclaresAllTensors) {
  TcrProgram p = from_variant(best_eqn1_variant(), eqn1_extents());
  EXPECT_TRUE(p.has_variable("A"));
  EXPECT_TRUE(p.has_variable("B"));
  EXPECT_TRUE(p.has_variable("C"));
  EXPECT_TRUE(p.has_variable("U"));
  EXPECT_TRUE(p.has_variable("V"));
  EXPECT_EQ(p.operations.size(), 3u);
  EXPECT_EQ(p.output_name(), "V");
  EXPECT_NO_THROW(p.validate());
}

TEST(TcrProgram, InputAndWrittenNames) {
  TcrProgram p = from_variant(best_eqn1_variant(), eqn1_extents());
  auto inputs = p.input_names();
  EXPECT_EQ(inputs.size(), 4u);  // A, B, C, U in some first-use order
  for (const char* n : {"A", "B", "C", "U"}) {
    EXPECT_NE(std::find(inputs.begin(), inputs.end(), n), inputs.end());
  }
  auto written = p.written_names();
  EXPECT_EQ(written.size(), 3u);  // two temps + V
  EXPECT_EQ(written.back(), "V");
}

TEST(TcrProgram, FlopsMatchVariant) {
  octopi::Variant v = best_eqn1_variant();
  TcrProgram p = from_variant(v, eqn1_extents());
  EXPECT_EQ(p.flops(), v.flops);
  EXPECT_EQ(p.flops(), 3 * 2 * 10000);
}

TEST(TcrProgram, PrintMatchesPaperShape) {
  TcrProgram p = from_variant(best_eqn1_variant(), eqn1_extents());
  std::string text = p.to_string();
  EXPECT_NE(text.find("access: linearize"), std::string::npos);
  EXPECT_NE(text.find("define:"), std::string::npos);
  EXPECT_NE(text.find("variables:"), std::string::npos);
  EXPECT_NE(text.find("operations:"), std::string::npos);
  EXPECT_NE(text.find("A:(L,K)"), std::string::npos);
  EXPECT_NE(text.find("V:(I,J,K)"), std::string::npos);
}

TEST(TcrProgram, TextRoundTrips) {
  TcrProgram p = from_variant(best_eqn1_variant(), eqn1_extents());
  TcrProgram q = parse_tcr(p.to_string());
  EXPECT_EQ(p.extents, q.extents);
  EXPECT_EQ(p.operations, q.operations);
  // Variable sets must agree (order may differ).
  for (const auto& v : p.variables) {
    EXPECT_TRUE(q.has_variable(v.name));
    EXPECT_EQ(q.variable(v.name).indices.size(), v.indices.size());
  }
}

TEST(TcrProgram, ParsesPaperFigure2b) {
  // Verbatim structure of Figure 2(b).
  const char* text = R"(
ex
access: linearize
define:
N = J = M = I = L = K = 10
variables:
temp3:(J,I,L)
A:(L,K)
C:(N,I)
B:(M,J)
U:(L,M,N)
V:(I,J,K)
temp1:(I,L,M)
operations:
temp1:(i,l,m) += C:(n,i)*U:(l,m,n)
temp3:(j,i,l) += B:(m,j)*temp1:(i,l,m)
V:(i,j,k) += A:(l,k)*temp3:(j,i,l)
)";
  TcrProgram p = parse_tcr(text);
  EXPECT_EQ(p.name, "ex");
  EXPECT_EQ(p.extents.at("n"), 10);
  EXPECT_EQ(p.operations.size(), 3u);
  EXPECT_EQ(p.operations[0].output.name, "temp1");
  EXPECT_EQ(p.operations[0].inputs[1].indices,
            (std::vector<std::string>{"l", "m", "n"}));
  EXPECT_TRUE(p.operations[2].accumulate);
  EXPECT_EQ(p.output_name(), "V");
}

TEST(TcrProgram, UndeclaredVariableRejected) {
  const char* text = R"(
ex
define:
I = J = 4
variables:
A:(I,J)
operations:
B:(i) += A:(i,j)
)";
  EXPECT_THROW(parse_tcr(text), ParseError);
}

TEST(TcrProgram, RankMismatchRejected) {
  const char* text = R"(
ex
define:
I = J = 4
variables:
A:(I,J)
B:(I)
operations:
B:(i) += A:(i)
)";
  EXPECT_THROW(parse_tcr(text), ParseError);
}

TEST(TcrProgram, ExtentMismatchOnReuseRejected) {
  const char* text = R"(
ex
define:
I = 4
J = 8
variables:
A:(I,I)
B:(I)
operations:
B:(i) += A:(i,j)
)";
  EXPECT_THROW(parse_tcr(text), ParseError);
}

TEST(TcrProgram, ReuseUnderDifferentIndexNamesAllowed) {
  // The same derivative matrix D contracted along different modes, as in
  // Nekbone's local_grad3.
  const char* text = R"(
lg3
define:
I = J = K = L = 12
variables:
D:(I,J)
U:(I,J,K)
UR:(I,J,K)
US:(I,J,K)
operations:
UR:(i,j,k) += D:(k,l)*U:(i,j,l)
US:(i,j,k) += D:(j,l)*U:(i,l,k)
)";
  TcrProgram p = parse_tcr(text);
  EXPECT_EQ(p.operations.size(), 2u);
  EXPECT_NO_THROW(p.validate());
}

TEST(TcrProgram, UnsupportedAccessModeRejected) {
  EXPECT_THROW(parse_tcr("ex\naccess: tiled\ndefine:\nI = 2\nvariables:\n"
                         "A:(I)\noperations:\nA:(i) += A:(i)\n"),
               ParseError);
}

TEST(TcrProgram, EmptyProgramRejected) {
  EXPECT_THROW(parse_tcr("ex\ndefine:\nI = 2\nvariables:\nA:(I)\n"
                         "operations:\n"),
               ParseError);
}

TEST(TcrProgram, ScalarVariableParses) {
  const char* text = R"(
dot
define:
I = 8
variables:
u:(I)
v:(I)
y:()
operations:
y:() += u:(i)*v:(i)
)";
  TcrProgram p = parse_tcr(text);
  EXPECT_TRUE(p.variable("y").indices.empty());
}

}  // namespace
}  // namespace barracuda::tcr
