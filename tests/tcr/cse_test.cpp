#include "tcr/cse.hpp"

#include <gtest/gtest.h>

#include "cpuexec/interpreter.hpp"

namespace barracuda::tcr {
namespace {

TEST(Cse, MergesIdenticalTemporaryComputations) {
  // Two outputs sharing the intermediate t1 = A*B.
  TcrProgram p = parse_tcr(R"(
two
define:
I = J = K = M = 6
variables:
A:(I,J)
B:(J,K)
C:(K,M)
D:(K,M)
t1:(I,K)
t2:(I,K)
X:(I,M)
Y:(I,M)
operations:
t1:(i,k) += A:(i,j)*B:(j,k)
X:(i,m) += t1:(i,k)*C:(k,m)
t2:(i,k) += A:(i,j)*B:(j,k)
Y:(i,m) += t2:(i,k)*D:(k,m)
)");
  CseResult r = eliminate_common_subexpressions(p);
  EXPECT_EQ(r.eliminated_ops, 1u);
  EXPECT_EQ(r.saved_flops, 2 * 6 * 6 * 6);
  ASSERT_EQ(r.program.operations.size(), 3u);
  // Y now reads t1 instead of t2; t2's declaration is gone.
  EXPECT_EQ(r.program.operations[2].inputs[0].name, "t1");
  EXPECT_FALSE(r.program.has_variable("t2"));
}

TEST(Cse, PreservesSemantics) {
  TcrProgram p = parse_tcr(R"(
two
define:
I = J = K = M = 5
variables:
A:(I,J)
B:(J,K)
C:(K,M)
D:(K,M)
t1:(I,K)
t2:(I,K)
X:(I,M)
Y:(I,M)
operations:
t1:(i,k) += A:(i,j)*B:(j,k)
X:(i,m) += t1:(i,k)*C:(k,m)
t2:(i,k) += A:(i,j)*B:(j,k)
Y:(i,m) += t2:(i,k)*D:(k,m)
)");
  CseResult r = eliminate_common_subexpressions(p);
  Rng rng(6);
  tensor::TensorEnv env;
  env.emplace("A", tensor::Tensor::random({5, 5}, rng));
  env.emplace("B", tensor::Tensor::random({5, 5}, rng));
  env.emplace("C", tensor::Tensor::random({5, 5}, rng));
  env.emplace("D", tensor::Tensor::random({5, 5}, rng));
  tensor::TensorEnv cse_env = env;
  cpuexec::run_sequential(p, env);
  cpuexec::run_sequential(r.program, cse_env);
  EXPECT_TRUE(tensor::Tensor::allclose(env.at("X"), cse_env.at("X"), 1e-12));
  EXPECT_TRUE(tensor::Tensor::allclose(env.at("Y"), cse_env.at("Y"), 1e-12));
}

TEST(Cse, CommutativityOfProductRecognized) {
  TcrProgram p = parse_tcr(R"(
comm
define:
I = J = K = 4
variables:
A:(I,J)
B:(J,K)
t1:(I,K)
t2:(I,K)
X:(I,K)
operations:
t1:(i,k) += A:(i,j)*B:(j,k)
t2:(i,k) += B:(j,k)*A:(i,j)
X:(i,k) += t1:(i,k)*t2:(i,k)
)");
  CseResult r = eliminate_common_subexpressions(p);
  EXPECT_EQ(r.eliminated_ops, 1u);
}

TEST(Cse, DifferentOutputLayoutNotMerged) {
  // Same math, different temporary layout: layouts matter downstream, so
  // these are distinct.
  TcrProgram p = parse_tcr(R"(
lay
define:
I = J = K = 4
variables:
A:(I,J)
B:(J,K)
t1:(I,K)
t2:(K,I)
X:(I,K)
operations:
t1:(i,k) += A:(i,j)*B:(j,k)
t2:(k,i) += A:(i,j)*B:(j,k)
X:(i,k) += t1:(i,k)*t2:(k,i)
)");
  CseResult r = eliminate_common_subexpressions(p);
  EXPECT_EQ(r.eliminated_ops, 0u);
}

TEST(Cse, MultiplyWrittenTensorsNotCandidates) {
  // W accumulates two contributions; eliminating either would be wrong.
  TcrProgram p = parse_tcr(R"(
acc
define:
I = J = 4
variables:
A:(I,J)
W:(I)
X:(I)
operations:
W:(i) += A:(i,j)
W:(i) += A:(i,j)
X:(i) += W:(i)
)");
  CseResult r = eliminate_common_subexpressions(p);
  EXPECT_EQ(r.eliminated_ops, 0u);
  EXPECT_EQ(r.program.operations.size(), 3u);
}

TEST(Cse, NoOpOnProgramsWithoutDuplicates) {
  TcrProgram p = parse_tcr(R"(
mm
define:
I = J = K = 4
variables:
A:(I,J)
B:(J,K)
C:(I,K)
operations:
C:(i,k) += A:(i,j)*B:(j,k)
)");
  CseResult r = eliminate_common_subexpressions(p);
  EXPECT_EQ(r.eliminated_ops, 0u);
  EXPECT_EQ(r.program.operations, p.operations);
}

TEST(Cse, ChainsThroughRenamedInputs) {
  // After t2 := t1, the consumers of t2 rename to t1, making the two
  // second-level temporaries identical too.
  TcrProgram p = parse_tcr(R"(
chain
define:
I = J = K = M = 4
variables:
A:(I,J)
B:(J,K)
C:(K,M)
t1:(I,K)
t2:(I,K)
u1:(I,M)
u2:(I,M)
X:(I,M)
operations:
t1:(i,k) += A:(i,j)*B:(j,k)
t2:(i,k) += A:(i,j)*B:(j,k)
u1:(i,m) += t1:(i,k)*C:(k,m)
u2:(i,m) += t2:(i,k)*C:(k,m)
X:(i,m) += u1:(i,m)*u2:(i,m)
)");
  CseResult r = eliminate_common_subexpressions(p);
  EXPECT_EQ(r.eliminated_ops, 2u);
  ASSERT_EQ(r.program.operations.size(), 3u);
  // X reads u1 twice now.
  EXPECT_EQ(r.program.operations[2].inputs[0].name, "u1");
  EXPECT_EQ(r.program.operations[2].inputs[1].name, "u1");
}

}  // namespace
}  // namespace barracuda::tcr
