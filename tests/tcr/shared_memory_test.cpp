// Tests for the shared-memory data-placement extension (the memory
// hierarchy axis of Khan's algorithm): candidate selection, space
// enumeration, lowering, CUDA emission, performance-model effect and
// semantic transparency.
#include <gtest/gtest.h>

#include "chill/lower.hpp"
#include "tcr/decision.hpp"
#include "vgpu/executor.hpp"
#include "vgpu/perfmodel.hpp"

namespace barracuda::tcr {
namespace {

TcrProgram lg3_like() {
  return parse_tcr(R"(
lg
define:
E = 64
I = J = K = L = 12
variables:
D:(K,L)
U:(E,I,J,L)
UR:(E,I,J,K)
operations:
UR:(e,i,j,k) += D:(k,l)*U:(e,i,j,l)
)");
}

DecisionOptions shared_on() {
  DecisionOptions opt;
  opt.use_shared_memory = true;
  return opt;
}

TEST(SharedMemory, SmallReusedInputIsCandidate) {
  auto nests = build_loop_nests(lg3_like());
  KernelSpace space = derive_space(nests[0], shared_on());
  // D is 12x12 doubles (1.1 KB) and reused across e/i/j threads; U is
  // 64*12^3*8B = 10.6 MB, far beyond shared memory.
  EXPECT_EQ(space.shared_candidates, (std::vector<std::string>{"D"}));
}

TEST(SharedMemory, DisabledByDefault) {
  auto nests = build_loop_nests(lg3_like());
  KernelSpace space = derive_space(nests[0]);
  EXPECT_TRUE(space.shared_candidates.empty());
}

TEST(SharedMemory, SpaceDoublesPerCandidate) {
  auto nests = build_loop_nests(lg3_like());
  KernelSpace off = derive_space(nests[0]);
  KernelSpace on = derive_space(nests[0], shared_on());
  EXPECT_EQ(space_size(nests[0], on), 2 * space_size(nests[0], off));
}

TEST(SharedMemory, CapacityLimitRespected) {
  auto nests = build_loop_nests(lg3_like());
  DecisionOptions opt = shared_on();
  opt.shared_memory_bytes = 512;  // smaller than D's 1152 bytes
  KernelSpace space = derive_space(nests[0], opt);
  EXPECT_TRUE(space.shared_candidates.empty());
}

TEST(SharedMemory, ValidateRejectsNonInputAndDuplicates) {
  auto nests = build_loop_nests(lg3_like());
  KernelConfig cfg = optimized_openacc_config(nests[0]);
  cfg.shared_tensors = {"UR"};  // the output, not an input
  EXPECT_THROW(validate_config(nests[0], cfg), InternalError);
  cfg.shared_tensors = {"D", "D"};
  EXPECT_THROW(validate_config(nests[0], cfg), InternalError);
  cfg.shared_tensors = {"D"};
  EXPECT_NO_THROW(validate_config(nests[0], cfg));
}

TEST(SharedMemory, LoweringRecordsFootprint) {
  TcrProgram p = lg3_like();
  auto nests = build_loop_nests(p);
  KernelConfig cfg = optimized_openacc_config(nests[0]);
  cfg.shared_tensors = {"D"};
  chill::Kernel k = chill::lower_kernel(p, 0, cfg);
  ASSERT_TRUE(k.shared.contains("D"));
  EXPECT_EQ(k.shared.at("D"), 144);
}

TEST(SharedMemory, CudaSourceStagesAndRenames) {
  TcrProgram p = lg3_like();
  auto nests = build_loop_nests(p);
  KernelConfig cfg = optimized_openacc_config(nests[0]);
  cfg.shared_tensors = {"D"};
  chill::Kernel k = chill::lower_kernel(p, 0, cfg);
  std::string src = k.cuda_source();
  EXPECT_NE(src.find("__shared__ double s_D[144];"), std::string::npos);
  EXPECT_NE(src.find("s_D[s_i] = D[s_i];"), std::string::npos);
  EXPECT_NE(src.find("__syncthreads();"), std::string::npos);
  // The statement reads the staged copy, not global memory.
  EXPECT_NE(src.find("nv + s_D["), std::string::npos) << src;
  // Braces stay balanced with the staging loop added.
  EXPECT_EQ(std::count(src.begin(), src.end(), '{'),
            std::count(src.begin(), src.end(), '}'));
}

TEST(SharedMemory, ModelPricesStagingSanely) {
  TcrProgram p = lg3_like();
  auto nests = build_loop_nests(p);
  KernelConfig cfg = optimized_openacc_config(nests[0]);
  KernelConfig staged = cfg;
  staged.shared_tensors = {"D"};
  auto dev = vgpu::DeviceProfile::tesla_c2050();
  vgpu::KernelTiming plain =
      vgpu::model_kernel(chill::lower_kernel(p, 0, cfg), dev);
  vgpu::KernelTiming with =
      vgpu::model_kernel(chill::lower_kernel(p, 0, staged), dev);
  // Staging a tensor that warps already read as an L2 broadcast is close
  // to neutral in time (cooperative load vs per-visit broadcast)...
  EXPECT_LE(with.memory_us, plain.memory_us * 1.15);
  EXPECT_GE(with.memory_us, plain.memory_us * 0.3);
  // ...but it must eliminate D's per-visit global transaction stream
  // (the staged access reports only the cooperative load).
  EXPECT_LT(with.accesses[0].total_transactions,
            plain.accesses[0].total_transactions);
}

TEST(SharedMemory, FunctionalExecutionUnchanged) {
  TcrProgram p = parse_tcr(R"(
lg
define:
E = 4
I = J = K = L = 5
variables:
D:(K,L)
U:(E,I,J,L)
UR:(E,I,J,K)
operations:
UR:(e,i,j,k) += D:(k,l)*U:(e,i,j,l)
)");
  auto nests = build_loop_nests(p);
  KernelConfig cfg = optimized_openacc_config(nests[0]);
  KernelConfig staged = cfg;
  staged.shared_tensors = {"D"};

  Rng rng(4);
  tensor::TensorEnv base;
  base.emplace("D", tensor::Tensor::random({5, 5}, rng));
  base.emplace("U", tensor::Tensor::random({4, 5, 5, 5}, rng));
  base.emplace("UR", tensor::Tensor::zeros({4, 5, 5, 5}));

  tensor::TensorEnv plain_env = base;
  tensor::TensorEnv staged_env = base;
  vgpu::execute_plan(chill::lower_program(p, {cfg}), plain_env);
  vgpu::execute_plan(chill::lower_program(p, {staged}), staged_env);
  EXPECT_TRUE(tensor::Tensor::allclose(plain_env.at("UR"),
                                       staged_env.at("UR"), 0.0));
}

TEST(SharedMemory, TuningWithSharedEnabledStillCorrect) {
  TcrProgram p = lg3_like();
  auto nests = build_loop_nests(p);
  KernelSpace space = derive_space(nests[0], shared_on());
  auto configs = enumerate_configs(nests[0], space);
  bool saw_staged = false;
  for (const auto& cfg : configs) {
    EXPECT_NO_THROW(validate_config(nests[0], cfg));
    saw_staged |= !cfg.shared_tensors.empty();
  }
  EXPECT_TRUE(saw_staged);
}

}  // namespace
}  // namespace barracuda::tcr
