#include "tcr/decision.hpp"

#include <gtest/gtest.h>

#include <set>

namespace barracuda::tcr {
namespace {

TcrProgram eqn1_program() {
  return parse_tcr(R"(
ex
define:
I = J = K = L = M = N = 10
variables:
A:(L,K)
B:(M,J)
C:(N,I)
U:(L,M,N)
temp1:(I,L,M)
temp3:(J,I,L)
V:(I,J,K)
operations:
temp1:(i,l,m) += C:(n,i)*U:(l,m,n)
temp3:(j,i,l) += B:(m,j)*temp1:(i,l,m)
V:(i,j,k) += A:(l,k)*temp3:(j,i,l)
)");
}

TEST(Decision, ThreadXDrivenByCoalescing) {
  auto nests = build_loop_nests(eqn1_program());
  // Final op: V:(i,j,k) += A:(l,k)*temp3:(j,i,l); loops (i,j,k,l).
  // A's last index k is parallel -> ThreadX candidate; temp3's last index
  // l is a reduction -> excluded.
  KernelSpace space = derive_space(nests[2]);
  EXPECT_EQ(space.thread_x, (std::vector<std::string>{"k"}));
}

TEST(Decision, PoolBuiltFromContiguousTensorsInnermostFirst) {
  auto nests = build_loop_nests(eqn1_program());
  KernelSpace space = derive_space(nests[2]);
  // Contiguous refs under (i,j,k,l): V (i,j,k). A:(l,k) positions 3,2 no;
  // temp3:(j,i,l) positions 1,0,3 no.  Pool from V innermost-first:
  // k,j,i — then noncontiguous outer-to-inner adds nothing new parallel.
  EXPECT_EQ(space.block_x, (std::vector<std::string>{"k", "j", "i", "1"}));
  // ThreadY and BlockY get the pool plus the unused sentinel.
  EXPECT_EQ(space.thread_y, (std::vector<std::string>{"k", "j", "i", "1"}));
  EXPECT_EQ(space.block_y, (std::vector<std::string>{"k", "j", "i", "1"}));
}

TEST(Decision, UnrollFactorsBoundedByExtentAndCap) {
  auto nests = build_loop_nests(eqn1_program());
  KernelSpace space = derive_space(nests[0]);
  ASSERT_EQ(space.unroll_factors.size(), 10u);  // min(10, N=10)
  EXPECT_EQ(space.unroll_factors.front(), 1);
  EXPECT_EQ(space.unroll_factors.back(), 10);

  DecisionOptions opt;
  opt.max_unroll = 4;
  EXPECT_EQ(derive_space(nests[0], opt).unroll_factors.size(), 4u);
}

TEST(Decision, ConfigsAreValidAndDistinct) {
  auto nests = build_loop_nests(eqn1_program());
  KernelSpace space = derive_space(nests[0]);
  auto configs = enumerate_configs(nests[0], space);
  ASSERT_FALSE(configs.empty());
  std::set<std::string> texts;
  for (const auto& cfg : configs) {
    EXPECT_NO_THROW(validate_config(nests[0], cfg));
    texts.insert(cfg.to_string());
  }
  EXPECT_EQ(texts.size(), configs.size());
  EXPECT_EQ(space_size(nests[0], space),
            static_cast<std::int64_t>(configs.size()));
}

TEST(Decision, GridIndicesAreDistinctParallelLoops) {
  auto nests = build_loop_nests(eqn1_program());
  KernelSpace space = derive_space(nests[0]);
  for (const auto& cfg : enumerate_configs(nests[0], space)) {
    auto assigned = cfg.assigned_indices();
    std::set<std::string> uniq(assigned.begin(), assigned.end());
    EXPECT_EQ(uniq.size(), assigned.size());
    for (const auto& ix : assigned) {
      EXPECT_TRUE(nests[0].is_parallel(ix));
    }
  }
}

TEST(Decision, ReductionLoopsAlwaysSequential) {
  auto nests = build_loop_nests(eqn1_program());
  KernelSpace space = derive_space(nests[0]);
  for (const auto& cfg : enumerate_configs(nests[0], space)) {
    bool found = false;
    for (const auto& ix : cfg.sequential) found |= (ix == "n");
    EXPECT_TRUE(found) << cfg.to_string();
  }
}

TEST(Decision, UnrollNeverExceedsInnermostSequentialExtent) {
  auto nests = build_loop_nests(eqn1_program());
  KernelSpace space = derive_space(nests[0]);
  for (const auto& cfg : enumerate_configs(nests[0], space)) {
    if (!cfg.sequential.empty()) {
      EXPECT_LE(cfg.unroll, nests[0].extent_of(cfg.sequential.back()));
    } else {
      EXPECT_EQ(cfg.unroll, 1);
    }
  }
}

TEST(Decision, CoalescingBlindAblationWidensThreadX) {
  auto nests = build_loop_nests(eqn1_program());
  DecisionOptions blind;
  blind.coalescing_aware = false;
  KernelSpace aware = derive_space(nests[2]);
  KernelSpace blind_space = derive_space(nests[2], blind);
  EXPECT_LT(aware.thread_x.size(), blind_space.thread_x.size());
  EXPECT_EQ(blind_space.thread_x.size(), 3u);  // all parallel loops
}

TEST(Decision, PermutationAblationShrinksSpace) {
  auto nests = build_loop_nests(eqn1_program());
  DecisionOptions no_perm;
  no_perm.permute_sequential = false;
  KernelSpace with = derive_space(nests[0]);
  KernelSpace without = derive_space(nests[0], no_perm);
  EXPECT_GT(space_size(nests[0], with), space_size(nests[0], without));
}

TEST(Decision, OptimizedOpenAccUsesCoalescedThreadX) {
  auto nests = build_loop_nests(eqn1_program());
  KernelConfig cfg = optimized_openacc_config(nests[2]);
  EXPECT_EQ(cfg.thread_x, "k");
  EXPECT_NE(cfg.block_x, "k");
  EXPECT_TRUE(cfg.scalar_replacement);
  EXPECT_EQ(cfg.unroll, 1);
}

TEST(Decision, NaiveOpenAccIgnoresCoalescing) {
  auto nests = build_loop_nests(eqn1_program());
  // Final op loops (i,j,k,l); naive gangs the outermost parallel loop i
  // and vectors j — not the coalesced k.
  KernelConfig cfg = naive_openacc_config(nests[2]);
  EXPECT_EQ(cfg.block_x, "i");
  EXPECT_EQ(cfg.thread_x, "j");
  EXPECT_FALSE(cfg.scalar_replacement);
}

TEST(Decision, SinglePassKernelWithOneParallelLoop) {
  TcrProgram p = parse_tcr(R"(
mv
define:
I = J = 16
variables:
A:(I,J)
x:(J)
y:(I)
operations:
y:(i) += A:(i,j)*x:(j)
)");
  auto nests = build_loop_nests(p);
  KernelSpace space = derive_space(nests[0]);
  auto configs = enumerate_configs(nests[0], space);
  EXPECT_FALSE(configs.empty());
  for (const auto& cfg : configs) {
    EXPECT_NO_THROW(validate_config(nests[0], cfg));
  }
  // Naive config: only one parallel loop -> gang only.
  KernelConfig naive = naive_openacc_config(nests[0]);
  EXPECT_EQ(naive.block_x, "i");
  EXPECT_EQ(naive.thread_x, kUnused);
}

TEST(Decision, ValidateConfigRejectsBadConfigs) {
  auto nests = build_loop_nests(eqn1_program());
  const LoopNest& nest = nests[0];  // loops i,l,m,n

  KernelConfig missing;  // loop m missing entirely
  missing.thread_x = "i";
  missing.block_x = "l";
  missing.sequential = {"n"};
  EXPECT_THROW(validate_config(nest, missing), InternalError);

  KernelConfig reduction_on_grid;
  reduction_on_grid.thread_x = "n";  // reduction loop on the grid
  reduction_on_grid.block_x = "i";
  reduction_on_grid.sequential = {"l", "m"};
  EXPECT_THROW(validate_config(nest, reduction_on_grid), InternalError);

  KernelConfig duplicate;
  duplicate.thread_x = "i";
  duplicate.thread_y = "i";
  duplicate.sequential = {"l", "m", "n"};
  EXPECT_THROW(validate_config(nest, duplicate), InternalError);

  KernelConfig big_unroll;
  big_unroll.thread_x = "i";
  big_unroll.block_x = "l";
  big_unroll.sequential = {"m", "n"};
  big_unroll.unroll = 11;  // n has extent 10
  EXPECT_THROW(validate_config(nest, big_unroll), InternalError);
}

TEST(Decision, SpaceSizeMagnitudeIsLargeEnoughToMotivateSearch) {
  // The paper motivates SURF with spaces in the 10^2..10^6 range per
  // program; Eqn(1)'s per-kernel spaces should be comfortably >100.
  auto nests = build_loop_nests(eqn1_program());
  std::int64_t total = 1;
  for (const auto& nest : nests) {
    total *= space_size(nest, derive_space(nest));
  }
  EXPECT_GT(total, 100000);
}

}  // namespace
}  // namespace barracuda::tcr
