#include "tcr/loopnest.hpp"

#include <gtest/gtest.h>

namespace barracuda::tcr {
namespace {

TcrProgram eqn1_program() {
  return parse_tcr(R"(
ex
define:
I = J = K = L = M = N = 10
variables:
A:(L,K)
B:(M,J)
C:(N,I)
U:(L,M,N)
temp1:(I,L,M)
temp3:(J,I,L)
V:(I,J,K)
operations:
temp1:(i,l,m) += C:(n,i)*U:(l,m,n)
temp3:(j,i,l) += B:(m,j)*temp1:(i,l,m)
V:(i,j,k) += A:(l,k)*temp3:(j,i,l)
)");
}

TEST(LoopNest, DefaultOrderIsOutputThenReduction) {
  auto nests = build_loop_nests(eqn1_program());
  ASSERT_EQ(nests.size(), 3u);
  std::vector<std::string> order;
  for (const auto& loop : nests[0].loops) order.push_back(loop.index);
  EXPECT_EQ(order, (std::vector<std::string>{"i", "l", "m", "n"}));
  EXPECT_EQ(nests[0].loops[0].extent, 10);
}

TEST(LoopNest, DependenceAnalysisLhsIndicesAreParallel) {
  auto nests = build_loop_nests(eqn1_program());
  // temp1:(i,l,m) += C:(n,i)*U:(l,m,n): i,l,m parallel; n reduction.
  EXPECT_EQ(nests[0].parallel_indices(),
            (std::vector<std::string>{"i", "l", "m"}));
  EXPECT_EQ(nests[0].reduction_indices(), (std::vector<std::string>{"n"}));
  EXPECT_TRUE(nests[0].is_parallel("i"));
  EXPECT_FALSE(nests[0].is_parallel("n"));
}

TEST(LoopNest, ExtentLookup) {
  auto nests = build_loop_nests(eqn1_program());
  EXPECT_EQ(nests[0].extent_of("n"), 10);
  EXPECT_THROW(nests[0].extent_of("z"), InternalError);
}

TEST(LoopNest, ContiguityOutputContiguousByConstruction) {
  auto nests = build_loop_nests(eqn1_program());
  // Default order puts output indices first in output order, so the
  // output is always contiguous.
  for (const auto& nest : nests) {
    EXPECT_TRUE(is_contiguous(nest.stmt.output, nest.loops));
  }
}

TEST(LoopNest, ContiguityOfInputsMatchesPaperExample) {
  auto nests = build_loop_nests(eqn1_program());
  // Nest 0 loops (i,l,m,n): U:(l,m,n) is contiguous (positions 1,2,3);
  // C:(n,i) is not (positions 3,0).
  EXPECT_TRUE(is_contiguous(nests[0].stmt.inputs[1], nests[0].loops));
  EXPECT_FALSE(is_contiguous(nests[0].stmt.inputs[0], nests[0].loops));
  auto contig = contiguous_refs(nests[0]);
  ASSERT_EQ(contig.size(), 2u);
  EXPECT_EQ(contig[0].name, "temp1");
  EXPECT_EQ(contig[1].name, "U");
  auto noncontig = noncontiguous_refs(nests[0]);
  ASSERT_EQ(noncontig.size(), 1u);
  EXPECT_EQ(noncontig[0].name, "C");
}

TEST(LoopNest, ContiguityRequiresStrictlyIncreasingPositions) {
  std::vector<Loop> loops{{"i", 4}, {"j", 4}, {"k", 4}};
  EXPECT_TRUE(is_contiguous(tensor::TensorRef{"A", {"i", "k"}}, loops));
  EXPECT_TRUE(is_contiguous(tensor::TensorRef{"A", {"j"}}, loops));
  EXPECT_FALSE(is_contiguous(tensor::TensorRef{"A", {"k", "i"}}, loops));
  EXPECT_FALSE(is_contiguous(tensor::TensorRef{"A", {"i", "i"}}, loops));
  // Index not in the loop order at all -> not contiguous.
  EXPECT_FALSE(is_contiguous(tensor::TensorRef{"A", {"z"}}, loops));
}

TEST(LoopNest, ScalarOutputHasNoParallelLoops) {
  TcrProgram p = parse_tcr(R"(
dot
define:
I = 8
variables:
u:(I)
v:(I)
y:()
operations:
y:() += u:(i)*v:(i)
)");
  auto nests = build_loop_nests(p);
  EXPECT_TRUE(nests[0].parallel_indices().empty());
  EXPECT_EQ(nests[0].reduction_indices(), (std::vector<std::string>{"i"}));
}

TEST(LoopNest, ToStringShowsLoopKinds) {
  auto nests = build_loop_nests(eqn1_program());
  std::string s = nests[0].to_string();
  EXPECT_NE(s.find("for i in [0,10)  // parallel"), std::string::npos);
  EXPECT_NE(s.find("for n in [0,10)  // reduction"), std::string::npos);
}

}  // namespace
}  // namespace barracuda::tcr
