#include "orio/annotations.hpp"

#include <gtest/gtest.h>

namespace barracuda::orio {
namespace {

tcr::TcrProgram eqn1_program() {
  return tcr::parse_tcr(R"(
ex
define:
I = J = K = L = M = N = 10
variables:
A:(L,K)
B:(M,J)
C:(N,I)
U:(L,M,N)
temp1:(I,L,M)
temp3:(J,I,L)
V:(I,J,K)
operations:
temp1:(i,l,m) += C:(n,i)*U:(l,m,n)
temp3:(j,i,l) += B:(m,j)*temp1:(i,l,m)
V:(i,j,k) += A:(l,k)*temp3:(j,i,l)
)");
}

std::vector<tcr::KernelSpace> spaces_of(const tcr::TcrProgram& p) {
  std::vector<tcr::KernelSpace> spaces;
  for (const auto& nest : tcr::build_loop_nests(p)) {
    spaces.push_back(tcr::derive_space(nest));
  }
  return spaces;
}

chill::Recipe recipe_of(const tcr::TcrProgram& p) {
  chill::Recipe recipe;
  for (const auto& nest : tcr::build_loop_nests(p)) {
    recipe.push_back(tcr::optimized_openacc_config(nest));
  }
  return recipe;
}

TEST(Annotations, PerformanceParamsMatchFigure2cShape) {
  tcr::TcrProgram p = eqn1_program();
  std::string text = emit_performance_params(p, spaces_of(p));
  EXPECT_NE(text.find("def performance_params {"), std::string::npos);
  // One PERMUTE block per kernel, 1-based ids.
  for (int k = 1; k <= 3; ++k) {
    std::string id = std::to_string(k);
    EXPECT_NE(text.find("param PERMUTE_" + id + "_TX[] = ["),
              std::string::npos);
    EXPECT_NE(text.find("param PERMUTE_" + id + "_TY[] = ["),
              std::string::npos);
    EXPECT_NE(text.find("param PERMUTE_" + id + "_BX[] = ["),
              std::string::npos);
    EXPECT_NE(text.find("param PERMUTE_" + id + "_BY[] = ["),
              std::string::npos);
    EXPECT_NE(text.find("param UF_" + id + "[] = [1,2,3,4,5,6,7,8,9,10];"),
              std::string::npos);
  }
  // The '1' (unused) sentinel appears in the TY domains, as in the paper.
  EXPECT_NE(text.find("'1'"), std::string::npos);
}

TEST(Annotations, ChillRecipeListsAllTransformations) {
  tcr::TcrProgram p = eqn1_program();
  chill::Recipe recipe = recipe_of(p);
  recipe[0].unroll = 5;
  std::string text = emit_chill_recipe(p, recipe);
  EXPECT_NE(text.find("cuda(1,block={"), std::string::npos);
  EXPECT_NE(text.find("cuda(3,block={"), std::string::npos);
  EXPECT_NE(text.find("registers(1,\"temp1\")"), std::string::npos);
  EXPECT_NE(text.find("registers(3,\"V\")"), std::string::npos);
  EXPECT_NE(text.find("unroll(1,\"n\",5)"), std::string::npos);
  // unroll(k, ..., 1) is a no-op and must not be emitted.
  EXPECT_EQ(text.find("unroll(2"), std::string::npos);
}

TEST(Annotations, RecipeOmitsRegistersWhenDisabled) {
  tcr::TcrProgram p = eqn1_program();
  chill::Recipe recipe = recipe_of(p);
  for (auto& cfg : recipe) cfg.scalar_replacement = false;
  std::string text = emit_chill_recipe(p, recipe);
  EXPECT_EQ(text.find("registers("), std::string::npos);
}

TEST(Annotations, AnnotatedSourceWrapsRecipeAndLoops) {
  tcr::TcrProgram p = eqn1_program();
  std::string text = emit_annotated_source(p, spaces_of(p), recipe_of(p));
  EXPECT_NE(text.find("/*@ begin CHiLL ("), std::string::npos);
  EXPECT_NE(text.find(") @*/"), std::string::npos);
  EXPECT_NE(text.find("/*@ end @*/"), std::string::npos);
  // The sequential loop nests follow the annotation block.
  EXPECT_NE(text.find("for i in [0,10)"), std::string::npos);
  EXPECT_LT(text.find("begin CHiLL"), text.find("for i in [0,10)"));
}

TEST(Annotations, SizeMismatchRejected) {
  tcr::TcrProgram p = eqn1_program();
  auto spaces = spaces_of(p);
  spaces.pop_back();
  EXPECT_THROW(emit_performance_params(p, spaces), InternalError);
  chill::Recipe recipe = recipe_of(p);
  recipe.pop_back();
  EXPECT_THROW(emit_chill_recipe(p, recipe), InternalError);
}


TEST(Annotations, SharedStagingEmitted) {
  tcr::TcrProgram p = eqn1_program();
  chill::Recipe recipe = recipe_of(p);
  recipe[0].shared_tensors = {"C"};
  std::string text = emit_chill_recipe(p, recipe);
  EXPECT_NE(text.find("shared(1,\"C\")"), std::string::npos);
  EXPECT_EQ(text.find("shared(2"), std::string::npos);
}

}  // namespace
}  // namespace barracuda::orio
