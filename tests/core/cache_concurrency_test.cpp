// Multi-process harness for EvalCache::merge_save: concurrent and
// crashing writers sharing one BARRACUDA_CACHE path must compose to the
// exact union of their measurements — no lost updates, no torn files.
//
// This suite lives in its own test binary on purpose: the fork()ed
// writers must be spawned from a single-threaded process (fork of a
// multithreaded parent is undefined enough that TSan rejects it), so
// nothing here may touch support::ThreadPool.  Keep it that way.
#include "core/evalcache.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "support/error.hpp"

#ifndef _WIN32
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace barracuda::core {
namespace {

/// Unique path under the gtest temp dir, removed (with its lock and any
/// stray temp siblings) on destruction.
struct TempFile {
  explicit TempFile(const std::string& name)
      : path(testing::TempDir() + name) {
    cleanup();
  }
  ~TempFile() { cleanup(); }
  void cleanup() {
    std::remove(path.c_str());
    std::remove((path + ".lock").c_str());
  }
  std::string path;
};

std::string entry_key(int writer, int entry) {
  return "writer" + std::to_string(writer) + "|entry" + std::to_string(entry);
}

double entry_value(int writer, int entry) {
  // Non-trivial doubles so the union check also exercises exact
  // round-tripping.
  return writer * 1000.0 + entry + 1.0 / 3.0;
}

#ifndef _WIN32

/// Fork `writers` child processes; each stores its own disjoint entries
/// and merge_saves them into `path`.  Every child must exit 0.
void run_writers(const std::string& path, int writers, int entries,
                 bool crash_after_save = false) {
  std::vector<pid_t> pids;
  for (int w = 0; w < writers; ++w) {
    pid_t pid = fork();
    ASSERT_NE(pid, -1) << "fork failed";
    if (pid == 0) {
      // Child: no gtest assertions here (a child failure must surface
      // as its exit status, not a half-reported gtest result).
      int status = 0;
      try {
        EvalCache cache;
        for (int e = 0; e < entries; ++e) {
          cache.store(entry_key(w, e), entry_value(w, e));
        }
        cache.merge_save(path);
      } catch (...) {
        status = 1;
      }
      if (crash_after_save && status == 0) {
        // Simulate a crash at the worst post-publish moment: no exit
        // handlers, no flushes — the on-disk state must already be
        // complete because every publish is an atomic rename.
        _exit(42);
      }
      _exit(status);
    }
    pids.push_back(pid);
  }
  for (pid_t pid : pids) {
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status)) << "writer killed by signal";
    if (crash_after_save) {
      EXPECT_EQ(WEXITSTATUS(status), 42) << "writer failed before crash";
    } else {
      EXPECT_EQ(WEXITSTATUS(status), 0) << "writer failed";
    }
  }
}

/// The final file must hold exactly the union of every writer's entries.
void expect_exact_union(const std::string& path, int writers, int entries) {
  EvalCache merged;
  EXPECT_EQ(merged.load(path),
            static_cast<std::size_t>(writers) * entries);
  EXPECT_EQ(merged.size(), static_cast<std::size_t>(writers) * entries);
  for (int w = 0; w < writers; ++w) {
    for (int e = 0; e < entries; ++e) {
      double value = 0;
      ASSERT_TRUE(merged.lookup(entry_key(w, e), &value))
          << "lost update: writer " << w << " entry " << e;
      EXPECT_EQ(value, entry_value(w, e)) << entry_key(w, e);  // bit-exact
    }
  }
}

// N processes race merge_save on one path; the advisory lock serializes
// their load-merge-publish cycles, so the file ends as the exact union
// (with last-writer-wins plain save(), most writers' entries would be
// silently dropped).
TEST(CacheConcurrency, ConcurrentMergeSaveKeepsEveryWritersEntries) {
  TempFile file("cache_concurrency_union.cache");
  constexpr int kWriters = 8;
  constexpr int kEntries = 25;
  run_writers(file.path, kWriters, kEntries);
  expect_exact_union(file.path, kWriters, kEntries);
}

// Writers that die immediately after publishing (no exit handlers) must
// leave a complete, loadable union behind: crash-safety is a property
// of the publish protocol, not of orderly shutdown.
TEST(CacheConcurrency, WritersCrashingAfterPublishLoseNothing) {
  TempFile file("cache_concurrency_crash.cache");
  constexpr int kWriters = 4;
  constexpr int kEntries = 10;
  run_writers(file.path, kWriters, kEntries, /*crash_after_save=*/true);
  expect_exact_union(file.path, kWriters, kEntries);
}

// Repeated merge rounds converge: a second wave of the same writers
// (plus one new one) re-merges idempotently — first-write-wins keeps
// the original values and only genuinely new entries are added.
TEST(CacheConcurrency, RemergingIsIdempotentAndAdditive) {
  TempFile file("cache_concurrency_remerge.cache");
  run_writers(file.path, 3, 5);
  run_writers(file.path, 4, 5);  // writers 0-2 again + writer 3
  expect_exact_union(file.path, 4, 5);
}

// A stale lock FILE left by a crashed writer must not wedge later
// writers: flock(2) locks die with their holder, so the leftover file
// is inert and the next merge_save just proceeds — and, since FileLock
// now unlinks on release (open-lock-stat-verify protocol), the last
// writer also cleans the leftover up instead of re-littering the
// directory.
TEST(CacheConcurrency, StaleLockFileFromDeadWriterIsRecovered) {
  TempFile file("cache_concurrency_stale.cache");
  // A writer that crashed after taking the lock leaves the lock file
  // behind; simulate the leftover.
  std::ofstream(file.path + ".lock") << "";
  run_writers(file.path, 2, 5);
  expect_exact_union(file.path, 2, 5);
  // The data file parses, no temp files linger next to it, and the
  // stale lock file was removed by the last releasing writer.
  std::ifstream lock(file.path + ".lock");
  EXPECT_FALSE(lock.good()) << "releasing holder must unlink the lock file";
}

#endif  // !_WIN32

// Same-process concurrent writers: flock serializes distinct file
// descriptions even within one process, so threads composing through
// merge_save also end at the union.  (Plain std::thread on purpose —
// see the header comment about keeping ThreadPool out of this binary.
// This test runs after the fork tests only by file order; gtest runs
// tests sequentially, and these threads are joined before returning, so
// no thread outlives the test into a later fork.)
TEST(CacheConcurrency, ThreadedMergeSaveAlsoComposesToUnion) {
  TempFile file("cache_concurrency_threads.cache");
  constexpr int kWriters = 4;
  constexpr int kEntries = 16;
  std::vector<std::thread> threads;
  threads.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      EvalCache cache;
      for (int e = 0; e < kEntries; ++e) {
        cache.store(entry_key(w, e), entry_value(w, e));
      }
      cache.merge_save(file.path);
    });
  }
  for (auto& t : threads) t.join();

  EvalCache merged;
  EXPECT_EQ(merged.load(file.path),
            static_cast<std::size_t>(kWriters) * kEntries);
  for (int w = 0; w < kWriters; ++w) {
    for (int e = 0; e < kEntries; ++e) {
      double value = 0;
      ASSERT_TRUE(merged.lookup(entry_key(w, e), &value))
          << "lost update: writer " << w << " entry " << e;
      EXPECT_EQ(value, entry_value(w, e));
    }
  }
}

}  // namespace
}  // namespace barracuda::core
